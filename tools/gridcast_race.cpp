// gridcast_race: race any set of registered scheduling heuristics — over a
// message-size ladder (sweep mode, Figs. 5/6) or over random Table 2
// instances per cluster count (--race, the Figs. 1-4 Monte-Carlo races) —
// the one registry-driven CLI behind the per-figure bench binaries.
//
//   gridcast_race --sched=FlatTree,ECEF-LAT --backend=plogp --out=race.json
//   gridcast_race --sched=all --backend=sim --shards=2 --shard=0 --out=s0.json
//   gridcast_race --sched=all --verb=scatter --backend=sim --out=scatter.json
//   gridcast_race --race --clusters=2-10 --iters=10000 --out=fig1.json
//   gridcast_race --race --backend=sim --realise --out=fig1_measured.json
//   gridcast_race --merge race.json s0.json s1.json
//   gridcast_race --check=race.json --baseline=BENCH_baseline.json
//   gridcast_race --list-backends
//
// --backend selects the collective backend by registry name ("plogp" =
// analytic model, "sim" = discrete-event simulator; --mode=predicted|
// measured remains as an alias spelling).  Sharded runs partition the
// (size x series) cell grid — or, in race mode, the (parameter-point x
// iteration-block) grid — deterministically, and --merge recombines shard
// outputs byte-identically to an unsharded run.  --check is the CI
// regression gate against the checked-in baselines (race reports also
// gate their Fig. 4 hit counts, exactly).  All logic lives in the library
// (src/exp/race_cli.hpp) where it is unit-tested; this is only the entry
// point.

#include <iostream>
#include <string>
#include <vector>

#include "exp/race_cli.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  using namespace gridcast;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::cout << exp::race_cli_usage();
      return 0;
    }
  }

  try {
    const exp::RaceCli cli = exp::parse_race_cli(args);
    return exp::run_race_cli(cli, std::cout, std::cerr);
  } catch (const InvalidInput& e) {
    std::cerr << "gridcast_race: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "gridcast_race: internal error: " << e.what() << "\n";
    return 3;
  }
}
