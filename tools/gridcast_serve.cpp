// gridcast_serve: the long-lived serving front-end over the schedule-plan
// cache (src/serve).  Speaks a one-line-per-request protocol:
//
//     plan <verb> <root> <size>     e.g.  plan bcast 0 4MiB
//     stats
//     quit
//
// and answers each request with the winning scheduler, its predicted
// makespan and the plan's cache status.  Three front-ends share one
// PlanService:
//
//   gridcast_serve                          # interactive session on stdin
//   gridcast_serve --port=7777              # loopback TCP, one thread per
//                                           # session; SIGINT/SIGTERM stop it
//   gridcast_serve --requests=FILE          # replay a request log, print
//                                           # every reply
//   gridcast_serve --requests=FILE --replay-report [--timing] [--out=F]
//                                           # replay and emit the
//                                           # "bench": "serve" BenchReport
//
// The replay report is byte-identical across runs, machines, --threads,
// --sessions and --warm state unless --timing adds the host-dependent
// series (requests/sec, p50/p99 latency) — the CI serve lane gates that
// timing run against BENCH_baseline_serve.json via `gridcast_race
// --check`.  Inside a TCP session, hits answer immediately while misses
// build asynchronously behind the plan cache's build-once latch.
//
// All protocol, cache, socket and replay logic lives in the library
// (src/serve) where it is unit-tested; this file owns only flags,
// terminals and signal handling.

#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/race_cli.hpp"
#include "io/grid_io.hpp"
#include "serve/server.hpp"
#include "serve/socket_server.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "topology/grid5000.hpp"

namespace {

using namespace gridcast;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// std::signal on glibc gives BSD semantics (SA_RESTART), which would
/// transparently restart the blocking accept()/read() and the daemon
/// would never observe g_stop.  Install with sigaction and no
/// SA_RESTART so the syscalls return EINTR and the loops re-check.
void install_stop_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

std::string usage() {
  return
      "usage: gridcast_serve [options]\n"
      "\n"
      "Serving daemon over the schedule-plan cache.  Protocol (one line\n"
      "per request): 'plan <verb> <root> <size>', 'stats', 'quit'.\n"
      "\n"
      "  --grid=grid5000|FILE   grid to serve (default: built-in testbed)\n"
      "  --sched=all|a,b,c      competing schedulers (default: all)\n"
      "  --completion=MODEL     eager | after-last-send (default: eager)\n"
      "  --capacity=BYTES       plan-cache bound, e.g. 64M (default: unbounded;\n"
      "                         0 = pass-through)\n"
      "  --instance-capacity=BYTES  instance-cache bound (same spellings)\n"
      "  --admission-k=N        under byte pressure, a signature must miss N\n"
      "                         times (probationary ring) before its plan may\n"
      "                         evict a resident one (default: 1 = admit all)\n"
      "  --admission-ring=N     probationary ring length (default: 256)\n"
      "  --warm=FILE            pre-build the plans a request log needs before\n"
      "                         serving (batched across --threads)\n"
      "  --threads=N            build worker threads (default: 0 = inline)\n"
      "  --batch=N              replay/warm batch size (default: 64)\n"
      "  --requests=FILE        replay a request log instead of serving\n"
      "  --replay-report        emit the \"serve\" BenchReport for the replay\n"
      "  --sessions=N           replay only: drive the log through N\n"
      "                         concurrent live sessions (default: 1; the\n"
      "                         report's exact series never change)\n"
      "  --timing               add requests/sec + latency series (host-\n"
      "                         dependent; off keeps the report byte-stable)\n"
      "  --out=FILE             write the report to FILE (default: stdout)\n"
      "  --port=N               serve loopback TCP sessions instead of stdin\n";
}

struct ServeCliArgs {
  std::string grid_arg = "grid5000";
  serve::ServeOptions service;
  std::size_t threads = 0;
  serve::ReplayOptions replay;
  std::string warm_path;
  std::string requests_path;
  bool replay_report = false;
  std::string out_path;
  int port = -1;
};

std::string value_of(const std::string& arg) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq + 1 == arg.size())
    throw InvalidInput("flag '" + arg.substr(0, eq) + "' needs a value");
  return arg.substr(eq + 1);
}

std::uint64_t parse_count(const std::string& v, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long n = std::stoull(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return n;
  } catch (const std::exception&) {
    throw InvalidInput(std::string(what) + " must be a non-negative integer, "
                       "got '" + v + "'");
  }
}

ServeCliArgs parse_args(const std::vector<std::string>& args) {
  ServeCliArgs cli;
  for (const auto& arg : args) {
    const std::string key = arg.substr(0, arg.find('='));
    if (key == "--grid") {
      cli.grid_arg = value_of(arg);
    } else if (key == "--sched") {
      const std::string v = value_of(arg);
      if (v != "all") {
        std::istringstream in(v);
        for (std::string name; std::getline(in, name, ',');)
          if (!name.empty()) cli.service.sched_names.push_back(name);
      }
    } else if (key == "--completion") {
      const std::string v = value_of(arg);
      if (v == "eager")
        cli.service.completion = sched::CompletionModel::kEager;
      else if (v == "after-last-send")
        cli.service.completion = sched::CompletionModel::kAfterLastSend;
      else
        throw InvalidInput(
            "--completion must be 'eager' or 'after-last-send', got '" + v +
            "'");
    } else if (key == "--capacity") {
      cli.service.plan_capacity =
          static_cast<std::size_t>(exp::parse_size(value_of(arg)));
    } else if (key == "--instance-capacity") {
      cli.service.instance_capacity =
          static_cast<std::size_t>(exp::parse_size(value_of(arg)));
    } else if (key == "--admission-k") {
      cli.service.admission_k = static_cast<std::size_t>(
          parse_count(value_of(arg), "--admission-k"));
      if (cli.service.admission_k == 0)
        throw InvalidInput("--admission-k must be >= 1");
    } else if (key == "--admission-ring") {
      cli.service.admission_ring = static_cast<std::size_t>(
          parse_count(value_of(arg), "--admission-ring"));
    } else if (key == "--warm") {
      cli.warm_path = value_of(arg);
    } else if (key == "--threads") {
      cli.threads =
          static_cast<std::size_t>(parse_count(value_of(arg), "--threads"));
    } else if (key == "--batch") {
      cli.replay.batch =
          static_cast<std::size_t>(parse_count(value_of(arg), "--batch"));
      if (cli.replay.batch == 0)
        throw InvalidInput("--batch must be >= 1");
    } else if (key == "--requests") {
      cli.requests_path = value_of(arg);
    } else if (arg == "--replay-report") {
      cli.replay_report = true;
    } else if (key == "--sessions") {
      cli.replay.sessions = static_cast<std::size_t>(
          parse_count(value_of(arg), "--sessions"));
      if (cli.replay.sessions == 0)
        throw InvalidInput("--sessions must be >= 1");
    } else if (arg == "--timing") {
      cli.replay.timing = true;
    } else if (key == "--out") {
      cli.out_path = value_of(arg);
    } else if (key == "--port") {
      const std::uint64_t p = parse_count(value_of(arg), "--port");
      if (p == 0 || p > 65535) throw InvalidInput("--port must be 1..65535");
      cli.port = static_cast<int>(p);
    } else {
      throw InvalidInput("unknown flag '" + arg + "' (see --help)");
    }
  }
  if (cli.requests_path.empty() && (cli.replay_report || cli.replay.timing))
    throw InvalidInput("--replay-report/--timing need --requests=FILE");
  if (cli.requests_path.empty() && cli.replay.sessions > 1)
    throw InvalidInput("--sessions needs --requests=FILE");
  if (!cli.requests_path.empty() && cli.port >= 0)
    throw InvalidInput("--requests and --port are mutually exclusive");
  return cli;
}

topology::Grid load_grid(const std::string& grid_arg, std::string& grid_name) {
  if (grid_arg == "grid5000") {
    grid_name = "grid5000_testbed";
    return topology::grid5000_testbed();
  }
  std::ifstream in(grid_arg);
  if (!in)
    throw InvalidInput("cannot open grid file '" + grid_arg +
                       "' (use --grid=grid5000 for the built-in testbed)");
  grid_name = grid_arg;
  return io::read_grid(in);
}

std::vector<serve::ReplayRequest> load_request_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInput("cannot open request log '" + path + "'");
  return serve::parse_request_log(in);
}

/// `--warm=FILE`: build every plan the log's requests need, through the
/// same batched build path replay uses, before the first request is
/// served.  Valid with every front-end.
void warm_cache(const ServeCliArgs& cli, serve::PlanService& service) {
  if (cli.warm_path.empty()) return;
  const std::vector<serve::ReplayRequest> requests =
      load_request_log(cli.warm_path);
  ThreadPool pool(cli.threads);
  const std::size_t built =
      serve::warm_requests(service, requests, pool, cli.replay.batch);
  std::cerr << "gridcast_serve: warmed " << built << " plans from "
            << cli.warm_path << "\n";
}

int run_replay(const ServeCliArgs& cli, serve::PlanService& service) {
  const std::vector<serve::ReplayRequest> requests =
      load_request_log(cli.requests_path);
  if (!cli.replay_report) {
    // Reply-stream mode: every request through the interactive path, so a
    // log replays exactly like piping it to stdin.
    for (const auto& rq : requests) {
      std::string line = "plan ";
      line += collective::verb_name(rq.verb);
      line += ' ' + std::to_string(rq.root) + ' ' + std::to_string(rq.size);
      const auto reply = service.handle_line(line);
      if (!reply.text.empty()) std::cout << reply.text << '\n';
    }
    return 0;
  }
  ThreadPool pool(cli.threads);
  const io::BenchReport report =
      serve::replay_requests(service, requests, pool, cli.replay);
  if (cli.out_path.empty()) {
    io::write_bench_json(std::cout, report);
  } else {
    std::ofstream out(cli.out_path);
    if (!out)
      throw InvalidInput("cannot open '" + cli.out_path + "' for writing");
    io::write_bench_json(out, report);
  }
  return 0;
}

int run_stdin(serve::PlanService& service) {
  for (std::string line; std::getline(std::cin, line);) {
    const auto reply = service.handle_line(line);
    if (!reply.text.empty()) std::cout << reply.text << std::endl;
    if (reply.quit) break;
  }
  return 0;
}

/// Loopback TCP sessions, one thread each, until SIGINT/SIGTERM.  The
/// accept loop, session threads and async miss answering all live in
/// serve::SocketServer where they are tested against loopback clients.
int run_tcp(int port, serve::PlanService& service) {
  serve::SocketServerOptions opts;
  opts.port = port;
  opts.log = [](const std::string& line) {
    std::cerr << "gridcast_serve: " << line << "\n";
  };
  serve::SocketServer server(service, opts);
  server.bind_and_listen();
  server.run([] { return g_stop != 0; });
  std::cerr << "gridcast_serve: shutting down\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::cout << usage();
      return 0;
    }
  }
  try {
    const ServeCliArgs cli = parse_args(args);
    std::string grid_name;
    const topology::Grid grid = load_grid(cli.grid_arg, grid_name);
    serve::PlanService service(grid, grid_name, cli.service);
    warm_cache(cli, service);
    if (!cli.requests_path.empty()) return run_replay(cli, service);
    if (cli.port >= 0) {
      install_stop_handlers();
      return run_tcp(cli.port, service);
    }
    return run_stdin(service);
  } catch (const gridcast::InvalidInput& e) {
    std::cerr << "gridcast_serve: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "gridcast_serve: internal error: " << e.what() << "\n";
    return 3;
  }
}
