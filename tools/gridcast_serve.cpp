// gridcast_serve: the long-lived serving front-end over the schedule-plan
// cache (src/serve).  Speaks a one-line-per-request protocol:
//
//     plan <verb> <root> <size>     e.g.  plan bcast 0 4MiB
//     stats
//     quit
//
// and answers each request with the winning scheduler, its predicted
// makespan and the plan's cache status.  Three front-ends share one
// PlanService:
//
//   gridcast_serve                          # interactive session on stdin
//   gridcast_serve --port=7777              # loopback TCP, one session at
//                                           # a time; SIGINT/SIGTERM stop it
//   gridcast_serve --requests=FILE          # replay a request log, print
//                                           # every reply
//   gridcast_serve --requests=FILE --replay-report [--timing] [--out=F]
//                                           # replay and emit the
//                                           # "bench": "serve" BenchReport
//
// The replay report is byte-identical across runs, machines and
// --threads values unless --timing adds the host-dependent series
// (requests/sec, p50/p99 latency) — the CI serve lane gates that timing
// run against BENCH_baseline_serve.json via `gridcast_race --check`.
// Hits answer synchronously; each replay batch's distinct misses build in
// parallel across the thread pool (--batch, --threads).
//
// All protocol, cache and replay logic lives in the library
// (src/serve/server.hpp) where it is unit-tested; this file owns only
// flags, terminals and sockets.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/race_cli.hpp"
#include "io/grid_io.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "topology/grid5000.hpp"

namespace {

using namespace gridcast;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// std::signal on glibc gives BSD semantics (SA_RESTART), which would
/// transparently restart the blocking accept()/read() and the daemon
/// would never observe g_stop.  Install with sigaction and no
/// SA_RESTART so the syscalls return EINTR and the loops re-check.
void install_stop_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

std::string usage() {
  return
      "usage: gridcast_serve [options]\n"
      "\n"
      "Serving daemon over the schedule-plan cache.  Protocol (one line\n"
      "per request): 'plan <verb> <root> <size>', 'stats', 'quit'.\n"
      "\n"
      "  --grid=grid5000|FILE   grid to serve (default: built-in testbed)\n"
      "  --sched=all|a,b,c      competing schedulers (default: all)\n"
      "  --completion=MODEL     eager | after-last-send (default: eager)\n"
      "  --capacity=BYTES       plan-cache bound, e.g. 64M (default: unbounded;\n"
      "                         0 = pass-through)\n"
      "  --instance-capacity=BYTES  instance-cache bound (same spellings)\n"
      "  --threads=N            replay worker threads (default: 0 = inline)\n"
      "  --batch=N              replay batch size (default: 64)\n"
      "  --requests=FILE        replay a request log instead of serving\n"
      "  --replay-report        emit the \"serve\" BenchReport for the replay\n"
      "  --timing               add requests/sec + latency series (host-\n"
      "                         dependent; off keeps the report byte-stable)\n"
      "  --out=FILE             write the report to FILE (default: stdout)\n"
      "  --port=N               serve a loopback TCP session instead of stdin\n";
}

struct ServeCliArgs {
  std::string grid_arg = "grid5000";
  serve::ServeOptions service;
  std::size_t threads = 0;
  serve::ReplayOptions replay;
  std::string requests_path;
  bool replay_report = false;
  std::string out_path;
  int port = -1;
};

std::string value_of(const std::string& arg) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq + 1 == arg.size())
    throw InvalidInput("flag '" + arg.substr(0, eq) + "' needs a value");
  return arg.substr(eq + 1);
}

std::uint64_t parse_count(const std::string& v, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long n = std::stoull(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return n;
  } catch (const std::exception&) {
    throw InvalidInput(std::string(what) + " must be a non-negative integer, "
                       "got '" + v + "'");
  }
}

ServeCliArgs parse_args(const std::vector<std::string>& args) {
  ServeCliArgs cli;
  for (const auto& arg : args) {
    const std::string key = arg.substr(0, arg.find('='));
    if (key == "--grid") {
      cli.grid_arg = value_of(arg);
    } else if (key == "--sched") {
      const std::string v = value_of(arg);
      if (v != "all") {
        std::istringstream in(v);
        for (std::string name; std::getline(in, name, ',');)
          if (!name.empty()) cli.service.sched_names.push_back(name);
      }
    } else if (key == "--completion") {
      const std::string v = value_of(arg);
      if (v == "eager")
        cli.service.completion = sched::CompletionModel::kEager;
      else if (v == "after-last-send")
        cli.service.completion = sched::CompletionModel::kAfterLastSend;
      else
        throw InvalidInput(
            "--completion must be 'eager' or 'after-last-send', got '" + v +
            "'");
    } else if (key == "--capacity") {
      cli.service.plan_capacity =
          static_cast<std::size_t>(exp::parse_size(value_of(arg)));
    } else if (key == "--instance-capacity") {
      cli.service.instance_capacity =
          static_cast<std::size_t>(exp::parse_size(value_of(arg)));
    } else if (key == "--threads") {
      cli.threads =
          static_cast<std::size_t>(parse_count(value_of(arg), "--threads"));
    } else if (key == "--batch") {
      cli.replay.batch =
          static_cast<std::size_t>(parse_count(value_of(arg), "--batch"));
      if (cli.replay.batch == 0)
        throw InvalidInput("--batch must be >= 1");
    } else if (key == "--requests") {
      cli.requests_path = value_of(arg);
    } else if (arg == "--replay-report") {
      cli.replay_report = true;
    } else if (arg == "--timing") {
      cli.replay.timing = true;
    } else if (key == "--out") {
      cli.out_path = value_of(arg);
    } else if (key == "--port") {
      const std::uint64_t p = parse_count(value_of(arg), "--port");
      if (p == 0 || p > 65535) throw InvalidInput("--port must be 1..65535");
      cli.port = static_cast<int>(p);
    } else {
      throw InvalidInput("unknown flag '" + arg + "' (see --help)");
    }
  }
  if (cli.requests_path.empty() && (cli.replay_report || cli.replay.timing))
    throw InvalidInput("--replay-report/--timing need --requests=FILE");
  if (!cli.requests_path.empty() && cli.port >= 0)
    throw InvalidInput("--requests and --port are mutually exclusive");
  return cli;
}

topology::Grid load_grid(const std::string& grid_arg, std::string& grid_name) {
  if (grid_arg == "grid5000") {
    grid_name = "grid5000_testbed";
    return topology::grid5000_testbed();
  }
  std::ifstream in(grid_arg);
  if (!in)
    throw InvalidInput("cannot open grid file '" + grid_arg +
                       "' (use --grid=grid5000 for the built-in testbed)");
  grid_name = grid_arg;
  return io::read_grid(in);
}

int run_replay(const ServeCliArgs& cli, serve::PlanService& service) {
  std::ifstream in(cli.requests_path);
  if (!in)
    throw InvalidInput("cannot open request log '" + cli.requests_path + "'");
  const std::vector<serve::ReplayRequest> requests =
      serve::parse_request_log(in);
  if (!cli.replay_report) {
    // Reply-stream mode: every request through the interactive path, so a
    // log replays exactly like piping it to stdin.
    for (const auto& rq : requests) {
      std::string line = "plan ";
      line += collective::verb_name(rq.verb);
      line += ' ' + std::to_string(rq.root) + ' ' + std::to_string(rq.size);
      const auto reply = service.handle_line(line);
      if (!reply.text.empty()) std::cout << reply.text << '\n';
    }
    return 0;
  }
  ThreadPool pool(cli.threads);
  const io::BenchReport report =
      serve::replay_requests(service, requests, pool, cli.replay);
  if (cli.out_path.empty()) {
    io::write_bench_json(std::cout, report);
  } else {
    std::ofstream out(cli.out_path);
    if (!out)
      throw InvalidInput("cannot open '" + cli.out_path + "' for writing");
    io::write_bench_json(out, report);
  }
  return 0;
}

int run_stdin(serve::PlanService& service) {
  for (std::string line; std::getline(std::cin, line);) {
    const auto reply = service.handle_line(line);
    if (!reply.text.empty()) std::cout << reply.text << std::endl;
    if (reply.quit) break;
  }
  return 0;
}

/// One loopback TCP session at a time: accept, serve lines until `quit`
/// or disconnect, accept again — until SIGINT/SIGTERM.  Serving is
/// single-threaded by design (the caches are thread-safe, but ordering
/// replies within a session matters more than parallel sessions here).
int run_tcp(int port, serve::PlanService& service) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) throw InvalidInput("socket(): " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listener, 1) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listener);
    throw InvalidInput("cannot listen on 127.0.0.1:" + std::to_string(port) +
                       ": " + why);
  }
  std::cerr << "gridcast_serve: listening on 127.0.0.1:" << port << "\n";
  while (g_stop == 0) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;  // signal: re-check g_stop
      const std::string why = std::strerror(errno);
      ::close(listener);
      throw InvalidInput("accept(): " + why);
    }
    std::string buf;
    char chunk[4096];
    bool quit = false;
    while (!quit && g_stop == 0) {
      const ssize_t n = ::read(conn, chunk, sizeof chunk);
      if (n <= 0) break;  // disconnect (or EINTR on shutdown)
      buf.append(chunk, static_cast<std::size_t>(n));
      for (std::size_t nl = buf.find('\n'); nl != std::string::npos;
           nl = buf.find('\n')) {
        const std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        const auto reply = service.handle_line(line);
        if (!reply.text.empty()) {
          const std::string out = reply.text + "\n";
          ssize_t off = 0;
          while (off < static_cast<ssize_t>(out.size())) {
            const ssize_t w = ::write(conn, out.data() + off,
                                      out.size() - static_cast<std::size_t>(off));
            if (w <= 0) break;
            off += w;
          }
        }
        if (reply.quit) {
          quit = true;
          break;
        }
      }
    }
    ::close(conn);
  }
  ::close(listener);
  std::cerr << "gridcast_serve: shutting down\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::cout << usage();
      return 0;
    }
  }
  try {
    const ServeCliArgs cli = parse_args(args);
    std::string grid_name;
    const topology::Grid grid = load_grid(cli.grid_arg, grid_name);
    serve::PlanService service(grid, grid_name, cli.service);
    if (!cli.requests_path.empty()) return run_replay(cli, service);
    if (cli.port >= 0) {
      install_stop_handlers();
      return run_tcp(cli.port, service);
    }
    return run_stdin(service);
  } catch (const gridcast::InvalidInput& e) {
    std::cerr << "gridcast_serve: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "gridcast_serve: internal error: " << e.what() << "\n";
    return 3;
  }
}
