// gridcast_lint — the repo's determinism wall, as a single binary.
//
// The headline claim of this codebase is byte-identical reports across
// shard counts, thread counts and backends.  The runtime suites verify
// that claim; this tool *statically* blocks the ways contributors have
// historically broken it: an unseeded RNG, a wall-clock read in a hot
// path, a type-erased callback allocating per event, or a report built
// by iterating an unordered container.  No libclang — the rules are
// token/regex checks over a comment-stripped view of each file plus a
// few include-graph constraints, which is exactly enough for the
// invariants below and keeps the tool dependency-free and fast.
//
// Usage:
//   gridcast_lint [--root=DIR] [--list-rules] [relative paths...]
//
// Paths default to `src tools`.  Rules are scoped by path *relative to
// the root*, so fixture trees exercise path-scoped rules by mirroring
// the layout (tests/support/lint_fixtures/<case>/src/...).
//
// Every rule is individually suppressible at the offending line with a
// trailing or preceding annotation comment naming the rule, e.g.
//   gridcast-lint: allow(iostream-library)
// on the same line or the line directly above.  Diagnostics are
// one-line, grep- and editor-friendly:
//   <path>:<line>: error: [<rule>] <message>
// Exit status: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
// gridcast-lint: allow(iostream-library) -- the lint CLI prints diagnostics
#include <iostream>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;  // relative to root, '/' separators
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view scope;  // human-readable path scope
  std::string_view what;
};

constexpr RuleInfo kRules[] = {
    {"rng-source", "everywhere except src/support/rng.*",
     "std::random_device / std::rand / srand / unseeded mt19937 — all "
     "randomness flows through support/rng so streams are seeded and "
     "replayable"},
    {"wall-clock", "src/sim, src/exp",
     "system_clock / high_resolution_clock in simulation or experiment "
     "code — simulated time and report content must not depend on the "
     "host clock (steady_clock wall-timing of *reported wall costs* is "
     "fine)"},
    {"sim-callback", "src/sim",
     "std::function in the simulator — event callbacks must use "
     "InlineCallback (fixed capacity, no type-erased heap allocation)"},
    {"sim-alloc", "src/sim",
     "naked new / make_unique / make_shared / malloc in the simulator — "
     "the event loop is allocation-free; arena growth sites carry an "
     "explicit allow"},
    {"iostream-library", "src (library code)",
     "#include <iostream> in library code — the library reports through "
     "return values and exceptions; only tools/bench/examples own a "
     "terminal"},
    {"unordered-iteration", "src/io, src/exp",
     "unordered_map / unordered_set in report or merge paths — iteration "
     "order feeds report output, which must be deterministic; use "
     "std::map / std::set or sort first"},
    {"registry-lowercase", "src/collective",
     "backend registry names must be lowercase (lookups fold case; the "
     "scheduler registry intentionally differs)"},
    {"layering", "src/support, src/sim, src/serve",
     "include-graph: support/ is the base layer and includes nothing "
     "above it; sim/ must not reach into exp/, io/ or serve/; serve/ sits "
     "on top of sched/exp/io and must not reach into sim/ internals"},
};

bool rule_exists(std::string_view name) {
  for (const auto& r : kRules)
    if (r.name == name) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Source model: the raw line, a "code view" with comments and string/char
// literals blanked (token rules match here, so a rule named in a comment
// or a log string never trips), and a "nostring view" that keeps string
// literals (for rules about the literals themselves, e.g. registry names).

struct SourceFile {
  std::string rel;  // relative path, '/' separators
  std::vector<std::string> raw;
  std::vector<std::string> code;      // comments + strings blanked
  std::vector<std::string> nostring;  // comments blanked, strings kept
  std::vector<std::string> comments;  // comment text only
  std::vector<std::set<std::string>> allows;  // per line, rules allowed
};

enum class View { kCode, kCodeWithStrings, kComments };

/// Project one aspect of the source (code, code+strings, or comments)
/// onto space-padded lines, preserving structure so diagnostics keep
/// their line numbers.  Annotations are parsed from the comments view, so
/// a string literal *describing* an annotation never acts as one.
std::vector<std::string> strip_view(const std::vector<std::string>& lines,
                                    View view) {
  const bool blank_strings = view != View::kCodeWithStrings;
  const bool comments_only = view == View::kComments;
  std::vector<std::string> out;
  out.reserve(lines.size());
  enum class St { kCode, kBlock, kString, kChar };
  St st = St::kCode;
  for (const auto& line : lines) {
    std::string o(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (st) {
        case St::kCode:
          if (c == '/' && next == '/') {
            if (comments_only)
              for (std::size_t k = i; k < line.size(); ++k) o[k] = line[k];
            i = line.size();  // rest of line is a comment
          } else if (c == '/' && next == '*') {
            st = St::kBlock;
            ++i;
          } else if (c == '"') {
            st = St::kString;
            if (!blank_strings) o[i] = c;
          } else if (c == '\'') {
            st = St::kChar;
            if (!blank_strings) o[i] = c;
          } else if (!comments_only) {
            o[i] = c;
          }
          break;
        case St::kBlock:
          if (comments_only) o[i] = c;
          if (c == '*' && next == '/') {
            st = St::kCode;
            ++i;
          }
          break;
        case St::kString:
          if (!blank_strings) o[i] = c;
          if (c == '\\') {
            ++i;
            if (!blank_strings && i < line.size()) o[i] = line[i];
          } else if (c == '"') {
            st = St::kCode;
          }
          break;
        case St::kChar:
          if (!blank_strings) o[i] = c;
          if (c == '\\') {
            ++i;
            if (!blank_strings && i < line.size()) o[i] = line[i];
          } else if (c == '\'') {
            st = St::kCode;
          }
          break;
      }
    }
    // Strings and chars do not span lines in this codebase (no raw string
    // literals in linted trees); a dangling state would smear the rest of
    // the file, so close it at EOL.
    if (st == St::kString || st == St::kChar) st = St::kCode;
    out.push_back(std::move(o));
  }
  return out;
}

/// Parse annotation comments — allow() with a comma-separated rule list,
/// as in the file header — from the comments-only view.  An
/// annotation suppresses findings on its own line and the line below it.
std::vector<std::set<std::string>> parse_allows(
    const std::vector<std::string>& lines, const std::string& rel,
    std::vector<Finding>& findings) {
  static const std::regex re(
      R"(gridcast-lint:\s*allow\(([A-Za-z0-9_,\- ]*)\))");
  std::vector<std::set<std::string>> allows(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, re)) {
      // A malformed annotation would otherwise silently suppress nothing.
      if (lines[i].find("gridcast-lint") != std::string::npos)
        findings.push_back({rel, i + 1, "bad-annotation",
                            "unparseable gridcast-lint annotation (expected "
                            "`gridcast-lint: allow(<rule>)`)"});
      continue;
    }
    std::stringstream ss(m[1].str());
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const auto b = rule.find_first_not_of(' ');
      const auto e = rule.find_last_not_of(' ');
      if (b == std::string::npos) continue;
      rule = rule.substr(b, e - b + 1);
      if (!rule_exists(rule)) {
        findings.push_back({rel, i + 1, "bad-annotation",
                            "allow() names unknown rule '" + rule + "'"});
        continue;
      }
      allows[i].insert(rule);
      if (i + 1 < lines.size()) allows[i + 1].insert(rule);
    }
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Path scoping helpers.  All paths are relative to the lint root.

bool under(const std::string& rel, std::string_view prefix) {
  return rel.rfind(prefix, 0) == 0;
}

bool is_rng_home(const std::string& rel) {
  return under(rel, "src/support/rng.");
}

// ---------------------------------------------------------------------------
// Rules.  Each takes the file and appends findings; suppression is
// handled centrally by the caller.

using Matches = std::vector<std::pair<std::size_t, std::string>>;

void match_token(const SourceFile& f, const std::regex& re,
                 const std::string& msg, Matches& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i)
    if (std::regex_search(f.code[i], re)) out.emplace_back(i, msg);
}

Matches rule_rng_source(const SourceFile& f) {
  Matches out;
  if (is_rng_home(f.rel)) return out;
  static const std::regex device(R"(\brandom_device\b)");
  static const std::regex crand(R"((\bstd\s*::\s*rand\b|\bsrand\s*\())");
  static const std::regex shuffle(R"(\brandom_shuffle\b)");
  // An mt19937 constructed with no seed expression: `mt19937 gen;` or
  // `mt19937 gen{};`.  Seeded constructions have an argument and do not
  // match.  support/rng wraps the engine so call sites never spell it.
  static const std::regex unseeded(
      R"(\bmt19937(_64)?\s+[A-Za-z_]\w*\s*(;|\{\s*\}))");
  match_token(f, device,
              "std::random_device is non-deterministic; seed via "
              "support/rng streams",
              out);
  match_token(f, crand,
              "C rand()/srand() is unseeded global state; use support/rng",
              out);
  match_token(f, shuffle,
              "random_shuffle draws from an unspecified source; use a "
              "seeded shuffle over support/rng",
              out);
  match_token(f, unseeded,
              "unseeded mt19937 engine; construct through support/rng so "
              "the stream is replayable",
              out);
  return out;
}

Matches rule_wall_clock(const SourceFile& f) {
  Matches out;
  if (!under(f.rel, "src/sim/") && !under(f.rel, "src/exp/")) return out;
  static const std::regex re(R"(\b(system_clock|high_resolution_clock)\b)");
  match_token(f, re,
              "host wall clock in a sim/exp path; simulated time is "
              "engine time and wall costs use steady_clock",
              out);
  return out;
}

Matches rule_sim_callback(const SourceFile& f) {
  Matches out;
  if (!under(f.rel, "src/sim/")) return out;
  static const std::regex re(R"(\bstd\s*::\s*function\b)");
  match_token(f, re,
              "std::function in the simulator; use sim::InlineCallback "
              "(no per-event type-erasure allocation)",
              out);
  return out;
}

Matches rule_sim_alloc(const SourceFile& f) {
  Matches out;
  if (!under(f.rel, "src/sim/")) return out;
  // Naked `new T` allocates; placement `new (addr) T` constructs into the
  // arena and is the simulator's bread and butter — skip `new (`.
  static const std::regex naked(R"((^|[^:\w])new\s+[A-Za-z_:])");
  static const std::regex maker(R"(\bmake_(unique|shared)\w*\s*<)");
  static const std::regex cmalloc(R"(\b(malloc|calloc|realloc)\s*\()");
  match_token(f, naked,
              "heap allocation in the simulator; events live in the "
              "engine arena (placement new) — annotate growth sites",
              out);
  match_token(f, maker,
              "make_unique/make_shared in the simulator hot path; the "
              "event loop must be allocation-free — annotate growth sites",
              out);
  match_token(f, cmalloc, "C allocation in the simulator", out);
  return out;
}

Matches rule_iostream_library(const SourceFile& f) {
  Matches out;
  if (!under(f.rel, "src/")) return out;
  static const std::regex re(R"(#\s*include\s*<iostream>)");
  match_token(f, re,
              "<iostream> in library code; return values/exceptions "
              "report errors, ostream& parameters print — terminals "
              "belong to tools and benches",
              out);
  return out;
}

Matches rule_unordered_iteration(const SourceFile& f) {
  Matches out;
  if (!under(f.rel, "src/io/") && !under(f.rel, "src/exp/")) return out;
  static const std::regex re(R"(\bunordered_(map|set|multimap|multiset)\b)");
  match_token(f, re,
              "unordered container in a report/merge path; iteration "
              "order would leak into report bytes — use std::map/std::set "
              "or sort before emitting",
              out);
  return out;
}

Matches rule_registry_lowercase(const SourceFile& f) {
  Matches out;
  if (!under(f.rel, "src/collective/")) return out;
  // Registration calls: `.add("name", ...)` / `->add("name", ...)`.  The
  // first string literal is the canonical name; scan the nostring view so
  // the literal is visible but commented-out code is not.
  for (std::size_t i = 0; i < f.nostring.size(); ++i) {
    const std::string& line = f.nostring[i];
    for (std::size_t pos = line.find("add("); pos != std::string::npos;
         pos = line.find("add(", pos + 1)) {
      if (pos < 1) continue;
      const char prev = line[pos - 1];
      const bool member_call =
          prev == '.' || (pos >= 2 && prev == '>' && line[pos - 2] == '-');
      if (!member_call) continue;
      // The name literal may sit on this line or the next (clang-format
      // wraps long registrations).
      for (std::size_t j = i; j < std::min(i + 2, f.nostring.size()); ++j) {
        const std::string& cand = f.nostring[j];
        const std::size_t q0 = cand.find('"', j == i ? pos : 0);
        if (q0 == std::string::npos) continue;
        const std::size_t q1 = cand.find('"', q0 + 1);
        if (q1 == std::string::npos) break;
        const std::string name = cand.substr(q0 + 1, q1 - q0 - 1);
        const bool lower =
            std::all_of(name.begin(), name.end(), [](unsigned char c) {
              return !std::isupper(c);
            });
        if (!lower)
          out.emplace_back(j, "registry name '" + name +
                                  "' must be lowercase (backend lookups "
                                  "fold case)");
        break;
      }
      break;  // one registration per line is the repo idiom
    }
  }
  return out;
}

Matches rule_layering(const SourceFile& f) {
  Matches out;
  static const std::regex inc(R"(#\s*include\s*\"([^\"]+)\")");
  const bool in_support = under(f.rel, "src/support/");
  const bool in_sim = under(f.rel, "src/sim/");
  const bool in_serve = under(f.rel, "src/serve/");
  if (!in_support && !in_sim && !in_serve) return out;
  // Include operands are string literals — scan the view that keeps them.
  for (std::size_t i = 0; i < f.nostring.size(); ++i) {
    std::smatch m;
    std::string line = f.nostring[i];
    if (!std::regex_search(line, m, inc)) continue;
    const std::string inc_path = m[1].str();
    if (in_support && !under(inc_path, "support/"))
      out.emplace_back(i, "support/ is the base layer; it must not "
                          "include '" +
                              inc_path + "'");
    if (in_sim && (under(inc_path, "exp/") || under(inc_path, "io/") ||
                   under(inc_path, "serve/")))
      out.emplace_back(i, "sim/ must not depend on '" + inc_path +
                              "' (exp/io/serve sit above the simulator)");
    if (in_serve && under(inc_path, "sim/"))
      out.emplace_back(i, "serve/ must not depend on '" + inc_path +
                              "' (the serving layer consumes the simulator "
                              "through collective backends, never directly)");
  }
  return out;
}

// ---------------------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx";
}

std::optional<SourceFile> load(const fs::path& root, const fs::path& abs,
                               std::vector<Finding>& findings) {
  SourceFile f;
  f.rel = fs::relative(abs, root).generic_string();
  std::ifstream in(abs);
  if (!in) {
    std::cerr << "gridcast_lint: cannot read " << abs.string() << '\n';
    return std::nullopt;
  }
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(std::move(line));
  }
  f.code = strip_view(f.raw, View::kCode);
  f.nostring = strip_view(f.raw, View::kCodeWithStrings);
  f.comments = strip_view(f.raw, View::kComments);
  f.allows = parse_allows(f.comments, f.rel, findings);
  return f;
}

void lint_file(const SourceFile& f, std::vector<Finding>& findings) {
  struct Bound {
    std::string_view rule;
    Matches (*fn)(const SourceFile&);
  };
  static constexpr Bound kBound[] = {
      {"rng-source", rule_rng_source},
      {"wall-clock", rule_wall_clock},
      {"sim-callback", rule_sim_callback},
      {"sim-alloc", rule_sim_alloc},
      {"iostream-library", rule_iostream_library},
      {"unordered-iteration", rule_unordered_iteration},
      {"registry-lowercase", rule_registry_lowercase},
      {"layering", rule_layering},
  };
  for (const auto& b : kBound) {
    for (auto& [line, msg] : b.fn(f)) {
      if (f.allows[line].contains(std::string(b.rule))) continue;
      findings.push_back({f.rel, line + 1, std::string(b.rule), msg});
    }
  }
}

int usage(std::ostream& os, int code) {
  os << "usage: gridcast_lint [--root=DIR] [--list-rules] [paths...]\n"
        "  Lints C++ sources under each path (default: src tools) against\n"
        "  the repo determinism rules.  Paths are relative to --root\n"
        "  (default: current directory).\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const auto& r : kRules)
        std::cout << r.name << "  [" << r.scope << "]\n    " << r.what
                  << '\n';
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = fs::path(std::string(arg.substr(7)));
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "gridcast_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
    paths.emplace_back(arg);
  }
  if (paths.empty()) paths = {"src", "tools"};

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "gridcast_lint: bad --root: " << ec.message() << '\n';
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& p : paths) {
    const fs::path abs = root / p;
    if (fs::is_regular_file(abs)) {
      files.push_back(abs);
    } else if (fs::is_directory(abs)) {
      for (const auto& e : fs::recursive_directory_iterator(abs))
        if (e.is_regular_file() && lintable(e.path()))
          files.push_back(e.path());
    } else {
      std::cerr << "gridcast_lint: no such path under root: " << p << '\n';
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    const auto f = load(root, file, findings);
    if (!f) return 2;
    lint_file(*f, findings);
  }

  for (const auto& fnd : findings)
    std::cout << fnd.path << ':' << fnd.line << ": error: [" << fnd.rule
              << "] " << fnd.message << '\n';
  if (!findings.empty()) {
    std::cerr << "gridcast_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  return 0;
}
