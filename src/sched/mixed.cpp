#include "sched/mixed.hpp"

namespace gridcast::sched {

MixedStrategy::MixedStrategy(std::size_t threshold, HeuristicOptions opts)
    : threshold_(threshold),
      small_(HeuristicKind::kEcefLa, opts),
      large_(HeuristicKind::kEcefLaMax, opts) {}

HeuristicKind MixedStrategy::choice(std::size_t clusters) const noexcept {
  return clusters <= threshold_ ? small_.kind() : large_.kind();
}

SendOrder MixedStrategy::order(const Instance& inst) const {
  return inst.clusters() <= threshold_ ? small_.order(inst)
                                       : large_.order(inst);
}

Schedule MixedStrategy::run(const Instance& inst) const {
  return inst.clusters() <= threshold_ ? small_.run(inst) : large_.run(inst);
}

}  // namespace gridcast::sched
