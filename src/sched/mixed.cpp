#include "sched/mixed.hpp"

namespace gridcast::sched {

MixedStrategy::MixedStrategy(std::size_t threshold, HeuristicOptions opts,
                             std::string_view small_name,
                             std::string_view large_name)
    : SchedulerEntry(opts),
      threshold_(threshold),
      small_(registry().make(small_name, opts)),
      large_(registry().make(large_name, opts)) {}

SendOrder MixedStrategy::order(const SchedulerRuntimeInfo& info) const {
  return delegate(info.clusters()).order(info);
}

std::string MixedStrategy::describe_options() const {
  return "small=" + std::string(small_->name()) +
         " large=" + std::string(large_->name()) +
         " threshold=" + std::to_string(threshold_);
}

const SchedulerEntry& MixedStrategy::delegate(
    std::size_t clusters) const noexcept {
  return clusters <= threshold_ ? *small_ : *large_;
}

}  // namespace gridcast::sched
