#pragma once

#include <cstdint>

#include "sched/instance.hpp"
#include "sched/schedule.hpp"

/// The seven broadcast scheduling heuristics of the paper.
///
/// Baselines (paper Section 4): Flat Tree (ECO/MagPIe), FEF, ECEF and
/// ECEF-LA (Bhat et al., JPDC 2003).  Grid-aware contributions (Section 5):
/// ECEF-LAt, ECEF-LAT and BottomUp, which add the intra-cluster broadcast
/// time T to the selection criteria.
///
/// Every heuristic emits a `SendOrder`; `evaluate_order` assigns the times.
/// Selection decisions inside the ECEF family use the *same* timing state
/// as the evaluator (`EvalState`), so a heuristic's internal cost estimates
/// coincide exactly with the reported makespans.
///
/// These free functions are the selection kernels; the polymorphic
/// `SchedulerEntry` wrappers in builtin_schedulers.hpp expose them through
/// the registry, which is how consumers should reach them.
namespace gridcast::sched {

/// Lookahead flavours of the ECEF family.
///
/// The first four are the paper's Figs. 1-4 competitors; the last two are
/// the alternative lookahead functions Bhat "suggests" and the paper
/// recounts in Section 4.4: the average cost from P_j to the rest of B,
/// and the average A->B cost if P_j were moved to A.
enum class Lookahead : std::uint8_t {
  kNone,         ///< plain ECEF
  kMinEdge,      ///< ECEF-LA:  F_j = min_k (g_jk + L_jk)
  kMinEdgePlusT, ///< ECEF-LAt: F_j = min_k (g_jk + L_jk + T_k)
  kMaxEdgePlusT, ///< ECEF-LAT: F_j = max_k (g_jk + L_jk + T_k)
  kAvgEdge,      ///< F_j = avg_{k in B\{j}} (g_jk + L_jk)
  kAvgAfterMove, ///< F_j = avg_{i in A+{j}, k in B\{j}} (g_ik + L_ik)
};

/// FEF edge weight (DESIGN.md §4.2).  Bhat defines the edge weight as
/// "usually the communication latency"; under the paper's Table 2 ranges
/// the gap dominates the true cost, which is precisely why FEF underwhelms
/// in Figs. 1-2 (and why BottomUp beats it).  The latency-only weight is
/// therefore the faithful default; the informed g+L weight is the ablation.
enum class FefWeight : std::uint8_t {
  kLatencyOnly,     ///< w_ij = L_ij (paper-faithful default)
  kGapPlusLatency,  ///< w_ij = g_ij(m) + L_ij (informed-weight ablation)
};

/// BottomUp inner-cost policy (DESIGN.md §4.1: the paper's formula omits
/// the sender ready time; the prose implies it matters).
enum class BottomUpPolicy : std::uint8_t {
  kReadyTimeAware,  ///< inner cost RT_i + g_ij + L_ij + T_j (default)
  kPaperFormula,    ///< inner cost g_ij + L_ij + T_j
};

/// Flat tree: the root contacts every other cluster sequentially, in
/// cluster-id order (the paper notes the result depends on this ordering —
/// that sensitivity is part of what Figs. 1–2 show).
[[nodiscard]] SendOrder flat_tree_order(const Instance& inst);

/// Fastest Edge First: repeatedly take the lightest edge between A and B.
/// Receivers join A immediately — sender readiness is ignored, which is
/// exactly the flaw ECEF fixes.
[[nodiscard]] SendOrder fef_order(const Instance& inst,
                                  FefWeight weight = FefWeight::kLatencyOnly);

/// The ECEF family: minimise RT_i + g_ij + L_ij (+ F_j per `la`).
[[nodiscard]] SendOrder ecef_order(const Instance& inst,
                                   Lookahead la = Lookahead::kNone);

/// BottomUp: max-min — deliver first to the cluster whose best possible
/// completion is worst.
[[nodiscard]] SendOrder bottomup_order(
    const Instance& inst, BottomUpPolicy policy = BottomUpPolicy::kReadyTimeAware);

}  // namespace gridcast::sched
