#include "sched/builtin_schedulers.hpp"

#include "sched/mixed.hpp"
#include "sched/registry.hpp"
#include "support/error.hpp"

namespace gridcast::sched {

SendOrder FlatTreeScheduler::order(const SchedulerRuntimeInfo& info) const {
  return flat_tree_order(info.instance());
}

SendOrder FefScheduler::order(const SchedulerRuntimeInfo& info) const {
  return fef_order(info.instance(), opts_.fef_weight);
}

std::string FefScheduler::describe_options() const {
  return opts_.fef_weight == FefWeight::kLatencyOnly ? "weight=latency"
                                                     : "weight=gap+latency";
}

std::string_view EcefScheduler::name() const noexcept {
  switch (la_) {
    case Lookahead::kNone: return "ECEF";
    case Lookahead::kMinEdge: return "ECEF-LA";
    case Lookahead::kMinEdgePlusT: return "ECEF-LAt";
    case Lookahead::kMaxEdgePlusT: return "ECEF-LAT";
    case Lookahead::kAvgEdge: return "ECEF-AvgEdge";
    case Lookahead::kAvgAfterMove: return "ECEF-AvgMove";
  }
  return "ECEF-?";
}

SendOrder EcefScheduler::order(const SchedulerRuntimeInfo& info) const {
  return ecef_order(info.instance(), la_);
}

std::string EcefScheduler::describe_options() const {
  switch (la_) {
    case Lookahead::kNone: return "lookahead=none";
    case Lookahead::kMinEdge: return "lookahead=min(g+L)";
    case Lookahead::kMinEdgePlusT: return "lookahead=min(g+L+T)";
    case Lookahead::kMaxEdgePlusT: return "lookahead=max(g+L+T)";
    case Lookahead::kAvgEdge: return "lookahead=avg(g+L)";
    case Lookahead::kAvgAfterMove: return "lookahead=avg-after-move";
  }
  return {};
}

SendOrder BottomUpScheduler::order(const SchedulerRuntimeInfo& info) const {
  return bottomup_order(info.instance(), opts_.bottomup);
}

std::string BottomUpScheduler::describe_options() const {
  return opts_.bottomup == BottomUpPolicy::kReadyTimeAware
             ? "inner-cost=ready-time-aware"
             : "inner-cost=paper-formula";
}

void register_builtin_schedulers(SchedulerRegistry& reg) {
  reg.add(
      "FlatTree",
      [](const HeuristicOptions& o) {
        return std::make_shared<const FlatTreeScheduler>(o);
      },
      {"flattree", "flat-tree", "flat"});
  reg.add(
      "FEF",
      [](const HeuristicOptions& o) {
        return std::make_shared<const FefScheduler>(o);
      },
      {"fef"});
  const auto ecef = [&reg](Lookahead la, std::vector<std::string> aliases) {
    // Canonical name comes from the entry itself so the two can't drift.
    const std::string name{EcefScheduler(la).name()};
    reg.add(
        name,
        [la](const HeuristicOptions& o) {
          return std::make_shared<const EcefScheduler>(la, o);
        },
        std::move(aliases));
  };
  ecef(Lookahead::kNone, {"ecef"});
  ecef(Lookahead::kMinEdge, {"ecef-la"});
  // Folding "ECEF-LAt" and "ECEF-LAT" to lowercase collides, so the
  // aliases are explicit: the bare "ecef-lat" goes to the balance-oriented
  // LAT variant, and each variant gets an unambiguous -min/-max form.
  ecef(Lookahead::kMinEdgePlusT, {"ecef-la-min"});
  ecef(Lookahead::kMaxEdgePlusT, {"ecef-lat", "ecef-la-max"});
  ecef(Lookahead::kAvgEdge, {"ecef-avgedge", "ecef-avg"});
  ecef(Lookahead::kAvgAfterMove, {"ecef-avgmove"});
  reg.add(
      "BottomUp",
      [](const HeuristicOptions& o) {
        return std::make_shared<const BottomUpScheduler>(o);
      },
      {"bottomup", "bottom-up"});
  // The paper's Section 6 deployment recommendation, itself selectable by
  // name.  Its factory resolves the delegates through the registry at
  // make() time (safe: factories run outside the registry lock).
  reg.add(
      "Mixed",
      [](const HeuristicOptions& o) {
        return std::make_shared<const MixedStrategy>(10, o);
      },
      {"mixed"});
}

}  // namespace gridcast::sched
