#include "sched/builtin_schedulers.hpp"

#include <algorithm>

#include "sched/auto_scheduler.hpp"
#include "sched/mixed.hpp"
#include "sched/registry.hpp"
#include "support/error.hpp"

namespace gridcast::sched {

SendOrder FlatTreeScheduler::order(const SchedulerRuntimeInfo& info) const {
  return flat_tree_order(info.instance());
}

SendOrder FefScheduler::order(const SchedulerRuntimeInfo& info) const {
  return fef_order(info.instance(), opts_.fef_weight);
}

std::string FefScheduler::describe_options() const {
  return opts_.fef_weight == FefWeight::kLatencyOnly ? "weight=latency"
                                                     : "weight=gap+latency";
}

std::string_view EcefScheduler::name() const noexcept {
  switch (la_) {
    case Lookahead::kNone: return "ECEF";
    case Lookahead::kMinEdge: return "ECEF-LA";
    case Lookahead::kMinEdgePlusT: return "ECEF-LAt";
    case Lookahead::kMaxEdgePlusT: return "ECEF-LAT";
    case Lookahead::kAvgEdge: return "ECEF-AvgEdge";
    case Lookahead::kAvgAfterMove: return "ECEF-AvgMove";
  }
  return "ECEF-?";
}

SendOrder EcefScheduler::order(const SchedulerRuntimeInfo& info) const {
  return ecef_order(info.instance(), la_);
}

std::string EcefScheduler::describe_options() const {
  switch (la_) {
    case Lookahead::kNone: return "lookahead=none";
    case Lookahead::kMinEdge: return "lookahead=min(g+L)";
    case Lookahead::kMinEdgePlusT: return "lookahead=min(g+L+T)";
    case Lookahead::kMaxEdgePlusT: return "lookahead=max(g+L+T)";
    case Lookahead::kAvgEdge: return "lookahead=avg(g+L)";
    case Lookahead::kAvgAfterMove: return "lookahead=avg-after-move";
  }
  return {};
}

SendOrder BottomUpScheduler::order(const SchedulerRuntimeInfo& info) const {
  return bottomup_order(info.instance(), opts_.bottomup);
}

SendOrder LanFlatScheduler::order(const SchedulerRuntimeInfo& info) const {
  return flat_tree_order(info.instance());
}

bool LanFlatScheduler::can_schedule(const SchedulerRuntimeInfo& info) const {
  // The cached lower bound already contains each cluster's cheapest
  // incoming transfer; when it stays within `lan_slack_` of the internal
  // broadcasts alone, the grid is LAN-homogeneous enough for flat order.
  return info.clusters() >= 2 &&
         info.lower_bound() <= lan_slack_ * info.max_internal();
}

std::string LanFlatScheduler::describe_options() const {
  return "gate=lower_bound<=" + std::to_string(lan_slack_) + "*max_T";
}

SendOrder StarWanScheduler::order(const SchedulerRuntimeInfo& info) const {
  const Instance& inst = info.instance();
  const ClusterId root = inst.root();
  std::vector<ClusterId> spokes;
  spokes.reserve(info.clusters() - 1);
  for (ClusterId j = 0; j < info.clusters(); ++j)
    if (j != root) spokes.push_back(j);
  // Worst direct path first: the spoke whose delivery-plus-internal time
  // is largest cannot afford to wait behind the root's earlier injections.
  std::sort(spokes.begin(), spokes.end(), [&](ClusterId a, ClusterId b) {
    const Time ca = inst.transfer(root, a) + inst.T(a);
    const Time cb = inst.transfer(root, b) + inst.T(b);
    if (ca != cb) return ca > cb;
    return a < b;  // deterministic tie-break
  });
  SendOrder order;
  order.reserve(spokes.size());
  for (const ClusterId j : spokes) order.push_back({root, j});
  return order;
}

bool StarWanScheduler::can_schedule(const SchedulerRuntimeInfo& info) const {
  if (info.clusters() < 2) return false;
  // A LAN-regime grid has no star to exploit; leave it to LAN-Flat (the
  // cached lower bound is the cheap screen before the O(n²) shape scan).
  if (info.lower_bound() <=
      LanFlatScheduler::kDefaultLanSlack * info.max_internal())
    return false;
  // Hub shape: the direct root edge is every spoke's cheapest entry.
  const Instance& inst = info.instance();
  const ClusterId root = inst.root();
  for (ClusterId j = 0; j < info.clusters(); ++j) {
    if (j == root) continue;
    const Time direct = inst.transfer(root, j);
    for (ClusterId i = 0; i < info.clusters(); ++i)
      if (i != j && inst.transfer(i, j) < direct) return false;
  }
  return true;
}

std::string StarWanScheduler::describe_options() const {
  return "gate=hub-shape&WAN-regime";
}

std::string BottomUpScheduler::describe_options() const {
  return opts_.bottomup == BottomUpPolicy::kReadyTimeAware
             ? "inner-cost=ready-time-aware"
             : "inner-cost=paper-formula";
}

void register_builtin_schedulers(SchedulerRegistry& reg) {
  reg.add(
      "FlatTree",
      [](const HeuristicOptions& o) {
        return std::make_shared<const FlatTreeScheduler>(o);
      },
      {"flattree", "flat-tree", "flat"});
  reg.add(
      "FEF",
      [](const HeuristicOptions& o) {
        return std::make_shared<const FefScheduler>(o);
      },
      {"fef"});
  const auto ecef = [&reg](Lookahead la, std::vector<std::string> aliases) {
    // Canonical name comes from the entry itself so the two can't drift.
    const std::string name{EcefScheduler(la).name()};
    reg.add(
        name,
        [la](const HeuristicOptions& o) {
          return std::make_shared<const EcefScheduler>(la, o);
        },
        std::move(aliases));
  };
  ecef(Lookahead::kNone, {"ecef"});
  ecef(Lookahead::kMinEdge, {"ecef-la"});
  // Folding "ECEF-LAt" and "ECEF-LAT" to lowercase collides, so the
  // aliases are explicit: the bare "ecef-lat" goes to the balance-oriented
  // LAT variant, and each variant gets an unambiguous -min/-max form.
  ecef(Lookahead::kMinEdgePlusT, {"ecef-la-min"});
  ecef(Lookahead::kMaxEdgePlusT, {"ecef-lat", "ecef-la-max"});
  ecef(Lookahead::kAvgEdge, {"ecef-avgedge", "ecef-avg"});
  ecef(Lookahead::kAvgAfterMove, {"ecef-avgmove"});
  reg.add(
      "BottomUp",
      [](const HeuristicOptions& o) {
        return std::make_shared<const BottomUpScheduler>(o);
      },
      {"bottomup", "bottom-up"});
  // The paper's Section 6 deployment recommendation, itself selectable by
  // name.  Its factory resolves the delegates through the registry at
  // make() time (safe: factories run outside the registry lock).
  reg.add(
      "Mixed",
      [](const HeuristicOptions& o) {
        return std::make_shared<const MixedStrategy>(10, o);
      },
      {"mixed"});
  // Grid-shape specialists, gated by can_schedule: race harnesses skip
  // them on grids outside their shape instead of racing them, so they are
  // safe to include in `--sched=all`.
  reg.add(
      "LAN-Flat",
      [](const HeuristicOptions& o) {
        return std::make_shared<const LanFlatScheduler>(o);
      },
      {"lan-flat", "lanflat"});
  reg.add(
      "Star-WAN",
      [](const HeuristicOptions& o) {
        return std::make_shared<const StarWanScheduler>(o);
      },
      {"star-wan", "starwan"});
  // The registry-wide per-instance selector, registered last so its
  // candidate snapshot (taken at make() time, outside the registry lock)
  // covers every builtin above.  The factory captures *this* registry —
  // not the global one — so local test registries get local candidates.
  reg.add(
      "auto",
      [r = &reg](const HeuristicOptions& o) {
        return std::make_shared<const AutoScheduler>(*r, o);
      },
      {"best", "propose"});
}

}  // namespace gridcast::sched
