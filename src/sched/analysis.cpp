#include "sched/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace gridcast::sched {

ScheduleAnalysis analyze(const Instance& inst, const Schedule& s) {
  const std::string why = describe_invalid(s, inst.clusters());
  GRIDCAST_ASSERT(why.empty(), "analysing invalid schedule: " + why);

  ScheduleAnalysis a;
  a.clusters.resize(inst.clusters());
  std::vector<ClusterId> parent(inst.clusters(), kNoCluster);

  for (ClusterId c = 0; c < inst.clusters(); ++c) {
    a.clusters[c].cluster = c;
    a.clusters[c].finish = s.cluster_finish[c];
  }

  for (const auto& t : s.transfers) {
    auto& snd = a.clusters[t.sender];
    auto& rcv = a.clusters[t.receiver];
    snd.busy += inst.g(t.sender, t.receiver);
    ++snd.sends;
    rcv.arrival = t.arrival;
    rcv.depth = snd.depth + 1;
    parent[t.receiver] = t.sender;
  }

  for (const auto& c : a.clusters)
    a.tree_depth = std::max(a.tree_depth, c.depth);

  // Bottleneck: the cluster attaining the makespan (first on ties).
  a.bottleneck = static_cast<ClusterId>(
      std::max_element(s.cluster_finish.begin(), s.cluster_finish.end()) -
      s.cluster_finish.begin());

  // Critical path: walk parents from the bottleneck back to the root.
  for (ClusterId c = a.bottleneck; c != kNoCluster; c = parent[c]) {
    a.critical_path.push_back(c);
    a.clusters[c].on_critical_path = true;
    if (c == s.root) break;
  }
  std::reverse(a.critical_path.begin(), a.critical_path.end());

  // Mean sender utilisation over clusters that actually sent.
  double util = 0.0;
  std::uint32_t senders = 0;
  for (const auto& c : a.clusters) {
    if (c.sends == 0) continue;
    ++senders;
    util += s.makespan > 0.0 ? c.busy / s.makespan : 0.0;
  }
  a.mean_sender_utilisation = senders > 0 ? util / senders : 0.0;
  return a;
}

std::string render_gantt(const Instance& inst, const Schedule& s,
                         std::size_t width) {
  GRIDCAST_ASSERT(width >= 16, "gantt needs a sane width");
  const std::string why = describe_invalid(s, inst.clusters());
  GRIDCAST_ASSERT(why.empty(), "rendering invalid schedule: " + why);

  const Time span = s.makespan > 0.0 ? s.makespan : 1.0;
  const auto col = [&](Time t) {
    auto c = static_cast<std::size_t>(t / span * static_cast<double>(width - 1));
    return std::min(c, width - 1);
  };

  // Rows: '.' idle, '=' NIC busy sending, '>' arrival instant,
  // '#' internal broadcast window.
  std::vector<std::string> rows(inst.clusters(), std::string(width, '.'));

  std::vector<Time> arrival(inst.clusters(), 0.0);
  for (const auto& t : s.transfers) {
    const std::size_t lo = col(t.start);
    const std::size_t hi = col(t.start + inst.g(t.sender, t.receiver));
    for (std::size_t x = lo; x <= hi; ++x) rows[t.sender][x] = '=';
    rows[t.receiver][col(t.arrival)] = '>';
    arrival[t.receiver] = t.arrival;
  }
  for (ClusterId c = 0; c < inst.clusters(); ++c) {
    if (inst.T(c) <= 0.0) continue;
    const Time start = s.cluster_finish[c] - inst.T(c);
    for (std::size_t x = col(start); x <= col(s.cluster_finish[c]); ++x)
      if (rows[c][x] == '.') rows[c][x] = '#';
  }

  std::ostringstream os;
  os << "0" << std::string(width - 2, ' ') << "t=" << span << "s\n";
  for (ClusterId c = 0; c < inst.clusters(); ++c) {
    os << rows[c] << "  c" << c << (c == s.root ? " (root)" : "") << '\n';
  }
  os << "legend: '=' sending  '>' arrival  '#' internal broadcast\n";
  return os.str();
}

}  // namespace gridcast::sched
