#include "sched/optimal.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "sched/evaluate.hpp"
#include "sched/registry.hpp"
#include "support/error.hpp"

namespace gridcast::sched {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::infinity();

/// DFS over send orders with two admissible prunes:
///  1. the partial schedule's committed finish times only grow, so
///     max(last_busy_c + T_c) over clusters holding the message is a LB;
///  2. an undelivered j costs at least (earliest any current holder can
///     inject) + (cheapest edge into j) + T_j.
struct Search {
  const Instance& inst;
  CompletionModel model;
  ClusterId n;
  std::vector<Time> ready;     // kInf = not delivered
  std::vector<Time> nic_free;
  std::vector<Time> last_busy;
  SendOrder current;
  SendOrder best_order;
  Time best = kInf;
  std::size_t explored = 0;

  Search(const Instance& i, CompletionModel m)
      : inst(i),
        model(m),
        n(static_cast<ClusterId>(i.clusters())),
        ready(i.clusters(), kInf),
        nic_free(i.clusters(), 0.0),
        last_busy(i.clusters(), 0.0) {
    ready[i.root()] = 0.0;
  }

  [[nodiscard]] Time finish_base(ClusterId c) const {
    return model == CompletionModel::kEager ? ready[c] : last_busy[c];
  }

  [[nodiscard]] Time lower_bound(std::size_t delivered) const {
    Time lb = 0.0;
    Time min_start = kInf;
    for (ClusterId c = 0; c < n; ++c) {
      if (ready[c] == kInf) continue;
      lb = std::max(lb, finish_base(c) + inst.T(c));
      min_start = std::min(min_start, std::max(ready[c], nic_free[c]));
    }
    if (delivered < n) {
      for (ClusterId j = 0; j < n; ++j) {
        if (ready[j] != kInf) continue;
        Time cheapest_in = kInf;
        for (ClusterId i = 0; i < n; ++i)
          if (i != j) cheapest_in = std::min(cheapest_in, inst.transfer(i, j));
        lb = std::max(lb, min_start + cheapest_in + inst.T(j));
      }
    }
    return lb;
  }

  void dfs(std::size_t delivered) {
    ++explored;
    if (delivered == n) {
      Time mk = 0.0;
      for (ClusterId c = 0; c < n; ++c)
        mk = std::max(mk, finish_base(c) + inst.T(c));
      if (mk < best) {
        best = mk;
        best_order = current;
      }
      return;
    }
    if (lower_bound(delivered) >= best) return;

    for (ClusterId i = 0; i < n; ++i) {
      if (ready[i] == kInf) continue;
      const Time start = std::max(ready[i], nic_free[i]);
      for (ClusterId j = 0; j < n; ++j) {
        if (ready[j] != kInf) continue;
        // Apply (i -> j).
        const Time save_nic = nic_free[i];
        const Time save_busy_i = last_busy[i];
        const Time arrival = start + inst.transfer(i, j);
        nic_free[i] = start + inst.g(i, j);
        last_busy[i] = std::max(last_busy[i], nic_free[i]);
        ready[j] = arrival;
        last_busy[j] = arrival;
        current.push_back({i, j});

        dfs(delivered + 1);

        current.pop_back();
        last_busy[j] = 0.0;
        ready[j] = kInf;
        last_busy[i] = save_busy_i;
        nic_free[i] = save_nic;
      }
    }
  }
};

}  // namespace

OptimalResult optimal_schedule(const Instance& inst, std::size_t max_clusters,
                               CompletionModel model) {
  if (inst.clusters() > max_clusters)
    throw InvalidInput("optimal search limited to " +
                       std::to_string(max_clusters) + " clusters, got " +
                       std::to_string(inst.clusters()));

  Search s(inst, model);
  // Seed the incumbent with a good heuristic so pruning bites immediately.
  s.best_order = ecef_order(inst, Lookahead::kMinEdge);
  s.best = evaluate_order(inst, s.best_order, model).makespan;
  s.dfs(1);

  OptimalResult out;
  out.schedule = evaluate_order(inst, s.best_order, model);
  out.explored = s.explored;
  return out;
}

Time optimal_makespan(const Instance& inst, std::size_t max_clusters,
                      CompletionModel model) {
  return optimal_schedule(inst, max_clusters, model).schedule.makespan;
}

}  // namespace gridcast::sched
