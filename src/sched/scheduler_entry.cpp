#include "sched/scheduler_entry.hpp"

namespace gridcast::sched {

SchedulerRuntimeInfo::SchedulerRuntimeInfo(const Instance& inst,
                                           Bytes message_size,
                                           CompletionModel completion)
    : inst_(&inst),
      clusters_(inst.clusters()),
      message_size_(message_size),
      completion_(completion),
      max_internal_(inst.max_T()),
      lower_bound_(inst.lower_bound()) {}

bool SchedulerEntry::can_schedule(const SchedulerRuntimeInfo& info) const {
  return info.clusters() >= 2;
}

std::string SchedulerEntry::describe_options() const {
  return {};
}

SendOrder SchedulerEntry::order(const Instance& inst) const {
  return order(SchedulerRuntimeInfo(inst, 0, opts_.completion));
}

Schedule SchedulerEntry::run(const Instance& inst) const {
  const SchedulerRuntimeInfo info(inst, 0, opts_.completion);
  return evaluate_order(inst, order(info), info.completion());
}

Time SchedulerEntry::makespan(const Instance& inst) const {
  return run(inst).makespan;
}

}  // namespace gridcast::sched
