#include "sched/heuristics.hpp"

#include <limits>
#include <vector>

#include "sched/evaluate.hpp"
#include "support/error.hpp"

namespace gridcast::sched {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::infinity();

/// Membership bookkeeping for the A/B set formalism.  `in_a[c]` is true
/// once cluster c holds (or is committed to receive) the message.
struct Sets {
  explicit Sets(const Instance& inst)
      : in_a(inst.clusters(), false), b_count(inst.clusters() - 1) {
    in_a[inst.root()] = true;
  }
  void move_to_a(ClusterId c) {
    GRIDCAST_ASSERT(!in_a[c], "cluster already in A");
    in_a[c] = true;
    --b_count;
  }
  std::vector<bool> in_a;
  std::size_t b_count;
};

}  // namespace

SendOrder flat_tree_order(const Instance& inst) {
  SendOrder order;
  order.reserve(inst.clusters() - 1);
  for (ClusterId j = 0; j < inst.clusters(); ++j)
    if (j != inst.root()) order.push_back({inst.root(), j});
  return order;
}

SendOrder fef_order(const Instance& inst, FefWeight weight) {
  const auto n = static_cast<ClusterId>(inst.clusters());
  Sets sets(inst);
  SendOrder order;
  order.reserve(n - 1);

  const auto w = [&](ClusterId i, ClusterId j) {
    return weight == FefWeight::kGapPlusLatency ? inst.transfer(i, j)
                                                : inst.L(i, j);
  };

  while (sets.b_count > 0) {
    ClusterId bi = kNoCluster, bj = kNoCluster;
    Time best = kInf;
    for (ClusterId i = 0; i < n; ++i) {
      if (!sets.in_a[i]) continue;
      for (ClusterId j = 0; j < n; ++j) {
        if (sets.in_a[j]) continue;
        const Time c = w(i, j);
        if (c < best) {
          best = c;
          bi = i;
          bj = j;
        }
      }
    }
    order.push_back({bi, bj});
    sets.move_to_a(bj);
  }
  return order;
}

SendOrder ecef_order(const Instance& inst, Lookahead la) {
  const auto n = static_cast<ClusterId>(inst.clusters());
  Sets sets(inst);
  EvalState state(inst);
  SendOrder order;
  order.reserve(n - 1);

  // F_j for every j still in B; recomputed per round (B shrinks).
  std::vector<Time> lookahead(n, 0.0);
  const auto recompute_lookahead = [&] {
    if (la == Lookahead::kNone) return;
    for (ClusterId j = 0; j < n; ++j) {
      if (sets.in_a[j]) continue;
      Time acc = la == Lookahead::kMaxEdgePlusT ? 0.0 : kInf;
      Time sum = 0.0;
      std::size_t count = 0;
      for (ClusterId k = 0; k < n; ++k) {
        if (sets.in_a[k] || k == j) continue;
        switch (la) {
          case Lookahead::kMinEdge:
            acc = std::min(acc, inst.transfer(j, k));
            break;
          case Lookahead::kMinEdgePlusT:
            acc = std::min(acc, inst.transfer(j, k) + inst.T(k));
            break;
          case Lookahead::kMaxEdgePlusT:
            acc = std::max(acc, inst.transfer(j, k) + inst.T(k));
            break;
          case Lookahead::kAvgEdge:
            sum += inst.transfer(j, k);
            ++count;
            break;
          case Lookahead::kAvgAfterMove:
            // Average over senders in the hypothetical A + {j}.
            sum += inst.transfer(j, k);
            ++count;
            for (ClusterId i = 0; i < n; ++i) {
              if (!sets.in_a[i]) continue;
              sum += inst.transfer(i, k);
              ++count;
            }
            break;
          case Lookahead::kNone: break;
        }
      }
      if (la == Lookahead::kAvgEdge || la == Lookahead::kAvgAfterMove) {
        lookahead[j] = count == 0 ? 0.0 : sum / static_cast<double>(count);
      } else {
        // Last cluster in B: no forwarding ability needed.
        lookahead[j] = (acc == kInf) ? 0.0 : acc;
      }
    }
  };

  while (sets.b_count > 0) {
    recompute_lookahead();
    ClusterId bi = kNoCluster, bj = kNoCluster;
    Time best = kInf;
    for (ClusterId i = 0; i < n; ++i) {
      if (!sets.in_a[i]) continue;
      const Time start = state.send_start(i);
      for (ClusterId j = 0; j < n; ++j) {
        if (sets.in_a[j]) continue;
        const Time c = start + inst.transfer(i, j) + lookahead[j];
        if (c < best) {
          best = c;
          bi = i;
          bj = j;
        }
      }
    }
    order.push_back({bi, bj});
    state.apply(bi, bj);
    sets.move_to_a(bj);
  }
  return order;
}

SendOrder bottomup_order(const Instance& inst, BottomUpPolicy policy) {
  const auto n = static_cast<ClusterId>(inst.clusters());
  Sets sets(inst);
  EvalState state(inst);
  SendOrder order;
  order.reserve(n - 1);

  while (sets.b_count > 0) {
    // For every receiver j in B: the *best* sender and its cost; then pick
    // the receiver whose best cost is the *worst* (max-min).
    ClusterId bj = kNoCluster, bj_sender = kNoCluster;
    Time worst_best = -kInf;
    for (ClusterId j = 0; j < n; ++j) {
      if (sets.in_a[j]) continue;
      ClusterId bi = kNoCluster;
      Time best = kInf;
      for (ClusterId i = 0; i < n; ++i) {
        if (!sets.in_a[i]) continue;
        const Time rt =
            policy == BottomUpPolicy::kReadyTimeAware ? state.send_start(i)
                                                      : 0.0;
        const Time c = rt + inst.transfer(i, j) + inst.T(j);
        if (c < best) {
          best = c;
          bi = i;
        }
      }
      if (best > worst_best) {
        worst_best = best;
        bj = j;
        bj_sender = bi;
      }
    }
    order.push_back({bj_sender, bj});
    state.apply(bj_sender, bj);
    sets.move_to_a(bj);
  }
  return order;
}

}  // namespace gridcast::sched
