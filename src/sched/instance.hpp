#pragma once

#include <cstddef>
#include <vector>

#include "support/matrix.hpp"
#include "support/types.hpp"
#include "topology/grid.hpp"

/// The scheduling problem instance.
///
/// Heuristics never see topologies or gap functions — they operate on the
/// paper's abstraction: for a fixed message size m, the inter-cluster gap
/// matrix g_ij(m), the latency matrix L_ij, and the per-cluster internal
/// broadcast time T_c.  Keeping g and L separate (instead of a single cost
/// matrix) preserves the FEF ablation where the edge weight is the latency
/// alone.
namespace gridcast::sched {

class Instance {
 public:
  /// An empty instance (0 clusters) to be filled via reshape(); exists so
  /// samplers can reuse one Instance's storage across iterations.
  Instance() = default;

  /// Build from explicit matrices; g and L are indexed [sender][receiver],
  /// diagonals ignored.  `T[c]` is cluster c's internal broadcast time.
  Instance(ClusterId root, SquareMatrix<Time> g, SquareMatrix<Time> L,
           std::vector<Time> T);

  /// Re-root and resize to `clusters` clusters with zeroed parameters,
  /// reusing the existing matrix/vector storage.
  void reshape(ClusterId root, std::size_t clusters) {
    GRIDCAST_ASSERT(clusters >= 1 && root < clusters,
                    "root cluster out of range");
    root_ = root;
    g_.assign(clusters, 0.0);
    L_.assign(clusters, 0.0);
    T_.assign(clusters, 0.0);
  }

  /// Set the symmetric link parameters of the unordered pair {i, j}.
  void set_symmetric_edge(ClusterId i, ClusterId j, Time g, Time L) {
    GRIDCAST_ASSERT(i != j, "no self edges");
    g_(i, j) = g;
    g_(j, i) = g;
    L_(i, j) = L;
    L_(j, i) = L;
  }

  /// Set cluster c's internal broadcast time.
  void set_T(ClusterId c, Time v) {
    GRIDCAST_ASSERT(c < T_.size(), "cluster id out of range");
    T_[c] = v;
  }

  /// Derive the instance a grid poses for an m-byte broadcast rooted in
  /// cluster `root` (g from the link gap functions, T from each cluster's
  /// configured intra algorithm).
  [[nodiscard]] static Instance from_grid(const topology::Grid& grid,
                                          ClusterId root, Bytes m);

  [[nodiscard]] std::size_t clusters() const noexcept { return T_.size(); }
  [[nodiscard]] ClusterId root() const noexcept { return root_; }

  [[nodiscard]] Time g(ClusterId i, ClusterId j) const { return g_(i, j); }
  [[nodiscard]] Time L(ClusterId i, ClusterId j) const { return L_(i, j); }
  [[nodiscard]] Time T(ClusterId c) const {
    GRIDCAST_ASSERT(c < T_.size(), "cluster id out of range");
    return T_[c];
  }

  /// The paper's transfer cost g_ij(m) + L_ij.
  [[nodiscard]] Time transfer(ClusterId i, ClusterId j) const {
    return g_(i, j) + L_(i, j);
  }

  /// Largest internal broadcast time — a component of every makespan
  /// lower bound.
  [[nodiscard]] Time max_T() const;

  /// Simple makespan lower bound: every non-root cluster must receive via
  /// its cheapest incoming edge and then broadcast internally; the root
  /// must run its own internal broadcast.  Any valid schedule's makespan
  /// is >= this.
  [[nodiscard]] Time lower_bound() const;

  void validate() const;

 private:
  ClusterId root_ = 0;
  SquareMatrix<Time> g_;
  SquareMatrix<Time> L_;
  std::vector<Time> T_;
};

}  // namespace gridcast::sched
