#pragma once

#include <cstddef>
#include <vector>

#include "support/matrix.hpp"
#include "support/types.hpp"
#include "topology/grid.hpp"

/// The scheduling problem instance.
///
/// Heuristics never see topologies or gap functions — they operate on the
/// paper's abstraction: for a fixed message size m, the inter-cluster gap
/// matrix g_ij(m), the latency matrix L_ij, and the per-cluster internal
/// broadcast time T_c.  Keeping g and L separate (instead of a single cost
/// matrix) preserves the FEF ablation where the edge weight is the latency
/// alone.
namespace gridcast::sched {

class Instance {
 public:
  /// Build from explicit matrices; g and L are indexed [sender][receiver],
  /// diagonals ignored.  `T[c]` is cluster c's internal broadcast time.
  Instance(ClusterId root, SquareMatrix<Time> g, SquareMatrix<Time> L,
           std::vector<Time> T);

  /// Derive the instance a grid poses for an m-byte broadcast rooted in
  /// cluster `root` (g from the link gap functions, T from each cluster's
  /// configured intra algorithm).
  [[nodiscard]] static Instance from_grid(const topology::Grid& grid,
                                          ClusterId root, Bytes m);

  [[nodiscard]] std::size_t clusters() const noexcept { return T_.size(); }
  [[nodiscard]] ClusterId root() const noexcept { return root_; }

  [[nodiscard]] Time g(ClusterId i, ClusterId j) const { return g_(i, j); }
  [[nodiscard]] Time L(ClusterId i, ClusterId j) const { return L_(i, j); }
  [[nodiscard]] Time T(ClusterId c) const {
    GRIDCAST_ASSERT(c < T_.size(), "cluster id out of range");
    return T_[c];
  }

  /// The paper's transfer cost g_ij(m) + L_ij.
  [[nodiscard]] Time transfer(ClusterId i, ClusterId j) const {
    return g_(i, j) + L_(i, j);
  }

  /// Largest internal broadcast time — a component of every makespan
  /// lower bound.
  [[nodiscard]] Time max_T() const;

  /// Simple makespan lower bound: every non-root cluster must receive via
  /// its cheapest incoming edge and then broadcast internally; the root
  /// must run its own internal broadcast.  Any valid schedule's makespan
  /// is >= this.
  [[nodiscard]] Time lower_bound() const;

  void validate() const;

 private:
  ClusterId root_;
  SquareMatrix<Time> g_;
  SquareMatrix<Time> L_;
  std::vector<Time> T_;
};

}  // namespace gridcast::sched
