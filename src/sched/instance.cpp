#include "sched/instance.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace gridcast::sched {

Instance::Instance(ClusterId root, SquareMatrix<Time> g, SquareMatrix<Time> L,
                   std::vector<Time> T)
    : root_(root), g_(std::move(g)), L_(std::move(L)), T_(std::move(T)) {
  validate();
}

Instance Instance::from_grid(const topology::Grid& grid, ClusterId root,
                             Bytes m) {
  const std::size_t n = grid.cluster_count();
  SquareMatrix<Time> g(n, 0.0);
  SquareMatrix<Time> L(n, 0.0);
  std::vector<Time> T(n, 0.0);
  for (ClusterId i = 0; i < n; ++i) {
    T[i] = grid.cluster(i).internal_bcast_time(m);
    for (ClusterId j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto& link = grid.link(i, j);
      g(i, j) = link.g(m);
      L(i, j) = link.L;
    }
  }
  return Instance(root, std::move(g), std::move(L), std::move(T));
}

Time Instance::max_T() const {
  return *std::max_element(T_.begin(), T_.end());
}

Time Instance::lower_bound() const {
  Time lb = T_[root_];
  for (ClusterId j = 0; j < T_.size(); ++j) {
    if (j == root_) continue;
    Time best_in = std::numeric_limits<Time>::infinity();
    for (ClusterId i = 0; i < T_.size(); ++i)
      if (i != j) best_in = std::min(best_in, transfer(i, j));
    lb = std::max(lb, best_in + T_[j]);
  }
  return lb;
}

void Instance::validate() const {
  const std::size_t n = T_.size();
  GRIDCAST_ASSERT(n >= 1, "instance needs at least one cluster");
  GRIDCAST_ASSERT(g_.size() == n && L_.size() == n,
                  "matrix sizes must match cluster count");
  GRIDCAST_ASSERT(root_ < n, "root out of range");
  for (ClusterId i = 0; i < n; ++i) {
    GRIDCAST_ASSERT(T_[i] >= 0.0, "negative internal broadcast time");
    for (ClusterId j = 0; j < n; ++j) {
      if (i == j) continue;
      GRIDCAST_ASSERT(g_(i, j) >= 0.0, "negative gap");
      GRIDCAST_ASSERT(L_(i, j) >= 0.0, "negative latency");
    }
  }
}

}  // namespace gridcast::sched
