#pragma once

#include <span>

#include "sched/instance.hpp"
#include "sched/schedule.hpp"

/// Deterministic timing of a send order (the paper's cost model).
///
/// Timing semantics shared by every heuristic and by the makespan numbers
/// in Figs. 1–5:
///   * Each coordinator owns one NIC; its sends serialize.  A transfer
///     (s → r) starts at `max(ready_s, nic_free_s)`, where `ready_s` is
///     when s obtained the payload and `nic_free_s` when its previous
///     injection's gap elapsed.
///   * The transfer occupies the sender for g_sr(m); the receiver holds
///     the payload at `start + g_sr(m) + L_sr` (the paper's
///     `RT_i + g_ij(m) + L_ij`).
///   * A cluster begins its internal broadcast after its last
///     inter-cluster involvement (MagPIe behaviour, paper Section 3) and
///     needs T_c more; the makespan is the latest internal completion.
namespace gridcast::sched {

/// When a cluster's internal broadcast is charged (DESIGN.md §4.8).
///
/// The paper's formalism prose says a cluster broadcasts internally "when
/// it does not participate in any other inter-cluster communication"
/// (kAfterLastSend).  Its *simulation results*, however, are only
/// reproduced when a cluster's completion is `arrival + T_c` — i.e. the
/// internal broadcast overlaps any later forwarding duties (kEager): this
/// is also the cost the T-aware lookahead functions implicitly assume
/// (F_j sums g + L + T_k as one path).  We default to kEager for the
/// Fig. 1-4 studies and use kAfterLastSend when predicting the executor
/// (Figs. 5-6), whose coordinators genuinely serialize relay and local
/// traffic on one NIC.
enum class CompletionModel : std::uint8_t {
  kEager,          ///< finish_c = arrival_c + T_c
  kAfterLastSend,  ///< finish_c = last inter-cluster activity + T_c
};

/// Time a given send order and compute all completion times.  The order
/// must be causal (senders hold the message before sending) and cover each
/// non-root cluster exactly once; violations throw LogicError.
[[nodiscard]] Schedule evaluate_order(
    const Instance& inst, std::span<const SendPair> order,
    CompletionModel model = CompletionModel::kEager);

/// Incremental evaluation state, exposed so that heuristics can make
/// selection decisions with exactly the evaluator's timing rules (no model
/// drift between selection and scoring).
class EvalState {
 public:
  /// An unbound state; call reset() before use.  Exists so hot loops can
  /// keep one EvalState and rebind it per instance, reusing its vectors.
  EvalState() = default;

  explicit EvalState(const Instance& inst) { reset(inst); }

  /// Rebind to `inst` and restore the initial timing state (only the root
  /// holds the payload, all NICs free), reusing allocated storage.
  void reset(const Instance& inst);

  /// Earliest moment cluster `i` could start a new injection now.
  [[nodiscard]] Time send_start(ClusterId i) const;
  /// Whether the cluster already holds the payload.
  [[nodiscard]] bool has_message(ClusterId i) const;
  /// Arrival time if (s → r) were appended next.
  [[nodiscard]] Time arrival_if(ClusterId s, ClusterId r) const;

  /// Commit the transfer and return it with its timing.
  Transfer apply(ClusterId s, ClusterId r);

  /// Finalize: internal broadcasts + makespan for the transfers applied
  /// so far.
  [[nodiscard]] Schedule finish(
      CompletionModel model = CompletionModel::kEager) const;

 private:
  const Instance* inst_ = nullptr;  ///< bound instance (never null after reset)
  std::vector<Time> ready_;      ///< payload arrival; infinity = not yet
  std::vector<Time> nic_free_;   ///< NIC available for the next injection
  std::vector<Time> last_busy_;  ///< last inter-cluster involvement
  std::vector<Transfer> log_;
};

}  // namespace gridcast::sched
