#pragma once

#include <string_view>
#include <vector>

#include "sched/evaluate.hpp"
#include "sched/heuristics.hpp"

/// Uniform driver around the heuristic zoo.
namespace gridcast::sched {

/// Tunable knobs shared by the ablation variants.
struct HeuristicOptions {
  FefWeight fef_weight = FefWeight::kLatencyOnly;
  BottomUpPolicy bottomup = BottomUpPolicy::kReadyTimeAware;
  /// How schedules are scored (selection is unaffected; see evaluate.hpp).
  CompletionModel completion = CompletionModel::kEager;
};

/// One named, configured scheduling strategy.
class Scheduler {
 public:
  explicit Scheduler(HeuristicKind kind, HeuristicOptions opts = {});

  [[nodiscard]] HeuristicKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::string_view name() const noexcept {
    return to_string(kind_);
  }
  [[nodiscard]] const HeuristicOptions& options() const noexcept {
    return opts_;
  }

  /// Select the send order for the instance.
  [[nodiscard]] SendOrder order(const Instance& inst) const;

  /// Select and time: the full pipeline.
  [[nodiscard]] Schedule run(const Instance& inst) const;

  /// Shorthand when only the makespan matters (hot path of the
  /// Monte-Carlo benches).
  [[nodiscard]] Time makespan(const Instance& inst) const;

 private:
  HeuristicKind kind_;
  HeuristicOptions opts_;
};

/// The seven strategies in the order of the paper's figures:
/// FlatTree, FEF, ECEF, ECEF-LA, ECEF-LAt, ECEF-LAT, BottomUp.
[[nodiscard]] std::vector<Scheduler> paper_heuristics(
    HeuristicOptions opts = {});

/// The four ECEF-family strategies of Figs. 3–4:
/// ECEF, ECEF-LA, ECEF-LAt, ECEF-LAT.
[[nodiscard]] std::vector<Scheduler> ecef_family(HeuristicOptions opts = {});

}  // namespace gridcast::sched
