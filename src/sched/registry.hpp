#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/scheduler_entry.hpp"
#include "support/named_registry.hpp"

/// The global scheduler registry: every heuristic the system knows is a
/// named factory here, and every consumer — collectives, experiment
/// harnesses, bench binaries — selects strategies by registry name string
/// instead of switching on an enum.  Adding a heuristic is therefore one
/// `SchedulerEntry` subclass plus one `add()` call; no consumer changes.
namespace gridcast::sched {

class SchedulerRegistry {
 public:
  /// Builds a `const` entry configured with the given options.
  using Factory =
      std::function<SchedulerEntryPtr(const HeuristicOptions&)>;

  SchedulerRegistry();

  /// Register a factory under a canonical name (matched exactly) plus
  /// optional aliases (matched case-insensitively).  Throws InvalidInput
  /// when the name or any alias is already taken.
  void add(std::string name, Factory factory,
           std::vector<std::string> aliases = {});

  /// Construct the entry registered under `name` (canonical or alias).
  /// Throws InvalidInput for unknown names, listing what is available.
  [[nodiscard]] SchedulerEntryPtr make(std::string_view name,
                                       HeuristicOptions opts = {}) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Canonical names in registration order (the paper's figure order for
  /// the built-ins).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Construct every registered entry, in registration order.
  [[nodiscard]] std::vector<SchedulerEntryPtr> make_all(
      HeuristicOptions opts = {}) const;

 private:
  /// The shared machinery: scheduler policy is exact-match canonicals
  /// (mixed case preserved) with folded aliases.  Factories come back by
  /// value and are invoked outside the lock — composite entries ("Mixed",
  /// "auto") resolve their delegates through the registry from inside
  /// their factory, which would self-deadlock otherwise.
  NamedRegistry<Factory> reg_;
};

/// The process-wide registry, pre-populated with the paper's heuristics
/// (builtin_schedulers.hpp).  Thread-safe; user code may `add()` its own
/// entries at any time (see examples/custom_heuristic.cpp).
[[nodiscard]] SchedulerRegistry& registry();

/// Value-semantic handle over a shared registry entry — what consumer
/// APIs traffic in, so strategy lists stay plain `std::vector<Scheduler>`.
class Scheduler {
 public:
  /// Wrap an existing entry.
  explicit Scheduler(SchedulerEntryPtr entry);
  /// Look `name` up in the global registry (canonical or alias).
  explicit Scheduler(std::string_view name, HeuristicOptions opts = {});

  [[nodiscard]] std::string_view name() const noexcept {
    return entry_->name();
  }
  [[nodiscard]] const HeuristicOptions& options() const noexcept {
    return entry_->options();
  }
  [[nodiscard]] const SchedulerEntry& entry() const noexcept {
    return *entry_;
  }

  /// Select the send order for the instance.
  [[nodiscard]] SendOrder order(const Instance& inst) const {
    return entry_->order(inst);
  }
  [[nodiscard]] SendOrder order(const SchedulerRuntimeInfo& info) const {
    return entry_->order(info);
  }

  /// Select and time: the full pipeline.
  [[nodiscard]] Schedule run(const Instance& inst) const {
    return entry_->run(inst);
  }

  /// Shorthand when only the makespan matters.
  [[nodiscard]] Time makespan(const Instance& inst) const {
    return entry_->makespan(inst);
  }

 private:
  SchedulerEntryPtr entry_;
};

/// The seven strategies in the order of the paper's figures:
/// FlatTree, FEF, ECEF, ECEF-LA, ECEF-LAt, ECEF-LAT, BottomUp.
[[nodiscard]] std::vector<Scheduler> paper_heuristics(
    HeuristicOptions opts = {});

/// The four ECEF-family strategies of Figs. 3–4:
/// ECEF, ECEF-LA, ECEF-LAt, ECEF-LAT.
[[nodiscard]] std::vector<Scheduler> ecef_family(HeuristicOptions opts = {});

}  // namespace gridcast::sched
