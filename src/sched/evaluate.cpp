#include "sched/evaluate.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace gridcast::sched {

namespace {
constexpr Time kNotYet = std::numeric_limits<Time>::infinity();
}

void EvalState::reset(const Instance& inst) {
  inst_ = &inst;
  ready_.assign(inst.clusters(), kNotYet);
  nic_free_.assign(inst.clusters(), 0.0);
  last_busy_.assign(inst.clusters(), 0.0);
  log_.clear();
  ready_[inst.root()] = 0.0;
}

Time EvalState::send_start(ClusterId i) const {
  GRIDCAST_ASSERT(i < ready_.size(), "cluster id out of range");
  GRIDCAST_ASSERT(ready_[i] != kNotYet, "sender does not hold the message");
  return std::max(ready_[i], nic_free_[i]);
}

bool EvalState::has_message(ClusterId i) const {
  GRIDCAST_ASSERT(i < ready_.size(), "cluster id out of range");
  return ready_[i] != kNotYet;
}

Time EvalState::arrival_if(ClusterId s, ClusterId r) const {
  return send_start(s) + inst_->transfer(s, r);
}

Transfer EvalState::apply(ClusterId s, ClusterId r) {
  GRIDCAST_ASSERT(s != r, "self transfer");
  GRIDCAST_ASSERT(has_message(s), "sender does not hold the message");
  GRIDCAST_ASSERT(!has_message(r), "receiver already holds the message");

  Transfer t;
  t.sender = s;
  t.receiver = r;
  t.start = send_start(s);
  t.arrival = t.start + inst_->transfer(s, r);

  nic_free_[s] = t.start + inst_->g(s, r);
  last_busy_[s] = std::max(last_busy_[s], nic_free_[s]);
  ready_[r] = t.arrival;
  last_busy_[r] = std::max(last_busy_[r], t.arrival);
  log_.push_back(t);
  return t;
}

Schedule EvalState::finish(CompletionModel model) const {
  Schedule s;
  s.root = inst_->root();
  s.transfers = log_;
  s.cluster_finish.resize(inst_->clusters());
  for (ClusterId c = 0; c < inst_->clusters(); ++c) {
    // A cluster that never received does not finish; callers only invoke
    // finish() on complete orders (evaluate_order enforces coverage), but
    // partial finishes are allowed for optimal-search lower bounds.
    if (ready_[c] == kNotYet) {
      s.cluster_finish[c] = kNotYet;
      continue;
    }
    const Time base =
        model == CompletionModel::kEager ? ready_[c] : last_busy_[c];
    s.cluster_finish[c] = base + inst_->T(c);
  }
  s.makespan =
      *std::max_element(s.cluster_finish.begin(), s.cluster_finish.end());
  return s;
}

Schedule evaluate_order(const Instance& inst, std::span<const SendPair> order,
                        CompletionModel model) {
  GRIDCAST_ASSERT(order.size() == inst.clusters() - 1,
                  "order must contain exactly one transfer per non-root");
  // Hot path of every heuristic and Monte-Carlo iteration: keep the state's
  // vectors alive per thread instead of reallocating them per evaluation.
  thread_local EvalState st;
  st.reset(inst);
  for (const auto& [s, r] : order) st.apply(s, r);
  const Schedule sched = st.finish(model);
  // Well-formedness is an O(clusters) walk over the whole schedule — the
  // expensive contract tier.  apply() already ASSERTs the per-transfer
  // preconditions in every build; the full structural re-check runs on
  // the Debug/sanitizer lanes, off the Monte-Carlo hot path in release.
  GRIDCAST_DCHECK(describe_invalid(sched, inst.clusters()).empty(),
                  "evaluator produced invalid schedule: " +
                      describe_invalid(sched, inst.clusters()));
  return sched;
}

}  // namespace gridcast::sched
