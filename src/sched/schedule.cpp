#include "sched/schedule.hpp"

#include <ostream>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace gridcast::sched {

void Schedule::print(std::ostream& os) const {
  os << "broadcast from cluster " << root << ", makespan "
     << makespan << " s\n";
  for (const auto& t : transfers)
    os << "  " << t.sender << " -> " << t.receiver << "  start " << t.start
       << "  arrival " << t.arrival << '\n';
  for (std::size_t c = 0; c < cluster_finish.size(); ++c)
    os << "  cluster " << c << " finishes at " << cluster_finish[c] << '\n';
}

std::string describe_invalid(const Schedule& s, std::size_t clusters) {
  if (s.root >= clusters) return "root out of range";
  if (s.cluster_finish.size() != clusters)
    return "finish vector size mismatch";
  if (s.transfers.size() != clusters - 1)
    return "expected exactly one transfer per non-root cluster";

  std::vector<int> received(clusters, 0);
  std::vector<Time> has_at(clusters, -1.0);  // -1: not yet
  has_at[s.root] = 0.0;

  for (const auto& t : s.transfers) {
    if (t.sender >= clusters || t.receiver >= clusters)
      return "transfer endpoint out of range";
    if (t.receiver == s.root) return "root must never receive";
    if (t.sender == t.receiver) return "self transfer";
    if (has_at[t.sender] < 0.0)
      return "sender " + std::to_string(t.sender) +
             " transmitted before receiving";
    if (t.start + 1e-12 < has_at[t.sender])
      return "transfer starts before sender holds the message";
    if (t.arrival < t.start) return "arrival precedes start";
    if (++received[t.receiver] > 1)
      return "cluster " + std::to_string(t.receiver) + " received twice";
    has_at[t.receiver] = t.arrival;
  }
  for (std::size_t c = 0; c < clusters; ++c) {
    if (c != s.root && received[c] != 1)
      return "cluster " + std::to_string(c) + " never received";
    if (s.cluster_finish[c] + 1e-12 < has_at[c])
      return "cluster finishes before it holds the message";
    if (s.makespan + 1e-12 < s.cluster_finish[c])
      return "makespan below a cluster finish time";
  }
  return {};
}

bool is_valid(const Schedule& s, std::size_t clusters) {
  return describe_invalid(s, clusters).empty();
}

}  // namespace gridcast::sched
