#pragma once

#include <string>
#include <vector>

#include "sched/instance.hpp"
#include "sched/schedule.hpp"

/// Post-hoc schedule analysis.
///
/// The paper's discussion repeatedly reasons about *why* a schedule is
/// good or bad — which cluster sits on the critical path, whether senders
/// were starved or saturated, how deep the relay tree grew.  This module
/// computes those quantities from a timed schedule so examples and
/// benches can explain results instead of just printing makespans.
namespace gridcast::sched {

/// Per-cluster utilisation and position in the relay tree.
struct ClusterReport {
  ClusterId cluster = kNoCluster;
  Time arrival = 0.0;        ///< when its coordinator got the payload (root: 0)
  Time busy = 0.0;           ///< total NIC occupation by its outgoing sends
  std::uint32_t sends = 0;   ///< outgoing inter-cluster transfers
  std::uint32_t depth = 0;   ///< hops from the root in the relay tree
  Time finish = 0.0;         ///< internal completion (from the schedule)
  bool on_critical_path = false;
};

/// Whole-schedule analysis.
struct ScheduleAnalysis {
  std::vector<ClusterReport> clusters;   ///< indexed by cluster id
  ClusterId bottleneck = kNoCluster;     ///< cluster attaining the makespan
  std::uint32_t tree_depth = 0;          ///< max relay depth
  double mean_sender_utilisation = 0.0;  ///< busy / makespan over senders
  /// Critical path from the root to the bottleneck cluster, as the list
  /// of clusters traversed (root first).
  std::vector<ClusterId> critical_path;
};

/// Analyse a timed schedule against its instance.
[[nodiscard]] ScheduleAnalysis analyze(const Instance& inst,
                                       const Schedule& s);

/// Render a fixed-width ASCII Gantt chart of the schedule's transfers and
/// internal broadcasts (one row per cluster), `width` characters wide.
[[nodiscard]] std::string render_gantt(const Instance& inst,
                                       const Schedule& s,
                                       std::size_t width = 72);

}  // namespace gridcast::sched
