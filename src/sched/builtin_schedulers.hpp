#pragma once

#include "sched/scheduler_entry.hpp"

/// Concrete `SchedulerEntry` subclasses for the paper's heuristics, one
/// class per selection rule.  The ECEF family is one class parameterised
/// by its lookahead function — the class also exposes the two alternative
/// lookaheads Bhat suggested ("ECEF-AvgEdge", "ECEF-AvgMove"), which the
/// paper recounts but does not race.
///
/// Normal code should not construct these directly; go through
/// `registry().make(name, opts)` so strategy choice stays a runtime
/// string, not a compile-time type.
namespace gridcast::sched {

class FlatTreeScheduler final : public SchedulerEntry {
 public:
  using SchedulerEntry::SchedulerEntry;
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "FlatTree";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
};

class FefScheduler final : public SchedulerEntry {
 public:
  using SchedulerEntry::SchedulerEntry;
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "FEF";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;
};

class EcefScheduler final : public SchedulerEntry {
 public:
  explicit EcefScheduler(Lookahead la, HeuristicOptions opts = {})
      : SchedulerEntry(opts), la_(la) {}
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;
  [[nodiscard]] Lookahead lookahead() const noexcept { return la_; }

 private:
  Lookahead la_;
};

class BottomUpScheduler final : public SchedulerEntry {
 public:
  using SchedulerEntry::SchedulerEntry;
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "BottomUp";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;
};

class SchedulerRegistry;

/// Register every built-in entry (the paper's seven plus the two extra
/// lookahead flavours) into `reg`.  Called once by `registry()`; exposed
/// so tests can populate a private registry.
void register_builtin_schedulers(SchedulerRegistry& reg);

}  // namespace gridcast::sched
