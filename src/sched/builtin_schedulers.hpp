#pragma once

#include "sched/scheduler_entry.hpp"

/// Concrete `SchedulerEntry` subclasses for the paper's heuristics, one
/// class per selection rule.  The ECEF family is one class parameterised
/// by its lookahead function — the class also exposes the two alternative
/// lookaheads Bhat suggested ("ECEF-AvgEdge", "ECEF-AvgMove"), which the
/// paper recounts but does not race.
///
/// Normal code should not construct these directly; go through
/// `registry().make(name, opts)` so strategy choice stays a runtime
/// string, not a compile-time type.
namespace gridcast::sched {

class FlatTreeScheduler final : public SchedulerEntry {
 public:
  using SchedulerEntry::SchedulerEntry;
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "FlatTree";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
};

class FefScheduler final : public SchedulerEntry {
 public:
  using SchedulerEntry::SchedulerEntry;
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "FEF";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;
};

class EcefScheduler final : public SchedulerEntry {
 public:
  explicit EcefScheduler(Lookahead la, HeuristicOptions opts = {})
      : SchedulerEntry(opts), la_(la) {}
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;
  [[nodiscard]] Lookahead lookahead() const noexcept { return la_; }

 private:
  Lookahead la_;
};

class BottomUpScheduler final : public SchedulerEntry {
 public:
  using SchedulerEntry::SchedulerEntry;
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "BottomUp";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;
};

// -- Grid-shape-specialised entries ----------------------------------
//
// These entries only make sense on particular grid shapes, so they
// implement `can_schedule` over the runtime info's cached aggregates
// (`lower_bound()`, `max_internal()`) instead of accepting any instance.
// Race harnesses consult the gate and *skip* a refusing entry rather than
// race it (exp::backend_sweep), so registering a specialised entry is safe
// even for `--sched=all` sweeps over grids it was not built for.

/// LAN-homogeneous grids: when the makespan lower bound shows the cheapest
/// inter-cluster transfers add at most `lan_slack - 1` of the internal
/// broadcast time (lower_bound <= lan_slack * max_internal), the WAN
/// ordering barely matters and the O(n) flat order is the right tool —
/// paying an O(n³) lookahead there buys nothing.  On genuinely
/// wide-area grids the gate refuses.
class LanFlatScheduler final : public SchedulerEntry {
 public:
  explicit LanFlatScheduler(HeuristicOptions opts = {},
                            double lan_slack = kDefaultLanSlack)
      : SchedulerEntry(opts), lan_slack_(lan_slack) {}
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LAN-Flat";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] bool can_schedule(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;

  /// Transfers may add at most 10% over the internal broadcasts.
  static constexpr double kDefaultLanSlack = 1.1;

 private:
  double lan_slack_;
};

/// Star-shaped WANs: every non-root cluster's cheapest incoming edge is
/// the direct edge from the root (hub-and-spoke, the shape of a testbed
/// whose sites all peer through one exchange).  There the root serves
/// everyone anyway, so the entry orders the spokes directly — worst
/// direct path (g + L + T) first — without running a general heuristic's
/// lookahead.  `can_schedule` verifies the hub shape and additionally
/// requires the star to matter (lower_bound above the LAN regime).
class StarWanScheduler final : public SchedulerEntry {
 public:
  using SchedulerEntry::SchedulerEntry;
  using SchedulerEntry::order;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "Star-WAN";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] bool can_schedule(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;
};

class SchedulerRegistry;

/// Register every built-in entry (the paper's seven plus the two extra
/// lookahead flavours and the grid-shape-specialised pair) into `reg`.
/// Called once by `registry()`; exposed so tests can populate a private
/// registry.
void register_builtin_schedulers(SchedulerRegistry& reg);

}  // namespace gridcast::sched
