#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sched/registry.hpp"

/// The registry-wide per-instance selector (nvfuser's
/// `SchedulerEntry::proposeHeuristics` pattern): the paper's headline
/// claim is that no single heuristic wins everywhere, and "Mixed" encodes
/// only a two-way size split of that insight.  "auto" closes the loop —
/// it consults *every* non-composite registry entry, scores the
/// `can_schedule` survivors under the analytic model, and returns the
/// per-instance winner, so it matches or beats Mixed by construction.
namespace gridcast::sched {

/// A composite `SchedulerEntry` registered as "auto" (aliases "best",
/// "propose").  Its candidate set is snapshotted from a registry at
/// construction: every canonical entry except itself and other composites
/// (is_composite() — "auto" never recurses into "Mixed" or "auto").
class AutoScheduler final : public SchedulerEntry {
 public:
  /// The outcome of one selection, exposed for tests and cost surfacing.
  struct Proposal {
    std::string_view winner;  ///< winning candidate's registry name
    SendOrder order;          ///< the winner's send order
    Time makespan = 0.0;      ///< the winner's evaluated makespan
    std::size_t evaluated = 0;  ///< candidates scored through the model
    std::size_t pruned = 0;     ///< skipped: bound cannot beat incumbent
    std::size_t gated = 0;      ///< skipped: can_schedule refused
  };

  /// Snapshot candidates from `reg` (usually the global registry; tests
  /// pass local ones).  `self_name` is the canonical name this entry is
  /// registered under — skipped *before* construction, since building it
  /// would recurse forever.  Other composites are constructed, recognised
  /// via is_composite(), and dropped.
  explicit AutoScheduler(const SchedulerRegistry& reg,
                         HeuristicOptions opts = {},
                         std::string_view self_name = "auto");

  [[nodiscard]] std::string_view name() const noexcept override {
    return "auto";
  }
  [[nodiscard]] bool is_composite() const noexcept override { return true; }

  /// True iff any candidate accepts the instance — "auto" can schedule
  /// exactly when the registry holds at least one non-composite entry
  /// that can.
  [[nodiscard]] bool can_schedule(
      const SchedulerRuntimeInfo& info) const override;

  /// The winner's order (`propose(info).order`).
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;

  /// E.g. "prune=on candidates=11" — deterministic, so the serve layer's
  /// scheduler-set revision folds it.
  [[nodiscard]] std::string describe_options() const override;

  /// Full selection: walk the candidates in registration order, skip
  /// `can_schedule` refusers, evaluate the rest under the analytic model
  /// (`evaluate_order` with this entry's completion model) and keep the
  /// strict-less winner — ties keep the earlier candidate, so selection
  /// is deterministic and pinned.  With `options().prune`, a candidate
  /// whose `lower_bound(info)` cannot beat the incumbent is skipped
  /// unevaluated; because a sound bound never exceeds the evaluated
  /// makespan, pruning can only skip candidates that could not have won —
  /// winners (and therefore reports) are byte-identical with pruning on
  /// or off.  An unsound candidate bound trips a GRIDCAST_DCHECK when
  /// evaluated.  Throws InvalidInput when every candidate refuses.
  [[nodiscard]] Proposal propose(const SchedulerRuntimeInfo& info) const;

  /// Candidate registry names, in registration order (tests pin the
  /// composite-exclusion and ordering contracts against this).
  [[nodiscard]] std::vector<std::string_view> candidate_names() const;

  using SchedulerEntry::order;

 private:
  std::vector<SchedulerEntryPtr> candidates_;  ///< registration order
};

}  // namespace gridcast::sched
