#pragma once

#include <iosfwd>
#include <vector>

#include "support/types.hpp"

/// Broadcast schedules: the heuristics' output.
namespace gridcast::sched {

/// One inter-cluster coordinator transfer.
struct Transfer {
  ClusterId sender = kNoCluster;
  ClusterId receiver = kNoCluster;
  Time start = 0.0;    ///< moment the sender begins injecting
  Time arrival = 0.0;  ///< moment the receiver holds the payload

  [[nodiscard]] bool operator==(const Transfer&) const = default;
};

/// The ordered sender→receiver pairs a heuristic selects, before timing.
/// The order is significant: it fixes each sender's NIC sequence.
struct SendPair {
  ClusterId sender = kNoCluster;
  ClusterId receiver = kNoCluster;

  [[nodiscard]] bool operator==(const SendPair&) const = default;
};
using SendOrder = std::vector<SendPair>;

/// A fully timed broadcast schedule.
struct Schedule {
  ClusterId root = kNoCluster;
  std::vector<Transfer> transfers;      ///< in selection order
  std::vector<Time> cluster_finish;     ///< last activity + T_c, per cluster
  Time makespan = 0.0;                  ///< max of cluster_finish

  /// Human-readable dump (one line per transfer plus the finish vector).
  void print(std::ostream& os) const;
};

/// Structural validity: every non-root cluster appears exactly once as a
/// receiver, the root never receives, every sender already held the
/// message when its transfer started, and times are causally consistent.
/// Returns an empty string when valid, else a description of the defect.
[[nodiscard]] std::string describe_invalid(const Schedule& s,
                                           std::size_t clusters);

/// Convenience: true when describe_invalid() is empty.
[[nodiscard]] bool is_valid(const Schedule& s, std::size_t clusters);

}  // namespace gridcast::sched
