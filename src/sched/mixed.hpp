#pragma once

#include <cstddef>

#include "sched/registry.hpp"

/// The paper's closing recommendation (Section 6): use performance-
/// oriented heuristics (ECEF-LA) on small grids and the balance-oriented
/// ECEF-LAT once the cluster count grows, because the latter's hit rate
/// stays constant while the former's decays.
namespace gridcast::sched {

class MixedStrategy {
 public:
  /// `threshold`: cluster count at and below which the small-grid
  /// heuristic is used.  The paper suggests "reduced" ≈ today's grids
  /// (~10 clusters, the GRID5000 scale of Fig. 1).
  explicit MixedStrategy(std::size_t threshold = 10,
                         HeuristicOptions opts = {});

  /// Which heuristic the strategy delegates to for this instance size.
  [[nodiscard]] HeuristicKind choice(std::size_t clusters) const noexcept;

  [[nodiscard]] SendOrder order(const Instance& inst) const;
  [[nodiscard]] Schedule run(const Instance& inst) const;
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

 private:
  std::size_t threshold_;
  Scheduler small_;
  Scheduler large_;
};

}  // namespace gridcast::sched
