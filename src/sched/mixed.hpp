#pragma once

#include <cstddef>
#include <string_view>

#include "sched/registry.hpp"

/// The paper's closing recommendation (Section 6): use performance-
/// oriented heuristics (ECEF-LA) on small grids and the balance-oriented
/// ECEF-LAT once the cluster count grows, because the latter's hit rate
/// stays constant while the former's decays.
namespace gridcast::sched {

/// A composite `SchedulerEntry` that delegates to two registry entries by
/// instance size.  Registered in the global registry as "Mixed", so the
/// paper's deployment recommendation is itself selectable by name.
class MixedStrategy final : public SchedulerEntry {
 public:
  /// `threshold`: cluster count at and below which the small-grid
  /// heuristic is used.  The paper suggests "reduced" ≈ today's grids
  /// (~10 clusters, the GRID5000 scale of Fig. 1).  Delegates are
  /// resolved through `registry()` by name, not hardcoded.
  explicit MixedStrategy(std::size_t threshold = 10,
                         HeuristicOptions opts = {},
                         std::string_view small_name = "ECEF-LA",
                         std::string_view large_name = "ECEF-LAT");

  [[nodiscard]] std::string_view name() const noexcept override {
    return "Mixed";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override;
  [[nodiscard]] std::string describe_options() const override;
  /// Delegating entry: composite selectors ("auto") must not recurse
  /// into it.
  [[nodiscard]] bool is_composite() const noexcept override { return true; }

  /// Which registered heuristic the strategy delegates to for this
  /// instance size.
  [[nodiscard]] const SchedulerEntry& delegate(
      std::size_t clusters) const noexcept;

  /// Name of the delegate for this instance size.
  [[nodiscard]] std::string_view choice(std::size_t clusters) const noexcept {
    return delegate(clusters).name();
  }

  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

  using SchedulerEntry::order;

 private:
  std::size_t threshold_;
  SchedulerEntryPtr small_;
  SchedulerEntryPtr large_;
};

}  // namespace gridcast::sched
