#include "sched/registry.hpp"

#include <algorithm>
#include <cctype>

#include "sched/builtin_schedulers.hpp"
#include "support/error.hpp"

namespace gridcast::sched {

namespace {

std::string fold(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

void SchedulerRegistry::add(std::string name, Factory factory,
                            std::vector<std::string> aliases) {
  if (name.empty()) throw InvalidInput("scheduler name must be non-empty");
  if (!factory) throw InvalidInput("scheduler factory must be callable");
  std::lock_guard lk(mu_);
  // A new canonical name must not shadow an existing alias: find() tries
  // the exact canonical match first, so accepting it would silently
  // redirect every lookup of that alias.  (An alias equal to the fold of
  // an existing canonical stays legal — exact-match-first keeps it
  // unambiguous, and the "ecef-lat" → ECEF-LAT alias relies on it.)
  if (factories_.contains(name) || aliases_.contains(fold(name)))
    throw InvalidInput("scheduler '" + name + "' is already registered");
  for (std::size_t i = 0; i < aliases.size(); ++i) {
    aliases[i] = fold(aliases[i]);
    if (aliases_.contains(aliases[i]) || factories_.contains(aliases[i]))
      throw InvalidInput("scheduler alias '" + aliases[i] +
                         "' is already registered");
    // Also reject duplicates *within this call*: emplace below keeps only
    // the first occurrence, so a repeated alias would be silently dropped.
    for (std::size_t j = 0; j < i; ++j)
      if (aliases[j] == aliases[i])
        throw InvalidInput("scheduler alias '" + aliases[i] +
                           "' appears twice in one registration");
  }
  for (auto& a : aliases) aliases_.emplace(std::move(a), name);
  order_.push_back(name);
  factories_.emplace(std::move(name), std::move(factory));
}

const SchedulerRegistry::Factory* SchedulerRegistry::find(
    std::string_view name) const {
  if (const auto it = factories_.find(name); it != factories_.end())
    return &it->second;
  if (const auto al = aliases_.find(fold(name)); al != aliases_.end())
    return &factories_.find(al->second)->second;
  return nullptr;
}

SchedulerEntryPtr SchedulerRegistry::make(std::string_view name,
                                          HeuristicOptions opts) const {
  // The factory is invoked *outside* the lock: composite entries (e.g.
  // "Mixed") resolve their delegates through the registry from inside
  // their factory, which would self-deadlock otherwise.
  Factory factory;
  std::string known;
  {
    std::lock_guard lk(mu_);
    if (const Factory* f = find(name)) {
      factory = *f;
    } else {
      for (const auto& n : order_) {
        if (!known.empty()) known += ", ";
        known += n;
      }
    }
  }
  if (factory) return factory(opts);
  throw InvalidInput("unknown scheduler '" + std::string(name) +
                     "' (registered: " + known + ")");
}

bool SchedulerRegistry::contains(std::string_view name) const {
  std::lock_guard lk(mu_);
  return find(name) != nullptr;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::lock_guard lk(mu_);
  return order_;
}

std::vector<SchedulerEntryPtr> SchedulerRegistry::make_all(
    HeuristicOptions opts) const {
  std::vector<Factory> factories;
  {
    std::lock_guard lk(mu_);
    factories.reserve(order_.size());
    for (const auto& n : order_)
      factories.push_back(factories_.find(n)->second);
  }
  std::vector<SchedulerEntryPtr> out;
  out.reserve(factories.size());
  for (const auto& f : factories) out.push_back(f(opts));
  return out;
}

SchedulerRegistry& registry() {
  static SchedulerRegistry* reg = [] {
    auto* r = new SchedulerRegistry();
    register_builtin_schedulers(*r);
    return r;
  }();
  return *reg;
}

Scheduler::Scheduler(SchedulerEntryPtr entry) : entry_(std::move(entry)) {
  GRIDCAST_ASSERT(entry_ != nullptr, "Scheduler needs a non-null entry");
}

Scheduler::Scheduler(std::string_view name, HeuristicOptions opts)
    : entry_(registry().make(name, opts)) {}

std::vector<Scheduler> paper_heuristics(HeuristicOptions opts) {
  std::vector<Scheduler> out;
  out.reserve(7);
  for (const std::string_view name :
       {"FlatTree", "FEF", "ECEF", "ECEF-LA", "ECEF-LAt", "ECEF-LAT",
        "BottomUp"})
    out.emplace_back(registry().make(name, opts));
  return out;
}

std::vector<Scheduler> ecef_family(HeuristicOptions opts) {
  std::vector<Scheduler> out;
  out.reserve(4);
  for (const std::string_view name :
       {"ECEF", "ECEF-LA", "ECEF-LAt", "ECEF-LAT"})
    out.emplace_back(registry().make(name, opts));
  return out;
}

}  // namespace gridcast::sched
