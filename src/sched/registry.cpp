#include "sched/registry.hpp"

#include "sched/builtin_schedulers.hpp"
#include "support/error.hpp"

namespace gridcast::sched {

SchedulerRegistry::SchedulerRegistry()
    : reg_({.kind = "scheduler",
            .fold_canonical_lookup = false,
            .require_lowercase_canonical = false}) {}

void SchedulerRegistry::add(std::string name, Factory factory,
                            std::vector<std::string> aliases) {
  reg_.add(std::move(name), std::move(factory), std::move(aliases));
}

SchedulerEntryPtr SchedulerRegistry::make(std::string_view name,
                                          HeuristicOptions opts) const {
  // factory_for copies the factory out under the lock; invoking it here
  // keeps composite entries (e.g. "Mixed", "auto") deadlock-free.
  return reg_.factory_for(name)(opts);
}

bool SchedulerRegistry::contains(std::string_view name) const {
  return reg_.contains(name);
}

std::vector<std::string> SchedulerRegistry::names() const {
  return reg_.names();
}

std::vector<SchedulerEntryPtr> SchedulerRegistry::make_all(
    HeuristicOptions opts) const {
  const std::vector<Factory> factories = reg_.all_factories();
  std::vector<SchedulerEntryPtr> out;
  out.reserve(factories.size());
  for (const auto& f : factories) out.push_back(f(opts));
  return out;
}

SchedulerRegistry& registry() {
  static SchedulerRegistry* reg = [] {
    auto* r = new SchedulerRegistry();
    register_builtin_schedulers(*r);
    return r;
  }();
  return *reg;
}

Scheduler::Scheduler(SchedulerEntryPtr entry) : entry_(std::move(entry)) {
  GRIDCAST_ASSERT(entry_ != nullptr, "Scheduler needs a non-null entry");
}

Scheduler::Scheduler(std::string_view name, HeuristicOptions opts)
    : entry_(registry().make(name, opts)) {}

std::vector<Scheduler> paper_heuristics(HeuristicOptions opts) {
  std::vector<Scheduler> out;
  out.reserve(7);
  for (const std::string_view name :
       {"FlatTree", "FEF", "ECEF", "ECEF-LA", "ECEF-LAt", "ECEF-LAT",
        "BottomUp"})
    out.emplace_back(registry().make(name, opts));
  return out;
}

std::vector<Scheduler> ecef_family(HeuristicOptions opts) {
  std::vector<Scheduler> out;
  out.reserve(4);
  for (const std::string_view name :
       {"ECEF", "ECEF-LA", "ECEF-LAt", "ECEF-LAT"})
    out.emplace_back(registry().make(name, opts));
  return out;
}

}  // namespace gridcast::sched
