#include "sched/registry.hpp"

#include "support/error.hpp"

namespace gridcast::sched {

Scheduler::Scheduler(HeuristicKind kind, HeuristicOptions opts)
    : kind_(kind), opts_(opts) {}

SendOrder Scheduler::order(const Instance& inst) const {
  switch (kind_) {
    case HeuristicKind::kFlatTree: return flat_tree_order(inst);
    case HeuristicKind::kFef: return fef_order(inst, opts_.fef_weight);
    case HeuristicKind::kEcef: return ecef_order(inst, Lookahead::kNone);
    case HeuristicKind::kEcefLa: return ecef_order(inst, Lookahead::kMinEdge);
    case HeuristicKind::kEcefLaMin:
      return ecef_order(inst, Lookahead::kMinEdgePlusT);
    case HeuristicKind::kEcefLaMax:
      return ecef_order(inst, Lookahead::kMaxEdgePlusT);
    case HeuristicKind::kBottomUp:
      return bottomup_order(inst, opts_.bottomup);
  }
  GRIDCAST_ASSERT(false, "unknown heuristic kind");
  return {};
}

Schedule Scheduler::run(const Instance& inst) const {
  const SendOrder o = order(inst);
  return evaluate_order(inst, o, opts_.completion);
}

Time Scheduler::makespan(const Instance& inst) const {
  return run(inst).makespan;
}

std::vector<Scheduler> paper_heuristics(HeuristicOptions opts) {
  return {Scheduler(HeuristicKind::kFlatTree, opts),
          Scheduler(HeuristicKind::kFef, opts),
          Scheduler(HeuristicKind::kEcef, opts),
          Scheduler(HeuristicKind::kEcefLa, opts),
          Scheduler(HeuristicKind::kEcefLaMin, opts),
          Scheduler(HeuristicKind::kEcefLaMax, opts),
          Scheduler(HeuristicKind::kBottomUp, opts)};
}

std::vector<Scheduler> ecef_family(HeuristicOptions opts) {
  return {Scheduler(HeuristicKind::kEcef, opts),
          Scheduler(HeuristicKind::kEcefLa, opts),
          Scheduler(HeuristicKind::kEcefLaMin, opts),
          Scheduler(HeuristicKind::kEcefLaMax, opts)};
}

}  // namespace gridcast::sched
