#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "sched/evaluate.hpp"
#include "sched/heuristics.hpp"
#include "sched/instance.hpp"
#include "sched/schedule.hpp"

/// The polymorphic scheduler interface.
///
/// A heuristic is no longer an enum case: it is a `SchedulerEntry` subclass
/// registered by name in the global `SchedulerRegistry` (registry.hpp).
/// Entries are immutable once constructed — `order()` is const and
/// stateless — so one instance can be shared freely across threads (the
/// Monte-Carlo race and the sweep harness both do).
namespace gridcast::sched {

/// Tunable knobs shared by the ablation variants.  Every registered
/// factory accepts one of these, so a single options bag configures any
/// entry (knobs an entry does not understand are ignored).
struct HeuristicOptions {
  FefWeight fef_weight = FefWeight::kLatencyOnly;
  BottomUpPolicy bottomup = BottomUpPolicy::kReadyTimeAware;
  /// How schedules are scored (selection is unaffected; see evaluate.hpp).
  CompletionModel completion = CompletionModel::kEager;
  /// Lower-bound pruning during composite selection ("auto"): a pure
  /// optimisation — winners and reports are identical either way — kept
  /// as a knob so tests (and `--no-prune`) can pin exactly that.
  bool prune = true;
};

/// Per-instance runtime context threaded through selection, so heuristics
/// and their callers stop re-deriving it (nvfuser's SchedulerRuntimeInfo
/// pattern).  Carries the data the Instance alone cannot answer — the
/// message size the gap matrix was derived for, the completion model the
/// caller scores with — plus cached instance aggregates.
class SchedulerRuntimeInfo {
 public:
  /// Build from an instance; `message_size == 0` means "unknown" (the
  /// instance was constructed from explicit matrices, not from a grid).
  explicit SchedulerRuntimeInfo(
      const Instance& inst, Bytes message_size = 0,
      CompletionModel completion = CompletionModel::kEager);

  [[nodiscard]] const Instance& instance() const noexcept { return *inst_; }
  [[nodiscard]] std::size_t clusters() const noexcept { return clusters_; }
  [[nodiscard]] Bytes message_size() const noexcept { return message_size_; }
  [[nodiscard]] CompletionModel completion() const noexcept {
    return completion_;
  }
  /// Cached `Instance::max_T()`.
  [[nodiscard]] Time max_internal() const noexcept { return max_internal_; }
  /// Cached `Instance::lower_bound()`.
  [[nodiscard]] Time lower_bound() const noexcept { return lower_bound_; }

 private:
  const Instance* inst_;
  std::size_t clusters_;
  Bytes message_size_;
  CompletionModel completion_;
  Time max_internal_;
  Time lower_bound_;
};

/// Virtual base class for scheduling heuristics.  Implementations derive
/// from this, implement `order()` over a `SchedulerRuntimeInfo`, and are
/// constructed through the registry (`registry().make("ECEF-LAT")`).
class SchedulerEntry {
 public:
  explicit SchedulerEntry(HeuristicOptions opts = {}) : opts_(opts) {}
  virtual ~SchedulerEntry() = default;

  SchedulerEntry(const SchedulerEntry&) = delete;
  SchedulerEntry& operator=(const SchedulerEntry&) = delete;

  /// Display name as used in the paper's figures ("ECEF-LAT", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Select the send order for the instance described by `info`.
  [[nodiscard]] virtual SendOrder order(
      const SchedulerRuntimeInfo& info) const = 0;

  /// Whether this entry can produce a schedule for the instance.  The
  /// default accepts any instance with at least two clusters;
  /// grid-shape-specialised subclasses refine it over the info's cached
  /// aggregates (LAN-Flat and Star-WAN gate on `lower_bound()` vs
  /// `max_internal()`).  Race harnesses *skip* a refusing entry rather
  /// than race it (exp::backend_sweep), so specialised entries are safe
  /// to register globally.
  [[nodiscard]] virtual bool can_schedule(
      const SchedulerRuntimeInfo& info) const;

  /// One-line description of the knobs this entry was built with, for
  /// bench banners and the registry's help output.
  [[nodiscard]] virtual std::string describe_options() const;

  /// Whether this entry delegates to other registry entries ("Mixed",
  /// "auto").  Composite selectors exclude composites from their
  /// candidate set — "auto" must never recurse into "Mixed" or itself.
  [[nodiscard]] virtual bool is_composite() const noexcept { return false; }

  /// A sound lower bound on the makespan of any schedule this entry can
  /// produce for `info`'s instance: `lower_bound(info) <=
  /// evaluate_order(inst, order(info), ...).makespan` must hold for every
  /// instance the entry accepts.  The default returns the instance-level
  /// bound cached in the info (every schedule delivers each cluster at
  /// least once).  Composite selectors prune candidates whose bound
  /// cannot beat the incumbent; an unsound override is detected under
  /// GRIDCAST_DCHECK during proposal.
  [[nodiscard]] virtual Time lower_bound(
      const SchedulerRuntimeInfo& info) const {
    return info.lower_bound();
  }

  [[nodiscard]] const HeuristicOptions& options() const noexcept {
    return opts_;
  }

  // -- Conveniences over the virtual interface ------------------------

  /// Select the send order, deriving the runtime info internally.
  [[nodiscard]] SendOrder order(const Instance& inst) const;

  /// Select and time: the full pipeline (timed with this entry's
  /// completion model).
  [[nodiscard]] Schedule run(const Instance& inst) const;

  /// Shorthand when only the makespan matters (hot path of the
  /// Monte-Carlo benches).
  [[nodiscard]] Time makespan(const Instance& inst) const;

 protected:
  HeuristicOptions opts_;
};

/// Entries are shared, immutable and thread-safe; this is the ownership
/// handle the registry vends.
using SchedulerEntryPtr = std::shared_ptr<const SchedulerEntry>;

}  // namespace gridcast::sched
