#include "sched/auto_scheduler.hpp"

#include <utility>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace gridcast::sched {

AutoScheduler::AutoScheduler(const SchedulerRegistry& reg,
                             HeuristicOptions opts,
                             std::string_view self_name)
    : SchedulerEntry(opts) {
  for (const std::string& name : reg.names()) {
    // Never construct the entry we are registered as: its factory would
    // build another AutoScheduler and recurse forever.  Every other
    // composite is cheap to construct and identifies itself.
    if (name == self_name) continue;
    SchedulerEntryPtr entry = reg.make(name, opts);
    if (entry->is_composite()) continue;
    candidates_.push_back(std::move(entry));
  }
}

bool AutoScheduler::can_schedule(const SchedulerRuntimeInfo& info) const {
  for (const auto& cand : candidates_)
    if (cand->can_schedule(info)) return true;
  return false;
}

SendOrder AutoScheduler::order(const SchedulerRuntimeInfo& info) const {
  return propose(info).order;
}

std::string AutoScheduler::describe_options() const {
  return std::string("prune=") + (opts_.prune ? "on" : "off") +
         " candidates=" + std::to_string(candidates_.size());
}

AutoScheduler::Proposal AutoScheduler::propose(
    const SchedulerRuntimeInfo& info) const {
  Proposal p;
  const SchedulerEntry* best = nullptr;
  SendOrder best_order;
  Time best_makespan = 0.0;
  for (const auto& cand : candidates_) {
    if (!cand->can_schedule(info)) {
      ++p.gated;
      continue;
    }
    if (opts_.prune && best != nullptr &&
        cand->lower_bound(info) >= best_makespan) {
      // A sound bound at or above the incumbent cannot yield a *strictly*
      // smaller makespan, and only strict-less dethrones the incumbent —
      // so this skip can never change the winner.
      ++p.pruned;
      continue;
    }
    SendOrder order = cand->order(info);
    const Time makespan =
        evaluate_order(info.instance(), order, info.completion()).makespan;
    ++p.evaluated;
    GRIDCAST_DCHECK(
        cand->lower_bound(info) <= makespan,
        "scheduler lower_bound() exceeds its evaluated makespan — the "
        "bound is unsound and pruning on it would be unsafe");
    if (best == nullptr || makespan < best_makespan) {
      best = cand.get();
      best_order = std::move(order);
      best_makespan = makespan;
    }
  }
  if (best == nullptr)
    throw InvalidInput(
        "auto: can_schedule refused every candidate for this instance "
        "(candidates: " +
        [this] {
          std::string names;
          for (const auto& c : candidates_) {
            if (!names.empty()) names += ", ";
            names += c->name();
          }
          return names;
        }() +
        ")");
  p.winner = best->name();
  p.order = std::move(best_order);
  p.makespan = best_makespan;
  return p;
}

std::vector<std::string_view> AutoScheduler::candidate_names() const {
  std::vector<std::string_view> out;
  out.reserve(candidates_.size());
  for (const auto& c : candidates_) out.push_back(c->name());
  return out;
}

}  // namespace gridcast::sched
