#pragma once

#include <cstddef>

#include "sched/evaluate.hpp"
#include "sched/instance.hpp"
#include "sched/schedule.hpp"

/// Exhaustive optimal broadcast scheduling (small instances only).
///
/// Finding the optimal broadcast tree in a heterogeneous network is
/// NP-complete (paper Section 1, after Bhat); the number of send orders is
/// exponential in the cluster count.  For test oracles and the hit-rate
/// discussion we provide a branch-and-bound search over all causal send
/// orders under the evaluator's timing model.  Practical up to ~9 clusters.
namespace gridcast::sched {

struct OptimalResult {
  Schedule schedule;
  std::size_t explored = 0;  ///< DFS nodes visited (search-cost metric)
};

/// Exact minimum-makespan schedule under the given completion model.
/// Throws InvalidInput when the instance exceeds `max_clusters` (guard
/// against accidental exponential blowups).
[[nodiscard]] OptimalResult optimal_schedule(
    const Instance& inst, std::size_t max_clusters = 9,
    CompletionModel model = CompletionModel::kEager);

/// Convenience: just the optimal makespan.
[[nodiscard]] Time optimal_makespan(
    const Instance& inst, std::size_t max_clusters = 9,
    CompletionModel model = CompletionModel::kEager);

}  // namespace gridcast::sched
