#include "plogp/hierarchical_predict.hpp"

#include <algorithm>
#include <vector>

#include "support/error.hpp"

namespace gridcast::plogp {

namespace {

/// Validate that `order` names each cluster other than `self` exactly once
/// (entries equal to `self` are tolerated when `allow_self`, mirroring the
/// executed all-to-all's `if (d == c) continue`).
void check_order(std::span<const ClusterId> order, std::size_t clusters,
                 ClusterId self, bool allow_self) {
  thread_local std::vector<char> seen;  // scratch: called once per cluster
  seen.assign(clusters, 0);
  std::size_t covered = 0;
  for (const ClusterId c : order) {
    GRIDCAST_ASSERT(c < clusters, "order names a cluster out of range");
    if (c == self) {
      GRIDCAST_ASSERT(allow_self, "order names the local cluster");
      continue;
    }
    GRIDCAST_ASSERT(!seen[c], "order names a cluster twice");
    seen[c] = 1;
    ++covered;
  }
  GRIDCAST_ASSERT(covered + 1 == clusters,
                  "order must cover every other cluster exactly once");
}

}  // namespace

HierarchicalPrediction predict_hierarchical_scatter(
    const topology::Grid& grid, ClusterId root, Bytes block,
    std::span<const ClusterId> wan_order) {
  const std::size_t n_clusters = grid.cluster_count();
  GRIDCAST_ASSERT(root < n_clusters, "root cluster out of range");
  check_order(wan_order, n_clusters, root, /*allow_self=*/false);

  HierarchicalPrediction r;
  r.cluster_finish.assign(n_clusters, 0.0);

  // The root coordinator injects one aggregate per remote cluster, back to
  // back: injection k completes at the k-th prefix sum of the WAN gaps.
  Time nic = 0.0;
  for (const ClusterId c : wan_order) {
    const plogp::Params& link = grid.link(root, c);
    const std::uint32_t size = grid.cluster(c).size();
    const Bytes aggregate = static_cast<Bytes>(size) * block;
    nic += link.g(aggregate);
    const Time arrive = nic + link.L;
    // Intra fan-out: the coordinator's sends serialize, the l-th local
    // holds its block at arrive + l·g_c(block) + L_c; the last one is the
    // cluster's finish.
    const plogp::Params& intra = grid.cluster(c).intra();
    r.cluster_finish[c] =
        size > 1 ? arrive + static_cast<double>(size - 1) * intra.g(block) +
                       intra.L
                 : arrive;
    r.messages += size;  // 1 WAN aggregate + (size - 1) local blocks
    r.wan_messages += 1;
    r.bytes += aggregate + static_cast<Bytes>(size - 1) * block;
    r.wan_bytes += aggregate;
  }

  // The root's own locals are served after the WAN injections (one NIC).
  const std::uint32_t root_size = grid.cluster(root).size();
  if (root_size > 1) {
    const plogp::Params& intra = grid.cluster(root).intra();
    r.cluster_finish[root] =
        nic + static_cast<double>(root_size - 1) * intra.g(block) + intra.L;
    r.messages += root_size - 1;
    r.bytes += static_cast<Bytes>(root_size - 1) * block;
  }

  r.completion = *std::max_element(r.cluster_finish.begin(),
                                   r.cluster_finish.end());
  return r;
}

namespace {

/// One cluster-level segment event of the all-to-all resolution.  The
/// (t, seq) ordering mirrors the simulator's event calendar: seq numbers
/// are assigned in the order the executed algorithm would schedule the
/// corresponding callbacks, so simultaneous segments resolve NIC
/// contention identically (symmetric synthetic grids tie constantly).
struct SegmentEvent {
  Time t;
  std::uint64_t seq;
  enum : std::uint8_t { kInject, kArrive } kind;
  ClusterId c;  ///< kInject: ready cluster; kArrive: source cluster
  ClusterId d;  ///< kArrive only: destination cluster
};

struct SegmentLater {
  bool operator()(const SegmentEvent& a, const SegmentEvent& b) const noexcept {
    return a.t > b.t || (a.t == b.t && a.seq > b.seq);
  }
};

/// Per-thread scratch for predict_hierarchical_alltoall: the alltoall
/// sweeps call it once per (instance, size) cell, and these four buffers
/// were the per-call allocations.  `events` is a binary heap managed with
/// std::push_heap/pop_heap — the same ordering the old priority_queue
/// used, minus its per-call container.
struct AlltoallScratch {
  std::vector<Time> nic;
  std::vector<Time> intra_last;
  std::vector<Time> last_delivery;
  std::vector<SegmentEvent> events;
};

AlltoallScratch& alltoall_scratch() {
  thread_local AlltoallScratch s;
  return s;
}

}  // namespace

HierarchicalPrediction predict_hierarchical_alltoall(
    const topology::Grid& grid, Bytes block,
    const std::vector<std::vector<ClusterId>>& dest_order) {
  const std::size_t n_clusters = grid.cluster_count();
  const std::uint32_t n = grid.total_nodes();
  GRIDCAST_ASSERT(dest_order.size() == n_clusters,
                  "dest_order must have one sequence per cluster");
  if (n_clusters > 1)
    for (ClusterId c = 0; c < n_clusters; ++c)
      check_order(dest_order[c], n_clusters, c, /*allow_self=*/true);

  HierarchicalPrediction r;
  r.cluster_finish.assign(n_clusters, 0.0);

  // Closed-form per-cluster segments: the intra pairwise exchange keeps
  // every NIC busy for (size−1)·g_c(block) and lands the last block
  // L_c later; the gather message leaves right behind the intra sends.
  AlltoallScratch& scratch = alltoall_scratch();
  std::vector<Time>& nic = scratch.nic;  // coordinator NIC free time
  std::vector<Time>& intra_last = scratch.intra_last;
  std::vector<Time>& last_delivery = scratch.last_delivery;  // WAN + fan-out
  nic.assign(n_clusters, 0.0);
  intra_last.assign(n_clusters, 0.0);
  last_delivery.assign(n_clusters, 0.0);
  for (ClusterId c = 0; c < n_clusters; ++c) {
    const std::uint32_t size = grid.cluster(c).size();
    if (size <= 1) continue;
    const plogp::Params& intra = grid.cluster(c).intra();
    nic[c] = static_cast<double>(size - 1) * intra.g(block);
    intra_last[c] = nic[c] + intra.L;
    r.messages += static_cast<std::uint64_t>(size) * (size - 1);
    r.bytes += static_cast<Bytes>(size) * (size - 1) * block;
  }

  std::uint64_t seq = 0;
  std::vector<SegmentEvent>& events = scratch.events;
  events.clear();

  // Coordinator c's aggregate injections, serialized on its NIC from
  // `ready` on; each arrival event carries the link latency.
  const auto inject = [&](ClusterId c, Time ready) {
    const std::uint32_t size_c = grid.cluster(c).size();
    for (const ClusterId d : dest_order[c]) {
      if (d == c) continue;
      const std::uint32_t size_d = grid.cluster(d).size();
      const Bytes aggregate =
          static_cast<Bytes>(size_c) * static_cast<Bytes>(size_d) * block;
      const plogp::Params& link = grid.link(c, d);
      const Time start = std::max(ready, nic[c]);
      nic[c] = start + link.g(aggregate);
      events.push_back({nic[c] + link.L, seq++, SegmentEvent::kArrive, c, d});
      std::push_heap(events.begin(), events.end(), SegmentLater{});
      r.messages += 1;
      r.wan_messages += 1;
      r.bytes += aggregate;
      r.wan_bytes += aggregate;
    }
  };

  // Issue order mirrors the executed algorithm's gather loop: ascending
  // cluster id, singletons injecting immediately, gathered clusters
  // becoming ready once the last local contribution lands.
  for (ClusterId c = 0; c < n_clusters && n_clusters > 1; ++c) {
    const std::uint32_t size = grid.cluster(c).size();
    const Bytes remote_blocks = static_cast<Bytes>(n - size) * block;
    if (size == 1 || remote_blocks == 0) {
      inject(c, 0.0);
      continue;
    }
    const plogp::Params& intra = grid.cluster(c).intra();
    // Every local's NIC frees at the same time (identical intra duty), so
    // all gather aggregates land together — that moment is the ready time.
    const Time ready = nic[c] + intra.g(remote_blocks) + intra.L;
    events.push_back({ready, seq++, SegmentEvent::kInject, c, 0});
    std::push_heap(events.begin(), events.end(), SegmentLater{});
    r.messages += size - 1;
    r.bytes += static_cast<Bytes>(size - 1) * remote_blocks;
  }

  // Resolve the segment events in (time, issue-sequence) order: NIC
  // contention between a coordinator's own injections and the fan-out of
  // inbound aggregates is exactly the executed interleaving.
  while (!events.empty()) {
    std::pop_heap(events.begin(), events.end(), SegmentLater{});
    const SegmentEvent ev = events.back();
    events.pop_back();
    if (ev.kind == SegmentEvent::kInject) {
      inject(ev.c, ev.t);
      continue;
    }
    const ClusterId d = ev.d;
    last_delivery[d] = std::max(last_delivery[d], ev.t);
    const std::uint32_t size_d = grid.cluster(d).size();
    if (size_d > 1) {
      const std::uint32_t size_c = grid.cluster(ev.c).size();
      const plogp::Params& intra = grid.cluster(d).intra();
      const Time gap = intra.g(static_cast<Bytes>(size_c) * block);
      for (std::uint32_t l = 1; l < size_d; ++l) {
        const Time start = std::max(ev.t, nic[d]);
        nic[d] = start + gap;
        last_delivery[d] = std::max(last_delivery[d], nic[d] + intra.L);
      }
      r.messages += size_d - 1;
      r.bytes += static_cast<Bytes>(size_d - 1) * size_c * block;
    }
  }

  for (ClusterId c = 0; c < n_clusters; ++c)
    r.cluster_finish[c] = std::max(intra_last[c], last_delivery[c]);
  r.completion = *std::max_element(r.cluster_finish.begin(),
                                   r.cluster_finish.end());
  return r;
}

}  // namespace gridcast::plogp
