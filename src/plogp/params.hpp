#pragma once

#include "plogp/gap_function.hpp"
#include "support/types.hpp"

/// The pLogP parameter set of one (directed) communication channel.
namespace gridcast::plogp {

/// pLogP: latency L plus size-dependent gap g(m), send overhead os(m) and
/// receive overhead or(m).  P (process count) lives with the topology, not
/// here.  The paper's cost of a coordinator-to-coordinator transfer is
/// `g(m) + L` (the sender is busy for g(m); the payload lands L later).
struct Params {
  Time L = 0.0;        ///< one-way latency (seconds)
  GapFunction g;       ///< gap: minimal interval between message injections
  GapFunction os;      ///< send overhead (CPU busy time at the sender)
  GapFunction orecv;   ///< receive overhead (CPU busy time at the receiver)

  /// Validate invariants: L >= 0, all functions present and monotone,
  /// g(m) >= os(m) for sampled sizes (the gap includes the send overhead by
  /// definition).  Throws LogicError on violation.
  void validate() const;

  /// Sender-side cost of injecting one m-byte message (the NIC/channel is
  /// busy for this long before the next injection may start).
  [[nodiscard]] Time gap(Bytes m) const { return g(m); }

  /// Time from send start until the receiver holds the full message:
  /// g(m) + L (pLogP point-to-point completion, as used throughout the
  /// paper's heuristic cost expressions).
  [[nodiscard]] Time transfer_time(Bytes m) const { return g(m) + L; }

  /// Convenience factory: a link characterised by latency + bandwidth,
  /// with overheads a fixed fraction of the gap.  This is the synthetic
  /// stand-in for parameters Kielmann's tool would measure on real NICs.
  [[nodiscard]] static Params latency_bandwidth(Time latency,
                                                double bandwidth_Bps,
                                                Time per_message_overhead =
                                                    us(10.0));
};

}  // namespace gridcast::plogp
