#include "plogp/gap_function.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gridcast::plogp {

GapFunction::GapFunction(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  GRIDCAST_ASSERT(!samples_.empty(), "gap function needs at least one sample");
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    GRIDCAST_ASSERT(samples_[i].second >= 0.0, "gap value must be >= 0");
    if (i > 0)
      GRIDCAST_ASSERT(samples_[i - 1].first < samples_[i].first,
                      "gap samples must have strictly increasing sizes");
  }
}

GapFunction::GapFunction(std::initializer_list<Sample> samples)
    : GapFunction(std::vector<Sample>(samples)) {}

GapFunction GapFunction::constant(Time value) {
  return GapFunction({{Bytes{0}, value}});
}

GapFunction GapFunction::affine(Time intercept, double bandwidth_Bps,
                                Bytes max_size) {
  GRIDCAST_ASSERT(bandwidth_Bps > 0.0, "bandwidth must be positive");
  GRIDCAST_ASSERT(max_size > 0, "max size must be positive");
  return GapFunction(
      {{Bytes{0}, intercept},
       {max_size,
        intercept + static_cast<double>(max_size) / bandwidth_Bps}});
}

Time GapFunction::operator()(Bytes size) const {
  GRIDCAST_ASSERT(!samples_.empty(), "evaluating empty gap function");
  if (samples_.size() == 1) return samples_.front().second;

  // Locate the segment [it-1, it] containing `size`.
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), size,
      [](const Sample& s, Bytes v) { return s.first < v; });

  const Sample *a, *b;
  if (it == samples_.begin()) {
    // Below the first sample: interpolate the first segment downwards but
    // clamp at the first sample's value (no negative extrapolation).
    return samples_.front().second;
  }
  if (it == samples_.end()) {
    a = &samples_[samples_.size() - 2];
    b = &samples_[samples_.size() - 1];
  } else {
    a = &*(it - 1);
    b = &*it;
  }
  const double dx = static_cast<double>(b->first - a->first);
  const double dy = b->second - a->second;
  const double off = static_cast<double>(size) - static_cast<double>(a->first);
  const Time v = a->second + dy / dx * off;
  return v < 0.0 ? 0.0 : v;
}

bool GapFunction::is_monotone() const noexcept {
  for (std::size_t i = 1; i < samples_.size(); ++i)
    if (samples_[i].second < samples_[i - 1].second) return false;
  return true;
}

}  // namespace gridcast::plogp
