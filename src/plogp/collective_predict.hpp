#pragma once

#include <cstdint>
#include <string_view>

#include "plogp/params.hpp"
#include "support/types.hpp"

/// Analytic intra-cluster collective-time prediction.
///
/// The grid-aware heuristics consume `T_c`, the time a cluster needs to
/// finish its *internal* broadcast once the coordinator holds the message.
/// Following the authors' earlier work ("Fast tuning of intra-cluster
/// collective communications", EuroPVM/MPI 2004), we predict that time from
/// the cluster's pLogP parameters for the classic algorithm zoo; the paper's
/// experiments use the binomial tree.
namespace gridcast::plogp {

/// Intra-cluster broadcast algorithm.
enum class BcastAlgorithm : std::uint8_t {
  kFlat,             ///< root sends to every rank sequentially
  kChain,            ///< rank i forwards to rank i+1
  kBinomial,         ///< recursive doubling tree (MPI default)
  kSegmentedChain,   ///< pipelined chain with fixed-size segments
};

[[nodiscard]] std::string_view to_string(BcastAlgorithm a) noexcept;

/// Completion time of a flat-tree broadcast of m bytes to `nodes` ranks
/// (root included).  Zero when nodes <= 1.
[[nodiscard]] Time predict_flat_bcast(const Params& p, std::uint32_t nodes,
                                      Bytes m);

/// Completion time of an unsegmented chain broadcast.
[[nodiscard]] Time predict_chain_bcast(const Params& p, std::uint32_t nodes,
                                       Bytes m);

/// Completion time of a binomial-tree broadcast: holders double every
/// round; each holder's sends serialize with gap g(m).
[[nodiscard]] Time predict_binomial_bcast(const Params& p, std::uint32_t nodes,
                                          Bytes m);

/// Completion time of a segmented (pipelined) chain broadcast with
/// `segment` bytes per piece.  The classic large-message winner.
[[nodiscard]] Time predict_segmented_chain_bcast(const Params& p,
                                                 std::uint32_t nodes, Bytes m,
                                                 Bytes segment);

/// Dispatcher used by the topology layer to compute T_c.
[[nodiscard]] Time predict_bcast(BcastAlgorithm a, const Params& p,
                                 std::uint32_t nodes, Bytes m,
                                 Bytes segment = KiB(64));

/// Pick the fastest algorithm for the given size/population — the "tuning"
/// step of the authors' intra-cluster paper.
[[nodiscard]] BcastAlgorithm best_bcast_algorithm(const Params& p,
                                                  std::uint32_t nodes, Bytes m,
                                                  Bytes segment = KiB(64));

}  // namespace gridcast::plogp
