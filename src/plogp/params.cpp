#include "plogp/params.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gridcast::plogp {

void Params::validate() const {
  GRIDCAST_ASSERT(L >= 0.0, "pLogP latency must be >= 0");
  GRIDCAST_ASSERT(!g.empty(), "pLogP gap function missing");
  GRIDCAST_ASSERT(!os.empty(), "pLogP send-overhead function missing");
  GRIDCAST_ASSERT(!orecv.empty(), "pLogP receive-overhead function missing");
  GRIDCAST_ASSERT(g.is_monotone(), "gap function must be monotone");
  GRIDCAST_ASSERT(os.is_monotone(), "send overhead must be monotone");
  GRIDCAST_ASSERT(orecv.is_monotone(), "receive overhead must be monotone");
  for (const auto& [m, _] : g.samples()) {
    GRIDCAST_ASSERT(g(m) + 1e-12 >= os(m),
                    "gap must dominate the send overhead");
  }
}

Params Params::latency_bandwidth(Time latency, double bandwidth_Bps,
                                 Time per_message_overhead) {
  Params p;
  p.L = latency;
  p.g = GapFunction::affine(per_message_overhead, bandwidth_Bps);
  // Overheads: a small constant CPU cost plus a copy at memory speed.
  // The copy rate is the *larger* of 10x the wire and ~2 GB/s: CPU-side
  // message handling does not slow down just because the WAN is slow, but
  // it also never beats the wire by less than an order of magnitude.
  const double copy_Bps = std::max(bandwidth_Bps * 10.0, 2e9);
  p.os = GapFunction::affine(per_message_overhead * 0.5, copy_Bps);
  p.orecv = GapFunction::affine(per_message_overhead * 0.5, copy_Bps);
  return p;
}

}  // namespace gridcast::plogp
