#include "plogp/collective_predict.hpp"

#include <algorithm>
#include <array>

#include "support/error.hpp"

namespace gridcast::plogp {

std::string_view to_string(BcastAlgorithm a) noexcept {
  switch (a) {
    case BcastAlgorithm::kFlat: return "flat";
    case BcastAlgorithm::kChain: return "chain";
    case BcastAlgorithm::kBinomial: return "binomial";
    case BcastAlgorithm::kSegmentedChain: return "segmented-chain";
  }
  return "?";
}

Time predict_flat_bcast(const Params& p, std::uint32_t nodes, Bytes m) {
  if (nodes <= 1) return 0.0;
  // Root injects nodes-1 messages back to back; the last one lands after
  // its latency.  Receivers additionally pay the receive overhead.
  const Time g = p.g(m);
  return static_cast<double>(nodes - 1) * g + p.L + p.orecv(m);
}

Time predict_chain_bcast(const Params& p, std::uint32_t nodes, Bytes m) {
  if (nodes <= 1) return 0.0;
  // Each hop: full message store-and-forward.
  return static_cast<double>(nodes - 1) * (p.g(m) + p.L) + p.orecv(m);
}

Time predict_binomial_bcast(const Params& p, std::uint32_t nodes, Bytes m) {
  if (nodes <= 1) return 0.0;
  // Recursive split: the root keeps ceil(n/2) ranks and delegates
  // floor(n/2) to the child it contacts first.  Completion is the max of
  // both halves; the sender is re-available one gap later, the child holds
  // the payload after g + L + or.
  struct Rec {
    const Params& p;
    Bytes m;
    Time g, hop;
    [[nodiscard]] Time run(std::uint32_t n, Time ready) const {
      if (n <= 1) return ready;
      const std::uint32_t child_side = n / 2;
      const std::uint32_t my_side = n - child_side;
      const Time child_ready = ready + hop;
      const Time mine = run(my_side, ready + g);
      const Time theirs = run(child_side, child_ready);
      return std::max(mine, theirs);
    }
  };
  const Rec rec{p, m, p.g(m), p.g(m) + p.L + p.orecv(m)};
  return rec.run(nodes, 0.0);
}

Time predict_segmented_chain_bcast(const Params& p, std::uint32_t nodes,
                                   Bytes m, Bytes segment) {
  if (nodes <= 1) return 0.0;
  GRIDCAST_ASSERT(segment > 0, "segment size must be positive");
  const Bytes seg = std::min(segment, m > 0 ? m : Bytes{1});
  const auto full_segments = m / seg;
  const Bytes tail = m % seg;
  const auto segments = full_segments + (tail > 0 ? 1 : 0);
  if (segments == 0) return predict_chain_bcast(p, nodes, Bytes{0});
  // Pipeline: the first segment reaches the last rank after (nodes-1) hops;
  // every further segment streams one gap behind.
  const Time hop = p.g(seg) + p.L;
  const Time fill = static_cast<double>(nodes - 1) * hop;
  const Time stream = static_cast<double>(segments - 1) * p.g(seg);
  return fill + stream + p.orecv(seg);
}

Time predict_bcast(BcastAlgorithm a, const Params& p, std::uint32_t nodes,
                   Bytes m, Bytes segment) {
  switch (a) {
    case BcastAlgorithm::kFlat: return predict_flat_bcast(p, nodes, m);
    case BcastAlgorithm::kChain: return predict_chain_bcast(p, nodes, m);
    case BcastAlgorithm::kBinomial: return predict_binomial_bcast(p, nodes, m);
    case BcastAlgorithm::kSegmentedChain:
      return predict_segmented_chain_bcast(p, nodes, m, segment);
  }
  GRIDCAST_ASSERT(false, "unknown broadcast algorithm");
  return 0.0;
}

BcastAlgorithm best_bcast_algorithm(const Params& p, std::uint32_t nodes,
                                    Bytes m, Bytes segment) {
  constexpr std::array algos{
      BcastAlgorithm::kFlat, BcastAlgorithm::kChain, BcastAlgorithm::kBinomial,
      BcastAlgorithm::kSegmentedChain};
  BcastAlgorithm best = BcastAlgorithm::kBinomial;
  Time best_t = predict_bcast(best, p, nodes, m, segment);
  for (const auto a : algos) {
    const Time t = predict_bcast(a, p, nodes, m, segment);
    if (t < best_t) {
      best_t = t;
      best = a;
    }
  }
  return best;
}

}  // namespace gridcast::plogp
