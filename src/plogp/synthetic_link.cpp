#include "plogp/synthetic_link.hpp"

#include "support/error.hpp"

namespace gridcast::plogp {

SyntheticLink::SyntheticLink(const Config& cfg) : cfg_(cfg) {
  GRIDCAST_ASSERT(cfg_.latency >= 0.0, "latency must be >= 0");
  GRIDCAST_ASSERT(cfg_.bandwidth_Bps > 0.0, "bandwidth must be > 0");
  GRIDCAST_ASSERT(cfg_.per_message_cost >= 0.0, "overhead must be >= 0");
  GRIDCAST_ASSERT(cfg_.jitter_frac >= 0.0, "jitter must be >= 0");
}

Time SyntheticLink::true_gap(Bytes m) const noexcept {
  return cfg_.per_message_cost +
         static_cast<double>(m) / cfg_.bandwidth_Bps;
}

Time SyntheticLink::true_transfer(Bytes m) const noexcept {
  return true_gap(m) + cfg_.latency;
}

Time SyntheticLink::jittered(Time t, Rng& rng) const {
  if (cfg_.jitter_frac == 0.0) return t;
  // Multiplicative noise truncated at ±3 sigma, never below 10% of t.
  double f = rng.normal(1.0, cfg_.jitter_frac);
  const double lo = 1.0 - 3.0 * cfg_.jitter_frac;
  const double hi = 1.0 + 3.0 * cfg_.jitter_frac;
  f = f < lo ? lo : (f > hi ? hi : f);
  const Time v = t * f;
  return v < 0.1 * t ? 0.1 * t : v;
}

Time SyntheticLink::measure_rtt(Bytes m, Rng& rng) const {
  // m-byte ping one way, empty ack back.
  const Time fwd = true_transfer(m);
  const Time ack = true_transfer(Bytes{0});
  return jittered(fwd + ack, rng);
}

Time SyntheticLink::measure_gap(Bytes m, int count, Rng& rng) const {
  GRIDCAST_ASSERT(count > 0, "gap measurement needs at least one message");
  // Streaming: first message completes after transfer, the rest are gap-
  // limited; per-message time converges to the gap as count grows.
  const Time total =
      true_transfer(m) + static_cast<double>(count - 1) * true_gap(m);
  return jittered(total, rng) / static_cast<double>(count);
}

}  // namespace gridcast::plogp
