#pragma once

#include <initializer_list>
#include <utility>
#include <vector>

#include "support/types.hpp"

/// Message-size-dependent pLogP parameters.
///
/// pLogP (Kielmann et al., "Network performance-aware collective
/// communication for clustered wide-area systems") extends LogP by making
/// the gap and overheads *functions of the message size*: g(m), os(m),
/// or(m).  In practice these functions are measured at a handful of sizes
/// and linearly interpolated in between — which is exactly what this class
/// implements.  Beyond the last sample the function extrapolates with the
/// final segment's slope (the measured curve is bandwidth-dominated there).
namespace gridcast::plogp {

class GapFunction {
 public:
  /// A measured (message size, seconds) sample.
  using Sample = std::pair<Bytes, Time>;

  GapFunction() = default;

  /// Build from samples; sizes must be strictly increasing and values
  /// non-negative.  At least one sample is required.
  explicit GapFunction(std::vector<Sample> samples);
  GapFunction(std::initializer_list<Sample> samples);

  /// Constant function (size-independent gap) — degenerate but handy for
  /// the paper's Table 2 simulations where g is drawn as a single scalar.
  [[nodiscard]] static GapFunction constant(Time value);

  /// Affine function `intercept + size / bandwidth_Bps`, the classic
  /// latency+bandwidth link model.
  [[nodiscard]] static GapFunction affine(Time intercept,
                                          double bandwidth_Bps,
                                          Bytes max_size = MiB(64));

  /// Evaluate at an arbitrary size (piecewise-linear, extrapolating).
  [[nodiscard]] Time operator()(Bytes size) const;

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// True when the function never decreases over its sampled range (a
  /// sanity property real gap measurements satisfy).
  [[nodiscard]] bool is_monotone() const noexcept;

 private:
  std::vector<Sample> samples_;
};

}  // namespace gridcast::plogp
