#pragma once

#include <span>
#include <vector>

#include "support/types.hpp"
#include "topology/grid.hpp"

/// Analytic pLogP prediction of the two-level hierarchical scatter and
/// all-to-all (the collective/scatter.cpp and collective/alltoall.cpp
/// algorithms), closing the verb gap left by the broadcast-only predictor.
///
/// Both predictions follow the same modelling rule as the broadcast cost
/// model (sched/evaluate.hpp): every coordinator owns one NIC whose
/// injections serialize with the link's gap g(m), a payload lands L after
/// its injection completes, and the *receive overhead or(m) is omitted* —
/// it is the documented residual between prediction and execution
/// (sim/network.hpp), which is why the predictions are exact on
/// zero-overhead grids and a few percent optimistic on realistic ones.
///
/// Scatter decomposes in closed form: the root's WAN segment costs are the
/// prefix sums of g_{root,c}(size_c · block) over the schedule's injection
/// order, each remote cluster then pays its intra fan-out
/// (size_c − 1) · g_c(block) + L_c, and the root cluster's own fan-out is
/// serialized after the last WAN injection — so a worse injection order
/// shows up directly as a larger prefix for some cluster.
///
/// All-to-all has the same per-segment closed forms (gather completes at
/// (size_c − 1) · g_c(block) + g_c((n − size_c) · block) + L_c; exchange
/// aggregates cost g_{cd}(size_c · size_d · block); delivery fans out like
/// scatter), but the completion is schedule-order dependent through NIC
/// contention: a coordinator's own aggregate injections interleave with
/// the fan-out of aggregates arriving from other clusters.  The prediction
/// therefore resolves the C² cluster-level segments in the executed
/// algorithm's (time, issue-sequence) order — cluster-granular arithmetic
/// over the gap functions, not a message-level simulation (the simulator
/// processes Θ(Σ size_c²) point-to-point messages; this resolves Θ(C²)
/// segment events).
namespace gridcast::plogp {

/// Prediction of one hierarchical collective, cluster-granular: the
/// counters mirror the executed algorithm's message/byte accounting
/// exactly, the times omit receive overheads (see header comment).
struct HierarchicalPrediction {
  std::vector<Time> cluster_finish;  ///< last delivery per cluster
  Time completion = 0.0;             ///< max over cluster_finish
  std::uint64_t messages = 0;        ///< point-to-point sends modelled
  std::uint64_t wan_messages = 0;    ///< sends that cross clusters
  Bytes bytes = 0;                   ///< total payload bytes moved
  Bytes wan_bytes = 0;               ///< bytes that cross clusters
};

/// Predict the two-level scatter of `block` bytes per rank from
/// `root`'s coordinator, WAN injections sequenced by `wan_order` (every
/// non-root cluster exactly once — the receiver appearance order of a
/// broadcast schedule, see collective::scatter_wan_order).
[[nodiscard]] HierarchicalPrediction predict_hierarchical_scatter(
    const topology::Grid& grid, ClusterId root, Bytes block,
    std::span<const ClusterId> wan_order);

/// Predict the coordinator-routed all-to-all with `block` bytes per rank
/// pair; `dest_order[c]` sequences coordinator c's aggregate injections
/// (every d ≠ c exactly once; a d == c entry is ignored, mirroring the
/// executed algorithm).
[[nodiscard]] HierarchicalPrediction predict_hierarchical_alltoall(
    const topology::Grid& grid, Bytes block,
    const std::vector<std::vector<ClusterId>>& dest_order);

}  // namespace gridcast::plogp
