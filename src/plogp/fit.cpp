#include "plogp/fit.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gridcast::plogp {

std::vector<Bytes> FitConfig::default_sizes() {
  std::vector<Bytes> sizes;
  for (Bytes m = 1; m <= MiB(4); m *= 4) sizes.push_back(m);
  return sizes;
}

namespace {

Time median_of(std::vector<Time> xs) {
  GRIDCAST_ASSERT(!xs.empty(), "median of empty vector");
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/// Pool-adjacent-violators: smallest monotone non-decreasing sequence in
/// least-squares distance to the input.
std::vector<Time> isotonic(std::vector<Time> y) {
  struct Block {
    double sum;
    std::size_t count;
    [[nodiscard]] double mean() const {
      return sum / static_cast<double>(count);
    }
  };
  std::vector<Block> blocks;
  blocks.reserve(y.size());
  for (const Time v : y) {
    blocks.push_back({v, 1});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean() > blocks.back().mean()) {
      blocks[blocks.size() - 2].sum += blocks.back().sum;
      blocks[blocks.size() - 2].count += blocks.back().count;
      blocks.pop_back();
    }
  }
  std::vector<Time> out;
  out.reserve(y.size());
  for (const auto& b : blocks)
    out.insert(out.end(), b.count, b.mean());
  return out;
}

}  // namespace

GapFunction fit_gap_function(
    const std::vector<std::pair<Bytes, std::vector<Time>>>& observations) {
  GRIDCAST_ASSERT(!observations.empty(), "no observations to fit");
  std::vector<std::pair<Bytes, Time>> pts;
  pts.reserve(observations.size());
  for (const auto& [size, xs] : observations)
    pts.emplace_back(size, median_of(xs));
  std::sort(pts.begin(), pts.end());

  std::vector<Time> ys;
  ys.reserve(pts.size());
  for (const auto& [_, y] : pts) ys.push_back(y);
  ys = isotonic(std::move(ys));

  std::vector<GapFunction::Sample> samples;
  samples.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    samples.emplace_back(pts[i].first, ys[i]);
  return GapFunction(std::move(samples));
}

Params fit_link(const SyntheticLink& link, const FitConfig& cfg, Rng& rng) {
  GRIDCAST_ASSERT(!cfg.sizes.empty(), "fit requires at least one size");
  GRIDCAST_ASSERT(cfg.repetitions > 0, "fit requires repetitions > 0");

  // L + g(0) from the zero-byte round trip: RTT(0) = 2*(L + g(0)).
  std::vector<Time> rtt0;
  rtt0.reserve(static_cast<std::size_t>(cfg.repetitions));
  for (int r = 0; r < cfg.repetitions; ++r)
    rtt0.push_back(link.measure_rtt(Bytes{0}, rng));
  const Time half_rtt0 = 0.5 * median_of(rtt0);

  // g(m) per size from two saturation trains of different length: the
  // k-message train totals transfer + (k-1)g, so differencing a 2k train
  // against a k train cancels the latency term entirely:
  //   g = (total(2k) - total(k)) / k.
  std::vector<std::pair<Bytes, std::vector<Time>>> gap_obs;
  gap_obs.reserve(cfg.sizes.size());
  const int k = cfg.gap_train_length;
  for (const Bytes m : cfg.sizes) {
    std::vector<Time> xs;
    xs.reserve(static_cast<std::size_t>(cfg.repetitions));
    for (int r = 0; r < cfg.repetitions; ++r) {
      const Time total_k =
          link.measure_gap(m, k, rng) * static_cast<double>(k);
      const Time total_2k =
          link.measure_gap(m, 2 * k, rng) * static_cast<double>(2 * k);
      const Time g = (total_2k - total_k) / static_cast<double>(k);
      xs.push_back(g > 0.0 ? g : 0.0);
    }
    gap_obs.emplace_back(m, std::move(xs));
  }

  Params p;
  p.g = fit_gap_function(gap_obs);
  // L = half RTT(0) minus the zero-byte gap; clamp at zero for noisy runs.
  const Time g0 = p.g(Bytes{0});
  p.L = half_rtt0 > g0 ? half_rtt0 - g0 : 0.0;

  // Overheads: modelled as a fixed fraction of the gap (see header).  The
  // heuristics never read these, but the simulator charges them to CPUs.
  std::vector<GapFunction::Sample> os_samples, or_samples;
  for (const auto& [m, g] : p.g.samples()) {
    os_samples.emplace_back(m, 0.1 * g);
    or_samples.emplace_back(m, 0.1 * g);
  }
  p.os = GapFunction(std::move(os_samples));
  p.orecv = GapFunction(std::move(or_samples));
  p.validate();
  return p;
}

}  // namespace gridcast::plogp
