#pragma once

#include <vector>

#include "plogp/params.hpp"
#include "plogp/synthetic_link.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

/// pLogP parameter acquisition (Kielmann's measurement procedure).
///
/// "Fast measurement of LogP parameters for message passing platforms"
/// (Kielmann, Bal, Verstoep, 2000) recovers the parameters as follows:
///   * L       from the zero-byte round trip:  RTT(0) = 2L + 2g(0)
///   * g(m)    from a saturation run: send k messages back-to-back, divide
///   * os/or   from sender/receiver-side timers (we model them as a fixed
///             fraction recovered from the measured gap; the scheduling
///             heuristics only consume L and g)
/// We reproduce this pipeline against a SyntheticLink so the full
/// measurement → model → schedule chain from the paper's Section 7 runs.
namespace gridcast::plogp {

struct FitConfig {
  std::vector<Bytes> sizes = default_sizes();  ///< sample message sizes
  int gap_train_length = 16;  ///< messages per saturation measurement
  int repetitions = 5;        ///< medians over this many repeats
  /// Standard logarithmic size ladder: 1 B .. 4 MiB, powers of four.
  [[nodiscard]] static std::vector<Bytes> default_sizes();
};

/// Measure a synthetic link and return the fitted pLogP parameter set.
[[nodiscard]] Params fit_link(const SyntheticLink& link, const FitConfig& cfg,
                              Rng& rng);

/// Fit a GapFunction from explicit (size, seconds) observations, taking the
/// median of repeated observations per size and enforcing monotonicity by
/// isotonic (pool-adjacent-violators) smoothing — measured curves on real
/// networks contain non-monotone noise the model must not amplify.
[[nodiscard]] GapFunction fit_gap_function(
    const std::vector<std::pair<Bytes, std::vector<Time>>>& observations);

}  // namespace gridcast::plogp
