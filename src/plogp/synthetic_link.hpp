#pragma once

#include "plogp/params.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

/// Synthetic link: the measurement substrate substitute.
///
/// Kielmann's logp_mpi tool measures pLogP parameters on a live network by
/// timing message round trips.  We have no live network, so this class
/// plays the network's role: a ground-truth latency/bandwidth/overhead
/// model that can "execute" sends and report noisy timings, from which
/// `fit_from_samples` (fit.hpp) recovers pLogP parameters — exercising the
/// same acquisition path the paper's modified MagPIe used.
namespace gridcast::plogp {

class SyntheticLink {
 public:
  struct Config {
    Time latency = ms(5.0);          ///< one-way wire latency
    double bandwidth_Bps = 10e6;     ///< sustained bandwidth
    Time per_message_cost = us(50);  ///< fixed protocol/setup cost per send
    double jitter_frac = 0.0;        ///< multiplicative Gaussian noise sigma
  };

  explicit SyntheticLink(const Config& cfg);

  /// Ground-truth time the sender is busy injecting m bytes (the "gap").
  [[nodiscard]] Time true_gap(Bytes m) const noexcept;

  /// Ground-truth one-way delivery time of m bytes.
  [[nodiscard]] Time true_transfer(Bytes m) const noexcept;

  /// Simulated round-trip measurement of an m-byte ping and a zero-byte
  /// ack, with jitter applied — what a measurement tool would observe.
  [[nodiscard]] Time measure_rtt(Bytes m, Rng& rng) const;

  /// Simulated gap measurement: time per message when streaming `count`
  /// back-to-back messages (saturation measurement), with jitter.
  [[nodiscard]] Time measure_gap(Bytes m, int count, Rng& rng) const;

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] Time jittered(Time t, Rng& rng) const;
  Config cfg_;
};

}  // namespace gridcast::plogp
