#include "io/bench_json.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <variant>

#include "collective/verb.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"

namespace gridcast::io {

namespace {

// ---------------------------------------------------------------- writing

/// Print a double exactly as the writer always has: 17 significant digits
/// via ostream.  Parsing then re-printing the same value reproduces the
/// bytes, which is what makes shard merging byte-identical.  The caller's
/// precision is restored — reports also go to long-lived streams (stdout).
void put_double(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "null";
    return;
  }
  const auto saved = os.precision(17);
  os << v;
  os.precision(saved);
}

// ---------------------------------------------------------------- parsing
//
// A minimal recursive-descent JSON reader covering the grammar
// write_bench_json emits (objects, arrays, strings, numbers, null,
// booleans).  Strict: trailing garbage, unknown report keys and type
// mismatches all throw InvalidInput with position context.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// A parsed number keeps its source token so 64-bit integers (seeds) can
/// be re-parsed losslessly — a double only holds 53 mantissa bits.  JSON
/// null is a number with NaN value and an empty token.
struct JsonNumber {
  double value = 0.0;
  std::string raw;
};

struct JsonValue {
  std::variant<JsonNumber, bool, std::string, JsonArray, JsonObject> v;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidInput("bench JSON: " + what + " at offset " +
                       std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return JsonValue{object()};
      case '[':
        return JsonValue{array()};
      case '"':
        return JsonValue{string()};
      case 't':
        if (consume_literal("true")) return JsonValue{true};
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue{false};
        fail("bad literal");
      case 'n':
        if (consume_literal("null"))
          return JsonValue{
              JsonNumber{std::numeric_limits<double>::quiet_NaN(), ""}};
        fail("bad literal");
      default:
        return JsonValue{number()};
    }
  }

  JsonObject object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  JsonArray array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writer only \u-escapes control characters (< 0x20); accept
          // any BMP code point and re-encode as UTF-8 for completeness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonNumber number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a number");
    std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number '" + tok + "'");
    return JsonNumber{v, std::move(tok)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Typed accessors over the parsed tree.

const JsonValue* find(const JsonObject& o, std::string_view key) {
  for (const auto& [k, v] : o)
    if (k == key) return &v;
  return nullptr;
}

template <typename T>
const T& as(const JsonValue& v, const char* what) {
  const T* p = std::get_if<T>(&v.v);
  if (!p) throw InvalidInput(std::string("bench JSON: '") + what +
                             "' has the wrong type");
  return *p;
}

double as_number(const JsonValue& v, const char* what) {
  return as<JsonNumber>(v, what).value;
}

std::uint64_t as_u64(const JsonValue& v, const char* what) {
  // Re-parse the source token: going through the double would silently
  // round integers above 2^53 (e.g. full-width RNG seeds).
  const std::string& raw = as<JsonNumber>(v, what).raw;
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), out);
  if (ec != std::errc{} || ptr != raw.data() + raw.size())
    throw InvalidInput(std::string("bench JSON: '") + what +
                       "' is not a non-negative 64-bit integer");
  return out;
}

const JsonValue& require(const JsonObject& o, std::string_view key) {
  if (const JsonValue* v = find(o, key)) return *v;
  throw InvalidInput("bench JSON: missing key '" + std::string(key) + "'");
}

}  // namespace

const BenchSeries* BenchReport::find_series(std::string_view name) const {
  for (const auto& s : series)
    if (s.name == name) return &s;
  return nullptr;
}

bool BenchReport::shard_form() const noexcept {
  for (const auto& s : series)
    if (!s.block_sum_s.empty()) return true;
  return false;
}

std::size_t BenchReport::block_count() const {
  GRIDCAST_ASSERT(block_iters > 0, "block_count needs block_iters > 0");
  return static_cast<std::size_t>((iterations + block_iters - 1) /
                                  block_iters);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void put_double_array(std::ostream& os, const std::vector<double>& xs) {
  os << "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << (i ? ", " : "");
    put_double(os, xs[i]);
  }
  os << "]";
}

void put_nested_array(std::ostream& os,
                      const std::vector<std::vector<double>>& xs) {
  os << "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << (i ? ", " : "");
    put_double_array(os, xs[i]);
  }
  os << "]";
}

/// Writer-side mirror of the parser's grammar wall.  Parsed reports are
/// validated on the way in; this guards the *producers* — a new bench or
/// sweep assembling a BenchReport by hand — so a malformed report fails
/// at the write site on the Debug/sanitizer lanes instead of surfacing as
/// a confusing parse error (or a silently wrong baseline) downstream.
/// Returns an empty string when the report is well-formed.
std::string report_grammar_violation(const BenchReport& r) {
  if (r.bench != "race" && r.bench != "montecarlo" && r.bench != "micro" &&
      r.bench != "serve")
    return "unknown bench kind '" + r.bench + "'";
  if (r.sizes.empty()) return "empty axis";
  if (r.shards == 0 || r.shard >= r.shards) return "shard index out of range";
  if (r.is_montecarlo()) {
    if (r.verb != "bcast") return "montecarlo reports are broadcast-only";
    if (r.iterations == 0) return "montecarlo report needs iterations >= 1";
  } else if (r.block_iters != 0) {
    return "'block_iters' outside a montecarlo report";
  }
  if (r.is_micro() && (r.shards != 1 || r.verb != "bcast"))
    return "micro reports carry no verb or shard axes";
  if (r.is_serve() && (r.shards != 1 || r.verb != "bcast"))
    return "serve reports carry no verb or shard axes";
  const bool shard_form = r.shard_form();
  if (shard_form && !r.is_montecarlo())
    return "block data outside a montecarlo report";
  if (shard_form && r.block_iters == 0)
    return "shard-form report needs block_iters >= 1";
  for (const auto& s : r.series) {
    // Selection-cost cells ride only final-form size sweeps: the other
    // kinds have no per-ladder-point selection to time.
    if (!s.micro_scheduling_cost_s.empty()) {
      if (r.bench != "race")
        return "'micro_scheduling_cost_s' is a size-sweep-only key";
      if (s.makespan_s.empty())
        return "series '" + s.name +
               "' needs 'makespan_s' cells to carry micro_scheduling_cost_s";
      if (s.micro_scheduling_cost_s.size() != r.sizes.size())
        return "series '" + s.name +
               "' micro_scheduling_cost_s does not cover the axis";
    }
    if (r.is_micro()) {
      if (s.throughput.size() != r.sizes.size())
        return "series '" + s.name + "' throughput does not cover the axis";
      continue;
    }
    if (r.is_serve()) {
      // Serve series carry exactly one of the two channels: a value cell
      // (makespan_s — exact compare) or a throughput cell (lower-bounded
      // compare); either way it must cover the axis.
      if (!s.hits.empty()) return "'hits' is montecarlo-only";
      const std::vector<double>& cells =
          s.throughput.empty() ? s.makespan_s : s.throughput;
      if (cells.size() != r.sizes.size())
        return "series '" + s.name + "' cells do not cover the axis";
      continue;
    }
    if (!s.throughput.empty()) return "'throughput' outside a micro report";
    if (!r.is_montecarlo() && !s.hits.empty()) return "'hits' is montecarlo-only";
    if (shard_form != !s.block_sum_s.empty())
      return "series '" + s.name + "' mixes shard-form and final-form data";
    if (!shard_form) {
      if (s.makespan_s.size() != r.sizes.size())
        return "series '" + s.name + "' cells do not cover the axis";
      if (!s.hits.empty() && s.hits.size() != r.sizes.size())
        return "series '" + s.name + "' hits do not cover the axis";
    } else {
      if (s.block_sum_s.size() != r.sizes.size())
        return "series '" + s.name + "' block_sum_s does not cover the axis";
      for (const auto& row : s.block_sum_s)
        if (row.size() != r.block_count())
          return "series '" + s.name + "' block_sum_s row has wrong depth";
      if (!s.block_hits.empty() && s.block_hits.size() != r.sizes.size())
        return "series '" + s.name + "' block_hits does not cover the axis";
      for (const auto& row : s.block_hits)
        if (row.size() != r.block_count())
          return "series '" + s.name + "' block_hits row has wrong depth";
    }
  }
  return {};
}

}  // namespace

void write_bench_json(std::ostream& os, const BenchReport& r) {
  GRIDCAST_DCHECK(report_grammar_violation(r).empty(),
                  "write_bench_json: malformed report: " +
                      report_grammar_violation(r));
  os << "{\n";
  os << "  \"bench\": \"" << json_escape(r.bench) << "\",\n";
  os << "  \"grid\": \"" << json_escape(r.grid) << "\",\n";
  os << "  \"mode\": \"" << json_escape(r.mode) << "\",\n";
  // The default verb is omitted so broadcast reports keep the exact bytes
  // they had before the verb axis existed (shard-merge and baseline
  // tooling compare reports byte for byte).
  if (r.verb != "bcast") os << "  \"verb\": \"" << json_escape(r.verb) << "\",\n";
  os << "  \"root\": " << r.root << ",\n";
  // Monte-Carlo races record the seed whatever the mode: the instance
  // draws depend on it even when the backend is deterministic.
  if (r.mode == "measured" || r.is_montecarlo()) {
    os << "  \"seed\": " << r.seed << ",\n";
  }
  if (r.mode == "measured") {
    os << "  \"jitter\": ";
    put_double(os, r.jitter);
    os << ",\n";
  }
  if (r.is_montecarlo()) {
    os << "  \"iterations\": " << r.iterations << ",\n";
    // The block partition is an artefact of sharding; merged (final)
    // reports drop it so they are byte-identical to an unsharded run.
    if (r.shard_form()) os << "  \"block_iters\": " << r.block_iters << ",\n";
  }
  if (r.shards > 1) {
    os << "  \"shards\": " << r.shards << ",\n";
    os << "  \"shard\": " << r.shard << ",\n";
  }
  // The axis key names what the points are: byte sizes for sweeps,
  // cluster counts for Monte-Carlo races, request counts for serve
  // replays.
  os << "  \""
     << (r.is_montecarlo() ? "clusters" : r.is_serve() ? "requests" : "sizes")
     << "\": [";
  for (std::size_t i = 0; i < r.sizes.size(); ++i)
    os << (i ? ", " : "") << r.sizes[i];
  os << "],\n  \"series\": [\n";
  for (std::size_t s = 0; s < r.series.size(); ++s) {
    os << "    {\"name\": \"" << json_escape(r.series[s].name) << "\"";
    if (!std::isnan(r.series[s].wall_time_s)) {
      os << ", \"wall_time_s\": ";
      put_double(os, r.series[s].wall_time_s);
    }
    if (!r.series[s].block_sum_s.empty()) {
      os << ", \"block_sum_s\": ";
      put_nested_array(os, r.series[s].block_sum_s);
      if (!r.series[s].block_hits.empty()) {
        os << ", \"block_hits\": ";
        put_nested_array(os, r.series[s].block_hits);
      }
    } else if (!r.series[s].throughput.empty()) {
      os << ", \"throughput\": ";
      put_double_array(os, r.series[s].throughput);
    } else {
      os << ", \"makespan_s\": ";
      put_double_array(os, r.series[s].makespan_s);
      if (!r.series[s].hits.empty()) {
        os << ", \"hits\": ";
        put_double_array(os, r.series[s].hits);
      }
      if (!r.series[s].micro_scheduling_cost_s.empty()) {
        os << ", \"micro_scheduling_cost_s\": ";
        put_double_array(os, r.series[s].micro_scheduling_cost_s);
      }
    }
    os << "}" << (s + 1 < r.series.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::string bench_to_json(const BenchReport& r) {
  std::ostringstream os;
  write_bench_json(os, r);
  return os.str();
}

namespace {

std::vector<double> number_array(const JsonValue& v, const char* what) {
  std::vector<double> out;
  for (const auto& e : as<JsonArray>(v, what)) out.push_back(as_number(e, what));
  return out;
}

std::vector<std::vector<double>> nested_number_array(const JsonValue& v,
                                                     const char* what) {
  std::vector<std::vector<double>> out;
  for (const auto& e : as<JsonArray>(v, what))
    out.push_back(number_array(e, what));
  return out;
}

}  // namespace

BenchReport bench_from_json(const std::string& text) {
  const JsonValue root = JsonParser(text).parse();
  const JsonObject& o = as<JsonObject>(root, "report");

  BenchReport r;
  for (const auto& [key, value] : o) {
    if (key == "bench") {
      r.bench = as<std::string>(value, "bench");
    } else if (key == "grid") {
      r.grid = as<std::string>(value, "grid");
    } else if (key == "mode") {
      r.mode = as<std::string>(value, "mode");
    } else if (key == "verb") {
      // Canonicalised through the shared verb vocabulary: an unknown verb
      // is the same one-line diagnostic the CLI emits.
      r.verb = std::string(
          collective::verb_name(collective::to_verb(as<std::string>(value, "verb"))));
    } else if (key == "root") {
      r.root = static_cast<ClusterId>(as_u64(value, "root"));
    } else if (key == "seed") {
      r.seed = as_u64(value, "seed");
    } else if (key == "jitter") {
      r.jitter = as_number(value, "jitter");
    } else if (key == "iterations") {
      r.iterations = as_u64(value, "iterations");
    } else if (key == "block_iters") {
      r.block_iters = as_u64(value, "block_iters");
    } else if (key == "shards") {
      r.shards = as_u64(value, "shards");
    } else if (key == "shard") {
      r.shard = as_u64(value, "shard");
    } else if (key == "threads") {
      // Historical BENCH_sweep.json field; accepted and ignored.
    } else if (key == "sizes" || key == "clusters" || key == "requests") {
      if (!r.sizes.empty())
        throw InvalidInput(
            "bench JSON: 'sizes', 'clusters' and 'requests' are mutually "
            "exclusive");
      for (const auto& v : as<JsonArray>(value, "sizes"))
        r.sizes.push_back(as_u64(v, "sizes[]"));
      if (r.sizes.empty())
        throw InvalidInput("bench JSON: empty '" + key + "' axis");
    } else if (key == "series") {
      for (const auto& sv : as<JsonArray>(value, "series")) {
        const JsonObject& so = as<JsonObject>(sv, "series[]");
        BenchSeries s;
        s.name = as<std::string>(require(so, "name"), "series name");
        if (const JsonValue* w = find(so, "wall_time_s"))
          s.wall_time_s = as_number(*w, "wall_time_s");
        const JsonValue* mk = find(so, "makespan_s");
        const JsonValue* bs = find(so, "block_sum_s");
        const JsonValue* tp = find(so, "throughput");
        if ((mk != nullptr) + (bs != nullptr) + (tp != nullptr) != 1)
          throw InvalidInput("bench JSON: series '" + s.name +
                             "' needs exactly one of 'makespan_s', "
                             "'block_sum_s' and 'throughput'");
        if (mk != nullptr) s.makespan_s = number_array(*mk, "makespan_s");
        if (bs != nullptr) s.block_sum_s = nested_number_array(*bs, "block_sum_s");
        if (tp != nullptr) s.throughput = number_array(*tp, "throughput");
        if (const JsonValue* h = find(so, "hits")) {
          if (mk == nullptr)
            throw InvalidInput("bench JSON: series '" + s.name +
                               "' mixes 'hits' with shard-form data");
          s.hits = number_array(*h, "hits");
        }
        if (const JsonValue* bh = find(so, "block_hits")) {
          if (bs == nullptr)
            throw InvalidInput("bench JSON: series '" + s.name +
                               "' has 'block_hits' without 'block_sum_s'");
          s.block_hits = nested_number_array(*bh, "block_hits");
        }
        if (const JsonValue* sc = find(so, "micro_scheduling_cost_s")) {
          if (mk == nullptr)
            throw InvalidInput("bench JSON: series '" + s.name +
                               "' needs 'makespan_s' cells to carry "
                               "micro_scheduling_cost_s");
          s.micro_scheduling_cost_s =
              number_array(*sc, "micro_scheduling_cost_s");
        }
        r.series.push_back(std::move(s));
      }
    } else {
      throw InvalidInput("bench JSON: unknown key '" + key + "'");
    }
  }
  if ((find(o, "sizes") == nullptr && find(o, "clusters") == nullptr &&
       find(o, "requests") == nullptr) ||
      find(o, "series") == nullptr)
    throw InvalidInput(
        "bench JSON: missing 'sizes'/'clusters'/'requests' or 'series'");
  if (r.shards == 0 || r.shard >= r.shards)
    throw InvalidInput("bench JSON: shard index out of range");

  // Axis spelling is tied to the report kind: size sweeps use "sizes",
  // Monte-Carlo races use "clusters", serve replays use "requests".  A
  // mismatch is format drift.
  const char* want_axis =
      r.is_montecarlo() ? "clusters" : r.is_serve() ? "requests" : "sizes";
  for (const char* axis_key : {"sizes", "clusters", "requests"})
    if (find(o, axis_key) != nullptr &&
        std::string_view(axis_key) != want_axis)
      throw InvalidInput("bench JSON: axis key '" + std::string(axis_key) +
                         "' does not match bench kind '" + r.bench + "'");
  if (r.is_montecarlo()) {
    if (r.iterations == 0)
      throw InvalidInput("bench JSON: montecarlo report needs iterations >= 1");
    if (find(o, "verb") != nullptr)
      throw InvalidInput(
          "bench JSON: 'verb' is a sweep-only key (Monte-Carlo races "
          "broadcast by definition)");
  } else {
    if (find(o, "iterations") != nullptr || find(o, "block_iters") != nullptr)
      throw InvalidInput(
          "bench JSON: 'iterations'/'block_iters' are montecarlo-only keys");
  }
  if (r.is_micro()) {
    // The throughput lane has no collective verb and no shard partition:
    // each series is one whole-machine measurement.
    if (find(o, "verb") != nullptr)
      throw InvalidInput("bench JSON: micro reports have no verb axis");
    if (find(o, "shards") != nullptr || find(o, "shard") != nullptr)
      throw InvalidInput("bench JSON: micro reports cannot be sharded");
  }
  if (r.is_serve()) {
    // A replayed request log mixes verbs and roots per request, and one
    // replay is one whole-service measurement: no verb axis, no shards.
    if (find(o, "verb") != nullptr)
      throw InvalidInput("bench JSON: serve reports have no verb axis");
    if (find(o, "shards") != nullptr || find(o, "shard") != nullptr)
      throw InvalidInput("bench JSON: serve reports cannot be sharded");
  }

  const bool shard_form = r.shard_form();
  if (shard_form) {
    if (!r.is_montecarlo())
      throw InvalidInput("bench JSON: 'block_sum_s' is montecarlo-only");
    if (r.block_iters == 0)
      throw InvalidInput(
          "bench JSON: shard-form report needs 'block_iters' >= 1");
    if (r.shards <= 1)
      throw InvalidInput(
          "bench JSON: shard-form report without a shard partition");
  } else if (r.block_iters != 0) {
    throw InvalidInput(
        "bench JSON: 'block_iters' without shard-form series data");
  }

  for (const auto& s : r.series) {
    if (!r.is_montecarlo() && !s.hits.empty())
      throw InvalidInput("bench JSON: 'hits' is montecarlo-only");
    if (!s.micro_scheduling_cost_s.empty()) {
      if (r.bench != "race")
        throw InvalidInput(
            "bench JSON: 'micro_scheduling_cost_s' is a size-sweep-only key");
      if (s.micro_scheduling_cost_s.size() != r.sizes.size())
        throw InvalidInput("bench JSON: series '" + s.name +
                           "' micro_scheduling_cost_s does not cover the "
                           "axis");
    }
    if (shard_form != !s.block_sum_s.empty())
      throw InvalidInput("bench JSON: series '" + s.name +
                         "' mixes shard-form and final-form data");
    if (r.is_micro()) {
      if (s.throughput.size() != r.sizes.size())
        throw InvalidInput("bench JSON: micro series '" + s.name +
                           "' needs 'throughput' covering the axis");
    } else if (r.is_serve()) {
      // Either channel (exact value cells or lower-bounded throughput),
      // covering the axis.
      const std::vector<double>& cells =
          s.throughput.empty() ? s.makespan_s : s.throughput;
      if (cells.size() != r.sizes.size())
        throw InvalidInput("bench JSON: serve series '" + s.name +
                           "' cells do not cover the axis");
    } else if (!s.throughput.empty()) {
      throw InvalidInput("bench JSON: 'throughput' is micro-only");
    } else if (!shard_form) {
      if (s.makespan_s.size() != r.sizes.size())
        throw InvalidInput("bench JSON: series '" + s.name + "' has " +
                           std::to_string(s.makespan_s.size()) +
                           " cells for " + std::to_string(r.sizes.size()) +
                           " axis points");
      if (!s.hits.empty() && s.hits.size() != r.sizes.size())
        throw InvalidInput("bench JSON: series '" + s.name +
                           "' hits do not cover the axis");
    } else {
      const std::size_t blocks = r.block_count();
      const auto check_shape = [&](const std::vector<std::vector<double>>& a,
                                   const char* what) {
        if (a.size() != r.sizes.size())
          throw InvalidInput("bench JSON: series '" + s.name + "' " + what +
                             " does not cover the axis");
        for (const auto& row : a)
          if (row.size() != blocks)
            throw InvalidInput("bench JSON: series '" + s.name + "' " + what +
                               " has a row with " +
                               std::to_string(row.size()) + " blocks, want " +
                               std::to_string(blocks));
      };
      check_shape(s.block_sum_s, "block_sum_s");
      if (!s.block_hits.empty()) check_shape(s.block_hits, "block_hits");
    }
  }
  return r;
}

BenchReport read_bench_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return bench_from_json(buf.str());
}

std::vector<std::string> compare_bench(const BenchReport& baseline,
                                       const BenchReport& current,
                                       const BenchCompareOptions& opts) {
  std::vector<std::string> problems;
  const auto add = [&](std::string p) { problems.push_back(std::move(p)); };

  if (baseline.bench != current.bench) {
    add("bench kind mismatch: baseline '" + baseline.bench +
        "' vs current '" + current.bench + "'");
    return problems;
  }
  if (baseline.verb != current.verb) {
    // A scatter report against a broadcast baseline is apples to oranges;
    // per-cell drift messages would only obscure that.
    add("verb mismatch: baseline '" + baseline.verb + "' vs current '" +
        current.verb + "'");
    return problems;
  }
  if (baseline.shard_form() || current.shard_form()) {
    add("shard-form report: merge the shards before comparing");
    return problems;
  }
  if (baseline.grid != current.grid)
    add("grid mismatch: baseline '" + baseline.grid + "' vs current '" +
        current.grid + "'");
  if (baseline.is_montecarlo()) {
    if (baseline.seed != current.seed)
      add("seed mismatch: baseline " + std::to_string(baseline.seed) +
          " vs current " + std::to_string(current.seed) +
          " (the instance draws differ)");
    if (baseline.iterations != current.iterations) {
      add("iteration-count mismatch: baseline " +
          std::to_string(baseline.iterations) + " vs current " +
          std::to_string(current.iterations));
      return problems;  // means and hit counts would differ by design
    }
  }
  if (baseline.mode != current.mode)
    add("mode mismatch: baseline '" + baseline.mode + "' vs current '" +
        current.mode + "'");
  else if (baseline.mode == "measured" &&
           (baseline.seed != current.seed ||
            baseline.jitter != current.jitter)) {
    // Same rule the shard merger enforces: measured numbers are only
    // comparable under one (seed, jitter).  Diagnose it as one problem
    // instead of a per-cell drift cascade.
    add("measured-mode seed/jitter mismatch: baseline (" +
        std::to_string(baseline.seed) + ", " +
        std::to_string(baseline.jitter) + ") vs current (" +
        std::to_string(current.seed) + ", " + std::to_string(current.jitter) +
        ")");
    return problems;
  }
  if (baseline.root != current.root)
    add("root mismatch: baseline " + std::to_string(baseline.root) +
        " vs current " + std::to_string(current.root));
  const char* axis = baseline.is_montecarlo() ? "clusters"
                     : baseline.is_serve()    ? "requests"
                                              : "size";
  if (baseline.sizes != current.sizes) {
    // For serve reports the "ladder" is the replayed request count — a
    // mismatch means a different log, which no tolerance can absorb.
    add(std::string(baseline.is_montecarlo() ? "cluster-count"
                    : baseline.is_serve()    ? "request-count"
                                             : "size") +
        " ladder mismatch (" + std::to_string(baseline.sizes.size()) +
        " baseline vs " + std::to_string(current.sizes.size()) +
        " current points)");
    return problems;  // per-cell comparison would be meaningless
  }

  for (const auto& cur : current.series)
    if (baseline.find_series(cur.name) == nullptr)
      add("extra series '" + cur.name +
          "' not in baseline (new heuristic? regenerate the baseline)");

  for (const auto& base : baseline.series) {
    const BenchSeries* cur = current.find_series(base.name);
    if (cur == nullptr) {
      add("missing series '" + base.name + "'");
      continue;
    }
    for (std::size_t i = 0; i < base.makespan_s.size(); ++i) {
      const double b = base.makespan_s[i];
      const double c = cur->makespan_s[i];
      if (std::isnan(b)) continue;  // baseline never measured this cell
      // Written so NaN on the current side fails (any comparison with
      // NaN is false, so the negation trips).
      const double tol = opts.makespan_rtol * std::max(std::abs(b), 1e-300);
      if (!(std::abs(c - b) <= tol))
        add("series '" + base.name + "' makespan drift at " + axis + " " +
            std::to_string(baseline.sizes[i]) + ": baseline " +
            std::to_string(b) + " vs current " + std::to_string(c));
    }
    // Hit counts are deterministic integers under a fixed seed; any
    // difference is a behaviour change, so the comparison is exact.
    if (!base.hits.empty()) {
      if (cur->hits.empty()) {
        add("series '" + base.name + "' is missing hit counts");
      } else {
        for (std::size_t i = 0; i < base.hits.size(); ++i)
          if (!(base.hits[i] == cur->hits[i]))
            add("series '" + base.name + "' hit-count drift at " + axis +
                " " + std::to_string(baseline.sizes[i]) + ": baseline " +
                std::to_string(static_cast<std::uint64_t>(base.hits[i])) +
                " vs current " +
                std::to_string(static_cast<std::uint64_t>(cur->hits[i])));
      }
    }
    // Micro reports gate on throughput: a higher-is-better axis, so the
    // regression test is a *lower bound* (current >= baseline / factor).
    // Written so NaN on the current side fails.
    if (!base.throughput.empty() &&
        cur->throughput.size() != base.throughput.size()) {
      add("series '" + base.name + "' is missing throughput");
      continue;
    }
    for (std::size_t i = 0; i < base.throughput.size(); ++i) {
      const double b = base.throughput[i];
      const double c = cur->throughput[i];
      if (std::isnan(b)) continue;  // baseline never measured this cell
      const double floor = b / opts.throughput_factor;
      if (!(c >= floor))
        add("series '" + base.name + "' throughput regression at " + axis +
            " " + std::to_string(baseline.sizes[i]) + ": baseline " +
            std::to_string(b) + " items/s, current " + std::to_string(c) +
            " items/s (floor " + std::to_string(floor) + " items/s)");
    }
    // Selection cost is host-dependent like wall_time_s, so the gate is
    // the same one-sided budget: current <= baseline * wall_factor.
    // Written so NaN on the current side fails.
    if (!base.micro_scheduling_cost_s.empty() &&
        cur->micro_scheduling_cost_s.size() !=
            base.micro_scheduling_cost_s.size()) {
      add("series '" + base.name + "' is missing micro_scheduling_cost_s");
      continue;
    }
    for (std::size_t i = 0; i < base.micro_scheduling_cost_s.size(); ++i) {
      const double b = base.micro_scheduling_cost_s[i];
      const double c = cur->micro_scheduling_cost_s[i];
      if (std::isnan(b)) continue;  // baseline never measured this cell
      const double limit = b * opts.wall_factor;
      if (!(c <= limit))
        add("series '" + base.name +
            "' micro_scheduling_cost_s regression at " + axis + " " +
            std::to_string(baseline.sizes[i]) + ": baseline " +
            std::to_string(b) + "s, current " + std::to_string(c) +
            "s (limit " + std::to_string(limit) + "s)");
    }
    if (!std::isnan(base.wall_time_s)) {
      const double limit = base.wall_time_s * opts.wall_factor;
      if (std::isnan(cur->wall_time_s))
        add("series '" + base.name + "' is missing wall_time_s");
      else if (!(cur->wall_time_s <= limit))
        add("series '" + base.name + "' wall_time_s regression: baseline " +
            std::to_string(base.wall_time_s) + "s, current " +
            std::to_string(cur->wall_time_s) + "s (limit " +
            std::to_string(limit) + "s)");
    }
  }
  return problems;
}

}  // namespace gridcast::io
