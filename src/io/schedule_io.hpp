#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

/// Schedule export for external tooling.
namespace gridcast::io {

/// CSV with one row per transfer:
/// `index,sender,receiver,start,arrival` followed by one row per cluster
/// `finish,<cluster>,,<finish>,` — directly plottable as a Gantt source.
void write_schedule_csv(std::ostream& os, const sched::Schedule& s);

/// JSON object {root, makespan, transfers:[{...}], finish:[...]}
/// (hand-rolled: the schedule grammar is flat and tiny).
void write_schedule_json(std::ostream& os, const sched::Schedule& s);

[[nodiscard]] std::string schedule_to_csv(const sched::Schedule& s);
[[nodiscard]] std::string schedule_to_json(const sched::Schedule& s);

}  // namespace gridcast::io
