#include "io/grid_io.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace gridcast::io {

namespace {

/// Shared with instance_io: token reader skipping '#' comments.
class Lexer {
 public:
  explicit Lexer(std::istream& is) : is_(is) {}

  std::string word(const char* what) {
    std::string t;
    while (is_ >> t) {
      if (t[0] == '#') {
        std::string rest;
        std::getline(is_, rest);
        continue;
      }
      return t;
    }
    throw InvalidInput(std::string("unexpected end of input, expected ") +
                       what);
  }

  void expect(const std::string& literal) {
    const std::string t = word(literal.c_str());
    if (t != literal)
      throw InvalidInput("expected '" + literal + "', got '" + t + "'");
  }

  double number(const char* what) {
    const std::string t = word(what);
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(t, &used);
    } catch (const std::exception&) {
      throw InvalidInput(std::string("expected number for ") + what +
                         ", got '" + t + "'");
    }
    if (used != t.size())
      throw InvalidInput(std::string("trailing junk in number for ") + what +
                         ": '" + t + "'");
    return v;
  }

  std::uint64_t count(const char* what) {
    const double v = number(what);
    if (v < 0 || v != static_cast<double>(static_cast<std::uint64_t>(v)))
      throw InvalidInput(std::string(what) +
                         " must be a non-negative integer");
    return static_cast<std::uint64_t>(v);
  }

 private:
  std::istream& is_;
};

void write_fn(std::ostream& os, const plogp::GapFunction& f) {
  os << " fn " << f.samples().size();
  for (const auto& [size, value] : f.samples())
    os << ' ' << size << ' ' << value;
}

plogp::GapFunction read_fn(Lexer& lex) {
  lex.expect("fn");
  const auto k = lex.count("sample count");
  if (k == 0) throw InvalidInput("gap function needs at least one sample");
  std::vector<plogp::GapFunction::Sample> samples;
  samples.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    const auto size = lex.count("sample size");
    const double value = lex.number("sample value");
    if (value < 0.0) throw InvalidInput("negative gap sample");
    samples.emplace_back(size, value);
  }
  try {
    return plogp::GapFunction(std::move(samples));
  } catch (const LogicError& e) {
    throw InvalidInput(std::string("bad gap function: ") + e.what());
  }
}

void write_params(std::ostream& os, const plogp::Params& p) {
  os << " params " << p.L;
  write_fn(os, p.g);
  write_fn(os, p.os);
  write_fn(os, p.orecv);
}

plogp::Params read_params(Lexer& lex) {
  lex.expect("params");
  plogp::Params p;
  p.L = lex.number("latency");
  p.g = read_fn(lex);
  p.os = read_fn(lex);
  p.orecv = read_fn(lex);
  try {
    p.validate();
  } catch (const LogicError& e) {
    throw InvalidInput(std::string("inconsistent pLogP parameters: ") +
                       e.what());
  }
  return p;
}

plogp::BcastAlgorithm algorithm_from_name(const std::string& name) {
  for (const auto a :
       {plogp::BcastAlgorithm::kFlat, plogp::BcastAlgorithm::kChain,
        plogp::BcastAlgorithm::kBinomial,
        plogp::BcastAlgorithm::kSegmentedChain})
    if (name == plogp::to_string(a)) return a;
  throw InvalidInput("unknown intra algorithm '" + name + "'");
}

}  // namespace

void write_grid(std::ostream& os, const topology::Grid& grid) {
  grid.validate();
  os << std::setprecision(17);
  os << "gridcast-grid v1\n";
  os << "clusters " << grid.cluster_count() << '\n';
  for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
    const auto& cl = grid.cluster(c);
    os << "cluster " << cl.name() << ' ' << cl.size() << ' '
       << plogp::to_string(cl.algorithm());
    write_params(os, cl.intra());
    os << '\n';
  }
  for (ClusterId i = 0; i < grid.cluster_count(); ++i) {
    for (ClusterId j = 0; j < grid.cluster_count(); ++j) {
      if (i == j) continue;
      os << "link " << i << ' ' << j;
      write_params(os, grid.link(i, j));
      os << '\n';
    }
  }
  os << "end\n";
}

topology::Grid read_grid(std::istream& is) {
  Lexer lex(is);
  lex.expect("gridcast-grid");
  lex.expect("v1");
  lex.expect("clusters");
  const auto n = lex.count("cluster count");
  if (n == 0) throw InvalidInput("grid needs at least one cluster");

  std::vector<topology::Cluster> clusters;
  clusters.reserve(n);
  for (std::uint64_t c = 0; c < n; ++c) {
    lex.expect("cluster");
    const std::string name = lex.word("cluster name");
    const auto size = lex.count("cluster size");
    if (size == 0) throw InvalidInput("cluster size must be positive");
    const auto algorithm = algorithm_from_name(lex.word("intra algorithm"));
    plogp::Params intra = read_params(lex);
    clusters.emplace_back(name, static_cast<std::uint32_t>(size),
                          std::move(intra), algorithm);
  }

  topology::Grid grid(std::move(clusters));
  for (std::string tok = lex.word("link or end"); tok != "end";
       tok = lex.word("link or end")) {
    if (tok != "link") throw InvalidInput("expected 'link', got '" + tok + "'");
    const auto from = lex.count("link source");
    const auto to = lex.count("link target");
    if (from >= n || to >= n || from == to)
      throw InvalidInput("bad link endpoints");
    grid.set_link(static_cast<ClusterId>(from), static_cast<ClusterId>(to),
                  read_params(lex));
  }
  try {
    grid.validate();
  } catch (const LogicError& e) {
    throw InvalidInput(std::string("incomplete grid: ") + e.what());
  }
  return grid;
}

std::string grid_to_string(const topology::Grid& grid) {
  std::ostringstream os;
  write_grid(os, grid);
  return os.str();
}

topology::Grid grid_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_grid(is);
}

}  // namespace gridcast::io
