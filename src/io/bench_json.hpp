#pragma once

#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hpp"

/// Machine-readable benchmark reports (BENCH_sweep.json and friends).
///
/// One grammar serves every producer and consumer: the `gridcast_race`
/// CLI, `bench_sweep_json`, shard merging, and the CI regression gate all
/// traffic in a `BenchReport`.  Writing is deterministic — 17 significant
/// digits, fixed key order — so a merged set of shard reports is
/// byte-identical to the equivalent single-process run, and a re-serialised
/// parse is byte-identical to its source.  Scheduler names pass through
/// `json_escape`, so a registered name containing a quote or backslash
/// cannot corrupt the output.
namespace gridcast::io {

/// One strategy's row: makespan per sweep size plus (optionally) the
/// wall-clock cost of computing its schedules.  NaN marks "absent": a
/// sharded run leaves foreign cells NaN (written as `null`), and
/// `wall_time_s` is NaN unless the producer timed scheduling.
struct BenchSeries {
  std::string name;
  double wall_time_s = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> makespan_s;
};

/// A full report: the sweep axis, per-series results, and enough metadata
/// (grid, mode, root, seed/jitter, shard coordinates) to refuse apples-to-
/// oranges comparisons and merges.
struct BenchReport {
  std::string bench = "race";
  std::string grid;
  std::string mode = "predicted";  ///< "predicted" | "measured"
  ClusterId root = 0;
  std::uint64_t seed = 0;          ///< measured mode only (else ignored)
  double jitter = 0.0;             ///< measured mode only (else ignored)
  std::size_t shards = 1;          ///< total shards (1 = unsharded)
  std::size_t shard = 0;           ///< this report's shard index
  std::vector<Bytes> sizes;
  std::vector<BenchSeries> series;

  [[nodiscard]] const BenchSeries* find_series(std::string_view name) const;
};

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters; UTF-8 passes through).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Serialise deterministically (17 significant digits, NaN → null,
/// shard fields only when shards > 1, seed/jitter only in measured mode).
void write_bench_json(std::ostream& os, const BenchReport& r);
[[nodiscard]] std::string bench_to_json(const BenchReport& r);

/// Parse a report written by `write_bench_json` (strict: malformed JSON,
/// unknown keys, or type mismatches throw InvalidInput).
[[nodiscard]] BenchReport read_bench_json(std::istream& is);
[[nodiscard]] BenchReport bench_from_json(const std::string& text);

/// Tolerances for the CI regression gate.
struct BenchCompareOptions {
  /// Relative tolerance on per-cell makespan drift (the model is
  /// deterministic; this only absorbs cross-platform float noise).
  double makespan_rtol = 1e-6;
  /// A series regresses when wall_time_s exceeds baseline * wall_factor
  /// (generous: CI machines are slower and noisier than the one that
  /// recorded the baseline).
  double wall_factor = 10.0;
};

/// Compare `current` against `baseline`; returns one human-readable
/// problem per violation (empty = gate passes).  Violations: metadata or
/// size-axis mismatch, missing/extra series, uncomputed (NaN) cells,
/// makespan drift past `makespan_rtol`, wall-time regression past
/// `wall_factor`.
[[nodiscard]] std::vector<std::string> compare_bench(
    const BenchReport& baseline, const BenchReport& current,
    const BenchCompareOptions& opts = {});

}  // namespace gridcast::io
