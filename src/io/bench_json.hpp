#pragma once

#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hpp"

/// Machine-readable benchmark reports (BENCH_sweep.json and friends).
///
/// One grammar serves every producer and consumer: the `gridcast_race`
/// CLI, `bench_sweep_json`, shard merging, and the CI regression gate all
/// traffic in a `BenchReport`.  Writing is deterministic — 17 significant
/// digits, fixed key order — so a merged set of shard reports is
/// byte-identical to the equivalent single-process run, and a re-serialised
/// parse is byte-identical to its source.  Scheduler names pass through
/// `json_escape`, so a registered name containing a quote or backslash
/// cannot corrupt the output.
namespace gridcast::io {

/// One strategy's row: makespan per sweep size plus (optionally) the
/// wall-clock cost of computing its schedules.  NaN marks "absent": a
/// sharded run leaves foreign cells NaN (written as `null`), and
/// `wall_time_s` is NaN unless the producer timed scheduling.
///
/// Monte-Carlo race reports (`bench == "montecarlo"`) carry two more
/// shapes of data.  Final reports put the per-point *mean* completion in
/// `makespan_s` and the per-point hit counts (iterations where the series
/// matched the global minimum; ties credit every achiever) in `hits`.
/// Shard-form reports instead carry per-(point, iteration-block) partial
/// sums in `block_sum_s` / `block_hits`, with NaN marking blocks the shard
/// does not own — merging folds blocks in block order, so the merged means
/// are byte-identical to an unsharded run.  Exactly one of `makespan_s`
/// and `block_sum_s` is present per series.
struct BenchSeries {
  std::string name;
  double wall_time_s = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> makespan_s;
  std::vector<double> hits;        ///< per point; empty = not tracked
  std::vector<std::vector<double>> block_sum_s;  ///< [point][block]
  std::vector<std::vector<double>> block_hits;   ///< [point][block]
  /// Micro-throughput reports (`bench == "micro"`) only: items per second
  /// at each axis point (events/sec, sends/sec, ...).  Replaces
  /// `makespan_s` for that kind; empty everywhere else.
  std::vector<double> throughput;
  /// Size sweeps (`bench == "race"`, final form) only, opt-in: seconds to
  /// *select* one schedule at each ladder point (min over timing passes),
  /// so composite selectors ("auto") carry their per-selection overhead
  /// next to the makespans they won.  Host-dependent like `wall_time_s`,
  /// and gated the same way: one-sided, current <= baseline * wall_factor,
  /// NaN baseline cells skipped.
  std::vector<double> micro_scheduling_cost_s;
};

/// A full report: the sweep axis, per-series results, and enough metadata
/// (grid, mode, root, seed/jitter, shard coordinates) to refuse apples-to-
/// oranges comparisons and merges.
///
/// Two report kinds share the grammar.  Message-size sweeps
/// (`bench == "race"`) put the byte ladder in `sizes`, serialised under the
/// JSON key "sizes".  Monte-Carlo races (`bench == "montecarlo"`, the
/// Figs. 1-4 experiment) put the *cluster counts* in the same axis vector,
/// serialised under the key "clusters", and additionally record the
/// Monte-Carlo depth per point (`iterations`, always) and the block size
/// of the deterministic shard partition (`block_iters`, shard-form reports
/// only — merged reports drop it).
/// A third kind, `bench == "micro"`, carries the simulator throughput
/// lane: the axis is the per-run workload scale (scheduled events), every
/// series reports `throughput` (items/sec) instead of `makespan_s`, and
/// the CI gate is a *lower bound* (current >= baseline / throughput_factor)
/// because wall-clock throughput is machine-dependent where makespans are
/// exact.  Micro reports refuse the sweep-only axes that cannot apply to
/// them: verb, sharding, and Monte-Carlo iteration keys.
/// A fourth kind, `bench == "serve"`, reports a serving-layer request-log
/// replay: its one-point axis is the request count, serialised under the
/// key "requests" (so compares refuse mismatched logs the same way they
/// refuse mismatched ladders).  The deterministic series (hit_rate and
/// the counter cells) use `makespan_s` as a generic exact value channel;
/// opt-in timing series carry `throughput` (requests/sec, lower-bounded)
/// and `wall_time_s` (latency percentiles, upper-bounded) with a null
/// value cell.  A replayed log mixes verbs and roots per request, so
/// serve reports refuse the verb key and the shard axes like micro does.
struct BenchReport {
  /// "race" (size sweep) | "montecarlo" | "micro" | "serve"
  std::string bench = "race";
  std::string grid;
  std::string mode = "predicted";  ///< "predicted" | "measured"
  /// The collective the sweep raced: "bcast" | "scatter" | "alltoall"
  /// (canonical `collective::verb_name` spellings).  Serialised only when
  /// not "bcast", so default-verb reports stay byte-identical to the
  /// pre-verb-axis grammar; Monte-Carlo races are broadcast by definition
  /// and may not carry the key.
  std::string verb = "bcast";
  ClusterId root = 0;
  std::uint64_t seed = 0;          ///< measured sweeps + all montecarlo runs
  double jitter = 0.0;             ///< measured mode only (else ignored)
  std::uint64_t iterations = 0;    ///< montecarlo only: draws per point
  std::uint64_t block_iters = 0;   ///< montecarlo shard-form only
  std::size_t shards = 1;          ///< total shards (1 = unsharded)
  std::size_t shard = 0;           ///< this report's shard index
  std::vector<Bytes> sizes;        ///< byte ladder or cluster counts
  std::vector<BenchSeries> series;

  [[nodiscard]] const BenchSeries* find_series(std::string_view name) const;

  /// Monte-Carlo race report (cluster-count axis, hits, iterations)?
  [[nodiscard]] bool is_montecarlo() const noexcept {
    return bench == "montecarlo";
  }
  /// Micro-throughput report (workload axis, throughput series)?
  [[nodiscard]] bool is_micro() const noexcept { return bench == "micro"; }
  /// Serving-layer replay report (request-count axis)?
  [[nodiscard]] bool is_serve() const noexcept { return bench == "serve"; }
  /// Carries per-block shard partials instead of final per-point values?
  [[nodiscard]] bool shard_form() const noexcept;
  /// Number of iteration blocks per point: ceil(iterations / block_iters).
  /// Requires block_iters > 0.
  [[nodiscard]] std::size_t block_count() const;
};

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters; UTF-8 passes through).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Serialise deterministically (17 significant digits, NaN → null,
/// shard fields only when shards > 1, seed/jitter only in measured mode).
void write_bench_json(std::ostream& os, const BenchReport& r);
[[nodiscard]] std::string bench_to_json(const BenchReport& r);

/// Parse a report written by `write_bench_json` (strict: malformed JSON,
/// unknown keys, or type mismatches throw InvalidInput).
[[nodiscard]] BenchReport read_bench_json(std::istream& is);
[[nodiscard]] BenchReport bench_from_json(const std::string& text);

/// Tolerances for the CI regression gate.
struct BenchCompareOptions {
  /// Relative tolerance on per-cell makespan drift (the model is
  /// deterministic; this only absorbs cross-platform float noise).
  double makespan_rtol = 1e-6;
  /// A series regresses when wall_time_s exceeds baseline * wall_factor
  /// (generous: CI machines are slower and noisier than the one that
  /// recorded the baseline).
  double wall_factor = 10.0;
  /// Micro reports: a series regresses when its throughput falls below
  /// baseline / throughput_factor (same generosity, opposite direction —
  /// throughput is a higher-is-better axis).
  double throughput_factor = 10.0;
};

/// Compare `current` against `baseline`; returns one human-readable
/// problem per violation (empty = gate passes).  Violations: metadata or
/// axis mismatch, shard-form (unmerged) inputs, missing/extra series,
/// uncomputed (NaN) cells, makespan drift past `makespan_rtol`, hit-count
/// drift (exact: hits are deterministic integers), wall-time regression
/// past `wall_factor`, throughput shortfall below baseline /
/// `throughput_factor` (micro reports).
[[nodiscard]] std::vector<std::string> compare_bench(
    const BenchReport& baseline, const BenchReport& current,
    const BenchCompareOptions& opts = {});

}  // namespace gridcast::io
