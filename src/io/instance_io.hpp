#pragma once

#include <iosfwd>
#include <string>

#include "sched/instance.hpp"

/// Plain-text persistence for scheduling instances.
///
/// Grid operators measure parameters once and schedule many broadcasts;
/// persisting the `Instance` decouples the (slow) measurement phase from
/// scheduling, and makes experiments replayable from checked-in files.
///
/// Format (whitespace-separated, `#` comments allowed between records):
///
///     gridcast-instance v1
///     clusters <n> root <r>
///     T   <n values, seconds>
///     g   <n*n values, row-major, seconds; diagonal ignored>
///     L   <n*n values, row-major, seconds; diagonal ignored>
///
/// Parsing is strict: unknown headers, short rows or non-numeric fields
/// throw `InvalidInput` with a description of the offending token.
namespace gridcast::io {

/// Serialise; exact round trip through read_instance (modulo text float
/// precision: 17 significant digits are written).
void write_instance(std::ostream& os, const sched::Instance& inst);

/// Parse; throws InvalidInput on malformed input.
[[nodiscard]] sched::Instance read_instance(std::istream& is);

/// Convenience string forms.
[[nodiscard]] std::string instance_to_string(const sched::Instance& inst);
[[nodiscard]] sched::Instance instance_from_string(const std::string& text);

}  // namespace gridcast::io
