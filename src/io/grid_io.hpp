#pragma once

#include <iosfwd>
#include <string>

#include "topology/grid.hpp"

/// Plain-text persistence for grids, including full pLogP gap functions.
///
/// A grid description is the expensive artefact of a deployment: pLogP
/// acquisition needs minutes of network probing per link (Kielmann's
/// procedure).  Persisting it lets operators measure once and schedule
/// forever — and lets this repo check in the Table 3 testbed as data.
///
/// Format (whitespace-separated, `#` comments allowed between records):
///
///     gridcast-grid v1
///     clusters <n>
///     cluster <name> <size> <algorithm> params <L> fn <k> <size value>...
///         ... fn <k> ... fn <k> ...      # g, os, or sample lists
///     link <from> <to> params ...        # one per ordered pair
///     end
///
/// `algorithm` is the intra broadcast algorithm name (collective_predict
/// to_string form).  Parsing is strict; malformed input throws
/// InvalidInput with the offending token.
namespace gridcast::io {

void write_grid(std::ostream& os, const topology::Grid& grid);
[[nodiscard]] topology::Grid read_grid(std::istream& is);

[[nodiscard]] std::string grid_to_string(const topology::Grid& grid);
[[nodiscard]] topology::Grid grid_from_string(const std::string& text);

}  // namespace gridcast::io
