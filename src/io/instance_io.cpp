#include "io/instance_io.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace gridcast::io {

namespace {

/// Token reader that skips '#' comments and throws with context.
class Lexer {
 public:
  explicit Lexer(std::istream& is) : is_(is) {}

  std::string word(const char* what) {
    std::string t;
    while (is_ >> t) {
      if (t[0] == '#') {
        std::string rest;
        std::getline(is_, rest);
        continue;
      }
      return t;
    }
    throw InvalidInput(std::string("unexpected end of input, expected ") +
                       what);
  }

  void expect(const std::string& literal) {
    const std::string t = word(literal.c_str());
    if (t != literal)
      throw InvalidInput("expected '" + literal + "', got '" + t + "'");
  }

  double number(const char* what) {
    const std::string t = word(what);
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(t, &used);
    } catch (const std::exception&) {
      throw InvalidInput(std::string("expected number for ") + what +
                         ", got '" + t + "'");
    }
    if (used != t.size())
      throw InvalidInput(std::string("trailing junk in number for ") + what +
                         ": '" + t + "'");
    return v;
  }

  std::size_t count(const char* what) {
    const double v = number(what);
    if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v)))
      throw InvalidInput(std::string(what) + " must be a non-negative integer");
    return static_cast<std::size_t>(v);
  }

 private:
  std::istream& is_;
};

}  // namespace

void write_instance(std::ostream& os, const sched::Instance& inst) {
  const std::size_t n = inst.clusters();
  os << "gridcast-instance v1\n";
  os << "clusters " << n << " root " << inst.root() << '\n';
  os << std::setprecision(17);
  os << "T";
  for (ClusterId c = 0; c < n; ++c) os << ' ' << inst.T(c);
  os << "\ng";
  for (ClusterId i = 0; i < n; ++i)
    for (ClusterId j = 0; j < n; ++j)
      os << ' ' << (i == j ? 0.0 : inst.g(i, j));
  os << "\nL";
  for (ClusterId i = 0; i < n; ++i)
    for (ClusterId j = 0; j < n; ++j)
      os << ' ' << (i == j ? 0.0 : inst.L(i, j));
  os << '\n';
}

sched::Instance read_instance(std::istream& is) {
  Lexer lex(is);
  lex.expect("gridcast-instance");
  lex.expect("v1");
  lex.expect("clusters");
  const std::size_t n = lex.count("cluster count");
  if (n == 0) throw InvalidInput("instance needs at least one cluster");
  lex.expect("root");
  const std::size_t root = lex.count("root");
  if (root >= n) throw InvalidInput("root out of range");

  lex.expect("T");
  std::vector<Time> T(n);
  for (std::size_t c = 0; c < n; ++c) T[c] = lex.number("T value");

  const auto read_matrix = [&](const char* name) {
    lex.expect(name);
    SquareMatrix<Time> m(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) m(i, j) = lex.number(name);
    return m;
  };
  SquareMatrix<Time> g = read_matrix("g");
  SquareMatrix<Time> L = read_matrix("L");

  try {
    return sched::Instance(static_cast<ClusterId>(root), std::move(g),
                           std::move(L), std::move(T));
  } catch (const LogicError& e) {
    throw InvalidInput(std::string("inconsistent instance data: ") +
                       e.what());
  }
}

std::string instance_to_string(const sched::Instance& inst) {
  std::ostringstream os;
  write_instance(os, inst);
  return os.str();
}

sched::Instance instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

}  // namespace gridcast::io
