#include "io/schedule_io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace gridcast::io {

void write_schedule_csv(std::ostream& os, const sched::Schedule& s) {
  os << std::setprecision(17);
  os << "record,cluster_or_sender,receiver,start_or_finish,arrival\n";
  std::size_t idx = 0;
  for (const auto& t : s.transfers)
    os << "transfer" << idx++ << ',' << t.sender << ',' << t.receiver << ','
       << t.start << ',' << t.arrival << '\n';
  for (std::size_t c = 0; c < s.cluster_finish.size(); ++c)
    os << "finish," << c << ",," << s.cluster_finish[c] << ",\n";
}

void write_schedule_json(std::ostream& os, const sched::Schedule& s) {
  os << std::setprecision(17);
  os << "{\"root\":" << s.root << ",\"makespan\":" << s.makespan
     << ",\"transfers\":[";
  for (std::size_t i = 0; i < s.transfers.size(); ++i) {
    const auto& t = s.transfers[i];
    os << (i == 0 ? "" : ",") << "{\"sender\":" << t.sender
       << ",\"receiver\":" << t.receiver << ",\"start\":" << t.start
       << ",\"arrival\":" << t.arrival << '}';
  }
  os << "],\"finish\":[";
  for (std::size_t c = 0; c < s.cluster_finish.size(); ++c)
    os << (c == 0 ? "" : ",") << s.cluster_finish[c];
  os << "]}";
}

std::string schedule_to_csv(const sched::Schedule& s) {
  std::ostringstream os;
  write_schedule_csv(os, s);
  return os.str();
}

std::string schedule_to_json(const sched::Schedule& s) {
  std::ostringstream os;
  write_schedule_json(os, s);
  return os.str();
}

}  // namespace gridcast::io
