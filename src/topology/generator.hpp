#pragma once

#include <cstdint>

#include "support/rng.hpp"
#include "topology/grid.hpp"

/// Random structured-grid synthesis.
///
/// Produces grids with the hierarchy of real multi-site platforms: clusters
/// are assigned to `sites`; links inside a site are LAN-class, links across
/// sites WAN-class, with latencies/bandwidths drawn from the Table 1 level
/// ranges (comm_level.hpp).  Used by the simulator tests and the extension
/// benches; the paper's Figs. 1–4 use the flat Table 2 parameter ranges
/// instead (exp/param_ranges.hpp), which bypass topology synthesis.
namespace gridcast::topology {

struct GeneratorConfig {
  std::uint32_t clusters = 6;
  std::uint32_t sites = 3;           ///< clusters are spread round-robin
  std::uint32_t min_cluster_size = 2;
  std::uint32_t max_cluster_size = 32;
  Time intra_latency_lo = us(20.0);  ///< node-to-node latency inside clusters
  Time intra_latency_hi = us(120.0);
  double intra_bandwidth_lo = 80e6;  ///< bytes/s inside clusters
  double intra_bandwidth_hi = 120e6;
};

/// Synthesise a random grid.  Deterministic for a given RNG state.
[[nodiscard]] Grid random_grid(const GeneratorConfig& cfg, Rng& rng);

}  // namespace gridcast::topology
