#include "topology/cluster.hpp"

#include "support/error.hpp"

namespace gridcast::topology {

Cluster::Cluster(std::string name, std::uint32_t size, plogp::Params intra,
                 plogp::BcastAlgorithm algorithm)
    : name_(std::move(name)),
      size_(size),
      intra_(std::move(intra)),
      algorithm_(algorithm) {
  GRIDCAST_ASSERT(size_ >= 1, "a cluster has at least its coordinator");
  intra_.validate();
}

Time Cluster::internal_bcast_time(Bytes m) const {
  return plogp::predict_bcast(algorithm_, intra_, size_, m);
}

}  // namespace gridcast::topology
