#include "topology/comm_level.hpp"

namespace gridcast::topology {

std::string_view to_string(CommLevel l) noexcept {
  switch (l) {
    case CommLevel::kWan: return "WAN-TCP";
    case CommLevel::kLan: return "LAN-TCP";
    case CommLevel::kLocalhost: return "localhost-TCP";
    case CommLevel::kSharedMemory: return "shared-memory";
  }
  return "?";
}

CommLevel classify_latency(Time latency) noexcept {
  if (latency >= ms(2.0)) return CommLevel::kWan;
  if (latency >= us(100.0)) return CommLevel::kLan;
  if (latency >= us(10.0)) return CommLevel::kLocalhost;
  return CommLevel::kSharedMemory;
}

LatencyRange typical_latency(CommLevel l) noexcept {
  switch (l) {
    case CommLevel::kWan: return {ms(2.0), ms(50.0)};
    case CommLevel::kLan: return {us(100.0), ms(1.0)};
    case CommLevel::kLocalhost: return {us(10.0), us(100.0)};
    case CommLevel::kSharedMemory: return {us(0.5), us(10.0)};
  }
  return {0.0, 0.0};
}

BandwidthRange typical_bandwidth(CommLevel l) noexcept {
  switch (l) {
    case CommLevel::kWan: return {1e6, 10e6};         // 1-10 MB/s (2005 WAN)
    case CommLevel::kLan: return {50e6, 120e6};       // fast/gig ethernet
    case CommLevel::kLocalhost: return {200e6, 1e9};  // loopback
    case CommLevel::kSharedMemory: return {1e9, 10e9};
  }
  return {0.0, 0.0};
}

}  // namespace gridcast::topology
