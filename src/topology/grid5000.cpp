#include "topology/grid5000.hpp"

#include <array>
#include <string>

#include "support/error.hpp"

namespace gridcast::topology {

namespace {

// Table 3 of the paper, microseconds.  Row/column order:
// 0: 31x Orsay-A, 1: 29x Orsay-B, 2: 6x IDPOT-A, 3: 1x IDPOT-B,
// 4: 1x IDPOT-C, 5: 20x Toulouse.  Diagonals are intra-cluster
// node-to-node latencies ("-" for singletons → 0).
constexpr std::array<std::array<double, 6>, 6> kLatencyUs{{
    {47.56, 62.10, 12181.52, 12187.24, 12197.49, 5210.99},
    {62.10, 47.92, 12181.52, 12198.03, 12195.22, 5211.47},
    {12181.52, 12181.52, 35.52, 60.08, 60.08, 5388.49},
    {12187.24, 12198.03, 60.08, 0.0, 242.47, 5393.98},
    {12197.49, 12195.22, 60.08, 242.47, 0.0, 5394.10},
    {5210.99, 5211.47, 5388.49, 5393.98, 5394.10, 27.53},
}};

constexpr std::array<std::uint32_t, 6> kSizes{31, 29, 6, 1, 1, 20};

const std::array<std::string, 6> kNames{
    "Orsay-A", "Orsay-B", "IDPOT-A", "IDPOT-B", "IDPOT-C", "Toulouse"};

/// Calibrated bandwidth for an inter-cluster link, keyed on its measured
/// latency class (the paper did not publish bandwidths — see header).
/// 1 MB/s on the long Orsay<->IDPOT path reproduces the paper's "Flat Tree
/// needed almost six times more than ECEF for 4 MB" ratio.
double link_bandwidth(Time latency) {
  if (latency >= ms(10.0)) return 1.0e6;   // Orsay <-> IDPOT WAN
  if (latency >= ms(2.0)) return 4.0e6;    // <-> Toulouse WAN
  return 100e6;                            // intra-site LAN
}

}  // namespace

SquareMatrix<Time> grid5000_latency_matrix() {
  SquareMatrix<Time> m(kGrid5000Clusters);
  for (std::size_t i = 0; i < kGrid5000Clusters; ++i)
    for (std::size_t j = 0; j < kGrid5000Clusters; ++j)
      m(i, j) = us(kLatencyUs[i][j]);
  return m;
}

std::vector<std::uint32_t> grid5000_sizes() {
  return {kSizes.begin(), kSizes.end()};
}

Grid grid5000_testbed() {
  constexpr double kIntraBandwidth = 110e6;  // GigE-era node NICs
  std::vector<Cluster> clusters;
  clusters.reserve(kGrid5000Clusters);
  for (std::size_t c = 0; c < kGrid5000Clusters; ++c) {
    // Singletons have no intra traffic; give them nominal LAN parameters.
    const Time intra_lat =
        kLatencyUs[c][c] > 0.0 ? us(kLatencyUs[c][c]) : us(50.0);
    clusters.emplace_back(
        kNames[c], kSizes[c],
        plogp::Params::latency_bandwidth(intra_lat, kIntraBandwidth));
  }

  Grid grid(std::move(clusters));
  for (ClusterId i = 0; i < kGrid5000Clusters; ++i) {
    for (ClusterId j = static_cast<ClusterId>(i + 1); j < kGrid5000Clusters;
         ++j) {
      const Time lat = us(kLatencyUs[i][j]);
      grid.set_link_symmetric(
          i, j, plogp::Params::latency_bandwidth(lat, link_bandwidth(lat)));
    }
  }
  grid.validate();
  GRIDCAST_ASSERT(grid.total_nodes() == 88, "Table 3 testbed has 88 machines");
  return grid;
}

}  // namespace gridcast::topology
