#pragma once

#include <cstdint>
#include <string_view>

#include "support/types.hpp"

/// Communication levels (paper Table 1, after Karonis/MPICH-G2).
///
/// Grid networks are hierarchical: WAN-TCP (level 0) > LAN-TCP (1) >
/// localhost-TCP (2) > shared memory / vendor MPI (3).  The levels order
/// links by latency; multi-level collective algorithms overlap
/// communication *across* levels.  gridcast uses the level only as a
/// classification/reporting device — the heuristics consume raw pLogP
/// values — but the generator synthesises links per level, which is how
/// the simulated topologies inherit grid structure.
namespace gridcast::topology {

enum class CommLevel : std::uint8_t {
  kWan = 0,           ///< wide-area TCP (inter-site)
  kLan = 1,           ///< local-area TCP (intra-site, inter-cluster)
  kLocalhost = 2,     ///< same host, loopback TCP
  kSharedMemory = 3,  ///< shared memory / vendor MPI / Myrinet
};

[[nodiscard]] std::string_view to_string(CommLevel l) noexcept;

/// Classify a one-way latency into its level, using the magnitude gaps
/// separating the rows of Table 1: >= 2 ms → WAN, >= 100 µs → LAN,
/// >= 10 µs → localhost, below → shared memory.
[[nodiscard]] CommLevel classify_latency(Time latency) noexcept;

/// Representative latency range [lo, hi) for synthesising a link of the
/// given level (used by the random grid generator).
struct LatencyRange {
  Time lo;
  Time hi;
};
[[nodiscard]] LatencyRange typical_latency(CommLevel l) noexcept;

/// Representative bandwidth range in bytes/second for the level.
struct BandwidthRange {
  double lo;
  double hi;
};
[[nodiscard]] BandwidthRange typical_bandwidth(CommLevel l) noexcept;

}  // namespace gridcast::topology
