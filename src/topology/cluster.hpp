#pragma once

#include <cstdint>
#include <string>

#include "plogp/collective_predict.hpp"
#include "plogp/params.hpp"
#include "support/types.hpp"

/// One homogeneous cluster of a grid.
namespace gridcast::topology {

/// A logical homogeneous cluster: machines close enough in latency that a
/// single pLogP parameter set describes any pair (the output of Lowekamp
/// clustering, Section 7 of the paper).  The coordinator is, by convention,
/// local rank 0; it is the only member that speaks to other clusters.
class Cluster {
 public:
  Cluster(std::string name, std::uint32_t size, plogp::Params intra,
          plogp::BcastAlgorithm algorithm = plogp::BcastAlgorithm::kBinomial);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] const plogp::Params& intra() const noexcept { return intra_; }
  [[nodiscard]] plogp::BcastAlgorithm algorithm() const noexcept {
    return algorithm_;
  }
  void set_algorithm(plogp::BcastAlgorithm a) noexcept { algorithm_ = a; }

  /// Predicted internal broadcast time T_c for an m-byte payload (zero for
  /// singleton clusters — nothing to forward).
  [[nodiscard]] Time internal_bcast_time(Bytes m) const;

 private:
  std::string name_;
  std::uint32_t size_;
  plogp::Params intra_;
  plogp::BcastAlgorithm algorithm_;
};

}  // namespace gridcast::topology
