#pragma once

#include "support/matrix.hpp"
#include "topology/grid.hpp"

/// The paper's Section 7 testbed (Table 3): 88 GRID5000 machines in six
/// logical clusters.
namespace gridcast::topology {

/// Number of logical clusters in the testbed.
inline constexpr std::size_t kGrid5000Clusters = 6;

/// The measured inter-/intra-cluster latency matrix of Table 3, in
/// seconds.  Diagonal entries are the node-to-node latency inside the
/// cluster (singleton clusters 3 and 4 have none; we store 0).
[[nodiscard]] SquareMatrix<Time> grid5000_latency_matrix();

/// Cluster sizes of Table 3: {31, 29, 6, 1, 1, 20}.
[[nodiscard]] std::vector<std::uint32_t> grid5000_sizes();

/// Build the full 88-machine testbed grid.
///
/// Latencies are the paper's measured values; bandwidths were *not*
/// published, so we calibrate them per link class (DESIGN.md §2):
///   * intra-site LAN links (< 1 ms)      : 100 MB/s
///   * Orsay/IDPOT <-> Toulouse (~5.2 ms) : 4 MB/s
///   * Orsay <-> IDPOT (~12.2 ms)         : 1 MB/s
///   * node-to-node inside clusters       : 110 MB/s (GigE era)
/// These reproduce the Fig. 5/6 magnitudes (ECEF family < 3 s at 4 MB,
/// Flat Tree several times slower).
[[nodiscard]] Grid grid5000_testbed();

}  // namespace gridcast::topology
