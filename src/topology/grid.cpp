#include "topology/grid.hpp"

#include <sstream>

#include "support/error.hpp"

namespace gridcast::topology {

Grid::Grid(std::vector<Cluster> clusters)
    : clusters_(std::move(clusters)),
      links_(clusters_.size()),
      link_set_(clusters_.size(), 0) {
  GRIDCAST_ASSERT(!clusters_.empty(), "a grid needs at least one cluster");
  rank_offset_.reserve(clusters_.size() + 1);
  std::uint32_t off = 0;
  for (const auto& c : clusters_) {
    rank_offset_.push_back(off);
    off += c.size();
  }
  rank_offset_.push_back(off);
}

const Cluster& Grid::cluster(ClusterId c) const {
  GRIDCAST_ASSERT(c < clusters_.size(), "cluster id out of range");
  return clusters_[c];
}

Cluster& Grid::cluster(ClusterId c) {
  GRIDCAST_ASSERT(c < clusters_.size(), "cluster id out of range");
  return clusters_[c];
}

void Grid::set_link(ClusterId from, ClusterId to, plogp::Params p) {
  GRIDCAST_ASSERT(from < clusters_.size() && to < clusters_.size(),
                  "link endpoint out of range");
  GRIDCAST_ASSERT(from != to, "no self link: intra params live in Cluster");
  p.validate();
  links_(from, to) = std::move(p);
  link_set_(from, to) = 1;
}

void Grid::set_link_symmetric(ClusterId a, ClusterId b, plogp::Params p) {
  set_link(a, b, p);
  set_link(b, a, std::move(p));
}

const plogp::Params& Grid::link(ClusterId from, ClusterId to) const {
  GRIDCAST_ASSERT(from < clusters_.size() && to < clusters_.size(),
                  "link endpoint out of range");
  GRIDCAST_ASSERT(from != to, "no self link: intra params live in Cluster");
  GRIDCAST_ASSERT(link_set_(from, to), "link parameters were never set");
  return links_(from, to);
}

std::uint32_t Grid::total_nodes() const noexcept {
  return rank_offset_.back();
}

NodeId Grid::global_rank(ClusterId c, NodeId local) const {
  GRIDCAST_ASSERT(c < clusters_.size(), "cluster id out of range");
  GRIDCAST_ASSERT(local < clusters_[c].size(), "local rank out of range");
  return rank_offset_[c] + local;
}

std::pair<ClusterId, NodeId> Grid::locate(NodeId global) const {
  GRIDCAST_ASSERT(global < total_nodes(), "global rank out of range");
  // Linear scan is fine: cluster counts are tens, not millions.
  for (ClusterId c = 0; c + 1 < rank_offset_.size(); ++c)
    if (global < rank_offset_[c + 1]) return {c, global - rank_offset_[c]};
  GRIDCAST_ASSERT(false, "unreachable: rank not located");
  return {kNoCluster, kNoNode};
}

void Grid::validate() const {
  for (ClusterId i = 0; i < clusters_.size(); ++i) {
    clusters_[i].intra().validate();
    for (ClusterId j = 0; j < clusters_.size(); ++j) {
      if (i == j) continue;
      GRIDCAST_ASSERT(link_set_(i, j), "missing link " + clusters_[i].name() +
                                           " -> " + clusters_[j].name());
      links_(i, j).validate();
    }
  }
}

std::string Grid::to_dot() const {
  std::ostringstream os;
  os << "graph grid {\n  node [shape=box];\n";
  for (ClusterId c = 0; c < clusters_.size(); ++c)
    os << "  c" << c << " [label=\"" << clusters_[c].name() << "\\n"
       << clusters_[c].size() << " nodes\"];\n";
  for (ClusterId i = 0; i < clusters_.size(); ++i)
    for (ClusterId j = static_cast<ClusterId>(i + 1); j < clusters_.size();
         ++j)
      if (link_set_(i, j))
        os << "  c" << i << " -- c" << j << " [label=\""
           << to_us(links_(i, j).L) << "us\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace gridcast::topology
