#include "topology/generator.hpp"

#include <string>
#include <vector>

#include "support/error.hpp"
#include "topology/comm_level.hpp"

namespace gridcast::topology {

Grid random_grid(const GeneratorConfig& cfg, Rng& rng) {
  GRIDCAST_ASSERT(cfg.clusters >= 1, "need at least one cluster");
  GRIDCAST_ASSERT(cfg.sites >= 1, "need at least one site");
  GRIDCAST_ASSERT(cfg.min_cluster_size >= 1 &&
                      cfg.min_cluster_size <= cfg.max_cluster_size,
                  "invalid cluster size range");

  std::vector<Cluster> clusters;
  clusters.reserve(cfg.clusters);
  std::vector<std::uint32_t> site_of;
  site_of.reserve(cfg.clusters);

  for (std::uint32_t c = 0; c < cfg.clusters; ++c) {
    const auto size = static_cast<std::uint32_t>(rng.between(
        cfg.min_cluster_size, cfg.max_cluster_size));
    const Time lat = rng.uniform(cfg.intra_latency_lo, cfg.intra_latency_hi);
    const double bw =
        rng.uniform(cfg.intra_bandwidth_lo, cfg.intra_bandwidth_hi);
    clusters.emplace_back("cluster" + std::to_string(c), size,
                          plogp::Params::latency_bandwidth(lat, bw));
    site_of.push_back(c % cfg.sites);
  }

  Grid grid(std::move(clusters));
  for (ClusterId i = 0; i < cfg.clusters; ++i) {
    for (ClusterId j = static_cast<ClusterId>(i + 1); j < cfg.clusters; ++j) {
      const CommLevel level =
          site_of[i] == site_of[j] ? CommLevel::kLan : CommLevel::kWan;
      const auto [llo, lhi] = typical_latency(level);
      const auto [blo, bhi] = typical_bandwidth(level);
      grid.set_link_symmetric(
          i, j,
          plogp::Params::latency_bandwidth(rng.uniform(llo, lhi),
                                           rng.uniform(blo, bhi)));
    }
  }
  grid.validate();
  return grid;
}

}  // namespace gridcast::topology
