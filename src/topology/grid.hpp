#pragma once

#include <string>
#include <vector>

#include "plogp/params.hpp"
#include "support/matrix.hpp"
#include "support/types.hpp"
#include "topology/cluster.hpp"

/// A grid: clusters plus the inter-cluster link matrix.
namespace gridcast::topology {

class Grid {
 public:
  /// Construct with clusters; all inter-cluster links must then be set
  /// (validate() enforces it).
  explicit Grid(std::vector<Cluster> clusters);

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return clusters_.size();
  }
  [[nodiscard]] const Cluster& cluster(ClusterId c) const;
  [[nodiscard]] Cluster& cluster(ClusterId c);
  [[nodiscard]] const std::vector<Cluster>& clusters() const noexcept {
    return clusters_;
  }

  /// Directed coordinator-to-coordinator link parameters.
  void set_link(ClusterId from, ClusterId to, plogp::Params p);
  /// Set both directions at once (grid links are symmetric in practice).
  void set_link_symmetric(ClusterId a, ClusterId b, plogp::Params p);
  [[nodiscard]] const plogp::Params& link(ClusterId from, ClusterId to) const;

  /// Total machine count across clusters.
  [[nodiscard]] std::uint32_t total_nodes() const noexcept;

  /// Global rank of local rank `local` within cluster `c`; clusters are
  /// numbered contiguously in declaration order, coordinators first within
  /// each cluster (local rank 0).
  [[nodiscard]] NodeId global_rank(ClusterId c, NodeId local) const;
  /// Inverse mapping: (cluster, local rank) of a global rank.
  [[nodiscard]] std::pair<ClusterId, NodeId> locate(NodeId global) const;

  /// Check that every off-diagonal link was set and every parameter set is
  /// internally consistent; throws LogicError otherwise.
  void validate() const;

  /// Graphviz rendering (clusters as nodes, links labelled with latency).
  [[nodiscard]] std::string to_dot() const;

 private:
  std::vector<Cluster> clusters_;
  SquareMatrix<plogp::Params> links_;
  SquareMatrix<char> link_set_;  // char, not bool: vector<bool> proxies
  std::vector<std::uint32_t> rank_offset_;  // prefix sums of cluster sizes
};

}  // namespace gridcast::topology
