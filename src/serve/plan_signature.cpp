#include "serve/plan_signature.hpp"

#include <bit>

#include "io/grid_io.hpp"
#include "support/error.hpp"

namespace gridcast::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view text,
                    std::uint64_t h = kFnvOffset) noexcept {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Fixed-width lowercase hex — field widths in `encode()` must not vary
/// with the value or two encodings could alias across field boundaries.
std::string hex16(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) out[i] = "0123456789abcdef"[v & 15];
  return out;
}

}  // namespace

std::string PlanSignature::encode() const {
  std::string out;
  out.reserve(64);
  out += "g=";
  out += hex16(grid_hash);
  out += ";v=";
  out += collective::verb_name(verb);
  out += ";r=";
  out += std::to_string(root);
  out += ";b=";
  out += std::to_string(size_bucket);
  out += ";s=";
  out += hex16(sched_rev);
  return out;
}

std::uint64_t PlanSignature::hash() const { return fnv1a(encode()); }

std::uint64_t grid_fingerprint(const topology::Grid& grid) {
  return fnv1a(io::grid_to_string(grid));
}

std::uint32_t size_bucket_of(Bytes m) {
  if (m == 0) throw InvalidInput("size bucket: message size must be >= 1");
  const auto msb = static_cast<std::uint32_t>(std::bit_width(m) - 1);
  // Sizes 1-3 are whole buckets of their own: an octave below 4 bytes has
  // fewer than four integer sizes, so quarters would be empty or alias.
  if (msb < 2) return static_cast<std::uint32_t>(m - 1);
  const auto quarter =
      static_cast<std::uint32_t>((m - (Bytes{1} << msb)) >> (msb - 2));
  return 4 * msb + quarter;
}

Bytes bucket_floor(std::uint32_t bucket) {
  if (bucket < 3) return Bytes{bucket} + 1;
  const std::uint32_t msb = bucket / 4;
  const std::uint32_t quarter = bucket % 4;
  // Buckets 3-7 (octaves below 4 bytes have no quarters) and anything
  // past bucket 255 (msb of a 64-bit size is at most 63) are unreachable.
  if (msb < 2 || bucket > 255)
    throw InvalidInput("size bucket " + std::to_string(bucket) +
                       " is unreachable (no size maps to it)");
  return (Bytes{1} << msb) + Bytes{quarter} * (Bytes{1} << (msb - 2));
}

std::uint64_t scheduler_set_revision(
    const std::vector<sched::Scheduler>& competitors) {
  std::uint64_t h = kFnvOffset;
  for (const auto& comp : competitors) {
    h = fnv1a(comp.name(), h);
    h = fnv1a("|", h);  // separator: {"a","bc"} must differ from {"ab","c"}
    h = fnv1a(comp.entry().describe_options(), h);
    h = fnv1a(";", h);
  }
  return h;
}

}  // namespace gridcast::serve
