#include "serve/server.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <istream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "exp/race_cli.hpp"
#include "support/error.hpp"

namespace gridcast::serve {

namespace {

/// 17-significant-digit double, matching the BenchReport writer, so
/// protocol replies are byte-stable and round-trip exactly.
std::string fmt17(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::vector<std::string> tokens_of(std::string_view line) {
  std::vector<std::string> out;
  std::istringstream in{std::string(line)};
  for (std::string tok; in >> tok;) out.push_back(std::move(tok));
  return out;
}

ClusterId parse_root(const std::string& token) {
  ClusterId root = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), root);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw InvalidInput("malformed root cluster '" + token + "'");
  return root;
}

}  // namespace

PlanService::PlanService(const topology::Grid& grid, std::string grid_name,
                         ServeOptions opts)
    : grid_(&grid),
      grid_name_(std::move(grid_name)),
      opts_(std::move(opts)),
      comps_(exp::resolve_competitors(
          opts_.sched_names.empty() ? sched::registry().names()
                                    : opts_.sched_names,
          sched::HeuristicOptions{.completion = opts_.completion})),
      backend_(collective::backend_registry().make(
          "plogp", collective::BackendOptions{.grid = &grid})),
      grid_hash_(grid_fingerprint(grid)),
      sched_rev_(scheduler_set_revision(comps_)),
      instances_(grid, opts_.instance_capacity),
      plans_(opts_.plan_capacity,
             AdmissionPolicy{opts_.admission_k, opts_.admission_ring}) {
  GRIDCAST_ASSERT(!comps_.empty(), "no competitors to serve with");
}

PlanSignature PlanService::signature_for(collective::Verb verb, ClusterId root,
                                         Bytes m) const {
  const auto n = static_cast<ClusterId>(grid_->cluster_count());
  if (root >= n)
    throw InvalidInput("root cluster " + std::to_string(root) +
                       " out of range (grid has " + std::to_string(n) +
                       " clusters)");
  // All-to-all schedules every root; its plan is root-independent, so all
  // roots share signature root 0 (the root is still range-checked above —
  // the request named a cluster that must exist).
  const ClusterId sig_root =
      verb == collective::Verb::kAlltoall ? ClusterId{0} : root;
  return PlanSignature{grid_hash_, verb, sig_root, size_bucket_of(m),
                       sched_rev_};
}

PlanPtr PlanService::build_plan(const PlanSignature& sig) {
  if (sig.grid_hash != grid_hash_)
    throw InvalidInput("plan signature encodes a different grid (fingerprint "
                       "mismatch)");
  if (sig.sched_rev != sched_rev_)
    throw InvalidInput("plan signature encodes a different scheduler set "
                       "(revision mismatch)");
  const Bytes m = bucket_floor(sig.size_bucket);

  // The all-to-all executes one schedule per root cluster, so its gate
  // must probe every root (exp::backend_sweep's rule); broadcast and
  // scatter schedule from the signature root alone.
  std::vector<ClusterId> gate_roots;
  if (sig.verb == collective::Verb::kAlltoall) {
    const auto n = static_cast<ClusterId>(grid_->cluster_count());
    for (ClusterId c = 0; c < n; ++c) gate_roots.push_back(c);
  } else {
    gate_roots.push_back(sig.root);
  }

  const sched::Scheduler* best = nullptr;
  Time best_completion = 0.0;
  std::vector<std::string> refused;
  for (const auto& comp : comps_) {
    bool ok = true;
    for (const ClusterId r : gate_roots) {
      const exp::InstancePtr inst = instances_.get(r, m);
      // Probe with the info the verb path builds: the competitor's
      // completion model for broadcasts, eager for scatter/all-to-all
      // (their order derivations construct exactly that).
      const sched::SchedulerRuntimeInfo info(
          *inst, m,
          sig.verb == collective::Verb::kBcast
              ? comp.options().completion
              : sched::CompletionModel::kEager);
      if (!comp.entry().can_schedule(info)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      refused.emplace_back(comp.name());
      continue;
    }
    Time completion = 0.0;
    switch (sig.verb) {
      case collective::Verb::kBcast: {
        const exp::InstancePtr inst = instances_.get(sig.root, m);
        const sched::SchedulerRuntimeInfo info(*inst, m,
                                               comp.options().completion);
        completion = backend_->bcast(comp.entry(), info).completion;
        break;
      }
      case collective::Verb::kScatter:
        completion = backend_->scatter(comp.entry(), sig.root, m).completion;
        break;
      case collective::Verb::kAlltoall:
        completion = backend_->alltoall(comp.entry(), m).completion;
        break;
    }
    // Strict less: ties keep the earlier competitor, so selection is a
    // pure function of the signature and the registration order.
    if (best == nullptr || completion < best_completion) {
      best = &comp;
      best_completion = completion;
    }
  }
  if (best == nullptr) {
    std::string who;
    for (const auto& name : refused) {
      if (!who.empty()) who += ", ";
      who += name;
    }
    throw InvalidInput("no schedulable competitor for signature " +
                       sig.encode() + " (refused: " + who + ")");
  }
  const exp::InstancePtr inst = instances_.get(sig.root, m);
  return std::make_shared<const SchedulePlan>(SchedulePlan{
      sig, std::string(best->name()),
      sched::registry().make(best->name(), best->options()),
      best->run(*inst), best_completion, m});
}

PlanPtr PlanService::plan_for(collective::Verb verb, ClusterId root, Bytes m) {
  return plans_.get(signature_for(verb, root, m),
                    [this](const PlanSignature& sig) {
                      return build_plan(sig);
                    });
}

PlanService::Served PlanService::serve(collective::Verb verb, ClusterId root,
                                       Bytes m) {
  const PlanSignature sig = signature_for(verb, root, m);
  SchedulePlanCache::GetStats gs;
  PlanPtr plan = plans_.get(
      sig, [this](const PlanSignature& s) { return build_plan(s); }, &gs);
  return Served{std::move(plan), gs.hit, gs.waited};
}

LineCommand parse_command(std::string_view line) {
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string_view::npos || line[first] == '#') return {};
  const std::vector<std::string> toks = tokens_of(line);
  if (toks[0] == "quit") return {.kind = LineCommand::Kind::kQuit, .plan = {}};
  if (toks[0] == "stats")
    return {.kind = LineCommand::Kind::kStats, .plan = {}};
  if (toks[0] == "plan") {
    if (toks.size() != 4)
      throw InvalidInput("usage: plan <verb> <root> <size>");
    return {.kind = LineCommand::Kind::kPlan,
            .plan = ReplayRequest{collective::to_verb(toks[1]),
                                  parse_root(toks[2]),
                                  exp::parse_size(toks[3])}};
  }
  throw InvalidInput("unknown command '" + toks[0] +
                     "' (valid: plan, stats, quit)");
}

std::string plan_reply_text(const ReplayRequest& rq, std::uint32_t bucket,
                            const SchedulePlan& plan, bool hit) {
  std::string out = "plan verb=";
  out += collective::verb_name(rq.verb);
  out += " root=" + std::to_string(rq.root);
  out += " size=" + std::to_string(rq.size);
  out += " bucket=" + std::to_string(bucket);
  out += " sched=" + plan.scheduler;
  out += " makespan=" + fmt17(plan.predicted_makespan);
  out += " transfers=" + std::to_string(plan.schedule.transfers.size());
  out += hit ? " hit" : " miss";
  return out;
}

std::string PlanService::stats_line() const {
  std::string out = "stats grid=" + grid_name_;
  out += " schedulers=" + std::to_string(comps_.size());
  out += " plans=" + std::to_string(plans_.entries());
  out += " plan_bytes=" + std::to_string(plans_.bytes_in_use());
  out += " hits=" + std::to_string(plans_.hits());
  out += " misses=" + std::to_string(plans_.misses());
  out += " evictions=" + std::to_string(plans_.evictions());
  out += " collisions=" + std::to_string(plans_.collisions());
  out += " admission_rejects=" + std::to_string(plans_.admission_rejects());
  out += " build_waits=" + std::to_string(plans_.build_waits());
  out += " instances=" + std::to_string(instances_.entries());
  out += " instance_hits=" + std::to_string(instances_.hits());
  out += " instance_misses=" + std::to_string(instances_.misses());
  return out;
}

PlanService::Reply PlanService::handle_line(std::string_view line) {
  try {
    const LineCommand cmd = parse_command(line);
    switch (cmd.kind) {
      case LineCommand::Kind::kNone:
        return {};
      case LineCommand::Kind::kQuit:
        return {.text = "bye", .quit = true};
      case LineCommand::Kind::kStats:
        return {.text = stats_line()};
      case LineCommand::Kind::kPlan: {
        // The latched path: a resident plan answers immediately, the
        // first requester of a missing signature builds it, concurrent
        // requesters of the same signature share that build.  A waited
        // answer reports `miss` — the plan was not resident when asked.
        const Served served = serve(cmd.plan.verb, cmd.plan.root,
                                    cmd.plan.size);
        return {.text = plan_reply_text(cmd.plan,
                                        served.plan->signature.size_bucket,
                                        *served.plan, served.hit),
                .hit = served.hit};
      }
    }
    return {};  // unreachable; switch covers every kind
  } catch (const InvalidInput& e) {
    return {.text = std::string("error: ") + e.what()};
  }
}

// ------------------------------------------------------------------ replay

std::vector<ReplayRequest> parse_request_log(std::istream& in) {
  std::vector<ReplayRequest> out;
  std::size_t lineno = 0;
  for (std::string line; std::getline(in, line);) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      const std::vector<std::string> toks = tokens_of(line);
      if (toks.size() != 4 || toks[0] != "plan")
        throw InvalidInput("expected 'plan <verb> <root> <size>'");
      out.push_back(ReplayRequest{collective::to_verb(toks[1]),
                                  parse_root(toks[2]),
                                  exp::parse_size(toks[3])});
    } catch (const InvalidInput& e) {
      throw InvalidInput("request log line " + std::to_string(lineno) + ": " +
                         e.what());
    }
  }
  return out;
}

namespace {

io::BenchSeries value_cell(std::string name, double value) {
  io::BenchSeries s;
  s.name = std::move(name);
  s.makespan_s = {value};
  return s;
}

/// Nearest-rank percentile over a sorted sample (q in (0, 1]).
double percentile(const std::vector<double>& sorted, double q) {
  const auto k = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[(k == 0 ? 1 : k) - 1];
}

}  // namespace

io::BenchReport replay_requests(PlanService& service,
                                const std::vector<ReplayRequest>& requests,
                                ThreadPool& pool, const ReplayOptions& opts) {
  if (requests.empty()) throw InvalidInput("serve replay: empty request log");
  const std::size_t batch = opts.batch == 0 ? 1 : opts.batch;
  const std::size_t sessions = opts.sessions == 0 ? 1 : opts.sessions;

  using clock = std::chrono::steady_clock;
  const auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration<double>(clock::now() - t0).count();
  };

  // ---- Deterministic pass: the report's exact series are *defined* as
  // serial one-request-at-a-time semantics from a cold cache.  They are
  // computed against a private model cache configured like the live one
  // (same capacity and admission policy), so they are a pure function of
  // (service configuration, log): the worker count, the session count
  // and however warm the live cache already is (e.g. after --warm) can
  // never change a byte of them.
  SchedulePlanCache model(service.plans().capacity(),
                          service.plans().admission());
  // Every distinct signature is built once per replay, in parallel across
  // the pool; the serial accounting below replays inserts (and, under
  // eviction, re-inserts) from here.
  std::map<std::string, PlanPtr> built_by_key;
  std::uint64_t hits = 0;
  std::uint64_t plans_built = 0;
  std::uint64_t build_waits = 0;
  double predicted_sum = 0.0;
  std::vector<double> latency;
  const bool serial_timing = opts.timing && sessions <= 1;
  if (serial_timing) latency.reserve(requests.size());
  const auto t_start = clock::now();

  for (std::size_t lo = 0; lo < requests.size(); lo += batch) {
    const std::size_t hi = std::min(lo + batch, requests.size());
    const std::size_t n = hi - lo;

    // Phase 1 (serial): signatures, plus this batch's build list — each
    // distinct signature not built earlier in the replay.  A repeat of a
    // just-scheduled signature inside the batch is the deterministic
    // `build_waits` model: had the batch run concurrently, that request
    // would have waited on the first requester's build latch.
    std::vector<PlanSignature> sig;
    sig.reserve(n);
    std::vector<std::string> key(n);
    std::vector<std::pair<std::string, PlanSignature>> pending;
    std::set<std::string> scheduled;
    for (std::size_t i = 0; i < n; ++i) {
      const ReplayRequest& rq = requests[lo + i];
      sig.push_back(service.signature_for(rq.verb, rq.root, rq.size));
      key[i] = sig[i].encode();
      if (!built_by_key.contains(key[i])) {
        if (scheduled.insert(key[i]).second)
          pending.emplace_back(key[i], sig[i]);
        else
          ++build_waits;
      }
    }

    // Phase 2 (parallel): build the batch's new signatures across the
    // pool.  Builds are independent and deterministic, so the worker
    // count cannot change any result.
    const auto t_build = clock::now();
    std::vector<PlanPtr> built(pending.size());
    pool.parallel_for(pending.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t j = b; j < e; ++j)
        built[j] = service.build_plan(pending[j].second);
    });
    for (std::size_t j = 0; j < pending.size(); ++j)
      built_by_key[pending[j].first] = std::move(built[j]);
    const double build_s = serial_timing ? seconds_since(t_build) : 0.0;

    // Phase 3 (serial): replay the batch one request at a time against
    // the model cache — find, and on a miss insert the prebuilt plan —
    // so hit/miss, eviction, collision and admission accounting are
    // exactly the serial cold daemon's.  A request's latency includes
    // the batch build it waited on when it missed.
    for (std::size_t i = 0; i < n; ++i) {
      const auto t0 = clock::now();
      PlanPtr p = model.find(sig[i]);
      const bool missed = p == nullptr;
      if (missed) {
        ++plans_built;
        p = model.insert(built_by_key[key[i]]);
      } else {
        ++hits;
      }
      predicted_sum += p->predicted_makespan;
      if (serial_timing)
        latency.push_back(seconds_since(t0) + (missed ? build_s : 0.0));
    }
  }
  double wall_s = seconds_since(t_start);

  // ---- Concurrent pass: with `sessions > 1`, drive the same log
  // through the live request path — contiguous shards, one session
  // thread each, all hammering the latched caches at once.  It
  // contributes nothing to the exact series (defined above) and, when
  // timing is on, everything to the timing tail.
  if (sessions > 1) {
    std::vector<double> session_lat(opts.timing ? requests.size() : 0);
    std::vector<std::string> session_error(sessions);
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    const auto t_sessions = clock::now();
    for (std::size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        try {
          const std::size_t b = requests.size() * s / sessions;
          const std::size_t e = requests.size() * (s + 1) / sessions;
          for (std::size_t i = b; i < e; ++i) {
            const auto t0 = clock::now();
            const ReplayRequest& rq = requests[i];
            std::string line = "plan ";
            line += collective::verb_name(rq.verb);
            line += ' ' + std::to_string(rq.root) + ' ' +
                    std::to_string(rq.size);
            const PlanService::Reply reply = service.handle_line(line);
            if (reply.text.rfind("error: ", 0) == 0)
              throw InvalidInput("serve replay session " + std::to_string(s) +
                                 ": " + reply.text);
            if (opts.timing) session_lat[i] = seconds_since(t0);
          }
        } catch (const std::exception& ex) {
          session_error[s] = ex.what();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& err : session_error)
      if (!err.empty()) throw InvalidInput(err);
    if (opts.timing) {
      latency = std::move(session_lat);
      wall_s = seconds_since(t_sessions);
    }
  }

  const auto total = static_cast<std::uint64_t>(requests.size());

  io::BenchReport r;
  r.bench = "serve";
  r.grid = service.grid_name();
  r.mode = "predicted";
  r.sizes = {total};
  const auto count = static_cast<double>(total);
  r.series.push_back(
      value_cell("hit_rate", static_cast<double>(hits) / count));
  r.series.push_back(value_cell("hits", static_cast<double>(hits)));
  r.series.push_back(
      value_cell("misses", static_cast<double>(total - hits)));
  r.series.push_back(
      value_cell("plans_built", static_cast<double>(plans_built)));
  r.series.push_back(
      value_cell("build_waits", static_cast<double>(build_waits)));
  r.series.push_back(
      value_cell("evictions", static_cast<double>(model.evictions())));
  r.series.push_back(
      value_cell("collisions", static_cast<double>(model.collisions())));
  r.series.push_back(value_cell(
      "admission_rejects", static_cast<double>(model.admission_rejects())));
  r.series.push_back(value_cell("predicted_sum_s", predicted_sum));
  if (opts.timing) {
    // The host-dependent tail: a lower-bounded requests/sec gate and
    // upper-bounded latency gates (wall_factor), exactly the directions
    // compare_bench already applies to throughput and wall_time_s.
    io::BenchSeries rps;
    rps.name = "requests_per_s";
    rps.throughput = {count / wall_s};
    r.series.push_back(std::move(rps));
    std::vector<double> sorted = latency;
    std::sort(sorted.begin(), sorted.end());
    const auto latency_cell = [&](std::string name, double q) {
      io::BenchSeries s;
      s.name = std::move(name);
      // The value channel is deliberately null: latency is a wall cost,
      // gated through wall_time_s; a null cell is skipped by the
      // baseline compare.
      s.makespan_s = {std::numeric_limits<double>::quiet_NaN()};
      s.wall_time_s = percentile(sorted, q);
      return s;
    };
    r.series.push_back(latency_cell("latency_p50_s", 0.50));
    r.series.push_back(latency_cell("latency_p99_s", 0.99));
  }
  return r;
}

std::size_t warm_requests(PlanService& service,
                          const std::vector<ReplayRequest>& requests,
                          ThreadPool& pool, std::size_t batch) {
  if (batch == 0) batch = 1;
  std::size_t total_built = 0;
  for (std::size_t lo = 0; lo < requests.size(); lo += batch) {
    const std::size_t hi = std::min(lo + batch, requests.size());

    // Distinct signatures of this batch not already resident.
    std::vector<PlanSignature> pending;
    std::set<std::string> scheduled;
    for (std::size_t i = lo; i < hi; ++i) {
      const ReplayRequest& rq = requests[i];
      const PlanSignature sig =
          service.signature_for(rq.verb, rq.root, rq.size);
      std::string key = sig.encode();
      if (!scheduled.contains(key) && service.plans().find(sig) == nullptr) {
        scheduled.insert(std::move(key));
        pending.push_back(sig);
      }
    }

    std::vector<PlanPtr> built(pending.size());
    pool.parallel_for(pending.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t j = b; j < e; ++j)
        built[j] = service.build_plan(pending[j]);
    });

    // Serial inserts in request order: a deterministic LRU and eviction
    // history whatever ran where, exactly like replay's.
    for (auto& p : built) (void)service.plans().insert(std::move(p));
    total_built += pending.size();
  }
  return total_built;
}

}  // namespace gridcast::serve
