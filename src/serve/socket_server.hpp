#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

/// The daemon's TCP front-end, in library form so every socket-path
/// behaviour is unit-testable against a loopback client (the tool's
/// `run_tcp` is a thin wrapper).
///
/// Concurrency model — session-per-thread over the thread-safe caches:
///
///  * the accept loop spawns one thread per connection; sessions share
///    the `PlanService` and contend only on its internal locks;
///  * inside a session, *misses answer asynchronously*: the reader
///    thread answers resident plans (and `stats`) immediately, while
///    missing signatures queue to a per-session worker that rides the
///    plan cache's build-once latch — so a cached hit is never stuck
///    behind a plan that is still being built, not even its own
///    session's;
///  * every reply is a single complete line and self-identifies its
///    request (`plan verb=... root=... size=...`), so a hit overtaking
///    an earlier miss's reply is unambiguous; miss replies within a
///    session stay in request order; `quit` drains the pending misses,
///    answers `bye` last, and closes.
namespace gridcast::serve {

struct SocketServerOptions {
  /// Loopback port to bind; 0 picks an ephemeral port (see `port()`).
  int port = 0;
  /// One-line operational notices ("listening on ...", trailing-line
  /// warnings).  Null = silent.
  std::function<void(const std::string&)> log;
  /// Test hook, run first thing on each session's reader thread (e.g.
  /// to capture the thread id for signal-interruption tests).
  std::function<void()> on_session_start;
};

class SocketServer {
 public:
  /// `service` must outlive the server.
  explicit SocketServer(PlanService& service, SocketServerOptions opts = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind 127.0.0.1:`opts.port` and listen (SOMAXCONN backlog — the
  /// whole point is concurrent sessions).  Throws InvalidInput when the
  /// socket cannot be set up; `port()` is valid afterwards.
  void bind_and_listen();

  /// The bound port — `opts.port`, or the kernel's pick when that was 0.
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Accept sessions until `should_stop()` answers true (checked after
  /// every accept wake-up, so a signal that EINTRs the accept is enough
  /// to stop) or `stop()` is called.  `EINTR` and `ECONNABORTED` are
  /// non-fatal accept outcomes: re-check and keep accepting.  On return
  /// every session has been woken, drained and joined.
  void run(const std::function<bool()>& should_stop = {});

  /// Stop accepting and wake every blocked session read; idempotent,
  /// callable from any thread (e.g. a test's client side).  `run()`
  /// owns the joining.
  void stop();

 private:
  struct Session {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void session_loop(Session& session);
  /// Join and close finished sessions (accept-loop thread only).
  void reap(bool everything);

  PlanService& service_;
  SocketServerOptions opts_;
  int listener_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::mutex mu_;  ///< guards sessions_
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace gridcast::serve
