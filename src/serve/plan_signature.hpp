#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collective/verb.hpp"
#include "sched/registry.hpp"
#include "support/types.hpp"
#include "topology/grid.hpp"

/// Stable request identity for the serving layer.
///
/// A schedule-request is fully determined by five inputs: the grid, the
/// collective verb, the root cluster, the message size, and the scheduler
/// set competing for the plan.  `PlanSignature` encodes them into a stable
/// string (and a 64-bit hash of it) so repeat requests hit the
/// `SchedulePlanCache` instead of re-running selection — nvfuser's "input
/// id encoding for kernel cache lookup", applied to collective schedules.
///
/// Two deliberate quantisations make the key *useful*, not just correct:
///
///  * The grid collapses to a fingerprint hash of its full text form
///    (`io::grid_to_string`), so any pLogP parameter change — not just a
///    shape change — rolls the key.
///  * The message size collapses to a quarter-octave bucket: sizes within
///    ~19% of each other share a plan (send orders are stable across such
///    spans; the pLogP gap functions are piecewise-linear in size).  The
///    plan is built for the bucket's floor size, so the cached makespan is
///    the floor's prediction, reproducible from the bucket alone.
///
/// The scheduler-set revision folds every competitor's name and option
/// description, so registering a new heuristic (or re-tuning one)
/// invalidates all plans it could have won.
namespace gridcast::serve {

struct PlanSignature {
  std::uint64_t grid_hash = 0;  ///< `grid_fingerprint` of the grid
  collective::Verb verb = collective::Verb::kBcast;
  ClusterId root = 0;           ///< 0 for all-to-all (root-symmetric)
  std::uint32_t size_bucket = 0;  ///< `size_bucket_of(message size)`
  std::uint64_t sched_rev = 0;  ///< `scheduler_set_revision` of the set

  [[nodiscard]] bool operator==(const PlanSignature&) const = default;

  /// Stable text encoding, e.g. "g=00a1…;v=bcast;r=0;b=80;s=3f…".  Two
  /// signatures encode equal iff they compare equal; the cache's
  /// collision check relies on exactly that.
  [[nodiscard]] std::string encode() const;

  /// FNV-1a over `encode()` — the cache key.  Colliding hashes with
  /// unequal signatures are detected (and counted) by the cache.
  [[nodiscard]] std::uint64_t hash() const;
};

/// 64-bit FNV-1a of the grid's full text serialisation.  Any change to
/// shape, sizes, or pLogP parameters changes the fingerprint.
[[nodiscard]] std::uint64_t grid_fingerprint(const topology::Grid& grid);

/// Quarter-octave size bucket: sizes 1–3 get buckets 0–2; from 4 bytes up,
/// each power-of-two octave splits into four equal-width buckets
/// (bucket = 4·msb + quarter, so buckets are monotone in size).  Throws
/// InvalidInput for size 0 — no verb moves zero bytes.
[[nodiscard]] std::uint32_t size_bucket_of(Bytes m);

/// Smallest size mapping to `bucket` — the size plans are built for.
/// Inverse of `size_bucket_of` on bucket floors:
/// `size_bucket_of(bucket_floor(b)) == b` for every reachable bucket.
/// Throws InvalidInput for unreachable bucket ids.
[[nodiscard]] Bytes bucket_floor(std::uint32_t bucket);

/// Order-sensitive FNV-1a fold of every competitor's registry name and
/// option description.  Adding, removing, reordering, or re-tuning a
/// competitor changes the revision and thereby every signature.
[[nodiscard]] std::uint64_t scheduler_set_revision(
    const std::vector<sched::Scheduler>& competitors);

}  // namespace gridcast::serve
