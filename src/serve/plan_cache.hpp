#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/scheduler_entry.hpp"
#include "serve/plan_signature.hpp"

/// Memoised schedule plans, bounded as a byte-accounted LRU.
///
/// A *plan* is everything heuristic selection produces for one signature:
/// the winning entry, the built schedule, and its predicted makespan.
/// Selection costs one backend prediction per competitor plus a schedule
/// build — the serving layer's whole point is to pay that once per
/// signature and answer repeats from here.  The cache mirrors
/// `exp::InstanceCache` (same locking, LRU, byte accounting, relaxed
/// stats, shared_ptr handout, `kUnbounded`/pass-through capacity
/// semantics) with three additions:
///
///  * entries are keyed by the signature's 64-bit hash, and a hash hit
///    whose stored signature differs is a detected *collision* — counted,
///    treated as a miss, never served, so a colliding pair can degrade
///    hit rate but never correctness;
///  * `get` carries a per-signature **build-once latch**: the first
///    requester of a missing signature builds, concurrent requesters for
///    the same signature wait on the latch (counted in `build_waits`),
///    and requesters for *other* signatures proceed untouched — a cached
///    hit never queues behind a plan that is still being built;
///  * an eviction-aware **admission policy**: under byte pressure a
///    signature must have been sighted `required_sightings` times in a
///    probationary ring before its plan may evict a resident one, so
///    one-shot requests stop thrashing the LRU.
namespace gridcast::serve {

/// What one request's selection produced.  `schedule` is the WAN send
/// schedule the winner built for `planned_size` (the signature bucket's
/// floor) rooted at `signature.root`; `predicted_makespan` is the plogp
/// completion of the winning series for the verb.
struct SchedulePlan {
  PlanSignature signature;
  std::string scheduler;           ///< winning registry name
  sched::SchedulerEntryPtr entry;  ///< the winning entry itself
  sched::Schedule schedule;
  Time predicted_makespan = 0.0;
  Bytes planned_size = 0;
};

/// Shared ownership handle; holders survive eviction.
using PlanPtr = std::shared_ptr<const SchedulePlan>;

/// Eviction-aware admission.  With `required_sightings == 1` (the
/// default) every insert is admitted — exactly the plain LRU.  With k >
/// 1, an insert that would have to *evict* to fit is admitted only when
/// its signature has been sighted k times in the probationary ring of
/// the last `ring_size` lookups that missed; rejected inserts
/// are counted (`admission_rejects`) and handed back to the caller
/// uncached, like pass-through mode.  Inserts that fit without evicting
/// are always admitted — probation is a response to byte pressure, not
/// a general gate.
struct AdmissionPolicy {
  std::size_t required_sightings = 1;
  std::size_t ring_size = 256;
};

class SchedulePlanCache {
 public:
  /// Sentinel capacity: never evict (the default).
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  /// `capacity_bytes == kUnbounded` means no bound; `0` means
  /// pass-through (nothing is ever retained; every `find` misses).
  /// Throws InvalidInput when the admission policy is unsatisfiable
  /// (k > 1 with a ring smaller than k sightings can never admit).
  explicit SchedulePlanCache(std::size_t capacity_bytes = kUnbounded,
                             AdmissionPolicy admission = {});

  SchedulePlanCache(const SchedulePlanCache&) = delete;
  SchedulePlanCache& operator=(const SchedulePlanCache&) = delete;

  /// The resident plan for `sig`, promoted to most-recently-used, or null
  /// on a miss.  Counts exactly one hit or miss; a hash collision
  /// (resident entry under `sig.hash()` with a different signature) also
  /// counts a collision and misses.  A miss records a probationary
  /// sighting for the admission policy.  Thread-safe.
  [[nodiscard]] PlanPtr find(const PlanSignature& sig);

  /// Non-accounting residency probe for front-ends that split the hit
  /// path (answer now) from the miss path (answer asynchronously): a
  /// resident equal-signature plan counts a hit and is promoted, exactly
  /// like `find`; anything else returns null *without* counting a miss,
  /// a collision, or a sighting — the follow-up `get` owns the miss
  /// accounting, so the request still lands in exactly one counter.
  /// Thread-safe.
  [[nodiscard]] PlanPtr peek(const PlanSignature& sig);

  /// Insert a built plan.  First insertion wins: if an equal-signature
  /// plan is already resident (a lost build race), the resident one is
  /// promoted and returned so every caller holds the same object.  A
  /// *colliding* resident (same hash, different signature) is replaced —
  /// and counted — because the map can hold only one plan per hash.
  /// Under byte pressure the admission policy may reject the insert
  /// (counted, argument handed back uncached).  Returns the plan now
  /// resident (the argument itself in pass-through or rejected cases).
  /// Counts neither hit nor miss.  Thread-safe.
  PlanPtr insert(PlanPtr plan);

  /// Per-request outcome of `get`, for front-ends that report it.
  struct GetStats {
    bool hit = false;     ///< answered from residency
    bool waited = false;  ///< answered by waiting on another's build
  };

  /// `find`, building and inserting on a miss — with a per-signature
  /// build-once latch: the first requester of a missing signature runs
  /// `build` outside the lock, concurrent requesters for the *same*
  /// signature wait on the latch and share the result (counted in
  /// `build_waits`), and requesters for other signatures proceed in
  /// parallel.  A build failure propagates to every waiter and clears
  /// the latch so the next requester retries.  `build` must not re-enter
  /// the cache for the same signature (it would wait on its own latch).
  [[nodiscard]] PlanPtr get(
      const PlanSignature& sig,
      const std::function<PlanPtr(const PlanSignature&)>& build,
      GetStats* stats = nullptr);

  /// Change the byte bound (`kUnbounded` = no bound, 0 = pass-through),
  /// evicting immediately if the current account exceeds it.
  void set_capacity(std::size_t capacity_bytes);
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] AdmissionPolicy admission() const;

  /// Bytes the resident plans account for (`plan_bytes`).
  [[nodiscard]] std::size_t bytes_in_use() const;

  /// Distinct signatures currently resident.
  [[nodiscard]] std::size_t entries() const;

  // Monitoring counters — relaxed atomics exactly like `InstanceCache`:
  // each value is exact, a cross-counter snapshot may straddle an
  // in-flight lookup, and pollers never contend with the cache lock.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Hash collisions detected (lookup or insert meeting a resident entry
  /// with the same 64-bit hash but a different signature).
  [[nodiscard]] std::uint64_t collisions() const noexcept {
    return collisions_.load(std::memory_order_relaxed);
  }
  /// Inserts rejected by the admission policy (byte pressure, too few
  /// probationary sightings).
  [[nodiscard]] std::uint64_t admission_rejects() const noexcept {
    return admission_rejects_.load(std::memory_order_relaxed);
  }
  /// `get` calls answered by waiting on another requester's in-flight
  /// build instead of building or hitting.
  [[nodiscard]] std::uint64_t build_waits() const noexcept {
    return build_waits_.load(std::memory_order_relaxed);
  }

  /// The accounting rule: what one cached plan charges against the
  /// capacity (transfer list, finish vector, name, bookkeeping).
  [[nodiscard]] static std::size_t plan_bytes(
      const SchedulePlan& plan) noexcept;

 private:
  struct Entry {
    PlanPtr plan;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru;  ///< front = most recent
  };

  /// One in-flight build: the first requester owns the promise, every
  /// concurrent equal-signature requester waits on the shared future.
  struct Inflight {
    explicit Inflight(PlanSignature s)
        : sig(std::move(s)), future(promise.get_future().share()) {}
    PlanSignature sig;
    std::promise<PlanPtr> promise;
    std::shared_future<PlanPtr> future;
  };

  /// Drop least-recently-used entries until the account fits.  Caller
  /// holds `mu_`.
  void evict_to_capacity();

  /// Record a probationary sighting of `key` / count its sightings in
  /// the ring.  Callers hold `mu_`; both are no-ops / saturated when the
  /// policy admits everything.
  void record_sighting(std::uint64_t key);
  [[nodiscard]] std::size_t sightings_of(std::uint64_t key) const;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> cache_;  ///< keyed by signature hash
  std::list<std::uint64_t> lru_;
  std::map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
  std::size_t capacity_;
  AdmissionPolicy admission_;
  std::vector<std::uint64_t> ring_;  ///< probationary sightings, circular
  std::size_t ring_pos_ = 0;
  std::size_t bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> collisions_{0};
  std::atomic<std::uint64_t> admission_rejects_{0};
  std::atomic<std::uint64_t> build_waits_{0};
};

}  // namespace gridcast::serve
