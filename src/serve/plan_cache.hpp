#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "sched/schedule.hpp"
#include "sched/scheduler_entry.hpp"
#include "serve/plan_signature.hpp"

/// Memoised schedule plans, bounded as a byte-accounted LRU.
///
/// A *plan* is everything heuristic selection produces for one signature:
/// the winning entry, the built schedule, and its predicted makespan.
/// Selection costs one backend prediction per competitor plus a schedule
/// build — the serving layer's whole point is to pay that once per
/// signature and answer repeats from here.  The cache mirrors
/// `exp::InstanceCache` (same locking, LRU, byte accounting, relaxed
/// stats, shared_ptr handout, `kUnbounded`/pass-through capacity
/// semantics) with one addition: entries are keyed by the signature's
/// 64-bit hash, and a hash hit whose stored signature differs is a
/// detected *collision* — counted, treated as a miss, never served, so a
/// colliding pair can degrade hit rate but never correctness.
namespace gridcast::serve {

/// What one request's selection produced.  `schedule` is the WAN send
/// schedule the winner built for `planned_size` (the signature bucket's
/// floor) rooted at `signature.root`; `predicted_makespan` is the plogp
/// completion of the winning series for the verb.
struct SchedulePlan {
  PlanSignature signature;
  std::string scheduler;           ///< winning registry name
  sched::SchedulerEntryPtr entry;  ///< the winning entry itself
  sched::Schedule schedule;
  Time predicted_makespan = 0.0;
  Bytes planned_size = 0;
};

/// Shared ownership handle; holders survive eviction.
using PlanPtr = std::shared_ptr<const SchedulePlan>;

class SchedulePlanCache {
 public:
  /// Sentinel capacity: never evict (the default).
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  /// `capacity_bytes == kUnbounded` means no bound; `0` means
  /// pass-through (nothing is ever retained; every `find` misses).
  explicit SchedulePlanCache(std::size_t capacity_bytes = kUnbounded)
      : capacity_(capacity_bytes) {}

  SchedulePlanCache(const SchedulePlanCache&) = delete;
  SchedulePlanCache& operator=(const SchedulePlanCache&) = delete;

  /// The resident plan for `sig`, promoted to most-recently-used, or null
  /// on a miss.  Counts exactly one hit or miss; a hash collision
  /// (resident entry under `sig.hash()` with a different signature) also
  /// counts a collision and misses.  Thread-safe.
  [[nodiscard]] PlanPtr find(const PlanSignature& sig);

  /// Insert a built plan.  First insertion wins: if an equal-signature
  /// plan is already resident (a lost build race), the resident one is
  /// promoted and returned so every caller holds the same object.  A
  /// *colliding* resident (same hash, different signature) is replaced —
  /// and counted — because the map can hold only one plan per hash.
  /// Returns the plan now resident (the argument itself in pass-through
  /// mode).  Counts neither hit nor miss.  Thread-safe.
  PlanPtr insert(PlanPtr plan);

  /// `find`, building and inserting on a miss.  `build` runs outside the
  /// lock (concurrent misses on distinct signatures never serialise;
  /// equal-signature races resolve first-insert-wins).
  [[nodiscard]] PlanPtr get(
      const PlanSignature& sig,
      const std::function<PlanPtr(const PlanSignature&)>& build);

  /// Change the byte bound (`kUnbounded` = no bound, 0 = pass-through),
  /// evicting immediately if the current account exceeds it.
  void set_capacity(std::size_t capacity_bytes);
  [[nodiscard]] std::size_t capacity() const;

  /// Bytes the resident plans account for (`plan_bytes`).
  [[nodiscard]] std::size_t bytes_in_use() const;

  /// Distinct signatures currently resident.
  [[nodiscard]] std::size_t entries() const;

  // Monitoring counters — relaxed atomics exactly like `InstanceCache`:
  // each value is exact, a cross-counter snapshot may straddle an
  // in-flight lookup, and pollers never contend with the cache lock.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Hash collisions detected (lookup or insert meeting a resident entry
  /// with the same 64-bit hash but a different signature).
  [[nodiscard]] std::uint64_t collisions() const noexcept {
    return collisions_.load(std::memory_order_relaxed);
  }

  /// The accounting rule: what one cached plan charges against the
  /// capacity (transfer list, finish vector, name, bookkeeping).
  [[nodiscard]] static std::size_t plan_bytes(
      const SchedulePlan& plan) noexcept;

 private:
  struct Entry {
    PlanPtr plan;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru;  ///< front = most recent
  };

  /// Drop least-recently-used entries until the account fits.  Caller
  /// holds `mu_`.
  void evict_to_capacity();

  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> cache_;  ///< keyed by signature hash
  std::list<std::uint64_t> lru_;
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> collisions_{0};
};

}  // namespace gridcast::serve
