#include "serve/socket_server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <utility>

#include "support/error.hpp"

namespace gridcast::serve {

namespace {

/// Write the whole buffer or declare the session dead.  `EINTR` retries
/// — a signal must never truncate a protocol reply mid-line — and any
/// other failure is final: the caller closes the session rather than
/// desynchronise it by skipping bytes.  MSG_NOSIGNAL turns a
/// closed-peer write into EPIPE instead of a process-killing SIGPIPE.
bool write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t w =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(PlanService& service, SocketServerOptions opts)
    : service_(service), opts_(std::move(opts)) {}

SocketServer::~SocketServer() {
  stop();
  reap(true);
  if (listener_ >= 0) ::close(listener_);
}

void SocketServer::bind_and_listen() {
  GRIDCAST_ASSERT(listener_ < 0, "bind_and_listen() called twice");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw InvalidInput("socket(): " + std::string(std::strerror(errno)));
  const auto fail = [&](const std::string& what) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw InvalidInput(what + ": " + why);
  };
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0)
    fail("setsockopt(SO_REUSEADDR)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0)
    fail("cannot bind 127.0.0.1:" + std::to_string(opts_.port));
  if (::listen(fd, SOMAXCONN) < 0)
    fail("cannot listen on 127.0.0.1:" + std::to_string(opts_.port));
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail("getsockname()");
  port_ = ntohs(addr.sin_port);
  listener_ = fd;
  if (opts_.log)
    opts_.log("listening on 127.0.0.1:" + std::to_string(port_));
}

void SocketServer::run(const std::function<bool()>& should_stop) {
  GRIDCAST_ASSERT(listener_ >= 0, "run() before bind_and_listen()");
  const auto stopping = [&] {
    return stop_.load(std::memory_order_relaxed) ||
           (should_stop && should_stop());
  };
  while (!stopping()) {
    const int conn = ::accept(listener_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping()) break;
      // EINTR: a signal woke the accept — loop re-checks the stop
      // predicate.  ECONNABORTED: the peer gave up while queued in the
      // backlog — their loss, not the daemon's; keep accepting.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      const std::string why = std::strerror(errno);
      throw InvalidInput("accept(): " + why);
    }
    reap(false);
    auto session = std::make_unique<Session>();
    session->fd = conn;
    Session* raw = session.get();
    {
      std::lock_guard lk(mu_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] {
      session_loop(*raw);
      raw->done.store(true, std::memory_order_release);
    });
  }
  stop();  // wake every blocked session read before joining them
  reap(true);
}

void SocketServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  // shutdown(), not close(): it wakes a thread blocked in accept()/
  // recv() without freeing the descriptor number, so no other thread
  // can race a reused fd.  close happens after the join, in reap().
  if (listener_ >= 0) ::shutdown(listener_, SHUT_RDWR);
  std::lock_guard lk(mu_);
  for (const auto& s : sessions_)
    if (s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
}

void SocketServer::reap(bool everything) {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard lk(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (everything || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& s : finished) {
    if (s->thread.joinable()) s->thread.join();
    if (s->fd >= 0) ::close(s->fd);
  }
}

void SocketServer::session_loop(Session& session) {
  if (opts_.on_session_start) opts_.on_session_start();
  const int fd = session.fd;

  // The async-miss machinery: one FIFO worker per session.  The reader
  // thread answers hits and stats inline; misses queue here, so a
  // resident plan's reply never waits on a build — the worker rides the
  // plan cache's build-once latch for the actual work.
  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<ReplayRequest> queue;
  std::size_t pending = 0;  // queued + in-flight, for the quit drain
  bool closing = false;
  std::atomic<bool> dead{false};  // a write failed: session is over
  std::mutex write_mu;

  const auto send_reply = [&](const std::string& text) {
    std::lock_guard lk(write_mu);
    if (dead.load(std::memory_order_relaxed)) return;
    if (!write_all(fd, text + "\n"))
      dead.store(true, std::memory_order_relaxed);
  };

  std::thread worker([&] {
    for (;;) {
      ReplayRequest rq;
      {
        std::unique_lock lk(qmu);
        qcv.wait(lk, [&] { return closing || !queue.empty(); });
        if (queue.empty()) return;  // closing, and fully drained
        rq = queue.front();
        queue.pop_front();
      }
      std::string text;
      try {
        const PlanService::Served served =
            service_.serve(rq.verb, rq.root, rq.size);
        text = plan_reply_text(rq, served.plan->signature.size_bucket,
                               *served.plan, served.hit);
      } catch (const InvalidInput& e) {
        text = std::string("error: ") + e.what();
      }
      send_reply(text);
      {
        std::lock_guard lk(qmu);
        --pending;
      }
      qcv.notify_all();
    }
  });

  // One protocol line.  Returns true when the session should close.
  const auto dispatch = [&](const std::string& line) -> bool {
    LineCommand cmd;
    try {
      cmd = parse_command(line);
    } catch (const InvalidInput& e) {
      send_reply(std::string("error: ") + e.what());
      return false;
    }
    switch (cmd.kind) {
      case LineCommand::Kind::kNone:
        return false;
      case LineCommand::Kind::kStats:
        send_reply(service_.stats_line());
        return false;
      case LineCommand::Kind::kQuit: {
        // Drain the pending misses so `bye` is the session's last word.
        std::unique_lock lk(qmu);
        qcv.wait(lk, [&] { return pending == 0; });
        lk.unlock();
        send_reply("bye");
        return true;
      }
      case LineCommand::Kind::kPlan: {
        PlanSignature sig;
        try {
          sig = service_.signature_for(cmd.plan.verb, cmd.plan.root,
                                       cmd.plan.size);
        } catch (const InvalidInput& e) {
          send_reply(std::string("error: ") + e.what());
          return false;
        }
        if (const PlanPtr plan = service_.plans().peek(sig)) {
          send_reply(plan_reply_text(cmd.plan, plan->signature.size_bucket,
                                     *plan, true));
        } else {
          std::lock_guard lk(qmu);
          queue.push_back(cmd.plan);
          ++pending;
          qcv.notify_all();
        }
        return false;
      }
    }
    return false;  // unreachable; switch covers every kind
  };

  std::string buf;
  char chunk[4096];
  bool quit = false;
  while (!quit && !dead.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      // The EINTR bugfix: a signal is not a disconnect.  Retry unless
      // the server is stopping (stop() shut this fd down).
      if (errno == EINTR && !stop_.load(std::memory_order_relaxed)) continue;
      break;
    }
    if (n == 0) {
      // Disconnect (or write-side shutdown).  A trailing unterminated
      // line is still a request — process it; the reply goes out in
      // case only the peer's write side is closed.
      if (!buf.empty()) {
        if (opts_.log) opts_.log("trailing unterminated line at disconnect");
        (void)dispatch(buf);
        buf.clear();
      }
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    for (std::size_t nl = buf.find('\n'); nl != std::string::npos;
         nl = buf.find('\n')) {
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if ((quit = dispatch(line))) break;
    }
  }

  {
    std::lock_guard lk(qmu);
    closing = true;
  }
  qcv.notify_all();
  worker.join();
  // FIN the peer now — the descriptor itself is closed later by reap()
  // on the accept thread, so stop() can never shut down a reused fd.
  ::shutdown(fd, SHUT_RDWR);
}

}  // namespace gridcast::serve
