#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "collective/backend.hpp"
#include "exp/instance_cache.hpp"
#include "io/bench_json.hpp"
#include "sched/registry.hpp"
#include "serve/plan_cache.hpp"
#include "support/thread_pool.hpp"
#include "topology/grid.hpp"

/// The serving layer behind `gridcast_serve`.
///
/// `PlanService` is the whole request path in library form: it owns the
/// signature inputs (grid fingerprint, resolved competitor set and its
/// revision), the two caches (derived instances, finished plans), and the
/// analytic plogp backend that scores selection — so the tool is a thin
/// `main` and every piece is unit-testable, like `exp::RaceCli`.
///
/// Requests speak a one-line-per-request protocol (`handle_line`), and a
/// whole request log can be *replayed* into a `"bench": "serve"`
/// BenchReport (`replay_requests`): misses batch across the thread pool
/// while the accounting stays equal to serial one-request-at-a-time
/// semantics, so the default report is byte-identical for every thread
/// count — only the opt-in timing series depend on the host.
namespace gridcast::serve {

/// Service configuration (the tool's flags, minus I/O concerns).
struct ServeOptions {
  /// Scheduler-registry names competing for every plan; empty = every
  /// registered scheduler in registration order.
  std::vector<std::string> sched_names;
  sched::CompletionModel completion = sched::CompletionModel::kEager;
  /// Plan-cache byte bound (`SchedulePlanCache` semantics).
  std::size_t plan_capacity = SchedulePlanCache::kUnbounded;
  /// Instance-cache byte bound (`exp::InstanceCache` semantics).
  std::size_t instance_capacity = exp::InstanceCache::kUnbounded;
  /// Plan-cache admission under byte pressure: a signature must have
  /// missed `admission_k` times within the probationary ring before its
  /// plan may evict a resident one (1 = admit everything).
  std::size_t admission_k = 1;
  /// Probationary ring length (recent misses remembered for admission).
  std::size_t admission_ring = 256;
};

class PlanService {
 public:
  /// The service only references the grid; it must outlive the service.
  /// `grid_name` is recorded in replay reports ("grid5000" or a path).
  /// Throws InvalidInput for unknown scheduler names or an empty registry.
  PlanService(const topology::Grid& grid, std::string grid_name,
              ServeOptions opts = {});
  PlanService(topology::Grid&&, std::string, ServeOptions = {}) = delete;

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// The signature a request encodes to.  All-to-all is root-symmetric
  /// (one plan serves every root), so its signatures canonicalise
  /// `root` to 0.  Throws InvalidInput for an out-of-range root or a
  /// zero size.
  [[nodiscard]] PlanSignature signature_for(collective::Verb verb,
                                            ClusterId root, Bytes m) const;

  /// Run full selection for `sig` — no cache involved: gate every
  /// competitor with `can_schedule` (every root for all-to-all), score
  /// the survivors through the plogp backend, build the winner's
  /// schedule for the bucket-floor size.  Ties keep the first competitor
  /// in registration order, so selection is deterministic.  Thread-safe;
  /// concurrent builds of distinct signatures run fully parallel.
  /// Throws InvalidInput when `sig` is not this service's (wrong grid
  /// fingerprint or scheduler revision) or every competitor refuses.
  [[nodiscard]] PlanPtr build_plan(const PlanSignature& sig);

  /// The cached request path: `signature_for` + plan-cache lookup,
  /// building on a miss.
  [[nodiscard]] PlanPtr plan_for(collective::Verb verb, ClusterId root,
                                 Bytes m);

  /// One served request, with how it was answered: from residency
  /// (`hit`), by waiting on another requester's in-flight build of the
  /// same signature (`waited`), or by building (neither).
  struct Served {
    PlanPtr plan;
    bool hit = false;
    bool waited = false;
  };

  /// The full request path behind every front-end: `signature_for`, then
  /// the latched cache `get` — hits answer immediately, the first
  /// requester of a missing signature builds, concurrent requesters of
  /// the same signature share that build, and requests for other
  /// signatures never queue behind it.  Thread-safe.
  [[nodiscard]] Served serve(collective::Verb verb, ClusterId root, Bytes m);

  /// One protocol exchange.  Commands:
  ///
  ///     plan <verb> <root> <size>   answer a schedule-request
  ///     stats                       cache and service counters
  ///     quit                        close the session
  ///
  /// Blank lines and `#` comments produce no reply (`text` empty).
  /// Malformed input replies `error: <one-line reason>` — the session
  /// survives.  Replies are single-line, deterministic (doubles at 17
  /// significant digits), and documented in the README's serving
  /// section.
  struct Reply {
    std::string text;  ///< empty = nothing to send
    bool hit = false;  ///< plan commands: answered from cache
    bool quit = false; ///< session should close
  };
  [[nodiscard]] Reply handle_line(std::string_view line);

  /// The one-line `stats` reply (also what `handle_line("stats")`
  /// answers): cache and service counters, space-separated `key=value`.
  [[nodiscard]] std::string stats_line() const;

  [[nodiscard]] const topology::Grid& grid() const noexcept { return *grid_; }
  [[nodiscard]] const std::string& grid_name() const noexcept {
    return grid_name_;
  }
  [[nodiscard]] const std::vector<sched::Scheduler>& competitors()
      const noexcept {
    return comps_;
  }
  [[nodiscard]] std::uint64_t grid_hash() const noexcept { return grid_hash_; }
  [[nodiscard]] std::uint64_t sched_rev() const noexcept { return sched_rev_; }
  [[nodiscard]] SchedulePlanCache& plans() noexcept { return plans_; }
  [[nodiscard]] const SchedulePlanCache& plans() const noexcept {
    return plans_;
  }
  [[nodiscard]] exp::InstanceCache& instances() noexcept { return instances_; }
  [[nodiscard]] const exp::InstanceCache& instances() const noexcept {
    return instances_;
  }

 private:
  const topology::Grid* grid_;
  std::string grid_name_;
  ServeOptions opts_;
  std::vector<sched::Scheduler> comps_;
  collective::BackendPtr backend_;  ///< plogp, bound to *grid_
  std::uint64_t grid_hash_;
  std::uint64_t sched_rev_;
  exp::InstanceCache instances_;
  SchedulePlanCache plans_;
};

// ------------------------------------------------------------------ replay

/// One parsed request-log line.
struct ReplayRequest {
  collective::Verb verb = collective::Verb::kBcast;
  ClusterId root = 0;
  Bytes size = 0;
};

/// One classified protocol line, for front-ends (the TCP session loop)
/// that route the plan path differently from stats/quit: `kNone` is a
/// blank or comment line (no reply), `kPlan` carries the parsed request.
/// Malformed lines throw InvalidInput with the same one-line reasons
/// `handle_line` turns into `error:` replies.
struct LineCommand {
  enum class Kind { kNone, kPlan, kStats, kQuit };
  Kind kind = Kind::kNone;
  ReplayRequest plan;  ///< valid when kind == kPlan
};
[[nodiscard]] LineCommand parse_command(std::string_view line);

/// The deterministic single-line `plan` reply for a request answered by
/// `plan`: shared by the interactive path and the TCP session loop so
/// every front-end answers byte-identically.
[[nodiscard]] std::string plan_reply_text(const ReplayRequest& rq,
                                          std::uint32_t bucket,
                                          const SchedulePlan& plan, bool hit);

/// Parse a request log: one `plan <verb> <root> <size>` per line, blank
/// lines and `#` comments skipped.  Strict — a malformed line throws
/// InvalidInput with its line number (replay logs are checked-in CI
/// artifacts, not interactive sessions).
[[nodiscard]] std::vector<ReplayRequest> parse_request_log(std::istream& in);

struct ReplayOptions {
  /// Requests per batch: each batch's distinct missing plans build
  /// across the pool before the batch is accounted serially.  The batch
  /// is also the deterministic `build_waits` window (see below).
  std::size_t batch = 64;
  /// Add the host-dependent series (requests_per_s, latency_p50_s,
  /// latency_p99_s) to the report.  Off by default so the report is
  /// byte-identical across machines, runs and thread counts; the CI
  /// throughput gate opts in.
  bool timing = false;
  /// Concurrent replay sessions: with `sessions > 1` the log is split
  /// contiguously and each shard is driven through the live request path
  /// (`handle_line`) by its own thread, hammering the latched caches
  /// concurrently.  The deterministic series never depend on it — they
  /// are computed by the serial accounting model — so the report stays
  /// byte-identical for every session count; with `timing`, the timing
  /// tail measures the concurrent run.
  std::size_t sessions = 1;
};

/// Replay `requests` through the service and report the outcome as a
/// `"bench": "serve"` BenchReport: the axis is the request count, and
/// the deterministic series (hit_rate, hits, misses, plans_built,
/// build_waits, evictions, collisions, admission_rejects,
/// predicted_sum_s) are exact.
///
/// Accounting is defined as *serial one-request-at-a-time semantics from
/// a cold cache*, computed against a private model cache configured like
/// the service's (same capacity and admission policy) — so the report is
/// a pure function of (service configuration, log): byte-identical for
/// every worker count, every session count, and regardless of how warm
/// the live cache already is.  `build_waits` is the one batch-scoped
/// series: it counts the requests that would have waited on an earlier
/// same-batch requester's in-flight build had the batch run
/// concurrently (0 at `batch == 1`); every other series is additionally
/// invariant under `--batch`.  Each distinct signature is built once per
/// replay (in parallel across `pool`); `plans_built` reports the builds
/// the serial cold daemon would have run, which under eviction can
/// exceed the builds actually executed.  Throws InvalidInput on an
/// empty log.
[[nodiscard]] io::BenchReport replay_requests(
    PlanService& service, const std::vector<ReplayRequest>& requests,
    ThreadPool& pool, const ReplayOptions& opts = {});

/// Warm the service's *live* plan cache from a request log: per batch,
/// the distinct signatures not already resident build across `pool` and
/// insert in request order — the same batched build path replay uses,
/// against the real cache.  Warming traffic is ordinary traffic: it
/// shows up in the `stats` counters and is subject to the admission
/// policy under byte pressure.  Returns the number of plans built.
std::size_t warm_requests(PlanService& service,
                          const std::vector<ReplayRequest>& requests,
                          ThreadPool& pool, std::size_t batch = 64);

}  // namespace gridcast::serve
