#include "serve/plan_cache.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace gridcast::serve {

SchedulePlanCache::SchedulePlanCache(std::size_t capacity_bytes,
                                     AdmissionPolicy admission)
    : capacity_(capacity_bytes), admission_(admission) {
  if (admission_.required_sightings > 1) {
    if (admission_.ring_size < admission_.required_sightings)
      throw InvalidInput(
          "plan-cache admission: ring of " +
          std::to_string(admission_.ring_size) + " can never hold " +
          std::to_string(admission_.required_sightings) + " sightings");
    ring_.assign(admission_.ring_size, 0);
  }
}

std::size_t SchedulePlanCache::plan_bytes(const SchedulePlan& plan) noexcept {
  // The dominant payloads are the transfer list and the per-cluster finish
  // vector; the entry object behind `entry` is shared with the registry
  // and not charged.  Allocator slack is not modelled — the bound is a
  // working-set knob, like InstanceCache's.
  return sizeof(SchedulePlan) + plan.scheduler.size() +
         plan.schedule.transfers.size() * sizeof(sched::Transfer) +
         plan.schedule.cluster_finish.size() * sizeof(Time) + sizeof(Entry) +
         sizeof(std::uint64_t);
}

void SchedulePlanCache::evict_to_capacity() {
  if (capacity_ == kUnbounded) return;
  while (bytes_ > capacity_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = cache_.find(victim);
    bytes_ -= it->second.bytes;
    cache_.erase(it);  // holders' shared_ptrs keep the plan alive
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SchedulePlanCache::record_sighting(std::uint64_t key) {
  if (ring_.empty()) return;  // policy admits everything; no bookkeeping
  ring_[ring_pos_] = key;
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
}

std::size_t SchedulePlanCache::sightings_of(std::uint64_t key) const {
  return static_cast<std::size_t>(std::count(ring_.begin(), ring_.end(), key));
}

PlanPtr SchedulePlanCache::find(const PlanSignature& sig) {
  const std::uint64_t key = sig.hash();
  std::lock_guard lk(mu_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.plan->signature == sig) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.plan;
    }
    // Same 64-bit hash, different request: the collision check is what
    // keeps a hash key safe — the wrong plan is never served.
    collisions_.fetch_add(1, std::memory_order_relaxed);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  record_sighting(key);
  return nullptr;
}

PlanPtr SchedulePlanCache::peek(const PlanSignature& sig) {
  const std::uint64_t key = sig.hash();
  std::lock_guard lk(mu_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.plan->signature == sig) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.plan;
    }
  }
  // Not resident (or a collision): no counters — the caller's follow-up
  // `get` will account the miss exactly once.
  return nullptr;
}

PlanPtr SchedulePlanCache::insert(PlanPtr plan) {
  GRIDCAST_ASSERT(plan != nullptr, "inserting a null plan");
  const std::uint64_t key = plan->signature.hash();
  std::lock_guard lk(mu_);
  if (capacity_ == 0) return plan;  // pass-through: never retain
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.plan->signature == plan->signature) {
      // Lost a build race: the first insertion wins so all callers share
      // one object; the access still promotes the entry.
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.plan;
    }
    // Colliding signature resident under our hash.  Evict it (counted as
    // a collision, not an eviction — capacity did not force it) and take
    // the slot; serving correctness never depends on which one is
    // resident.
    collisions_.fetch_add(1, std::memory_order_relaxed);
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    cache_.erase(it);
  }
  const std::size_t sz = plan_bytes(*plan);
  // Admission: an insert that would force an eviction must have earned
  // its slot — `required_sightings` misses recorded in the probationary
  // ring.  One-shot signatures bounce off here instead of churning the
  // LRU; their callers still get the plan, uncached.
  if (admission_.required_sightings > 1 && capacity_ != kUnbounded &&
      bytes_ + sz > capacity_ &&
      sightings_of(key) < admission_.required_sightings) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return plan;
  }
  lru_.push_front(key);
  const auto [it, inserted] = cache_.try_emplace(key);
  it->second = Entry{std::move(plan), sz, lru_.begin()};
  bytes_ += sz;
  // Copy out before evicting: a capacity smaller than one plan makes the
  // fresh entry its own victim, which would invalidate `it`.
  PlanPtr result = it->second.plan;
  evict_to_capacity();
  return result;
}

PlanPtr SchedulePlanCache::get(
    const PlanSignature& sig,
    const std::function<PlanPtr(const PlanSignature&)>& build,
    GetStats* stats) {
  const std::uint64_t key = sig.hash();
  std::shared_ptr<Inflight> mine;
  {
    std::unique_lock lk(mu_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      if (it->second.plan->signature == sig) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        if (stats != nullptr) stats->hit = true;
        return it->second.plan;
      }
      collisions_.fetch_add(1, std::memory_order_relaxed);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    record_sighting(key);
    if (const auto fl = inflight_.find(key); fl != inflight_.end() &&
                                             fl->second->sig == sig) {
      // The build-once latch: someone is already building this exact
      // signature — wait for their result instead of duplicating the
      // work.  The wait holds no lock, so hits and other signatures'
      // builds proceed untouched.
      build_waits_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) stats->waited = true;
      const std::shared_future<PlanPtr> result = fl->second->future;
      lk.unlock();
      return result.get();  // rethrows the builder's failure, if any
    }
    // First requester — or a hash-colliding in-flight build we must not
    // share a latch with (it will produce a different plan); colliding
    // requesters build unlatched, which is correct and vanishingly rare.
    if (inflight_.find(key) == inflight_.end()) {
      mine = std::make_shared<Inflight>(sig);
      inflight_.emplace(key, mine);
    }
  }
  PlanPtr resident;
  try {
    PlanPtr built = build(sig);
    GRIDCAST_ASSERT(built != nullptr, "plan builder returned null");
    GRIDCAST_ASSERT(built->signature == sig,
                    "plan builder returned a mismatched signature");
    resident = insert(std::move(built));
  } catch (...) {
    if (mine != nullptr) {
      {
        std::lock_guard lk(mu_);
        if (const auto fl = inflight_.find(key);
            fl != inflight_.end() && fl->second == mine)
          inflight_.erase(fl);
      }
      // Waiters observe the same failure; the cleared latch lets the
      // next requester retry the build.
      mine->promise.set_exception(std::current_exception());
    }
    throw;
  }
  if (mine != nullptr) {
    {
      // Erase before fulfilling: a requester arriving between the two
      // steps finds the plan resident (insert happened above) instead of
      // a stale latch.
      std::lock_guard lk(mu_);
      if (const auto fl = inflight_.find(key);
          fl != inflight_.end() && fl->second == mine)
        inflight_.erase(fl);
    }
    mine->promise.set_value(resident);
  }
  return resident;
}

void SchedulePlanCache::set_capacity(std::size_t capacity_bytes) {
  std::lock_guard lk(mu_);
  capacity_ = capacity_bytes;
  evict_to_capacity();
}

std::size_t SchedulePlanCache::capacity() const {
  std::lock_guard lk(mu_);
  return capacity_;
}

AdmissionPolicy SchedulePlanCache::admission() const {
  std::lock_guard lk(mu_);
  return admission_;
}

std::size_t SchedulePlanCache::bytes_in_use() const {
  std::lock_guard lk(mu_);
  return bytes_;
}

std::size_t SchedulePlanCache::entries() const {
  std::lock_guard lk(mu_);
  return cache_.size();
}

}  // namespace gridcast::serve
