#include "serve/plan_cache.hpp"

#include <utility>

#include "support/error.hpp"

namespace gridcast::serve {

std::size_t SchedulePlanCache::plan_bytes(const SchedulePlan& plan) noexcept {
  // The dominant payloads are the transfer list and the per-cluster finish
  // vector; the entry object behind `entry` is shared with the registry
  // and not charged.  Allocator slack is not modelled — the bound is a
  // working-set knob, like InstanceCache's.
  return sizeof(SchedulePlan) + plan.scheduler.size() +
         plan.schedule.transfers.size() * sizeof(sched::Transfer) +
         plan.schedule.cluster_finish.size() * sizeof(Time) + sizeof(Entry) +
         sizeof(std::uint64_t);
}

void SchedulePlanCache::evict_to_capacity() {
  if (capacity_ == kUnbounded) return;
  while (bytes_ > capacity_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = cache_.find(victim);
    bytes_ -= it->second.bytes;
    cache_.erase(it);  // holders' shared_ptrs keep the plan alive
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

PlanPtr SchedulePlanCache::find(const PlanSignature& sig) {
  const std::uint64_t key = sig.hash();
  std::lock_guard lk(mu_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.plan->signature == sig) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.plan;
    }
    // Same 64-bit hash, different request: the collision check is what
    // keeps a hash key safe — the wrong plan is never served.
    collisions_.fetch_add(1, std::memory_order_relaxed);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

PlanPtr SchedulePlanCache::insert(PlanPtr plan) {
  GRIDCAST_ASSERT(plan != nullptr, "inserting a null plan");
  const std::uint64_t key = plan->signature.hash();
  std::lock_guard lk(mu_);
  if (capacity_ == 0) return plan;  // pass-through: never retain
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.plan->signature == plan->signature) {
      // Lost a build race: the first insertion wins so all callers share
      // one object; the access still promotes the entry.
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.plan;
    }
    // Colliding signature resident under our hash.  Evict it (counted as
    // a collision, not an eviction — capacity did not force it) and take
    // the slot; serving correctness never depends on which one is
    // resident.
    collisions_.fetch_add(1, std::memory_order_relaxed);
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    cache_.erase(it);
  }
  const std::size_t sz = plan_bytes(*plan);
  lru_.push_front(key);
  const auto [it, inserted] = cache_.try_emplace(key);
  it->second = Entry{std::move(plan), sz, lru_.begin()};
  bytes_ += sz;
  // Copy out before evicting: a capacity smaller than one plan makes the
  // fresh entry its own victim, which would invalidate `it`.
  PlanPtr result = it->second.plan;
  evict_to_capacity();
  return result;
}

PlanPtr SchedulePlanCache::get(
    const PlanSignature& sig,
    const std::function<PlanPtr(const PlanSignature&)>& build) {
  if (PlanPtr hit = find(sig)) return hit;
  // Build outside the lock: distinct signatures must not serialise behind
  // one selection run.
  PlanPtr built = build(sig);
  GRIDCAST_ASSERT(built != nullptr, "plan builder returned null");
  GRIDCAST_ASSERT(built->signature == sig,
                  "plan builder returned a mismatched signature");
  return insert(std::move(built));
}

void SchedulePlanCache::set_capacity(std::size_t capacity_bytes) {
  std::lock_guard lk(mu_);
  capacity_ = capacity_bytes;
  evict_to_capacity();
}

std::size_t SchedulePlanCache::capacity() const {
  std::lock_guard lk(mu_);
  return capacity_;
}

std::size_t SchedulePlanCache::bytes_in_use() const {
  std::lock_guard lk(mu_);
  return bytes_;
}

std::size_t SchedulePlanCache::entries() const {
  std::lock_guard lk(mu_);
  return cache_.size();
}

}  // namespace gridcast::serve
