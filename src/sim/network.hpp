#pragma once

#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_callback.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"
#include "topology/grid.hpp"

/// Message-level network simulation over a Grid.
///
/// Every machine owns one NIC.  A send issued at time t begins once the
/// NIC is free, occupies it for the link's gap g(m) (optionally jittered),
/// and the receiver *holds* the payload after the latency plus its receive
/// overhead: delivered = start + g(m) + L + or(m).  Link parameters come
/// from the grid: the cluster's intra pLogP set for same-cluster pairs,
/// the inter-cluster link set otherwise.
///
/// This intentionally includes the receive overhead the scheduling model
/// omits — the residual between Fig. 5 (predicted) and Fig. 6 (measured)
/// is real, and this is one of its sources.
///
/// The send path is allocation-free: delivery handlers are fixed-capacity
/// `InlineCallback`s, the pLogP parameter set of every (cluster, cluster)
/// pair is resolved once at construction, and a direct-mapped memo caches
/// `g(m)` / `orecv(m)` per (pair, size) so a collective sending the same
/// size thousands of times skips the gap-function binary search entirely.
/// Cached values are the exact doubles the gap functions produce, so
/// timings are bit-identical to the uncached path.
namespace gridcast::sim {

/// Multiplicative noise on gap and latency, per message.  `frac = 0`
/// reproduces the analytic model exactly (up to overheads).
struct JitterConfig {
  double frac = 0.0;
};

/// Timing of one send as decided at issue time.
struct SendTiming {
  Time start = 0.0;      ///< injection begins (NIC acquired)
  Time injected = 0.0;   ///< NIC free again (gap elapsed)
  Time delivered = 0.0;  ///< receiver holds the payload
};

class Network {
 public:
  /// Inline capacity for delivery handlers.  Sized for the largest
  /// executor capture list (the hierarchical all-to-all's coordinator
  /// fan-out); exceeding it is a compile-time error at the call site.
  static constexpr std::size_t kHandlerCapacity = 64;
  using DeliveryHandler = InlineCallback<void(Time), kHandlerCapacity>;

  Network(const topology::Grid& grid, JitterConfig jitter,
          std::uint64_t seed);

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const topology::Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::uint32_t ranks() const noexcept { return ranks_; }

  /// Issue a send of `m` bytes from global rank `from` to `to`.  The NIC
  /// serializes with previously issued sends of `from`.  `on_delivered`
  /// (optional) fires when the receiver holds the payload.  Returns the
  /// decided timing.
  SendTiming send(NodeId from, NodeId to, Bytes m,
                  DeliveryHandler on_delivered = {});

  /// NIC availability of a rank (for executors that need to sequence
  /// non-message work after sends).
  [[nodiscard]] Time nic_free(NodeId rank) const;

  /// Messages issued so far.
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

  /// Messages that crossed a cluster boundary (the expensive ones in a
  /// grid; the paper's heuristics exist to minimise their impact).
  [[nodiscard]] std::uint64_t inter_cluster_messages() const noexcept {
    return inter_messages_;
  }

  /// Payload bytes carried by inter-cluster messages.
  [[nodiscard]] Bytes inter_cluster_bytes() const noexcept {
    return inter_bytes_;
  }

  /// Total payload bytes issued so far.
  [[nodiscard]] Bytes bytes_sent() const noexcept { return bytes_; }

  /// Testing hook: re-run the gap-function lookups on every send instead
  /// of consulting the (pair, size) memo.  Timings must stay bit-identical
  /// either way — tests/sim/test_network.cpp pins that equivalence.
  void disable_send_memo_for_test() noexcept { memo_enabled_ = false; }

 private:
  /// One resolved (pair, size) -> {g(m), orecv(m)} association.  Entries
  /// always hold a valid association (sentinel pair index = empty), so a
  /// probe is a single key compare; collisions simply overwrite.
  struct MemoEntry {
    std::uint64_t pair;
    Bytes size;
    Time gap;
    Time orecv;
  };
  static constexpr std::uint64_t kEmptyPair = ~std::uint64_t{0};
  static constexpr std::size_t kMemoSlots = 128;  // power of two

  [[nodiscard]] double jitter_factor();

  const topology::Grid& grid_;
  Engine engine_;
  JitterConfig jitter_;
  Rng rng_;
  std::uint32_t ranks_;
  std::size_t n_clusters_;
  std::vector<Time> nic_free_;
  std::vector<std::pair<ClusterId, NodeId>> locate_;  // cached per rank
  // Resolved parameter set per ordered (from, to) cluster pair, indexed
  // [from * n_clusters + to]; the diagonal points at the cluster's intra
  // set.  Replaces a branch + matrix lookup per send.
  std::vector<const plogp::Params*> pair_params_;
  std::vector<MemoEntry> memo_;  // direct-mapped, kMemoSlots entries
  bool memo_enabled_ = true;
  std::uint64_t messages_ = 0;
  std::uint64_t inter_messages_ = 0;
  Bytes bytes_ = 0;
  Bytes inter_bytes_ = 0;
};

}  // namespace gridcast::sim
