#pragma once

#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"
#include "topology/grid.hpp"

/// Message-level network simulation over a Grid.
///
/// Every machine owns one NIC.  A send issued at time t begins once the
/// NIC is free, occupies it for the link's gap g(m) (optionally jittered),
/// and the receiver *holds* the payload after the latency plus its receive
/// overhead: delivered = start + g(m) + L + or(m).  Link parameters come
/// from the grid: the cluster's intra pLogP set for same-cluster pairs,
/// the inter-cluster link set otherwise.
///
/// This intentionally includes the receive overhead the scheduling model
/// omits — the residual between Fig. 5 (predicted) and Fig. 6 (measured)
/// is real, and this is one of its sources.
namespace gridcast::sim {

/// Multiplicative noise on gap and latency, per message.  `frac = 0`
/// reproduces the analytic model exactly (up to overheads).
struct JitterConfig {
  double frac = 0.0;
};

/// Timing of one send as decided at issue time.
struct SendTiming {
  Time start = 0.0;      ///< injection begins (NIC acquired)
  Time injected = 0.0;   ///< NIC free again (gap elapsed)
  Time delivered = 0.0;  ///< receiver holds the payload
};

class Network {
 public:
  Network(const topology::Grid& grid, JitterConfig jitter,
          std::uint64_t seed);

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const topology::Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::uint32_t ranks() const noexcept { return ranks_; }

  /// Issue a send of `m` bytes from global rank `from` to `to`.  The NIC
  /// serializes with previously issued sends of `from`.  `on_delivered`
  /// (optional) fires when the receiver holds the payload.  Returns the
  /// decided timing.
  SendTiming send(NodeId from, NodeId to, Bytes m,
                  std::function<void(Time)> on_delivered = {});

  /// NIC availability of a rank (for executors that need to sequence
  /// non-message work after sends).
  [[nodiscard]] Time nic_free(NodeId rank) const;

  /// Messages issued so far.
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

  /// Messages that crossed a cluster boundary (the expensive ones in a
  /// grid; the paper's heuristics exist to minimise their impact).
  [[nodiscard]] std::uint64_t inter_cluster_messages() const noexcept {
    return inter_messages_;
  }

  /// Payload bytes carried by inter-cluster messages.
  [[nodiscard]] Bytes inter_cluster_bytes() const noexcept {
    return inter_bytes_;
  }

  /// Total payload bytes issued so far.
  [[nodiscard]] Bytes bytes_sent() const noexcept { return bytes_; }

 private:
  [[nodiscard]] double jitter_factor();

  const topology::Grid& grid_;
  Engine engine_;
  JitterConfig jitter_;
  Rng rng_;
  std::uint32_t ranks_;
  std::vector<Time> nic_free_;
  std::vector<std::pair<ClusterId, NodeId>> locate_;  // cached per rank
  std::uint64_t messages_ = 0;
  std::uint64_t inter_messages_ = 0;
  Bytes bytes_ = 0;
  Bytes inter_bytes_ = 0;
};

}  // namespace gridcast::sim
