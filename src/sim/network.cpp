#include "sim/network.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gridcast::sim {

Network::Network(const topology::Grid& grid, JitterConfig jitter,
                 std::uint64_t seed)
    : grid_(grid),
      jitter_(jitter),
      rng_(Rng::stream(seed, 0xD15C0)),
      ranks_(grid.total_nodes()),
      nic_free_(grid.total_nodes(), 0.0) {
  GRIDCAST_ASSERT(jitter_.frac >= 0.0 && jitter_.frac < 0.5,
                  "jitter fraction out of range");
  locate_.reserve(ranks_);
  for (NodeId r = 0; r < ranks_; ++r) locate_.push_back(grid.locate(r));
}

double Network::jitter_factor() {
  if (jitter_.frac == 0.0) return 1.0;
  double f = rng_.normal(1.0, jitter_.frac);
  const double lo = 1.0 - 3.0 * jitter_.frac;
  const double hi = 1.0 + 3.0 * jitter_.frac;
  return std::clamp(f, std::max(lo, 0.05), hi);
}

Time Network::nic_free(NodeId rank) const {
  GRIDCAST_ASSERT(rank < ranks_, "rank out of range");
  return nic_free_[rank];
}

SendTiming Network::send(NodeId from, NodeId to, Bytes m,
                         std::function<void(Time)> on_delivered) {
  GRIDCAST_ASSERT(from < ranks_ && to < ranks_, "rank out of range");
  GRIDCAST_ASSERT(from != to, "self send");

  const auto [fc, fl] = locate_[from];
  const auto [tc, tl] = locate_[to];
  const plogp::Params& p =
      fc == tc ? grid_.cluster(fc).intra() : grid_.link(fc, tc);

  SendTiming t;
  t.start = std::max(engine_.now(), nic_free_[from]);
  const Time gap = p.g(m) * jitter_factor();
  const Time lat = p.L * jitter_factor();
  t.injected = t.start + gap;
  t.delivered = t.injected + lat + p.orecv(m);

  nic_free_[from] = t.injected;
  ++messages_;
  bytes_ += m;
  if (fc != tc) {
    ++inter_messages_;
    inter_bytes_ += m;
  }

  if (on_delivered) {
    engine_.at(t.delivered,
               [cb = std::move(on_delivered), when = t.delivered] { cb(when); });
  }
  return t;
}

}  // namespace gridcast::sim
