#include "sim/network.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gridcast::sim {

Network::Network(const topology::Grid& grid, JitterConfig jitter,
                 std::uint64_t seed)
    : grid_(grid),
      jitter_(jitter),
      rng_(Rng::stream(seed, 0xD15C0)),
      ranks_(grid.total_nodes()),
      n_clusters_(grid.cluster_count()),
      nic_free_(grid.total_nodes(), 0.0),
      memo_(kMemoSlots, MemoEntry{kEmptyPair, 0, 0.0, 0.0}) {
  GRIDCAST_ASSERT(jitter_.frac >= 0.0 && jitter_.frac < 0.5,
                  "jitter fraction out of range");
  locate_.reserve(ranks_);
  for (NodeId r = 0; r < ranks_; ++r) locate_.push_back(grid.locate(r));
  pair_params_.reserve(n_clusters_ * n_clusters_);
  for (ClusterId fc = 0; fc < n_clusters_; ++fc)
    for (ClusterId tc = 0; tc < n_clusters_; ++tc)
      pair_params_.push_back(fc == tc ? &grid.cluster(fc).intra()
                                      : &grid.link(fc, tc));
}

double Network::jitter_factor() {
  if (jitter_.frac == 0.0) return 1.0;
  double f = rng_.normal(1.0, jitter_.frac);
  const double lo = 1.0 - 3.0 * jitter_.frac;
  const double hi = 1.0 + 3.0 * jitter_.frac;
  return std::clamp(f, std::max(lo, 0.05), hi);
}

Time Network::nic_free(NodeId rank) const {
  GRIDCAST_ASSERT(rank < ranks_, "rank out of range");
  return nic_free_[rank];
}

SendTiming Network::send(NodeId from, NodeId to, Bytes m,
                         DeliveryHandler on_delivered) {
  GRIDCAST_ASSERT(from < ranks_ && to < ranks_, "rank out of range");
  GRIDCAST_ASSERT(from != to, "self send");

  const auto [fc, fl] = locate_[from];
  const auto [tc, tl] = locate_[to];
  const std::uint64_t pair =
      static_cast<std::uint64_t>(fc) * n_clusters_ + tc;
  const plogp::Params& p = *pair_params_[pair];

  Time gap_base, orecv;
  if (memo_enabled_) [[likely]] {
    // Direct-mapped probe; the cached doubles are exactly what the gap
    // functions would return, so hits and misses time identically.
    const std::uint64_t h =
        (pair * 0x9E3779B97F4A7C15ull) ^ (m * 0xC2B2AE3D27D4EB4Full);
    MemoEntry& e = memo_[(h >> 32) & (kMemoSlots - 1)];
    if (e.pair != pair || e.size != m) {
      e.pair = pair;
      e.size = m;
      e.gap = p.g(m);
      e.orecv = p.orecv(m);
    }
    gap_base = e.gap;
    orecv = e.orecv;
  } else {
    gap_base = p.g(m);
    orecv = p.orecv(m);
  }

  SendTiming t;
  t.start = std::max(engine_.now(), nic_free_[from]);
  const Time gap = gap_base * jitter_factor();
  const Time lat = p.L * jitter_factor();
  t.injected = t.start + gap;
  t.delivered = t.injected + lat + orecv;

  nic_free_[from] = t.injected;
  ++messages_;
  bytes_ += m;
  if (fc != tc) {
    ++inter_messages_;
    inter_bytes_ += m;
  }

  if (on_delivered) {
    engine_.at(t.delivered, [cb = std::move(on_delivered),
                             when = t.delivered]() mutable { cb(when); });
  }
  return t;
}

}  // namespace gridcast::sim
