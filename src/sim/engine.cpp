#include "sim/engine.hpp"

#include <utility>

#include "support/error.hpp"

namespace gridcast::sim {

void Engine::at(Time t, Callback cb) {
  GRIDCAST_ASSERT(t + 1e-15 >= now_, "cannot schedule into the past");
  GRIDCAST_ASSERT(static_cast<bool>(cb), "null callback");
  queue_.push(Event{t < now_ ? now_ : t, seq_++, std::move(cb)});
}

Time Engine::run() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the callback is wasteful, so pop into a local through extraction.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.cb();
  }
  return now_;
}

}  // namespace gridcast::sim
