#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/contracts.hpp"
#include "support/error.hpp"

namespace gridcast::sim {

namespace {

constexpr std::size_t kArity = 4;

/// Cold-start amortization: arena chunks released by destroyed engines are
/// parked per thread and handed to the next engine.  Monte-Carlo workers
/// construct thousands of short-lived engines; without this the allocator
/// returns the chunk memory to the OS on every destruction and each fresh
/// engine pays a page fault per 4 KiB to get it back.  Chunks are uniform
/// raw storage, so any engine can adopt any parked chunk.
std::vector<std::unique_ptr<std::byte[]>>& chunk_pool() {
  thread_local std::vector<std::unique_ptr<std::byte[]>> pool;
  return pool;
}
constexpr std::size_t kChunkPoolCap = 128;  // per thread; excess is freed

}  // namespace

// Raw chunks come from plain operator new[]; the slots placement-constructed
// inside them must not need more alignment than that provides.
static_assert(alignof(Engine::Callback) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
              "callback slots over-aligned for raw chunk storage");

Engine::~Engine() {
  // Every slot below the high-water mark is a live Callback (free-listed
  // slots are live-but-empty); chunks themselves are raw storage.
  for (std::uint32_t s = 0; s < slots_; ++s) slot_ptr(s)->~Callback();
  auto& pool = chunk_pool();
  for (auto& c : store_)
    if (pool.size() < kChunkPoolCap) pool.push_back(std::move(c));
}

void Engine::at(Time t, Callback cb) {
  // The single past-scheduling rule (see kPastSlack): reject anything more
  // than the slack below now, clamp the rest up to now.
  GRIDCAST_ASSERT(t + kPastSlack >= now_, "cannot schedule into the past");
  GRIDCAST_ASSERT(static_cast<bool>(cb), "null callback");

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    *slot_ptr(slot) = std::move(cb);
  } else {
    GRIDCAST_ASSERT(slots_ < std::numeric_limits<std::uint32_t>::max(),
                    "event arena exhausted");
    if ((static_cast<std::size_t>(slots_) >> kChunkShift) == store_.size()) {
      auto& pool = chunk_pool();
      if (!pool.empty()) {
        store_.push_back(std::move(pool.back()));
        pool.pop_back();
      } else {
        // Arena growth beyond any previous high-water mark — the one
        // allocation the steady-state event loop never reaches.
        // gridcast-lint: allow(sim-alloc)
        store_.push_back(std::make_unique_for_overwrite<std::byte[]>(
            kChunkSize * sizeof(Callback)));
      }
    }
    slot = slots_++;
    std::byte* base = store_.back().get();
    ::new (static_cast<void*>(base + (slot & (kChunkSize - 1)) *
                                         sizeof(Callback)))
        Callback(std::move(cb));
  }

  // Cheap per-insert slice of the calendar contract; the full O(pending)
  // walk (calendar_well_formed) runs at run() boundaries.
  GRIDCAST_DCHECK(heap_time_.size() == heap_seq_.size() &&
                      heap_time_.size() == heap_slot_.size(),
                  "SoA heap arrays lost parallelism");
  GRIDCAST_DCHECK(slot < slots_, "event slot above the arena high-water mark");

  const Time tt = t < now_ ? now_ : t;
  const std::uint64_t sq = seq_++;
  // Monotone fast lane: an event at or after the lane's last entry keeps
  // the lane sorted (equal times keep seq order because seq increases), so
  // it can skip the heap entirely.
  if (tail_head_ == tail_.size() || tt >= tail_.back().time) {
    tail_.push_back(TailEntry{tt, sq, slot});
  } else {
    heap_time_.push_back(tt);
    heap_seq_.push_back(sq);
    heap_slot_.push_back(slot);
    sift_up(heap_time_.size() - 1);
  }
}

void Engine::sift_up(std::size_t i) noexcept {
  const Time t = heap_time_[i];
  const std::uint64_t sq = heap_seq_[i];
  const std::uint32_t sl = heap_slot_[i];
  while (i > 0) {
    const std::size_t p = (i - 1) / kArity;
    if (before(p, t, sq)) break;  // parent already fires first
    heap_time_[i] = heap_time_[p];
    heap_seq_[i] = heap_seq_[p];
    heap_slot_[i] = heap_slot_[p];
    i = p;
  }
  heap_time_[i] = t;
  heap_seq_[i] = sq;
  heap_slot_[i] = sl;
}

void Engine::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_time_.size();
  const Time t = heap_time_[i];
  const std::uint64_t sq = heap_seq_[i];
  const std::uint32_t sl = heap_slot_[i];
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t m = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(c, heap_time_[m], heap_seq_[m])) m = c;
    if (!before(m, t, sq)) break;  // hole's entry fires before all children
    heap_time_[i] = heap_time_[m];
    heap_seq_[i] = heap_seq_[m];
    heap_slot_[i] = heap_slot_[m];
    i = m;
  }
  heap_time_[i] = t;
  heap_seq_[i] = sq;
  heap_slot_[i] = sl;
}

void Engine::pop_root() noexcept {
  const std::size_t n = heap_time_.size() - 1;
  if (n > 0) {
    heap_time_[0] = heap_time_[n];
    heap_seq_[0] = heap_seq_[n];
    heap_slot_[0] = heap_slot_[n];
  }
  heap_time_.pop_back();
  heap_seq_.pop_back();
  heap_slot_.pop_back();
  if (n > 1) sift_down(0);
}

bool Engine::calendar_well_formed() const noexcept {
  if (heap_time_.size() != heap_seq_.size() ||
      heap_time_.size() != heap_slot_.size())
    return false;
  for (std::size_t i = 1; i < heap_time_.size(); ++i) {
    const std::size_t p = (i - 1) / kArity;
    // Parent fires no later than the child: !(child before parent).
    if (before(i, heap_time_[p], heap_seq_[p])) return false;
    if (heap_slot_[i] >= slots_) return false;
  }
  if (!heap_time_.empty() && heap_slot_[0] >= slots_) return false;
  if (tail_head_ > tail_.size()) return false;
  for (std::size_t i = tail_head_; i < tail_.size(); ++i) {
    if (tail_[i].slot >= slots_) return false;
    if (i > tail_head_ &&
        (tail_[i].time < tail_[i - 1].time ||
         (tail_[i].time == tail_[i - 1].time && tail_[i].seq <= tail_[i - 1].seq)))
      return false;
  }
  for (const std::uint32_t s : free_)
    if (s >= slots_) return false;
  return true;
}

Time Engine::run() {
  GRIDCAST_DCHECK(calendar_well_formed(),
                  "event calendar corrupt at run() entry");
  for (;;) {
    const bool tail_live = tail_head_ < tail_.size();
    const bool heap_live = !heap_time_.empty();
    if (!tail_live && !heap_live) break;

    // The global minimum under (time, seq) is the earlier of the heap root
    // and the tail front — the lane is sorted, so its front is its minimum.
    bool use_tail = tail_live;
    if (tail_live && heap_live) {
      const TailEntry& f = tail_[tail_head_];
      const Time ht = heap_time_[0];
      use_tail = f.time < ht || (f.time == ht && f.seq < heap_seq_[0]);
    }

    std::uint32_t slot;
    if (use_tail) {
      now_ = tail_[tail_head_].time;
      slot = tail_[tail_head_].slot;
      if (++tail_head_ == tail_.size()) {
        tail_.clear();
        tail_head_ = 0;
      }
    } else {
      now_ = heap_time_[0];
      slot = heap_slot_[0];
      pop_root();
    }

    ++processed_;
    // Move the callback out before invoking: the slot is recycled into the
    // free list first, so a callback scheduling new events may legitimately
    // be handed its own (already vacated) slot.
    Callback cb = std::move(*slot_ptr(slot));
    free_.push_back(slot);
    cb();
  }
  GRIDCAST_DCHECK(calendar_well_formed(),
                  "event calendar corrupt after drain");
  return now_;
}

}  // namespace gridcast::sim
