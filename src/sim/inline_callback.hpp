#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// Fixed-capacity, allocation-free callable — the event calendar's
/// replacement for `std::function`.
///
/// The simulator schedules millions of short-lived callbacks; a
/// heap-allocating type-erased wrapper turns the event loop allocation-bound.
/// `InlineCallback` stores the callable in a fixed small buffer (no heap
/// fallback): a callable that does not fit is a *compile-time* error, which
/// keeps executor capture lists honest instead of silently regressing the
/// hot path.  Move-only; dispatch is two function pointers (invoke +
/// relocate/destroy), so a slot is `2 * sizeof(void*) + Capacity` bytes and
/// trivially storable in an arena.
namespace gridcast::sim {

template <typename Sig, std::size_t Capacity>
class InlineCallback;  // primary template intentionally undefined

template <typename R, typename... Args, std::size_t Capacity>
class InlineCallback<R(Args...), Capacity> {
 public:
  InlineCallback() noexcept = default;

  /// Wrap any callable invocable as R(Args...).  The callable must fit the
  /// inline buffer and be nothrow-move-constructible (slots relocate when
  /// the arena grows).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineCallback(F&& f) {  // NOLINT: implicit by design (lambda -> handler)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable exceeds InlineCallback capacity: shrink the "
                  "capture list (capture by reference where the enclosing "
                  "scope outlives engine().run()) or raise Capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callable must be nothrow move constructible");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* b, Args... a) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(b)))(
          std::forward<Args>(a)...);
    };
    relocate_ = [](void* dst, void* src) noexcept {
      Fn* p = std::launder(reinterpret_cast<Fn*>(src));
      if (dst != nullptr) ::new (dst) Fn(std::move(*p));
      p->~Fn();
    };
  }

  InlineCallback(InlineCallback&& o) noexcept { move_from(o); }
  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (relocate_ != nullptr) {
      relocate_(nullptr, buf_);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  R operator()(Args... a) { return invoke_(buf_, std::forward<Args>(a)...); }

  static constexpr std::size_t capacity() noexcept { return Capacity; }

 private:
  void move_from(InlineCallback& o) noexcept {
    invoke_ = o.invoke_;
    relocate_ = o.relocate_;
    if (relocate_ != nullptr) {
      relocate_(buf_, o.buf_);  // move-construct here, destroy source
      o.invoke_ = nullptr;
      o.relocate_ = nullptr;
    }
  }

  using Invoke = R (*)(void*, Args...);
  /// relocate(dst, src): move-construct src's callable into dst and destroy
  /// src's; relocate(nullptr, src) destroys only.
  using Relocate = void (*)(void*, void*) noexcept;

  Invoke invoke_ = nullptr;
  Relocate relocate_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace gridcast::sim
