#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/types.hpp"

/// Discrete-event simulation core.
///
/// A minimal calendar: callbacks scheduled at absolute times, executed in
/// (time, insertion-sequence) order so simultaneous events fire
/// deterministically.  This is the substrate substituting for the paper's
/// live GRID5000 runs (DESIGN.md substitution table).
namespace gridcast::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t` (>= now, enforced).
  void at(Time t, Callback cb);

  /// Schedule `cb` after a delay (>= 0) from now.
  void after(Time delay, Callback cb) { at(now_ + delay, std::move(cb)); }

  /// Current simulation time (0 before run()).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Run until the calendar drains.  Returns the time of the last event.
  Time run();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace gridcast::sim
