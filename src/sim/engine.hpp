#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "sim/inline_callback.hpp"
#include "support/types.hpp"

/// Discrete-event simulation core.
///
/// A minimal calendar: callbacks scheduled at absolute times, executed in
/// (time, insertion-sequence) order so simultaneous events fire
/// deterministically.  This is the substrate substituting for the paper's
/// live GRID5000 runs (DESIGN.md substitution table).
///
/// Layout (the simulator fast path): the calendar is a flat 4-ary min-heap
/// over parallel `(time, seq, slot)` arrays — structure-of-arrays, so sift
/// operations move 20 trivially-copyable bytes instead of a type-erased
/// callable — plus a monotone *tail lane*: an insertion scheduled at or
/// after the latest tail entry is appended to a sorted FIFO instead of the
/// heap, and the next event is whichever of (heap root, tail front) wins
/// the (time, seq) comparison.  Simulations schedule mostly forward in
/// time, so the common case is an O(1) append and an O(1) sequential pop;
/// the heap only absorbs the out-of-order residue.  Either way the pop
/// order is exactly the (time, seq) total order, so reports are
/// byte-identical to the previous `std::priority_queue` engine.
///
/// Callbacks live in an arena of fixed-capacity `InlineCallback` slots
/// recycled through a free list.  The arena grows in fixed-size chunks, so
/// existing slots never move (no per-element relocation on growth) and the
/// steady-state event loop (schedule → pop → invoke) performs zero heap
/// allocations per event; only growth beyond any previous high-water mark
/// allocates.
namespace gridcast::sim {

class Engine {
 public:
  /// Inline capacity for event callbacks.  Sized for the largest executor
  /// capture list (Network's delivery wrapper: a DeliveryHandler plus the
  /// delivery time); exceeding it is a compile-time error at the call site.
  static constexpr std::size_t kCallbackCapacity = 96;
  using Callback = InlineCallback<void(), kCallbackCapacity>;

  /// Scheduling-into-the-past rule: `at(t)` requires `t + kPastSlack >=
  /// now()`; anything earlier throws.  A `t` within the slack but below
  /// `now()` (float round-off from accumulated timing sums) is clamped to
  /// `now()` and fires after events already scheduled at `now()` (its
  /// insertion sequence is later).  One rule, applied in one place.
  static constexpr Time kPastSlack = 1e-15;

  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Schedule `cb` at absolute time `t` (>= now - kPastSlack, enforced;
  /// clamped to now).
  void at(Time t, Callback cb);

  /// Schedule `cb` after a delay (>= -kPastSlack) from now.
  void after(Time delay, Callback cb) { at(now_ + delay, std::move(cb)); }

  /// Current simulation time (0 before run()).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Run until the calendar drains.  Returns the time of the last event.
  Time run();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Events currently pending.
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_time_.size() + (tail_.size() - tail_head_);
  }

 private:
  // Arena chunk geometry: slots never move once created, so growth costs
  // one allocation (of raw storage — slots are placement-constructed on
  // first use), never a relocation or initialization sweep of the chunk.
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  [[nodiscard]] Callback* slot_ptr(std::uint32_t s) noexcept {
    std::byte* base = store_[s >> kChunkShift].get();
    return std::launder(reinterpret_cast<Callback*>(
        base + (s & (kChunkSize - 1)) * sizeof(Callback)));
  }

  /// Entry `a` fires strictly before the (time, seq) pair of `b`.
  [[nodiscard]] bool before(std::size_t a, Time t,
                            std::uint64_t seq) const noexcept {
    return heap_time_[a] < t || (heap_time_[a] == t && heap_seq_[a] < seq);
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void pop_root() noexcept;

  /// The calendar's structural contract, checkable in O(pending): the SoA
  /// arrays stay parallel, the 4-ary heap property holds on (time, seq),
  /// the tail lane is sorted by construction, and every referenced slot
  /// is below the arena high-water mark.  GRIDCAST_DCHECK'd at run()
  /// boundaries (Debug/sanitizer lanes); free for release callers.
  [[nodiscard]] bool calendar_well_formed() const noexcept;

  // 4-ary min-heap on (time, seq), SoA: parallel arrays move cheap PODs.
  std::vector<Time> heap_time_;
  std::vector<std::uint64_t> heap_seq_;
  std::vector<std::uint32_t> heap_slot_;
  // Monotone tail lane: sorted by construction (appends only at or after
  // the last entry), consumed from tail_head_.  Entries before tail_head_
  // are dead; the array is compacted whenever the lane drains.  Unlike the
  // heap, the lane is AoS: it is only ever appended to and scanned
  // sequentially, so one vector means one capacity check per insert.
  struct TailEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  std::vector<TailEntry> tail_;
  std::size_t tail_head_ = 0;
  // Chunked arena of callback slots + free list (indices into the arena).
  // Chunks are raw storage; every slot index below slots_ holds a live
  // (possibly empty) Callback, constructed the first time it was handed out.
  std::vector<std::unique_ptr<std::byte[]>> store_;
  std::uint32_t slots_ = 0;  // slots ever constructed (high-water mark)
  std::vector<std::uint32_t> free_;

  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace gridcast::sim
