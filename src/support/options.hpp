#pragma once

#include <cstdint>
#include <optional>
#include <string>

/// Environment-variable driven configuration for bench binaries.
///
/// The benchmark suite is executed unattended (`for b in build/bench/*`),
/// so every knob must have a sensible default and be overridable without
/// command-line plumbing: `GRIDCAST_ITERS`, `GRIDCAST_SEED`,
/// `GRIDCAST_THREADS`, `GRIDCAST_CSV`.
namespace gridcast {

/// Read an environment variable; empty optional when unset or empty.
[[nodiscard]] std::optional<std::string> env_str(const char* name);

/// Read an integer environment variable; `fallback` when unset/malformed-
/// free parse is required: a malformed value throws InvalidInput so typos
/// never silently fall back.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Read a boolean env var ("1"/"true"/"yes" → true, "0"/"false"/"no" →
/// false, case-insensitive); `fallback` when unset.
[[nodiscard]] bool env_bool(const char* name, bool fallback);

/// Standard experiment knobs resolved once per bench binary.
struct BenchOptions {
  std::uint64_t iterations;  ///< Monte-Carlo iterations per configuration.
  std::uint64_t seed;        ///< Root RNG seed.
  std::size_t threads;       ///< Worker threads (0 = inline).
  bool csv;                  ///< Emit CSV instead of aligned tables.

  /// Resolve from the GRIDCAST_* environment with the given default
  /// iteration count (figures differ: Fig. 1 is cheap, Fig. 4 is not).
  [[nodiscard]] static BenchOptions from_env(std::uint64_t default_iters);
};

}  // namespace gridcast
