#pragma once

#include <cstddef>
#include <vector>

#include "support/error.hpp"

/// Dense square matrix with row-major storage.
///
/// Used for inter-cluster cost matrices (≤ a few hundred entries); kept
/// deliberately simple — contiguous storage, bounds-checked access, no
/// expression templates.
namespace gridcast {

template <typename T>
class SquareMatrix {
 public:
  SquareMatrix() = default;

  explicit SquareMatrix(std::size_t n, const T& init = T{})
      : n_(n), data_(n * n, init) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    GRIDCAST_ASSERT(r < n_ && c < n_, "matrix index out of range");
    return data_[r * n_ + c];
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    GRIDCAST_ASSERT(r < n_ && c < n_, "matrix index out of range");
    return data_[r * n_ + c];
  }

  T& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  const T& operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  /// Fill the whole matrix with a value.
  void fill(const T& v) {
    for (auto& x : data_) x = v;
  }

  /// Resize to n x n and fill with `v`, reusing existing storage (like
  /// `std::vector::assign`) — the building block for per-iteration reuse
  /// of cost matrices without reallocating.
  void assign(std::size_t n, const T& v) {
    n_ = n;
    data_.assign(n * n, v);
  }

  /// Symmetrise by copying the upper triangle onto the lower one.
  void mirror_upper() {
    for (std::size_t r = 0; r < n_; ++r)
      for (std::size_t c = r + 1; c < n_; ++c) at(c, r) = at(r, c);
  }

  [[nodiscard]] bool operator==(const SquareMatrix&) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<T> data_;
};

}  // namespace gridcast
