#pragma once

#include <stdexcept>
#include <string>

/// Error handling for gridcast.
///
/// Policy (Core Guidelines E.2/E.3): programming errors (violated
/// preconditions) throw `LogicError`; invalid external inputs (malformed
/// topology files, bad CLI values) throw `InvalidInput`.  Hot paths use
/// `GRIDCAST_ASSERT`, which compiles to a cheap branch and throws with file
/// and line context — benchmarks run with assertions on, since schedule
/// validity is part of what we measure.
namespace gridcast {

/// Violated internal invariant or precondition.
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

/// Malformed external input (files, options, user-supplied matrices).
class InvalidInput : public std::runtime_error {
 public:
  explicit InvalidInput(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace gridcast

/// Precondition / invariant check that survives NDEBUG builds.
#define GRIDCAST_ASSERT(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      ::gridcast::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)
