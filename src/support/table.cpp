#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace gridcast {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GRIDCAST_ASSERT(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GRIDCAST_ASSERT(cells.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& key, const std::vector<double>& values,
                    int precision) {
  GRIDCAST_ASSERT(values.size() + 1 == header_.size(),
                  "row width must match header width");
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(key);
  for (double v : values) cells.push_back(fmt(v, precision));
  rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  GRIDCAST_ASSERT(i < rows_.size(), "row index out of range");
  return rows_[i];
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << (c == 0 ? std::left : std::right) << cells[c];
      os << (c == 0 ? std::right : std::right);
    }
    os << '\n';
  };
  line(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) line(r);
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "" : ",") << cells[c];
    os << '\n';
  };
  line(header_);
  for (const auto& r : rows_) line(r);
}

}  // namespace gridcast
