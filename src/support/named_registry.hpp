#pragma once

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

/// The one name→factory registry implementation behind both
/// `sched::SchedulerRegistry` and `collective::BackendRegistry` (and any
/// future registry).  Both registries need the same machinery — canonical
/// names in registration order, case-folded aliases, duplicate rejection
/// with no partial state, and factories handed back *by value* so callers
/// can invoke them outside the lock (composite entries resolve delegates
/// through their own registry from inside their factory) — but differ in
/// two policy bits, captured by `Rules`:
///
///   * schedulers keep mixed-case canonical names matched *exactly*
///     (exact-match-first keeps an alias equal to the fold of a canonical
///     unambiguous — "ecef-lat" → ECEF-LAT relies on it), while
///   * backends require lowercase canonical names and fold *every*
///     lookup, canonical or alias.
///
/// Error messages are worded "<kind> ..." so the wrappers keep their
/// historically pinned texts verbatim.
namespace gridcast {

template <typename Factory>
class NamedRegistry {
 public:
  /// The policy knobs that distinguish one registry from another.
  struct Rules {
    /// The word in every error message ("scheduler", "backend", ...).
    std::string kind;
    /// Fold canonical names on lookup (requires lowercase canonicals).
    bool fold_canonical_lookup = false;
    /// Reject non-lowercase canonical names at add() time.
    bool require_lowercase_canonical = false;
  };

  explicit NamedRegistry(Rules rules) : rules_(std::move(rules)) {}

  NamedRegistry(const NamedRegistry&) = delete;
  NamedRegistry& operator=(const NamedRegistry&) = delete;

  /// Register a factory under a canonical name plus optional aliases
  /// (always folded) and an optional one-line description.  Throws
  /// InvalidInput when the name or any alias is already taken — including
  /// duplicates *within this call* — leaving the registry unchanged.
  void add(std::string name, Factory factory,
           std::vector<std::string> aliases = {},
           std::string description = {}) {
    if (name.empty())
      throw InvalidInput(rules_.kind + " name must be non-empty");
    if (rules_.require_lowercase_canonical && fold(name) != name)
      throw InvalidInput(rules_.kind + " name '" + name +
                         "' must be lowercase (lookups are case-insensitive)");
    if (!factory)
      throw InvalidInput(rules_.kind + " factory must be callable");
    std::lock_guard lk(mu_);
    // A new canonical name must not shadow an existing alias: lookup tries
    // the canonical map first, so accepting it would silently redirect
    // every lookup of that alias.  (An alias equal to the fold of an
    // existing canonical stays legal under exact-match-first.)
    if (factories_.contains(name) || aliases_.contains(fold(name)))
      throw InvalidInput(rules_.kind + " '" + name + "' is already registered");
    for (std::size_t i = 0; i < aliases.size(); ++i) {
      aliases[i] = fold(aliases[i]);
      if (aliases_.contains(aliases[i]) || factories_.contains(aliases[i]))
        throw InvalidInput(rules_.kind + " alias '" + aliases[i] +
                           "' is already registered");
      // Also reject duplicates within this call: emplace below keeps only
      // the first occurrence, so a repeat would be silently dropped.
      for (std::size_t j = 0; j < i; ++j)
        if (aliases[j] == aliases[i])
          throw InvalidInput(rules_.kind + " alias '" + aliases[i] +
                             "' appears twice in one registration");
    }
    alias_lists_.emplace(name, aliases);
    for (auto& a : aliases) aliases_.emplace(std::move(a), name);
    descriptions_.emplace(name, std::move(description));
    order_.push_back(name);
    factories_.emplace(std::move(name), std::move(factory));
  }

  /// The factory registered under `name` (canonical or alias), returned
  /// *by value* so the caller invokes it outside the registry lock.
  /// Throws "unknown <kind> '<name>' (registered: ...)" for unknown names.
  [[nodiscard]] Factory factory_for(std::string_view name) const {
    std::lock_guard lk(mu_);
    if (const std::string* c = canonical_locked(name))
      return factories_.find(*c)->second;
    throw InvalidInput(unknown_message_locked(name));
  }

  /// Every registered factory, in registration order, copied out for the
  /// caller to invoke outside the lock.
  [[nodiscard]] std::vector<Factory> all_factories() const {
    std::lock_guard lk(mu_);
    std::vector<Factory> out;
    out.reserve(order_.size());
    for (const auto& n : order_) out.push_back(factories_.find(n)->second);
    return out;
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    std::lock_guard lk(mu_);
    return canonical_locked(name) != nullptr;
  }

  /// Resolve a name or alias to its canonical name, throwing the same
  /// InvalidInput as factory_for() for unknown names.
  [[nodiscard]] std::string resolve(std::string_view name) const {
    std::lock_guard lk(mu_);
    if (const std::string* c = canonical_locked(name)) return *c;
    throw InvalidInput(unknown_message_locked(name));
  }

  /// Canonical names in registration order.
  [[nodiscard]] std::vector<std::string> names() const {
    std::lock_guard lk(mu_);
    return order_;
  }

  /// Registered aliases of a canonical name (folded), in registration
  /// order; empty for unknown names.
  [[nodiscard]] std::vector<std::string> aliases_of(
      std::string_view name) const {
    std::lock_guard lk(mu_);
    const std::string* c = canonical_locked(name);
    if (c == nullptr) return {};
    return alias_lists_.find(*c)->second;
  }

  /// The description add() recorded for a canonical name or alias; empty
  /// for unknown names.
  [[nodiscard]] std::string description_of(std::string_view name) const {
    std::lock_guard lk(mu_);
    const std::string* c = canonical_locked(name);
    if (c == nullptr) return {};
    return descriptions_.find(*c)->second;
  }

 private:
  [[nodiscard]] static std::string fold(std::string_view name) {
    std::string out(name);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    return out;
  }

  /// Caller holds `mu_`.  Canonical map first (exactly, or folded per the
  /// rules), then the folded alias map.
  [[nodiscard]] const std::string* canonical_locked(
      std::string_view name) const {
    if (rules_.fold_canonical_lookup) {
      const std::string folded = fold(name);
      if (const auto it = factories_.find(folded); it != factories_.end())
        return &it->first;
      if (const auto al = aliases_.find(folded); al != aliases_.end())
        return &al->second;
      return nullptr;
    }
    if (const auto it = factories_.find(name); it != factories_.end())
      return &it->first;
    if (const auto al = aliases_.find(fold(name)); al != aliases_.end())
      return &al->second;
    return nullptr;
  }

  /// "unknown <kind> 'x' (registered: ...)".  Caller holds `mu_`.
  [[nodiscard]] std::string unknown_message_locked(
      std::string_view name) const {
    std::string known;
    for (const auto& n : order_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return "unknown " + rules_.kind + " '" + std::string(name) +
           "' (registered: " + known + ")";
  }

  Rules rules_;
  mutable std::mutex mu_;
  std::vector<std::string> order_;  ///< registration order
  std::map<std::string, Factory, std::less<>> factories_;
  std::map<std::string, std::string, std::less<>> descriptions_;
  std::map<std::string, std::string, std::less<>> aliases_;  ///< folded → canonical
  std::map<std::string, std::vector<std::string>, std::less<>> alias_lists_;
};

}  // namespace gridcast
