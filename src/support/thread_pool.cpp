#include "support/thread_pool.hpp"

#include <exception>

#include "support/error.hpp"

namespace gridcast {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ must be set
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = threads_.size();
  if (workers == 0) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  // Completion handshake.  `remaining` must only reach zero while the
  // worker holds `done_mu`: the waiter's predicate runs under the same
  // lock, so it cannot observe zero, return, and destroy these stack
  // objects while the last worker still stands between its decrement and
  // the notify — the lifetime race TSan flags in the decrement-outside-
  // the-lock formulation.
  std::size_t remaining = chunks;
  std::exception_ptr first_error;
  std::mutex done_mu;
  std::condition_variable done_cv;

  {
    std::lock_guard lk(mu_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, n);
      queue_.emplace([&, lo, hi] {
        std::exception_ptr err;
        try {
          body(lo, hi);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard dlk(done_mu);
        if (err && !first_error) first_error = std::move(err);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
  }
  cv_.notify_all();

  std::unique_lock lk(done_mu);
  done_cv.wait(lk, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::default_workers() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? hc - 1 : 0;
}

}  // namespace gridcast
