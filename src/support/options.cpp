#include "support/options.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace gridcast {

std::optional<std::string> env_str(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const auto s = env_str(name);
  if (!s) return fallback;
  std::uint64_t out = 0;
  const char* begin = s->data();
  const char* end = begin + s->size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end)
    throw InvalidInput(std::string(name) + " is not an unsigned integer: '" +
                       *s + "'");
  return out;
}

bool env_bool(const char* name, bool fallback) {
  auto s = env_str(name);
  if (!s) return fallback;
  std::string v = *s;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw InvalidInput(std::string(name) + " is not a boolean: '" + *s + "'");
}

BenchOptions BenchOptions::from_env(std::uint64_t default_iters) {
  BenchOptions o;
  o.iterations = env_u64("GRIDCAST_ITERS", default_iters);
  o.seed = env_u64("GRIDCAST_SEED", 42);
  o.threads = static_cast<std::size_t>(env_u64(
      "GRIDCAST_THREADS",
      static_cast<std::uint64_t>(ThreadPool::default_workers())));
  o.csv = env_bool("GRIDCAST_CSV", false);
  return o;
}

}  // namespace gridcast
