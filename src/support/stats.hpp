#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "support/error.hpp"

/// Streaming statistics used by the Monte-Carlo experiment harness.
namespace gridcast {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
/// Mergeable (Chan et al.) so per-thread accumulators can be combined.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator into this one.
  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double d = o.mean_ - mean_;
    mean_ += d * nb / (na + nb);
    m2_ += o.m2_ + d * d * na * nb / (na + nb);
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  /// Sample (Bessel-corrected) variance; 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sample_stddev() const noexcept;
  /// Standard error of the mean (sample stddev / sqrt(n)).
  [[nodiscard]] double sem() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.  Used to inspect makespan distributions behind the paper's
/// mean-only plots.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void merge(const Histogram& o);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Linear-interpolated quantile estimate, q in [0,1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact quantiles over a retained sample vector (small experiments only).
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  void merge(const SampleSet& o) {
    xs_.insert(xs_.end(), o.xs_.begin(), o.xs_.end());
  }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  /// Exact quantile by nearest-rank with linear interpolation; sorts lazily.
  [[nodiscard]] double quantile(double q);
  [[nodiscard]] double median() { return quantile(0.5); }

 private:
  std::vector<double> xs_;
  bool sorted_ = false;
};

}  // namespace gridcast
