#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

/// Tabular output for the benchmark harness.
///
/// Every bench binary prints the same rows/series as the paper's tables and
/// figures; `Table` renders them either as an aligned console table or as
/// CSV (for re-plotting with gnuplot, which is what the paper used).
namespace gridcast {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a formatted row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: build a row from doubles with fixed precision.
  void add_row(const std::string& key, const std::vector<double>& values,
               int precision = 4);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Aligned, human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV rendering (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

  /// Format a double with the given precision (shared helper).
  [[nodiscard]] static std::string fmt(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridcast
