#include "support/error.hpp"

#include <sstream>

namespace gridcast::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}

}  // namespace gridcast::detail
