#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gridcast {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sample_stddev() const noexcept {
  return std::sqrt(sample_variance());
}

double RunningStats::sem() const noexcept {
  return n_ == 0 ? 0.0 : sample_stddev() / std::sqrt(static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  GRIDCAST_ASSERT(hi > lo, "histogram range must be non-empty");
  GRIDCAST_ASSERT(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& o) {
  GRIDCAST_ASSERT(o.counts_.size() == counts_.size() && o.lo_ == lo_ &&
                      o.hi_ == hi_,
                  "merging incompatible histograms");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  GRIDCAST_ASSERT(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  GRIDCAST_ASSERT(bin < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + width_;
}

double Histogram::quantile(double q) const {
  GRIDCAST_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  GRIDCAST_ASSERT(total_ > 0, "quantile of empty histogram");
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0
                          : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double SampleSet::quantile(double q) {
  GRIDCAST_ASSERT(!xs_.empty(), "quantile of empty sample set");
  GRIDCAST_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

}  // namespace gridcast
