#pragma once

#include <cstddef>
#include <cstdint>

/// Fundamental scalar types shared by every gridcast module.
///
/// All times are kept in *seconds* as `double`; the paper mixes milliseconds
/// (Table 2) and microseconds (Table 3), so a single canonical unit avoids an
/// entire class of unit bugs.  Conversion helpers are provided for literals.
namespace gridcast {

/// Time in seconds.
using Time = double;

/// Message size in bytes.
using Bytes = std::uint64_t;

/// Index of a cluster within a Grid.
using ClusterId = std::uint32_t;

/// Index of a node (process/machine) within a Grid or Cluster.
using NodeId = std::uint32_t;

/// Sentinel for "no cluster" (e.g. the root has no parent).
inline constexpr ClusterId kNoCluster = static_cast<ClusterId>(-1);

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Convert milliseconds to seconds.
[[nodiscard]] constexpr Time ms(double v) noexcept { return v * 1e-3; }

/// Convert microseconds to seconds.
[[nodiscard]] constexpr Time us(double v) noexcept { return v * 1e-6; }

/// Convert seconds to milliseconds (for reporting).
[[nodiscard]] constexpr double to_ms(Time t) noexcept { return t * 1e3; }

/// Convert seconds to microseconds (for reporting).
[[nodiscard]] constexpr double to_us(Time t) noexcept { return t * 1e6; }

/// Mebibytes to bytes (message-size literals; the paper's "1 MB" is 2^20).
[[nodiscard]] constexpr Bytes MiB(double v) noexcept {
  return static_cast<Bytes>(v * 1048576.0);
}

/// Kibibytes to bytes.
[[nodiscard]] constexpr Bytes KiB(double v) noexcept {
  return static_cast<Bytes>(v * 1024.0);
}

}  // namespace gridcast
