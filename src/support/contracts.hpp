#pragma once

#include "support/error.hpp"

/// Contract macros — the two-tier assertion policy.
///
/// `GRIDCAST_ASSERT(expr, msg)` (from support/error.hpp) is the *cheap*
/// tier: a predictable branch on data already in registers.  It is on in
/// every build type, release included — schedule validity is part of what
/// the benchmarks measure, and a report produced past a violated
/// precondition is worse than no report.
///
/// `GRIDCAST_DCHECK(expr, msg)` is the *expensive* tier: O(n) structure
/// walks (heap order, schedule well-formedness, report grammar) that
/// would dominate a hot loop.  It compiles to nothing unless
/// `GRIDCAST_ENABLE_DCHECKS` is defined, which the build system does for
/// Debug and sanitizer configurations (`-DGRIDCAST_DCHECKS=ON` forces it
/// anywhere).  The expression is still parsed and type-checked when
/// disabled, so a DCHECK can never rot into a compile error on the lanes
/// that enable it — but it must be side-effect free, because release
/// builds never evaluate it.
///
/// Both tiers throw `gridcast::LogicError` with file:line context via
/// `gridcast::detail::assert_fail`, so tests can pin contract failures
/// the same way they pin any diagnostic.

#if defined(GRIDCAST_ENABLE_DCHECKS)
#define GRIDCAST_DCHECK(expr, msg) GRIDCAST_ASSERT(expr, msg)
#define GRIDCAST_DCHECKS_ENABLED 1
#else
#define GRIDCAST_DCHECK(expr, msg)  \
  do {                              \
    if (false) {                    \
      (void)(expr);                 \
      (void)(msg);                  \
    }                               \
  } while (false)
#define GRIDCAST_DCHECKS_ENABLED 0
#endif
