#include "support/rng.hpp"

// Header-only implementation; this translation unit exists so the library
// has a concrete object for the module and to catch ODR issues early.
namespace gridcast {
static_assert(sizeof(Rng) <= 32, "Rng must stay cheap to copy per iteration");
}  // namespace gridcast
