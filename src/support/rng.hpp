#pragma once

#include <cstdint>
#include <limits>

#include "support/error.hpp"

/// Deterministic, splittable random number generation.
///
/// Monte-Carlo experiments are split across worker threads; to make results
/// independent of the thread count (and reproducible under a single seed),
/// every iteration derives its own statistically independent stream via
/// `Rng::stream(seed, iteration)` instead of sharing one sequential
/// generator.  The core generator is SplitMix64 (Steele et al., "Fast
/// Splittable Pseudorandom Number Generators"), which passes BigCrush and is
/// trivially seedable from a hash of (seed, stream).
namespace gridcast {

/// 64-bit splittable PRNG with uniform helpers.
class Rng {
 public:
  /// Seed a root stream.
  explicit Rng(std::uint64_t seed) noexcept : state_(mix_seed(seed)) {}

  /// Derive the generator for an independent stream (e.g. one Monte-Carlo
  /// iteration).  Streams for distinct `stream_id` are decorrelated by a
  /// double SplitMix64 finalizer over the (seed, id) pair.
  [[nodiscard]] static Rng stream(std::uint64_t seed,
                                  std::uint64_t stream_id) noexcept {
    Rng r(seed ^ finalize(stream_id + 0x9e3779b97f4a7c15ULL));
    r.next();  // decouple from the raw seed mix
    return r;
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    return finalize(z);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 random mantissa bits → uniform on [0,1) without rounding bias.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) {
    GRIDCAST_ASSERT(lo <= hi, "uniform(lo,hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  Requires n > 0.  Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) {
    GRIDCAST_ASSERT(n > 0, "below(n) requires n > 0");
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    GRIDCAST_ASSERT(lo <= hi, "between(lo,hi) requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Standard normal via Marsaglia polar method (for link jitter).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double k = std::numeric_limits<double>::epsilon();  // guard log(0)
    (void)k;
    const double f = __builtin_sqrt(-2.0 * __builtin_log(s) / s);
    spare_ = v * f;
    have_spare_ = true;
    return u * f;
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fisher-Yates shuffle of a random-access range.
  template <typename Range>
  void shuffle(Range& r) {
    const auto n = static_cast<std::uint64_t>(r.size());
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = below(i);
      using std::swap;
      swap(r[i - 1], r[j]);
    }
  }

 private:
  [[nodiscard]] static std::uint64_t finalize(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  [[nodiscard]] static std::uint64_t mix_seed(std::uint64_t seed) noexcept {
    return finalize(seed + 0x2545f4914f6cdd1dULL);
  }

  std::uint64_t state_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace gridcast
