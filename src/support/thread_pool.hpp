#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// A small work-stealing-free thread pool with a blocking `parallel_for`.
///
/// The Monte-Carlo harness runs thousands of independent schedule
/// evaluations; `parallel_for` splits the index range into contiguous chunks
/// (one per worker by default) so per-thread accumulators merge cheaply.
/// Determinism: work is partitioned by *index*, never by arrival order, and
/// every iteration seeds its own RNG stream, so results are identical for
/// any worker count, including 0 (inline execution).
namespace gridcast {

class ThreadPool {
 public:
  /// `workers == 0` executes everything inline on the calling thread
  /// (useful on single-core machines and in unit tests).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Run `body(begin, end)` over disjoint chunks covering [0, n); blocks
  /// until all chunks finish.  Exceptions from chunks are rethrown (first
  /// one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Suggested worker count: hardware concurrency minus one, at least 0.
  [[nodiscard]] static std::size_t default_workers() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gridcast
