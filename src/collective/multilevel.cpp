#include "collective/multilevel.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "support/error.hpp"

namespace gridcast::collective {

SiteMap sites_by_latency(const topology::Grid& grid, Time site_threshold) {
  const auto n = static_cast<ClusterId>(grid.cluster_count());
  SiteMap site(n, UINT32_MAX);
  std::uint32_t next_site = 0;
  for (ClusterId c = 0; c < n; ++c) {
    if (site[c] != UINT32_MAX) continue;
    site[c] = next_site;
    for (ClusterId d = static_cast<ClusterId>(c + 1); d < n; ++d) {
      if (site[d] != UINT32_MAX) continue;
      if (grid.link(c, d).L < site_threshold) site[d] = next_site;
    }
    ++next_site;
  }
  return site;
}

BcastResult run_multilevel_bcast(sim::Network& net, ClusterId root_cluster,
                                 const SiteMap& sites, Bytes m) {
  const auto& grid = net.grid();
  const auto n = static_cast<ClusterId>(grid.cluster_count());
  GRIDCAST_ASSERT(root_cluster < n, "root cluster out of range");
  GRIDCAST_ASSERT(sites.size() == n, "site map size mismatch");

  // Gateways: the lowest-id cluster of each site, except the root's site
  // whose gateway is the root itself.
  std::vector<ClusterId> gateway_of_site;
  std::vector<std::vector<ClusterId>> clusters_of_site;
  for (ClusterId c = 0; c < n; ++c) {
    const std::uint32_t s = sites[c];
    if (s >= clusters_of_site.size()) {
      clusters_of_site.resize(s + 1);
      gateway_of_site.resize(s + 1, kNoCluster);
    }
    clusters_of_site[s].push_back(c);
    if (gateway_of_site[s] == kNoCluster) gateway_of_site[s] = c;
  }
  gateway_of_site[sites[root_cluster]] = root_cluster;

  struct State {
    std::vector<Time> delivered;
    std::uint64_t base_messages;
  };
  auto st = std::make_shared<State>();
  st->delivered.assign(net.ranks(), 0.0);
  st->base_messages = net.messages();

  const auto coord = [&grid](ClusterId c) { return grid.global_rank(c, 0); };

  // Level 2: local binomial once a coordinator holds the payload.
  const auto local_tree = [&net, &grid, st, m](ClusterId c) {
    const std::uint32_t size = grid.cluster(c).size();
    if (size <= 1) return;
    struct Issue {
      sim::Network& net;
      std::shared_ptr<State> st;
      std::vector<NodeId> ranks;
      Bytes m;
      void go(std::size_t lo, std::size_t hi,
              const std::shared_ptr<Issue>& self) {
        const std::size_t cnt = hi - lo;
        if (cnt <= 1) return;
        const std::size_t child_side = cnt / 2;
        const std::size_t mid = lo + (cnt - child_side);
        net.send(ranks[lo], ranks[mid], m, [self, mid, hi](Time t) {
          self->st->delivered[self->ranks[mid]] = t;
          self->go(mid, hi, self);
        });
        go(lo, mid, self);
      }
    };
    std::vector<NodeId> local;
    local.reserve(size);
    for (NodeId l = 0; l < size; ++l) local.push_back(grid.global_rank(c, l));
    auto issue = std::make_shared<Issue>(Issue{net, st, std::move(local), m});
    issue->go(0, issue->ranks.size(), issue);
  };

  // Level 1: a gateway flat-trees to its site's other coordinators, then
  // broadcasts locally; plain coordinators go straight to level 2.
  const auto on_coordinator =
      std::make_shared<std::function<void(ClusterId, Time)>>();
  *on_coordinator = [&net, st, coord, &clusters_of_site, &sites,
                     gateway_of_site, local_tree, on_coordinator,
                     m](ClusterId c, Time t) {
    const NodeId me = coord(c);
    st->delivered[me] = t;
    if (gateway_of_site[sites[c]] == c) {
      for (const ClusterId d : clusters_of_site[sites[c]]) {
        if (d == c) continue;
        net.send(me, coord(d), m, [on_coordinator, d](Time tt) {
          (*on_coordinator)(d, tt);
        });
      }
    }
    local_tree(c);
  };

  // Level 0: the root flat-trees to every remote site's gateway.
  const NodeId root_rank = coord(root_cluster);
  st->delivered[root_rank] = net.engine().now();
  for (std::uint32_t s = 0; s < gateway_of_site.size(); ++s) {
    if (gateway_of_site[s] == kNoCluster || s == sites[root_cluster])
      continue;
    const ClusterId gw = gateway_of_site[s];
    net.send(root_rank, coord(gw), m,
             [on_coordinator, gw](Time t) { (*on_coordinator)(gw, t); });
  }
  // The root is its own site's gateway: serve its site and its cluster.
  (*on_coordinator)(root_cluster, net.engine().now());

  net.engine().run();
  BcastResult r;
  r.delivered = st->delivered;
  r.completion =
      *std::max_element(r.delivered.begin(), r.delivered.end());
  r.messages = net.messages() - st->base_messages;
  return r;
}

}  // namespace gridcast::collective
