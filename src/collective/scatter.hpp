#pragma once

#include <vector>

#include "sched/scheduler_entry.hpp"
#include "sim/network.hpp"
#include "support/types.hpp"

/// Scatter: the paper's "future work" pattern, grid-aware vs naive.
///
/// In a scatter, the root holds one distinct `block` of bytes per rank.
/// The naive algorithm sends every block point-to-point from the root; the
/// grid-aware algorithm forwards each remote cluster's blocks to its
/// coordinator as one aggregated message (one WAN crossing per cluster)
/// and lets the coordinator distribute locally — the same inter/intra
/// split the broadcast heuristics exploit.
namespace gridcast::collective {

struct ScatterResult {
  /// Delivery time of each rank's block, indexed by global rank.
  std::vector<Time> delivered;
  Time completion = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t wan_messages = 0;  ///< messages that crossed clusters
  Bytes bytes = 0;                 ///< total payload bytes moved
  Bytes wan_bytes = 0;             ///< bytes that crossed clusters
};

/// Root coordinator of `root_cluster` sends each rank its block directly.
[[nodiscard]] ScatterResult run_naive_scatter(sim::Network& net,
                                              ClusterId root_cluster,
                                              Bytes block);

/// Aggregated two-level scatter (see header comment).  Remote clusters
/// receive `size * block` bytes at the coordinator, then distribute.
[[nodiscard]] ScatterResult run_hierarchical_scatter(sim::Network& net,
                                                     ClusterId root_cluster,
                                                     Bytes block);

/// Scheduler-driven form: the root's WAN injections are sequenced by when
/// each cluster is reached in `sched`'s broadcast order, so the scatter
/// reuses the same grid knowledge the broadcast heuristics encode (urgent
/// clusters first) instead of the size-sorted default above.
[[nodiscard]] ScatterResult run_hierarchical_scatter(
    sim::Network& net, ClusterId root_cluster, Bytes block,
    const sched::SchedulerEntry& sched);

/// The WAN injection sequence `sched` implies for a scatter from
/// `root_cluster`: the receiver appearance order of its broadcast schedule
/// over the instance the grid poses at `block` bytes.  Shared by the
/// executing backend (run_hierarchical_scatter) and the analytic predictor
/// (plogp::predict_hierarchical_scatter), so both sequence the identical
/// schedule.  Throws LogicError when `sched` cannot schedule the instance.
[[nodiscard]] std::vector<ClusterId> scatter_wan_order(
    const topology::Grid& grid, ClusterId root_cluster, Bytes block,
    const sched::SchedulerEntry& sched);

}  // namespace gridcast::collective
