#pragma once

#include <vector>

#include "sched/schedule.hpp"
#include "sched/scheduler_entry.hpp"
#include "sim/network.hpp"
#include "support/types.hpp"

/// Executable broadcast algorithms (message-level, on the simulator).
///
/// These run the *actual* communication pattern — every point-to-point
/// message is simulated — and therefore "measure" completion the way the
/// paper's Section 7 measured its 88-machine runs.  The analytic
/// predictors in plogp/collective_predict.hpp are the Fig. 5 counterpart.
namespace gridcast::collective {

/// Outcome of one executed broadcast.
struct BcastResult {
  /// Delivery time per participating rank, indexed like the `ranks`
  /// argument (the root's entry is its start time).
  std::vector<Time> delivered;
  Time completion = 0.0;         ///< max over delivered
  std::uint64_t messages = 0;    ///< point-to-point sends executed
};

/// Binomial-tree broadcast over `ranks` (ranks[0] is the tree root), the
/// MPI default and the paper's intra-cluster strategy.  The tree shape
/// matches plogp::predict_binomial_bcast exactly.
[[nodiscard]] BcastResult run_binomial_bcast(sim::Network& net,
                                             const std::vector<NodeId>& ranks,
                                             Bytes m);

/// Flat-tree broadcast over `ranks` (root sends to each in order).
[[nodiscard]] BcastResult run_flat_bcast(sim::Network& net,
                                         const std::vector<NodeId>& ranks,
                                         Bytes m);

/// Chain broadcast (rank i forwards to rank i+1).
[[nodiscard]] BcastResult run_chain_bcast(sim::Network& net,
                                          const std::vector<NodeId>& ranks,
                                          Bytes m);

/// Segmented-chain (pipelined) broadcast.
[[nodiscard]] BcastResult run_segmented_chain_bcast(
    sim::Network& net, const std::vector<NodeId>& ranks, Bytes m,
    Bytes segment);

/// Coordinator NIC policy for the two-level broadcast (DESIGN.md §4.4).
enum class IntraOrder : std::uint8_t {
  /// Relay to other clusters first, local broadcast after the last
  /// injection — MagPIe semantics and the paper's cost model.
  kRelayFirst,
  /// Start the local broadcast before relaying (ablation: improves the
  /// local cluster, delays everyone downstream).
  kLocalFirst,
};

/// The paper's grid broadcast: coordinators relay the message between
/// clusters following `order` (a heuristic's SendOrder), then each cluster
/// runs an internal binomial broadcast; `intra_order` decides whether the
/// coordinator's NIC serves the relays or the local tree first.  Returns
/// delivery times for **all** grid ranks (indexed by global rank).
[[nodiscard]] BcastResult run_hierarchical_bcast(
    sim::Network& net, ClusterId root_cluster, const sched::SendOrder& order,
    Bytes m, IntraOrder intra_order = IntraOrder::kRelayFirst);

/// Scheduler-driven form: derives the instance the grid poses for an
/// m-byte broadcast, asks `sched` for the order (after `can_schedule`),
/// and executes it.  This is the one-call path from a registry entry
/// (`registry().make("ECEF-LAT")`) to a measured completion time.
[[nodiscard]] BcastResult run_hierarchical_bcast(
    sim::Network& net, ClusterId root_cluster,
    const sched::SchedulerEntry& sched, Bytes m,
    IntraOrder intra_order = IntraOrder::kRelayFirst);

/// As above, but with a caller-supplied runtime info (root cluster and
/// message size come from it).  Sweep harnesses derive one instance per
/// message size through `exp::InstanceCache` and race every competitor
/// over it, instead of paying the O(clusters²) derivation per cell.
[[nodiscard]] BcastResult run_hierarchical_bcast(
    sim::Network& net, const sched::SchedulerEntry& sched,
    const sched::SchedulerRuntimeInfo& info,
    IntraOrder intra_order = IntraOrder::kRelayFirst);

/// The "Default LAM" comparator of Fig. 6: a grid-unaware binomial tree
/// over all ranks in global rank order, rooted at `root_cluster`'s
/// coordinator.
[[nodiscard]] BcastResult run_grid_unaware_binomial(sim::Network& net,
                                                    ClusterId root_cluster,
                                                    Bytes m);

}  // namespace gridcast::collective
