#include "collective/alltoall.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"

namespace gridcast::collective {

namespace {

struct State {
  std::vector<Time> completed;
  std::vector<std::uint32_t> pending;  ///< inbound events still expected
  std::uint64_t base_messages = 0;
  std::uint64_t base_wan_messages = 0;
  Bytes base_bytes = 0;
  Bytes base_wan_bytes = 0;

  void arrived(NodeId dst, Time t) {
    GRIDCAST_ASSERT(pending[dst] > 0, "unexpected arrival");
    completed[dst] = std::max(completed[dst], t);
    --pending[dst];
  }
};

AlltoallResult collect(sim::Network& net, const std::shared_ptr<State>& st) {
  net.engine().run();
  for (const auto p : st->pending)
    GRIDCAST_ASSERT(p == 0, "alltoall finished with missing blocks");
  AlltoallResult r;
  r.completed = st->completed;
  r.completion =
      *std::max_element(r.completed.begin(), r.completed.end());
  r.messages = net.messages() - st->base_messages;
  r.wan_messages = net.inter_cluster_messages() - st->base_wan_messages;
  r.bytes = net.bytes_sent() - st->base_bytes;
  r.wan_bytes = net.inter_cluster_bytes() - st->base_wan_bytes;
  return r;
}

std::shared_ptr<State> make_state(sim::Network& net) {
  auto st = std::make_shared<State>();
  st->completed.assign(net.ranks(), 0.0);
  st->pending.assign(net.ranks(), 0);
  st->base_messages = net.messages();
  st->base_wan_messages = net.inter_cluster_messages();
  st->base_bytes = net.bytes_sent();
  st->base_wan_bytes = net.inter_cluster_bytes();
  return st;
}

}  // namespace

AlltoallResult run_naive_alltoall(sim::Network& net, Bytes block) {
  const auto n = net.ranks();
  GRIDCAST_ASSERT(n >= 1, "empty network");
  auto st = make_state(net);
  // Every rank expects one block from each peer.
  for (NodeId r = 0; r < n; ++r) st->pending[r] = n - 1;
  if (n == 1) st->completed[0] = net.engine().now();

  for (NodeId src = 0; src < n; ++src) {
    for (std::uint32_t k = 1; k < n; ++k) {
      const NodeId dst = static_cast<NodeId>((src + k) % n);
      net.send(src, dst, block, [st, dst](Time t) { st->arrived(dst, t); });
    }
  }
  return collect(net, st);
}

namespace {

/// Shared body of the coordinator-routed exchange.  `dest_order[c]` fixes
/// the sequence in which coordinator c injects its per-cluster aggregates.
AlltoallResult hierarchical_alltoall_over(
    sim::Network& net, Bytes block,
    const std::vector<std::vector<ClusterId>>& dest_order) {
  const auto& grid = net.grid();
  const auto n = net.ranks();
  const auto n_clusters = static_cast<ClusterId>(grid.cluster_count());
  auto st = make_state(net);

  const auto coord = [&grid](ClusterId c) { return grid.global_rank(c, 0); };

  // Expected inbound events per rank: one direct message per intra-cluster
  // peer, plus one coordinator delivery per remote cluster (coordinators
  // receive the remote-cluster aggregate itself instead).
  for (NodeId r = 0; r < n; ++r) {
    const auto [c, l] = grid.locate(r);
    st->pending[r] = grid.cluster(c).size() - 1 + (n_clusters - 1);
  }
  if (n == 1) st->completed[0] = net.engine().now();

  // Phase: intra-cluster pairs exchange directly (round-robin).
  for (ClusterId c = 0; c < n_clusters; ++c) {
    const std::uint32_t size = grid.cluster(c).size();
    for (NodeId a = 0; a < size; ++a) {
      const NodeId src = grid.global_rank(c, a);
      for (std::uint32_t k = 1; k < size; ++k) {
        const NodeId dst = grid.global_rank(c, (a + k) % size);
        net.send(src, dst, block, [st, dst](Time t) { st->arrived(dst, t); });
      }
    }
  }

  // Phase: gather remote-bound blocks at the coordinator.
  // Coordinator c owes each remote cluster d an aggregate of
  // size_c * size_d blocks; it may ship the (c, d) aggregate once all local
  // contributions are in (its own are local from the start).
  auto gathered = std::make_shared<std::vector<std::uint32_t>>();
  gathered->assign(n_clusters, 0);

  const auto maybe_exchange = [&net, &grid, st, coord, gathered, block,
                               &dest_order](ClusterId c) {
    if ((*gathered)[c] < grid.cluster(c).size() - 1) return;
    (*gathered)[c] = UINT32_MAX;  // fire once
    const std::uint32_t size_c = grid.cluster(c).size();
    for (const ClusterId d : dest_order[c]) {
      if (d == c) continue;
      const std::uint32_t size_d = grid.cluster(d).size();
      const Bytes aggregate =
          static_cast<Bytes>(size_c) * static_cast<Bytes>(size_d) * block;
      net.send(coord(c), coord(d), aggregate,
               [&net, &grid, st, coord, block, c, d, size_c](Time t) {
                 // Deliver: coordinator d satisfies itself, forwards to the
                 // other locals the blocks cluster c addressed to them.
                 const NodeId me = coord(d);
                 st->arrived(me, t);
                 const std::uint32_t size_d2 = grid.cluster(d).size();
                 for (NodeId l = 1; l < size_d2; ++l) {
                   const NodeId dst = grid.global_rank(d, l);
                   net.send(me, dst,
                            static_cast<Bytes>(size_c) * block,
                            [st, dst](Time tt) { st->arrived(dst, tt); });
                 }
               });
    }
  };

  for (ClusterId c = 0; c < n_clusters; ++c) {
    const std::uint32_t size = grid.cluster(c).size();
    const Bytes remote_blocks =
        static_cast<Bytes>(n - size) * block;  // blocks bound off-cluster
    if (size == 1 || remote_blocks == 0) {
      maybe_exchange(c);  // nothing to gather
      continue;
    }
    for (NodeId l = 1; l < size; ++l) {
      const NodeId src = grid.global_rank(c, l);
      // maybe_exchange is captured by reference: it (and gathered) outlive
      // every delivery, because collect() below drains the engine before
      // this frame returns.  Copying it would exceed the inline handler
      // capacity.
      net.send(src, coord(c), remote_blocks,
               [&maybe_exchange, gathered, c](Time) {
                 ++(*gathered)[c];
                 maybe_exchange(c);
               });
    }
  }
  if (n_clusters == 1) {
    // Degenerate grid: the intra exchange above is the whole operation.
  }
  return collect(net, st);
}

}  // namespace

AlltoallResult run_hierarchical_alltoall(sim::Network& net, Bytes block) {
  const auto& grid = net.grid();
  const auto n_clusters = static_cast<ClusterId>(grid.cluster_count());
  // Default sequence: ascending cluster id (the classic exchange).
  std::vector<std::vector<ClusterId>> dest_order(n_clusters);
  for (ClusterId c = 0; c < n_clusters; ++c)
    for (ClusterId d = 0; d < n_clusters; ++d)
      if (d != c) dest_order[c].push_back(d);
  return hierarchical_alltoall_over(net, block, dest_order);
}

std::vector<std::vector<ClusterId>> alltoall_dest_order(
    const topology::Grid& grid, Bytes block,
    const sched::SchedulerEntry& sched) {
  const auto n_clusters = static_cast<ClusterId>(grid.cluster_count());
  std::vector<std::vector<ClusterId>> dest_order(n_clusters);
  for (ClusterId c = 0; c < n_clusters; ++c) {
    if (n_clusters < 2) break;
    const sched::Instance inst = sched::Instance::from_grid(grid, c, block);
    const sched::SchedulerRuntimeInfo info(inst, block);
    GRIDCAST_ASSERT(sched.can_schedule(info),
                    "scheduler cannot handle this instance");
    // Receiver appearance order of a broadcast rooted at c becomes c's
    // injection sequence.
    for (const auto& [s, r] : sched.order(info)) dest_order[c].push_back(r);
  }
  return dest_order;
}

AlltoallResult run_hierarchical_alltoall(sim::Network& net, Bytes block,
                                         const sched::SchedulerEntry& sched) {
  return hierarchical_alltoall_over(net, block,
                                    alltoall_dest_order(net.grid(), block, sched));
}

}  // namespace gridcast::collective
