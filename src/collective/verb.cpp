#include "collective/verb.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "support/error.hpp"

namespace gridcast::collective {

std::string_view verb_name(Verb v) noexcept {
  switch (v) {
    case Verb::kBcast: return "bcast";
    case Verb::kScatter: return "scatter";
    case Verb::kAlltoall: return "alltoall";
  }
  return "?";
}

Verb to_verb(std::string_view name) {
  std::string folded(name);
  std::transform(folded.begin(), folded.end(), folded.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  for (const Verb v : kAllVerbs)
    if (folded == verb_name(v)) return v;
  throw InvalidInput("unknown verb '" + std::string(name) +
                     "' (valid: bcast, scatter, alltoall)");
}

}  // namespace gridcast::collective
