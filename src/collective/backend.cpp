#include "collective/backend.hpp"

#include <algorithm>
#include <cctype>

#include "collective/backends.hpp"
#include "support/error.hpp"

namespace gridcast::collective {

namespace {

std::string fold(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::string_view Backend::baseline_series() const noexcept { return {}; }

void Backend::unsupported(Verb v) const {
  throw InvalidInput("backend '" + std::string(name()) +
                     "' does not support " + std::string(verb_name(v)) +
                     " (query supports() before calling)");
}

CollectiveResult Backend::baseline_bcast(ClusterId, Bytes,
                                         std::uint64_t) const {
  throw InvalidInput("backend '" + std::string(name()) +
                     "' has no baseline comparator series");
}

CollectiveResult Backend::scatter(const sched::SchedulerEntry&, ClusterId,
                                  Bytes, std::uint64_t) const {
  unsupported(Verb::kScatter);
}

CollectiveResult Backend::alltoall(const sched::SchedulerEntry&, Bytes,
                                   std::uint64_t) const {
  unsupported(Verb::kAlltoall);
}

void BackendRegistry::add(std::string name, std::string description,
                          Factory factory, std::vector<std::string> aliases) {
  if (name.empty()) throw InvalidInput("backend name must be non-empty");
  if (fold(name) != name)
    throw InvalidInput("backend name '" + name +
                       "' must be lowercase (lookups are case-insensitive)");
  if (!factory) throw InvalidInput("backend factory must be callable");
  std::lock_guard lk(mu_);
  if (factories_.contains(name) || aliases_.contains(name))
    throw InvalidInput("backend '" + name + "' is already registered");
  for (std::size_t i = 0; i < aliases.size(); ++i) {
    aliases[i] = fold(aliases[i]);
    if (aliases_.contains(aliases[i]) || factories_.contains(aliases[i]))
      throw InvalidInput("backend alias '" + aliases[i] +
                         "' is already registered");
    for (std::size_t j = 0; j < i; ++j)
      if (aliases[j] == aliases[i])
        throw InvalidInput("backend alias '" + aliases[i] +
                           "' appears twice in one registration");
  }
  alias_lists_.emplace(name, aliases);
  for (auto& a : aliases) aliases_.emplace(std::move(a), name);
  descriptions_.emplace(name, std::move(description));
  order_.push_back(name);
  factories_.emplace(std::move(name), std::move(factory));
}

const std::string* BackendRegistry::canonical(std::string_view name) const {
  const std::string folded = fold(name);
  if (const auto it = factories_.find(folded); it != factories_.end())
    return &it->first;
  if (const auto al = aliases_.find(folded); al != aliases_.end())
    return &al->second;
  return nullptr;
}

std::string BackendRegistry::unknown_message(std::string_view name) const {
  std::string known;
  for (const auto& n : order_) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return "unknown backend '" + std::string(name) + "' (registered: " + known +
         ")";
}

BackendPtr BackendRegistry::make(std::string_view name,
                                 const BackendOptions& opts) const {
  // The factory runs outside the lock, like SchedulerRegistry::make — a
  // composite backend resolving delegates through the registry from its
  // factory must not self-deadlock.
  Factory factory;
  std::string error;
  {
    std::lock_guard lk(mu_);
    if (const std::string* c = canonical(name))
      factory = factories_.find(*c)->second;
    else
      error = unknown_message(name);
  }
  if (factory) return factory(opts);
  throw InvalidInput(error);
}

std::string BackendRegistry::resolve(std::string_view name) const {
  std::lock_guard lk(mu_);
  if (const std::string* c = canonical(name)) return *c;
  throw InvalidInput(unknown_message(name));
}

bool BackendRegistry::contains(std::string_view name) const {
  std::lock_guard lk(mu_);
  return canonical(name) != nullptr;
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard lk(mu_);
  return order_;
}

std::vector<std::string> BackendRegistry::aliases_of(
    std::string_view name) const {
  std::lock_guard lk(mu_);
  const std::string* c = canonical(name);
  if (c == nullptr) return {};
  return alias_lists_.find(*c)->second;
}

std::string BackendRegistry::description_of(std::string_view name) const {
  std::lock_guard lk(mu_);
  const std::string* c = canonical(name);
  if (c == nullptr) return {};
  return descriptions_.find(*c)->second;
}

BackendRegistry& backend_registry() {
  static BackendRegistry* reg = [] {
    auto* r = new BackendRegistry();
    r->add(
        "sim",
        "discrete-event simulator: executes every point-to-point message "
        "(bcast/scatter/alltoall, optional jitter; needs a grid)",
        [](const BackendOptions& o) -> BackendPtr {
          if (o.grid == nullptr)
            throw InvalidInput(
                "backend 'sim' executes on a concrete grid: "
                "BackendOptions::grid must be set");
          return std::make_shared<const SimBackend>(*o.grid, o.jitter);
        },
        {"measured", "simulator"});
    r->add(
        "plogp",
        "analytic pLogP cost model: times the schedule without executing "
        "messages (bcast/scatter/alltoall, deterministic; scatter and "
        "alltoall predictions need a grid)",
        [](const BackendOptions& o) -> BackendPtr {
          // Broadcast works instance-only; the grid, when given, enables
          // the closed-form scatter/alltoall predictions.
          return std::make_shared<const PlogpBackend>(o.grid);
        },
        {"predicted", "model", "analytic"});
    return r;
  }();
  return *reg;
}

}  // namespace gridcast::collective
