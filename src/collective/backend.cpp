#include "collective/backend.hpp"

#include "collective/backends.hpp"
#include "support/error.hpp"

namespace gridcast::collective {

std::string_view Backend::baseline_series() const noexcept { return {}; }

void Backend::unsupported(Verb v) const {
  throw InvalidInput("backend '" + std::string(name()) +
                     "' does not support " + std::string(verb_name(v)) +
                     " (query supports() before calling)");
}

CollectiveResult Backend::baseline_bcast(ClusterId, Bytes,
                                         std::uint64_t) const {
  throw InvalidInput("backend '" + std::string(name()) +
                     "' has no baseline comparator series");
}

CollectiveResult Backend::scatter(const sched::SchedulerEntry&, ClusterId,
                                  Bytes, std::uint64_t) const {
  unsupported(Verb::kScatter);
}

CollectiveResult Backend::alltoall(const sched::SchedulerEntry&, Bytes,
                                   std::uint64_t) const {
  unsupported(Verb::kAlltoall);
}

BackendRegistry::BackendRegistry()
    : reg_({.kind = "backend",
            .fold_canonical_lookup = true,
            .require_lowercase_canonical = true}) {}

void BackendRegistry::add(std::string name, std::string description,
                          Factory factory, std::vector<std::string> aliases) {
  reg_.add(std::move(name), std::move(factory), std::move(aliases),
           std::move(description));
}

BackendPtr BackendRegistry::make(std::string_view name,
                                 const BackendOptions& opts) const {
  // factory_for copies the factory out under the lock; invoking it here
  // keeps composite backends deadlock-free.
  return reg_.factory_for(name)(opts);
}

std::string BackendRegistry::resolve(std::string_view name) const {
  return reg_.resolve(name);
}

bool BackendRegistry::contains(std::string_view name) const {
  return reg_.contains(name);
}

std::vector<std::string> BackendRegistry::names() const {
  return reg_.names();
}

std::vector<std::string> BackendRegistry::aliases_of(
    std::string_view name) const {
  return reg_.aliases_of(name);
}

std::string BackendRegistry::description_of(std::string_view name) const {
  return reg_.description_of(name);
}

BackendRegistry& backend_registry() {
  static BackendRegistry* reg = [] {
    auto* r = new BackendRegistry();
    r->add(
        "sim",
        "discrete-event simulator: executes every point-to-point message "
        "(bcast/scatter/alltoall, optional jitter; needs a grid)",
        [](const BackendOptions& o) -> BackendPtr {
          if (o.grid == nullptr)
            throw InvalidInput(
                "backend 'sim' executes on a concrete grid: "
                "BackendOptions::grid must be set");
          return std::make_shared<const SimBackend>(*o.grid, o.jitter);
        },
        {"measured", "simulator"});
    r->add(
        "plogp",
        "analytic pLogP cost model: times the schedule without executing "
        "messages (bcast/scatter/alltoall, deterministic; scatter and "
        "alltoall predictions need a grid)",
        [](const BackendOptions& o) -> BackendPtr {
          // Broadcast works instance-only; the grid, when given, enables
          // the closed-form scatter/alltoall predictions.
          return std::make_shared<const PlogpBackend>(o.grid);
        },
        {"predicted", "model", "analytic"});
    return r;
  }();
  return *reg;
}

}  // namespace gridcast::collective
