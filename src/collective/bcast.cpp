#include "collective/bcast.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "support/error.hpp"

namespace gridcast::collective {

namespace {

/// Shared mutable state of one broadcast execution, kept alive by the
/// callbacks through a shared_ptr (the engine outlives this function's
/// stack frame only within run(), but callbacks capture by value).
struct BcastState {
  std::vector<Time> delivered;
  std::uint64_t base_messages = 0;
};

/// Recursive binomial issue over ranks[lo, hi); ranks[lo] holds the
/// payload *now* (the engine's current time).  Matches the analytic
/// predictor's split: the child handles floor(n/2) ranks, the holder keeps
/// the rest and keeps injecting.
void binomial_issue(sim::Network& net, const std::vector<NodeId>& ranks,
                    std::size_t lo, std::size_t hi, Bytes m,
                    const std::shared_ptr<BcastState>& st) {
  const std::size_t n = hi - lo;
  if (n <= 1) return;
  const std::size_t child_side = n / 2;
  const std::size_t mid = lo + (n - child_side);
  net.send(ranks[lo], ranks[mid], m, [&net, &ranks, lo = mid, hi, m, st](Time t) {
    st->delivered[lo] = t;
    binomial_issue(net, ranks, lo, hi, m, st);
  });
  binomial_issue(net, ranks, lo, mid, m, st);
}

BcastResult collect(sim::Network& net, const std::shared_ptr<BcastState>& st) {
  net.engine().run();
  BcastResult r;
  r.delivered = st->delivered;
  r.completion =
      r.delivered.empty()
          ? net.engine().now()
          : *std::max_element(r.delivered.begin(), r.delivered.end());
  r.messages = net.messages() - st->base_messages;
  return r;
}

std::shared_ptr<BcastState> make_state(sim::Network& net, std::size_t n) {
  auto st = std::make_shared<BcastState>();
  st->delivered.assign(n, 0.0);
  st->base_messages = net.messages();
  return st;
}

void check_ranks(const sim::Network& net, const std::vector<NodeId>& ranks) {
  GRIDCAST_ASSERT(!ranks.empty(), "broadcast over an empty rank set");
  for (const NodeId r : ranks)
    GRIDCAST_ASSERT(r < net.ranks(), "rank out of range");
}

}  // namespace

BcastResult run_binomial_bcast(sim::Network& net,
                               const std::vector<NodeId>& ranks, Bytes m) {
  check_ranks(net, ranks);
  auto st = make_state(net, ranks.size());
  st->delivered[0] = net.engine().now();
  binomial_issue(net, ranks, 0, ranks.size(), m, st);
  return collect(net, st);
}

BcastResult run_flat_bcast(sim::Network& net, const std::vector<NodeId>& ranks,
                           Bytes m) {
  check_ranks(net, ranks);
  auto st = make_state(net, ranks.size());
  st->delivered[0] = net.engine().now();
  for (std::size_t i = 1; i < ranks.size(); ++i)
    net.send(ranks[0], ranks[i], m, [st, i](Time t) { st->delivered[i] = t; });
  return collect(net, st);
}

BcastResult run_chain_bcast(sim::Network& net,
                            const std::vector<NodeId>& ranks, Bytes m) {
  check_ranks(net, ranks);
  auto st = make_state(net, ranks.size());
  st->delivered[0] = net.engine().now();

  // Forward handler declared recursively via a shared function object.
  auto forward = std::make_shared<std::function<void(std::size_t, Time)>>();
  *forward = [&net, &ranks, m, st, forward](std::size_t i, Time t) {
    st->delivered[i] = t;
    if (i + 1 < ranks.size())
      net.send(ranks[i], ranks[i + 1], m,
               [forward, i](Time tt) { (*forward)(i + 1, tt); });
  };
  (*forward)(0, net.engine().now());
  return collect(net, st);
}

BcastResult run_segmented_chain_bcast(sim::Network& net,
                                      const std::vector<NodeId>& ranks,
                                      Bytes m, Bytes segment) {
  check_ranks(net, ranks);
  GRIDCAST_ASSERT(segment > 0, "segment size must be positive");
  const Bytes seg = std::min(segment, m > 0 ? m : Bytes{1});
  const std::uint64_t full = m / seg;
  const Bytes tail = m % seg;
  const std::uint64_t segments = full + (tail > 0 ? 1 : 0);
  if (segments <= 1 || ranks.size() == 1) return run_chain_bcast(net, ranks, m);

  auto st = make_state(net, ranks.size());
  st->delivered[0] = net.engine().now();
  auto remaining =
      std::make_shared<std::vector<std::uint64_t>>(ranks.size(), segments);
  (*remaining)[0] = 0;

  auto forward = std::make_shared<std::function<void(std::size_t, Bytes, Time)>>();
  *forward = [&net, &ranks, st, remaining, forward](std::size_t i, Bytes sz,
                                                    Time t) {
    if (--(*remaining)[i] == 0) st->delivered[i] = t;
    if (i + 1 < ranks.size())
      net.send(ranks[i], ranks[i + 1], sz,
               [forward, i, sz](Time tt) { (*forward)(i + 1, sz, tt); });
  };
  // Root streams all segments to the next hop; its NIC pipelines them.
  for (std::uint64_t s = 0; s < segments; ++s) {
    const Bytes sz = (s == segments - 1 && tail > 0) ? tail : seg;
    net.send(ranks[0], ranks[1], sz,
             [forward, sz](Time tt) { (*forward)(1, sz, tt); });
  }
  return collect(net, st);
}

namespace {

/// Binomial issue over explicit global ranks, recording deliveries by
/// global rank (unlike binomial_issue, which records by position).
void binomial_issue_global(sim::Network& net, std::vector<NodeId> ranks,
                           Bytes m, const std::shared_ptr<BcastState>& st) {
  struct Issue {
    sim::Network& net;
    std::shared_ptr<BcastState> st;
    std::vector<NodeId> ranks;
    Bytes m;
    void go(std::size_t lo, std::size_t hi,
            const std::shared_ptr<Issue>& self) {
      const std::size_t n = hi - lo;
      if (n <= 1) return;
      const std::size_t child_side = n / 2;
      const std::size_t mid = lo + (n - child_side);
      net.send(ranks[lo], ranks[mid], m, [self, mid, hi](Time t) {
        self->st->delivered[self->ranks[mid]] = t;
        self->go(mid, hi, self);
      });
      go(lo, mid, self);
    }
  };
  auto issue = std::make_shared<Issue>(Issue{net, st, std::move(ranks), m});
  issue->go(0, issue->ranks.size(), issue);
}

}  // namespace

BcastResult run_hierarchical_bcast(sim::Network& net, ClusterId root_cluster,
                                   const sched::SendOrder& order, Bytes m,
                                   IntraOrder intra_order) {
  const auto& grid = net.grid();
  const auto n_clusters = grid.cluster_count();
  GRIDCAST_ASSERT(root_cluster < n_clusters, "root cluster out of range");
  GRIDCAST_ASSERT(order.size() == n_clusters - 1,
                  "send order must cover every non-root cluster");

  auto st = make_state(net, net.ranks());

  // Per-cluster outgoing coordinator sends, in schedule order.
  std::vector<std::vector<ClusterId>> outgoing(n_clusters);
  for (const auto& [s, r] : order) {
    GRIDCAST_ASSERT(s < n_clusters && r < n_clusters, "bad pair in order");
    outgoing[s].push_back(r);
  }

  const auto coord = [&grid](ClusterId c) { return grid.global_rank(c, 0); };

  // When cluster c's coordinator holds the payload: issue its relays and
  // its local tree; the NIC serializes in issue order, so `intra_order`
  // reduces to which group of sends is issued first.
  auto on_receive = std::make_shared<std::function<void(ClusterId, Time)>>();
  *on_receive = [&net, &grid, st, &outgoing, coord, on_receive, m,
                 intra_order](ClusterId c, Time t) {
    const NodeId me = coord(c);
    st->delivered[me] = t;

    const auto relay = [&] {
      for (const ClusterId dst : outgoing[c])
        net.send(me, coord(dst), m,
                 [on_receive, dst](Time tt) { (*on_receive)(dst, tt); });
    };
    const auto local_tree = [&] {
      const std::uint32_t size = grid.cluster(c).size();
      if (size <= 1) return;
      std::vector<NodeId> local;
      local.reserve(size);
      for (NodeId l = 0; l < size; ++l)
        local.push_back(grid.global_rank(c, l));
      binomial_issue_global(net, std::move(local), m, st);
    };

    if (intra_order == IntraOrder::kRelayFirst) {
      relay();
      local_tree();
    } else {
      local_tree();
      relay();
    }
  };

  (*on_receive)(root_cluster, net.engine().now());
  return collect(net, st);
}

BcastResult run_hierarchical_bcast(sim::Network& net, ClusterId root_cluster,
                                   const sched::SchedulerEntry& sched, Bytes m,
                                   IntraOrder intra_order) {
  const sched::Instance inst =
      sched::Instance::from_grid(net.grid(), root_cluster, m);
  return run_hierarchical_bcast(net, sched, sched::SchedulerRuntimeInfo(inst, m),
                                intra_order);
}

BcastResult run_hierarchical_bcast(sim::Network& net,
                                   const sched::SchedulerEntry& sched,
                                   const sched::SchedulerRuntimeInfo& info,
                                   IntraOrder intra_order) {
  GRIDCAST_ASSERT(info.message_size() > 0,
                  "runtime info must carry the message size");
  GRIDCAST_ASSERT(sched.can_schedule(info),
                  "scheduler cannot handle this instance");
  return run_hierarchical_bcast(net, info.instance().root(),
                                sched.order(info), info.message_size(),
                                intra_order);
}

BcastResult run_grid_unaware_binomial(sim::Network& net,
                                      ClusterId root_cluster, Bytes m) {
  const auto& grid = net.grid();
  std::vector<NodeId> ranks;
  ranks.reserve(net.ranks());
  const NodeId root = grid.global_rank(root_cluster, 0);
  ranks.push_back(root);
  for (NodeId r = 0; r < net.ranks(); ++r)
    if (r != root) ranks.push_back(r);
  return run_binomial_bcast(net, ranks, m);
}

}  // namespace gridcast::collective
