#pragma once

#include <cstdint>
#include <string_view>

/// The collective verb vocabulary, shared by every layer that names one.
///
/// One `to_verb`/`verb_name` pair serves the CLI (`--verb=...`), the
/// BenchReport JSON grammar (the `"verb"` key) and backend error messages,
/// so the spelling of a verb — and the one-line diagnostic for an unknown
/// one — exists in exactly one place instead of per-site string switches.
namespace gridcast::collective {

/// The collective operations a backend may implement.
enum class Verb : std::uint8_t { kBcast, kScatter, kAlltoall };

/// Every verb, in declaration order (for capability tables and sweeps
/// over the vocabulary).
inline constexpr Verb kAllVerbs[] = {Verb::kBcast, Verb::kScatter,
                                     Verb::kAlltoall};

/// Canonical spelling: "bcast", "scatter", "alltoall".
[[nodiscard]] std::string_view verb_name(Verb v) noexcept;

/// Parse a verb name (case-insensitive).  Throws InvalidInput with the
/// one-line diagnostic "unknown verb 'x' (valid: bcast, scatter,
/// alltoall)" — the CLI and the strict report parser both surface it
/// verbatim.
[[nodiscard]] Verb to_verb(std::string_view name);

}  // namespace gridcast::collective
