#pragma once

#include <vector>

#include "sched/scheduler_entry.hpp"
#include "sim/network.hpp"
#include "support/types.hpp"

/// All-to-all: the second "future work" pattern.
///
/// Every rank owes a distinct `block` of bytes to every other rank.  The
/// naive personalized exchange sends all N·(N−1) blocks point-to-point —
/// each WAN link carries size_a · size_b separate small messages.  The
/// grid-aware variant routes cross-cluster traffic through coordinators:
///   1. gather: each rank ships its remote-bound blocks to its coordinator
///      (one local message per rank),
///   2. exchange: coordinator c sends coordinator d one aggregate of
///      size_c · size_d blocks (one WAN message per cluster pair),
///   3. deliver: coordinator d forwards to each local rank the blocks
///      addressed to it (one local message per rank per source cluster).
/// Intra-cluster pairs always exchange directly.
namespace gridcast::collective {

struct AlltoallResult {
  /// Per destination rank: the time its last inbound block arrived.
  std::vector<Time> completed;
  Time completion = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t wan_messages = 0;  ///< messages that crossed clusters
  Bytes bytes = 0;
  Bytes wan_bytes = 0;             ///< bytes that crossed clusters
};

/// Direct personalized exchange; rank r issues sends to r+1, r+2, ...
/// (rotated start to avoid hammering rank 0 first — the classic
/// round-robin schedule).
[[nodiscard]] AlltoallResult run_naive_alltoall(sim::Network& net,
                                                Bytes block);

/// Coordinator-routed exchange (see header comment).
[[nodiscard]] AlltoallResult run_hierarchical_alltoall(sim::Network& net,
                                                       Bytes block);

/// Scheduler-driven form: each coordinator sequences its outgoing
/// aggregates by the order `sched` would reach the other clusters in a
/// broadcast rooted at itself (slow links first / last per the entry's
/// policy), instead of ascending cluster id.
[[nodiscard]] AlltoallResult run_hierarchical_alltoall(
    sim::Network& net, Bytes block, const sched::SchedulerEntry& sched);

/// The per-coordinator aggregate injection sequences `sched` implies:
/// `result[c]` is the receiver appearance order of a broadcast rooted at
/// cluster c (empty sequences for grids with fewer than two clusters).
/// Shared by the executing backend (run_hierarchical_alltoall) and the
/// analytic predictor (plogp::predict_hierarchical_alltoall).  Throws
/// LogicError when `sched` cannot schedule one of the instances.
[[nodiscard]] std::vector<std::vector<ClusterId>> alltoall_dest_order(
    const topology::Grid& grid, Bytes block,
    const sched::SchedulerEntry& sched);

}  // namespace gridcast::collective
