#pragma once

#include "collective/backend.hpp"

/// The two built-in collective backends.
///
/// Normal code should not construct these directly; go through
/// `backend_registry().make("sim" | "plogp", opts)` so the execution
/// target stays a runtime string — that is what lets `gridcast_race
/// --backend=...` and the sweep harnesses swap predictor for executor
/// without a mode fork.  The concrete classes are exposed for library
/// callers that already hold a grid and want a backend without registry
/// indirection (and for the parity tests).
namespace gridcast::collective {

/// Message-level discrete-event execution (the Fig. 6 "measured" path):
/// every point-to-point send of the collective is simulated on a fresh
/// `sim::Network` per call, seeded by the caller, so concurrent sweep
/// cells never share simulator state.
class SimBackend final : public Backend {
 public:
  /// The backend only references the grid; it must outlive the backend.
  explicit SimBackend(const topology::Grid& grid,
                      sim::JitterConfig jitter = {});
  explicit SimBackend(topology::Grid&&, sim::JitterConfig = {}) = delete;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sim";
  }
  [[nodiscard]] std::string_view mode_label() const noexcept override {
    return "measured";
  }
  [[nodiscard]] bool supports(Verb v) const noexcept override;
  [[nodiscard]] bool is_deterministic() const noexcept override {
    return jitter_.frac == 0.0;
  }
  [[nodiscard]] bool instance_only() const noexcept override { return false; }
  [[nodiscard]] std::string_view baseline_series() const noexcept override {
    return "DefaultLAM";
  }

  [[nodiscard]] const topology::Grid& grid() const noexcept { return *grid_; }

  [[nodiscard]] CollectiveResult bcast(const sched::SchedulerEntry& sched,
                                       const sched::SchedulerRuntimeInfo& info,
                                       std::uint64_t seed) const override;
  /// The grid-unaware binomial tree the paper labels "Default LAM".
  [[nodiscard]] CollectiveResult baseline_bcast(
      ClusterId root_cluster, Bytes m, std::uint64_t seed) const override;
  [[nodiscard]] CollectiveResult scatter(const sched::SchedulerEntry& sched,
                                         ClusterId root_cluster, Bytes block,
                                         std::uint64_t seed) const override;
  [[nodiscard]] CollectiveResult alltoall(const sched::SchedulerEntry& sched,
                                          Bytes block,
                                          std::uint64_t seed) const override;

 private:
  const topology::Grid* grid_;
  sim::JitterConfig jitter_;
};

/// Analytic pLogP prediction (the Fig. 5 "predicted" path): the broadcast
/// is timed by `sched::evaluate_order` over the instance carried in the
/// runtime info — whose gap/latency matrices and per-cluster T_c come from
/// the pLogP predictors (plogp/collective_predict.hpp) — without executing
/// a single message.  Works from any instance (sampled or grid-derived),
/// which is what lets the Monte-Carlo races route through it.
///
/// Scatter and all-to-all are predicted in closed form from the grid's gap
/// functions (plogp/hierarchical_predict.hpp) — the aggregate sizes differ
/// per link, so a fixed-size instance is not enough.  Construct with a
/// grid (the registry passes `BackendOptions::grid` through) to enable
/// them; without one those verbs throw InvalidInput at call time while
/// `supports()` still advertises them — the capability is the backend's,
/// the grid is per-workload context, exactly as for `SimBackend`.
class PlogpBackend final : public Backend {
 public:
  /// `grid` enables the scatter/alltoall predictions; it is only
  /// referenced and must outlive the backend.  Broadcast never uses it.
  explicit PlogpBackend(const topology::Grid* grid = nullptr) noexcept
      : grid_(grid) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "plogp";
  }
  [[nodiscard]] std::string_view mode_label() const noexcept override {
    return "predicted";
  }
  [[nodiscard]] bool supports(Verb) const noexcept override { return true; }
  [[nodiscard]] bool is_deterministic() const noexcept override {
    return true;
  }
  [[nodiscard]] bool instance_only() const noexcept override { return true; }

  [[nodiscard]] CollectiveResult bcast(const sched::SchedulerEntry& sched,
                                       const sched::SchedulerRuntimeInfo& info,
                                       std::uint64_t seed) const override;
  [[nodiscard]] CollectiveResult scatter(const sched::SchedulerEntry& sched,
                                         ClusterId root_cluster, Bytes block,
                                         std::uint64_t seed) const override;
  [[nodiscard]] CollectiveResult alltoall(const sched::SchedulerEntry& sched,
                                          Bytes block,
                                          std::uint64_t seed) const override;

 private:
  /// The grid behind scatter/alltoall, or throws the one-line "needs a
  /// grid" InvalidInput.
  [[nodiscard]] const topology::Grid& grid_for(Verb v) const;

  const topology::Grid* grid_;
};

}  // namespace gridcast::collective
