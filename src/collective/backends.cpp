#include "collective/backends.hpp"

#include "collective/alltoall.hpp"
#include "collective/bcast.hpp"
#include "collective/scatter.hpp"
#include "plogp/hierarchical_predict.hpp"
#include "sched/evaluate.hpp"
#include "support/error.hpp"

namespace gridcast::collective {

namespace {

/// Everything an executed collective reports beyond the delivery vector
/// comes from the Network's counters; the Network is fresh per call, so
/// totals are the collective's own.
CollectiveResult from_network(std::vector<Time> delivered, Time completion,
                              const sim::Network& net) {
  CollectiveResult r;
  r.delivered = std::move(delivered);
  r.per_rank = true;
  r.completion = completion;
  r.messages = net.messages();
  r.wan_messages = net.inter_cluster_messages();
  r.bytes = net.bytes_sent();
  r.wan_bytes = net.inter_cluster_bytes();
  return r;
}

}  // namespace

SimBackend::SimBackend(const topology::Grid& grid, sim::JitterConfig jitter)
    : grid_(&grid), jitter_(jitter) {}

bool SimBackend::supports(Verb v) const noexcept {
  switch (v) {
    case Verb::kBcast:
    case Verb::kScatter:
    case Verb::kAlltoall:
      return true;
  }
  return false;
}

CollectiveResult SimBackend::bcast(const sched::SchedulerEntry& sched,
                                   const sched::SchedulerRuntimeInfo& info,
                                   std::uint64_t seed) const {
  GRIDCAST_ASSERT(info.clusters() == grid_->cluster_count(),
                  "runtime info was derived for a different grid");
  sim::Network net(*grid_, jitter_, seed);
  // The info-taking overload asserts sched.can_schedule(info) — the
  // Backend::bcast contract — before executing the order.
  BcastResult b = run_hierarchical_bcast(net, sched, info);
  return from_network(std::move(b.delivered), b.completion, net);
}

CollectiveResult SimBackend::baseline_bcast(ClusterId root_cluster, Bytes m,
                                            std::uint64_t seed) const {
  sim::Network net(*grid_, jitter_, seed);
  BcastResult b = run_grid_unaware_binomial(net, root_cluster, m);
  return from_network(std::move(b.delivered), b.completion, net);
}

CollectiveResult SimBackend::scatter(const sched::SchedulerEntry& sched,
                                     ClusterId root_cluster, Bytes block,
                                     std::uint64_t seed) const {
  sim::Network net(*grid_, jitter_, seed);
  ScatterResult s = run_hierarchical_scatter(net, root_cluster, block, sched);
  return from_network(std::move(s.delivered), s.completion, net);
}

CollectiveResult SimBackend::alltoall(const sched::SchedulerEntry& sched,
                                      Bytes block, std::uint64_t seed) const {
  sim::Network net(*grid_, jitter_, seed);
  AlltoallResult a = run_hierarchical_alltoall(net, block, sched);
  return from_network(std::move(a.completed), a.completion, net);
}

CollectiveResult PlogpBackend::bcast(const sched::SchedulerEntry& sched,
                                     const sched::SchedulerRuntimeInfo& info,
                                     std::uint64_t /*seed*/) const {
  GRIDCAST_ASSERT(sched.can_schedule(info),
                  "scheduler cannot handle this instance");
  sched::Schedule s = sched::evaluate_order(
      info.instance(), sched.order(info), info.completion());
  CollectiveResult r;
  r.messages = s.transfers.size();
  r.wan_messages = s.transfers.size();  // every modelled transfer is WAN
  r.delivered = std::move(s.cluster_finish);
  r.per_rank = false;
  r.completion = s.makespan;
  return r;
}

namespace {

CollectiveResult from_prediction(plogp::HierarchicalPrediction p) {
  CollectiveResult r;
  r.delivered = std::move(p.cluster_finish);
  r.per_rank = false;
  r.completion = p.completion;
  r.messages = p.messages;
  r.wan_messages = p.wan_messages;
  r.bytes = p.bytes;
  r.wan_bytes = p.wan_bytes;
  return r;
}

}  // namespace

const topology::Grid& PlogpBackend::grid_for(Verb v) const {
  if (grid_ == nullptr)
    throw InvalidInput("backend 'plogp' predicts " +
                       std::string(verb_name(v)) +
                       " from a grid's gap functions: construct it with "
                       "BackendOptions::grid set");
  return *grid_;
}

CollectiveResult PlogpBackend::scatter(const sched::SchedulerEntry& sched,
                                       ClusterId root_cluster, Bytes block,
                                       std::uint64_t /*seed*/) const {
  const topology::Grid& grid = grid_for(Verb::kScatter);
  // The same injection sequence the executing backend would run, predicted
  // in closed form instead of simulated message by message.
  const std::vector<ClusterId> order =
      scatter_wan_order(grid, root_cluster, block, sched);
  return from_prediction(
      plogp::predict_hierarchical_scatter(grid, root_cluster, block, order));
}

CollectiveResult PlogpBackend::alltoall(const sched::SchedulerEntry& sched,
                                        Bytes block,
                                        std::uint64_t /*seed*/) const {
  const topology::Grid& grid = grid_for(Verb::kAlltoall);
  return from_prediction(plogp::predict_hierarchical_alltoall(
      grid, block, alltoall_dest_order(grid, block, sched)));
}

}  // namespace gridcast::collective
