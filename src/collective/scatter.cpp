#include "collective/scatter.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"

namespace gridcast::collective {

namespace {

struct State {
  std::vector<Time> delivered;
  std::uint64_t base_messages = 0;
  std::uint64_t base_wan_messages = 0;
  Bytes base_bytes = 0;
  Bytes base_wan_bytes = 0;
};

ScatterResult collect(sim::Network& net, const std::shared_ptr<State>& st) {
  net.engine().run();
  ScatterResult r;
  r.delivered = st->delivered;
  r.completion =
      *std::max_element(r.delivered.begin(), r.delivered.end());
  r.messages = net.messages() - st->base_messages;
  r.wan_messages = net.inter_cluster_messages() - st->base_wan_messages;
  r.bytes = net.bytes_sent() - st->base_bytes;
  r.wan_bytes = net.inter_cluster_bytes() - st->base_wan_bytes;
  return r;
}

std::shared_ptr<State> make_state(sim::Network& net) {
  auto st = std::make_shared<State>();
  st->delivered.assign(net.ranks(), 0.0);
  st->base_messages = net.messages();
  st->base_wan_messages = net.inter_cluster_messages();
  st->base_bytes = net.bytes_sent();
  st->base_wan_bytes = net.inter_cluster_bytes();
  return st;
}

}  // namespace

ScatterResult run_naive_scatter(sim::Network& net, ClusterId root_cluster,
                                Bytes block) {
  const auto& grid = net.grid();
  GRIDCAST_ASSERT(root_cluster < grid.cluster_count(),
                  "root cluster out of range");
  auto st = make_state(net);
  const NodeId root = grid.global_rank(root_cluster, 0);
  st->delivered[root] = net.engine().now();
  for (NodeId r = 0; r < net.ranks(); ++r) {
    if (r == root) continue;
    net.send(root, r, block, [st, r](Time t) { st->delivered[r] = t; });
  }
  return collect(net, st);
}

namespace {

/// Shared body of the two-level scatter: `remote` fixes the root's WAN
/// injection sequence.
ScatterResult hierarchical_scatter_over(sim::Network& net,
                                        ClusterId root_cluster, Bytes block,
                                        const std::vector<ClusterId>& remote) {
  const auto& grid = net.grid();
  GRIDCAST_ASSERT(root_cluster < grid.cluster_count(),
                  "root cluster out of range");
  auto st = make_state(net);
  const NodeId root = grid.global_rank(root_cluster, 0);
  st->delivered[root] = net.engine().now();

  for (const ClusterId c : remote) {
    const NodeId coord = grid.global_rank(c, 0);
    const std::uint32_t size = grid.cluster(c).size();
    const Bytes aggregate = static_cast<Bytes>(size) * block;
    net.send(root, coord, aggregate, [&net, &grid, st, c, coord, block,
                                      size](Time t) {
      st->delivered[coord] = t;
      for (NodeId l = 1; l < size; ++l) {
        const NodeId dst = grid.global_rank(c, l);
        net.send(coord, dst, block,
                 [st, dst](Time tt) { st->delivered[dst] = tt; });
      }
    });
  }
  // Local cluster: direct sends.
  const std::uint32_t root_size = grid.cluster(root_cluster).size();
  for (NodeId l = 1; l < root_size; ++l) {
    const NodeId dst = grid.global_rank(root_cluster, l);
    net.send(root, dst, block, [st, dst](Time t) { st->delivered[dst] = t; });
  }
  return collect(net, st);
}

}  // namespace

ScatterResult run_hierarchical_scatter(sim::Network& net,
                                       ClusterId root_cluster, Bytes block) {
  const auto& grid = net.grid();
  GRIDCAST_ASSERT(root_cluster < grid.cluster_count(),
                  "root cluster out of range");
  // Remote clusters first (they cross the WAN; start them earliest),
  // largest aggregate first so the big transfers overlap the local work.
  std::vector<ClusterId> remote;
  for (ClusterId c = 0; c < grid.cluster_count(); ++c)
    if (c != root_cluster) remote.push_back(c);
  std::sort(remote.begin(), remote.end(), [&](ClusterId a, ClusterId b) {
    return grid.cluster(a).size() > grid.cluster(b).size();
  });
  return hierarchical_scatter_over(net, root_cluster, block, remote);
}

std::vector<ClusterId> scatter_wan_order(const topology::Grid& grid,
                                         ClusterId root_cluster, Bytes block,
                                         const sched::SchedulerEntry& sched) {
  GRIDCAST_ASSERT(root_cluster < grid.cluster_count(),
                  "root cluster out of range");
  const sched::Instance inst =
      sched::Instance::from_grid(grid, root_cluster, block);
  const sched::SchedulerRuntimeInfo info(inst, block);
  GRIDCAST_ASSERT(sched.can_schedule(info),
                  "scheduler cannot handle this instance");
  // Each non-root cluster appears exactly once as a receiver in a valid
  // SendOrder; that appearance sequence becomes the injection sequence.
  std::vector<ClusterId> remote;
  remote.reserve(grid.cluster_count() - 1);
  for (const auto& [s, r] : sched.order(info)) remote.push_back(r);
  return remote;
}

ScatterResult run_hierarchical_scatter(sim::Network& net,
                                       ClusterId root_cluster, Bytes block,
                                       const sched::SchedulerEntry& sched) {
  return hierarchical_scatter_over(
      net, root_cluster, block,
      scatter_wan_order(net.grid(), root_cluster, block, sched));
}

}  // namespace gridcast::collective
