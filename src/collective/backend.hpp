#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "collective/verb.hpp"
#include "sched/scheduler_entry.hpp"
#include "sim/network.hpp"
#include "support/named_registry.hpp"
#include "support/types.hpp"

/// The collective execution backend interface.
///
/// The paper's core claim is that one grid-aware schedule can be
/// *predicted* (pLogP model, Fig. 5) and *executed* (measured runs, Fig. 6)
/// interchangeably.  A `Backend` makes that interchangeability an API: the
/// collective verbs (broadcast, scatter, all-to-all) are abstract methods
/// returning a common `CollectiveResult`, and concrete backends — the
/// message-level simulator, the analytic pLogP predictor, later a real MPI
/// harness — are selected by name through the `BackendRegistry`, exactly
/// like scheduling heuristics are selected through `SchedulerRegistry`.
/// Adding a real execution harness is then "register one more backend",
/// not "fork every sweep on a mode flag".
namespace gridcast::collective {

/// Outcome of one collective, whatever produced it.  `delivered` is
/// per-rank for executing backends and per-cluster for analytic ones
/// (`per_rank` says which); the scalar fields always mean the same thing.
struct CollectiveResult {
  /// Delivery / finish time per rank (executing backends, indexed by
  /// global rank) or per cluster (analytic backends, indexed by cluster).
  std::vector<Time> delivered;
  bool per_rank = true;          ///< granularity of `delivered`
  Time completion = 0.0;         ///< max over delivered
  std::uint64_t messages = 0;    ///< point-to-point sends (or transfers)
  std::uint64_t wan_messages = 0;  ///< messages that crossed clusters
  Bytes bytes = 0;               ///< total payload bytes moved (0 = untracked)
  Bytes wan_bytes = 0;           ///< bytes that crossed clusters
};

/// Abstract collective backend.  Implementations are immutable once
/// constructed — every verb is const — so one instance can be shared
/// freely across sweep worker threads, like `SchedulerEntry`.
class Backend {
 public:
  Backend() = default;
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Registry name ("sim", "plogp", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The mode string recorded in `BenchReport`s ("measured" for executing
  /// backends, "predicted" for analytic ones) — kept distinct from name()
  /// so reports stay byte-compatible with the pre-backend mode fork.
  [[nodiscard]] virtual std::string_view mode_label() const noexcept = 0;

  /// Whether this backend implements `v`.  Calling an unsupported verb
  /// throws InvalidInput.
  [[nodiscard]] virtual bool supports(Verb v) const noexcept = 0;

  /// True when results do not depend on the `seed` arguments (analytic
  /// backends always; the simulator exactly when jitter is disabled).
  [[nodiscard]] virtual bool is_deterministic() const noexcept = 0;

  /// True when bcast() consumes only the `SchedulerRuntimeInfo` (analytic
  /// backends).  Executing backends are bound to a concrete grid and
  /// require the info's instance to be derived from it; they cannot run
  /// the Monte-Carlo races over sampled instances.
  [[nodiscard]] virtual bool instance_only() const noexcept = 0;

  /// Name of the scheduler-free comparator series this backend adds to
  /// sweeps ("DefaultLAM" for the simulator's grid-unaware binomial tree),
  /// or empty when it has none.  Non-empty implies baseline_bcast() works.
  [[nodiscard]] virtual std::string_view baseline_series() const noexcept;

  /// Broadcast under `sched`'s send order.  `info` carries the instance,
  /// message size and completion model; `seed` feeds backend-local noise
  /// (ignored by deterministic backends).  Asserts `sched.can_schedule`.
  [[nodiscard]] virtual CollectiveResult bcast(
      const sched::SchedulerEntry& sched,
      const sched::SchedulerRuntimeInfo& info,
      std::uint64_t seed = 0) const = 0;

  /// The comparator broadcast behind baseline_series().  Throws
  /// InvalidInput unless baseline_series() is non-empty.
  [[nodiscard]] virtual CollectiveResult baseline_bcast(
      ClusterId root_cluster, Bytes m, std::uint64_t seed = 0) const;

  /// Scatter `block` bytes per rank from `root_cluster`'s coordinator,
  /// WAN injections sequenced by `sched`.  Throws InvalidInput unless
  /// supports(Verb::kScatter).
  [[nodiscard]] virtual CollectiveResult scatter(
      const sched::SchedulerEntry& sched, ClusterId root_cluster, Bytes block,
      std::uint64_t seed = 0) const;

  /// All-to-all with `block` bytes per rank pair, coordinator aggregates
  /// sequenced by `sched`.  Throws InvalidInput unless
  /// supports(Verb::kAlltoall).
  [[nodiscard]] virtual CollectiveResult alltoall(
      const sched::SchedulerEntry& sched, Bytes block,
      std::uint64_t seed = 0) const;

 protected:
  /// Shared "verb not supported" error for default implementations.
  [[noreturn]] void unsupported(Verb v) const;
};

/// Backends are shared, immutable and thread-safe; this is the ownership
/// handle the registry vends.
using BackendPtr = std::shared_ptr<const Backend>;

/// Everything a backend factory may need.  Analytic backends ignore all of
/// it; executing backends require the grid (and read their noise knobs).
struct BackendOptions {
  /// The grid executing backends run on.  The backend only references it;
  /// it must outlive the backend.
  const topology::Grid* grid = nullptr;
  /// Per-message multiplicative noise (simulator-family backends).
  sim::JitterConfig jitter = {};
};

/// The backend registry: every execution target the system knows is a
/// named factory here, mirroring `SchedulerRegistry`.  Canonical names
/// match case-insensitively (they are all lowercase); aliases fold too, so
/// `--backend=measured` keeps working as a spelling of "sim".
class BackendRegistry {
 public:
  using Factory = std::function<BackendPtr(const BackendOptions&)>;

  BackendRegistry();

  /// Register a factory under a canonical name plus optional aliases, with
  /// a one-line description for `--list-backends`.  Throws InvalidInput
  /// when the name or any alias is already taken (also within this call).
  void add(std::string name, std::string description, Factory factory,
           std::vector<std::string> aliases = {});

  /// Construct the backend registered under `name` (canonical or alias,
  /// case-insensitive).  Throws InvalidInput for unknown names, listing
  /// what is available; factories may throw for missing options (e.g. the
  /// simulator without a grid).
  [[nodiscard]] BackendPtr make(std::string_view name,
                                const BackendOptions& opts = {}) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Resolve a name or alias to its canonical name, throwing the same
  /// InvalidInput as make() for unknown names — the one place the
  /// "unknown backend" error is worded (CLI parsing validates early
  /// through this).
  [[nodiscard]] std::string resolve(std::string_view name) const;

  /// Canonical names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Registered aliases of a canonical name (folded), in registration
  /// order; empty for unknown names.
  [[nodiscard]] std::vector<std::string> aliases_of(
      std::string_view name) const;

  /// The description `add()` recorded for a canonical name or alias.
  [[nodiscard]] std::string description_of(std::string_view name) const;

 private:
  /// The shared machinery: backend policy is lowercase canonicals with
  /// every lookup folded.  Factories come back by value and run outside
  /// the lock, like SchedulerRegistry — a composite backend resolving
  /// delegates through the registry from its factory must not
  /// self-deadlock.
  NamedRegistry<Factory> reg_;
};

/// The process-wide registry, pre-populated with the built-in backends
/// ("sim" — the discrete-event simulator, "plogp" — the analytic pLogP
/// predictor).  Thread-safe; user code may `add()` an MPI-shaped backend
/// behind the same interface at any time.
[[nodiscard]] BackendRegistry& backend_registry();

}  // namespace gridcast::collective
