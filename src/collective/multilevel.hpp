#pragma once

#include <vector>

#include "collective/bcast.hpp"
#include "sim/network.hpp"
#include "support/types.hpp"

/// Multi-level broadcast after Karonis et al. (MPICH-G2), paper Section 2.
///
/// The related-work baseline between MagPIe's two levels and the paper's
/// scheduled approach: clusters are grouped into *sites* (level 0 = WAN
/// between sites, level 1 = LAN between clusters of one site, level 2 =
/// inside a cluster).  The root's coordinator flat-trees to one gateway
/// coordinator per remote site; each gateway flat-trees to the other
/// coordinators of its site; every coordinator then runs the local
/// binomial tree.  Communication *overlaps across levels* — a site can
/// fan out internally while the root is still contacting other sites —
/// which is the property Karonis exploited; but each level still uses a
/// flat tree, which is the weakness the paper's heuristics remove.
namespace gridcast::collective {

/// Assignment of each cluster to a site (site ids need not be dense).
using SiteMap = std::vector<std::uint32_t>;

/// Derive a site map by grouping clusters whose mutual latency is below
/// `site_threshold` with the reference cluster of each site (greedy).
[[nodiscard]] SiteMap sites_by_latency(const topology::Grid& grid,
                                       Time site_threshold = ms(2.0));

/// Execute the multi-level broadcast on the simulator.
[[nodiscard]] BcastResult run_multilevel_bcast(sim::Network& net,
                                               ClusterId root_cluster,
                                               const SiteMap& sites,
                                               Bytes m);

}  // namespace gridcast::collective
