#pragma once

#include <cstdint>
#include <vector>

#include "support/matrix.hpp"
#include "support/types.hpp"

/// Logical homogeneous cluster identification.
///
/// The paper's Section 7 splits its 88 machines into 6 logical clusters
/// with "Lowekamp's algorithm with a tolerance rate ρ = 30%" (after
/// Lowekamp's ECO work and the authors' own EuroPVM/MPI 2004 paper).  The
/// idea: machines whose mutual latencies are similar — within a relative
/// tolerance — form one logical cluster that a single pLogP parameter set
/// can describe; machines that look close by site but differ in measured
/// performance get split (IDPOT became three logical clusters in Table 3).
///
/// We implement it as complete-linkage agglomerative clustering with a
/// homogeneity guard: a merge is allowed only while the merged group's
/// largest internal latency stays within (1 + ρ) of its members' *global*
/// minimum latency (their best link to anyone, inside or outside the
/// group).  The global reference matters: it keeps near-singleton outliers
/// apart — Table 3's two IDPOT machines sit 242 µs from each other but
/// only 60 µs from IDPOT-A, so a within-group-only criterion would happily
/// fuse them while the paper (and this guard) keeps them singletons.  It
/// also reproduces the Orsay split: 62.10 µs across the two Orsay halves
/// vs 47.56 µs inside one is a ratio of 1.306 > 1.3 = (1 + ρ).
namespace gridcast::clustering {

/// Result of a clustering run.
struct Clustering {
  /// Node ids per group, groups ordered by their smallest member id.
  std::vector<std::vector<NodeId>> groups;
  /// Inverse map: group index of each node.
  std::vector<std::uint32_t> group_of;

  [[nodiscard]] std::size_t group_count() const noexcept {
    return groups.size();
  }
};

/// Cluster `latency.size()` nodes from the full symmetric node-to-node
/// latency matrix.  `rho` is the relative tolerance (0.30 in the paper).
/// Diagonal entries are ignored.  Throws InvalidInput for an asymmetric
/// matrix or negative latencies.
[[nodiscard]] Clustering lowekamp_cluster(const SquareMatrix<Time>& latency,
                                          double rho);

/// Homogeneity predicate used by the merge guard: the largest pairwise
/// latency within `nodes` must not exceed (1 + rho) times the smallest
/// latency any member has to any node in the whole matrix.  Groups of
/// fewer than two nodes are trivially homogeneous.
[[nodiscard]] bool is_homogeneous(const SquareMatrix<Time>& latency,
                                  const std::vector<NodeId>& nodes,
                                  double rho);

}  // namespace gridcast::clustering
