#include "clustering/node_matrix.hpp"

#include <numeric>

#include "support/error.hpp"

namespace gridcast::clustering {

SquareMatrix<Time> synthesize_node_matrix(
    const std::vector<std::uint32_t>& sizes,
    const SquareMatrix<Time>& cluster_latency, double noise_frac, Rng& rng) {
  GRIDCAST_ASSERT(sizes.size() == cluster_latency.size(),
                  "sizes and cluster matrix disagree");
  GRIDCAST_ASSERT(noise_frac >= 0.0 && noise_frac < 0.5,
                  "noise fraction must stay well below the cluster gaps");

  const std::uint32_t total =
      std::accumulate(sizes.begin(), sizes.end(), 0u);
  GRIDCAST_ASSERT(total >= 1, "no nodes to synthesise");

  // Cluster id of every node.
  std::vector<std::uint32_t> cluster_of;
  cluster_of.reserve(total);
  for (std::uint32_t c = 0; c < sizes.size(); ++c)
    cluster_of.insert(cluster_of.end(), sizes[c], c);

  SquareMatrix<Time> m(total, 0.0);
  for (std::uint32_t i = 0; i < total; ++i) {
    for (std::uint32_t j = i + 1; j < total; ++j) {
      const std::uint32_t a = cluster_of[i];
      const std::uint32_t b = cluster_of[j];
      const Time base = cluster_latency(a, b);
      GRIDCAST_ASSERT(base > 0.0,
                      "cluster latency must be positive for populated pairs");
      Time v = base;
      if (noise_frac > 0.0) {
        double f = rng.normal(1.0, noise_frac);
        const double lo = 1.0 - 2.0 * noise_frac;
        const double hi = 1.0 + 2.0 * noise_frac;
        f = f < lo ? lo : (f > hi ? hi : f);
        v = base * f;
      }
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

}  // namespace gridcast::clustering
