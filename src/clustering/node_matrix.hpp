#pragma once

#include <vector>

#include "support/matrix.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

/// Synthetic node-to-node latency matrices.
///
/// The clustering algorithm consumes a *full* N×N machine latency matrix —
/// the thing ECO/NWS measured on a live testbed.  This helper expands a
/// cluster-level description (sizes + cluster latency matrix, e.g. Table 3)
/// into a node-level matrix, optionally perturbed with multiplicative
/// noise, so the Section 7 preprocessing step can be reproduced offline.
namespace gridcast::clustering {

/// Expand cluster-level latencies into an N×N node matrix.
///
/// `sizes[c]` nodes belong to cluster c; `cluster_latency(c, c)` is the
/// node-to-node latency inside c (must be > 0 whenever sizes[c] > 1), and
/// `cluster_latency(a, b)` the latency between machines of a and b.
/// `noise_frac > 0` applies truncated Gaussian multiplicative noise (the
/// same draw for both directions, keeping the matrix symmetric).
[[nodiscard]] SquareMatrix<Time> synthesize_node_matrix(
    const std::vector<std::uint32_t>& sizes,
    const SquareMatrix<Time>& cluster_latency, double noise_frac, Rng& rng);

}  // namespace gridcast::clustering
