#include "clustering/lowekamp.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/error.hpp"

namespace gridcast::clustering {

namespace {

void check_matrix(const SquareMatrix<Time>& latency) {
  const std::size_t n = latency.size();
  if (n == 0) throw InvalidInput("empty latency matrix");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (latency(i, j) < 0.0)
        throw InvalidInput("negative latency in matrix");
      const Time a = latency(i, j);
      const Time b = latency(j, i);
      const Time tol = 1e-9 + 1e-6 * std::max(a, b);
      if (std::abs(a - b) > tol)
        throw InvalidInput("latency matrix must be symmetric");
    }
  }
}

/// Min/max pairwise latency across two node groups (or within one when
/// `a == b`, skipping the diagonal).
struct MinMax {
  Time lo = std::numeric_limits<Time>::infinity();
  Time hi = 0.0;
};

MinMax pair_range(const SquareMatrix<Time>& latency,
                  const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  MinMax r;
  for (const NodeId x : a) {
    for (const NodeId y : b) {
      if (x == y) continue;
      const Time l = latency(x, y);
      r.lo = std::min(r.lo, l);
      r.hi = std::max(r.hi, l);
    }
  }
  return r;
}

}  // namespace

bool is_homogeneous(const SquareMatrix<Time>& latency,
                    const std::vector<NodeId>& nodes, double rho) {
  GRIDCAST_ASSERT(rho >= 0.0, "tolerance must be >= 0");
  if (nodes.size() < 2) return true;
  const Time hi = pair_range(latency, nodes, nodes).hi;
  // Reference: the members' best link to ANY node (global minimum), so a
  // pair of mutual outliers cannot certify themselves as a cluster.
  Time lo = std::numeric_limits<Time>::infinity();
  const std::size_t n = latency.size();
  for (const NodeId x : nodes)
    for (std::size_t z = 0; z < n; ++z)
      if (z != x) lo = std::min(lo, latency(x, z));
  // All-zero latencies (e.g. idealised loopback) are trivially homogeneous.
  if (hi == 0.0) return true;
  if (lo == 0.0) return false;
  return hi <= (1.0 + rho) * lo;
}

Clustering lowekamp_cluster(const SquareMatrix<Time>& latency, double rho) {
  check_matrix(latency);
  GRIDCAST_ASSERT(rho >= 0.0, "tolerance must be >= 0");
  const std::size_t n = latency.size();

  // Start from singletons; greedily merge the closest (complete-linkage)
  // pair whose merge stays homogeneous; stop when no pair qualifies.
  std::vector<std::vector<NodeId>> groups;
  groups.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    groups.push_back({static_cast<NodeId>(i)});

  for (;;) {
    std::size_t best_a = 0, best_b = 0;
    Time best_d = std::numeric_limits<Time>::infinity();
    bool found = false;
    for (std::size_t a = 0; a < groups.size(); ++a) {
      for (std::size_t b = a + 1; b < groups.size(); ++b) {
        const Time d = pair_range(latency, groups[a], groups[b]).hi;
        if (d >= best_d) continue;
        std::vector<NodeId> merged = groups[a];
        merged.insert(merged.end(), groups[b].begin(), groups[b].end());
        if (!is_homogeneous(latency, merged, rho)) continue;
        best_d = d;
        best_a = a;
        best_b = b;
        found = true;
      }
    }
    if (!found) break;
    groups[best_a].insert(groups[best_a].end(), groups[best_b].begin(),
                          groups[best_b].end());
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(best_b));
  }

  // Canonical order: by smallest member id; members sorted.
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });

  Clustering out;
  out.groups = std::move(groups);
  out.group_of.assign(n, 0);
  for (std::uint32_t gi = 0; gi < out.groups.size(); ++gi)
    for (const NodeId v : out.groups[gi]) out.group_of[v] = gi;
  return out;
}

}  // namespace gridcast::clustering
