#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "sched/instance.hpp"
#include "topology/grid.hpp"

/// Memoised `Instance::from_grid` derivations for one grid.
///
/// Deriving an instance costs O(clusters²) gap-function evaluations, and
/// sweep harnesses used to pay it once per (size, series) *cell* — the
/// measured sweep re-derived the identical instance for every competitor
/// of a size.  The cache keys on (root, size); the grid is fixed per cache
/// (grids are the expensive measured artefact and have no cheap identity).
namespace gridcast::exp {

class InstanceCache {
 public:
  explicit InstanceCache(const topology::Grid& grid) : grid_(&grid) {}
  /// The cache only references the grid; a temporary would dangle.
  explicit InstanceCache(topology::Grid&&) = delete;

  InstanceCache(const InstanceCache&) = delete;
  InstanceCache& operator=(const InstanceCache&) = delete;

  [[nodiscard]] const topology::Grid& grid() const noexcept { return *grid_; }

  /// The instance the grid poses for an m-byte broadcast rooted at `root`,
  /// derived on first use.  Thread-safe; the reference stays valid for the
  /// cache's lifetime.  Concurrent first requests for the same key may
  /// derive twice (derivation runs outside the lock so distinct keys never
  /// serialise); the first insertion wins and derivation is deterministic,
  /// so all callers see identical values.
  [[nodiscard]] const sched::Instance& get(ClusterId root, Bytes m);

  /// Distinct (root, size) keys currently held.
  [[nodiscard]] std::size_t entries() const;

  /// Lookups that found an existing entry / had to derive one.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  const topology::Grid* grid_;
  mutable std::mutex mu_;
  std::map<std::pair<ClusterId, Bytes>,
           std::shared_ptr<const sched::Instance>>
      cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gridcast::exp
