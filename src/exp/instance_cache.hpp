#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "sched/instance.hpp"
#include "topology/grid.hpp"

/// Memoised `Instance::from_grid` derivations for one grid, bounded as a
/// byte-accounted LRU.
///
/// Deriving an instance costs O(clusters²) gap-function evaluations, and
/// sweep harnesses used to pay it once per (size, series) *cell* — the
/// measured sweep re-derived the identical instance for every competitor
/// of a size.  The cache keys on (root, size); the grid is fixed per cache
/// (grids are the expensive measured artefact and have no cheap identity).
///
/// Root-rotation workloads (many roots × many sizes) would otherwise grow
/// the map without limit, so the cache optionally bounds its footprint:
/// when the byte account exceeds `capacity_bytes`, least-recently-used
/// entries are evicted.  Entries are handed out as `shared_ptr`, so a
/// holder's instance survives its own eviction — eviction only drops the
/// cache's reference.
namespace gridcast::exp {

/// Shared ownership handle for a cached derivation.
using InstancePtr = std::shared_ptr<const sched::Instance>;

class InstanceCache {
 public:
  /// Sentinel capacity: never evict (the default — sweep ladders are
  /// small; only root-rotation workloads need the bound).
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  /// `capacity_bytes == kUnbounded` means no bound; `capacity_bytes == 0`
  /// means pass-through: every `get` derives, nothing is ever retained or
  /// pinned, and the byte account stays zero.  Anything in between is the
  /// LRU bound in bytes.
  explicit InstanceCache(const topology::Grid& grid,
                         std::size_t capacity_bytes = kUnbounded)
      : grid_(&grid), capacity_(capacity_bytes) {}
  /// The cache only references the grid; a temporary would dangle.
  explicit InstanceCache(topology::Grid&&, std::size_t = kUnbounded) = delete;

  InstanceCache(const InstanceCache&) = delete;
  InstanceCache& operator=(const InstanceCache&) = delete;

  [[nodiscard]] const topology::Grid& grid() const noexcept { return *grid_; }

  /// The instance the grid poses for an m-byte broadcast rooted at `root`,
  /// derived on first use and promoted to most-recently-used.  Thread-safe.
  /// Concurrent first requests for the same key may derive twice
  /// (derivation runs outside the lock so distinct keys never serialise);
  /// the first insertion wins and derivation is deterministic, so all
  /// callers see identical values.
  [[nodiscard]] InstancePtr get(ClusterId root, Bytes m);

  /// Change the byte bound (`kUnbounded` = no bound, 0 = pass-through),
  /// evicting immediately if the current account exceeds it.
  void set_capacity(std::size_t capacity_bytes);
  [[nodiscard]] std::size_t capacity() const;

  /// Bytes the cached instances account for (matrix + vector payloads via
  /// `instance_bytes`); the basis of the eviction decision.
  [[nodiscard]] std::size_t bytes_in_use() const;

  /// Entries dropped by the LRU bound so far.  The three stats counters
  /// are monitoring data, not synchronisation: they are relaxed atomics,
  /// so readers never contend with the cache lock and TSan stays quiet
  /// when a sweep thread polls them mid-run.  Each value is exact; a
  /// cross-counter snapshot (hits vs misses) taken mid-run may straddle
  /// an in-flight lookup.
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Distinct (root, size) keys currently held.
  [[nodiscard]] std::size_t entries() const;

  /// Lookups that found an existing entry / had to derive one.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

  /// The accounting rule: what one cached instance charges against the
  /// capacity (its two clusters² time matrices, the T vector, and the
  /// bookkeeping structs).
  [[nodiscard]] static std::size_t instance_bytes(
      const sched::Instance& inst) noexcept;

 private:
  using Key = std::pair<ClusterId, Bytes>;
  struct Entry {
    InstancePtr instance;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru;  ///< position in lru_ (front = recent)
  };

  /// Drop least-recently-used entries until the account fits `capacity_`.
  /// Caller holds `mu_`.
  void evict_to_capacity();

  const topology::Grid* grid_;
  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  std::list<Key> lru_;  ///< most recently used at the front
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace gridcast::exp
