#include "exp/montecarlo.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>

#include "support/error.hpp"

namespace gridcast::exp {

double RaceResult::hit_rate(std::size_t s) const {
  GRIDCAST_ASSERT(s < hits.size(), "strategy index out of range");
  return iterations == 0
             ? 0.0
             : static_cast<double>(hits[s]) / static_cast<double>(iterations);
}

RaceResult run_race(const std::vector<sched::Scheduler>& comps,
                    const RaceConfig& cfg, ThreadPool& pool) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(cfg.clusters >= 2, "a race needs at least two clusters");
  cfg.ranges.validate();

  struct Accumulator {
    std::vector<RunningStats> makespan;
    std::vector<std::uint64_t> hits;
    RunningStats global_min;
  };

  // Partial accumulators are collected per chunk and merged in chunk
  // order afterwards: RunningStats merging is not associative in floating
  // point, so merge order must not depend on thread scheduling.
  std::mutex collect_mu;
  std::map<std::size_t, Accumulator> partials;

  pool.parallel_for(
      static_cast<std::size_t>(cfg.iterations),
      [&](std::size_t lo, std::size_t hi) {
        Accumulator acc;
        acc.makespan.resize(comps.size());
        acc.hits.assign(comps.size(), 0);
        std::vector<Time> mk(comps.size());

        for (std::size_t it = lo; it < hi; ++it) {
          Rng rng = Rng::stream(cfg.seed, it);
          const sched::Instance inst =
              sample_instance(cfg.ranges, cfg.clusters, rng, cfg.root);

          Time best = std::numeric_limits<Time>::infinity();
          for (std::size_t s = 0; s < comps.size(); ++s) {
            mk[s] = comps[s].makespan(inst);
            acc.makespan[s].add(mk[s]);
            best = std::min(best, mk[s]);
          }
          acc.global_min.add(best);
          const Time cutoff = best * (1.0 + cfg.hit_epsilon);
          for (std::size_t s = 0; s < comps.size(); ++s)
            if (mk[s] <= cutoff) ++acc.hits[s];
        }

        std::lock_guard lk(collect_mu);
        partials.emplace(lo, std::move(acc));
      });

  Accumulator total;
  total.makespan.resize(comps.size());
  total.hits.assign(comps.size(), 0);
  for (auto& [lo, acc] : partials) {
    for (std::size_t s = 0; s < comps.size(); ++s) {
      total.makespan[s].merge(acc.makespan[s]);
      total.hits[s] += acc.hits[s];
    }
    total.global_min.merge(acc.global_min);
  }

  RaceResult out;
  out.names.reserve(comps.size());
  for (const auto& c : comps) out.names.emplace_back(c.name());
  out.makespan = std::move(total.makespan);
  out.hits = std::move(total.hits);
  out.global_min = total.global_min;
  out.iterations = cfg.iterations;
  return out;
}

}  // namespace gridcast::exp
