#include "exp/montecarlo.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>

#include "collective/backends.hpp"
#include "support/error.hpp"

namespace gridcast::exp {

double RaceResult::hit_rate(std::size_t s) const {
  GRIDCAST_ASSERT(s < hits.size(), "strategy index out of range");
  return iterations == 0
             ? 0.0
             : static_cast<double>(hits[s]) / static_cast<double>(iterations);
}

RaceResult run_race(const collective::Backend& backend,
                    const std::vector<sched::Scheduler>& comps,
                    const RaceConfig& cfg, ThreadPool& pool) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(cfg.clusters >= 2, "a race needs at least two clusters");
  if (!backend.instance_only())
    throw InvalidInput("backend '" + std::string(backend.name()) +
                       "' executes on a concrete grid and cannot time the "
                       "Monte-Carlo races' sampled instances");
  cfg.ranges.validate();

  struct Accumulator {
    std::vector<RunningStats> makespan;
    std::vector<std::uint64_t> hits;
    RunningStats global_min;
  };

  // Partial accumulators are collected per chunk and merged in chunk
  // order afterwards: RunningStats merging is not associative in floating
  // point, so merge order must not depend on thread scheduling.
  std::mutex collect_mu;
  std::map<std::size_t, Accumulator> partials;

  pool.parallel_for(
      static_cast<std::size_t>(cfg.iterations),
      [&](std::size_t lo, std::size_t hi) {
        Accumulator acc;
        acc.makespan.resize(comps.size());
        acc.hits.assign(comps.size(), 0);
        std::vector<Time> mk(comps.size());
        sched::Instance inst;  // storage reused across iterations

        for (std::size_t it = lo; it < hi; ++it) {
          Rng rng = Rng::stream(cfg.seed, it);
          sample_instance_into(cfg.ranges, cfg.clusters, rng, cfg.root, inst);

          Time best = std::numeric_limits<Time>::infinity();
          for (std::size_t s = 0; s < comps.size(); ++s) {
            const sched::SchedulerRuntimeInfo info(
                inst, 0, comps[s].options().completion);
            // Shape-gated entries cannot abstain per iteration without
            // skewing the hit-rate denominator, so a refusal is a
            // designed error here — grid sweeps are where gated entries
            // are skipped (backend_sweep).
            if (!comps[s].entry().can_schedule(info))
              throw InvalidInput(
                  "scheduler '" + std::string(comps[s].name()) +
                  "' refused a sampled instance (iteration " +
                  std::to_string(it) +
                  "): the Monte-Carlo race needs entries that accept every "
                  "draw; shape-gated entries belong in grid sweeps, which "
                  "skip them");
            mk[s] = backend.bcast(comps[s].entry(), info).completion;
            acc.makespan[s].add(mk[s]);
            best = std::min(best, mk[s]);
          }
          acc.global_min.add(best);
          const Time cutoff = best * (1.0 + cfg.hit_epsilon);
          for (std::size_t s = 0; s < comps.size(); ++s)
            if (mk[s] <= cutoff) ++acc.hits[s];
        }

        std::lock_guard lk(collect_mu);
        partials.emplace(lo, std::move(acc));
      });

  Accumulator total;
  total.makespan.resize(comps.size());
  total.hits.assign(comps.size(), 0);
  for (auto& [lo, acc] : partials) {
    for (std::size_t s = 0; s < comps.size(); ++s) {
      total.makespan[s].merge(acc.makespan[s]);
      total.hits[s] += acc.hits[s];
    }
    total.global_min.merge(acc.global_min);
  }

  RaceResult out;
  out.names.reserve(comps.size());
  for (const auto& c : comps) out.names.emplace_back(c.name());
  out.makespan = std::move(total.makespan);
  out.hits = std::move(total.hits);
  out.global_min = total.global_min;
  out.iterations = cfg.iterations;
  return out;
}

RaceResult run_race(const std::vector<sched::Scheduler>& comps,
                    const RaceConfig& cfg, ThreadPool& pool) {
  const collective::PlogpBackend backend;
  return run_race(backend, comps, cfg, pool);
}

}  // namespace gridcast::exp
