#include "exp/sweep.hpp"

#include <limits>

#include "collective/bcast.hpp"
#include "sched/evaluate.hpp"
#include "support/error.hpp"

namespace gridcast::exp {

namespace {

constexpr double kUnowned = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void ShardSpec::validate() const {
  if (shards == 0)
    throw InvalidInput("shard spec: shards must be >= 1");
  if (shard >= shards)
    throw InvalidInput("shard spec: shard index " + std::to_string(shard) +
                       " out of range for " + std::to_string(shards) +
                       " shards");
}

std::vector<Bytes> default_size_ladder() {
  // The paper's Fig. 5/6 x-axis stops at 4 MiB; an off-by-one endpoint
  // (4.25 MiB) used to emit a 17th point past the figure.
  std::vector<Bytes> sizes;
  for (Bytes m = KiB(256); m <= MiB(4); m += KiB(256)) sizes.push_back(m);
  return sizes;
}

std::uint64_t measured_cell_seed(std::uint64_t seed, std::size_t size_index,
                                 std::string_view series_name) {
  // FNV-1a over the series name: stable across platforms, insensitive to
  // the series' position in the competitor list.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : series_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // SplitMix64 finalizer over (seed, size index, name hash) for dispersion.
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(size_index) + 1) + h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SweepResult predicted_sweep(InstanceCache& cache, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes, ThreadPool& pool,
                            ShardSpec shard) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(!sizes.empty(), "no sizes");
  shard.validate();

  const std::size_t n_series = comps.size();
  SweepResult out;
  out.sizes.assign(sizes.begin(), sizes.end());
  out.series.resize(n_series);
  for (std::size_t s = 0; s < n_series; ++s) {
    out.series[s].name = comps[s].name();
    out.series[s].completion.assign(sizes.size(), kUnowned);
  }

  // One task per (size, series) cell; the O(clusters^2) instance
  // derivation happens once per size in the cache.  Cells are written by
  // index, so any worker count produces the same result, and foreign
  // shards' cells stay NaN.
  pool.parallel_for(
      sizes.size() * n_series, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cell = lo; cell < hi; ++cell) {
          if (!shard.owns(cell)) continue;
          const std::size_t i = cell / n_series;
          const std::size_t s = cell % n_series;
          const sched::Instance& inst = cache.get(root, sizes[i]);
          const sched::SchedulerRuntimeInfo info(
              inst, sizes[i], comps[s].options().completion);
          out.series[s].completion[i] =
              sched::evaluate_order(inst, comps[s].order(info),
                                    info.completion())
                  .makespan;
        }
      });
  return out;
}

SweepResult predicted_sweep(const topology::Grid& grid, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes, ThreadPool& pool) {
  InstanceCache cache(grid);
  return predicted_sweep(cache, root, comps, sizes, pool);
}

SweepResult predicted_sweep(const topology::Grid& grid, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes) {
  ThreadPool inline_pool(0);
  return predicted_sweep(grid, root, comps, sizes, inline_pool);
}

SweepResult measured_sweep(InstanceCache& cache, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed,
                           ThreadPool& pool, ShardSpec shard) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(!sizes.empty(), "no sizes");
  shard.validate();

  const topology::Grid& grid = cache.grid();
  const std::size_t n_series = comps.size() + 1;
  SweepResult out;
  out.sizes.assign(sizes.begin(), sizes.end());
  out.series.resize(n_series);
  out.series[0].name = "DefaultLAM";
  for (std::size_t s = 0; s < comps.size(); ++s)
    out.series[s + 1].name = comps[s].name();
  for (auto& series : out.series)
    series.completion.assign(sizes.size(), kUnowned);

  // One task per (size, series) cell; each simulates on its own Network
  // whose seed is derived from (size index, series name) — never from
  // scheduling order, the competitor count, or the worker count — so a
  // series' results are invariant under competitor-set growth.
  pool.parallel_for(
      sizes.size() * n_series, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cell = lo; cell < hi; ++cell) {
          if (!shard.owns(cell)) continue;
          const std::size_t i = cell / n_series;
          const std::size_t s = cell % n_series;
          const Bytes m = sizes[i];
          sim::Network net(
              grid, jitter,
              measured_cell_seed(seed, i, out.series[s].name));
          if (s == 0) {
            out.series[0].completion[i] =
                collective::run_grid_unaware_binomial(net, root, m).completion;
          } else {
            const sched::SchedulerRuntimeInfo info(cache.get(root, m), m);
            out.series[s].completion[i] =
                collective::run_hierarchical_bcast(net, comps[s - 1].entry(),
                                                   info)
                    .completion;
          }
        }
      });
  return out;
}

SweepResult measured_sweep(const topology::Grid& grid, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed,
                           ThreadPool& pool) {
  InstanceCache cache(grid);
  return measured_sweep(cache, root, comps, sizes, jitter, seed, pool);
}

SweepResult measured_sweep(const topology::Grid& grid, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed) {
  ThreadPool inline_pool(0);
  return measured_sweep(grid, root, comps, sizes, jitter, seed, inline_pool);
}

}  // namespace gridcast::exp
