#include "exp/sweep.hpp"

#include <limits>

#include "collective/backends.hpp"
#include "support/error.hpp"

namespace gridcast::exp {

namespace {

constexpr double kUnowned = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void ShardSpec::validate() const {
  if (shards == 0)
    throw InvalidInput("shard spec: shards must be >= 1");
  if (shard >= shards)
    throw InvalidInput("shard spec: shard index " + std::to_string(shard) +
                       " out of range for " + std::to_string(shards) +
                       " shards");
}

std::vector<Bytes> default_size_ladder() {
  // The paper's Fig. 5/6 x-axis stops at 4 MiB; an off-by-one endpoint
  // (4.25 MiB) used to emit a 17th point past the figure.
  std::vector<Bytes> sizes;
  for (Bytes m = KiB(256); m <= MiB(4); m += KiB(256)) sizes.push_back(m);
  return sizes;
}

std::uint64_t measured_cell_seed(std::uint64_t seed, std::size_t size_index,
                                 std::string_view series_name) {
  // FNV-1a over the series name: stable across platforms, insensitive to
  // the series' position in the competitor list.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : series_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // SplitMix64 finalizer over (seed, size index, name hash) for dispersion.
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(size_index) + 1) + h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SweepResult backend_sweep(const collective::Backend& backend,
                          InstanceCache& cache, ClusterId root,
                          const std::vector<sched::Scheduler>& comps,
                          std::span<const Bytes> sizes, std::uint64_t seed,
                          ThreadPool& pool, ShardSpec shard,
                          collective::Verb verb) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(!sizes.empty(), "no sizes");
  shard.validate();
  if (!backend.supports(verb))
    throw InvalidInput("backend '" + std::string(backend.name()) +
                       "' does not support verb '" +
                       std::string(collective::verb_name(verb)) + "'");

  // The all-to-all executes one schedule per root cluster, so its gate
  // must probe every root; broadcast and scatter schedule from `root`
  // alone.
  std::vector<ClusterId> gate_roots;
  if (verb == collective::Verb::kAlltoall) {
    const auto n = static_cast<ClusterId>(cache.grid().cluster_count());
    for (ClusterId c = 0; c < n; ++c) gate_roots.push_back(c);
  } else {
    gate_roots.push_back(root);
  }

  // Derive every (root, size) instance up front in parallel: the gate
  // below must see all of them so every shard computes the same verdict (a
  // series is either fully present or absent).  This costs a sharded run
  // the full ladder's derivations per process where the cell loop alone
  // would pay ~1/shards of them — accepted: one derivation is O(clusters²)
  // gap evaluations, orders of magnitude below a single simulated cell,
  // and the cells are what sharding exists to distribute.
  pool.parallel_for(
      sizes.size() * gate_roots.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          (void)cache.get(gate_roots[i % gate_roots.size()],
                          sizes[i / gate_roots.size()]);
      });

  // Gate: a competitor races only if it can schedule *every* instance of
  // the ladder, so a series is either fully present or absent and shard
  // merging stays rectangular.  Grid-shape-specialised entries (LAN-only,
  // star-WAN) drop out here on grids they were not built for — skipped,
  // not raced.  Every shard computes the same gate (derivation is
  // deterministic), so the cell partition below agrees across shards.
  SweepResult out;
  std::vector<const sched::Scheduler*> raced;
  raced.reserve(comps.size());
  for (const auto& comp : comps) {
    bool ok = true;
    for (std::size_t i = 0; ok && i < sizes.size(); ++i) {
      for (const ClusterId r : gate_roots) {
        const InstancePtr inst = cache.get(r, sizes[i]);
        // Probe with the info the verb path will build: the competitor's
        // completion model for broadcasts, the default (eager) model for
        // scatter/alltoall — their order derivations construct exactly
        // that (scatter_wan_order / alltoall_dest_order), and a gate that
        // disagreed with their can_schedule assert would skip-vs-die
        // inconsistently.
        const sched::SchedulerRuntimeInfo info(
            *inst, sizes[i],
            verb == collective::Verb::kBcast ? comp.options().completion
                                             : sched::CompletionModel::kEager);
        ok = comp.entry().can_schedule(info);
        if (!ok) break;
      }
    }
    if (ok)
      raced.push_back(&comp);
    else
      out.skipped.emplace_back(comp.name());
  }
  if (raced.empty()) {
    std::string who;
    for (const auto& name : out.skipped) {
      if (!who.empty()) who += ", ";
      who += name;
    }
    throw InvalidInput(
        "no raceable schedulers: can_schedule refused every competitor on "
        "this grid (" + who + ")");
  }

  // The comparator series is a broadcast (the grid-unaware binomial), so
  // only broadcast sweeps carry it.
  const std::string_view baseline = verb == collective::Verb::kBcast
                                        ? backend.baseline_series()
                                        : std::string_view{};
  const std::size_t base = baseline.empty() ? 0 : 1;
  const std::size_t n_series = raced.size() + base;
  out.sizes.assign(sizes.begin(), sizes.end());
  out.series.resize(n_series);
  if (base != 0) out.series[0].name = baseline;
  for (std::size_t s = 0; s < raced.size(); ++s)
    out.series[s + base].name = raced[s]->name();
  for (auto& series : out.series)
    series.completion.assign(sizes.size(), kUnowned);

  // One task per (size, series) cell, written by index, so any worker
  // count produces the same result and foreign shards' cells stay NaN.
  // Each cell's seed derives from (size index, series name) — never from
  // scheduling order, the competitor count, or the worker count — so a
  // series' results are invariant under competitor-set growth.
  pool.parallel_for(
      sizes.size() * n_series, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cell = lo; cell < hi; ++cell) {
          if (!shard.owns(cell)) continue;
          const std::size_t i = cell / n_series;
          const std::size_t s = cell % n_series;
          const Bytes m = sizes[i];
          const std::uint64_t cell_seed =
              measured_cell_seed(seed, i, out.series[s].name);
          if (base != 0 && s == 0) {
            out.series[0].completion[i] =
                backend.baseline_bcast(root, m, cell_seed).completion;
          } else {
            const sched::Scheduler& comp = *raced[s - base];
            switch (verb) {
              case collective::Verb::kBcast: {
                const InstancePtr inst = cache.get(root, m);
                const sched::SchedulerRuntimeInfo info(
                    *inst, m, comp.options().completion);
                out.series[s].completion[i] =
                    backend.bcast(comp.entry(), info, cell_seed).completion;
                break;
              }
              // Scatter/alltoall cells re-derive their instances inside
              // the backend (the Backend verb signatures are grid-bound,
              // not info-bound — an MPI harness has no Instance at all).
              // Accepted: O(clusters²) gap evaluations per cell, below
              // the cell's own execution/prediction work; the cache still
              // serves the gate above.
              case collective::Verb::kScatter:
                out.series[s].completion[i] =
                    backend.scatter(comp.entry(), root, m, cell_seed)
                        .completion;
                break;
              case collective::Verb::kAlltoall:
                out.series[s].completion[i] =
                    backend.alltoall(comp.entry(), m, cell_seed).completion;
                break;
            }
          }
        }
      });
  return out;
}

SweepResult predicted_sweep(InstanceCache& cache, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes, ThreadPool& pool,
                            ShardSpec shard) {
  const collective::PlogpBackend backend;
  return backend_sweep(backend, cache, root, comps, sizes, /*seed=*/0, pool,
                       shard);
}

SweepResult predicted_sweep(const topology::Grid& grid, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes, ThreadPool& pool) {
  InstanceCache cache(grid);
  return predicted_sweep(cache, root, comps, sizes, pool);
}

SweepResult predicted_sweep(const topology::Grid& grid, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes) {
  ThreadPool inline_pool(0);
  return predicted_sweep(grid, root, comps, sizes, inline_pool);
}

SweepResult measured_sweep(InstanceCache& cache, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed,
                           ThreadPool& pool, ShardSpec shard) {
  const collective::SimBackend backend(cache.grid(), jitter);
  return backend_sweep(backend, cache, root, comps, sizes, seed, pool, shard);
}

SweepResult measured_sweep(const topology::Grid& grid, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed,
                           ThreadPool& pool) {
  InstanceCache cache(grid);
  return measured_sweep(cache, root, comps, sizes, jitter, seed, pool);
}

SweepResult measured_sweep(const topology::Grid& grid, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed) {
  ThreadPool inline_pool(0);
  return measured_sweep(grid, root, comps, sizes, jitter, seed, inline_pool);
}

}  // namespace gridcast::exp
