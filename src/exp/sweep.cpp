#include "exp/sweep.hpp"

#include "collective/bcast.hpp"
#include "sched/evaluate.hpp"
#include "support/error.hpp"

namespace gridcast::exp {

std::vector<Bytes> default_size_ladder() {
  std::vector<Bytes> sizes;
  for (Bytes m = KiB(256); m <= MiB(4.25); m += KiB(256)) sizes.push_back(m);
  return sizes;
}

SweepResult predicted_sweep(const topology::Grid& grid, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(!sizes.empty(), "no sizes");

  SweepResult out;
  out.sizes.assign(sizes.begin(), sizes.end());
  out.series.resize(comps.size());
  for (std::size_t s = 0; s < comps.size(); ++s)
    out.series[s].name = comps[s].name();

  for (const Bytes m : sizes) {
    const sched::Instance inst = sched::Instance::from_grid(grid, root, m);
    for (std::size_t s = 0; s < comps.size(); ++s)
      out.series[s].completion.push_back(comps[s].makespan(inst));
  }
  return out;
}

SweepResult measured_sweep(const topology::Grid& grid, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(!sizes.empty(), "no sizes");

  SweepResult out;
  out.sizes.assign(sizes.begin(), sizes.end());
  out.series.resize(comps.size() + 1);
  out.series[0].name = "DefaultLAM";
  for (std::size_t s = 0; s < comps.size(); ++s)
    out.series[s + 1].name = comps[s].name();

  std::uint64_t run_id = 0;
  for (const Bytes m : sizes) {
    {
      sim::Network net(grid, jitter, seed + run_id++);
      out.series[0].completion.push_back(
          collective::run_grid_unaware_binomial(net, root, m).completion);
    }
    const sched::Instance inst = sched::Instance::from_grid(grid, root, m);
    for (std::size_t s = 0; s < comps.size(); ++s) {
      const sched::SendOrder order = comps[s].order(inst);
      sim::Network net(grid, jitter, seed + run_id++);
      out.series[s + 1].completion.push_back(
          collective::run_hierarchical_bcast(net, root, order, m).completion);
    }
  }
  return out;
}

}  // namespace gridcast::exp
