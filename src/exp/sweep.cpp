#include "exp/sweep.hpp"

#include "collective/bcast.hpp"
#include "sched/evaluate.hpp"
#include "support/error.hpp"

namespace gridcast::exp {

std::vector<Bytes> default_size_ladder() {
  std::vector<Bytes> sizes;
  for (Bytes m = KiB(256); m <= MiB(4.25); m += KiB(256)) sizes.push_back(m);
  return sizes;
}

SweepResult predicted_sweep(const topology::Grid& grid, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes, ThreadPool& pool) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(!sizes.empty(), "no sizes");

  SweepResult out;
  out.sizes.assign(sizes.begin(), sizes.end());
  out.series.resize(comps.size());
  for (std::size_t s = 0; s < comps.size(); ++s) {
    out.series[s].name = comps[s].name();
    out.series[s].completion.assign(sizes.size(), 0.0);
  }

  // One task per message size: the instance derivation (O(clusters^2)) is
  // shared by all competitors of that size.  Cells are written by index,
  // so any worker count produces the same result.
  pool.parallel_for(sizes.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const sched::Instance inst =
          sched::Instance::from_grid(grid, root, sizes[i]);
      for (std::size_t s = 0; s < comps.size(); ++s) {
        const sched::SchedulerRuntimeInfo info(inst, sizes[i],
                                               comps[s].options().completion);
        out.series[s].completion[i] =
            sched::evaluate_order(inst, comps[s].order(info),
                                  info.completion())
                .makespan;
      }
    }
  });
  return out;
}

SweepResult predicted_sweep(const topology::Grid& grid, ClusterId root,
                            const std::vector<sched::Scheduler>& comps,
                            std::span<const Bytes> sizes) {
  ThreadPool inline_pool(0);
  return predicted_sweep(grid, root, comps, sizes, inline_pool);
}

SweepResult measured_sweep(const topology::Grid& grid, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed,
                           ThreadPool& pool) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(!sizes.empty(), "no sizes");

  const std::size_t n_series = comps.size() + 1;
  SweepResult out;
  out.sizes.assign(sizes.begin(), sizes.end());
  out.series.resize(n_series);
  out.series[0].name = "DefaultLAM";
  for (std::size_t s = 0; s < comps.size(); ++s)
    out.series[s + 1].name = comps[s].name();
  for (auto& series : out.series) series.completion.assign(sizes.size(), 0.0);

  // One task per (size, series) cell; each simulates on its own Network
  // whose seed is derived from the cell index, never from scheduling
  // order, so results are bit-identical for any worker count.
  pool.parallel_for(
      sizes.size() * n_series, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cell = lo; cell < hi; ++cell) {
          const std::size_t i = cell / n_series;
          const std::size_t s = cell % n_series;
          const Bytes m = sizes[i];
          sim::Network net(grid, jitter, seed + cell);
          if (s == 0) {
            out.series[0].completion[i] =
                collective::run_grid_unaware_binomial(net, root, m).completion;
          } else {
            out.series[s].completion[i] =
                collective::run_hierarchical_bcast(
                    net, root, comps[s - 1].entry(), m)
                    .completion;
          }
        }
      });
  return out;
}

SweepResult measured_sweep(const topology::Grid& grid, ClusterId root,
                           const std::vector<sched::Scheduler>& comps,
                           std::span<const Bytes> sizes,
                           sim::JitterConfig jitter, std::uint64_t seed) {
  ThreadPool inline_pool(0);
  return measured_sweep(grid, root, comps, sizes, jitter, seed, inline_pool);
}

}  // namespace gridcast::exp
