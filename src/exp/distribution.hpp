#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/param_ranges.hpp"
#include "sched/registry.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

/// Makespan distribution capture.
///
/// The paper reports only means (Figs. 1-3) and hit counts (Fig. 4); with
/// 10000 iterations per point the distributions behind them are wide
/// (T alone spans 20-3000 ms).  This harness retains enough shape per
/// strategy — exact samples for small runs, fixed-grid histograms for
/// large ones — to report quantiles and tail behaviour, which is where
/// ECEF-LAT's slow-cluster insurance actually shows up.
namespace gridcast::exp {

struct DistributionConfig {
  std::size_t clusters = 10;
  std::uint64_t iterations = 2000;
  std::uint64_t seed = 42;
  ClusterId root = 0;
  ParamRanges ranges = ParamRanges::paper();
  /// Histogram range; makespans are clamped into it.  The default covers
  /// everything Table 2 can produce at <= 50 clusters.
  double hist_lo = 0.0;
  double hist_hi = 30.0;
  std::size_t hist_bins = 3000;
};

struct DistributionSeries {
  std::string name;
  RunningStats stats;
  Histogram histogram;

  DistributionSeries(std::string n, const DistributionConfig& cfg)
      : name(std::move(n)),
        histogram(cfg.hist_lo, cfg.hist_hi, cfg.hist_bins) {}

  [[nodiscard]] double quantile(double q) const {
    return histogram.quantile(q);
  }
};

struct DistributionResult {
  std::vector<DistributionSeries> series;  ///< one per strategy
  std::uint64_t iterations = 0;
};

/// Run the race capturing full distributions.  Deterministic for a given
/// seed regardless of the pool's worker count.
[[nodiscard]] DistributionResult run_distribution(
    const std::vector<sched::Scheduler>& comps, const DistributionConfig& cfg,
    ThreadPool& pool);

}  // namespace gridcast::exp
