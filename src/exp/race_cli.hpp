#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "exp/instance_cache.hpp"
#include "exp/param_ranges.hpp"
#include "exp/sweep.hpp"
#include "io/bench_json.hpp"
#include "sched/registry.hpp"
#include "support/thread_pool.hpp"

/// The registry-driven race harness behind the `gridcast_race` CLI.
///
/// Two engines live here.  The *sweep* engine (`run_race_sweep`) races a
/// competitor list over a message-size ladder on a concrete grid — the
/// Figs. 5/6 experiment.  The *Monte-Carlo race* engine (`run_race_grid`,
/// CLI `--race`) runs the Figs. 1-4 experiment: random Table 2 instances
/// per cluster count, mean completion plus hit counts, sharded over the
/// (parameter-point x iteration-block) grid with the same deterministic
/// `--shards/--shard/--merge` machinery and the same `io::BenchReport`
/// JSON (extended with per-series hits) as the sweeps.
///
/// The sweep engine replaces the per-figure bench binaries' duplicated
/// logic: any list of registered scheduler names races over a message-size
/// ladder on any grid, through any registered collective backend —
/// `--backend=plogp` (analytic model) or `--backend=sim` (discrete-event
/// simulator) replace the old predicted/measured mode fork, whose
/// spellings survive as backend aliases — optionally sharded across
/// processes.  Everything lives in the library — the tool is a thin
/// `main` — so argument parsing, shard partitioning, merging and the
/// baseline gate are unit-testable.
namespace gridcast::exp {

/// What to race.  `sched_names` are scheduler-registry names (canonical or
/// alias); empty `sizes` means `default_size_ladder()`; `backend` is a
/// backend-registry name ("plogp"/"sim", or the legacy "predicted"/
/// "measured" aliases).
struct RaceSpec {
  std::vector<std::string> sched_names;
  std::vector<Bytes> sizes;
  ClusterId root = 0;
  std::string backend = "plogp";
  /// Which collective the sweep races (`--verb`): broadcast by default,
  /// scatter (sizes = per-rank blocks) or all-to-all (sizes = per-rank-
  /// pair blocks).  A backend that does not support the verb fails with a
  /// one-line diagnostic.
  collective::Verb verb = collective::Verb::kBcast;
  sched::CompletionModel completion = sched::CompletionModel::kEager;
  double jitter = 0.05;     ///< sim backend only
  std::uint64_t seed = 1;   ///< non-deterministic backends only
  ShardSpec shard = {};
  /// Also time each heuristic's scheduling cost (wall_time_s, the paper's
  /// Section 7 complexity concern).  Unsharded runs only: wall time is
  /// machine-dependent and would break shard-merge byte-identity.
  bool wall = false;
  /// Also time each competitor's *per-selection* cost at every ladder
  /// point (`micro_scheduling_cost_s`, min over timing passes) — the
  /// budget that keeps composite selectors ("auto") honest.  Unsharded
  /// runs only, like `wall`.
  bool sched_cost = false;
  /// Lower-bound pruning in composite selectors ("auto"); `--no-prune`
  /// clears it.  A pure optimisation: winners and reports are
  /// byte-identical either way (tests and CI pin exactly that).
  bool prune = true;
};

/// Resolve registry names into Scheduler handles; an unknown name throws
/// InvalidInput listing every registered scheduler.
[[nodiscard]] std::vector<sched::Scheduler> resolve_competitors(
    const std::vector<std::string>& names, sched::HeuristicOptions opts);

/// Race `spec` over the cache's grid through the backend `spec.backend`
/// names.  Only cells owned by `spec.shard` are computed (the rest
/// serialise as null); `grid_name` is recorded in the report so merges and
/// baseline comparisons can refuse mismatched inputs.  Schedulers gated
/// out by `can_schedule` get no series; their names are appended to
/// `skipped` when given.
[[nodiscard]] io::BenchReport run_race_sweep(
    InstanceCache& cache, const std::string& grid_name, const RaceSpec& spec,
    ThreadPool& pool, std::vector<std::string>* skipped = nullptr);

/// Recombine one report per shard (any order) into the report an
/// unsharded run would have produced — byte-identical once serialised.
/// Throws InvalidInput on mismatched metadata, duplicate/missing shards,
/// or cells covered by zero or multiple shards.
[[nodiscard]] io::BenchReport merge_race_shards(
    const std::vector<io::BenchReport>& shards);

// ------------------------------------------------------------------------
// Monte-Carlo race mode (`gridcast_race --race`, the Figs. 1-4 experiment)
// ------------------------------------------------------------------------

/// The Figs. 1-4 Monte-Carlo race: per cluster count (a *parameter point*),
/// draw `iterations` Table 2 instances, race every competitor on each draw
/// through a collective backend, and report the mean completion plus the
/// hit counts (iterations where a series matched the global minimum; ties
/// credit every achiever, so counts can sum past `iterations` — Fig. 4's
/// convention).
///
/// Instance-only backends ("plogp") time the sampled instances directly —
/// the paper's configuration.  Grid-executing backends ("sim") need
/// `realise = true`: each draw is realised as a synthetic grid
/// (exp/realise.hpp) and the collective is executed message-level on it.
/// Without the flag such a backend is a designed error — the
/// `instance_only()` mismatch — because executing a draw is a different
/// experiment than scoring it, and the switch should be explicit.
struct RaceGridSpec {
  std::vector<std::string> sched_names;
  /// Parameter points; empty = `fig1_cluster_ladder()`.  Each >= 2, no
  /// duplicates (they would make shard merging ambiguous).
  std::vector<std::size_t> cluster_counts;
  std::uint64_t iterations = 1000;
  /// Iterations per shard cell.  The (point x block) partition is the unit
  /// of sharding *and* of mean accumulation — per-block sums fold in block
  /// order, so any shard count (and any thread count) reproduces the
  /// unsharded report byte for byte.  Must agree across shards.
  std::uint64_t block_iters = 256;
  std::uint64_t seed = 42;
  ClusterId root = 0;
  std::string backend = "plogp";
  sched::CompletionModel completion = sched::CompletionModel::kEager;
  double jitter = 0.05;  ///< executing backends only
  bool realise = false;  ///< execute draws on synthetic grid realisations
  ParamRanges ranges = ParamRanges::paper();
  /// Relative tie tolerance for hit counting (montecarlo.hpp semantics).
  double hit_epsilon = 1e-9;
  /// Lower-bound pruning in composite selectors, as in RaceSpec::prune.
  bool prune = true;
  ShardSpec shard = {};
};

/// The paper's cluster-count ladders: Fig. 1 races 2-10 clusters, Figs.
/// 2-4 race 5-50 in steps of 5.
[[nodiscard]] std::vector<std::size_t> fig1_cluster_ladder();
[[nodiscard]] std::vector<std::size_t> fig2_cluster_ladder();

/// Deterministic RNG stream id for one parameter point's instance draws.
/// Mixed from the race seed and the *cluster count* only — never from the
/// competitor set, the point's position in the ladder, or the shard
/// layout — so draws are invariant under competitor growth and ladder
/// reshuffling (the PR 2 seed lesson, applied to races).
[[nodiscard]] std::uint64_t race_instance_seed(std::uint64_t seed,
                                               std::size_t clusters);

/// Deterministic backend seed for one (point, iteration, series) execution
/// — FNV-1a over the series name, so adding a competitor cannot reseed the
/// series that were already there.  Deterministic backends ignore it.
[[nodiscard]] std::uint64_t race_exec_seed(std::uint64_t seed,
                                           std::size_t clusters,
                                           std::uint64_t iteration,
                                           std::string_view series_name);

/// Run the race.  Series are the resolved competitors in order, then the
/// synthetic "GlobalMin" row (mean of the per-iteration minima, Figs. 1-2's
/// bottom curve; it has no hit counts).  Unsharded runs return the final
/// report; sharded runs return the shard form (per-block partials) that
/// `merge_race_grid_shards` recombines.  Throws InvalidInput for unknown
/// schedulers, a `can_schedule` refusal (a race cannot skip entries without
/// skewing the hit denominator), an instance-only mismatch (see
/// `RaceGridSpec::realise`), or a backend without broadcast support.
[[nodiscard]] io::BenchReport run_race_grid(const RaceGridSpec& spec,
                                            ThreadPool& pool);

/// Recombine Monte-Carlo race shards (any order) into the final report an
/// unsharded run would have produced — byte-identical once serialised.
/// Throws InvalidInput on mismatched metadata, duplicate/missing shards,
/// or (point, block) cells covered by zero or multiple shards.
[[nodiscard]] io::BenchReport merge_race_grid_shards(
    const std::vector<io::BenchReport>& shards);

/// One parsed `gridcast_race` invocation.
struct RaceCli {
  enum class Action : std::uint8_t { kRun, kRace, kMerge, kCheck,
                                     kListBackends };
  Action action = Action::kRun;

  // kRun
  RaceSpec spec;
  std::string grid_arg = "grid5000";  ///< "grid5000" or a grid-file path
  std::size_t threads = 0;            ///< 0 = inline
  std::string out_path;               ///< empty = stdout

  // kRace (`--race`): empty sched_names = the paper's seven heuristics
  RaceGridSpec race;

  // kMerge: out_path then inputs, as in `--merge out.json a.json b.json`
  std::vector<std::string> merge_inputs;

  // kCheck
  std::string check_path;
  std::string baseline_path;
  io::BenchCompareOptions tolerances;
};

/// Parse argv (without the program name).  Throws InvalidInput on unknown
/// flags, malformed values, or inconsistent combinations (e.g. `--wall`
/// with `--shards`, or sweep-only flags like `--sizes`/`--grid` with
/// `--race`); the message is ready for stderr.
[[nodiscard]] RaceCli parse_race_cli(const std::vector<std::string>& args);

/// Parse a `--clusters` list: comma-separated tokens, each a count ("8"),
/// an inclusive range ("5-50", step 1) or a stepped range ("5-50:5").
[[nodiscard]] std::vector<std::size_t> parse_cluster_list(
    const std::string& value);

/// Parse a size token: plain bytes ("262144") or a K/KiB/M/MiB-suffixed
/// decimal ("256K", "4.25MiB", case-insensitive).
[[nodiscard]] Bytes parse_size(const std::string& token);

/// Execute a parsed invocation end to end (grid loading, racing, merging,
/// or the baseline gate).  Reports go to `out_path` or `out`; diagnostics
/// go to `err`.  Returns the process exit code (non-zero when the check
/// action finds regressions).
int run_race_cli(const RaceCli& cli, std::ostream& out, std::ostream& err);

/// CLI usage text.
[[nodiscard]] std::string race_cli_usage();

}  // namespace gridcast::exp
