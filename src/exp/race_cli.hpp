#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/instance_cache.hpp"
#include "exp/sweep.hpp"
#include "io/bench_json.hpp"
#include "sched/registry.hpp"
#include "support/thread_pool.hpp"

/// The registry-driven race harness behind the `gridcast_race` CLI.
///
/// One engine replaces the per-figure bench binaries' duplicated sweep
/// logic: any list of registered scheduler names races over a message-size
/// ladder on any grid, through any registered collective backend —
/// `--backend=plogp` (analytic model) or `--backend=sim` (discrete-event
/// simulator) replace the old predicted/measured mode fork, whose
/// spellings survive as backend aliases — optionally sharded across
/// processes.  Everything lives in the library — the tool is a thin
/// `main` — so argument parsing, shard partitioning, merging and the
/// baseline gate are unit-testable.
namespace gridcast::exp {

/// What to race.  `sched_names` are scheduler-registry names (canonical or
/// alias); empty `sizes` means `default_size_ladder()`; `backend` is a
/// backend-registry name ("plogp"/"sim", or the legacy "predicted"/
/// "measured" aliases).
struct RaceSpec {
  std::vector<std::string> sched_names;
  std::vector<Bytes> sizes;
  ClusterId root = 0;
  std::string backend = "plogp";
  sched::CompletionModel completion = sched::CompletionModel::kEager;
  double jitter = 0.05;     ///< sim backend only
  std::uint64_t seed = 1;   ///< non-deterministic backends only
  ShardSpec shard = {};
  /// Also time each heuristic's scheduling cost (wall_time_s, the paper's
  /// Section 7 complexity concern).  Unsharded runs only: wall time is
  /// machine-dependent and would break shard-merge byte-identity.
  bool wall = false;
};

/// Resolve registry names into Scheduler handles; an unknown name throws
/// InvalidInput listing every registered scheduler.
[[nodiscard]] std::vector<sched::Scheduler> resolve_competitors(
    const std::vector<std::string>& names, sched::HeuristicOptions opts);

/// Race `spec` over the cache's grid through the backend `spec.backend`
/// names.  Only cells owned by `spec.shard` are computed (the rest
/// serialise as null); `grid_name` is recorded in the report so merges and
/// baseline comparisons can refuse mismatched inputs.  Schedulers gated
/// out by `can_schedule` get no series; their names are appended to
/// `skipped` when given.
[[nodiscard]] io::BenchReport run_race_sweep(
    InstanceCache& cache, const std::string& grid_name, const RaceSpec& spec,
    ThreadPool& pool, std::vector<std::string>* skipped = nullptr);

/// Recombine one report per shard (any order) into the report an
/// unsharded run would have produced — byte-identical once serialised.
/// Throws InvalidInput on mismatched metadata, duplicate/missing shards,
/// or cells covered by zero or multiple shards.
[[nodiscard]] io::BenchReport merge_race_shards(
    const std::vector<io::BenchReport>& shards);

/// One parsed `gridcast_race` invocation.
struct RaceCli {
  enum class Action : std::uint8_t { kRun, kMerge, kCheck, kListBackends };
  Action action = Action::kRun;

  // kRun
  RaceSpec spec;
  std::string grid_arg = "grid5000";  ///< "grid5000" or a grid-file path
  std::size_t threads = 0;            ///< 0 = inline
  std::string out_path;               ///< empty = stdout

  // kMerge: out_path then inputs, as in `--merge out.json a.json b.json`
  std::vector<std::string> merge_inputs;

  // kCheck
  std::string check_path;
  std::string baseline_path;
  io::BenchCompareOptions tolerances;
};

/// Parse argv (without the program name).  Throws InvalidInput on unknown
/// flags, malformed values, or inconsistent combinations (e.g. `--wall`
/// with `--shards`); the message is ready for stderr.
[[nodiscard]] RaceCli parse_race_cli(const std::vector<std::string>& args);

/// Parse a size token: plain bytes ("262144") or a K/KiB/M/MiB-suffixed
/// decimal ("256K", "4.25MiB", case-insensitive).
[[nodiscard]] Bytes parse_size(const std::string& token);

/// Execute a parsed invocation end to end (grid loading, racing, merging,
/// or the baseline gate).  Reports go to `out_path` or `out`; diagnostics
/// go to `err`.  Returns the process exit code (non-zero when the check
/// action finds regressions).
int run_race_cli(const RaceCli& cli, std::ostream& out, std::ostream& err);

/// CLI usage text.
[[nodiscard]] std::string race_cli_usage();

}  // namespace gridcast::exp
