#include "exp/param_ranges.hpp"

#include "support/error.hpp"

namespace gridcast::exp {

void ParamRanges::validate() const {
  GRIDCAST_ASSERT(0.0 <= L_lo && L_lo <= L_hi, "bad latency range");
  GRIDCAST_ASSERT(0.0 <= g_lo && g_lo <= g_hi, "bad gap range");
  GRIDCAST_ASSERT(0.0 <= T_lo && T_lo <= T_hi, "bad broadcast-time range");
}

void sample_instance_into(const ParamRanges& ranges, std::size_t clusters,
                          Rng& rng, ClusterId root, sched::Instance& out) {
  ranges.validate();
  GRIDCAST_ASSERT(clusters >= 1, "need at least one cluster");
  GRIDCAST_ASSERT(root < clusters, "root out of range");

  // The draw order (all T, then the shared gap, then per unordered pair
  // gap before latency) is part of the reproducibility contract: any
  // reordering changes every seeded experiment.
  out.reshape(root, clusters);
  for (std::size_t c = 0; c < clusters; ++c)
    out.set_T(c, rng.uniform(ranges.T_lo, ranges.T_hi));
  const Time shared_gap = rng.uniform(ranges.g_lo, ranges.g_hi);
  for (std::size_t i = 0; i < clusters; ++i) {
    for (std::size_t j = i + 1; j < clusters; ++j) {
      const Time gv = ranges.gap_sampling == GapSampling::kSharedPerInstance
                          ? shared_gap
                          : rng.uniform(ranges.g_lo, ranges.g_hi);
      const Time lv = rng.uniform(ranges.L_lo, ranges.L_hi);
      out.set_symmetric_edge(i, j, gv, lv);
    }
  }
}

sched::Instance sample_instance(const ParamRanges& ranges,
                                std::size_t clusters, Rng& rng,
                                ClusterId root) {
  sched::Instance out;
  sample_instance_into(ranges, clusters, rng, root, out);
  return out;
}

}  // namespace gridcast::exp
