#pragma once

#include "sched/instance.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

/// Table 2 parameter sampling.
///
/// The paper's simulations (Section 6) do not synthesise topologies; they
/// draw the heuristics' inputs directly: per-pair latency L and gap g, and
/// per-cluster internal broadcast time T, uniformly from measured GRID5000
/// ranges.  Links are symmetric (one draw per unordered pair).
namespace gridcast::exp {

/// How the gap parameter is drawn (DESIGN.md §4.9).  The paper's wording —
/// "at each iteration, the parameters L, g and T are randomly chose among
/// the values presented in Table 2" — is ambiguous between one draw per
/// cluster pair and one per iteration.  Per-pair (the heterogeneous
/// network the heuristics were designed for) reproduces the Fig. 1-3
/// orderings and the tight ECEF band and is the default.  Shared-gap
/// removes transfer heterogeneity entirely, making the T-aware lookaheads
/// all-dominant (ECEF-LAT hit rate ≈ 100%) — an upper-bound ablation that
/// brackets the paper's "ECEF-LAT stays constant around 45%" between the
/// two modes.  Latency is drawn per pair in both modes.
enum class GapSampling : std::uint8_t {
  kPerPair,            ///< independent g per unordered cluster pair (default)
  kSharedPerInstance,  ///< one g for the whole iteration (ablation)
};

struct ParamRanges {
  Time L_lo = ms(1.0);
  Time L_hi = ms(15.0);
  Time g_lo = ms(100.0);
  Time g_hi = ms(600.0);
  Time T_lo = ms(20.0);
  Time T_hi = ms(3000.0);
  GapSampling gap_sampling = GapSampling::kPerPair;

  /// The exact Table 2 ranges (1 MB message on GRID5000).
  [[nodiscard]] static ParamRanges paper() { return {}; }

  /// Shared-gap variant (homogeneous-transfer ablation).
  [[nodiscard]] static ParamRanges shared_gap() {
    ParamRanges r;
    r.gap_sampling = GapSampling::kSharedPerInstance;
    return r;
  }

  void validate() const;
};

/// Draw one scheduling instance with `clusters` clusters rooted at `root`.
[[nodiscard]] sched::Instance sample_instance(const ParamRanges& ranges,
                                              std::size_t clusters, Rng& rng,
                                              ClusterId root = 0);

/// Same draws, refilling `out` in place — the Monte-Carlo loops' variant,
/// which reuses the matrices' storage across iterations.  Draw order is
/// identical to sample_instance, so seeded results do not change.
void sample_instance_into(const ParamRanges& ranges, std::size_t clusters,
                          Rng& rng, ClusterId root, sched::Instance& out);

}  // namespace gridcast::exp
