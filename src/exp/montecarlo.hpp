#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collective/backend.hpp"
#include "exp/param_ranges.hpp"
#include "sched/registry.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

/// The Monte-Carlo heuristic race behind Figs. 1–4.
///
/// Per iteration: draw a Table 2 instance, run every competing strategy on
/// it through a collective backend, record each completion, and credit a
/// "hit" to every strategy whose completion matches the iteration's global
/// minimum (the paper's hit-rate metric; ties credit all achievers, which
/// is why Fig. 4's counts sum to more than the iteration count — semantics
/// pinned by tests/exp/test_montecarlo.cpp).
///
/// Determinism: iteration i uses RNG stream (seed, i) regardless of which
/// worker executes it, so results are bit-identical for any thread count.
///
/// This is the single-point library harness (RunningStats over one cluster
/// count).  The CLI/report/sharding form of the same experiment — one
/// report across a whole cluster-count ladder, mergeable shard outputs —
/// is exp::run_race_grid (exp/race_cli.hpp), which shares the draw
/// distribution and hit semantics but derives its seeds per
/// (cluster count, iteration, series) so reports are invariant under
/// competitor-set growth.
namespace gridcast::exp {

struct RaceConfig {
  std::size_t clusters = 10;
  std::uint64_t iterations = 10000;
  std::uint64_t seed = 42;
  ClusterId root = 0;
  ParamRanges ranges = ParamRanges::paper();
  /// Relative tie tolerance for hit counting.
  double hit_epsilon = 1e-9;
};

struct RaceResult {
  std::vector<std::string> names;           ///< per strategy
  std::vector<RunningStats> makespan;       ///< seconds, per strategy
  std::vector<std::uint64_t> hits;          ///< global-minimum matches
  RunningStats global_min;                  ///< the per-iteration minimum
  std::uint64_t iterations = 0;

  /// hits[s] / iterations.
  [[nodiscard]] double hit_rate(std::size_t s) const;
};

/// Run the race through `backend`.  Instances are *sampled* (Table 2
/// parameter draws, no grid behind them), so the backend must be able to
/// time a schedule from the instance alone — `backend.instance_only()`
/// must hold; grid-executing backends like "sim" throw InvalidInput.
/// `pool` may have zero workers (inline execution).
[[nodiscard]] RaceResult run_race(const collective::Backend& backend,
                                  const std::vector<sched::Scheduler>& comps,
                                  const RaceConfig& cfg, ThreadPool& pool);

/// As above, through the analytic "plogp" backend — the paper's Figs. 1–4
/// configuration.
[[nodiscard]] RaceResult run_race(const std::vector<sched::Scheduler>& comps,
                                  const RaceConfig& cfg, ThreadPool& pool);

}  // namespace gridcast::exp
