#include "exp/realise.hpp"

#include <string>
#include <utility>
#include <vector>

#include "plogp/collective_predict.hpp"
#include "plogp/gap_function.hpp"
#include "plogp/params.hpp"
#include "topology/cluster.hpp"

namespace gridcast::exp {

namespace {

/// A link whose single pLogP knob is the pair we must reproduce: constant
/// gap (size-free), explicit latency, zero overheads.  Zero overheads keep
/// the simulator's delivery time at exactly gap + latency — the paper's
/// transfer cost — instead of adding the receive-overhead residual real
/// measured links carry.
plogp::Params exact_link(Time gap, Time latency) {
  plogp::Params p;
  p.L = latency;
  p.g = plogp::GapFunction::constant(gap);
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(0.0);
  return p;
}

}  // namespace

topology::Grid realise_instance(const sched::Instance& inst) {
  inst.validate();
  const std::size_t n = inst.clusters();

  // Two ranks per cluster: the binomial internal broadcast is then a
  // single intra send, and with zero latency/overheads both the analytic
  // predictor and the simulator time it at exactly the intra gap = T_c.
  std::vector<topology::Cluster> clusters;
  clusters.reserve(n);
  for (ClusterId c = 0; c < n; ++c)
    clusters.emplace_back("c" + std::to_string(c), 2,
                          exact_link(inst.T(c), 0.0),
                          plogp::BcastAlgorithm::kBinomial);

  topology::Grid grid(std::move(clusters));
  // Instances sampled from Table 2 are symmetric, but the Instance type is
  // not; set each direction from its own matrix entry.
  for (ClusterId i = 0; i < n; ++i)
    for (ClusterId j = 0; j < n; ++j)
      if (i != j) grid.set_link(i, j, exact_link(inst.g(i, j), inst.L(i, j)));
  grid.validate();
  return grid;
}

}  // namespace gridcast::exp
