#include "exp/race_cli.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <set>
#include <string_view>

#include "collective/backend.hpp"
#include "io/grid_io.hpp"
#include "support/error.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::exp {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t parse_u64(const std::string& token, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw InvalidInput(std::string(what) + ": '" + token +
                       "' is not a non-negative integer");
  return v;
}

double parse_double(const std::string& token, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty())
    throw InvalidInput(std::string(what) + ": '" + token +
                       "' is not a number");
  return v;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Bytes parse_size(const std::string& token) {
  std::size_t suffix = 0;
  while (suffix < token.size() &&
         (std::isdigit(static_cast<unsigned char>(token[suffix])) ||
          token[suffix] == '.'))
    ++suffix;
  const std::string num = token.substr(0, suffix);
  const std::string unit = lower(token.substr(suffix));
  if (num.empty())
    throw InvalidInput("size '" + token + "' has no numeric part");
  const double v = parse_double(num, "size");
  double scale = 1.0;
  if (unit == "k" || unit == "kib")
    scale = 1024.0;
  else if (unit == "m" || unit == "mib")
    scale = 1048576.0;
  else if (!unit.empty())
    throw InvalidInput("size '" + token +
                       "': unknown unit '" + unit + "' (use K/KiB/M/MiB)");
  const double bytes = v * scale;
  // >= 1 (not > 0): a sub-byte size like "0.5" would truncate to 0 and
  // only die much later on a message-size assertion.  The upper bound
  // keeps the cast to Bytes defined.
  if (!(bytes >= 1.0))
    throw InvalidInput("size '" + token + "' must be at least one byte");
  if (bytes > 9.0e18)
    throw InvalidInput("size '" + token + "' is out of range");
  return static_cast<Bytes>(bytes);
}

std::vector<sched::Scheduler> resolve_competitors(
    const std::vector<std::string>& names, sched::HeuristicOptions opts) {
  std::vector<sched::Scheduler> out;
  out.reserve(names.size());
  for (const auto& name : names)
    out.emplace_back(name, opts);  // throws, listing registered names
  // Duplicate series would make merge coverage and the baseline gate
  // ambiguous; reject them by canonical name so `ecef-lat,ECEF-LAT` is
  // caught too.
  std::set<std::string_view> seen;
  for (const auto& c : out)
    if (!seen.insert(c.name()).second)
      throw InvalidInput("scheduler '" + std::string(c.name()) +
                         "' selected more than once");
  return out;
}

io::BenchReport run_race_sweep(InstanceCache& cache,
                               const std::string& grid_name,
                               const RaceSpec& spec, ThreadPool& pool,
                               std::vector<std::string>* skipped) {
  using clock = std::chrono::steady_clock;

  if (spec.sched_names.empty())
    throw InvalidInput("no schedulers selected (use --sched=a,b,c or all)");
  if (spec.wall && spec.shard.shards > 1)
    throw InvalidInput(
        "--wall requires an unsharded run (wall time is machine-local and "
        "would break shard-merge byte-identity)");
  spec.shard.validate();

  sched::HeuristicOptions opts;
  opts.completion = spec.completion;
  const std::vector<sched::Scheduler> comps =
      resolve_competitors(spec.sched_names, opts);
  const std::vector<Bytes> sizes =
      spec.sizes.empty() ? default_size_ladder() : spec.sizes;

  collective::BackendOptions bopts;
  bopts.grid = &cache.grid();
  bopts.jitter = {spec.jitter};
  const collective::BackendPtr backend =
      collective::backend_registry().make(spec.backend, bopts);

  const SweepResult sweep = backend_sweep(*backend, cache, spec.root, comps,
                                          sizes, spec.seed, pool, spec.shard);
  if (skipped != nullptr)
    skipped->insert(skipped->end(), sweep.skipped.begin(),
                    sweep.skipped.end());

  io::BenchReport r;
  r.bench = "race";
  r.grid = grid_name;
  r.mode = backend->mode_label();
  r.root = spec.root;
  r.seed = spec.seed;
  r.jitter = spec.jitter;
  r.shards = spec.shard.shards;
  r.shard = spec.shard.shard;
  r.sizes = sweep.sizes;
  r.series.reserve(sweep.series.size());
  for (const auto& s : sweep.series)
    r.series.push_back({s.name, kNaN, s.completion});

  if (spec.wall) {
    // Scheduling cost only (the paper's Section 7 complexity concern):
    // instances come pre-derived from the cache, the loop runs
    // single-threaded, and we keep the *minimum* of several passes — the
    // standard robust estimator — so the number is comparable run over
    // run and across CI machines.  Series are matched by name: the
    // backend's baseline row (which schedules nothing) and any gated-out
    // competitor have no wall time.
    constexpr int kWallPasses = 10;
    for (const Bytes m : sizes) (void)cache.get(spec.root, m);
    for (const auto& comp : comps) {
      io::BenchSeries* series = nullptr;
      for (auto& s : r.series)
        if (s.name == comp.name()) series = &s;
      if (series == nullptr) continue;  // gated out
      double best = std::numeric_limits<double>::infinity();
      for (int pass = -1; pass < kWallPasses; ++pass) {  // -1 = warmup
        const auto t0 = clock::now();
        for (const Bytes m : sizes)
          (void)comp.makespan(*cache.get(spec.root, m));
        const double dt =
            std::chrono::duration<double>(clock::now() - t0).count();
        if (pass >= 0) best = std::min(best, dt);
      }
      series->wall_time_s = best;
    }
  }
  return r;
}

io::BenchReport merge_race_shards(const std::vector<io::BenchReport>& shards) {
  if (shards.empty()) throw InvalidInput("merge: no shard reports given");
  const io::BenchReport& ref = shards.front();
  const std::size_t n = ref.shards;
  if (shards.size() != n)
    throw InvalidInput("merge: report declares " + std::to_string(n) +
                       " shards but " + std::to_string(shards.size()) +
                       " files were given");

  std::set<std::size_t> indices;
  for (const auto& s : shards) {
    if (s.bench != ref.bench || s.grid != ref.grid || s.mode != ref.mode ||
        s.root != ref.root || s.sizes != ref.sizes)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " metadata does not match shard " +
                         std::to_string(ref.shard));
    if (s.mode == "measured" && (s.seed != ref.seed || s.jitter != ref.jitter))
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " seed/jitter does not match");
    if (s.shards != n)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " declares a different shard count");
    if (!indices.insert(s.shard).second)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " appears twice");
    if (s.series.size() != ref.series.size())
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " has a different series count");
    for (std::size_t i = 0; i < s.series.size(); ++i)
      if (s.series[i].name != ref.series[i].name)
        throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                           " series order/name mismatch at index " +
                           std::to_string(i));
  }

  io::BenchReport out = ref;
  out.shards = 1;
  out.shard = 0;
  const std::size_t n_series = ref.series.size();
  for (std::size_t i = 0; i < ref.sizes.size(); ++i) {
    for (std::size_t s = 0; s < n_series; ++s) {
      const std::size_t cell = i * n_series + s;
      const std::size_t owner = cell % n;
      double value = kNaN;
      for (const auto& shard : shards) {
        const double v = shard.series[s].makespan_s[i];
        if (shard.shard == owner) {
          value = v;
        } else if (!std::isnan(v)) {
          throw InvalidInput(
              "merge: cell (size " + std::to_string(ref.sizes[i]) +
              ", series '" + ref.series[s].name + "') computed by shard " +
              std::to_string(shard.shard) + " but owned by shard " +
              std::to_string(owner));
        }
      }
      if (std::isnan(value))
        throw InvalidInput("merge: cell (size " +
                           std::to_string(ref.sizes[i]) + ", series '" +
                           ref.series[s].name + "') was never computed");
      out.series[s].makespan_s[i] = value;
    }
  }
  // Sharded runs never time scheduling (wall is machine-local); only a
  // trivial single-shard merge can carry it through.
  if (n > 1)
    for (auto& s : out.series) s.wall_time_s = kNaN;
  return out;
}

RaceCli parse_race_cli(const std::vector<std::string>& args) {
  RaceCli cli;
  std::vector<std::string> positionals;
  bool shards_seen = false;
  std::size_t shard_pair_count = 0;  // from a --shard=k/N form

  const auto value_of = [](const std::string& arg) {
    const std::size_t eq = arg.find('=');
    // Without this check a bare `--out` would wrap to substr(0) and
    // silently use the flag name itself as the value.
    if (eq == std::string::npos)
      throw InvalidInput("option '" + arg + "' needs a value: " + arg +
                         "=...");
    return arg.substr(eq + 1);
  };

  for (const auto& arg : args) {
    const std::string key = arg.substr(0, arg.find('='));
    if (arg == "--merge") {
      cli.action = RaceCli::Action::kMerge;
    } else if (arg == "--wall") {
      cli.spec.wall = true;
    } else if (key == "--check") {
      cli.action = RaceCli::Action::kCheck;
      cli.check_path = value_of(arg);
    } else if (key == "--baseline") {
      cli.baseline_path = value_of(arg);
    } else if (key == "--rtol") {
      cli.tolerances.makespan_rtol = parse_double(value_of(arg), "--rtol");
    } else if (key == "--wall-tol") {
      cli.tolerances.wall_factor = parse_double(value_of(arg), "--wall-tol");
    } else if (key == "--sched") {
      const std::string v = value_of(arg);
      if (lower(v) == "all") {
        cli.spec.sched_names.clear();  // empty = every registered entry
      } else {
        for (auto& name : split_csv(v)) {
          if (name.empty())
            throw InvalidInput("--sched: empty name in list '" + v + "'");
          cli.spec.sched_names.push_back(std::move(name));
        }
      }
    } else if (key == "--sizes") {
      const std::string v = value_of(arg);
      if (lower(v) == "default") {
        cli.spec.sizes.clear();
      } else {
        for (const auto& tok : split_csv(v))
          cli.spec.sizes.push_back(parse_size(tok));
      }
    } else if (key == "--grid") {
      cli.grid_arg = value_of(arg);
    } else if (key == "--root") {
      cli.spec.root =
          static_cast<ClusterId>(parse_u64(value_of(arg), "--root"));
    } else if (key == "--backend" || key == "--mode") {
      // --mode is the legacy spelling: "predicted"/"measured" are
      // registered aliases of the "plogp"/"sim" backends, so both flags
      // are one code path into the backend registry.  resolve() throws
      // at parse time for typos, listing what is registered, and stores
      // the canonical name.
      cli.spec.backend = collective::backend_registry().resolve(value_of(arg));
    } else if (arg == "--list-backends") {
      cli.action = RaceCli::Action::kListBackends;
    } else if (key == "--completion") {
      const std::string v = lower(value_of(arg));
      if (v == "eager")
        cli.spec.completion = sched::CompletionModel::kEager;
      else if (v == "after-last-send")
        cli.spec.completion = sched::CompletionModel::kAfterLastSend;
      else
        throw InvalidInput(
            "--completion must be 'eager' or 'after-last-send', got '" +
            value_of(arg) + "'");
    } else if (key == "--jitter") {
      cli.spec.jitter = parse_double(value_of(arg), "--jitter");
      if (cli.spec.jitter < 0)
        throw InvalidInput("--jitter must be >= 0");
    } else if (key == "--seed") {
      cli.spec.seed = parse_u64(value_of(arg), "--seed");
    } else if (key == "--threads") {
      cli.threads =
          static_cast<std::size_t>(parse_u64(value_of(arg), "--threads"));
    } else if (key == "--shards") {
      cli.spec.shard.shards =
          static_cast<std::size_t>(parse_u64(value_of(arg), "--shards"));
      shards_seen = true;
    } else if (key == "--shard") {
      const std::string v = value_of(arg);
      // Accept `k` or the self-describing `k/N` form.
      if (const auto slash = v.find('/'); slash != std::string::npos) {
        cli.spec.shard.shard = static_cast<std::size_t>(
            parse_u64(v.substr(0, slash), "--shard"));
        shard_pair_count = static_cast<std::size_t>(
            parse_u64(v.substr(slash + 1), "--shard"));
        // 0 is the "no k/N form seen" sentinel below; reject it here
        // instead of silently degrading to an unsharded run.
        if (shard_pair_count == 0)
          throw InvalidInput("--shard=k/N: shard count N must be >= 1");
      } else {
        cli.spec.shard.shard =
            static_cast<std::size_t>(parse_u64(v, "--shard"));
      }
    } else if (key == "--out") {
      cli.out_path = value_of(arg);
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      throw InvalidInput("unknown option '" + arg + "'\n" + race_cli_usage());
    } else {
      positionals.push_back(arg);
    }
  }

  if (shard_pair_count != 0) {
    if (shards_seen && cli.spec.shard.shards != shard_pair_count)
      throw InvalidInput("--shard=k/N disagrees with --shards");
    cli.spec.shard.shards = shard_pair_count;
  }

  switch (cli.action) {
    case RaceCli::Action::kMerge:
      if (positionals.size() < 2)
        throw InvalidInput(
            "--merge needs an output path and at least one shard file: "
            "--merge out.json a.json b.json ...");
      cli.out_path = positionals.front();
      cli.merge_inputs.assign(positionals.begin() + 1, positionals.end());
      break;
    case RaceCli::Action::kCheck:
      if (cli.baseline_path.empty())
        throw InvalidInput("--check needs --baseline=<baseline.json>");
      if (!positionals.empty())
        throw InvalidInput("unexpected argument '" + positionals.front() +
                           "'");
      break;
    case RaceCli::Action::kRun:
      if (!positionals.empty())
        throw InvalidInput("unexpected argument '" + positionals.front() +
                           "'\n" + race_cli_usage());
      cli.spec.shard.validate();
      if (cli.spec.wall && cli.spec.shard.shards > 1)
        throw InvalidInput("--wall cannot be combined with --shards");
      break;
    case RaceCli::Action::kListBackends:
      if (!positionals.empty())
        throw InvalidInput("unexpected argument '" + positionals.front() +
                           "'");
      break;
  }
  return cli;
}

namespace {

topology::Grid load_grid(const std::string& grid_arg,
                         std::string& grid_name) {
  if (lower(grid_arg) == "grid5000") {
    grid_name = "grid5000_testbed";
    return topology::grid5000_testbed();
  }
  std::ifstream in(grid_arg);
  if (!in)
    throw InvalidInput("cannot open grid file '" + grid_arg +
                       "' (use --grid=grid5000 for the built-in testbed)");
  grid_name = grid_arg;
  return io::read_grid(in);
}

io::BenchReport read_report_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInput("cannot open '" + path + "'");
  return io::read_bench_json(in);
}

void write_report(const io::BenchReport& r, const std::string& path,
                  std::ostream& fallback) {
  if (path.empty()) {
    io::write_bench_json(fallback, r);
    return;
  }
  std::ofstream out(path);
  if (!out) throw InvalidInput("cannot open '" + path + "' for writing");
  io::write_bench_json(out, r);
}

}  // namespace

int run_race_cli(const RaceCli& cli, std::ostream& out, std::ostream& err) {
  switch (cli.action) {
    case RaceCli::Action::kRun: {
      std::string grid_name;
      const topology::Grid grid = load_grid(cli.grid_arg, grid_name);
      RaceSpec spec = cli.spec;
      if (spec.sched_names.empty())
        spec.sched_names = sched::registry().names();
      InstanceCache cache(grid);
      ThreadPool pool(cli.threads);
      std::vector<std::string> skipped;
      const io::BenchReport report =
          run_race_sweep(cache, grid_name, spec, pool, &skipped);
      write_report(report, cli.out_path, out);
      err << "raced " << report.series.size() << " series x "
          << report.sizes.size() << " sizes (backend " << spec.backend
          << ", " << report.mode << ", shard " << report.shard << "/"
          << report.shards << ", " << cache.misses()
          << " instances derived)";
      if (!cli.out_path.empty()) err << " -> " << cli.out_path;
      err << "\n";
      if (!skipped.empty()) {
        err << "skipped (can_schedule refused this grid):";
        for (const auto& name : skipped) err << " " << name;
        err << "\n";
      }
      return 0;
    }
    case RaceCli::Action::kListBackends: {
      auto& reg = collective::backend_registry();
      for (const auto& name : reg.names()) {
        out << name;
        const auto aliases = reg.aliases_of(name);
        if (!aliases.empty()) {
          out << " (aliases:";
          for (const auto& a : aliases) out << " " << a;
          out << ")";
        }
        out << " - " << reg.description_of(name) << "\n";
      }
      return 0;
    }
    case RaceCli::Action::kMerge: {
      std::vector<io::BenchReport> shards;
      shards.reserve(cli.merge_inputs.size());
      for (const auto& path : cli.merge_inputs)
        shards.push_back(read_report_file(path));
      const io::BenchReport merged = merge_race_shards(shards);
      write_report(merged, cli.out_path, out);
      err << "merged " << shards.size() << " shards -> " << cli.out_path
          << "\n";
      return 0;
    }
    case RaceCli::Action::kCheck: {
      const io::BenchReport baseline = read_report_file(cli.baseline_path);
      const io::BenchReport current = read_report_file(cli.check_path);
      const std::vector<std::string> problems =
          io::compare_bench(baseline, current, cli.tolerances);
      for (const auto& p : problems) err << "REGRESSION: " << p << "\n";
      if (problems.empty()) {
        err << "baseline gate OK: " << current.series.size() << " series x "
            << current.sizes.size() << " sizes within tolerance of "
            << cli.baseline_path << "\n";
        return 0;
      }
      err << problems.size() << " regression(s) against " << cli.baseline_path
          << "\n";
      return 1;
    }
  }
  return 2;  // unreachable
}

std::string race_cli_usage() {
  return
      "usage:\n"
      "  gridcast_race [--sched=a,b,c|all] [--backend=plogp|sim]\n"
      "                [--grid=grid5000|<file>] [--root=N]\n"
      "                [--sizes=default|256K,1M,...] [--completion=eager|"
      "after-last-send]\n"
      "                [--jitter=F] [--seed=N] [--threads=N] [--wall]\n"
      "                [--shards=N --shard=k | --shard=k/N] [--out=FILE]\n"
      "  gridcast_race --merge out.json shard0.json shard1.json ...\n"
      "  gridcast_race --check=current.json --baseline=baseline.json\n"
      "                [--rtol=1e-6] [--wall-tol=10]\n"
      "  gridcast_race --list-backends\n"
      "(--mode=predicted|measured remains as an alias of --backend.)\n";
}

}  // namespace gridcast::exp
