#include "exp/race_cli.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <optional>
#include <ostream>
#include <set>
#include <string_view>

#include "collective/backend.hpp"
#include "exp/realise.hpp"
#include "io/grid_io.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::exp {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t parse_u64(const std::string& token, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw InvalidInput(std::string(what) + ": '" + token +
                       "' is not a non-negative integer");
  return v;
}

double parse_double(const std::string& token, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty())
    throw InvalidInput(std::string(what) + ": '" + token +
                       "' is not a number");
  return v;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Bytes parse_size(const std::string& token) {
  std::size_t suffix = 0;
  while (suffix < token.size() &&
         (std::isdigit(static_cast<unsigned char>(token[suffix])) ||
          token[suffix] == '.'))
    ++suffix;
  const std::string num = token.substr(0, suffix);
  const std::string unit = lower(token.substr(suffix));
  if (num.empty())
    throw InvalidInput("size '" + token + "' has no numeric part");
  const double v = parse_double(num, "size");
  double scale = 1.0;
  if (unit == "k" || unit == "kib")
    scale = 1024.0;
  else if (unit == "m" || unit == "mib")
    scale = 1048576.0;
  else if (!unit.empty())
    throw InvalidInput("size '" + token +
                       "': unknown unit '" + unit + "' (use K/KiB/M/MiB)");
  const double bytes = v * scale;
  // >= 1 (not > 0): a sub-byte size like "0.5" would truncate to 0 and
  // only die much later on a message-size assertion.  The upper bound
  // keeps the cast to Bytes defined.
  if (!(bytes >= 1.0))
    throw InvalidInput("size '" + token + "' must be at least one byte");
  if (bytes > 9.0e18)
    throw InvalidInput("size '" + token + "' is out of range");
  return static_cast<Bytes>(bytes);
}

std::vector<sched::Scheduler> resolve_competitors(
    const std::vector<std::string>& names, sched::HeuristicOptions opts) {
  std::vector<sched::Scheduler> out;
  out.reserve(names.size());
  for (const auto& name : names)
    out.emplace_back(name, opts);  // throws, listing registered names
  // Duplicate series would make merge coverage and the baseline gate
  // ambiguous; reject them by canonical name so `ecef-lat,ECEF-LAT` is
  // caught too.
  std::set<std::string_view> seen;
  for (const auto& c : out)
    if (!seen.insert(c.name()).second)
      throw InvalidInput("scheduler '" + std::string(c.name()) +
                         "' selected more than once");
  return out;
}

io::BenchReport run_race_sweep(InstanceCache& cache,
                               const std::string& grid_name,
                               const RaceSpec& spec, ThreadPool& pool,
                               std::vector<std::string>* skipped) {
  using clock = std::chrono::steady_clock;

  if (spec.sched_names.empty())
    throw InvalidInput("no schedulers selected (use --sched=a,b,c or all)");
  if (spec.wall && spec.shard.shards > 1)
    throw InvalidInput(
        "--wall requires an unsharded run (wall time is machine-local and "
        "would break shard-merge byte-identity)");
  if (spec.sched_cost && spec.shard.shards > 1)
    throw InvalidInput(
        "--sched-cost requires an unsharded run (selection cost is "
        "machine-local and would break shard-merge byte-identity)");
  spec.shard.validate();

  sched::HeuristicOptions opts;
  opts.completion = spec.completion;
  opts.prune = spec.prune;
  const std::vector<sched::Scheduler> comps =
      resolve_competitors(spec.sched_names, opts);
  const std::vector<Bytes> sizes =
      spec.sizes.empty() ? default_size_ladder() : spec.sizes;

  collective::BackendOptions bopts;
  bopts.grid = &cache.grid();
  bopts.jitter = {spec.jitter};
  const collective::BackendPtr backend =
      collective::backend_registry().make(spec.backend, bopts);

  const SweepResult sweep =
      backend_sweep(*backend, cache, spec.root, comps, sizes, spec.seed, pool,
                    spec.shard, spec.verb);
  if (skipped != nullptr)
    skipped->insert(skipped->end(), sweep.skipped.begin(),
                    sweep.skipped.end());

  io::BenchReport r;
  r.bench = "race";
  r.grid = grid_name;
  r.mode = backend->mode_label();
  r.verb = collective::verb_name(spec.verb);
  r.root = spec.root;
  r.seed = spec.seed;
  r.jitter = spec.jitter;
  r.shards = spec.shard.shards;
  r.shard = spec.shard.shard;
  r.sizes = sweep.sizes;
  r.series.reserve(sweep.series.size());
  for (const auto& s : sweep.series) {
    io::BenchSeries row;
    row.name = s.name;
    row.makespan_s = s.completion;
    r.series.push_back(std::move(row));
  }

  if (spec.wall) {
    // Scheduling cost only (the paper's Section 7 complexity concern):
    // instances come pre-derived from the cache, the loop runs
    // single-threaded, and we keep the *minimum* of several passes — the
    // standard robust estimator — so the number is comparable run over
    // run and across CI machines.  Series are matched by name: the
    // backend's baseline row (which schedules nothing) and any gated-out
    // competitor have no wall time.
    constexpr int kWallPasses = 10;
    for (const Bytes m : sizes) (void)cache.get(spec.root, m);
    for (const auto& comp : comps) {
      io::BenchSeries* series = nullptr;
      for (auto& s : r.series)
        if (s.name == comp.name()) series = &s;
      if (series == nullptr) continue;  // gated out
      double best = std::numeric_limits<double>::infinity();
      for (int pass = -1; pass < kWallPasses; ++pass) {  // -1 = warmup
        const auto t0 = clock::now();
        for (const Bytes m : sizes)
          (void)comp.makespan(*cache.get(spec.root, m));
        const double dt =
            std::chrono::duration<double>(clock::now() - t0).count();
        if (pass >= 0) best = std::min(best, dt);
      }
      series->wall_time_s = best;
    }
  }

  if (spec.sched_cost) {
    // Per-selection cost at every ladder point: how long one `order()`
    // call takes, min over passes like the wall loop.  This is the budget
    // that keeps composite selectors ("auto") honest — their selection
    // walks the whole registry, and the baseline gate bounds that walk
    // one-sided via `micro_scheduling_cost_s`.  Cells a competitor never
    // scheduled (it was gated out at that point, or it is the backend's
    // baseline row) stay NaN and the gate skips them.
    constexpr int kCostPasses = 10;
    for (const Bytes m : sizes) (void)cache.get(spec.root, m);
    for (const auto& comp : comps) {
      io::BenchSeries* series = nullptr;
      for (auto& s : r.series)
        if (s.name == comp.name()) series = &s;
      if (series == nullptr) continue;  // gated out
      series->micro_scheduling_cost_s.assign(sizes.size(), kNaN);
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        const sched::SchedulerRuntimeInfo info(
            *cache.get(spec.root, sizes[i]), sizes[i],
            comp.options().completion);
        if (!comp.entry().can_schedule(info)) continue;
        double best = std::numeric_limits<double>::infinity();
        for (int pass = -1; pass < kCostPasses; ++pass) {  // -1 = warmup
          const auto t0 = clock::now();
          (void)comp.order(info);
          const double dt =
              std::chrono::duration<double>(clock::now() - t0).count();
          if (pass >= 0) best = std::min(best, dt);
        }
        series->micro_scheduling_cost_s[i] = best;
      }
    }
  }
  return r;
}

io::BenchReport merge_race_shards(const std::vector<io::BenchReport>& shards) {
  if (shards.empty()) throw InvalidInput("merge: no shard reports given");
  const io::BenchReport& ref = shards.front();
  if (ref.is_montecarlo())
    throw InvalidInput(
        "merge: Monte-Carlo race shards go through merge_race_grid_shards");
  const std::size_t n = ref.shards;
  if (shards.size() != n)
    throw InvalidInput("merge: report declares " + std::to_string(n) +
                       " shards but " + std::to_string(shards.size()) +
                       " files were given");

  std::set<std::size_t> indices;
  for (const auto& s : shards) {
    if (s.bench != ref.bench || s.grid != ref.grid || s.mode != ref.mode ||
        s.verb != ref.verb || s.root != ref.root || s.sizes != ref.sizes)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " metadata does not match shard " +
                         std::to_string(ref.shard));
    if (s.mode == "measured" && (s.seed != ref.seed || s.jitter != ref.jitter))
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " seed/jitter does not match");
    if (s.shards != n)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " declares a different shard count");
    if (!indices.insert(s.shard).second)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " appears twice");
    if (s.series.size() != ref.series.size())
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " has a different series count");
    for (std::size_t i = 0; i < s.series.size(); ++i) {
      if (s.series[i].name != ref.series[i].name)
        throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                           " series order/name mismatch at index " +
                           std::to_string(i));
      // Parsed reports arrive with the axis covered (the reader's grammar
      // wall); a programmatic caller handing us a short row would read
      // out of bounds in the fold below.
      GRIDCAST_ASSERT(s.series[i].makespan_s.size() == ref.sizes.size(),
                      "merge precondition: series cells must cover the axis");
    }
  }

  io::BenchReport out = ref;
  out.shards = 1;
  out.shard = 0;
  const std::size_t n_series = ref.series.size();
  for (std::size_t i = 0; i < ref.sizes.size(); ++i) {
    for (std::size_t s = 0; s < n_series; ++s) {
      const std::size_t cell = i * n_series + s;
      const std::size_t owner = cell % n;
      double value = kNaN;
      for (const auto& shard : shards) {
        const double v = shard.series[s].makespan_s[i];
        if (shard.shard == owner) {
          value = v;
        } else if (!std::isnan(v)) {
          throw InvalidInput(
              "merge: cell (size " + std::to_string(ref.sizes[i]) +
              ", series '" + ref.series[s].name + "') computed by shard " +
              std::to_string(shard.shard) + " but owned by shard " +
              std::to_string(owner));
        }
      }
      if (std::isnan(value))
        throw InvalidInput("merge: cell (size " +
                           std::to_string(ref.sizes[i]) + ", series '" +
                           ref.series[s].name + "') was never computed");
      out.series[s].makespan_s[i] = value;
    }
  }
  // Sharded runs never time scheduling (wall and selection cost are
  // machine-local); only a trivial single-shard merge can carry them
  // through.
  if (n > 1) {
    for (auto& s : out.series) {
      s.wall_time_s = kNaN;
      s.micro_scheduling_cost_s.clear();
    }
  }
  return out;
}

// --------------------------------------------------------------------------
// Monte-Carlo race mode (Figs. 1-4)
// --------------------------------------------------------------------------

std::vector<std::size_t> fig1_cluster_ladder() {
  std::vector<std::size_t> counts;
  for (std::size_t n = 2; n <= 10; ++n) counts.push_back(n);
  return counts;
}

std::vector<std::size_t> fig2_cluster_ladder() {
  std::vector<std::size_t> counts;
  for (std::size_t n = 5; n <= 50; n += 5) counts.push_back(n);
  return counts;
}

namespace {

/// SplitMix64 finalizer, the same dispersion step measured_cell_seed uses.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// The paper's seven heuristics — the race default when no --sched list is
/// given (`--sched=all` would pull in shape-gated and ablation entries,
/// which a hit-rate race must refuse, not skip).
std::vector<std::string> paper_sched_names() {
  std::vector<std::string> names;
  for (const auto& c : sched::paper_heuristics())
    names.emplace_back(c.name());
  return names;
}

}  // namespace

std::uint64_t race_instance_seed(std::uint64_t seed, std::size_t clusters) {
  // Domain-tagged so a race never shares streams with the sweep cells.
  constexpr std::uint64_t kRaceDomain = 0x52414345ULL;  // "RACE"
  return mix64(seed + kRaceDomain +
               0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(clusters)));
}

std::uint64_t race_exec_seed(std::uint64_t seed, std::size_t clusters,
                             std::uint64_t iteration,
                             std::string_view series_name) {
  std::uint64_t z = seed + fnv1a(series_name);
  z += 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(clusters) + 1);
  z += 0xd1b54a32d192ed03ULL * (iteration + 1);
  return mix64(z);
}

io::BenchReport run_race_grid(const RaceGridSpec& spec, ThreadPool& pool) {
  if (spec.sched_names.empty())
    throw InvalidInput("no schedulers selected (use --sched=a,b,c)");
  if (spec.iterations == 0)
    throw InvalidInput("--iters must be >= 1");
  if (spec.block_iters == 0)
    throw InvalidInput("race block size must be >= 1");
  spec.shard.validate();
  spec.ranges.validate();

  const std::vector<std::size_t> counts =
      spec.cluster_counts.empty() ? fig1_cluster_ladder() : spec.cluster_counts;
  {
    std::set<std::size_t> seen;
    for (const std::size_t n : counts) {
      if (n < 2)
        throw InvalidInput("--clusters: a race needs at least 2 clusters, got " +
                           std::to_string(n));
      if (!seen.insert(n).second)
        throw InvalidInput("--clusters: count " + std::to_string(n) +
                           " listed more than once");
      if (spec.root >= n)
        throw InvalidInput("--root=" + std::to_string(spec.root) +
                           " is out of range for a " + std::to_string(n) +
                           "-cluster point");
    }
  }

  sched::HeuristicOptions opts;
  opts.completion = spec.completion;
  opts.prune = spec.prune;
  const std::vector<sched::Scheduler> comps =
      resolve_competitors(spec.sched_names, opts);

  auto& registry = collective::backend_registry();
  const std::string backend_name = registry.resolve(spec.backend);

  // Probe the backend's capabilities against a throwaway realised grid —
  // executing backends refuse construction without one, and we cannot know
  // a backend is instance-only before constructing it.
  const sched::Instance probe_inst(0, SquareMatrix<Time>(2, 0.0),
                                   SquareMatrix<Time>(2, 0.0),
                                   std::vector<Time>(2, 0.0));
  const topology::Grid probe_grid = realise_instance(probe_inst);
  collective::BackendOptions bopts;
  bopts.grid = &probe_grid;
  bopts.jitter = {spec.jitter};
  const collective::BackendPtr probe = registry.make(backend_name, bopts);
  if (!probe->supports(collective::Verb::kBcast))
    throw InvalidInput("backend '" + backend_name +
                       "' does not implement broadcast");
  if (!probe->instance_only() && !spec.realise)
    throw InvalidInput(
        "backend '" + backend_name +
        "' executes on a concrete grid and cannot time the race's sampled "
        "Table 2 instances (instance_only() mismatch); pass --realise to "
        "execute every draw on a synthetic grid realisation");

  // The shared backend of the sampled path.  Constructed without a grid:
  // instance-only backends ignore BackendOptions entirely, and holding the
  // probe grid's address past this scope would dangle.
  collective::BackendPtr shared_backend;
  if (!spec.realise)
    shared_backend = registry.make(backend_name, collective::BackendOptions{});

  const std::size_t n_points = counts.size();
  const std::size_t n_blocks = static_cast<std::size_t>(
      (spec.iterations + spec.block_iters - 1) / spec.block_iters);
  const std::size_t n_comps = comps.size();
  const std::size_t n_series = n_comps + 1;  // + GlobalMin

  io::BenchReport r;
  r.bench = "montecarlo";
  r.grid = spec.realise ? "table2_realised" : "table2_sampled";
  r.mode = probe->mode_label();
  r.root = spec.root;
  r.seed = spec.seed;
  r.jitter = spec.jitter;
  r.iterations = spec.iterations;
  r.block_iters = spec.block_iters;
  r.shards = spec.shard.shards;
  r.shard = spec.shard.shard;
  r.sizes.assign(counts.begin(), counts.end());
  r.series.resize(n_series);
  for (std::size_t s = 0; s < n_comps; ++s) r.series[s].name = comps[s].name();
  r.series[n_comps].name = "GlobalMin";
  for (std::size_t s = 0; s < n_series; ++s) {
    r.series[s].block_sum_s.assign(n_points,
                                   std::vector<double>(n_blocks, kNaN));
    if (s < n_comps)
      r.series[s].block_hits.assign(n_points,
                                    std::vector<double>(n_blocks, kNaN));
  }

  // One task per (point, block) cell: all competitors race the cell's
  // draws together (hits need the per-iteration minimum across the whole
  // field), sums accumulate in iteration order within the block, and the
  // block grid is fixed by (iterations, block_iters) alone — so any shard
  // count, thread count or competitor superset reproduces these numbers
  // bit for bit.
  pool.parallel_for(
      n_points * n_blocks, [&](std::size_t lo, std::size_t hi) {
        std::vector<Time> mk(n_comps);
        sched::Instance drawn;  // storage reused across iterations
        for (std::size_t cell = lo; cell < hi; ++cell) {
          if (!spec.shard.owns(cell)) continue;
          const std::size_t p = cell / n_blocks;
          const std::size_t b = cell % n_blocks;
          const std::size_t n = counts[p];
          const std::uint64_t it_lo = b * spec.block_iters;
          const std::uint64_t it_hi =
              std::min<std::uint64_t>(spec.iterations,
                                      it_lo + spec.block_iters);

          std::vector<double> sums(n_series, 0.0);
          std::vector<std::uint64_t> hits(n_comps, 0);
          for (std::uint64_t it = it_lo; it < it_hi; ++it) {
            Rng rng = Rng::stream(race_instance_seed(spec.seed, n), it);
            sample_instance_into(spec.ranges, n, rng, spec.root, drawn);

            // The realised path executes on a per-draw synthetic grid; the
            // heuristics then see the instance *derived* from that grid —
            // bit-identical to the draw by realise_instance's contract,
            // but derived, so the whole pipeline is the executing one.
            std::optional<topology::Grid> grid;
            std::optional<sched::Instance> derived;
            collective::BackendPtr local;
            const collective::Backend* backend = shared_backend.get();
            const sched::Instance* inst = &drawn;
            if (spec.realise) {
              grid.emplace(realise_instance(drawn));
              derived.emplace(
                  sched::Instance::from_grid(*grid, spec.root, MiB(1)));
              collective::BackendOptions cell_opts;
              cell_opts.grid = &*grid;
              cell_opts.jitter = {spec.jitter};
              local = registry.make(backend_name, cell_opts);
              backend = local.get();
              inst = &*derived;
            }

            Time best = std::numeric_limits<Time>::infinity();
            for (std::size_t s = 0; s < n_comps; ++s) {
              const sched::SchedulerRuntimeInfo info(
                  *inst, spec.realise ? MiB(1) : Bytes{0},
                  comps[s].options().completion);
              // Same contract as exp::run_race: a race cannot skip a
              // refusing entry per iteration without skewing the hit-rate
              // denominator, so a refusal is a designed error.
              if (!comps[s].entry().can_schedule(info))
                throw InvalidInput(
                    "scheduler '" + std::string(comps[s].name()) +
                    "' refused a sampled instance (" + std::to_string(n) +
                    " clusters, iteration " + std::to_string(it) +
                    "): the Monte-Carlo race needs entries that accept "
                    "every draw; shape-gated entries belong in grid "
                    "sweeps, which skip them");
              mk[s] = backend
                          ->bcast(comps[s].entry(), info,
                                  race_exec_seed(spec.seed, n, it,
                                                 comps[s].name()))
                          .completion;
              sums[s] += mk[s];
              best = std::min(best, mk[s]);
            }
            sums[n_comps] += best;
            const Time cutoff = best * (1.0 + spec.hit_epsilon);
            for (std::size_t s = 0; s < n_comps; ++s)
              if (mk[s] <= cutoff) ++hits[s];
          }

          for (std::size_t s = 0; s < n_series; ++s)
            r.series[s].block_sum_s[p][b] = sums[s];
          for (std::size_t s = 0; s < n_comps; ++s)
            r.series[s].block_hits[p][b] =
                static_cast<double>(hits[s]);
        }
      });

  // Unsharded runs reduce to the final form directly, folding blocks in
  // block order — the exact computation merge_race_grid_shards performs —
  // so a merged shard set is byte-identical to this.
  if (spec.shard.shards == 1) {
    for (std::size_t s = 0; s < n_series; ++s) {
      auto& series = r.series[s];
      series.makespan_s.assign(n_points, 0.0);
      if (s < n_comps) series.hits.assign(n_points, 0.0);
      for (std::size_t p = 0; p < n_points; ++p) {
        double total = 0.0;
        for (std::size_t b = 0; b < n_blocks; ++b)
          total += series.block_sum_s[p][b];
        series.makespan_s[p] =
            total / static_cast<double>(spec.iterations);
        if (s < n_comps) {
          double h = 0.0;
          for (std::size_t b = 0; b < n_blocks; ++b)
            h += series.block_hits[p][b];
          series.hits[p] = h;
        }
      }
      series.block_sum_s.clear();
      series.block_hits.clear();
    }
    r.block_iters = 0;
  }
  return r;
}

io::BenchReport merge_race_grid_shards(
    const std::vector<io::BenchReport>& shards) {
  if (shards.empty()) throw InvalidInput("merge: no shard reports given");
  const io::BenchReport& ref = shards.front();
  if (!ref.is_montecarlo())
    throw InvalidInput("merge: not a Monte-Carlo race report");
  const std::size_t n = ref.shards;
  if (shards.size() != n)
    throw InvalidInput("merge: report declares " + std::to_string(n) +
                       " shards but " + std::to_string(shards.size()) +
                       " files were given");
  if (n == 1) {
    if (ref.shard_form())
      throw InvalidInput("merge: single-shard race report in shard form");
    return ref;
  }

  std::set<std::size_t> indices;
  for (const auto& s : shards) {
    if (s.bench != ref.bench || s.grid != ref.grid || s.mode != ref.mode ||
        s.root != ref.root || s.seed != ref.seed ||
        s.iterations != ref.iterations || s.block_iters != ref.block_iters ||
        s.sizes != ref.sizes)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " metadata does not match shard " +
                         std::to_string(ref.shard));
    if (s.mode == "measured" && s.jitter != ref.jitter)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " jitter does not match");
    if (s.shards != n)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " declares a different shard count");
    if (!indices.insert(s.shard).second)
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " appears twice");
    if (!s.shard_form())
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " is not in shard form");
    if (s.series.size() != ref.series.size())
      throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                         " has a different series count");
    for (std::size_t i = 0; i < s.series.size(); ++i) {
      if (s.series[i].name != ref.series[i].name)
        throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                           " series order/name mismatch at index " +
                           std::to_string(i));
      if (s.series[i].block_hits.empty() !=
          ref.series[i].block_hits.empty())
        throw InvalidInput("merge: shard " + std::to_string(s.shard) +
                           " hit tracking disagrees for series '" +
                           s.series[i].name + "'");
      // Same contract as the sweep merge: the fold below indexes
      // [point][block] unconditionally.
      GRIDCAST_ASSERT(s.series[i].block_sum_s.size() == ref.sizes.size(),
                      "merge precondition: block rows must cover the axis");
      for (const auto& row : s.series[i].block_sum_s)
        GRIDCAST_ASSERT(row.size() == ref.block_count(),
                        "merge precondition: block row depth mismatch");
    }
  }

  const std::size_t n_points = ref.sizes.size();
  const std::size_t n_blocks = ref.block_count();

  io::BenchReport out = ref;
  out.shards = 1;
  out.shard = 0;
  out.block_iters = 0;
  for (std::size_t s = 0; s < out.series.size(); ++s) {
    auto& series = out.series[s];
    const bool tracked = !series.block_hits.empty();
    series.makespan_s.assign(n_points, 0.0);
    if (tracked) series.hits.assign(n_points, 0.0);

    for (std::size_t p = 0; p < n_points; ++p) {
      double total = 0.0;
      double hit_total = 0.0;
      for (std::size_t b = 0; b < n_blocks; ++b) {
        const std::size_t cell = p * n_blocks + b;
        const std::size_t owner = cell % n;
        double sum = kNaN;
        double hit = kNaN;
        for (const auto& shard : shards) {
          const double v = shard.series[s].block_sum_s[p][b];
          if (shard.shard == owner) {
            sum = v;
            if (tracked) hit = shard.series[s].block_hits[p][b];
          } else if (!std::isnan(v)) {
            throw InvalidInput(
                "merge: cell (clusters " + std::to_string(ref.sizes[p]) +
                ", block " + std::to_string(b) + ") computed by shard " +
                std::to_string(shard.shard) + " but owned by shard " +
                std::to_string(owner));
          }
        }
        if (std::isnan(sum) || (tracked && std::isnan(hit)))
          throw InvalidInput("merge: cell (clusters " +
                             std::to_string(ref.sizes[p]) + ", block " +
                             std::to_string(b) + ") was never computed");
        total += sum;
        if (tracked) hit_total += hit;
      }
      series.makespan_s[p] =
          total / static_cast<double>(ref.iterations);
      if (tracked) series.hits[p] = hit_total;
    }
    series.block_sum_s.clear();
    series.block_hits.clear();
  }
  return out;
}

std::vector<std::size_t> parse_cluster_list(const std::string& value) {
  std::vector<std::size_t> counts;
  for (const auto& tok : split_csv(value)) {
    if (tok.empty())
      throw InvalidInput("--clusters: empty token in list '" + value + "'");
    const std::size_t dash = tok.find('-');
    if (dash == std::string::npos) {
      counts.push_back(
          static_cast<std::size_t>(parse_u64(tok, "--clusters")));
      continue;
    }
    const std::size_t colon = tok.find(':', dash);
    const std::uint64_t lo = parse_u64(tok.substr(0, dash), "--clusters");
    const std::uint64_t hi = parse_u64(
        tok.substr(dash + 1,
                   colon == std::string::npos ? std::string::npos
                                              : colon - dash - 1),
        "--clusters");
    const std::uint64_t step =
        colon == std::string::npos
            ? 1
            : parse_u64(tok.substr(colon + 1), "--clusters");
    if (step == 0)
      throw InvalidInput("--clusters: range '" + tok + "' has step 0");
    if (hi < lo)
      throw InvalidInput("--clusters: range '" + tok + "' is descending");
    // Iterate without `n += step` overflow: a range ending near 2^64
    // would otherwise wrap and loop forever.  The point cap bounds both
    // memory and the loop itself.
    for (std::uint64_t n = lo;; n += step) {
      if (counts.size() >= 100000)
        throw InvalidInput("--clusters: list '" + value +
                           "' expands to more than 100000 parameter points");
      counts.push_back(static_cast<std::size_t>(n));
      if (hi - n < step) break;
    }
  }
  return counts;
}

RaceCli parse_race_cli(const std::vector<std::string>& args) {
  RaceCli cli;
  std::vector<std::string> positionals;
  bool shards_seen = false;
  std::size_t shard_pair_count = 0;  // from a --shard=k/N form
  bool race_seen = false;
  bool sizes_seen = false;
  bool grid_seen = false;
  bool iters_seen = false;
  bool verb_seen = false;
  bool completion_seen = false;

  const auto value_of = [](const std::string& arg) {
    const std::size_t eq = arg.find('=');
    // Without this check a bare `--out` would wrap to substr(0) and
    // silently use the flag name itself as the value.
    if (eq == std::string::npos)
      throw InvalidInput("option '" + arg + "' needs a value: " + arg +
                         "=...");
    return arg.substr(eq + 1);
  };

  for (const auto& arg : args) {
    const std::string key = arg.substr(0, arg.find('='));
    if (arg == "--merge") {
      cli.action = RaceCli::Action::kMerge;
    } else if (arg == "--race") {
      race_seen = true;
    } else if (arg == "--realise" || arg == "--realize") {
      cli.race.realise = true;
    } else if (key == "--clusters") {
      cli.race.cluster_counts = parse_cluster_list(value_of(arg));
    } else if (key == "--iters") {
      iters_seen = true;
      cli.race.iterations = parse_u64(value_of(arg), "--iters");
      if (cli.race.iterations == 0)
        throw InvalidInput("--iters must be >= 1");
    } else if (arg == "--wall") {
      cli.spec.wall = true;
    } else if (arg == "--sched-cost") {
      cli.spec.sched_cost = true;
    } else if (arg == "--no-prune") {
      cli.spec.prune = false;
    } else if (key == "--check") {
      cli.action = RaceCli::Action::kCheck;
      cli.check_path = value_of(arg);
    } else if (key == "--baseline") {
      cli.baseline_path = value_of(arg);
    } else if (key == "--rtol") {
      cli.tolerances.makespan_rtol = parse_double(value_of(arg), "--rtol");
    } else if (key == "--wall-tol") {
      cli.tolerances.wall_factor = parse_double(value_of(arg), "--wall-tol");
    } else if (key == "--throughput-tol") {
      cli.tolerances.throughput_factor =
          parse_double(value_of(arg), "--throughput-tol");
    } else if (key == "--sched") {
      const std::string v = value_of(arg);
      if (lower(v) == "all") {
        cli.spec.sched_names.clear();  // empty = every registered entry
      } else {
        for (auto& name : split_csv(v)) {
          if (name.empty())
            throw InvalidInput("--sched: empty name in list '" + v + "'");
          cli.spec.sched_names.push_back(std::move(name));
        }
      }
    } else if (key == "--sizes") {
      sizes_seen = true;
      const std::string v = value_of(arg);
      if (lower(v) == "default") {
        cli.spec.sizes.clear();
      } else {
        for (const auto& tok : split_csv(v))
          cli.spec.sizes.push_back(parse_size(tok));
      }
    } else if (key == "--verb") {
      // to_verb throws the shared one-line "unknown verb" diagnostic.
      verb_seen = true;
      cli.spec.verb = collective::to_verb(value_of(arg));
    } else if (key == "--grid") {
      grid_seen = true;
      cli.grid_arg = value_of(arg);
    } else if (key == "--root") {
      cli.spec.root =
          static_cast<ClusterId>(parse_u64(value_of(arg), "--root"));
    } else if (key == "--backend" || key == "--mode") {
      // --mode is the legacy spelling: "predicted"/"measured" are
      // registered aliases of the "plogp"/"sim" backends, so both flags
      // are one code path into the backend registry.  resolve() throws
      // at parse time for typos, listing what is registered, and stores
      // the canonical name.
      cli.spec.backend = collective::backend_registry().resolve(value_of(arg));
    } else if (arg == "--list-backends") {
      cli.action = RaceCli::Action::kListBackends;
    } else if (key == "--completion") {
      completion_seen = true;
      const std::string v = lower(value_of(arg));
      if (v == "eager")
        cli.spec.completion = sched::CompletionModel::kEager;
      else if (v == "after-last-send")
        cli.spec.completion = sched::CompletionModel::kAfterLastSend;
      else
        throw InvalidInput(
            "--completion must be 'eager' or 'after-last-send', got '" +
            value_of(arg) + "'");
    } else if (key == "--jitter") {
      cli.spec.jitter = parse_double(value_of(arg), "--jitter");
      if (cli.spec.jitter < 0)
        throw InvalidInput("--jitter must be >= 0");
    } else if (key == "--seed") {
      cli.spec.seed = parse_u64(value_of(arg), "--seed");
    } else if (key == "--threads") {
      cli.threads =
          static_cast<std::size_t>(parse_u64(value_of(arg), "--threads"));
    } else if (key == "--shards") {
      cli.spec.shard.shards =
          static_cast<std::size_t>(parse_u64(value_of(arg), "--shards"));
      shards_seen = true;
    } else if (key == "--shard") {
      const std::string v = value_of(arg);
      // Accept `k` or the self-describing `k/N` form.
      if (const auto slash = v.find('/'); slash != std::string::npos) {
        cli.spec.shard.shard = static_cast<std::size_t>(
            parse_u64(v.substr(0, slash), "--shard"));
        shard_pair_count = static_cast<std::size_t>(
            parse_u64(v.substr(slash + 1), "--shard"));
        // 0 is the "no k/N form seen" sentinel below; reject it here
        // instead of silently degrading to an unsharded run.
        if (shard_pair_count == 0)
          throw InvalidInput("--shard=k/N: shard count N must be >= 1");
      } else {
        cli.spec.shard.shard =
            static_cast<std::size_t>(parse_u64(v, "--shard"));
      }
    } else if (key == "--out") {
      cli.out_path = value_of(arg);
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      throw InvalidInput("unknown option '" + arg + "'\n" + race_cli_usage());
    } else {
      positionals.push_back(arg);
    }
  }

  if (shard_pair_count != 0) {
    if (shards_seen && cli.spec.shard.shards != shard_pair_count)
      throw InvalidInput("--shard=k/N disagrees with --shards");
    cli.spec.shard.shards = shard_pair_count;
  }

  if (race_seen) {
    if (cli.action != RaceCli::Action::kRun)
      throw InvalidInput(
          "--race cannot be combined with --merge/--check/--list-backends");
    if (sizes_seen)
      throw InvalidInput(
          "--sizes applies to sweep mode; the race draws 1 MB Table 2 "
          "instances (use --clusters to choose the parameter points)");
    if (grid_seen)
      throw InvalidInput(
          "--grid applies to sweep mode; the race samples its instances "
          "instead of deriving them from a grid");
    if (verb_seen)
      throw InvalidInput(
          "--verb applies to sweep mode; the Monte-Carlo race broadcasts "
          "by definition");
    if (cli.spec.wall)
      throw InvalidInput("--wall applies to sweep mode only");
    if (cli.spec.sched_cost)
      throw InvalidInput(
          "--sched-cost applies to sweep mode only (selection cost needs a "
          "fixed ladder of instances to time against)");
    cli.action = RaceCli::Action::kRace;
    cli.race.sched_names = cli.spec.sched_names;
    cli.race.seed = cli.spec.seed;
    cli.race.root = cli.spec.root;
    cli.race.backend = cli.spec.backend;
    cli.race.completion = cli.spec.completion;
    cli.race.jitter = cli.spec.jitter;
    cli.race.prune = cli.spec.prune;
    cli.race.shard = cli.spec.shard;
    if (!positionals.empty())
      throw InvalidInput("unexpected argument '" + positionals.front() +
                         "'\n" + race_cli_usage());
    cli.race.shard.validate();
    return cli;
  }
  if (completion_seen && cli.spec.verb != collective::Verb::kBcast)
    throw InvalidInput(
        "--completion applies to broadcast sweeps; scatter/alltoall "
        "schedules are derived and timed with the eager model");
  if (!cli.race.cluster_counts.empty())
    throw InvalidInput("--clusters requires --race");
  if (iters_seen) throw InvalidInput("--iters requires --race");
  if (cli.race.realise) throw InvalidInput("--realise requires --race");

  switch (cli.action) {
    case RaceCli::Action::kMerge:
      if (positionals.size() < 2)
        throw InvalidInput(
            "--merge needs an output path and at least one shard file: "
            "--merge out.json a.json b.json ...");
      cli.out_path = positionals.front();
      cli.merge_inputs.assign(positionals.begin() + 1, positionals.end());
      break;
    case RaceCli::Action::kCheck:
      if (cli.baseline_path.empty())
        throw InvalidInput("--check needs --baseline=<baseline.json>");
      if (!positionals.empty())
        throw InvalidInput("unexpected argument '" + positionals.front() +
                           "'");
      break;
    case RaceCli::Action::kRun:
      if (!positionals.empty())
        throw InvalidInput("unexpected argument '" + positionals.front() +
                           "'\n" + race_cli_usage());
      cli.spec.shard.validate();
      if (cli.spec.wall && cli.spec.shard.shards > 1)
        throw InvalidInput("--wall cannot be combined with --shards");
      if (cli.spec.sched_cost && cli.spec.shard.shards > 1)
        throw InvalidInput("--sched-cost cannot be combined with --shards");
      break;
    case RaceCli::Action::kRace:
      break;  // validated and returned above
    case RaceCli::Action::kListBackends:
      if (!positionals.empty())
        throw InvalidInput("unexpected argument '" + positionals.front() +
                           "'");
      break;
  }
  return cli;
}

namespace {

topology::Grid load_grid(const std::string& grid_arg,
                         std::string& grid_name) {
  if (lower(grid_arg) == "grid5000") {
    grid_name = "grid5000_testbed";
    return topology::grid5000_testbed();
  }
  std::ifstream in(grid_arg);
  if (!in)
    throw InvalidInput("cannot open grid file '" + grid_arg +
                       "' (use --grid=grid5000 for the built-in testbed)");
  grid_name = grid_arg;
  return io::read_grid(in);
}

io::BenchReport read_report_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInput("cannot open '" + path + "'");
  return io::read_bench_json(in);
}

void write_report(const io::BenchReport& r, const std::string& path,
                  std::ostream& fallback) {
  if (path.empty()) {
    io::write_bench_json(fallback, r);
    return;
  }
  std::ofstream out(path);
  if (!out) throw InvalidInput("cannot open '" + path + "' for writing");
  io::write_bench_json(out, r);
}

}  // namespace

int run_race_cli(const RaceCli& cli, std::ostream& out, std::ostream& err) {
  switch (cli.action) {
    case RaceCli::Action::kRun: {
      std::string grid_name;
      const topology::Grid grid = load_grid(cli.grid_arg, grid_name);
      RaceSpec spec = cli.spec;
      if (spec.sched_names.empty())
        spec.sched_names = sched::registry().names();
      InstanceCache cache(grid);
      ThreadPool pool(cli.threads);
      std::vector<std::string> skipped;
      const io::BenchReport report =
          run_race_sweep(cache, grid_name, spec, pool, &skipped);
      write_report(report, cli.out_path, out);
      err << "raced " << report.series.size() << " series x "
          << report.sizes.size() << " sizes (backend " << spec.backend;
      if (spec.verb != collective::Verb::kBcast)
        err << ", verb " << collective::verb_name(spec.verb);
      err << ", " << report.mode << ", shard " << report.shard << "/"
          << report.shards << ", " << cache.misses()
          << " instances derived)";
      if (!cli.out_path.empty()) err << " -> " << cli.out_path;
      err << "\n";
      if (!skipped.empty()) {
        err << "skipped (can_schedule refused this grid):";
        for (const auto& name : skipped) err << " " << name;
        err << "\n";
      }
      return 0;
    }
    case RaceCli::Action::kRace: {
      RaceGridSpec spec = cli.race;
      if (spec.sched_names.empty()) spec.sched_names = paper_sched_names();
      ThreadPool pool(cli.threads);
      const io::BenchReport report = run_race_grid(spec, pool);
      write_report(report, cli.out_path, out);
      err << "raced " << report.series.size() << " series x "
          << report.sizes.size() << " cluster counts (" << report.iterations
          << " iterations/point, backend " << spec.backend << ", "
          << report.mode << (spec.realise ? ", realised grids" : "")
          << ", shard " << report.shard << "/" << report.shards << ")";
      if (!cli.out_path.empty()) err << " -> " << cli.out_path;
      err << "\n";
      return 0;
    }
    case RaceCli::Action::kListBackends: {
      auto& reg = collective::backend_registry();
      for (const auto& name : reg.names()) {
        out << name;
        const auto aliases = reg.aliases_of(name);
        if (!aliases.empty()) {
          out << " (aliases:";
          for (const auto& a : aliases) out << " " << a;
          out << ")";
        }
        out << " - " << reg.description_of(name) << "\n";
      }
      return 0;
    }
    case RaceCli::Action::kMerge: {
      std::vector<io::BenchReport> shards;
      shards.reserve(cli.merge_inputs.size());
      for (const auto& path : cli.merge_inputs)
        shards.push_back(read_report_file(path));
      // The report kind picks the merge: Monte-Carlo races recombine
      // (point x block) partial sums, sweeps recombine (size x series)
      // cells.  Mixing kinds fails inside either merge's metadata check.
      const io::BenchReport merged = shards.front().is_montecarlo()
                                         ? merge_race_grid_shards(shards)
                                         : merge_race_shards(shards);
      write_report(merged, cli.out_path, out);
      err << "merged " << shards.size() << " shards -> " << cli.out_path
          << "\n";
      return 0;
    }
    case RaceCli::Action::kCheck: {
      const io::BenchReport baseline = read_report_file(cli.baseline_path);
      const io::BenchReport current = read_report_file(cli.check_path);
      const std::vector<std::string> problems =
          io::compare_bench(baseline, current, cli.tolerances);
      for (const auto& p : problems) err << "REGRESSION: " << p << "\n";
      if (problems.empty()) {
        err << "baseline gate OK: " << current.series.size() << " series x "
            << current.sizes.size()
            << (current.is_montecarlo() ? " cluster counts" : " sizes")
            << " within tolerance of " << cli.baseline_path << "\n";
        return 0;
      }
      err << problems.size() << " regression(s) against " << cli.baseline_path
          << "\n";
      return 1;
    }
  }
  return 2;  // unreachable
}

std::string race_cli_usage() {
  return
      "usage:\n"
      "  gridcast_race [--sched=a,b,c|all] [--backend=plogp|sim]\n"
      "                [--verb=bcast|scatter|alltoall]\n"
      "                [--grid=grid5000|<file>] [--root=N]\n"
      "                [--sizes=default|256K,1M,...] [--completion=eager|"
      "after-last-send]\n"
      "                [--jitter=F] [--seed=N] [--threads=N] [--wall]\n"
      "                [--sched-cost] [--no-prune]\n"
      "                [--shards=N --shard=k | --shard=k/N] [--out=FILE]\n"
      "  gridcast_race --race [--sched=a,b,c] [--backend=plogp|sim]\n"
      "                [--clusters=2-10|5-50:5|3,7,9] [--iters=N] "
      "[--realise]\n"
      "                [--root=N] [--completion=...] [--jitter=F] "
      "[--seed=N]\n"
      "                [--threads=N] [--no-prune] [--shards=N --shard=k] "
      "[--out=FILE]\n"
      "  gridcast_race --merge out.json shard0.json shard1.json ...\n"
      "  gridcast_race --check=current.json --baseline=baseline.json\n"
      "                [--rtol=1e-6] [--wall-tol=10] [--throughput-tol=10]\n"
      "  gridcast_race --list-backends\n"
      "(--race runs the Figs. 1-4 Monte-Carlo races over random Table 2\n"
      " instances; grid-executing backends need --realise.  --mode=\n"
      " predicted|measured remains as an alias of --backend.  --verb races\n"
      " the two-level scatter/alltoall instead of the broadcast: sizes are\n"
      " then per-rank (scatter) / per-rank-pair (alltoall) blocks.\n"
      " --sched-cost also times each competitor's per-selection cost\n"
      " (micro_scheduling_cost_s; unsharded sweeps only).  --no-prune\n"
      " disables lower-bound pruning in the 'auto' selector — a pure\n"
      " optimisation, so reports are byte-identical either way.)\n";
}

}  // namespace gridcast::exp
