#pragma once

#include "sched/instance.hpp"
#include "topology/grid.hpp"

/// Synthetic-grid realisation of a sampled scheduling instance.
///
/// The paper's Monte-Carlo races (Figs. 1-4) draw their inputs directly —
/// per-pair gap g and latency L, per-cluster internal broadcast time T —
/// with no topology behind them, which is why grid-executing backends such
/// as "sim" cannot time them (`Backend::instance_only()`).  `realise_instance`
/// closes that gap: it constructs a minimal concrete grid whose *derived*
/// instance reproduces the sampled one bit-for-bit, so the message-level
/// simulator can execute the very draws the analytic model scores — the
/// "measured Monte-Carlo" extension behind `gridcast_race --race --realise`.
///
/// Construction: one two-rank cluster per sampled cluster (coordinator +
/// one leaf) whose intra link has zero latency/overheads and a constant
/// gap equal to T_c, so the internal binomial broadcast takes exactly T_c
/// for any message size; inter-cluster links get constant gap g_ij,
/// latency L_ij and zero overheads.  Exactness:
/// `sched::Instance::from_grid(realise_instance(inst), inst.root(), m)`
/// equals `inst` for every m (constant gap functions are size-free).
///
/// Executed completions still differ from the analytic score by design —
/// the simulator serialises a coordinator's WAN relays and its local tree
/// on one NIC — exactly the predicted/measured residual the backends exist
/// to expose.
namespace gridcast::exp {

/// Build the realisation grid.  Clusters are named "c0", "c1", ...;
/// the instance's root is *not* baked in (a Grid has no root), so callers
/// keep passing it to `Instance::from_grid` / the collective verbs.
[[nodiscard]] topology::Grid realise_instance(const sched::Instance& inst);

}  // namespace gridcast::exp
