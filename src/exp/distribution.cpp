#include "exp/distribution.hpp"

#include <map>
#include <mutex>

#include "support/error.hpp"

namespace gridcast::exp {

DistributionResult run_distribution(const std::vector<sched::Scheduler>& comps,
                                    const DistributionConfig& cfg,
                                    ThreadPool& pool) {
  GRIDCAST_ASSERT(!comps.empty(), "no competitors");
  GRIDCAST_ASSERT(cfg.clusters >= 2, "need at least two clusters");
  cfg.ranges.validate();

  DistributionResult out;
  out.iterations = cfg.iterations;
  out.series.reserve(comps.size());
  for (const auto& c : comps)
    out.series.emplace_back(std::string(c.name()), cfg);

  // Chunk-ordered merging: see montecarlo.cpp (FP associativity).
  std::mutex collect_mu;
  std::map<std::size_t, std::vector<DistributionSeries>> partials;

  pool.parallel_for(
      static_cast<std::size_t>(cfg.iterations),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<DistributionSeries> local;
        local.reserve(comps.size());
        for (const auto& c : comps)
          local.emplace_back(std::string(c.name()), cfg);

        sched::Instance inst;  // storage reused across iterations
        for (std::size_t it = lo; it < hi; ++it) {
          Rng rng = Rng::stream(cfg.seed, it);
          sample_instance_into(cfg.ranges, cfg.clusters, rng, cfg.root, inst);
          for (std::size_t s = 0; s < comps.size(); ++s) {
            const Time mk = comps[s].makespan(inst);
            local[s].stats.add(mk);
            local[s].histogram.add(mk);
          }
        }

        std::lock_guard lk(collect_mu);
        partials.emplace(lo, std::move(local));
      });

  for (auto& [lo, local] : partials) {
    for (std::size_t s = 0; s < comps.size(); ++s) {
      out.series[s].stats.merge(local[s].stats);
      out.series[s].histogram.merge(local[s].histogram);
    }
  }
  return out;
}

}  // namespace gridcast::exp
