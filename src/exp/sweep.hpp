#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "collective/backend.hpp"
#include "exp/instance_cache.hpp"
#include "sched/registry.hpp"
#include "sim/network.hpp"
#include "support/thread_pool.hpp"
#include "topology/grid.hpp"

/// Message-size sweeps over a concrete grid (Figs. 5 and 6).
///
/// One engine — `backend_sweep` — races any competitor list over a size
/// ladder through a `collective::Backend`.  The backend decides what a
/// completion *is*: the "plogp" backend times the schedule analytically
/// (the Fig. 5 curves), the "sim" backend executes every point-to-point
/// message on the discrete-event simulator (the Fig. 6 substitute,
/// DESIGN.md substitution table) and contributes the grid-unaware binomial
/// baseline the paper labels "Default LAM".  The legacy predicted/measured
/// entry points remain as thin wrappers over the two built-in backends.
namespace gridcast::exp {

/// One strategy's series over the sweep sizes.
struct SweepSeries {
  std::string name;
  std::vector<Time> completion;  ///< seconds, aligned with the size ladder
};

struct SweepResult {
  std::vector<Bytes> sizes;
  std::vector<SweepSeries> series;
  /// Competitors whose `can_schedule` refused one of the sweep's instances
  /// (grid-shape-specialised entries on the wrong grid shape): skipped
  /// rather than raced, so they have no series.
  std::vector<std::string> skipped;
};

/// Process-level partition of the (size × series) cell grid.  Cell
/// (size i, series s) belongs to shard `(i * n_series + s) % shards`, so
/// any shard count covers every cell exactly once and `gridcast_race
/// --merge` can recombine shard outputs bit-identically.  Cells owned by
/// other shards are left NaN.
struct ShardSpec {
  std::size_t shards = 1;
  std::size_t shard = 0;

  [[nodiscard]] bool owns(std::size_t cell) const noexcept {
    return cell % shards == shard;
  }
  /// Throws InvalidInput unless 0 <= shard < shards.
  void validate() const;
};

/// The paper's Fig. 5/6 x-axis: 256 KiB steps from 256 KiB to 4 MiB
/// (16 points).
[[nodiscard]] std::vector<Bytes> default_size_ladder();

/// Deterministic simulation seed for one sweep cell, mixed from the sweep
/// seed, the *size index* and the *series name* (FNV-1a) — never from the
/// competitor count, so adding a competitor cannot reseed the series that
/// were already there.  Deterministic backends ignore it.
[[nodiscard]] std::uint64_t measured_cell_seed(std::uint64_t seed,
                                               std::size_t size_index,
                                               std::string_view series_name);

/// Race `comps` over `sizes` through `backend`: completion per (size,
/// series) cell, preceded by the backend's baseline comparator series when
/// it has one (broadcast sweeps only — the comparator is a broadcast).
/// `verb` selects the collective raced per cell: broadcast (the default,
/// sizes are message sizes), scatter (sizes are per-rank blocks, rooted at
/// `root`) or all-to-all (sizes are per-rank-pair blocks; `root` is
/// unused).  A backend that does not support the verb is a one-line
/// InvalidInput.  Cells are dispatched across `pool` (results are
/// identical for any worker count); instances are derived once per size
/// through `cache` (whose grid must be the one `backend` executes on);
/// per-cell seeds derive from `seed` via `measured_cell_seed`.
/// Competitors whose `can_schedule` refuses any of the sweep's instances
/// (every root's instance, for all-to-all) are skipped rather than raced
/// (reported in `SweepResult::skipped`); when every competitor is skipped
/// the sweep throws InvalidInput.
[[nodiscard]] SweepResult backend_sweep(
    const collective::Backend& backend, InstanceCache& cache, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    std::uint64_t seed, ThreadPool& pool, ShardSpec shard = {},
    collective::Verb verb = collective::Verb::kBcast);

/// Model-predicted completion per size and scheduler (Fig. 5) — the
/// "plogp" backend.  The overloads without a cache build a private one;
/// the overload without a pool runs inline.
[[nodiscard]] SweepResult predicted_sweep(
    InstanceCache& cache, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    ThreadPool& pool, ShardSpec shard = {});
[[nodiscard]] SweepResult predicted_sweep(
    const topology::Grid& grid, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    ThreadPool& pool);
[[nodiscard]] SweepResult predicted_sweep(
    const topology::Grid& grid, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes);

/// Simulator-measured completion per size and scheduler, plus the
/// "DefaultLAM" grid-unaware binomial series (Fig. 6) — the "sim" backend.
/// `jitter` perturbs per-message gap/latency; `seed` drives it.  Every
/// (size, series) cell simulates on its own Network seeded by
/// `measured_cell_seed`, so the result is identical for any worker count
/// *and* any competitor set.
[[nodiscard]] SweepResult measured_sweep(
    InstanceCache& cache, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    sim::JitterConfig jitter, std::uint64_t seed, ThreadPool& pool,
    ShardSpec shard = {});
[[nodiscard]] SweepResult measured_sweep(
    const topology::Grid& grid, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    sim::JitterConfig jitter, std::uint64_t seed, ThreadPool& pool);
[[nodiscard]] SweepResult measured_sweep(
    const topology::Grid& grid, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    sim::JitterConfig jitter, std::uint64_t seed);

}  // namespace gridcast::exp
