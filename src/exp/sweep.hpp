#pragma once

#include <span>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "sim/network.hpp"
#include "support/thread_pool.hpp"
#include "topology/grid.hpp"

/// Message-size sweeps over a concrete grid (Figs. 5 and 6).
///
/// "Predicted" numbers come from the pLogP cost model alone (the Fig. 5
/// curves); "measured" numbers come from executing every point-to-point
/// message of the full two-level broadcast on the discrete-event simulator
/// (the Fig. 6 substitute, DESIGN.md substitution table), including the
/// grid-unaware binomial baseline the paper labels "Default LAM".
namespace gridcast::exp {

/// One strategy's series over the sweep sizes.
struct SweepSeries {
  std::string name;
  std::vector<Time> completion;  ///< seconds, aligned with the size ladder
};

struct SweepResult {
  std::vector<Bytes> sizes;
  std::vector<SweepSeries> series;
};

/// The paper's Fig. 5/6 x-axis: 256 KiB steps from 256 KiB to 4.25 MiB.
[[nodiscard]] std::vector<Bytes> default_size_ladder();

/// Model-predicted completion per size and scheduler (Fig. 5).  Sizes are
/// dispatched across `pool` (results are identical for any worker count);
/// the overload without a pool runs inline.
[[nodiscard]] SweepResult predicted_sweep(
    const topology::Grid& grid, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    ThreadPool& pool);
[[nodiscard]] SweepResult predicted_sweep(
    const topology::Grid& grid, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes);

/// Simulator-measured completion per size and scheduler, plus the
/// "DefaultLAM" grid-unaware binomial series (Fig. 6).  `jitter` perturbs
/// per-message gap/latency; `seed` drives it.  Every (size, series) cell
/// simulates on its own Network seeded by its cell index, so the result is
/// identical for any worker count.
[[nodiscard]] SweepResult measured_sweep(
    const topology::Grid& grid, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    sim::JitterConfig jitter, std::uint64_t seed, ThreadPool& pool);
[[nodiscard]] SweepResult measured_sweep(
    const topology::Grid& grid, ClusterId root,
    const std::vector<sched::Scheduler>& comps, std::span<const Bytes> sizes,
    sim::JitterConfig jitter, std::uint64_t seed);

}  // namespace gridcast::exp
