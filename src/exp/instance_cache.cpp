#include "exp/instance_cache.hpp"

namespace gridcast::exp {

std::size_t InstanceCache::instance_bytes(
    const sched::Instance& inst) noexcept {
  const std::size_t n = inst.clusters();
  // Two n×n Time matrices (g, L), the T vector, plus the Instance and
  // cache-entry bookkeeping.  Allocator slack is not modelled; the bound
  // is a working-set knob, not an allocator audit.
  return 2 * n * n * sizeof(Time) + n * sizeof(Time) +
         sizeof(sched::Instance) + sizeof(Entry) + sizeof(Key);
}

void InstanceCache::evict_to_capacity() {
  if (capacity_ == kUnbounded) return;
  while (bytes_ > capacity_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    const auto it = cache_.find(victim);
    bytes_ -= it->second.bytes;
    cache_.erase(it);  // holders' shared_ptrs keep the instance alive
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

InstancePtr InstanceCache::get(ClusterId root, Bytes m) {
  const Key key{root, m};
  {
    std::lock_guard lk(mu_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // promote to MRU
      return it->second.instance;
    }
  }
  // Derive outside the lock: distinct keys must not serialise behind one
  // O(clusters²) derivation (the threaded sweeps request many sizes at
  // once).
  auto derived = std::make_shared<const sched::Instance>(
      sched::Instance::from_grid(*grid_, root, m));
  std::lock_guard lk(mu_);
  // Counts derivations performed, lost races included.
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Pass-through mode: never retain.  Inserting and immediately evicting
  // would tally a bogus eviction per lookup and churn the LRU list; the
  // caller's shared_ptr is the only reference that ever exists.
  if (capacity_ == 0) return derived;
  const auto [it, inserted] = cache_.try_emplace(key);
  if (inserted) {
    const std::size_t sz = instance_bytes(*derived);
    lru_.push_front(key);
    it->second = Entry{std::move(derived), sz, lru_.begin()};
    bytes_ += sz;
  } else {
    // Lost the derivation race: another thread inserted first.  The
    // access is still a use of that entry — promote it, or a hot key two
    // threads missed on together keeps a stale LRU position and can be
    // evicted ahead of colder keys.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  // Copy out before evicting: with a capacity smaller than one instance
  // the freshly inserted entry is itself the eviction victim, which would
  // invalidate `it`.
  InstancePtr result = it->second.instance;
  evict_to_capacity();
  return result;
}

void InstanceCache::set_capacity(std::size_t capacity_bytes) {
  std::lock_guard lk(mu_);
  capacity_ = capacity_bytes;
  evict_to_capacity();
}

std::size_t InstanceCache::capacity() const {
  std::lock_guard lk(mu_);
  return capacity_;
}

std::size_t InstanceCache::bytes_in_use() const {
  std::lock_guard lk(mu_);
  return bytes_;
}

std::size_t InstanceCache::entries() const {
  std::lock_guard lk(mu_);
  return cache_.size();
}

}  // namespace gridcast::exp
