#include "exp/instance_cache.hpp"

namespace gridcast::exp {

const sched::Instance& InstanceCache::get(ClusterId root, Bytes m) {
  const std::pair<ClusterId, Bytes> key{root, m};
  {
    std::lock_guard lk(mu_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      return *it->second;
    }
  }
  // Derive outside the lock: distinct keys must not serialise behind one
  // O(clusters²) derivation (the threaded sweeps request many sizes at
  // once).
  auto derived = std::make_shared<const sched::Instance>(
      sched::Instance::from_grid(*grid_, root, m));
  std::lock_guard lk(mu_);
  ++misses_;
  // emplace keeps the first insertion on a lost race.
  return *cache_.emplace(key, std::move(derived)).first->second;
}

std::size_t InstanceCache::entries() const {
  std::lock_guard lk(mu_);
  return cache_.size();
}

std::uint64_t InstanceCache::hits() const {
  std::lock_guard lk(mu_);
  return hits_;
}

std::uint64_t InstanceCache::misses() const {
  std::lock_guard lk(mu_);
  return misses_;
}

}  // namespace gridcast::exp
