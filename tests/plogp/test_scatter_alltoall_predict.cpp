// Closed-form pLogP scatter/alltoall predictions: hand-derived arithmetic
// on tiny grids, schedule-order sensitivity (a worse injection order must
// predict a strictly larger makespan), counter accounting, and the
// degenerate shapes (singleton clusters, one cluster, one rank).

#include "plogp/hierarchical_predict.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/error.hpp"
#include "topology/cluster.hpp"

namespace gridcast::plogp {
namespace {

Params constant_params(Time L, Time gap) {
  Params p;
  p.L = L;
  p.g = GapFunction::constant(gap);
  p.os = GapFunction::constant(0.0);
  p.orecv = GapFunction::constant(0.0);
  return p;
}

Params bandwidth_params(Time L, double bw) {
  Params p;
  p.L = L;
  p.g = GapFunction::affine(0.0, bw);
  p.os = GapFunction::constant(0.0);
  p.orecv = GapFunction::constant(0.0);
  return p;
}

/// Three clusters of sizes {2, 3, 1}; constant intra gap 1s/L 0.5s; WAN
/// links constant gap 10s, latency 2s — numbers chosen so every segment
/// is hand-checkable.
topology::Grid tiny_grid() {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 2, constant_params(0.5, 1.0));
  cs.emplace_back("b", 3, constant_params(0.5, 1.0));
  cs.emplace_back("c", 1, constant_params(0.5, 1.0));
  topology::Grid grid(std::move(cs));
  for (ClusterId i = 0; i < 3; ++i)
    for (ClusterId j = static_cast<ClusterId>(i + 1); j < 3; ++j)
      grid.set_link_symmetric(i, j, constant_params(2.0, 10.0));
  grid.validate();
  return grid;
}

TEST(ScatterPredict, HandCheckedOnConstantGaps) {
  const topology::Grid grid = tiny_grid();
  const std::vector<ClusterId> order{1, 2};
  const HierarchicalPrediction p =
      predict_hierarchical_scatter(grid, 0, KiB(64), order);

  // Root NIC: inject cluster 1's aggregate (gap 10), then cluster 2's
  // (gap 10), then the local block (intra gap 1).
  //   cluster 1: arrives 10 + 2 = 12; fan-out (3-1)*1 + 0.5 → 14.5
  //   cluster 2: arrives 20 + 2 = 22; singleton → 22
  //   cluster 0: last WAN injection ends at 20; local at 20 + 1 + 0.5
  ASSERT_EQ(p.cluster_finish.size(), 3u);
  EXPECT_NEAR(p.cluster_finish[1], 14.5, 1e-12);
  EXPECT_NEAR(p.cluster_finish[2], 22.0, 1e-12);
  EXPECT_NEAR(p.cluster_finish[0], 21.5, 1e-12);
  EXPECT_NEAR(p.completion, 22.0, 1e-12);

  // Counters: 2 WAN aggregates + 2 locals in cluster 1 + 1 local at root.
  EXPECT_EQ(p.messages, 5u);
  EXPECT_EQ(p.wan_messages, 2u);
  EXPECT_EQ(p.wan_bytes, Bytes{3} * KiB(64) + Bytes{1} * KiB(64));
  EXPECT_EQ(p.bytes, p.wan_bytes + Bytes{3} * KiB(64));
}

TEST(ScatterPredict, WorseOrderPredictsStrictlyLargerMakespan) {
  // Two remote clusters: a big aggregate over a slow link and a singleton
  // over a fast one.  Serving the singleton first delays the slow
  // transfer that dominates the makespan — strictly worse.
  std::vector<topology::Cluster> cs;
  cs.emplace_back("root", 1, constant_params(0.0, 1.0));
  cs.emplace_back("big", 8, bandwidth_params(0.1, 1e6));
  cs.emplace_back("tiny", 1, constant_params(0.0, 1.0));
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1, bandwidth_params(0.5, 1e6));  // slow WAN
  grid.set_link_symmetric(0, 2, bandwidth_params(0.5, 1e8));  // fast WAN
  grid.set_link_symmetric(1, 2, bandwidth_params(0.5, 1e7));
  grid.validate();

  const Bytes block = MiB(1);
  const std::vector<ClusterId> good{1, 2};
  const std::vector<ClusterId> bad{2, 1};
  const Time t_good =
      predict_hierarchical_scatter(grid, 0, block, good).completion;
  const Time t_bad =
      predict_hierarchical_scatter(grid, 0, block, bad).completion;
  EXPECT_LT(t_good, t_bad);
}

TEST(ScatterPredict, SingletonRootHasZeroLocalFinish) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("r", 1, constant_params(0.0, 1.0));
  cs.emplace_back("x", 2, constant_params(0.25, 1.0));
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1, constant_params(1.0, 3.0));
  grid.validate();
  const std::vector<ClusterId> order{1};
  const HierarchicalPrediction p =
      predict_hierarchical_scatter(grid, 0, KiB(4), order);
  EXPECT_EQ(p.cluster_finish[0], 0.0);
  // WAN: 3 + 1 = 4; fan-out: + 1 + 0.25.
  EXPECT_NEAR(p.cluster_finish[1], 5.25, 1e-12);
}

TEST(ScatterPredict, RejectsMalformedOrders) {
  const topology::Grid grid = tiny_grid();
  EXPECT_THROW((void)predict_hierarchical_scatter(
                   grid, 0, KiB(1), std::vector<ClusterId>{1, 1}),
               LogicError);
  EXPECT_THROW((void)predict_hierarchical_scatter(
                   grid, 0, KiB(1), std::vector<ClusterId>{1}),
               LogicError);
  EXPECT_THROW((void)predict_hierarchical_scatter(
                   grid, 0, KiB(1), std::vector<ClusterId>{0, 1, 2}),
               LogicError);
}

// ------------------------------------------------------------- alltoall

std::vector<std::vector<ClusterId>> ascending_dest_order(std::size_t n) {
  std::vector<std::vector<ClusterId>> order(n);
  for (ClusterId c = 0; c < n; ++c)
    for (ClusterId d = 0; d < n; ++d)
      if (d != c) order[c].push_back(d);
  return order;
}

TEST(AlltoallPredict, HandCheckedOnTwoSymmetricClusters) {
  // Two clusters of two ranks; intra gap 1/L 0; WAN gap 10/L 1, all
  // constant.  n = 4, block anything (gaps are size-free).
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 2, constant_params(0.0, 1.0));
  cs.emplace_back("b", 2, constant_params(0.0, 1.0));
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1, constant_params(1.0, 10.0));
  grid.validate();

  const HierarchicalPrediction p =
      predict_hierarchical_alltoall(grid, KiB(1), ascending_dest_order(2));

  // Per cluster: intra exchange busies each NIC for 1 (one peer) and the
  // last intra block lands at 1.  The gather message leaves behind it:
  // ready = 1 + 1 + 0 = 2.  The aggregate injection ends at 2 + 10 = 12,
  // lands at 13; the forward to the one local ends at 13 + 1, landing at
  // 14 (intra L = 0).  Symmetric for both clusters.
  EXPECT_NEAR(p.cluster_finish[0], 14.0, 1e-12);
  EXPECT_NEAR(p.cluster_finish[1], 14.0, 1e-12);
  EXPECT_NEAR(p.completion, 14.0, 1e-12);

  // Counters: intra size·(size−1) = 2 per cluster, gather 1 per cluster,
  // 2 WAN aggregates, 1 forward per cluster → 10 total.
  EXPECT_EQ(p.messages, 10u);
  EXPECT_EQ(p.wan_messages, 2u);
  EXPECT_EQ(p.wan_bytes, 2u * Bytes{4} * KiB(1));
}

TEST(AlltoallPredict, WorseOrderPredictsStrictlyLargerMakespan) {
  // Three clusters; cluster 0 owes a huge aggregate to the distant
  // cluster 1 and a cheap one to cluster 2.  Injecting the cheap one
  // first delays the dominant transfer.
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 4, bandwidth_params(0.01, 1e8));
  cs.emplace_back("b", 4, bandwidth_params(0.01, 1e8));
  cs.emplace_back("c", 1, bandwidth_params(0.01, 1e8));
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1, bandwidth_params(0.5, 1e6));
  grid.set_link_symmetric(0, 2, bandwidth_params(0.1, 1e8));
  grid.set_link_symmetric(1, 2, bandwidth_params(0.1, 1e8));
  grid.validate();

  auto good = ascending_dest_order(3);   // cluster 0 injects 1 then 2
  auto bad = good;
  std::swap(bad[0][0], bad[0][1]);       // cluster 0 injects 2 then 1
  const Bytes block = MiB(1);
  const Time t_good =
      predict_hierarchical_alltoall(grid, block, good).completion;
  const Time t_bad =
      predict_hierarchical_alltoall(grid, block, bad).completion;
  EXPECT_LT(t_good, t_bad);
}

TEST(AlltoallPredict, DegenerateShapes) {
  // One cluster: the intra exchange is the whole operation.
  {
    std::vector<topology::Cluster> cs;
    cs.emplace_back("only", 3, constant_params(0.5, 1.0));
    topology::Grid grid(std::move(cs));
    grid.validate();
    const HierarchicalPrediction p = predict_hierarchical_alltoall(
        grid, KiB(1), std::vector<std::vector<ClusterId>>(1));
    EXPECT_NEAR(p.completion, 2.0 + 0.5, 1e-12);  // (3-1)·g + L
    EXPECT_EQ(p.wan_messages, 0u);
    EXPECT_EQ(p.messages, 6u);
  }
  // One rank total: nothing moves.
  {
    std::vector<topology::Cluster> cs;
    cs.emplace_back("solo", 1, constant_params(0.0, 1.0));
    topology::Grid grid(std::move(cs));
    grid.validate();
    const HierarchicalPrediction p = predict_hierarchical_alltoall(
        grid, KiB(1), std::vector<std::vector<ClusterId>>(1));
    EXPECT_EQ(p.completion, 0.0);
    EXPECT_EQ(p.messages, 0u);
  }
}

TEST(AlltoallPredict, RejectsMalformedDestOrders) {
  const topology::Grid grid = tiny_grid();
  auto order = ascending_dest_order(3);
  EXPECT_THROW((void)predict_hierarchical_alltoall(
                   grid, KiB(1),
                   std::vector<std::vector<ClusterId>>(2)),
               LogicError);
  auto dup = order;
  dup[1] = {0, 0, 2};
  EXPECT_THROW((void)predict_hierarchical_alltoall(grid, KiB(1), dup),
               LogicError);
  auto missing = order;
  missing[2] = {0};
  EXPECT_THROW((void)predict_hierarchical_alltoall(grid, KiB(1), missing),
               LogicError);
}

}  // namespace
}  // namespace gridcast::plogp
