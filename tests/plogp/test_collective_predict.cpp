#include "plogp/collective_predict.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace gridcast::plogp {
namespace {

/// Params with zero overheads: makes hand computation exact.
Params bare(Time L, Time gap) {
  Params p;
  p.L = L;
  p.g = GapFunction::constant(gap);
  p.os = GapFunction::constant(0.0);
  p.orecv = GapFunction::constant(0.0);
  return p;
}

TEST(Predict, SingleNodeIsFree) {
  const Params p = bare(0.001, 0.01);
  for (const auto a :
       {BcastAlgorithm::kFlat, BcastAlgorithm::kChain,
        BcastAlgorithm::kBinomial, BcastAlgorithm::kSegmentedChain})
    EXPECT_DOUBLE_EQ(predict_bcast(a, p, 1, MiB(1)), 0.0);
}

TEST(Predict, FlatClosedForm) {
  const Params p = bare(0.001, 0.01);
  // (n-1) gaps then one latency.
  EXPECT_NEAR(predict_flat_bcast(p, 5, 100), 4 * 0.01 + 0.001, 1e-12);
}

TEST(Predict, ChainClosedForm) {
  const Params p = bare(0.001, 0.01);
  EXPECT_NEAR(predict_chain_bcast(p, 4, 100), 3 * (0.01 + 0.001), 1e-12);
}

TEST(Predict, BinomialTwoNodes) {
  const Params p = bare(0.001, 0.01);
  // One hop: g + L.
  EXPECT_NEAR(predict_binomial_bcast(p, 2, 100), 0.011, 1e-12);
}

TEST(Predict, BinomialThreeNodes) {
  const Params p = bare(0.001, 0.01);
  // Root sends to the child covering 1 node (hop 0.011), then to the next
  // (starts at g=0.01, lands at 0.021).  Completion = 0.021.
  EXPECT_NEAR(predict_binomial_bcast(p, 3, 100), 0.021, 1e-12);
}

TEST(Predict, BinomialFourNodes) {
  const Params p = bare(0.001, 0.01);
  // Root->c1 (covers 2) at hop 0.011; c1 relays once -> 0.022.
  // Root continues: second send starts 0.01, lands 0.021.
  EXPECT_NEAR(predict_binomial_bcast(p, 4, 100), 0.022, 1e-12);
}

TEST(Predict, BinomialLogarithmicDepth) {
  const Params p = bare(0.0, 1.0);  // pure gap: depth counts rounds
  // With zero latency, completion = ceil(log2 n) gaps... in fact the last
  // delivery happens after the longest send chain; for n = 8 it is 3.
  EXPECT_NEAR(predict_binomial_bcast(p, 8, 1), 3.0, 1e-12);
  EXPECT_NEAR(predict_binomial_bcast(p, 16, 1), 4.0, 1e-12);
}

TEST(Predict, BinomialBeatsFlatForManyNodes) {
  const Params p = Params::latency_bandwidth(us(50), 100e6);
  EXPECT_LT(predict_binomial_bcast(p, 64, MiB(1)),
            predict_flat_bcast(p, 64, MiB(1)));
}

TEST(Predict, SegmentedChainBeatsChainForLargeMessages) {
  const Params p = Params::latency_bandwidth(us(50), 100e6);
  EXPECT_LT(predict_segmented_chain_bcast(p, 16, MiB(4), KiB(64)),
            predict_chain_bcast(p, 16, MiB(4)));
}

TEST(Predict, SegmentedChainHandlesTail) {
  const Params p = bare(0.001, 0.01);
  // m = 250, segment = 100 -> 3 segments (100, 100, 50).
  const Time t = predict_segmented_chain_bcast(p, 3, 250, 100);
  EXPECT_GT(t, 0.0);
  // Fill (2 hops) + 2 extra segment gaps.
  EXPECT_NEAR(t, 2 * 0.011 + 2 * 0.01, 1e-12);
}

TEST(Predict, SegmentedChainZeroSegmentThrows) {
  const Params p = bare(0.001, 0.01);
  EXPECT_THROW((void)predict_segmented_chain_bcast(p, 3, 100, 0), LogicError);
}

TEST(Predict, DispatcherMatchesDirectCalls) {
  const Params p = Params::latency_bandwidth(us(40), 110e6);
  EXPECT_DOUBLE_EQ(predict_bcast(BcastAlgorithm::kFlat, p, 8, MiB(1)),
                   predict_flat_bcast(p, 8, MiB(1)));
  EXPECT_DOUBLE_EQ(predict_bcast(BcastAlgorithm::kBinomial, p, 8, MiB(1)),
                   predict_binomial_bcast(p, 8, MiB(1)));
}

TEST(Predict, BestAlgorithmIsActuallyBest) {
  const Params p = Params::latency_bandwidth(us(50), 100e6);
  for (const std::uint32_t n : {2u, 8u, 32u}) {
    for (const Bytes m : {KiB(1), MiB(1), MiB(4)}) {
      const BcastAlgorithm best = best_bcast_algorithm(p, n, m);
      const Time best_t = predict_bcast(best, p, n, m);
      for (const auto a :
           {BcastAlgorithm::kFlat, BcastAlgorithm::kChain,
            BcastAlgorithm::kBinomial, BcastAlgorithm::kSegmentedChain})
        EXPECT_LE(best_t, predict_bcast(a, p, n, m) + 1e-15);
    }
  }
}

TEST(Predict, ToStringCoversAll) {
  EXPECT_EQ(to_string(BcastAlgorithm::kFlat), "flat");
  EXPECT_EQ(to_string(BcastAlgorithm::kChain), "chain");
  EXPECT_EQ(to_string(BcastAlgorithm::kBinomial), "binomial");
  EXPECT_EQ(to_string(BcastAlgorithm::kSegmentedChain), "segmented-chain");
}

struct PredictCase {
  std::uint32_t nodes;
  Bytes size;
};

class PredictMonotone : public ::testing::TestWithParam<PredictCase> {};

TEST_P(PredictMonotone, TimeGrowsWithNodesAndSize) {
  const Params p = Params::latency_bandwidth(us(60), 80e6);
  const auto [n, m] = GetParam();
  for (const auto a :
       {BcastAlgorithm::kFlat, BcastAlgorithm::kChain,
        BcastAlgorithm::kBinomial}) {
    EXPECT_LE(predict_bcast(a, p, n, m), predict_bcast(a, p, n + 1, m) + 1e-15)
        << to_string(a);
    EXPECT_LE(predict_bcast(a, p, n, m),
              predict_bcast(a, p, n, m + KiB(64)) + 1e-15)
        << to_string(a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PredictMonotone,
    ::testing::Values(PredictCase{2, KiB(4)}, PredictCase{5, KiB(64)},
                      PredictCase{17, MiB(1)}, PredictCase{63, MiB(2)},
                      PredictCase{100, KiB(16)}));

}  // namespace
}  // namespace gridcast::plogp
