#include "plogp/gap_function.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace gridcast::plogp {
namespace {

TEST(GapFunction, ConstantEverywhere) {
  const GapFunction g = GapFunction::constant(0.25);
  EXPECT_DOUBLE_EQ(g(0), 0.25);
  EXPECT_DOUBLE_EQ(g(1), 0.25);
  EXPECT_DOUBLE_EQ(g(MiB(64)), 0.25);
}

TEST(GapFunction, AffineMatchesClosedForm) {
  const double bw = 10e6;
  const GapFunction g = GapFunction::affine(0.001, bw);
  EXPECT_NEAR(g(0), 0.001, 1e-12);
  EXPECT_NEAR(g(1000000), 0.001 + 1e6 / bw, 1e-12);
  EXPECT_NEAR(g(MiB(1)), 0.001 + 1048576.0 / bw, 1e-12);
}

TEST(GapFunction, InterpolatesBetweenSamples) {
  const GapFunction g({{0, 0.0}, {100, 1.0}});
  EXPECT_DOUBLE_EQ(g(50), 0.5);
  EXPECT_DOUBLE_EQ(g(25), 0.25);
}

TEST(GapFunction, HitsSamplesExactly) {
  const GapFunction g({{10, 0.1}, {20, 0.5}, {40, 0.6}});
  EXPECT_DOUBLE_EQ(g(10), 0.1);
  EXPECT_DOUBLE_EQ(g(20), 0.5);
  EXPECT_DOUBLE_EQ(g(40), 0.6);
}

TEST(GapFunction, ExtrapolatesLastSegmentSlope) {
  const GapFunction g({{0, 0.0}, {100, 1.0}});
  EXPECT_DOUBLE_EQ(g(200), 2.0);  // slope 0.01 per byte continues
}

TEST(GapFunction, ClampsBelowFirstSample) {
  const GapFunction g({{100, 1.0}, {200, 2.0}});
  EXPECT_DOUBLE_EQ(g(50), 1.0);  // no negative extrapolation downwards
  EXPECT_DOUBLE_EQ(g(0), 1.0);
}

TEST(GapFunction, NeverNegative) {
  // Decreasing segment extrapolated upward could go negative: clamped.
  const GapFunction g({{0, 1.0}, {100, 0.1}});
  EXPECT_GE(g(5000), 0.0);
}

TEST(GapFunction, MonotoneDetection) {
  EXPECT_TRUE(GapFunction({{0, 0.1}, {10, 0.2}, {20, 0.2}}).is_monotone());
  EXPECT_FALSE(GapFunction({{0, 0.3}, {10, 0.2}}).is_monotone());
}

TEST(GapFunction, EmptySamplesThrow) {
  EXPECT_THROW(GapFunction(std::vector<GapFunction::Sample>{}), LogicError);
}

TEST(GapFunction, UnsortedSamplesThrow) {
  EXPECT_THROW(GapFunction({{10, 0.1}, {5, 0.2}}), LogicError);
}

TEST(GapFunction, DuplicateSizesThrow) {
  EXPECT_THROW(GapFunction({{10, 0.1}, {10, 0.2}}), LogicError);
}

TEST(GapFunction, NegativeValueThrows) {
  EXPECT_THROW(GapFunction({{10, -0.1}}), LogicError);
}

TEST(GapFunction, AffineInvalidBandwidthThrows) {
  EXPECT_THROW(GapFunction::affine(0.0, 0.0), LogicError);
  EXPECT_THROW(GapFunction::affine(0.0, -5.0), LogicError);
}

class GapMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(GapMonotonicity, AffineIsMonotoneInSize) {
  const GapFunction g = GapFunction::affine(0.0001, GetParam());
  Time prev = 0.0;
  for (Bytes m = 0; m <= MiB(8); m += KiB(512)) {
    const Time v = g(m);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, GapMonotonicity,
                         ::testing::Values(1e6, 10e6, 100e6, 1e9));

}  // namespace
}  // namespace gridcast::plogp
