#include "plogp/synthetic_link.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace gridcast::plogp {
namespace {

SyntheticLink::Config base_config() {
  SyntheticLink::Config c;
  c.latency = ms(5);
  c.bandwidth_Bps = 10e6;
  c.per_message_cost = us(50);
  c.jitter_frac = 0.0;
  return c;
}

TEST(SyntheticLink, TrueGapClosedForm) {
  const SyntheticLink link(base_config());
  EXPECT_NEAR(link.true_gap(0), us(50), 1e-12);
  EXPECT_NEAR(link.true_gap(1000000), us(50) + 0.1, 1e-9);
}

TEST(SyntheticLink, TrueTransferAddsLatency) {
  const SyntheticLink link(base_config());
  EXPECT_NEAR(link.true_transfer(1000), link.true_gap(1000) + ms(5), 1e-12);
}

TEST(SyntheticLink, RttWithoutJitterIsExact) {
  const SyntheticLink link(base_config());
  Rng rng(1);
  const Time expected = link.true_transfer(1000) + link.true_transfer(0);
  EXPECT_NEAR(link.measure_rtt(1000, rng), expected, 1e-12);
}

TEST(SyntheticLink, GapMeasurementConvergesToGap) {
  const SyntheticLink link(base_config());
  Rng rng(1);
  const Time g = link.true_gap(100000);
  // Per-message time approaches the gap as the train grows (latency
  // amortises away).
  const Time short_train = link.measure_gap(100000, 2, rng);
  const Time long_train = link.measure_gap(100000, 64, rng);
  EXPECT_GT(short_train, long_train);
  EXPECT_NEAR(long_train, g, g * 0.1);
}

TEST(SyntheticLink, JitterStaysBounded) {
  auto cfg = base_config();
  cfg.jitter_frac = 0.1;
  const SyntheticLink link(cfg);
  Rng rng(7);
  const Time base = link.true_transfer(1000) + link.true_transfer(0);
  for (int i = 0; i < 1000; ++i) {
    const Time t = link.measure_rtt(1000, rng);
    EXPECT_GT(t, base * 0.65);  // 3 sigma truncation
    EXPECT_LT(t, base * 1.35);
  }
}

TEST(SyntheticLink, JitterAveragesToTruth) {
  auto cfg = base_config();
  cfg.jitter_frac = 0.05;
  const SyntheticLink link(cfg);
  Rng rng(11);
  const Time base = link.true_transfer(1000) + link.true_transfer(0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += link.measure_rtt(1000, rng);
  EXPECT_NEAR(sum / n, base, base * 0.01);
}

TEST(SyntheticLink, InvalidConfigThrows) {
  auto bad = base_config();
  bad.bandwidth_Bps = 0.0;
  EXPECT_THROW(SyntheticLink{bad}, LogicError);
  auto neg = base_config();
  neg.latency = -1.0;
  EXPECT_THROW(SyntheticLink{neg}, LogicError);
}

TEST(SyntheticLink, ZeroCountGapMeasurementThrows) {
  const SyntheticLink link(base_config());
  Rng rng(1);
  EXPECT_THROW((void)link.measure_gap(1000, 0, rng), LogicError);
}

}  // namespace
}  // namespace gridcast::plogp
