#include "plogp/params.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace gridcast::plogp {
namespace {

TEST(Params, LatencyBandwidthValidates) {
  const Params p = Params::latency_bandwidth(ms(5), 10e6);
  EXPECT_NO_THROW(p.validate());
  EXPECT_DOUBLE_EQ(p.L, ms(5));
}

TEST(Params, TransferTimeIsGapPlusLatency) {
  const Params p = Params::latency_bandwidth(ms(5), 10e6);
  const Bytes m = MiB(1);
  EXPECT_DOUBLE_EQ(p.transfer_time(m), p.g(m) + p.L);
}

TEST(Params, GapScalesWithBandwidth) {
  const Params fast = Params::latency_bandwidth(ms(1), 100e6);
  const Params slow = Params::latency_bandwidth(ms(1), 10e6);
  EXPECT_LT(fast.g(MiB(1)), slow.g(MiB(1)));
  EXPECT_NEAR(slow.g(MiB(4)) / fast.g(MiB(4)), 10.0, 0.5);
}

TEST(Params, NegativeLatencyThrows) {
  Params p = Params::latency_bandwidth(ms(1), 10e6);
  p.L = -1.0;
  EXPECT_THROW(p.validate(), LogicError);
}

TEST(Params, MissingGapThrows) {
  Params p;
  p.L = 0.0;
  p.os = GapFunction::constant(0.0);
  p.orecv = GapFunction::constant(0.0);
  EXPECT_THROW(p.validate(), LogicError);
}

TEST(Params, NonMonotoneGapThrows) {
  Params p = Params::latency_bandwidth(ms(1), 10e6);
  p.g = GapFunction({{0, 0.5}, {100, 0.1}});
  EXPECT_THROW(p.validate(), LogicError);
}

TEST(Params, OverheadExceedingGapThrows) {
  Params p = Params::latency_bandwidth(ms(1), 10e6);
  p.os = GapFunction::constant(10.0);  // way above the gap
  EXPECT_THROW(p.validate(), LogicError);
}

TEST(Params, OverheadsAreSmallFractionOfGap) {
  const Params p = Params::latency_bandwidth(ms(2), 50e6);
  const Bytes m = MiB(2);
  EXPECT_LT(p.os(m), p.g(m));
  EXPECT_LT(p.orecv(m), p.g(m));
  EXPECT_GT(p.os(m), 0.0);
}

}  // namespace
}  // namespace gridcast::plogp
