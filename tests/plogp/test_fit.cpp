#include "plogp/fit.hpp"

#include <gtest/gtest.h>

namespace gridcast::plogp {
namespace {

SyntheticLink::Config quiet_link() {
  SyntheticLink::Config c;
  c.latency = ms(8);
  c.bandwidth_Bps = 20e6;
  c.per_message_cost = us(100);
  c.jitter_frac = 0.0;
  return c;
}

TEST(Fit, RecoversLatencyWithoutJitter) {
  const SyntheticLink link(quiet_link());
  Rng rng(1);
  const Params p = fit_link(link, FitConfig{}, rng);
  EXPECT_NEAR(p.L, ms(8), ms(8) * 0.05);
}

TEST(Fit, RecoversGapCurveWithoutJitter) {
  const SyntheticLink link(quiet_link());
  Rng rng(1);
  const Params p = fit_link(link, FitConfig{}, rng);
  for (const Bytes m : {KiB(1), KiB(64), MiB(1), MiB(4)}) {
    const Time truth = link.true_gap(m);
    // Gap-train measurement still carries 1/count of the latency.
    EXPECT_NEAR(p.g(m), truth, truth * 0.05 + ms(1)) << "at size " << m;
  }
}

TEST(Fit, FittedParamsValidate) {
  const SyntheticLink link(quiet_link());
  Rng rng(3);
  EXPECT_NO_THROW(fit_link(link, FitConfig{}, rng).validate());
}

TEST(Fit, ToleratesJitter) {
  auto cfg = quiet_link();
  cfg.jitter_frac = 0.08;
  const SyntheticLink link(cfg);
  FitConfig fit_cfg;
  fit_cfg.repetitions = 15;
  Rng rng(5);
  const Params p = fit_link(link, fit_cfg, rng);
  const Time truth = link.true_gap(MiB(1));
  EXPECT_NEAR(p.g(MiB(1)), truth, truth * 0.15);
  EXPECT_NEAR(p.L, ms(8), ms(8) * 0.3);
}

TEST(Fit, GapFunctionIsMonotoneDespiteNoise) {
  auto cfg = quiet_link();
  cfg.jitter_frac = 0.2;  // heavy noise
  const SyntheticLink link(cfg);
  Rng rng(9);
  const Params p = fit_link(link, FitConfig{}, rng);
  EXPECT_TRUE(p.g.is_monotone());
}

TEST(Fit, FitGapFunctionTakesMedians) {
  // Observations with one outlier per size: median suppresses it.
  const std::vector<std::pair<Bytes, std::vector<Time>>> obs{
      {100, {0.1, 0.1, 9.0}},
      {200, {0.2, 0.2, 0.2}},
  };
  const GapFunction g = fit_gap_function(obs);
  EXPECT_DOUBLE_EQ(g(100), 0.1);
  EXPECT_DOUBLE_EQ(g(200), 0.2);
}

TEST(Fit, IsotonicSmoothingPoolsViolators) {
  // Raw medians decrease between 100 and 200 bytes; the fit must not.
  const std::vector<std::pair<Bytes, std::vector<Time>>> obs{
      {100, {0.5}}, {200, {0.3}}, {300, {0.7}}};
  const GapFunction g = fit_gap_function(obs);
  EXPECT_TRUE(g.is_monotone());
  // Pooled value is the mean of the violating block.
  EXPECT_NEAR(g(100), 0.4, 1e-12);
  EXPECT_NEAR(g(200), 0.4, 1e-12);
  EXPECT_NEAR(g(300), 0.7, 1e-12);
}

TEST(Fit, EmptyObservationsThrow) {
  EXPECT_THROW((void)fit_gap_function({}), LogicError);
}

TEST(Fit, DefaultSizesLadderIsSane) {
  const auto sizes = FitConfig::default_sizes();
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_GE(sizes.back(), MiB(1));
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_GT(sizes[i], sizes[i - 1]);
}

class FitSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FitSeedSweep, RecoveryIsRobustAcrossSeeds) {
  auto cfg = quiet_link();
  cfg.jitter_frac = 0.05;
  const SyntheticLink link(cfg);
  FitConfig fc;
  fc.repetitions = 9;
  Rng rng(GetParam());
  const Params p = fit_link(link, fc, rng);
  const Time truth = link.true_gap(MiB(2));
  EXPECT_NEAR(p.g(MiB(2)), truth, truth * 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitSeedSweep,
                         ::testing::Values(1, 2, 3, 10, 100));

}  // namespace
}  // namespace gridcast::plogp
