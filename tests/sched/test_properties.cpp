// Property-based sweeps over random Table 2 instances: every heuristic,
// many seeds and cluster counts.  These pin down the invariants the
// Monte-Carlo benches rely on.

#include <gtest/gtest.h>

#include "exp/param_ranges.hpp"
#include "sched/evaluate.hpp"
#include "sched/registry.hpp"
#include "support/rng.hpp"

namespace gridcast::sched {
namespace {

struct Case {
  std::uint64_t seed;
  std::size_t clusters;
};

class HeuristicProperties : public ::testing::TestWithParam<Case> {
 protected:
  [[nodiscard]] Instance make_instance() const {
    Rng rng = Rng::stream(GetParam().seed, 0);
    return exp::sample_instance(exp::ParamRanges::paper(),
                                GetParam().clusters, rng);
  }
};

TEST_P(HeuristicProperties, SchedulesAreValidArborescences) {
  const Instance inst = make_instance();
  for (const auto& s : paper_heuristics()) {
    const Schedule sched = s.run(inst);
    EXPECT_EQ(describe_invalid(sched, inst.clusters()), "") << s.name();
  }
}

TEST_P(HeuristicProperties, MakespanRespectsLowerBound) {
  const Instance inst = make_instance();
  const Time lb = inst.lower_bound();
  for (const auto& s : paper_heuristics())
    EXPECT_GE(s.makespan(inst), lb - 1e-9) << s.name();
}

TEST_P(HeuristicProperties, EagerDominatedByAfterLastSend) {
  const Instance inst = make_instance();
  for (const auto& s : paper_heuristics()) {
    const SendOrder o = s.order(inst);
    EXPECT_LE(evaluate_order(inst, o, CompletionModel::kEager).makespan,
              evaluate_order(inst, o, CompletionModel::kAfterLastSend)
                      .makespan +
                  1e-12)
        << s.name();
  }
}

TEST_P(HeuristicProperties, OrdersAreDeterministic) {
  const Instance inst = make_instance();
  for (const auto& s : paper_heuristics())
    EXPECT_EQ(s.order(inst), s.order(inst)) << s.name();
}

TEST_P(HeuristicProperties, EveryClusterAppearsOnceAsReceiver) {
  const Instance inst = make_instance();
  for (const auto& s : paper_heuristics()) {
    std::vector<int> seen(inst.clusters(), 0);
    for (const auto& [snd, rcv] : s.order(inst)) ++seen[rcv];
    EXPECT_EQ(seen[inst.root()], 0) << s.name();
    for (ClusterId c = 0; c < inst.clusters(); ++c)
      if (c != inst.root()) {
        EXPECT_EQ(seen[c], 1) << s.name();
      }
  }
}

TEST_P(HeuristicProperties, MakespanWithinFullySerializedBound) {
  // Generous upper bound valid for ANY causal schedule: the i-th transfer
  // starts no later than (i-1) maximal transfers after time zero, so every
  // arrival is below (n-1) * max_transfer, and under the eager model each
  // cluster then needs at most max_T more.
  const Instance inst = make_instance();
  Time max_transfer = 0.0;
  for (ClusterId i = 0; i < inst.clusters(); ++i)
    for (ClusterId j = 0; j < inst.clusters(); ++j)
      if (i != j) max_transfer = std::max(max_transfer, inst.transfer(i, j));
  const Time bound =
      static_cast<double>(inst.clusters() - 1) * max_transfer + inst.max_T();
  for (const auto& s : paper_heuristics())
    EXPECT_LE(s.makespan(inst), bound + 1e-9) << s.name();
}

TEST_P(HeuristicProperties, EcefPicksGreedyMinimumEachRound) {
  // ECEF's defining property: every committed transfer has the smallest
  // achievable arrival among all (sender in A, receiver in B) pairs at
  // that moment.  Replay the schedule and verify each choice.
  const Instance inst = make_instance();
  const SendOrder order = Scheduler("ECEF").order(inst);
  EvalState st(inst);
  std::vector<bool> in_a(inst.clusters(), false);
  in_a[inst.root()] = true;
  for (const auto& [snd, rcv] : order) {
    const Time chosen = st.arrival_if(snd, rcv);
    for (ClusterId i = 0; i < inst.clusters(); ++i) {
      if (!in_a[i]) continue;
      for (ClusterId j = 0; j < inst.clusters(); ++j) {
        if (in_a[j]) continue;
        EXPECT_GE(st.arrival_if(i, j), chosen - 1e-12);
      }
    }
    st.apply(snd, rcv);
    in_a[rcv] = true;
  }
}

TEST_P(HeuristicProperties, TransferTimingConsistentWithMatrices) {
  const Instance inst = make_instance();
  for (const auto& s : paper_heuristics()) {
    const Schedule sched = s.run(inst);
    for (const auto& t : sched.transfers) {
      EXPECT_NEAR(t.arrival - t.start, inst.transfer(t.sender, t.receiver),
                  1e-12)
          << s.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeuristicProperties,
    ::testing::Values(Case{1, 2}, Case{1, 3}, Case{1, 5}, Case{1, 10},
                      Case{2, 4}, Case{2, 8}, Case{2, 25}, Case{3, 6},
                      Case{3, 15}, Case{3, 50}, Case{4, 7}, Case{4, 12},
                      Case{5, 30}, Case{6, 40}, Case{7, 9}, Case{8, 20}),
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.clusters);
    });

}  // namespace
}  // namespace gridcast::sched
