#include "sched/auto_scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "exp/instance_cache.hpp"
#include "exp/param_ranges.hpp"
#include "exp/race_cli.hpp"
#include "exp/sweep.hpp"
#include "io/bench_json.hpp"
#include "sched/builtin_schedulers.hpp"
#include "sched/evaluate.hpp"
#include "sched/registry.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::sched {
namespace {

/// The selection "auto" must reproduce, computed the slow explicit way:
/// evaluate every non-composite candidate individually and keep the
/// strict-less argmin, first registration wins ties.
struct Expected {
  std::string_view winner;
  Time makespan = 0.0;
  std::size_t accepting = 0;
};

Expected brute_force_argmin(const AutoScheduler& autos,
                            const SchedulerRuntimeInfo& info) {
  Expected e;
  const SchedulerEntry* best = nullptr;
  for (const auto name : autos.candidate_names()) {
    const SchedulerEntryPtr entry = registry().make(name);
    if (!entry->can_schedule(info)) continue;
    ++e.accepting;
    const Time mk =
        evaluate_order(info.instance(), entry->order(info), info.completion())
            .makespan;
    if (best == nullptr || mk < e.makespan) {
      best = entry.get();
      e.winner = name;
      e.makespan = mk;
    }
  }
  return e;
}

/// Same hand-built shapes as test_registry.cpp's gate suite: `wan` scales
/// transfers against uniform 10 ms internal broadcasts; `star` makes
/// non-root pairs cost double the hub edges.
Instance shaped_instance(std::size_t clusters, double wan,
                         bool star = false) {
  SquareMatrix<Time> g(clusters), L(clusters);
  std::vector<Time> T(clusters, ms(10));
  for (ClusterId i = 0; i < clusters; ++i) {
    for (ClusterId j = 0; j < clusters; ++j) {
      if (i == j) continue;
      const double detour = (star && i != 0 && j != 0) ? 2.0 : 1.0;
      g(i, j) = ms(5) * wan * detour;
      L(i, j) = ms(5) * wan * detour;
    }
  }
  return Instance(0, std::move(g), std::move(L), std::move(T));
}

// --------------------------------------------------- registration pins

TEST(AutoScheduler, RegisteredLastWithAliases) {
  const auto names = registry().names();
  ASSERT_FALSE(names.empty());
  // Last, so its candidate snapshot covers every builtin above it.
  EXPECT_EQ(names.back(), "auto");
  EXPECT_EQ(registry().make("auto")->name(), "auto");
  EXPECT_EQ(registry().make("best")->name(), "auto");
  EXPECT_EQ(registry().make("propose")->name(), "auto");
  EXPECT_TRUE(registry().make("auto")->is_composite());
}

TEST(AutoScheduler, CandidatesAreTheNonCompositeRegistryInOrder) {
  const AutoScheduler autos(registry());
  const auto candidates = autos.candidate_names();
  // Exactly the registry minus the composites ("Mixed" and itself), in
  // registration order — the tie-break contract depends on this order.
  std::vector<std::string_view> expected;
  for (const auto& name : registry().names()) {
    if (registry().make(name)->is_composite()) continue;
    expected.emplace_back(registry().make(name)->name());
  }
  EXPECT_EQ(candidates, expected);
  for (const auto name : candidates) {
    EXPECT_NE(name, "auto");
    EXPECT_NE(name, "Mixed");
  }
  EXPECT_EQ(autos.describe_options(),
            "prune=on candidates=" + std::to_string(candidates.size()));
}

// --------------------------------------------------- the argmin property

TEST(AutoScheduler, WinnerIsArgminOnTheFixtureGridLadder) {
  const topology::Grid grid = topology::grid5000_testbed();
  exp::InstanceCache cache(grid);
  const AutoScheduler autos(registry());
  for (const Bytes m : exp::default_size_ladder()) {
    for (const auto completion :
         {CompletionModel::kEager, CompletionModel::kAfterLastSend}) {
      const SchedulerRuntimeInfo info(*cache.get(0, m), m, completion);
      const auto proposal = autos.propose(info);
      const Expected want = brute_force_argmin(autos, info);
      EXPECT_EQ(proposal.winner, want.winner) << "size " << m;
      EXPECT_DOUBLE_EQ(proposal.makespan, want.makespan) << "size " << m;
      // The proposal's order really is the winner's order, and its
      // makespan is that order's score — not a stale incumbent's.
      EXPECT_DOUBLE_EQ(
          evaluate_order(info.instance(), proposal.order, completion).makespan,
          proposal.makespan);
      // Accounting covers the whole candidate walk.
      EXPECT_EQ(proposal.evaluated + proposal.pruned + proposal.gated,
                autos.candidate_names().size());
      EXPECT_EQ(proposal.evaluated + proposal.pruned, want.accepting);
    }
  }
}

TEST(AutoScheduler, WinnerIsArgminOnRandomInstances) {
  const AutoScheduler autos(registry());
  for (std::uint64_t it = 0; it < 30; ++it) {
    Rng rng = Rng::stream(23, it);
    const std::size_t clusters = 2 + static_cast<std::size_t>(it % 12);
    const Instance inst =
        exp::sample_instance(exp::ParamRanges::paper(), clusters, rng);
    const SchedulerRuntimeInfo info(inst);
    const auto proposal = autos.propose(info);
    const Expected want = brute_force_argmin(autos, info);
    EXPECT_EQ(proposal.winner, want.winner) << "iteration " << it;
    EXPECT_DOUBLE_EQ(proposal.makespan, want.makespan) << "iteration " << it;
  }
}

// The headline acceptance claim: the paper's own deployment answer
// ("Mixed", a two-way size split) can never beat consulting the whole
// registry per instance.
TEST(AutoScheduler, MatchesOrBeatsMixedEverywhere) {
  const topology::Grid grid = topology::grid5000_testbed();
  exp::InstanceCache cache(grid);
  const AutoScheduler autos(registry());
  const SchedulerEntryPtr mixed = registry().make("Mixed");
  for (const Bytes m : exp::default_size_ladder()) {
    const SchedulerRuntimeInfo info(*cache.get(0, m), m);
    const Time mixed_mk =
        evaluate_order(info.instance(), mixed->order(info), info.completion())
            .makespan;
    EXPECT_LE(autos.propose(info).makespan, mixed_mk) << "size " << m;
  }
  for (std::uint64_t it = 0; it < 30; ++it) {
    Rng rng = Rng::stream(29, it);
    const std::size_t clusters = 2 + static_cast<std::size_t>(it % 12);
    const Instance inst =
        exp::sample_instance(exp::ParamRanges::paper(), clusters, rng);
    const SchedulerRuntimeInfo info(inst);
    const Time mixed_mk =
        evaluate_order(inst, mixed->order(info), info.completion()).makespan;
    EXPECT_LE(autos.propose(info).makespan, mixed_mk) << "iteration " << it;
  }
}

// --------------------------------------------------- pruning purity

TEST(AutoScheduler, PruningNeverChangesTheSelection) {
  HeuristicOptions no_prune;
  no_prune.prune = false;
  const AutoScheduler pruned(registry());
  const AutoScheduler unpruned(registry(), no_prune);
  EXPECT_EQ(unpruned.describe_options(),
            "prune=off candidates=" +
                std::to_string(unpruned.candidate_names().size()));
  const topology::Grid grid = topology::grid5000_testbed();
  exp::InstanceCache cache(grid);
  for (const Bytes m : exp::default_size_ladder()) {
    const SchedulerRuntimeInfo info(*cache.get(0, m), m);
    const auto a = pruned.propose(info);
    const auto b = unpruned.propose(info);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.order, b.order);
    // Off means off: every accepting candidate is evaluated.
    EXPECT_EQ(b.pruned, 0u);
    EXPECT_EQ(a.evaluated + a.pruned, b.evaluated);
  }
}

// Byte-identity over whole reports, through the real harnesses: pruning
// is invisible to everything downstream of selection.
TEST(AutoScheduler, PruneOnOffSweepReportsAreByteIdentical) {
  const topology::Grid grid = topology::grid5000_testbed();
  exp::InstanceCache cache(grid);
  ThreadPool pool(0);
  exp::RaceSpec spec;
  spec.sched_names = registry().names();  // includes Mixed and auto
  const io::BenchReport on =
      exp::run_race_sweep(cache, "grid5000_testbed", spec, pool);
  spec.prune = false;
  const io::BenchReport off =
      exp::run_race_sweep(cache, "grid5000_testbed", spec, pool);
  EXPECT_EQ(io::bench_to_json(on), io::bench_to_json(off));
}

TEST(AutoScheduler, PruneOnOffMonteCarloReportsAreByteIdentical) {
  ThreadPool pool(0);
  exp::RaceGridSpec spec;
  for (const auto& c : paper_heuristics())
    spec.sched_names.emplace_back(c.name());
  spec.sched_names.emplace_back("auto");
  spec.cluster_counts = {2, 5, 8};
  spec.iterations = 48;
  spec.block_iters = 16;
  const io::BenchReport on = exp::run_race_grid(spec, pool);
  spec.prune = false;
  const io::BenchReport off = exp::run_race_grid(spec, pool);
  EXPECT_EQ(io::bench_to_json(on), io::bench_to_json(off));
}

// --------------------------------------------------- adversarial fixtures

TEST(AutoScheduler, AllGatedRegistryFailsWithOneLineDiagnostic) {
  // A registry holding only the two shape specialists, shown a WAN mesh
  // that is neither LAN-homogeneous nor hub-shaped: nothing accepts.
  // (A *uniform* WAN mesh is a degenerate star Star-WAN would take, so a
  // cheap non-root relay edge breaks the hub shape.)
  SchedulerRegistry reg;
  reg.add("LAN-Flat", [](const HeuristicOptions& o) {
    return std::make_shared<const LanFlatScheduler>(o);
  });
  reg.add("Star-WAN", [](const HeuristicOptions& o) {
    return std::make_shared<const StarWanScheduler>(o);
  });
  const AutoScheduler autos(reg);
  SquareMatrix<Time> g(5), L(5);
  std::vector<Time> T(5, ms(10));
  for (ClusterId i = 0; i < 5; ++i)
    for (ClusterId j = 0; j < 5; ++j) {
      if (i == j) continue;
      g(i, j) = ms(50);
      L(i, j) = ms(50);
    }
  g(1, 2) = ms(1);  // cluster 2's cheapest entry is via 1, not the root
  const Instance mesh(0, std::move(g), std::move(L), std::move(T));
  const SchedulerRuntimeInfo info(mesh);
  EXPECT_FALSE(autos.can_schedule(info));
  try {
    (void)autos.propose(info);
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("refused every candidate"), std::string::npos);
    EXPECT_NE(what.find("LAN-Flat"), std::string::npos);
    EXPECT_NE(what.find("Star-WAN"), std::string::npos);
    EXPECT_EQ(what.find('\n'), std::string::npos) << "diagnostic must be "
                                                     "one line";
  }
}

TEST(AutoScheduler, SingleSurvivorWinsTrivially) {
  SchedulerRegistry reg;
  reg.add("LAN-Flat", [](const HeuristicOptions& o) {
    return std::make_shared<const LanFlatScheduler>(o);
  });
  reg.add("Star-WAN", [](const HeuristicOptions& o) {
    return std::make_shared<const StarWanScheduler>(o);
  });
  const AutoScheduler autos(reg);
  // LAN regime: Star-WAN's gate refuses, LAN-Flat survives alone.
  const Instance lan = shaped_instance(5, 0.01);
  const SchedulerRuntimeInfo info(lan);
  ASSERT_TRUE(autos.can_schedule(info));
  const auto proposal = autos.propose(info);
  EXPECT_EQ(proposal.winner, "LAN-Flat");
  EXPECT_EQ(proposal.evaluated, 1u);
  EXPECT_EQ(proposal.gated, 1u);
  EXPECT_EQ(proposal.pruned, 0u);
}

// A local registry's auto sees the local candidates, not the global ones
// — the factory captures the registry it was registered into.
TEST(AutoScheduler, LocalRegistryGetsLocalCandidates) {
  SchedulerRegistry reg;
  register_builtin_schedulers(reg);
  reg.add("Extra", [](const HeuristicOptions& o) {
    return std::make_shared<const FlatTreeScheduler>(o);
  });
  // Snapshot taken at make() time, so "Extra" (registered after "auto")
  // is included — one more candidate than the global auto carries.
  const SchedulerEntryPtr entry = reg.make("auto");
  const auto* autos = dynamic_cast<const AutoScheduler*>(entry.get());
  ASSERT_NE(autos, nullptr);
  EXPECT_EQ(autos->candidate_names().size(),
            AutoScheduler(registry()).candidate_names().size() + 1);
}

}  // namespace
}  // namespace gridcast::sched
