#include "sched/evaluate.hpp"

#include <gtest/gtest.h>

namespace gridcast::sched {
namespace {

/// Uniform instance: every transfer costs g + L, every cluster the same T.
Instance uniform(std::size_t n, Time gap, Time lat, Time T) {
  SquareMatrix<Time> g(n, gap), L(n, lat);
  return Instance(0, std::move(g), std::move(L), std::vector<Time>(n, T));
}

TEST(Evaluate, SingleTransferTiming) {
  const Instance inst = uniform(2, 0.10, 0.01, 0.5);
  const SendOrder order{{0, 1}};
  const Schedule s = evaluate_order(inst, order);
  ASSERT_EQ(s.transfers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.transfers[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.transfers[0].arrival, 0.11);
  // Eager: finish = arrival + T.
  EXPECT_DOUBLE_EQ(s.cluster_finish[0], 0.5);
  EXPECT_DOUBLE_EQ(s.cluster_finish[1], 0.61);
  EXPECT_DOUBLE_EQ(s.makespan, 0.61);
}

TEST(Evaluate, NicSerializesRootSends) {
  const Instance inst = uniform(3, 0.10, 0.01, 0.0);
  const SendOrder order{{0, 1}, {0, 2}};
  const Schedule s = evaluate_order(inst, order);
  EXPECT_DOUBLE_EQ(s.transfers[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.transfers[0].arrival, 0.11);
  // Second send waits for the first gap, not its latency.
  EXPECT_DOUBLE_EQ(s.transfers[1].start, 0.10);
  EXPECT_DOUBLE_EQ(s.transfers[1].arrival, 0.21);
}

TEST(Evaluate, RelayWaitsForArrival) {
  const Instance inst = uniform(3, 0.10, 0.01, 0.0);
  const SendOrder order{{0, 1}, {1, 2}};
  const Schedule s = evaluate_order(inst, order);
  // Cluster 1 holds at 0.11 and only then starts relaying.
  EXPECT_DOUBLE_EQ(s.transfers[1].start, 0.11);
  EXPECT_DOUBLE_EQ(s.transfers[1].arrival, 0.22);
}

TEST(Evaluate, AfterLastSendModelChargesSenders) {
  const Instance inst = uniform(3, 0.10, 0.01, 1.0);
  const SendOrder order{{0, 1}, {0, 2}};
  const Schedule eager = evaluate_order(inst, order, CompletionModel::kEager);
  const Schedule cons =
      evaluate_order(inst, order, CompletionModel::kAfterLastSend);
  // Eager: root finishes at T = 1.0.  Conservative: after its second gap,
  // 0.20 + 1.0.
  EXPECT_DOUBLE_EQ(eager.cluster_finish[0], 1.0);
  EXPECT_DOUBLE_EQ(cons.cluster_finish[0], 1.2);
  // Pure receivers behave identically under both models.
  EXPECT_DOUBLE_EQ(eager.cluster_finish[2], cons.cluster_finish[2]);
}

TEST(Evaluate, EagerNeverExceedsAfterLastSend) {
  const Instance inst = uniform(4, 0.10, 0.01, 0.7);
  const SendOrder order{{0, 1}, {1, 2}, {1, 3}};
  const Time e =
      evaluate_order(inst, order, CompletionModel::kEager).makespan;
  const Time c =
      evaluate_order(inst, order, CompletionModel::kAfterLastSend).makespan;
  EXPECT_LE(e, c);
}

TEST(Evaluate, WrongOrderLengthThrows) {
  const Instance inst = uniform(3, 0.1, 0.01, 0.0);
  const SendOrder too_short{{0, 1}};
  EXPECT_THROW((void)evaluate_order(inst, too_short), LogicError);
}

TEST(Evaluate, NonCausalOrderThrows) {
  const Instance inst = uniform(3, 0.1, 0.01, 0.0);
  const SendOrder order{{1, 2}, {0, 1}};  // 1 sends before receiving
  EXPECT_THROW((void)evaluate_order(inst, order), LogicError);
}

TEST(Evaluate, DuplicateReceiverThrows) {
  const Instance inst = uniform(3, 0.1, 0.01, 0.0);
  const SendOrder order{{0, 1}, {0, 1}};
  EXPECT_THROW((void)evaluate_order(inst, order), LogicError);
}

TEST(EvalState, SendStartTracksNicAndArrival) {
  const Instance inst = uniform(3, 0.10, 0.01, 0.0);
  EvalState st(inst);
  EXPECT_DOUBLE_EQ(st.send_start(0), 0.0);
  EXPECT_FALSE(st.has_message(1));
  st.apply(0, 1);
  EXPECT_DOUBLE_EQ(st.send_start(0), 0.10);  // gap elapsed
  EXPECT_TRUE(st.has_message(1));
  EXPECT_DOUBLE_EQ(st.send_start(1), 0.11);  // waits for arrival
}

TEST(EvalState, ArrivalIfPredictsApply) {
  const Instance inst = uniform(3, 0.10, 0.01, 0.0);
  EvalState st(inst);
  const Time predicted = st.arrival_if(0, 2);
  const Transfer t = st.apply(0, 2);
  EXPECT_DOUBLE_EQ(t.arrival, predicted);
}

TEST(EvalState, SendWithoutMessageThrows) {
  const Instance inst = uniform(3, 0.1, 0.01, 0.0);
  EvalState st(inst);
  EXPECT_THROW((void)st.send_start(1), LogicError);
  EXPECT_THROW((void)st.apply(1, 2), LogicError);
}

TEST(EvalState, DoubleDeliveryThrows) {
  const Instance inst = uniform(3, 0.1, 0.01, 0.0);
  EvalState st(inst);
  st.apply(0, 1);
  EXPECT_THROW((void)st.apply(0, 1), LogicError);
}

TEST(EvalState, HeterogeneousTimingHandComputed) {
  // transfer(0,1) = 0.3, transfer(0,2) = 0.6, transfer(1,2) = 0.1.
  SquareMatrix<Time> g(3, 0.0), L(3, 0.0);
  g(0, 1) = 0.28;
  L(0, 1) = 0.02;
  g(0, 2) = 0.55;
  L(0, 2) = 0.05;
  g(1, 2) = 0.08;
  L(1, 2) = 0.02;
  g(1, 0) = g(2, 0) = g(2, 1) = 1.0;
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.0, 0.4});

  // 0 -> 1 (arrive 0.3), then 1 -> 2 (start 0.3, arrive 0.4).
  const Schedule s = evaluate_order(inst, SendOrder{{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(s.transfers[1].start, 0.30);
  EXPECT_DOUBLE_EQ(s.transfers[1].arrival, 0.40);
  EXPECT_DOUBLE_EQ(s.makespan, 0.80);  // 0.40 + T_2
}

}  // namespace
}  // namespace gridcast::sched
