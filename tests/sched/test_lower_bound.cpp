#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string_view>

#include "exp/instance_cache.hpp"
#include "exp/param_ranges.hpp"
#include "exp/sweep.hpp"
#include "sched/auto_scheduler.hpp"
#include "sched/builtin_schedulers.hpp"
#include "sched/evaluate.hpp"
#include "sched/heuristics.hpp"
#include "sched/registry.hpp"
#include "support/contracts.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/grid5000.hpp"

// The soundness contract behind "auto"'s pruning: for every entry and
// every instance it accepts, `lower_bound(info)` must not exceed the
// makespan of the schedule the entry actually produces.  Pruning skips a
// candidate only when its bound cannot beat the incumbent, so a sound
// bound makes pruning a pure optimisation — and an unsound one would
// silently change winners, which is why the DCHECK in propose() exists.
namespace gridcast::sched {
namespace {

void expect_sound_bounds(const SchedulerRuntimeInfo& info,
                         const char* label) {
  for (const auto& entry : registry().make_all()) {
    if (!entry->can_schedule(info)) continue;
    const Time mk =
        evaluate_order(info.instance(), entry->order(info), info.completion())
            .makespan;
    EXPECT_LE(entry->lower_bound(info), mk)
        << entry->name() << " on " << label;
  }
}

TEST(LowerBound, SoundForEveryEntryOnTheFixtureGrid) {
  const topology::Grid grid = topology::grid5000_testbed();
  exp::InstanceCache cache(grid);
  for (const Bytes m : exp::default_size_ladder()) {
    for (const auto completion :
         {CompletionModel::kEager, CompletionModel::kAfterLastSend}) {
      const SchedulerRuntimeInfo info(*cache.get(0, m), m, completion);
      expect_sound_bounds(info, "grid5000 ladder");
    }
  }
}

TEST(LowerBound, SoundForEveryEntryOnRandomInstances) {
  for (std::uint64_t it = 0; it < 40; ++it) {
    Rng rng = Rng::stream(31, it);
    const std::size_t clusters = 2 + static_cast<std::size_t>(it % 12);
    const Instance inst =
        exp::sample_instance(exp::ParamRanges::paper(), clusters, rng);
    const SchedulerRuntimeInfo info(inst);
    expect_sound_bounds(info, "sampled Table 2 instance");
  }
}

TEST(LowerBound, DefaultBoundIsTheCachedInstanceBound) {
  Rng rng = Rng::stream(37, 0);
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), 7, rng);
  const SchedulerRuntimeInfo info(inst);
  // Entries that do not override lower_bound() report the instance-level
  // bound the info caches — every schedule delivers each cluster at
  // least once, so it is sound for any of them.
  const auto entry = registry().make("FlatTree");
  EXPECT_DOUBLE_EQ(entry->lower_bound(info), info.lower_bound());
  EXPECT_DOUBLE_EQ(registry().make("auto")->lower_bound(info),
                   info.lower_bound());
}

// An entry whose bound is a lie: it claims no schedule can finish before
// +inf, so under pruning it would veto every later candidate.  propose()
// evaluates it (it is first, so there is no incumbent to prune against)
// and the soundness DCHECK trips.
class LyingBoundScheduler final : public SchedulerEntry {
 public:
  using SchedulerEntry::SchedulerEntry;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LyingBound";
  }
  [[nodiscard]] SendOrder order(
      const SchedulerRuntimeInfo& info) const override {
    return flat_tree_order(info.instance());
  }
  [[nodiscard]] Time lower_bound(
      const SchedulerRuntimeInfo&) const override {
    return std::numeric_limits<Time>::infinity();
  }
  using SchedulerEntry::order;
};

TEST(LowerBound, LyingBoundIsDetectedDuringProposal) {
  if (!GRIDCAST_DCHECKS_ENABLED)
    GTEST_SKIP() << "soundness DCHECK is compiled out of this build";
  SchedulerRegistry reg;
  // Registered *first* so the lying entry is evaluated rather than
  // pruned: the DCHECK runs on evaluated candidates only.
  reg.add("LyingBound", [](const HeuristicOptions& o) {
    return std::make_shared<const LyingBoundScheduler>(o);
  });
  reg.add("FlatTree", [](const HeuristicOptions& o) {
    return std::make_shared<const FlatTreeScheduler>(o);
  });
  const AutoScheduler autos(reg);
  Rng rng = Rng::stream(41, 0);
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), 6, rng);
  EXPECT_THROW((void)autos.propose(SchedulerRuntimeInfo(inst)), LogicError);
}

}  // namespace
}  // namespace gridcast::sched
