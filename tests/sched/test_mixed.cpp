#include "sched/mixed.hpp"

#include <gtest/gtest.h>

#include "exp/param_ranges.hpp"
#include "support/rng.hpp"

namespace gridcast::sched {
namespace {

TEST(Mixed, ChoiceFollowsThreshold) {
  const MixedStrategy m(10);
  EXPECT_EQ(m.choice(2), HeuristicKind::kEcefLa);
  EXPECT_EQ(m.choice(10), HeuristicKind::kEcefLa);
  EXPECT_EQ(m.choice(11), HeuristicKind::kEcefLaMax);
  EXPECT_EQ(m.choice(50), HeuristicKind::kEcefLaMax);
}

TEST(Mixed, ThresholdIsConfigurable) {
  const MixedStrategy m(3);
  EXPECT_EQ(m.threshold(), 3u);
  EXPECT_EQ(m.choice(4), HeuristicKind::kEcefLaMax);
}

TEST(Mixed, DelegatesToUnderlyingHeuristic) {
  Rng rng_small = Rng::stream(3, 1);
  const Instance small =
      exp::sample_instance(exp::ParamRanges::paper(), 6, rng_small);
  Rng rng_large = Rng::stream(3, 2);
  const Instance large =
      exp::sample_instance(exp::ParamRanges::paper(), 20, rng_large);

  const MixedStrategy m(10);
  EXPECT_EQ(m.order(small), Scheduler(HeuristicKind::kEcefLa).order(small));
  EXPECT_EQ(m.order(large),
            Scheduler(HeuristicKind::kEcefLaMax).order(large));
}

TEST(Mixed, RunProducesValidSchedule) {
  Rng rng = Rng::stream(9, 5);
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), 12, rng);
  const MixedStrategy m(10);
  const Schedule s = m.run(inst);
  EXPECT_EQ(describe_invalid(s, inst.clusters()), "");
}

}  // namespace
}  // namespace gridcast::sched
