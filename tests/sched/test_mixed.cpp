#include "sched/mixed.hpp"

#include <gtest/gtest.h>

#include "exp/param_ranges.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gridcast::sched {
namespace {

TEST(Mixed, ChoiceFollowsThreshold) {
  const MixedStrategy m(10);
  EXPECT_EQ(m.choice(2), "ECEF-LA");
  EXPECT_EQ(m.choice(10), "ECEF-LA");
  EXPECT_EQ(m.choice(11), "ECEF-LAT");
  EXPECT_EQ(m.choice(50), "ECEF-LAT");
}

TEST(Mixed, ThresholdIsConfigurable) {
  const MixedStrategy m(3);
  EXPECT_EQ(m.threshold(), 3u);
  EXPECT_EQ(m.choice(4), "ECEF-LAT");
}

TEST(Mixed, DelegatesAreConfigurableByRegistryName) {
  const MixedStrategy m(10, {}, "FlatTree", "BottomUp");
  EXPECT_EQ(m.choice(4), "FlatTree");
  EXPECT_EQ(m.choice(40), "BottomUp");
}

TEST(Mixed, UnknownDelegateNameRejected) {
  EXPECT_THROW(MixedStrategy(10, {}, "NoSuchHeuristic", "ECEF-LAT"),
               InvalidInput);
}

TEST(Mixed, IsRegisteredByName) {
  const auto entry = registry().make("Mixed");
  EXPECT_EQ(entry->name(), "Mixed");
}

TEST(Mixed, DelegatesToUnderlyingHeuristic) {
  Rng rng_small = Rng::stream(3, 1);
  const Instance small =
      exp::sample_instance(exp::ParamRanges::paper(), 6, rng_small);
  Rng rng_large = Rng::stream(3, 2);
  const Instance large =
      exp::sample_instance(exp::ParamRanges::paper(), 20, rng_large);

  const MixedStrategy m(10);
  EXPECT_EQ(m.order(small), Scheduler("ECEF-LA").order(small));
  EXPECT_EQ(m.order(large), Scheduler("ECEF-LAT").order(large));
}

TEST(Mixed, RunProducesValidSchedule) {
  Rng rng = Rng::stream(9, 5);
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), 12, rng);
  const MixedStrategy m(10);
  const Schedule s = m.run(inst);
  EXPECT_EQ(describe_invalid(s, inst.clusters()), "");
}

}  // namespace
}  // namespace gridcast::sched
