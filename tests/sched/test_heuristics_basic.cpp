#include "sched/heuristics.hpp"

#include <gtest/gtest.h>

#include <string_view>

#include "sched/evaluate.hpp"
#include "sched/registry.hpp"

namespace gridcast::sched {
namespace {

Instance uniform(std::size_t n, Time gap, Time lat, Time T) {
  SquareMatrix<Time> g(n, gap), L(n, lat);
  return Instance(0, std::move(g), std::move(L), std::vector<Time>(n, T));
}

TEST(FlatTree, RootSendsToAllInIdOrder) {
  const Instance inst = uniform(4, 0.1, 0.01, 0.0);
  const SendOrder o = flat_tree_order(inst);
  const SendOrder expected{{0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(o, expected);
}

TEST(FlatTree, NonZeroRoot) {
  SquareMatrix<Time> g(3, 0.1), L(3, 0.01);
  const Instance inst(1, std::move(g), std::move(L), {0.0, 0.0, 0.0});
  const SendOrder o = flat_tree_order(inst);
  const SendOrder expected{{1, 0}, {1, 2}};
  EXPECT_EQ(o, expected);
}

TEST(Fef, PicksLightestEdgeFirst) {
  // L(0,2) < L(0,1): FEF must contact 2 first despite ids.
  SquareMatrix<Time> g(3, 0.1), L(3, 0.0);
  L(0, 1) = L(1, 0) = 0.010;
  L(0, 2) = L(2, 0) = 0.002;
  L(1, 2) = L(2, 1) = 0.020;
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.0, 0.0});
  const SendOrder o = fef_order(inst);
  const SendOrder expected{{0, 2}, {0, 1}};  // (0,1)=0.01 < (2,1)=0.02
  EXPECT_EQ(o, expected);
}

TEST(Fef, LatencyWeightIgnoresGap) {
  // Edge (0,1) has a tiny latency but a huge gap; latency-only FEF takes
  // it, the informed weight avoids it.
  SquareMatrix<Time> g(3, 0.0), L(3, 0.0);
  g(0, 1) = g(1, 0) = 5.0;
  L(0, 1) = L(1, 0) = 0.001;
  g(0, 2) = g(2, 0) = 0.1;
  L(0, 2) = L(2, 0) = 0.010;
  g(1, 2) = g(2, 1) = 0.1;
  L(1, 2) = L(2, 1) = 0.010;
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.0, 0.0});

  EXPECT_EQ(fef_order(inst, FefWeight::kLatencyOnly).front(),
            (SendPair{0, 1}));
  EXPECT_EQ(fef_order(inst, FefWeight::kGapPlusLatency).front(),
            (SendPair{0, 2}));
}

TEST(Fef, ReceiverBecomesEligibleSenderImmediately) {
  // Cheapest chain: 0 -> 1 -> 2; FEF uses 1 as a sender right away even
  // though realistically it is still receiving - the flaw ECEF fixes.
  SquareMatrix<Time> g(3, 1.0), L(3, 0.0);
  L(0, 1) = L(1, 0) = 0.001;
  L(1, 2) = L(2, 1) = 0.002;
  L(0, 2) = L(2, 0) = 0.050;
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.0, 0.0});
  const SendOrder o = fef_order(inst);
  const SendOrder expected{{0, 1}, {1, 2}};
  EXPECT_EQ(o, expected);
}

TEST(Ecef, AccountsForSenderReadiness) {
  // After 0 -> 1 (arrival 1.001), relaying via 1 would complete at
  // 1.001 + 1.06 = 2.061 while the root - whose NIC frees at 1.0 -
  // reaches 2 directly at 1.0 + 1.05 = 2.05.  ECEF picks the root;
  // FEF's latency ordering would relay via 1 only if its edge were
  // lighter, so this isolates the ready-time term.
  SquareMatrix<Time> g(3, 1.0), L(3, 0.0);
  L(0, 1) = L(1, 0) = 0.001;
  L(1, 2) = L(2, 1) = 0.060;
  L(0, 2) = L(2, 0) = 0.050;
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.0, 0.0});
  const SendOrder o = ecef_order(inst, Lookahead::kNone);
  const SendOrder expected{{0, 1}, {0, 2}};
  EXPECT_EQ(o, expected);
}

TEST(Ecef, PrefersFreeSecondSource) {
  // After 0 -> 1, cluster 1 is a better source for 2 when the root's NIC
  // is still saturated by a long gap.
  SquareMatrix<Time> g(3, 0.0), L(3, 0.0);
  g(0, 1) = 0.10;
  L(0, 1) = 0.01;
  g(0, 2) = 2.00;  // root's edge to 2 is terrible
  L(0, 2) = 0.01;
  g(1, 2) = 0.10;
  L(1, 2) = 0.01;
  g(1, 0) = g(2, 0) = g(2, 1) = 5.0;
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.0, 0.0});
  const SendOrder o = ecef_order(inst, Lookahead::kNone);
  const SendOrder expected{{0, 1}, {1, 2}};
  EXPECT_EQ(o, expected);
}

TEST(Ecef, LookaheadBreaksGreedyTie) {
  // Clusters 1 and 2 cost the root the same, but 1 forwards to 3 cheaply
  // while 2 is a dead end; ECEF-LA must fetch 1 first.
  SquareMatrix<Time> g(4, 0.0), L(4, 0.0);
  const auto set = [&](ClusterId a, ClusterId b, Time v) {
    g(a, b) = v;
    g(b, a) = v;
  };
  set(0, 1, 0.10);
  set(0, 2, 0.10);
  set(0, 3, 0.50);
  set(1, 3, 0.05);
  set(2, 3, 0.40);
  set(1, 2, 0.30);
  const Instance inst(0, std::move(g), std::move(L),
                      {0.0, 0.0, 0.0, 0.0});

  // Plain ECEF ties and takes the smaller id = 1 anyway, so compare the
  // lookahead's decision on the mirrored instance where the dead end has
  // the smaller id.
  SquareMatrix<Time> g2(4, 0.0), L2(4, 0.0);
  const auto set2 = [&](ClusterId a, ClusterId b, Time v) {
    g2(a, b) = v;
    g2(b, a) = v;
  };
  set2(0, 2, 0.10);  // the good forwarder is now id 2
  set2(0, 1, 0.10);  // dead end has id 1
  set2(0, 3, 0.50);
  set2(2, 3, 0.05);
  set2(1, 3, 0.40);
  set2(1, 2, 0.30);
  const Instance mirrored(0, std::move(g2), std::move(L2),
                          {0.0, 0.0, 0.0, 0.0});

  EXPECT_EQ(ecef_order(mirrored, Lookahead::kNone).front(), (SendPair{0, 1}));
  EXPECT_EQ(ecef_order(mirrored, Lookahead::kMinEdge).front(),
            (SendPair{0, 2}));
}

TEST(Heuristics, AllProduceValidSchedulesOnUniformInstance) {
  const Instance inst = uniform(6, 0.1, 0.01, 0.3);
  for (const auto& o :
       {flat_tree_order(inst), fef_order(inst),
        ecef_order(inst, Lookahead::kNone),
        ecef_order(inst, Lookahead::kMinEdge),
        ecef_order(inst, Lookahead::kMinEdgePlusT),
        ecef_order(inst, Lookahead::kMaxEdgePlusT), bottomup_order(inst)}) {
    const Schedule s = evaluate_order(inst, o);
    EXPECT_EQ(describe_invalid(s, inst.clusters()), "");
  }
}

TEST(Heuristics, RegistryEntriesCarryPaperFigureNames) {
  for (const std::string_view name :
       {"FlatTree", "FEF", "ECEF", "ECEF-LA", "ECEF-LAt", "ECEF-LAT",
        "BottomUp"})
    EXPECT_EQ(registry().make(name)->name(), name);
}

}  // namespace
}  // namespace gridcast::sched
