#include "sched/instance.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "topology/grid.hpp"

namespace gridcast::sched {
namespace {

Instance make_triangle() {
  // 3 clusters; transfer(0,1)=0.11, transfer(0,2)=0.22, transfer(1,2)=0.15.
  SquareMatrix<Time> g(3, 0.0), L(3, 0.0);
  g(0, 1) = g(1, 0) = 0.10;
  g(0, 2) = g(2, 0) = 0.20;
  g(1, 2) = g(2, 1) = 0.14;
  L(0, 1) = L(1, 0) = 0.01;
  L(0, 2) = L(2, 0) = 0.02;
  L(1, 2) = L(2, 1) = 0.01;
  return Instance(0, std::move(g), std::move(L), {0.5, 0.3, 1.0});
}

TEST(Instance, Accessors) {
  const Instance inst = make_triangle();
  EXPECT_EQ(inst.clusters(), 3u);
  EXPECT_EQ(inst.root(), 0u);
  EXPECT_DOUBLE_EQ(inst.g(0, 1), 0.10);
  EXPECT_DOUBLE_EQ(inst.L(0, 2), 0.02);
  EXPECT_DOUBLE_EQ(inst.T(2), 1.0);
  EXPECT_DOUBLE_EQ(inst.transfer(0, 1), 0.11);
  EXPECT_DOUBLE_EQ(inst.transfer(1, 2), 0.15);
}

TEST(Instance, MaxT) {
  EXPECT_DOUBLE_EQ(make_triangle().max_T(), 1.0);
}

TEST(Instance, LowerBoundHandComputed) {
  const Instance inst = make_triangle();
  // Root: T = 0.5.  Cluster 1: cheapest in-edge 0.11 + 0.3 = 0.41.
  // Cluster 2: cheapest in-edge 0.15 + 1.0 = 1.15.  Max = 1.15.
  EXPECT_DOUBLE_EQ(inst.lower_bound(), 1.15);
}

TEST(Instance, RootOutOfRangeThrows) {
  SquareMatrix<Time> g(2, 0.0), L(2, 0.0);
  EXPECT_THROW(Instance(2, std::move(g), std::move(L), {0.0, 0.0}),
               LogicError);
}

TEST(Instance, MatrixSizeMismatchThrows) {
  SquareMatrix<Time> g(3, 0.0), L(2, 0.0);
  EXPECT_THROW(Instance(0, std::move(g), std::move(L), {0.0, 0.0}),
               LogicError);
}

TEST(Instance, NegativeTimesThrow) {
  SquareMatrix<Time> g(2, 0.0), L(2, 0.0);
  g(0, 1) = -0.1;
  g(1, 0) = 0.1;
  EXPECT_THROW(Instance(0, std::move(g), std::move(L), {0.0, 0.0}),
               LogicError);
  SquareMatrix<Time> g2(2, 0.0), L2(2, 0.0);
  EXPECT_THROW(Instance(0, std::move(g2), std::move(L2), {0.0, -1.0}),
               LogicError);
}

TEST(Instance, FromGridPullsLinkParameters) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 4, plogp::Params::latency_bandwidth(us(50), 1e8));
  cs.emplace_back("b", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1,
                          plogp::Params::latency_bandwidth(ms(10), 2e6));

  const Bytes m = MiB(1);
  const Instance inst = Instance::from_grid(grid, 0, m);
  EXPECT_DOUBLE_EQ(inst.L(0, 1), ms(10));
  EXPECT_DOUBLE_EQ(inst.g(0, 1), grid.link(0, 1).g(m));
  EXPECT_DOUBLE_EQ(inst.T(0), grid.cluster(0).internal_bcast_time(m));
  EXPECT_DOUBLE_EQ(inst.T(1), 0.0);
}

TEST(Instance, FromGridRespectsRoot) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 2, plogp::Params::latency_bandwidth(us(50), 1e8));
  cs.emplace_back("b", 2, plogp::Params::latency_bandwidth(us(50), 1e8));
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1, plogp::Params::latency_bandwidth(ms(5), 1e7));
  EXPECT_EQ(Instance::from_grid(grid, 1, MiB(1)).root(), 1u);
}

}  // namespace
}  // namespace gridcast::sched
