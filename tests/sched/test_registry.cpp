#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include <string_view>

#include "exp/param_ranges.hpp"
#include "sched/builtin_schedulers.hpp"
#include "sched/evaluate.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gridcast::sched {
namespace {

constexpr std::string_view kPaperNames[] = {
    "FlatTree", "FEF",      "ECEF",    "ECEF-LA",
    "ECEF-LAt", "ECEF-LAT", "BottomUp"};

TEST(Registry, RoundTripsAllSevenPaperHeuristics) {
  for (const auto name : kPaperNames) {
    ASSERT_TRUE(registry().contains(name)) << name;
    const SchedulerEntryPtr entry = registry().make(name);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->name(), name);
  }
}

TEST(Registry, AliasesResolveCaseInsensitively) {
  EXPECT_EQ(registry().make("ecef-lat")->name(), "ECEF-LAT");
  EXPECT_EQ(registry().make("ECEF-LAT")->name(), "ECEF-LAT");
  EXPECT_EQ(registry().make("ECEF-LAt")->name(), "ECEF-LAt");
  EXPECT_EQ(registry().make("ecef-la-min")->name(), "ECEF-LAt");
  EXPECT_EQ(registry().make("Flat-Tree")->name(), "FlatTree");
  EXPECT_EQ(registry().make("bottom-up")->name(), "BottomUp");
}

TEST(Registry, UnknownNameThrowsListingAvailable) {
  try {
    (void)registry().make("NoSuchHeuristic");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NoSuchHeuristic"), std::string::npos);
    EXPECT_NE(what.find("ECEF-LAT"), std::string::npos);  // lists choices
  }
}

TEST(Registry, DuplicateRegistrationRejected) {
  SchedulerRegistry reg;
  register_builtin_schedulers(reg);
  const auto factory = [](const HeuristicOptions& o) {
    return std::make_shared<const FlatTreeScheduler>(o);
  };
  EXPECT_THROW(reg.add("FlatTree", factory), InvalidInput);
  // A canonical name may not shadow an existing alias (exact canonical
  // match wins in lookups, so this would hijack make("mixed")).
  EXPECT_THROW(reg.add("mixed", factory), InvalidInput);
  // Alias collisions are rejected against aliases and canonical names.
  EXPECT_THROW(reg.add("Fresh", factory, {"ecef-lat"}), InvalidInput);
  EXPECT_THROW(reg.add("Fresh", factory, {"FEF"}), InvalidInput);
  EXPECT_THROW(reg.add("Fresh", factory, {"bottomup"}), InvalidInput);
  // A genuinely new name is accepted.
  reg.add("Fresh", factory, {"fresh-alias"});
  EXPECT_EQ(reg.make("fresh-alias")->name(), "FlatTree");
}

TEST(Registry, DuplicateAliasWithinOneCallRejected) {
  // Regression: intra-call duplicates were only checked against already-
  // registered maps, so the second occurrence was silently dropped by
  // aliases_.emplace.
  SchedulerRegistry reg;
  const auto factory = [](const HeuristicOptions& o) {
    return std::make_shared<const FlatTreeScheduler>(o);
  };
  EXPECT_THROW(reg.add("A", factory, {"dup", "dup"}), InvalidInput);
  // Case-insensitive folding makes these the same alias too.
  EXPECT_THROW(reg.add("B", factory, {"Alias", "alias"}), InvalidInput);
  // The failed registration must not leave partial state behind.
  EXPECT_FALSE(reg.contains("A"));
  EXPECT_FALSE(reg.contains("dup"));
  reg.add("C", factory, {"dup"});
  EXPECT_EQ(reg.make("dup")->name(), "FlatTree");
}

TEST(Registry, NamesPreserveRegistrationOrder) {
  const auto names = registry().names();
  ASSERT_GE(names.size(), 7u);
  // The paper's figure order leads the built-in registration.
  EXPECT_EQ(names[0], "FlatTree");
  EXPECT_EQ(names[1], "FEF");
  EXPECT_EQ(names[2], "ECEF");
  EXPECT_EQ(names[6], "ECEF-AvgEdge");
}

TEST(Registry, OptionsReachTheEntry) {
  HeuristicOptions opts;
  opts.fef_weight = FefWeight::kGapPlusLatency;
  const auto entry = registry().make("FEF", opts);
  EXPECT_EQ(entry->options().fef_weight, FefWeight::kGapPlusLatency);
  EXPECT_EQ(entry->describe_options(), "weight=gap+latency");
}

TEST(Registry, PaperHelpersAreRegistryBacked) {
  const auto paper = paper_heuristics();
  ASSERT_EQ(paper.size(), 7u);
  for (std::size_t i = 0; i < paper.size(); ++i)
    EXPECT_EQ(paper[i].name(), kPaperNames[i]);
  const auto family = ecef_family();
  ASSERT_EQ(family.size(), 4u);
  EXPECT_EQ(family[0].name(), "ECEF");
  EXPECT_EQ(family[3].name(), "ECEF-LAT");
}

// Property: every registered entry that accepts an instance emits a
// causal SendOrder that evaluate_order accepts, on random Table 2
// instances of varied size.  Grid-shape-specialised entries may refuse
// via can_schedule — that is their contract — but the paper's seven must
// accept everything.
TEST(Registry, EveryEntryEmitsCausalOrdersOnRandomInstances) {
  const auto entries = registry().make_all();
  for (std::uint64_t it = 0; it < 40; ++it) {
    Rng rng = Rng::stream(11, it);
    const std::size_t clusters = 2 + static_cast<std::size_t>(it % 12);
    const Instance inst =
        exp::sample_instance(exp::ParamRanges::paper(), clusters, rng);
    const SchedulerRuntimeInfo info(inst);
    for (const auto& entry : entries) {
      if (!entry->can_schedule(info)) continue;  // gated: skipped, not raced
      const SendOrder order = entry->order(info);
      ASSERT_EQ(order.size(), clusters - 1) << entry->name();
      const Schedule s = evaluate_order(inst, order);  // throws if acausal
      EXPECT_EQ(describe_invalid(s, inst.clusters()), "") << entry->name();
    }
  }
  for (const auto name : kPaperNames) {
    Rng rng = Rng::stream(12, 0);
    const Instance inst =
        exp::sample_instance(exp::ParamRanges::paper(), 6, rng);
    EXPECT_TRUE(registry().make(name)->can_schedule(SchedulerRuntimeInfo(inst)))
        << name;
  }
}

// ----------------------------------------- grid-shape-specialised gates

/// A hand-built instance: `wan` scales the inter-cluster transfer costs
/// relative to the internal broadcast times (all 10 ms).  `wan` well under
/// one is the LAN regime; far above one, a WAN.
Instance shaped_instance(std::size_t clusters, double wan,
                         bool star = false) {
  SquareMatrix<Time> g(clusters), L(clusters);
  std::vector<Time> T(clusters, ms(10));
  for (ClusterId i = 0; i < clusters; ++i) {
    for (ClusterId j = 0; j < clusters; ++j) {
      if (i == j) continue;
      // In the star shape, non-root pairs cost double the hub edges.
      const double detour = (star && i != 0 && j != 0) ? 2.0 : 1.0;
      g(i, j) = ms(5) * wan * detour;
      L(i, j) = ms(5) * wan * detour;
    }
  }
  return Instance(0, std::move(g), std::move(L), std::move(T));
}

TEST(GatedEntries, LanFlatUsesLowerBoundAgainstMaxInternal) {
  const auto entry = registry().make("LAN-Flat");
  // LAN regime: transfers are 1% of the internal time; lower_bound stays
  // within the slack of max_T and the gate opens.
  const Instance lan = shaped_instance(5, 0.01);
  EXPECT_TRUE(entry->can_schedule(SchedulerRuntimeInfo(lan)));
  // WAN regime: the cheapest incoming edge alone dwarfs max_T.
  const Instance wan = shaped_instance(5, 10.0);
  EXPECT_FALSE(entry->can_schedule(SchedulerRuntimeInfo(wan)));
  // When it does schedule, the order is the flat tree.
  const SendOrder order = entry->order(SchedulerRuntimeInfo(lan));
  ASSERT_EQ(order.size(), 4u);
  for (const auto& [s, r] : order) EXPECT_EQ(s, 0u);
}

TEST(GatedEntries, StarWanRequiresHubShapeAndWanRegime) {
  const auto entry = registry().make("Star-WAN");
  // Hub-shaped WAN: accepted; spokes ordered worst direct path first
  // (uniform here, so ascending id tie-break) and all sent by the root.
  const Instance star = shaped_instance(5, 10.0, /*star=*/true);
  EXPECT_TRUE(entry->can_schedule(SchedulerRuntimeInfo(star)));
  const SendOrder order = entry->order(SchedulerRuntimeInfo(star));
  ASSERT_EQ(order.size(), 4u);
  for (const auto& [s, r] : order) EXPECT_EQ(s, 0u);
  const Schedule sched = evaluate_order(star, order);
  EXPECT_EQ(describe_invalid(sched, star.clusters()), "");
  // Uniform full mesh: no hub to exploit (ties are a degenerate star, but
  // the non-root detour in the star shape is what the gate keys on).
  const Instance lan_star = shaped_instance(5, 0.01, /*star=*/true);
  EXPECT_FALSE(entry->can_schedule(SchedulerRuntimeInfo(lan_star)))
      << "LAN regime must be refused even when hub-shaped";
  // WAN mesh where a non-root relay beats the direct edge: not a star.
  Instance mesh = shaped_instance(5, 10.0);
  {
    SquareMatrix<Time> g(5), L(5);
    std::vector<Time> T(5, ms(10));
    for (ClusterId i = 0; i < 5; ++i)
      for (ClusterId j = 0; j < 5; ++j) {
        if (i == j) continue;
        g(i, j) = ms(50);
        L(i, j) = ms(50);
      }
    g(1, 2) = ms(1);  // cluster 2's cheapest entry is via 1, not the root
    mesh = Instance(0, std::move(g), std::move(L), std::move(T));
  }
  EXPECT_FALSE(entry->can_schedule(SchedulerRuntimeInfo(mesh)));
}

TEST(RuntimeInfo, CachesInstanceAggregates) {
  Rng rng = Rng::stream(5, 3);
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), 8, rng);
  const SchedulerRuntimeInfo info(inst, MiB(1),
                                  CompletionModel::kAfterLastSend);
  EXPECT_EQ(info.clusters(), 8u);
  EXPECT_EQ(info.message_size(), MiB(1));
  EXPECT_EQ(info.completion(), CompletionModel::kAfterLastSend);
  EXPECT_DOUBLE_EQ(info.max_internal(), inst.max_T());
  EXPECT_DOUBLE_EQ(info.lower_bound(), inst.lower_bound());
}

}  // namespace
}  // namespace gridcast::sched
