#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include <string_view>

#include "exp/param_ranges.hpp"
#include "sched/builtin_schedulers.hpp"
#include "sched/evaluate.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gridcast::sched {
namespace {

constexpr std::string_view kPaperNames[] = {
    "FlatTree", "FEF",      "ECEF",    "ECEF-LA",
    "ECEF-LAt", "ECEF-LAT", "BottomUp"};

TEST(Registry, RoundTripsAllSevenPaperHeuristics) {
  for (const auto name : kPaperNames) {
    ASSERT_TRUE(registry().contains(name)) << name;
    const SchedulerEntryPtr entry = registry().make(name);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->name(), name);
  }
}

TEST(Registry, AliasesResolveCaseInsensitively) {
  EXPECT_EQ(registry().make("ecef-lat")->name(), "ECEF-LAT");
  EXPECT_EQ(registry().make("ECEF-LAT")->name(), "ECEF-LAT");
  EXPECT_EQ(registry().make("ECEF-LAt")->name(), "ECEF-LAt");
  EXPECT_EQ(registry().make("ecef-la-min")->name(), "ECEF-LAt");
  EXPECT_EQ(registry().make("Flat-Tree")->name(), "FlatTree");
  EXPECT_EQ(registry().make("bottom-up")->name(), "BottomUp");
}

TEST(Registry, UnknownNameThrowsListingAvailable) {
  try {
    (void)registry().make("NoSuchHeuristic");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NoSuchHeuristic"), std::string::npos);
    EXPECT_NE(what.find("ECEF-LAT"), std::string::npos);  // lists choices
  }
}

TEST(Registry, DuplicateRegistrationRejected) {
  SchedulerRegistry reg;
  register_builtin_schedulers(reg);
  const auto factory = [](const HeuristicOptions& o) {
    return std::make_shared<const FlatTreeScheduler>(o);
  };
  EXPECT_THROW(reg.add("FlatTree", factory), InvalidInput);
  // A canonical name may not shadow an existing alias (exact canonical
  // match wins in lookups, so this would hijack make("mixed")).
  EXPECT_THROW(reg.add("mixed", factory), InvalidInput);
  // Alias collisions are rejected against aliases and canonical names.
  EXPECT_THROW(reg.add("Fresh", factory, {"ecef-lat"}), InvalidInput);
  EXPECT_THROW(reg.add("Fresh", factory, {"FEF"}), InvalidInput);
  EXPECT_THROW(reg.add("Fresh", factory, {"bottomup"}), InvalidInput);
  // A genuinely new name is accepted.
  reg.add("Fresh", factory, {"fresh-alias"});
  EXPECT_EQ(reg.make("fresh-alias")->name(), "FlatTree");
}

TEST(Registry, DuplicateAliasWithinOneCallRejected) {
  // Regression: intra-call duplicates were only checked against already-
  // registered maps, so the second occurrence was silently dropped by
  // aliases_.emplace.
  SchedulerRegistry reg;
  const auto factory = [](const HeuristicOptions& o) {
    return std::make_shared<const FlatTreeScheduler>(o);
  };
  EXPECT_THROW(reg.add("A", factory, {"dup", "dup"}), InvalidInput);
  // Case-insensitive folding makes these the same alias too.
  EXPECT_THROW(reg.add("B", factory, {"Alias", "alias"}), InvalidInput);
  // The failed registration must not leave partial state behind.
  EXPECT_FALSE(reg.contains("A"));
  EXPECT_FALSE(reg.contains("dup"));
  reg.add("C", factory, {"dup"});
  EXPECT_EQ(reg.make("dup")->name(), "FlatTree");
}

TEST(Registry, NamesPreserveRegistrationOrder) {
  const auto names = registry().names();
  ASSERT_GE(names.size(), 7u);
  // The paper's figure order leads the built-in registration.
  EXPECT_EQ(names[0], "FlatTree");
  EXPECT_EQ(names[1], "FEF");
  EXPECT_EQ(names[2], "ECEF");
  EXPECT_EQ(names[6], "ECEF-AvgEdge");
}

TEST(Registry, OptionsReachTheEntry) {
  HeuristicOptions opts;
  opts.fef_weight = FefWeight::kGapPlusLatency;
  const auto entry = registry().make("FEF", opts);
  EXPECT_EQ(entry->options().fef_weight, FefWeight::kGapPlusLatency);
  EXPECT_EQ(entry->describe_options(), "weight=gap+latency");
}

TEST(Registry, PaperHelpersAreRegistryBacked) {
  const auto paper = paper_heuristics();
  ASSERT_EQ(paper.size(), 7u);
  for (std::size_t i = 0; i < paper.size(); ++i)
    EXPECT_EQ(paper[i].name(), kPaperNames[i]);
  const auto family = ecef_family();
  ASSERT_EQ(family.size(), 4u);
  EXPECT_EQ(family[0].name(), "ECEF");
  EXPECT_EQ(family[3].name(), "ECEF-LAT");
}

// Property: every registered entry emits a causal SendOrder that
// evaluate_order accepts, on random Table 2 instances of varied size.
TEST(Registry, EveryEntryEmitsCausalOrdersOnRandomInstances) {
  const auto entries = registry().make_all();
  for (std::uint64_t it = 0; it < 40; ++it) {
    Rng rng = Rng::stream(11, it);
    const std::size_t clusters = 2 + static_cast<std::size_t>(it % 12);
    const Instance inst =
        exp::sample_instance(exp::ParamRanges::paper(), clusters, rng);
    const SchedulerRuntimeInfo info(inst);
    for (const auto& entry : entries) {
      ASSERT_TRUE(entry->can_schedule(info))
          << entry->name() << " at " << clusters;
      const SendOrder order = entry->order(info);
      ASSERT_EQ(order.size(), clusters - 1) << entry->name();
      const Schedule s = evaluate_order(inst, order);  // throws if acausal
      EXPECT_EQ(describe_invalid(s, inst.clusters()), "") << entry->name();
    }
  }
}

TEST(RuntimeInfo, CachesInstanceAggregates) {
  Rng rng = Rng::stream(5, 3);
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), 8, rng);
  const SchedulerRuntimeInfo info(inst, MiB(1),
                                  CompletionModel::kAfterLastSend);
  EXPECT_EQ(info.clusters(), 8u);
  EXPECT_EQ(info.message_size(), MiB(1));
  EXPECT_EQ(info.completion(), CompletionModel::kAfterLastSend);
  EXPECT_DOUBLE_EQ(info.max_internal(), inst.max_T());
  EXPECT_DOUBLE_EQ(info.lower_bound(), inst.lower_bound());
}

}  // namespace
}  // namespace gridcast::sched
