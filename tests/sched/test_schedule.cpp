#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gridcast::sched {
namespace {

Schedule valid_two_transfer() {
  Schedule s;
  s.root = 0;
  s.transfers = {{0, 1, 0.0, 0.5}, {1, 2, 0.5, 1.0}};
  s.cluster_finish = {0.2, 0.8, 1.5};
  s.makespan = 1.5;
  return s;
}

TEST(Schedule, ValidScheduleAccepted) {
  EXPECT_EQ(describe_invalid(valid_two_transfer(), 3), "");
  EXPECT_TRUE(is_valid(valid_two_transfer(), 3));
}

TEST(Schedule, RootOutOfRange) {
  auto s = valid_two_transfer();
  s.root = 9;
  EXPECT_NE(describe_invalid(s, 3), "");
}

TEST(Schedule, WrongTransferCount) {
  auto s = valid_two_transfer();
  s.transfers.pop_back();
  EXPECT_NE(describe_invalid(s, 3).find("one transfer"), std::string::npos);
}

TEST(Schedule, RootMustNeverReceive) {
  auto s = valid_two_transfer();
  s.transfers[1] = {1, 0, 0.5, 1.0};
  EXPECT_NE(describe_invalid(s, 3).find("root"), std::string::npos);
}

TEST(Schedule, DoubleReceiveRejected) {
  Schedule s;
  s.root = 0;
  s.transfers = {{0, 1, 0.0, 0.5}, {0, 1, 0.5, 1.0}};
  s.cluster_finish = {0.0, 1.0, 0.0};
  s.makespan = 1.0;
  EXPECT_NE(describe_invalid(s, 3).find("received twice"), std::string::npos);
}

TEST(Schedule, SendBeforeReceiveRejected) {
  Schedule s;
  s.root = 0;
  s.transfers = {{1, 2, 0.0, 0.5}, {0, 1, 0.5, 1.0}};
  s.cluster_finish = {0.0, 1.0, 0.5};
  s.makespan = 1.0;
  EXPECT_NE(describe_invalid(s, 3).find("before receiving"),
            std::string::npos);
}

TEST(Schedule, TransferStartBeforeHoldRejected) {
  Schedule s;
  s.root = 0;
  s.transfers = {{0, 1, 0.0, 0.5}, {1, 2, 0.3, 0.9}};  // 1 holds at 0.5
  s.cluster_finish = {0.0, 0.5, 0.9};
  s.makespan = 0.9;
  EXPECT_NE(describe_invalid(s, 3).find("before sender holds"),
            std::string::npos);
}

TEST(Schedule, ArrivalBeforeStartRejected) {
  Schedule s;
  s.root = 0;
  s.transfers = {{0, 1, 1.0, 0.5}};
  s.cluster_finish = {0.0, 1.0};
  s.makespan = 1.0;
  EXPECT_NE(describe_invalid(s, 2).find("arrival precedes"),
            std::string::npos);
}

TEST(Schedule, SelfTransferRejected) {
  Schedule s;
  s.root = 0;
  s.transfers = {{1, 1, 0.0, 0.5}};
  s.cluster_finish = {0.0, 0.5};
  s.makespan = 0.5;
  EXPECT_NE(describe_invalid(s, 2).find("self"), std::string::npos);
}

TEST(Schedule, FinishBeforeHoldRejected) {
  auto s = valid_two_transfer();
  s.cluster_finish[2] = 0.5;  // holds only at 1.0
  EXPECT_NE(describe_invalid(s, 3).find("finishes before"),
            std::string::npos);
}

TEST(Schedule, MakespanBelowFinishRejected) {
  auto s = valid_two_transfer();
  s.makespan = 1.0;  // finish[2] = 1.5
  EXPECT_NE(describe_invalid(s, 3).find("makespan"), std::string::npos);
}

TEST(Schedule, UncoveredClusterRejected) {
  Schedule s;
  s.root = 0;
  s.transfers = {{0, 1, 0.0, 0.5}, {0, 1, 0.6, 1.1}};
  s.cluster_finish = {0.0, 0.5, 0.0};
  s.makespan = 1.1;
  // Cluster 2 never receives (and 1 receives twice).
  EXPECT_NE(describe_invalid(s, 3), "");
}

TEST(Schedule, PrintMentionsTransfersAndMakespan) {
  std::ostringstream os;
  valid_two_transfer().print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("makespan"), std::string::npos);
  EXPECT_NE(out.find("0 -> 1"), std::string::npos);
  EXPECT_NE(out.find("1 -> 2"), std::string::npos);
}

}  // namespace
}  // namespace gridcast::sched
