#include "sched/analysis.hpp"

#include <gtest/gtest.h>

#include "sched/evaluate.hpp"
#include "sched/registry.hpp"

namespace gridcast::sched {
namespace {

Instance uniform(std::size_t n, Time gap, Time lat, std::vector<Time> T) {
  SquareMatrix<Time> g(n, gap), L(n, lat);
  return Instance(0, std::move(g), std::move(L), std::move(T));
}

TEST(Analysis, ChainTopologyDepthsAndBottleneck) {
  const Instance inst = uniform(3, 0.1, 0.01, {0.0, 0.0, 1.0});
  const Schedule s = evaluate_order(inst, SendOrder{{0, 1}, {1, 2}});
  const ScheduleAnalysis a = analyze(inst, s);

  EXPECT_EQ(a.clusters[0].depth, 0u);
  EXPECT_EQ(a.clusters[1].depth, 1u);
  EXPECT_EQ(a.clusters[2].depth, 2u);
  EXPECT_EQ(a.tree_depth, 2u);
  EXPECT_EQ(a.bottleneck, 2u);
  EXPECT_EQ(a.critical_path, (std::vector<ClusterId>{0, 1, 2}));
  EXPECT_TRUE(a.clusters[1].on_critical_path);
}

TEST(Analysis, StarTopologyCountsSends) {
  const Instance inst = uniform(4, 0.1, 0.01, {0.0, 0.0, 0.0, 0.0});
  const Schedule s =
      evaluate_order(inst, SendOrder{{0, 1}, {0, 2}, {0, 3}});
  const ScheduleAnalysis a = analyze(inst, s);
  EXPECT_EQ(a.clusters[0].sends, 3u);
  EXPECT_NEAR(a.clusters[0].busy, 0.3, 1e-12);
  EXPECT_EQ(a.tree_depth, 1u);
  for (ClusterId c = 1; c < 4; ++c) EXPECT_EQ(a.clusters[c].sends, 0u);
}

TEST(Analysis, ArrivalTimesRecorded) {
  const Instance inst = uniform(3, 0.1, 0.01, {0.0, 0.0, 0.0});
  const Schedule s = evaluate_order(inst, SendOrder{{0, 1}, {0, 2}});
  const ScheduleAnalysis a = analyze(inst, s);
  EXPECT_DOUBLE_EQ(a.clusters[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(a.clusters[1].arrival, 0.11);
  EXPECT_DOUBLE_EQ(a.clusters[2].arrival, 0.21);
}

TEST(Analysis, RootCanBeBottleneck) {
  const Instance inst = uniform(2, 0.1, 0.01, {5.0, 0.0});
  const Schedule s = evaluate_order(inst, SendOrder{{0, 1}});
  const ScheduleAnalysis a = analyze(inst, s);
  EXPECT_EQ(a.bottleneck, 0u);
  EXPECT_EQ(a.critical_path, std::vector<ClusterId>{0});
}

TEST(Analysis, UtilisationBetweenZeroAndOne) {
  const Instance inst = uniform(6, 0.2, 0.01, {0.1, 0.2, 0.3, 0.1, 0.2, 0.3});
  const Schedule s = Scheduler("ECEF-LA").run(inst);
  const ScheduleAnalysis a = analyze(inst, s);
  EXPECT_GT(a.mean_sender_utilisation, 0.0);
  EXPECT_LE(a.mean_sender_utilisation, 1.0);
}

TEST(Analysis, InvalidScheduleRejected) {
  const Instance inst = uniform(3, 0.1, 0.01, {0.0, 0.0, 0.0});
  Schedule bogus;
  bogus.root = 0;
  bogus.cluster_finish = {0.0, 0.0, 0.0};
  EXPECT_THROW((void)analyze(inst, bogus), LogicError);
}

TEST(Gantt, RendersOneRowPerClusterPlusLegend) {
  const Instance inst = uniform(3, 0.1, 0.01, {0.0, 0.2, 0.2});
  const Schedule s = evaluate_order(inst, SendOrder{{0, 1}, {0, 2}});
  const std::string gantt = render_gantt(inst, s, 40);
  EXPECT_NE(gantt.find("c0 (root)"), std::string::npos);
  EXPECT_NE(gantt.find("c2"), std::string::npos);
  EXPECT_NE(gantt.find("legend"), std::string::npos);
  EXPECT_NE(gantt.find('='), std::string::npos);  // root sending
  EXPECT_NE(gantt.find('>'), std::string::npos);  // arrivals
  EXPECT_NE(gantt.find('#'), std::string::npos);  // internal broadcasts
}

TEST(Gantt, TooNarrowRejected) {
  const Instance inst = uniform(2, 0.1, 0.01, {0.0, 0.0});
  const Schedule s = evaluate_order(inst, SendOrder{{0, 1}});
  EXPECT_THROW((void)render_gantt(inst, s, 4), LogicError);
}

}  // namespace
}  // namespace gridcast::sched
