#include <gtest/gtest.h>

#include "sched/evaluate.hpp"
#include "sched/heuristics.hpp"

namespace gridcast::sched {
namespace {

/// Uniform network, heterogeneous internal broadcast times.
Instance uniform_links_with_T(Time gap, Time lat, std::vector<Time> T) {
  const std::size_t n = T.size();
  SquareMatrix<Time> g(n, gap), L(n, lat);
  return Instance(0, std::move(g), std::move(L), std::move(T));
}

TEST(EcefLaT, MaxLookaheadServesSlowestClusterFirst) {
  // Uniform links; cluster 3 has a huge internal broadcast.  For any j,
  // F_j(LAT) scans B\{j}: excluding 3 from the scan is only possible when
  // j == 3, which lowers its score - LAT fetches the slow cluster first.
  const Instance inst =
      uniform_links_with_T(0.1, 0.01, {0.0, 0.1, 0.2, 3.0});
  const SendOrder o = ecef_order(inst, Lookahead::kMaxEdgePlusT);
  EXPECT_EQ(o.front(), (SendPair{0, 3}));
}

TEST(EcefLat, MinLookaheadPrefersFastForwardingNeighbourhood) {
  // Cluster 1 can reach the fast cluster 2 (tiny T); cluster 3 only has
  // slow-T options.  ECEF-LAt's min lookahead favours 1.
  const Instance inst =
      uniform_links_with_T(0.1, 0.01, {0.0, 0.5, 0.01, 2.0});
  const SendOrder o = ecef_order(inst, Lookahead::kMinEdgePlusT);
  // F_1 = min(T_2, T_3) + 0.11 = 0.12; F_2 = min(T_1, T_3) + 0.11 = 0.61;
  // F_3 = min(T_1, T_2) + 0.11 = 0.12.  Costs tie between 1 and 3 -> 1.
  EXPECT_EQ(o.front(), (SendPair{0, 1}));
}

TEST(EcefVariants, DifferOnHeterogeneousT) {
  const Instance inst =
      uniform_links_with_T(0.1, 0.01, {0.0, 0.1, 1.0, 2.5, 0.3});
  const SendOrder lat = ecef_order(inst, Lookahead::kMaxEdgePlusT);
  const SendOrder lat_min = ecef_order(inst, Lookahead::kMinEdgePlusT);
  EXPECT_NE(lat, lat_min);
}

TEST(BottomUp, ServesWorstBestCostFirst) {
  // transfer uniform; T_3 dominates: BottomUp contacts 3 first.
  const Instance inst =
      uniform_links_with_T(0.1, 0.01, {0.0, 0.2, 0.4, 2.0});
  const SendOrder o = bottomup_order(inst);
  EXPECT_EQ(o.front(), (SendPair{0, 3}));
  // Next worst is 2, then 1.
  EXPECT_EQ(o[1].receiver, 2u);
  EXPECT_EQ(o[2].receiver, 1u);
}

TEST(BottomUp, PicksCheapestSenderForTheChosenReceiver) {
  // Receiver 2 is worst (big T).  Sender choice: root's edge to 2 is
  // expensive, cluster 1's edge is cheap - but 1 must receive first, so
  // round 1 uses the root; once 1 is in A with a ready-time, the policy
  // decides.
  SquareMatrix<Time> g(3, 0.0), L(3, 0.01);
  g(0, 1) = g(1, 0) = 0.1;
  g(0, 2) = g(2, 0) = 1.0;
  g(1, 2) = g(2, 1) = 0.1;
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.0, 5.0});

  // Ready-time aware: serving 2 via 1 costs arrival(1)=0.11 + 0.11 = 0.22
  // start... but in round 1 only the root holds the message: cost(0,2) =
  // 1.01 + 5; cost(0,1) = 0.11 + 0.  Worst best-cost is cluster 2, served
  // by the root (the only sender).
  const SendOrder o = bottomup_order(inst, BottomUpPolicy::kReadyTimeAware);
  EXPECT_EQ(o.front(), (SendPair{0, 2}));
}

TEST(BottomUp, PoliciesDivergeWhenSendersAreBusy) {
  // Two receivers with equal T; the paper formula ignores that the root's
  // NIC is busy after the first send, the ready-time policy does not.
  // Construct: root's edges cheap; cluster 1's edge to 3 very cheap.
  // After (0 -> 1): paper formula scores (1,3) as 0.05 + T, picking
  // sender 1 for receiver 3; ready-time scores it 0.11 + 0.05 + T vs the
  // root's 0.10 + 0.30 + T -> still 1, but for receiver 2 the policies
  // rank senders differently once gaps accumulate.
  SquareMatrix<Time> g(4, 0.0), L(4, 0.0);
  const auto set = [&](ClusterId a, ClusterId b, Time v) {
    g(a, b) = v;
    g(b, a) = v;
  };
  set(0, 1, 0.10);
  set(0, 2, 0.30);
  set(0, 3, 0.30);
  set(1, 2, 0.05);
  set(1, 3, 0.05);
  set(2, 3, 0.50);
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.0, 1.0, 1.0});

  const SendOrder aware = bottomup_order(inst, BottomUpPolicy::kReadyTimeAware);
  const SendOrder paper = bottomup_order(inst, BottomUpPolicy::kPaperFormula);
  const Schedule sa = evaluate_order(inst, aware);
  const Schedule sp = evaluate_order(inst, paper);
  EXPECT_EQ(describe_invalid(sa, 4), "");
  EXPECT_EQ(describe_invalid(sp, 4), "");
  // Both must be causal; the aware policy can never be *worse* here.
  EXPECT_LE(sa.makespan, sp.makespan + 1e-12);
}

TEST(GridAware, TAwareHeuristicsBeatEcefWhenTSpreadIsLarge) {
  // A case engineered for the paper's Section 5 motivation: cluster 3 is
  // slightly more expensive to reach, so speed-oriented ECEF serves it
  // last; its T dwarfs everything, so T-aware orders win.
  SquareMatrix<Time> g(4, 0.0), L(4, 0.01);
  const auto set = [&](ClusterId a, ClusterId b, Time v) {
    g(a, b) = v;
    g(b, a) = v;
  };
  set(0, 1, 0.10);
  set(0, 2, 0.12);
  set(0, 3, 0.14);
  set(1, 2, 0.10);
  set(1, 3, 0.12);
  set(2, 3, 0.10);
  const Instance inst(0, std::move(g), std::move(L), {0.0, 0.1, 0.1, 3.0});

  const Time ecef =
      evaluate_order(inst, ecef_order(inst, Lookahead::kNone)).makespan;
  const Time lat =
      evaluate_order(inst, ecef_order(inst, Lookahead::kMaxEdgePlusT))
          .makespan;
  const Time bu = evaluate_order(inst, bottomup_order(inst)).makespan;
  EXPECT_LT(lat, ecef);
  EXPECT_LT(bu, ecef);
}

TEST(GridAware, LastClusterLookaheadIsZero) {
  // Two clusters: B\{j} is empty for the only receiver; all lookahead
  // variants must degrade to plain ECEF.
  const Instance inst = uniform_links_with_T(0.1, 0.01, {0.0, 2.0});
  const SendOrder expected{{0, 1}};
  EXPECT_EQ(ecef_order(inst, Lookahead::kMinEdge), expected);
  EXPECT_EQ(ecef_order(inst, Lookahead::kMinEdgePlusT), expected);
  EXPECT_EQ(ecef_order(inst, Lookahead::kMaxEdgePlusT), expected);
}

}  // namespace
}  // namespace gridcast::sched
