#include "sched/optimal.hpp"

#include <gtest/gtest.h>

#include "exp/param_ranges.hpp"
#include "sched/registry.hpp"
#include "support/rng.hpp"

namespace gridcast::sched {
namespace {

Instance uniform(std::size_t n, Time gap, Time lat, std::vector<Time> T) {
  SquareMatrix<Time> g(n, gap), L(n, lat);
  return Instance(0, std::move(g), std::move(L), std::move(T));
}

TEST(Optimal, TwoClustersIsTheOnlySchedule) {
  const Instance inst = uniform(2, 0.1, 0.01, {0.2, 0.5});
  const OptimalResult r = optimal_schedule(inst);
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 0.11 + 0.5);
  EXPECT_EQ(r.schedule.transfers.size(), 1u);
}

TEST(Optimal, ThreeClustersHandComputed) {
  // Uniform transfers 0.11, T = {0, 0, 1.0}.  Eager model.
  // Serving 2 first: arrival 0.11 -> finish 1.11; then 1 via root at
  // 0.21 or via 2 at 0.22 -> makespan 1.11.
  // Serving 1 first: 2 arrives at 0.21 earliest -> 1.21.  Optimum: 1.11.
  const Instance inst = uniform(3, 0.1, 0.01, {0.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(optimal_makespan(inst), 1.11);
}

TEST(Optimal, RefusesOversizedInstances) {
  const Instance inst = uniform(12, 0.1, 0.01, std::vector<Time>(12, 0.1));
  EXPECT_THROW((void)optimal_schedule(inst), InvalidInput);
  // Raising the cap unlocks the search (verified on a size that is still
  // tractable: 6 clusters under a cap of 6).
  const Instance small = uniform(6, 0.1, 0.01, std::vector<Time>(6, 0.1));
  EXPECT_THROW((void)optimal_schedule(small, 5), InvalidInput);
  EXPECT_NO_THROW((void)optimal_schedule(small, 6));
}

TEST(Optimal, ReportsExploration) {
  const Instance inst = uniform(4, 0.1, 0.01, {0.1, 0.2, 0.3, 0.4});
  const OptimalResult r = optimal_schedule(inst);
  EXPECT_GT(r.explored, 1u);
}

TEST(Optimal, ScheduleIsValid) {
  Rng rng = Rng::stream(5, 0);
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), 5, rng);
  const OptimalResult r = optimal_schedule(inst);
  EXPECT_EQ(describe_invalid(r.schedule, inst.clusters()), "");
}

TEST(Optimal, CompletionModelChangesObjective) {
  // One slow-T cluster: eager optimum serves it early and overlaps; the
  // conservative optimum pays for every later send of its coordinator.
  const Instance inst = uniform(4, 0.2, 0.01, {0.0, 0.0, 0.0, 2.0});
  const Time eager = optimal_makespan(inst, 9, CompletionModel::kEager);
  const Time cons =
      optimal_makespan(inst, 9, CompletionModel::kAfterLastSend);
  EXPECT_LE(eager, cons);
}

class OptimalDominance
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(OptimalDominance, NoHeuristicBeatsOptimal) {
  const auto [seed, clusters] = GetParam();
  Rng rng = Rng::stream(seed, 77);
  const Instance inst = exp::sample_instance(
      exp::ParamRanges::paper(), static_cast<std::size_t>(clusters), rng);
  const Time opt = optimal_makespan(inst);
  for (const auto& s : paper_heuristics()) {
    EXPECT_GE(s.makespan(inst), opt - 1e-9)
        << s.name() << " beat the exhaustive optimum (seed " << seed << ")";
  }
  // And the optimum respects the instance lower bound.
  EXPECT_GE(opt, inst.lower_bound() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalDominance,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(3, 4, 5)));

}  // namespace
}  // namespace gridcast::sched
