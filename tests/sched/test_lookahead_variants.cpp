// Bhat's alternative lookahead functions (paper Section 4.4): average
// edge cost to the rest of B, and average A->B cost after the move.

#include <gtest/gtest.h>

#include "exp/param_ranges.hpp"
#include "sched/evaluate.hpp"
#include "sched/heuristics.hpp"
#include "support/rng.hpp"

namespace gridcast::sched {
namespace {

TEST(AvgLookahead, AvgEdgeHandComputed) {
  // Receiver 1 has cheap average onward edges, receiver 2 expensive ones;
  // root edges tie.  kAvgEdge must fetch 1 first.
  SquareMatrix<Time> g(4, 0.0), L(4, 0.0);
  const auto set = [&](ClusterId a, ClusterId b, Time v) {
    g(a, b) = v;
    g(b, a) = v;
  };
  set(0, 1, 0.10);
  set(0, 2, 0.10);
  set(0, 3, 0.50);
  set(1, 2, 0.20);
  set(1, 3, 0.10);
  set(2, 3, 0.90);
  const Instance inst(0, std::move(g), std::move(L), {0, 0, 0, 0});
  // F_1 = avg(0.20, 0.10) = 0.15; F_2 = avg(0.20, 0.90) = 0.55.
  const SendOrder o = ecef_order(inst, Lookahead::kAvgEdge);
  EXPECT_EQ(o.front(), (SendPair{0, 1}));
}

TEST(AvgLookahead, AvgAfterMoveAccountsForExistingSenders) {
  // kAvgAfterMove averages over the hypothetical A + {j}: a receiver with
  // bad own edges can still score well when A already reaches B cheaply.
  SquareMatrix<Time> g(3, 0.0), L(3, 0.0);
  g(0, 1) = g(1, 0) = 0.10;
  g(0, 2) = g(2, 0) = 0.10;
  g(1, 2) = g(2, 1) = 0.80;
  const Instance inst(0, std::move(g), std::move(L), {0, 0, 0});
  // F_1 = avg over senders {1, 0} to {2}: (0.8 + 0.1)/2 = 0.45.
  // F_2 = avg over senders {2, 0} to {1}: (0.8 + 0.1)/2 = 0.45.
  // Tie -> lowest receiver id first; mostly checks the arithmetic path.
  const SendOrder o = ecef_order(inst, Lookahead::kAvgAfterMove);
  EXPECT_EQ(o.front(), (SendPair{0, 1}));
  const Schedule s = evaluate_order(inst, o);
  EXPECT_EQ(describe_invalid(s, 3), "");
}

class AvgLookaheadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AvgLookaheadSweep, ProducesValidSchedules) {
  Rng rng = Rng::stream(11, GetParam());
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), GetParam(), rng);
  for (const auto la : {Lookahead::kAvgEdge, Lookahead::kAvgAfterMove}) {
    const SendOrder o = ecef_order(inst, la);
    const Schedule s = evaluate_order(inst, o);
    EXPECT_EQ(describe_invalid(s, inst.clusters()), "");
  }
}

TEST_P(AvgLookaheadSweep, DistinctFromMinEdgeOnLargeInstances) {
  if (GetParam() < 10) return;  // tiny instances often coincide
  Rng rng = Rng::stream(13, GetParam());
  const Instance inst =
      exp::sample_instance(exp::ParamRanges::paper(), GetParam(), rng);
  EXPECT_NE(ecef_order(inst, Lookahead::kAvgEdge),
            ecef_order(inst, Lookahead::kMinEdge));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AvgLookaheadSweep,
                         ::testing::Values(2, 3, 5, 10, 20, 40));

}  // namespace
}  // namespace gridcast::sched
