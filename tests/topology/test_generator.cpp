#include "topology/generator.hpp"

#include <gtest/gtest.h>

#include "topology/comm_level.hpp"

namespace gridcast::topology {
namespace {

TEST(Generator, ProducesValidGrid) {
  GeneratorConfig cfg;
  Rng rng(1);
  const Grid g = random_grid(cfg, rng);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.cluster_count(), cfg.clusters);
}

TEST(Generator, ClusterSizesWithinBounds) {
  GeneratorConfig cfg;
  cfg.clusters = 12;
  cfg.min_cluster_size = 3;
  cfg.max_cluster_size = 9;
  Rng rng(2);
  const Grid g = random_grid(cfg, rng);
  for (ClusterId c = 0; c < g.cluster_count(); ++c) {
    EXPECT_GE(g.cluster(c).size(), 3u);
    EXPECT_LE(g.cluster(c).size(), 9u);
  }
}

TEST(Generator, DeterministicForSameRngState) {
  GeneratorConfig cfg;
  Rng a(7), b(7);
  const Grid ga = random_grid(cfg, a);
  const Grid gb = random_grid(cfg, b);
  for (ClusterId c = 0; c < ga.cluster_count(); ++c) {
    EXPECT_EQ(ga.cluster(c).size(), gb.cluster(c).size());
    EXPECT_DOUBLE_EQ(ga.cluster(c).intra().L, gb.cluster(c).intra().L);
  }
  EXPECT_DOUBLE_EQ(ga.link(0, 1).L, gb.link(0, 1).L);
}

TEST(Generator, SameSiteLinksAreLan) {
  GeneratorConfig cfg;
  cfg.clusters = 6;
  cfg.sites = 3;  // round-robin: clusters 0 and 3 share site 0
  Rng rng(3);
  const Grid g = random_grid(cfg, rng);
  EXPECT_EQ(classify_latency(g.link(0, 3).L), CommLevel::kLan);
  EXPECT_EQ(classify_latency(g.link(1, 4).L), CommLevel::kLan);
  EXPECT_EQ(classify_latency(g.link(0, 1).L), CommLevel::kWan);
}

TEST(Generator, SingleSiteIsAllLan) {
  GeneratorConfig cfg;
  cfg.clusters = 4;
  cfg.sites = 1;
  Rng rng(4);
  const Grid g = random_grid(cfg, rng);
  for (ClusterId i = 0; i < 4; ++i)
    for (ClusterId j = 0; j < 4; ++j)
      if (i != j) {
        EXPECT_EQ(classify_latency(g.link(i, j).L), CommLevel::kLan);
      }
}

TEST(Generator, InvalidConfigThrows) {
  Rng rng(1);
  GeneratorConfig zero;
  zero.clusters = 0;
  EXPECT_THROW((void)random_grid(zero, rng), LogicError);
  GeneratorConfig bad_sizes;
  bad_sizes.min_cluster_size = 10;
  bad_sizes.max_cluster_size = 5;
  EXPECT_THROW((void)random_grid(bad_sizes, rng), LogicError);
}

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, AlwaysValid) {
  GeneratorConfig cfg;
  cfg.clusters = 8;
  cfg.sites = 2;
  Rng rng(GetParam());
  const Grid g = random_grid(cfg, rng);
  EXPECT_NO_THROW(g.validate());
  EXPECT_GE(g.total_nodes(), 8u * cfg.min_cluster_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1, 5, 17, 101, 9999));

}  // namespace
}  // namespace gridcast::topology
