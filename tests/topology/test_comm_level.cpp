#include "topology/comm_level.hpp"

#include <gtest/gtest.h>

namespace gridcast::topology {
namespace {

TEST(CommLevel, ClassifiesRepresentativeLatencies) {
  EXPECT_EQ(classify_latency(ms(12)), CommLevel::kWan);
  EXPECT_EQ(classify_latency(ms(5.2)), CommLevel::kWan);
  EXPECT_EQ(classify_latency(us(250)), CommLevel::kLan);
  EXPECT_EQ(classify_latency(us(47.56)), CommLevel::kLocalhost);
  EXPECT_EQ(classify_latency(us(2)), CommLevel::kSharedMemory);
}

TEST(CommLevel, BoundariesAreInclusiveUpward) {
  EXPECT_EQ(classify_latency(ms(2.0)), CommLevel::kWan);
  EXPECT_EQ(classify_latency(us(100.0)), CommLevel::kLan);
  EXPECT_EQ(classify_latency(us(10.0)), CommLevel::kLocalhost);
  EXPECT_EQ(classify_latency(us(9.999)), CommLevel::kSharedMemory);
}

TEST(CommLevel, LatencyRangesAreOrderedByLevel) {
  // Table 1: level 0 > level 1 > level 2 > level 3 in latency.
  const auto wan = typical_latency(CommLevel::kWan);
  const auto lan = typical_latency(CommLevel::kLan);
  const auto local = typical_latency(CommLevel::kLocalhost);
  const auto shm = typical_latency(CommLevel::kSharedMemory);
  EXPECT_GE(wan.lo, lan.hi - 1e-12);
  EXPECT_GE(lan.lo, local.hi - 1e-12);
  EXPECT_GE(local.lo, shm.hi - 1e-12);
}

TEST(CommLevel, BandwidthRangesAreOrderedInversely) {
  EXPECT_LT(typical_bandwidth(CommLevel::kWan).hi,
            typical_bandwidth(CommLevel::kLan).hi + 1);
  EXPECT_LT(typical_bandwidth(CommLevel::kLan).hi,
            typical_bandwidth(CommLevel::kLocalhost).hi + 1);
}

TEST(CommLevel, RangeValuesClassifyBackToTheirLevel) {
  for (const auto l : {CommLevel::kWan, CommLevel::kLan,
                       CommLevel::kLocalhost, CommLevel::kSharedMemory}) {
    const auto [lo, hi] = typical_latency(l);
    EXPECT_EQ(classify_latency(lo), l);
    EXPECT_EQ(classify_latency((lo + hi) / 2.0), l);
  }
}

TEST(CommLevel, ToStringIsDistinct) {
  EXPECT_EQ(to_string(CommLevel::kWan), "WAN-TCP");
  EXPECT_EQ(to_string(CommLevel::kLan), "LAN-TCP");
  EXPECT_EQ(to_string(CommLevel::kLocalhost), "localhost-TCP");
  EXPECT_EQ(to_string(CommLevel::kSharedMemory), "shared-memory");
}

}  // namespace
}  // namespace gridcast::topology
