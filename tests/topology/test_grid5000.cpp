#include "topology/grid5000.hpp"

#include <gtest/gtest.h>

#include "sched/instance.hpp"

namespace gridcast::topology {
namespace {

TEST(Grid5000, EightyEightMachinesInSixClusters) {
  const Grid g = grid5000_testbed();
  EXPECT_EQ(g.cluster_count(), 6u);
  EXPECT_EQ(g.total_nodes(), 88u);
  const auto sizes = grid5000_sizes();
  const std::vector<std::uint32_t> expected{31, 29, 6, 1, 1, 20};
  EXPECT_EQ(sizes, expected);
  for (ClusterId c = 0; c < 6; ++c)
    EXPECT_EQ(g.cluster(c).size(), expected[c]);
}

TEST(Grid5000, LatencyMatrixMatchesTable3) {
  const auto m = grid5000_latency_matrix();
  ASSERT_EQ(m.size(), 6u);
  EXPECT_NEAR(m(0, 0), us(47.56), 1e-12);
  EXPECT_NEAR(m(0, 1), us(62.10), 1e-12);
  EXPECT_NEAR(m(0, 2), us(12181.52), 1e-12);
  EXPECT_NEAR(m(0, 5), us(5210.99), 1e-12);
  EXPECT_NEAR(m(3, 4), us(242.47), 1e-12);
  EXPECT_NEAR(m(5, 5), us(27.53), 1e-12);
  EXPECT_DOUBLE_EQ(m(3, 3), 0.0);  // singleton: no intra latency
}

TEST(Grid5000, MatrixIsSymmetric) {
  const auto m = grid5000_latency_matrix();
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_DOUBLE_EQ(m(i, j), m(j, i));
}

TEST(Grid5000, LinkLatenciesComeFromTheTable) {
  const Grid g = grid5000_testbed();
  const auto m = grid5000_latency_matrix();
  for (ClusterId i = 0; i < 6; ++i)
    for (ClusterId j = 0; j < 6; ++j)
      if (i != j) {
        EXPECT_DOUBLE_EQ(g.link(i, j).L, m(i, j));
      }
}

TEST(Grid5000, WanLinksAreSlowerThanLanLinks) {
  const Grid g = grid5000_testbed();
  // Orsay <-> IDPOT (12 ms) must be slower than Orsay-A <-> Orsay-B LAN.
  EXPECT_GT(g.link(0, 2).g(MiB(1)), g.link(0, 1).g(MiB(1)));
  // and slower than the Toulouse links (5.2 ms class).
  EXPECT_GT(g.link(0, 2).g(MiB(1)), g.link(0, 5).g(MiB(1)));
}

TEST(Grid5000, ValidatesAsComplete) {
  EXPECT_NO_THROW(grid5000_testbed().validate());
}

TEST(Grid5000, InstanceDerivation) {
  const Grid g = grid5000_testbed();
  const auto inst = sched::Instance::from_grid(g, 0, MiB(1));
  EXPECT_EQ(inst.clusters(), 6u);
  // Singletons have no internal broadcast.
  EXPECT_DOUBLE_EQ(inst.T(3), 0.0);
  EXPECT_DOUBLE_EQ(inst.T(4), 0.0);
  // The 31-machine cluster broadcasts longer than the 6-machine one.
  EXPECT_GT(inst.T(0), inst.T(2));
  // Transfer cost to IDPOT exceeds the local Orsay hop.
  EXPECT_GT(inst.transfer(0, 2), inst.transfer(0, 1));
}

TEST(Grid5000, SectionSevenMagnitudes) {
  // The paper reports < 3 s for a 4 MB ECEF broadcast and roughly 6x more
  // for Flat Tree; our calibration must land in that regime (shape, not
  // exact seconds - see DESIGN.md).
  const Grid g = grid5000_testbed();
  const auto inst = sched::Instance::from_grid(g, 0, MiB(4));
  EXPECT_LT(inst.lower_bound(), 3.5);
}

}  // namespace
}  // namespace gridcast::topology
