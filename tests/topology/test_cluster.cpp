#include "topology/cluster.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace gridcast::topology {
namespace {

TEST(Cluster, BasicProperties) {
  const Cluster c("orsay", 31, plogp::Params::latency_bandwidth(us(50), 1e8));
  EXPECT_EQ(c.name(), "orsay");
  EXPECT_EQ(c.size(), 31u);
  EXPECT_EQ(c.algorithm(), plogp::BcastAlgorithm::kBinomial);
}

TEST(Cluster, ZeroSizeThrows) {
  EXPECT_THROW(
      Cluster("x", 0, plogp::Params::latency_bandwidth(us(50), 1e8)),
      LogicError);
}

TEST(Cluster, SingletonBroadcastIsFree) {
  const Cluster c("solo", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  EXPECT_DOUBLE_EQ(c.internal_bcast_time(MiB(4)), 0.0);
}

TEST(Cluster, InternalTimeMatchesPredictor) {
  const auto p = plogp::Params::latency_bandwidth(us(50), 1e8);
  const Cluster c("c", 20, p);
  EXPECT_DOUBLE_EQ(c.internal_bcast_time(MiB(1)),
                   plogp::predict_binomial_bcast(p, 20, MiB(1)));
}

TEST(Cluster, AlgorithmSwitchChangesTime) {
  const auto p = plogp::Params::latency_bandwidth(us(50), 1e8);
  Cluster c("c", 24, p);
  const Time binomial = c.internal_bcast_time(MiB(1));
  c.set_algorithm(plogp::BcastAlgorithm::kFlat);
  const Time flat = c.internal_bcast_time(MiB(1));
  EXPECT_EQ(c.algorithm(), plogp::BcastAlgorithm::kFlat);
  EXPECT_GT(flat, binomial);  // flat loses for 24 nodes
}

TEST(Cluster, TimeGrowsWithMessage) {
  const Cluster c("c", 16, plogp::Params::latency_bandwidth(us(50), 1e8));
  EXPECT_LT(c.internal_bcast_time(KiB(64)), c.internal_bcast_time(MiB(4)));
}

}  // namespace
}  // namespace gridcast::topology
