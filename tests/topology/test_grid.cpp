#include "topology/grid.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace gridcast::topology {
namespace {

Grid make_two_cluster_grid() {
  std::vector<Cluster> cs;
  cs.emplace_back("a", 3, plogp::Params::latency_bandwidth(us(50), 1e8));
  cs.emplace_back("b", 2, plogp::Params::latency_bandwidth(us(60), 1e8));
  Grid g(std::move(cs));
  g.set_link_symmetric(0, 1, plogp::Params::latency_bandwidth(ms(10), 2e6));
  return g;
}

TEST(Grid, CountsNodesAndClusters) {
  const Grid g = make_two_cluster_grid();
  EXPECT_EQ(g.cluster_count(), 2u);
  EXPECT_EQ(g.total_nodes(), 5u);
}

TEST(Grid, EmptyGridThrows) {
  EXPECT_THROW(Grid(std::vector<Cluster>{}), LogicError);
}

TEST(Grid, GlobalRankContiguousByCluster) {
  const Grid g = make_two_cluster_grid();
  EXPECT_EQ(g.global_rank(0, 0), 0u);
  EXPECT_EQ(g.global_rank(0, 2), 2u);
  EXPECT_EQ(g.global_rank(1, 0), 3u);
  EXPECT_EQ(g.global_rank(1, 1), 4u);
}

TEST(Grid, LocateIsInverseOfGlobalRank) {
  const Grid g = make_two_cluster_grid();
  for (NodeId r = 0; r < g.total_nodes(); ++r) {
    const auto [c, l] = g.locate(r);
    EXPECT_EQ(g.global_rank(c, l), r);
  }
}

TEST(Grid, LocateOutOfRangeThrows) {
  const Grid g = make_two_cluster_grid();
  EXPECT_THROW((void)g.locate(5), LogicError);
}

TEST(Grid, GlobalRankBoundsChecked) {
  const Grid g = make_two_cluster_grid();
  EXPECT_THROW((void)g.global_rank(0, 3), LogicError);
  EXPECT_THROW((void)g.global_rank(2, 0), LogicError);
}

TEST(Grid, LinkRoundTrips) {
  const Grid g = make_two_cluster_grid();
  EXPECT_DOUBLE_EQ(g.link(0, 1).L, ms(10));
  EXPECT_DOUBLE_EQ(g.link(1, 0).L, ms(10));
}

TEST(Grid, AsymmetricLinksSupported) {
  std::vector<Cluster> cs;
  cs.emplace_back("a", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  cs.emplace_back("b", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  Grid g(std::move(cs));
  g.set_link(0, 1, plogp::Params::latency_bandwidth(ms(5), 2e6));
  g.set_link(1, 0, plogp::Params::latency_bandwidth(ms(9), 2e6));
  EXPECT_DOUBLE_EQ(g.link(0, 1).L, ms(5));
  EXPECT_DOUBLE_EQ(g.link(1, 0).L, ms(9));
}

TEST(Grid, SelfLinkRejected) {
  Grid g = make_two_cluster_grid();
  EXPECT_THROW(
      g.set_link(0, 0, plogp::Params::latency_bandwidth(ms(1), 1e6)),
      LogicError);
  EXPECT_THROW((void)g.link(1, 1), LogicError);
}

TEST(Grid, UnsetLinkAccessThrows) {
  std::vector<Cluster> cs;
  cs.emplace_back("a", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  cs.emplace_back("b", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  const Grid g(std::move(cs));
  EXPECT_THROW((void)g.link(0, 1), LogicError);
}

TEST(Grid, ValidateFlagsMissingLinks) {
  std::vector<Cluster> cs;
  cs.emplace_back("a", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  cs.emplace_back("b", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  cs.emplace_back("c", 1, plogp::Params::latency_bandwidth(us(50), 1e8));
  Grid g(std::move(cs));
  g.set_link_symmetric(0, 1, plogp::Params::latency_bandwidth(ms(1), 1e7));
  EXPECT_THROW(g.validate(), LogicError);
  g.set_link_symmetric(0, 2, plogp::Params::latency_bandwidth(ms(1), 1e7));
  g.set_link_symmetric(1, 2, plogp::Params::latency_bandwidth(ms(1), 1e7));
  EXPECT_NO_THROW(g.validate());
}

TEST(Grid, DotExportMentionsClusters) {
  const Grid g = make_two_cluster_grid();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("graph grid"), std::string::npos);
  EXPECT_NE(dot.find("a\\n3 nodes"), std::string::npos);
  EXPECT_NE(dot.find("c0 -- c1"), std::string::npos);
}

}  // namespace
}  // namespace gridcast::topology
