#include "io/grid_io.hpp"

#include <gtest/gtest.h>

#include "sched/instance.hpp"
#include "topology/generator.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::io {
namespace {

TEST(GridIo, RoundTripsTheTestbed) {
  const topology::Grid a = topology::grid5000_testbed();
  const topology::Grid b = grid_from_string(grid_to_string(a));
  ASSERT_EQ(b.cluster_count(), a.cluster_count());
  EXPECT_EQ(b.total_nodes(), a.total_nodes());
  for (ClusterId c = 0; c < a.cluster_count(); ++c) {
    EXPECT_EQ(b.cluster(c).name(), a.cluster(c).name());
    EXPECT_EQ(b.cluster(c).size(), a.cluster(c).size());
    EXPECT_EQ(b.cluster(c).algorithm(), a.cluster(c).algorithm());
    EXPECT_DOUBLE_EQ(b.cluster(c).intra().L, a.cluster(c).intra().L);
  }
  for (ClusterId i = 0; i < a.cluster_count(); ++i)
    for (ClusterId j = 0; j < a.cluster_count(); ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(b.link(i, j).L, a.link(i, j).L);
      EXPECT_DOUBLE_EQ(b.link(i, j).g(MiB(1)), a.link(i, j).g(MiB(1)));
    }
}

TEST(GridIo, RoundTripPreservesDerivedInstances) {
  // The acid test: a persisted grid poses byte-identical scheduling
  // problems after reload.
  const topology::Grid a = topology::grid5000_testbed();
  const topology::Grid b = grid_from_string(grid_to_string(a));
  const auto ia = sched::Instance::from_grid(a, 0, MiB(2));
  const auto ib = sched::Instance::from_grid(b, 0, MiB(2));
  for (ClusterId i = 0; i < ia.clusters(); ++i) {
    EXPECT_DOUBLE_EQ(ib.T(i), ia.T(i));
    for (ClusterId j = 0; j < ia.clusters(); ++j)
      if (i != j) {
        EXPECT_DOUBLE_EQ(ib.transfer(i, j), ia.transfer(i, j));
      }
  }
}

TEST(GridIo, RoundTripsRandomGrids) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    Rng rng(seed);
    topology::GeneratorConfig cfg;
    cfg.clusters = 5;
    const topology::Grid a = topology::random_grid(cfg, rng);
    const topology::Grid b = grid_from_string(grid_to_string(a));
    EXPECT_EQ(b.total_nodes(), a.total_nodes());
    EXPECT_DOUBLE_EQ(b.link(0, 4).g(KiB(512)), a.link(0, 4).g(KiB(512)));
  }
}

TEST(GridIo, AlgorithmSurvivesRoundTrip) {
  topology::Grid a = topology::grid5000_testbed();
  a.cluster(5).set_algorithm(plogp::BcastAlgorithm::kSegmentedChain);
  const topology::Grid b = grid_from_string(grid_to_string(a));
  EXPECT_EQ(b.cluster(5).algorithm(),
            plogp::BcastAlgorithm::kSegmentedChain);
}

TEST(GridIo, CommentsAllowed) {
  std::string text = grid_to_string(topology::grid5000_testbed());
  text.insert(text.find("cluster "), "# hello\n");
  EXPECT_NO_THROW((void)grid_from_string(text));
}

TEST(GridIo, BadMagicRejected) {
  EXPECT_THROW((void)grid_from_string("nope v1"), InvalidInput);
}

TEST(GridIo, TruncationRejected) {
  std::string text = grid_to_string(topology::grid5000_testbed());
  text.resize(text.size() * 2 / 3);
  EXPECT_THROW((void)grid_from_string(text), InvalidInput);
}

TEST(GridIo, MissingLinkRejected) {
  // Remove one link line: validate() inside read_grid must flag it.
  std::string text = grid_to_string(topology::grid5000_testbed());
  const auto pos = text.find("link 5 4");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = text.find('\n', pos);
  text.erase(pos, eol - pos + 1);
  EXPECT_THROW((void)grid_from_string(text), InvalidInput);
}

TEST(GridIo, UnknownAlgorithmRejected) {
  std::string text = grid_to_string(topology::grid5000_testbed());
  const auto pos = text.find("binomial");
  text.replace(pos, 8, "mystical");
  EXPECT_THROW((void)grid_from_string(text), InvalidInput);
}

TEST(GridIo, ZeroSizeClusterRejected) {
  std::string text = grid_to_string(topology::grid5000_testbed());
  const auto pos = text.find(" 31 ");
  text.replace(pos, 4, " 0 ");
  EXPECT_THROW((void)grid_from_string(text), InvalidInput);
}

}  // namespace
}  // namespace gridcast::io
