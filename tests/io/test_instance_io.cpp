#include "io/instance_io.hpp"

#include <gtest/gtest.h>

#include "exp/param_ranges.hpp"
#include "support/rng.hpp"

namespace gridcast::io {
namespace {

sched::Instance sample(std::size_t n, std::uint64_t seed = 3) {
  Rng rng = Rng::stream(seed, 0);
  return exp::sample_instance(exp::ParamRanges::paper(), n, rng);
}

TEST(InstanceIo, RoundTripPreservesEverything) {
  const sched::Instance a = sample(7);
  const sched::Instance b = instance_from_string(instance_to_string(a));
  ASSERT_EQ(b.clusters(), a.clusters());
  EXPECT_EQ(b.root(), a.root());
  for (ClusterId i = 0; i < a.clusters(); ++i) {
    EXPECT_DOUBLE_EQ(b.T(i), a.T(i));
    for (ClusterId j = 0; j < a.clusters(); ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(b.g(i, j), a.g(i, j));
      EXPECT_DOUBLE_EQ(b.L(i, j), a.L(i, j));
    }
  }
}

TEST(InstanceIo, HeaderIsHumanReadable) {
  const std::string text = instance_to_string(sample(3));
  EXPECT_EQ(text.rfind("gridcast-instance v1", 0), 0u);
  EXPECT_NE(text.find("clusters 3 root 0"), std::string::npos);
}

TEST(InstanceIo, CommentsAreSkipped) {
  std::string text = instance_to_string(sample(2));
  text.insert(text.find("T"), "# a comment line\n");
  EXPECT_NO_THROW((void)instance_from_string(text));
}

TEST(InstanceIo, BadMagicRejected) {
  EXPECT_THROW((void)instance_from_string("bogus v1"), InvalidInput);
}

TEST(InstanceIo, TruncatedInputRejected) {
  std::string text = instance_to_string(sample(4));
  text.resize(text.size() / 2);
  EXPECT_THROW((void)instance_from_string(text), InvalidInput);
}

TEST(InstanceIo, NonNumericFieldRejected) {
  std::string text = instance_to_string(sample(2));
  const auto pos = text.find("T ") + 2;
  text.replace(pos, 1, "x");
  EXPECT_THROW((void)instance_from_string(text), InvalidInput);
}

TEST(InstanceIo, RootOutOfRangeRejected) {
  EXPECT_THROW((void)instance_from_string(
                   "gridcast-instance v1 clusters 2 root 5 T 0 0 "
                   "g 0 0 0 0 L 0 0 0 0"),
               InvalidInput);
}

TEST(InstanceIo, ZeroClustersRejected) {
  EXPECT_THROW(
      (void)instance_from_string("gridcast-instance v1 clusters 0 root 0"),
      InvalidInput);
}

TEST(InstanceIo, NegativeValuesRejectedAsInvalidInput) {
  // -1 gap violates the Instance invariants; io must surface it as
  // InvalidInput (bad file), not LogicError (bug).
  EXPECT_THROW((void)instance_from_string(
                   "gridcast-instance v1 clusters 2 root 0 T 0 0 "
                   "g 0 -1 0 0 L 0 0 0 0"),
               InvalidInput);
}

TEST(InstanceIo, FractionalClusterCountRejected) {
  EXPECT_THROW(
      (void)instance_from_string("gridcast-instance v1 clusters 2.5 root 0"),
      InvalidInput);
}

}  // namespace
}  // namespace gridcast::io
