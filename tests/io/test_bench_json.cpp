#include "io/bench_json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace gridcast::io {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

BenchSeries make_series(std::string name, double wall,
                        std::vector<double> makespans) {
  BenchSeries s;
  s.name = std::move(name);
  s.wall_time_s = wall;
  s.makespan_s = std::move(makespans);
  return s;
}

BenchReport small_report() {
  BenchReport r;
  r.bench = "race";
  r.grid = "grid5000_testbed";
  r.mode = "predicted";
  r.root = 0;
  r.sizes = {262144, 524288};
  r.series.push_back(make_series("FlatTree", 0.125, {0.875, 1.75}));
  r.series.push_back(make_series("ECEF-LAT", kNaN, {0.25, 0.5}));
  return r;
}

TEST(JsonEscape, PassesPlainNamesThrough) {
  EXPECT_EQ(json_escape("ECEF-LAT"), "ECEF-LAT");
  EXPECT_EQ(json_escape("weight=gap+latency"), "weight=gap+latency");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(BenchJson, QuoteInSchedulerNameSurvivesRoundTrip) {
  // The original writer emitted names raw, so a registered name with a
  // quote or backslash corrupted BENCH_sweep.json.
  BenchReport r = small_report();
  r.series[0].name = "evil\"name\\with\ncontrols";
  const BenchReport back = bench_from_json(bench_to_json(r));
  EXPECT_EQ(back.series[0].name, "evil\"name\\with\ncontrols");
}

TEST(BenchJson, RoundTripIsByteIdentical) {
  const BenchReport r = small_report();
  const std::string once = bench_to_json(r);
  const std::string twice = bench_to_json(bench_from_json(once));
  EXPECT_EQ(once, twice);
}

TEST(BenchJson, RoundTripPreservesValuesAndNaN) {
  BenchReport r = small_report();
  r.mode = "measured";
  r.seed = 1234567890123456789ULL;
  r.jitter = 0.05;
  r.shards = 4;
  r.shard = 2;
  r.series[0].makespan_s[1] = kNaN;  // foreign shard's cell
  const BenchReport back = bench_from_json(bench_to_json(r));
  EXPECT_EQ(back.mode, "measured");
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_DOUBLE_EQ(back.jitter, 0.05);
  EXPECT_EQ(back.shards, 4u);
  EXPECT_EQ(back.shard, 2u);
  ASSERT_EQ(back.series.size(), 2u);
  EXPECT_DOUBLE_EQ(back.series[0].wall_time_s, 0.125);
  EXPECT_TRUE(std::isnan(back.series[1].wall_time_s));
  EXPECT_DOUBLE_EQ(back.series[0].makespan_s[0], 0.875);
  EXPECT_TRUE(std::isnan(back.series[0].makespan_s[1]));
}

TEST(BenchJson, SeventeenDigitDoublesRoundTripExactly) {
  BenchReport r = small_report();
  r.series[0].makespan_s = {0.1 + 0.2, 13.875781257818181};
  r.series[1].makespan_s = {1.0 / 3.0, 4e-320};
  const BenchReport back = bench_from_json(bench_to_json(r));
  EXPECT_EQ(back.series[0].makespan_s[0], 0.1 + 0.2);
  EXPECT_EQ(back.series[0].makespan_s[1], 13.875781257818181);
  EXPECT_EQ(back.series[1].makespan_s[0], 1.0 / 3.0);
  EXPECT_EQ(back.series[1].makespan_s[1], 4e-320);
}

TEST(BenchJson, StrictParserRejectsMalformedInput) {
  EXPECT_THROW((void)bench_from_json("{"), InvalidInput);
  EXPECT_THROW((void)bench_from_json("[]{}"), InvalidInput);
  EXPECT_THROW((void)bench_from_json("{\"bench\": \"x\"}"), InvalidInput);
  EXPECT_THROW((void)bench_from_json(
                   "{\"sizes\": [1], \"series\": [], \"nope\": 1}"),
               InvalidInput);
  // Series cell count must match the size axis.
  EXPECT_THROW(
      (void)bench_from_json(
          "{\"sizes\": [1, 2], "
          "\"series\": [{\"name\": \"A\", \"makespan_s\": [0.5]}]}"),
      InvalidInput);
  // Shard index out of range.
  EXPECT_THROW((void)bench_from_json(
                   "{\"shards\": 2, \"shard\": 2, \"sizes\": [], "
                   "\"series\": []}"),
               InvalidInput);
}

TEST(BenchJson, VerbKeySerialisesOnlyWhenNotBcast) {
  BenchReport r = small_report();
  EXPECT_EQ(r.verb, "bcast");  // the default
  EXPECT_EQ(bench_to_json(r).find("\"verb\""), std::string::npos);

  r.verb = "scatter";
  const std::string text = bench_to_json(r);
  EXPECT_NE(text.find("\"verb\": \"scatter\""), std::string::npos);
  const BenchReport parsed = bench_from_json(text);
  EXPECT_EQ(parsed.verb, "scatter");
  EXPECT_EQ(bench_to_json(parsed), text);

  // The parser canonicalises through the shared vocabulary and rejects
  // verbs outside it.
  EXPECT_THROW((void)bench_from_json(
                   "{\"verb\": \"gather\", \"sizes\": [1], \"series\": "
                   "[{\"name\": \"A\", \"makespan_s\": [0.5]}]}"),
               InvalidInput);
}

TEST(BenchCompare, VerbMismatchIsASingleProblem) {
  const BenchReport base = small_report();
  BenchReport cur = small_report();
  cur.verb = "alltoall";
  cur.series[0].makespan_s[0] *= 3.0;  // masked: the verb gates first
  const auto problems = compare_bench(base, cur);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_EQ(problems[0],
            "verb mismatch: baseline 'bcast' vs current 'alltoall'");
}

TEST(BenchCompare, IdenticalReportsPass) {
  const BenchReport r = small_report();
  EXPECT_TRUE(compare_bench(r, r).empty());
}

TEST(BenchCompare, MissingSeriesFails) {
  const BenchReport base = small_report();
  BenchReport cur = base;
  cur.series.pop_back();
  const auto problems = compare_bench(base, cur);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("missing series 'ECEF-LAT'"), std::string::npos);
}

TEST(BenchCompare, ExtraSeriesFails) {
  const BenchReport base = small_report();
  BenchReport cur = base;
  cur.series.push_back(make_series("Newcomer", kNaN, {1.0, 2.0}));
  const auto problems = compare_bench(base, cur);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("extra series 'Newcomer'"), std::string::npos);
}

TEST(BenchCompare, MakespanDriftBeyondToleranceFails) {
  const BenchReport base = small_report();
  BenchReport cur = base;
  BenchCompareOptions opts;
  opts.makespan_rtol = 1e-6;
  // Inside the tolerance band: passes.
  cur.series[0].makespan_s[0] = 0.875 * (1 + 5e-7);
  EXPECT_TRUE(compare_bench(base, cur, opts).empty());
  // Just beyond: fails.
  cur.series[0].makespan_s[0] = 0.875 * (1 + 3e-6);
  const auto problems = compare_bench(base, cur, opts);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("makespan drift"), std::string::npos);
}

TEST(BenchCompare, NanCurrentCellFails) {
  const BenchReport base = small_report();
  BenchReport cur = base;
  cur.series[1].makespan_s[1] = kNaN;  // uncomputed cell
  EXPECT_EQ(compare_bench(base, cur).size(), 1u);
}

TEST(BenchCompare, NanBaselineCellIsSkipped) {
  BenchReport base = small_report();
  base.series[1].makespan_s[1] = kNaN;  // baseline never measured it
  BenchReport cur = small_report();
  cur.series[1].makespan_s[1] = 123.0;
  EXPECT_TRUE(compare_bench(base, cur).empty());
}

TEST(BenchCompare, WallTimeRegressionFails) {
  const BenchReport base = small_report();  // FlatTree wall 0.125
  BenchReport cur = base;
  BenchCompareOptions opts;
  opts.wall_factor = 10.0;
  cur.series[0].wall_time_s = 1.25;  // exactly the limit: passes
  EXPECT_TRUE(compare_bench(base, cur, opts).empty());
  cur.series[0].wall_time_s = 1.26;
  const auto problems = compare_bench(base, cur, opts);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("wall_time_s regression"), std::string::npos);
  // Wall time present in the baseline but absent in the run also fails.
  cur.series[0].wall_time_s = kNaN;
  EXPECT_EQ(compare_bench(base, cur, opts).size(), 1u);
}

TEST(BenchCompare, MetadataMismatchFails) {
  const BenchReport base = small_report();
  BenchReport cur = base;
  cur.mode = "measured";
  EXPECT_FALSE(compare_bench(base, cur).empty());

  // Measured reports under different seeds/jitter are one metadata
  // problem (same rule the shard merger enforces), not a drift cascade.
  BenchReport mbase = base;
  mbase.mode = "measured";
  mbase.seed = 1;
  BenchReport mcur = mbase;
  mcur.seed = 2;
  for (auto& s : mcur.series)
    for (auto& v : s.makespan_s) v *= 2.0;  // would drift every cell
  const auto seed_problems = compare_bench(mbase, mcur);
  ASSERT_EQ(seed_problems.size(), 1u);
  EXPECT_NE(seed_problems[0].find("seed/jitter mismatch"), std::string::npos);

  cur = base;
  cur.sizes.push_back(786432);
  for (auto& s : cur.series) s.makespan_s.push_back(1.0);
  const auto problems = compare_bench(base, cur);
  ASSERT_EQ(problems.size(), 1u);  // ladder mismatch short-circuits
  EXPECT_NE(problems[0].find("size ladder mismatch"), std::string::npos);
}

// ---- The "micro" kind: simulator throughput lane (events/sec, sends/sec)
// with a lower-bound gate instead of the exact-drift rules above.

BenchReport micro_report() {
  BenchReport r;
  r.bench = "micro";
  r.grid = "grid5000_testbed";
  r.mode = "measured";
  r.seed = 1;
  r.jitter = 0.0;
  r.sizes = {1000, 100000};
  BenchSeries engine;
  engine.name = "engine_events";
  engine.throughput = {4.2e7, 3.9e7};
  BenchSeries sends;
  sends.name = "network_sends";
  sends.throughput = {9.5e7, 1.05e8};
  r.series = {engine, sends};
  return r;
}

TEST(BenchJsonMicro, RoundTripIsByteIdentical) {
  const BenchReport r = micro_report();
  const std::string once = bench_to_json(r);
  const std::string twice = bench_to_json(bench_from_json(once));
  EXPECT_EQ(once, twice);
  const BenchReport back = bench_from_json(once);
  EXPECT_TRUE(back.is_micro());
  ASSERT_EQ(back.series.size(), 2u);
  EXPECT_EQ(back.series[0].throughput, r.series[0].throughput);
}

TEST(BenchJsonMicro, ThroughputMustCoverTheAxis) {
  // The writer's grammar contract refuses to serialise this shape on
  // DCHECK lanes, so tamper with valid bytes instead: drop the last cell
  // of the first series' throughput array and probe the parser wall.
  std::string json = bench_to_json(micro_report());
  const std::size_t open = json.find("\"throughput\": [");
  ASSERT_NE(open, std::string::npos);
  const std::size_t close = json.find(']', open);
  const std::size_t comma = json.rfind(',', close);
  ASSERT_NE(comma, std::string::npos);
  ASSERT_GT(comma, open);  // the comma between the two throughput cells
  json.erase(comma, close - comma);
  EXPECT_THROW((void)bench_from_json(json), InvalidInput);
}

TEST(BenchJsonMicro, ThroughputIsMicroOnly) {
  // A race report smuggling a throughput array is rejected.
  EXPECT_THROW(
      (void)bench_from_json(
          "{\"sizes\": [1], \"series\": [{\"name\": \"A\", "
          "\"makespan_s\": [0.5], \"throughput\": [1.0]}]}"),
      InvalidInput);
}

TEST(BenchJsonMicro, RefusesVerbAndShardAxes) {
  // Micro reports measure the simulator, not a collective: the sweep-only
  // axes cannot apply and the parser refuses them outright.
  EXPECT_THROW((void)bench_from_json(
                   "{\"bench\": \"micro\", \"verb\": \"scatter\", "
                   "\"sizes\": [1], \"series\": [{\"name\": \"A\", "
                   "\"throughput\": [1.0]}]}"),
               InvalidInput);
  EXPECT_THROW((void)bench_from_json(
                   "{\"bench\": \"micro\", \"shards\": 2, \"shard\": 0, "
                   "\"sizes\": [1], \"series\": [{\"name\": \"A\", "
                   "\"throughput\": [1.0]}]}"),
               InvalidInput);
}

TEST(BenchCompareMicro, IdenticalReportsPass) {
  const BenchReport r = micro_report();
  EXPECT_TRUE(compare_bench(r, r).empty());
}

TEST(BenchCompareMicro, LowerBoundGateIsOneSided) {
  const BenchReport base = micro_report();
  BenchReport cur = micro_report();
  BenchCompareOptions opts;
  opts.throughput_factor = 10.0;

  // Faster than the baseline: always fine (higher is better).
  cur.series[0].throughput[0] = base.series[0].throughput[0] * 100.0;
  EXPECT_TRUE(compare_bench(base, cur, opts).empty());

  // Slower but above the floor: fine (CI machines are noisy).
  cur = micro_report();
  cur.series[0].throughput[0] = base.series[0].throughput[0] / 9.0;
  EXPECT_TRUE(compare_bench(base, cur, opts).empty());

  // Below baseline / factor: regression.
  cur = micro_report();
  cur.series[0].throughput[0] = base.series[0].throughput[0] / 11.0;
  const auto problems = compare_bench(base, cur, opts);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("throughput regression"), std::string::npos);
}

TEST(BenchCompareMicro, NanCurrentThroughputFails) {
  const BenchReport base = micro_report();
  BenchReport cur = micro_report();
  cur.series[1].throughput[0] = kNaN;
  EXPECT_EQ(compare_bench(base, cur).size(), 1u);
}

TEST(BenchCompareMicro, MissingThroughputFails) {
  const BenchReport base = micro_report();
  BenchReport cur = micro_report();
  cur.series[1].throughput.clear();
  const auto problems = compare_bench(base, cur);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("missing throughput"), std::string::npos);
}

TEST(BenchCompareMicro, KindMismatchShortCircuits) {
  const BenchReport base = micro_report();
  const BenchReport cur = small_report();
  const auto problems = compare_bench(base, cur);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("bench kind mismatch"), std::string::npos);
}

// ---- The "serve" kind: serving-layer replay reports with a one-point
// request-count axis under the JSON key "requests".

BenchReport serve_report() {
  BenchReport r;
  r.bench = "serve";
  r.grid = "grid5000_testbed";
  r.mode = "predicted";
  r.sizes = {240};  // the axis is the replayed request count
  r.series.push_back(make_series("hit_rate", kNaN, {0.8125}));
  r.series.push_back(make_series("hits", kNaN, {195.0}));
  r.series.push_back(make_series("predicted_sum_s", kNaN, {46390.152}));
  BenchSeries rps;
  rps.name = "requests_per_s";
  rps.throughput = {69989.0};
  r.series.push_back(std::move(rps));
  BenchSeries p99 = make_series("latency_p99_s", 0.00184, {kNaN});
  r.series.push_back(std::move(p99));
  return r;
}

TEST(BenchJsonServe, RoundTripUsesTheRequestsKey) {
  const BenchReport r = serve_report();
  const std::string once = bench_to_json(r);
  EXPECT_NE(once.find("\"requests\": [240]"), std::string::npos) << once;
  EXPECT_EQ(once.find("\"sizes\""), std::string::npos) << once;
  EXPECT_EQ(bench_to_json(bench_from_json(once)), once);
  const BenchReport back = bench_from_json(once);
  EXPECT_TRUE(back.is_serve());
  ASSERT_EQ(back.sizes.size(), 1u);
  EXPECT_EQ(back.sizes[0], 240u);
}

TEST(BenchJsonServe, AxisKeyMustMatchTheKind) {
  // A serve report under "sizes" — or a race report under "requests" —
  // is a kind/axis mismatch, same rule as montecarlo's "clusters".
  EXPECT_THROW((void)bench_from_json(
                   "{\"bench\": \"serve\", \"sizes\": [240], \"series\": "
                   "[{\"name\": \"hits\", \"makespan_s\": [195.0]}]}"),
               InvalidInput);
  EXPECT_THROW((void)bench_from_json(
                   "{\"requests\": [240], \"series\": "
                   "[{\"name\": \"hits\", \"makespan_s\": [195.0]}]}"),
               InvalidInput);
}

TEST(BenchJsonServe, RefusesVerbAndShardAxes) {
  // A replayed log mixes verbs and roots per request; neither a verb key
  // nor shard coordinates can describe a serve report.
  EXPECT_THROW((void)bench_from_json(
                   "{\"bench\": \"serve\", \"verb\": \"scatter\", "
                   "\"requests\": [240], \"series\": [{\"name\": \"hits\", "
                   "\"makespan_s\": [195.0]}]}"),
               InvalidInput);
  EXPECT_THROW((void)bench_from_json(
                   "{\"bench\": \"serve\", \"shards\": 2, \"shard\": 0, "
                   "\"requests\": [240], \"series\": [{\"name\": \"hits\", "
                   "\"makespan_s\": [195.0]}]}"),
               InvalidInput);
}

TEST(BenchJsonServe, SeriesNeedAValueChannelCoveringTheAxis) {
  // Either makespan_s (deterministic cells) or throughput (the timing
  // lane) must cover the one-point axis; a bare name is rejected.
  EXPECT_THROW((void)bench_from_json(
                   "{\"bench\": \"serve\", \"requests\": [240], "
                   "\"series\": [{\"name\": \"hits\"}]}"),
               InvalidInput);
  EXPECT_THROW((void)bench_from_json(
                   "{\"bench\": \"serve\", \"requests\": [240], \"series\": "
                   "[{\"name\": \"hits\", \"makespan_s\": [1.0, 2.0]}]}"),
               InvalidInput);
  // Monte-Carlo hit arrays have no meaning here either.
  EXPECT_THROW((void)bench_from_json(
                   "{\"bench\": \"serve\", \"requests\": [240], \"series\": "
                   "[{\"name\": \"hits\", \"makespan_s\": [195.0], "
                   "\"hits\": [1.0]}]}"),
               InvalidInput);
}

TEST(BenchCompareServe, IdenticalReportsPass) {
  const BenchReport r = serve_report();
  EXPECT_TRUE(compare_bench(r, r).empty());
}

TEST(BenchCompareServe, RequestCountMismatchIsRefused) {
  const BenchReport base = serve_report();
  BenchReport cur = serve_report();
  cur.sizes = {241};
  const auto problems = compare_bench(base, cur);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("request-count"), std::string::npos)
      << problems[0];
}

TEST(BenchCompareServe, GatesApplyPerChannel) {
  const BenchReport base = serve_report();

  // Deterministic cells gate exactly (hit-rate drift is a regression)...
  BenchReport cur = serve_report();
  cur.series[0].makespan_s[0] = 0.5;
  EXPECT_FALSE(compare_bench(base, cur).empty());

  // ...throughput gates as a lower bound (faster is fine, floor is not)...
  cur = serve_report();
  cur.series[3].throughput[0] = base.series[3].throughput[0] * 100.0;
  EXPECT_TRUE(compare_bench(base, cur).empty());
  cur.series[3].throughput[0] = base.series[3].throughput[0] / 11.0;
  EXPECT_FALSE(compare_bench(base, cur).empty());

  // ...and latency gates through wall_time_s as an upper bound: the NaN
  // value cell is skipped, the wall regression still fires.
  cur = serve_report();
  cur.series[4].wall_time_s = base.series[4].wall_time_s * 100.0;
  const auto problems = compare_bench(base, cur);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("wall_time_s regression"), std::string::npos)
      << problems[0];
}

}  // namespace
}  // namespace gridcast::io
