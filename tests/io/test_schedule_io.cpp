#include "io/schedule_io.hpp"

#include <gtest/gtest.h>

namespace gridcast::io {
namespace {

sched::Schedule sample_schedule() {
  sched::Schedule s;
  s.root = 0;
  s.transfers = {{0, 1, 0.0, 0.5}, {1, 2, 0.5, 1.25}};
  s.cluster_finish = {0.25, 1.0, 2.0};
  s.makespan = 2.0;
  return s;
}

TEST(ScheduleIo, CsvHasHeaderAndAllRecords) {
  const std::string csv = schedule_to_csv(sample_schedule());
  EXPECT_NE(csv.find("record,"), std::string::npos);
  EXPECT_NE(csv.find("transfer0,0,1,0,0.5"), std::string::npos);
  EXPECT_NE(csv.find("transfer1,1,2,0.5,1.25"), std::string::npos);
  EXPECT_NE(csv.find("finish,2,,2,"), std::string::npos);
}

TEST(ScheduleIo, CsvRowCount) {
  const std::string csv = schedule_to_csv(sample_schedule());
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1 + 2 + 3);  // header + transfers + finishes
}

TEST(ScheduleIo, JsonShape) {
  const std::string json = schedule_to_json(sample_schedule());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"root\":0"), std::string::npos);
  EXPECT_NE(json.find("\"makespan\":2"), std::string::npos);
  EXPECT_NE(json.find("\"transfers\":["), std::string::npos);
  EXPECT_NE(json.find("\"finish\":[0.25,1,2]"), std::string::npos);
}

TEST(ScheduleIo, JsonTransferFields) {
  const std::string json = schedule_to_json(sample_schedule());
  EXPECT_NE(json.find("{\"sender\":0,\"receiver\":1,\"start\":0,"
                      "\"arrival\":0.5}"),
            std::string::npos);
}

TEST(ScheduleIo, EmptyScheduleStillWellFormed) {
  sched::Schedule s;
  s.root = 0;
  s.cluster_finish = {0.0};
  const std::string json = schedule_to_json(s);
  EXPECT_NE(json.find("\"transfers\":[]"), std::string::npos);
  const std::string csv = schedule_to_csv(s);
  EXPECT_NE(csv.find("finish,0,,0,"), std::string::npos);
}

}  // namespace
}  // namespace gridcast::io
