#include "serve/socket_server.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "topology/grid5000.hpp"

namespace gridcast::serve {
namespace {

const topology::Grid& testbed() {
  static const topology::Grid grid = topology::grid5000_testbed();
  return grid;
}

/// A live daemon on an ephemeral loopback port, torn down on scope exit.
struct TestDaemon {
  explicit TestDaemon(std::function<void()> on_session_start = {})
      : service(testbed(), "g5k") {
    SocketServerOptions opts;
    opts.on_session_start = std::move(on_session_start);
    opts.log = [this](const std::string& line) {
      std::lock_guard lk(mu);
      logs.push_back(line);
    };
    server.emplace(service, std::move(opts));
    server->bind_and_listen();
    runner = std::thread([this] { server->run(); });
  }
  ~TestDaemon() {
    server->stop();
    runner.join();
  }
  TestDaemon(const TestDaemon&) = delete;
  TestDaemon& operator=(const TestDaemon&) = delete;

  [[nodiscard]] std::vector<std::string> log_lines() {
    std::lock_guard lk(mu);
    return logs;
  }

  PlanService service;
  std::optional<SocketServer> server;
  std::thread runner;
  std::mutex mu;
  std::vector<std::string> logs;
};

/// A loopback client with a receive timeout, so a regression hangs a
/// bounded 20 s instead of wedging the suite.
struct Client {
  explicit Client(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    const timeval tv{20, 0};
    EXPECT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv), 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0)
        << std::strerror(errno);
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_all(std::string_view text) const {
    std::size_t off = 0;
    while (off < text.size()) {
      const ssize_t w =
          ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(w, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(w);
    }
  }

  /// Read until `want` newline-terminated lines arrived (or EOF/timeout).
  [[nodiscard]] std::vector<std::string> read_lines(std::size_t want) const {
    std::string buf;
    while (static_cast<std::size_t>(
               std::count(buf.begin(), buf.end(), '\n')) < want) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    std::vector<std::string> lines;
    for (std::size_t nl = buf.find('\n'); nl != std::string::npos;
         nl = buf.find('\n')) {
      lines.push_back(buf.substr(0, nl));
      buf.erase(0, nl + 1);
    }
    if (!buf.empty()) lines.push_back(buf);  // unterminated tail
    return lines;
  }

  /// Read until the server closes the connection.
  [[nodiscard]] std::string read_to_eof() const {
    std::string buf;
    for (;;) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    return buf;
  }

  int fd = -1;
};

void noop_handler(int) {}

/// SIGUSR1 with no SA_RESTART: delivery makes a blocked recv()/send()
/// return EINTR instead of restarting — exactly what SIGINT does to the
/// real daemon, minus the stop flag.
void install_noop_sigusr1() {
  struct sigaction sa{};
  sa.sa_handler = noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, nullptr), 0);
}

TEST(SocketServer, SignalInterruptionDoesNotDropTheSession) {
  // The EINTR pins: a no-op signal lands on the session thread while it
  // is blocked in recv() (and again around the reply write).  The
  // session must survive — before the fix, the read loop treated EINTR
  // as a disconnect.
  install_noop_sigusr1();
  std::mutex mu;
  std::condition_variable cv;
  std::optional<pthread_t> session_tid;
  TestDaemon daemon([&] {
    std::lock_guard lk(mu);
    session_tid = pthread_self();
    cv.notify_all();
  });
  Client client(daemon.server->port());
  {
    std::unique_lock lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(20),
                            [&] { return session_tid.has_value(); }));
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(pthread_kill(*session_tid, SIGUSR1), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  client.send_all("plan bcast 0 1M\n");
  ASSERT_EQ(pthread_kill(*session_tid, SIGUSR1), 0);
  const auto replies = client.read_lines(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].rfind("plan verb=bcast root=0 size=1048576 ", 0), 0u)
      << replies[0];
  // Still alive: the session answers follow-up commands.
  client.send_all("stats\n");
  const auto stats = client.read_lines(1);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].rfind("stats grid=g5k ", 0), 0u) << stats[0];
  client.send_all("quit\n");
  const auto bye = client.read_lines(1);
  ASSERT_EQ(bye.size(), 1u);
  EXPECT_EQ(bye[0], "bye");
}

TEST(SocketServer, ReassemblesSplitAndCoalescedRequests) {
  TestDaemon daemon;
  Client client(daemon.server->port());

  // One request dribbled across four writes: the session must reassemble
  // the line, not treat each segment as a command.
  for (const char* piece : {"pl", "an bca", "st 0 1", "M\n"}) {
    client.send_all(piece);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto replies = client.read_lines(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].rfind("plan verb=bcast root=0 size=1048576 ", 0), 0u);

  // Two distinct requests in one segment: two complete replies.
  client.send_all("plan bcast 0 2M\nplan scatter 1 64K\n");
  replies = client.read_lines(2);
  ASSERT_EQ(replies.size(), 2u);
  for (const auto& r : replies) EXPECT_EQ(r.rfind("plan verb=", 0), 0u) << r;

  // Two *same-signature* requests in one segment: exactly one miss and
  // one hit, both byte-identical up to the cache-status tail (the hit
  // may overtake the miss's reply, so the order is not pinned).
  client.send_all("plan alltoall 2 4M\nplan alltoall 2 4M\n");
  replies = client.read_lines(2);
  ASSERT_EQ(replies.size(), 2u);
  const auto strip_tail = [](const std::string& r) {
    const std::size_t sp = r.rfind(' ');
    return r.substr(0, sp);
  };
  EXPECT_EQ(strip_tail(replies[0]), strip_tail(replies[1]));
  std::multiset<std::string> tails{replies[0].substr(replies[0].rfind(' ')),
                                   replies[1].substr(replies[1].rfind(' '))};
  EXPECT_EQ(tails, (std::multiset<std::string>{" hit", " miss"}));
  client.send_all("quit\n");
  (void)client.read_lines(1);
}

TEST(SocketServer, TrailingUnterminatedLineIsServedAtDisconnect) {
  // Half-close: the client sends a request with no newline and shuts
  // down its write side.  Before the fix the line was silently dropped;
  // now it is processed (and logged) and the reply still comes back.
  TestDaemon daemon;
  Client client(daemon.server->port());
  client.send_all("plan bcast 0 1M");
  ASSERT_EQ(::shutdown(client.fd, SHUT_WR), 0);
  const std::string out = client.read_to_eof();
  EXPECT_EQ(out.rfind("plan verb=bcast root=0 size=1048576 ", 0), 0u) << out;
  EXPECT_EQ(out.back(), '\n');
  const auto logs = daemon.log_lines();
  EXPECT_TRUE(std::any_of(logs.begin(), logs.end(), [](const std::string& l) {
    return l.find("trailing unterminated line") != std::string::npos;
  }));
}

TEST(SocketServer, QuitDrainsPendingMissesAndAnswersLast) {
  // `quit` pipelined behind a miss: the miss's reply must still arrive,
  // and `bye` must be the session's last word before EOF.
  TestDaemon daemon;
  Client client(daemon.server->port());
  client.send_all("plan alltoall 0 1M\nquit\n");
  const std::string out = client.read_to_eof();
  std::vector<std::string> lines;
  std::string rest = out;
  for (std::size_t nl = rest.find('\n'); nl != std::string::npos;
       nl = rest.find('\n')) {
    lines.push_back(rest.substr(0, nl));
    rest.erase(0, nl + 1);
  }
  ASSERT_EQ(lines.size(), 2u) << out;
  EXPECT_EQ(lines[0].rfind("plan verb=alltoall root=0 size=1048576 ", 0), 0u);
  EXPECT_EQ(lines[1], "bye");
}

TEST(SocketServer, HitOvertakesAPendingMissWithinASession) {
  // Async miss answering over the wire: with bucket-Y resident, a miss
  // for X followed immediately by a hit for Y answers Y first — the hit
  // never queues behind X's build.  (The all-to-all build is orders of
  // magnitude slower than the inline hit reply, so the order is stable.)
  TestDaemon daemon;
  Client client(daemon.server->port());
  client.send_all("plan bcast 0 1M\n");  // make Y resident
  ASSERT_EQ(client.read_lines(1).size(), 1u);
  client.send_all("plan alltoall 3 8M\nplan bcast 0 1M\n");
  const auto replies = client.read_lines(2);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].rfind("plan verb=bcast root=0 size=1048576 ", 0), 0u)
      << replies[0];
  EXPECT_EQ(replies[0].substr(replies[0].size() - 4), " hit");
  EXPECT_EQ(replies[1].rfind("plan verb=alltoall root=3 size=8388608 ", 0),
            0u)
      << replies[1];
  client.send_all("quit\n");
  (void)client.read_lines(1);
}

TEST(SocketServer, MalformedLinesKeepTheSessionAlive) {
  TestDaemon daemon;
  Client client(daemon.server->port());
  client.send_all("plan bcast 0\nfrobnicate\nplan bcast 0 1M\n");
  const auto replies = client.read_lines(3);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0], "error: usage: plan <verb> <root> <size>");
  EXPECT_EQ(replies[1],
            "error: unknown command 'frobnicate' (valid: plan, stats, quit)");
  EXPECT_EQ(replies[2].rfind("plan verb=bcast root=0 size=1048576 ", 0), 0u);
}

TEST(SocketServer, ConcurrentSessionsGetByteCorrectReplies) {
  // The TSan-lane stress: N sessions hammer overlapping signatures at
  // once.  Every reply must be well-formed and — up to the hit/miss
  // tail, which depends on arrival order — byte-equal to what an
  // isolated reference service answers for the same request.
  constexpr int kSessions = 8;
  constexpr int kRounds = 6;
  const std::vector<std::string> kRequests = {
      "plan bcast 0 1M",    "plan bcast 1 1M",  "plan scatter 0 256K",
      "plan alltoall 0 2M", "plan bcast 0 4M",  "plan scatter 2 256K",
  };

  // Reference replies from a private service (selection is deterministic,
  // so both services derive identical plans for every signature).
  PlanService reference(testbed(), "g5k");
  std::map<std::string, std::string> expected;  // request -> reply sans tail
  for (const auto& rq : kRequests) {
    const std::string text = reference.handle_line(rq).text;
    expected[rq] = text.substr(0, text.rfind(' '));
  }

  TestDaemon daemon;
  std::vector<std::thread> clients;
  std::vector<std::string> failure(kSessions);
  clients.reserve(kSessions);
  for (int c = 0; c < kSessions; ++c) {
    clients.emplace_back([&, c] {
      Client client(daemon.server->port());
      for (int r = 0; r < kRounds; ++r) {
        // Stagger the request mix so sessions overlap on every signature.
        const std::string& rq = kRequests[(c + r) % kRequests.size()];
        client.send_all(rq + "\n");
        const auto replies = client.read_lines(1);
        if (replies.size() != 1) {
          failure[c] = "no reply to '" + rq + "'";
          return;
        }
        const std::string& got = replies[0];
        const std::string tail = got.substr(got.rfind(' '));
        if (tail != " hit" && tail != " miss") {
          failure[c] = "malformed tail in '" + got + "'";
          return;
        }
        if (got.substr(0, got.rfind(' ')) != expected.at(rq)) {
          failure[c] = "reply '" + got + "' != expected '" + expected.at(rq) +
                       "' for '" + rq + "'";
          return;
        }
      }
      client.send_all("quit\n");
      const auto bye = client.read_lines(1);
      if (bye.size() != 1 || bye[0] != "bye") failure[c] = "no bye";
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kSessions; ++c) EXPECT_EQ(failure[c], "") << "session "
                                                                << c;
}

}  // namespace
}  // namespace gridcast::serve
