#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::serve {
namespace {

const topology::Grid& testbed() {
  static const topology::Grid grid = topology::grid5000_testbed();
  return grid;
}

std::vector<ReplayRequest> checked_in_log() {
  std::ifstream in(std::string(GRIDCAST_TEST_DATA_DIR) +
                   "/serve_requests.txt");
  EXPECT_TRUE(in.good());
  return parse_request_log(in);
}

// ------------------------------------------------------------ signatures

TEST(PlanService, SignatureCanonicalisesAlltoallRoot) {
  PlanService svc(testbed(), "g5k");
  const auto a = svc.signature_for(collective::Verb::kAlltoall, 1, MiB(1));
  const auto b = svc.signature_for(collective::Verb::kAlltoall, 4, MiB(1));
  EXPECT_EQ(a, b);  // all-to-all is root-symmetric: one plan for all roots
  EXPECT_EQ(a.root, 0u);
  // Broadcast roots stay distinct.
  const auto c = svc.signature_for(collective::Verb::kBcast, 1, MiB(1));
  const auto d = svc.signature_for(collective::Verb::kBcast, 4, MiB(1));
  EXPECT_NE(c, d);
}

TEST(PlanService, SignatureRejectsBadRequests) {
  PlanService svc(testbed(), "g5k");
  const auto n = static_cast<ClusterId>(testbed().cluster_count());
  EXPECT_THROW((void)svc.signature_for(collective::Verb::kBcast, n, MiB(1)),
               InvalidInput);
  // The all-to-all root is canonicalised but still range-checked.
  EXPECT_THROW((void)svc.signature_for(collective::Verb::kAlltoall, n, MiB(1)),
               InvalidInput);
  EXPECT_THROW((void)svc.signature_for(collective::Verb::kBcast, 0, 0),
               InvalidInput);
}

TEST(PlanService, RejectsUnknownSchedulerNames) {
  ServeOptions opts;
  opts.sched_names = {"NoSuchScheduler"};
  EXPECT_THROW(PlanService(testbed(), "g5k", opts), InvalidInput);
}

// ------------------------------------------------------------- planning

TEST(PlanService, PlanForSharesOnePlanPerBucket) {
  PlanService svc(testbed(), "g5k");
  const PlanPtr a = svc.plan_for(collective::Verb::kBcast, 0, MiB(1));
  ASSERT_NE(a, nullptr);
  // Same quarter-octave bucket: answered from cache, same object.
  const PlanPtr b = svc.plan_for(collective::Verb::kBcast, 0, MiB(1) + 1);
  EXPECT_EQ(b.get(), a.get());
  EXPECT_EQ(svc.plans().hits(), 1u);
  EXPECT_EQ(svc.plans().misses(), 1u);
  // The plan is built for the bucket floor, not the request size.
  EXPECT_EQ(a->planned_size, bucket_floor(a->signature.size_bucket));
  EXPECT_GT(a->predicted_makespan, 0.0);
  EXPECT_FALSE(a->scheduler.empty());
  ASSERT_NE(a->entry, nullptr);
  EXPECT_EQ(a->entry->name(), a->scheduler);
}

TEST(PlanService, BuildPlanRejectsForeignSignatures) {
  PlanService svc(testbed(), "g5k");
  PlanSignature sig = svc.signature_for(collective::Verb::kBcast, 0, MiB(1));
  sig.grid_hash ^= 1;
  EXPECT_THROW((void)svc.build_plan(sig), InvalidInput);
  sig = svc.signature_for(collective::Verb::kBcast, 0, MiB(1));
  sig.sched_rev ^= 1;
  EXPECT_THROW((void)svc.build_plan(sig), InvalidInput);
}

TEST(PlanService, SelectionIsDeterministic) {
  PlanService a(testbed(), "g5k");
  PlanService b(testbed(), "g5k");
  for (const auto verb : collective::kAllVerbs) {
    const PlanPtr pa = a.plan_for(verb, 2, KiB(256));
    const PlanPtr pb = b.plan_for(verb, 2, KiB(256));
    ASSERT_NE(pa, nullptr);
    EXPECT_EQ(pa->scheduler, pb->scheduler);
    EXPECT_EQ(pa->predicted_makespan, pb->predicted_makespan);
    EXPECT_EQ(pa->schedule.transfers.size(), pb->schedule.transfers.size());
  }
}

// ------------------------------------------------------------- protocol

TEST(PlanServiceProtocol, BlankAndCommentLinesAreSilent) {
  PlanService svc(testbed(), "g5k");
  EXPECT_EQ(svc.handle_line("").text, "");
  EXPECT_EQ(svc.handle_line("   \t").text, "");
  EXPECT_EQ(svc.handle_line("# a comment").text, "");
  EXPECT_FALSE(svc.handle_line("").quit);
}

TEST(PlanServiceProtocol, QuitClosesTheSession) {
  PlanService svc(testbed(), "g5k");
  const auto reply = svc.handle_line("quit");
  EXPECT_EQ(reply.text, "bye");
  EXPECT_TRUE(reply.quit);
}

TEST(PlanServiceProtocol, PlanRepliesAreStableAndMarkHits) {
  PlanService svc(testbed(), "g5k");
  const auto first = svc.handle_line("plan bcast 0 1M");
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(first.text.rfind("plan verb=bcast root=0 size=1048576 bucket=80 "
                             "sched=",
                             0),
            0u)
      << first.text;
  EXPECT_NE(first.text.find(" makespan="), std::string::npos);
  EXPECT_NE(first.text.find(" transfers="), std::string::npos);
  EXPECT_EQ(first.text.substr(first.text.size() - 5), " miss");

  // Same bucket again: a hit, and the reply differs only in the tail.
  const auto second = svc.handle_line("plan bcast 0 1M");
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.text.substr(second.text.size() - 4), " hit");
  EXPECT_EQ(first.text.substr(0, first.text.size() - 5),
            second.text.substr(0, second.text.size() - 4));

  // All-to-all ignores the requested root for caching purposes.
  EXPECT_FALSE(svc.handle_line("plan alltoall 1 64K").hit);
  EXPECT_TRUE(svc.handle_line("plan alltoall 3 64K").hit);
}

TEST(PlanServiceProtocol, ErrorsKeepTheSessionAlive) {
  PlanService svc(testbed(), "g5k");
  EXPECT_EQ(svc.handle_line("plan bcast 0").text,
            "error: usage: plan <verb> <root> <size>");
  EXPECT_EQ(svc.handle_line("frobnicate").text,
            "error: unknown command 'frobnicate' (valid: plan, stats, quit)");
  EXPECT_EQ(svc.handle_line("plan gather 0 1M").text.rfind("error: unknown "
                                                           "verb",
                                                           0),
            0u);
  EXPECT_EQ(svc.handle_line("plan bcast x 1M").text,
            "error: malformed root cluster 'x'");
  EXPECT_EQ(svc.handle_line("plan bcast 99 1M").text.rfind("error: root "
                                                           "cluster 99",
                                                           0),
            0u);
  // The session still answers after every error above.
  EXPECT_FALSE(svc.handle_line("plan bcast 0 1M").text.empty());
}

TEST(PlanServiceProtocol, StatsReportTheCaches) {
  PlanService svc(testbed(), "g5k");
  (void)svc.handle_line("plan bcast 0 1M");
  (void)svc.handle_line("plan bcast 0 1M");
  const std::string s = svc.handle_line("stats").text;
  EXPECT_EQ(s.rfind("stats grid=g5k schedulers=", 0), 0u) << s;
  EXPECT_NE(s.find(" plans=1 "), std::string::npos) << s;
  EXPECT_NE(s.find(" hits=1 "), std::string::npos) << s;
  EXPECT_NE(s.find(" misses=1 "), std::string::npos) << s;
  EXPECT_NE(s.find(" collisions=0 "), std::string::npos) << s;
  EXPECT_NE(s.find(" instance_misses="), std::string::npos) << s;
}

// --------------------------------------------------------------- replay

TEST(Replay, ParseRequestLogIsStrict) {
  std::istringstream good(
      "# comment\n\nplan bcast 0 1M\nplan alltoall 2 64K\n");
  const auto reqs = parse_request_log(good);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].verb, collective::Verb::kBcast);
  EXPECT_EQ(reqs[1].size, KiB(64));

  std::istringstream bad("plan bcast 0 1M\nplan bcast zero 1M\n");
  try {
    (void)parse_request_log(bad);
    FAIL() << "malformed line accepted";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Replay, EmptyLogIsRefused) {
  PlanService svc(testbed(), "g5k");
  ThreadPool pool(0);
  EXPECT_THROW((void)replay_requests(svc, {}, pool), InvalidInput);
}

TEST(Replay, ReportIsByteIdenticalAcrossThreadsSessionsAndWarmth) {
  // The headline determinism pin: the default (no --timing) serve report
  // over the checked-in CI log is one byte string, whatever worker count
  // runs the builds, however many concurrent sessions hammer the live
  // caches, and however warm the live cache already is.
  const std::vector<ReplayRequest> requests = checked_in_log();
  ASSERT_FALSE(requests.empty());
  const auto run = [&](std::size_t workers, std::size_t sessions, bool warm) {
    PlanService svc(testbed(), "g5k");
    ThreadPool pool(workers);
    if (warm) (void)warm_requests(svc, requests, pool);
    ReplayOptions opts;
    opts.sessions = sessions;
    return io::bench_to_json(replay_requests(svc, requests, pool, opts));
  };
  const std::string reference = run(0, 1, false);
  EXPECT_EQ(run(4, 1, false), reference);
  EXPECT_EQ(run(4, 8, false), reference);  // 8 concurrent live sessions
  EXPECT_EQ(run(4, 8, true), reference);   // ... over a pre-warmed cache
  EXPECT_EQ(run(1, 2, true), reference);
}

TEST(Replay, BatchScopesOnlyBuildWaits) {
  // `build_waits` is defined over the batch window (a same-batch repeat
  // of a newly-scheduled build would have waited on its latch), so batch
  // boundaries may move it — and nothing else.  A batch of one means
  // nobody could ever wait.
  const std::vector<ReplayRequest> requests = checked_in_log();
  const auto run = [&](std::size_t batch) {
    PlanService svc(testbed(), "g5k");
    ThreadPool pool(2);
    ReplayOptions opts;
    opts.batch = batch;
    return replay_requests(svc, requests, pool, opts);
  };
  const io::BenchReport wide = run(64);
  const io::BenchReport narrow = run(7);
  const io::BenchReport serial = run(1);
  for (const char* name :
       {"hit_rate", "hits", "misses", "plans_built", "evictions",
        "collisions", "admission_rejects", "predicted_sum_s"}) {
    const auto* w = wide.find_series(name);
    const auto* n = narrow.find_series(name);
    const auto* s = serial.find_series(name);
    ASSERT_NE(w, nullptr) << name;
    ASSERT_NE(n, nullptr) << name;
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(w->makespan_s[0], n->makespan_s[0]) << name;
    EXPECT_EQ(w->makespan_s[0], s->makespan_s[0]) << name;
  }
  const auto* waits = serial.find_series("build_waits");
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->makespan_s[0], 0.0);
  const auto* wide_waits = wide.find_series("build_waits");
  ASSERT_NE(wide_waits, nullptr);
  EXPECT_GT(wide_waits->makespan_s[0], 0.0);  // the CI log has repeats
}

TEST(Replay, WarmRequestsPrimesTheLiveCache) {
  const std::vector<ReplayRequest> requests = checked_in_log();
  PlanService svc(testbed(), "g5k");
  ThreadPool pool(2);
  const std::size_t built = warm_requests(svc, requests, pool);
  EXPECT_GT(built, 0u);
  // Warming is idempotent: a second pass finds everything resident.
  EXPECT_EQ(warm_requests(svc, requests, pool), 0u);
  // Every logged request is now answered from residency on the live path.
  for (const auto& rq : requests)
    EXPECT_TRUE(svc.handle_line("plan " +
                                std::string(collective::verb_name(rq.verb)) +
                                ' ' + std::to_string(rq.root) + ' ' +
                                std::to_string(rq.size))
                    .hit);
}

TEST(PlanService, HitCompletesWhileMissBuilds) {
  // The async-miss acceptance pin: a hit for a resident plan completes
  // while a miss for a *different* signature is still mid-build — the
  // build-once latch never queues other signatures behind it.
  PlanService svc(testbed(), "g5k");
  (void)svc.handle_line("plan bcast 0 1M");  // make Y resident
  std::promise<void> entered;
  std::promise<void> release;
  std::thread builder([&] {
    const PlanSignature sig_x =
        svc.signature_for(collective::Verb::kScatter, 1, KiB(64));
    (void)svc.plans().get(sig_x, [&](const PlanSignature& s) {
      entered.set_value();
      release.get_future().wait();  // hold the build until the hit landed
      return svc.build_plan(s);
    });
  });
  entered.get_future().wait();
  const auto reply = svc.handle_line("plan bcast 0 1M");
  EXPECT_TRUE(reply.hit);  // answered while X's build is still blocked
  release.set_value();
  builder.join();
  EXPECT_EQ(svc.plans().build_waits(), 0u);  // nobody had to wait
}

TEST(Replay, ReportRoundTripsAndSelfCompares) {
  const std::vector<ReplayRequest> requests = checked_in_log();
  PlanService svc(testbed(), "grid5000_testbed");
  ThreadPool pool(2);
  const io::BenchReport report = replay_requests(svc, requests, pool);

  EXPECT_TRUE(report.is_serve());
  ASSERT_EQ(report.sizes.size(), 1u);
  EXPECT_EQ(report.sizes[0], requests.size());

  // hits + misses partition the log, and the hit_rate cell agrees.
  const auto* hits = report.find_series("hits");
  const auto* misses = report.find_series("misses");
  const auto* rate = report.find_series("hit_rate");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(hits->makespan_s[0] + misses->makespan_s[0],
            static_cast<double>(requests.size()));
  EXPECT_DOUBLE_EQ(rate->makespan_s[0],
                   hits->makespan_s[0] / static_cast<double>(requests.size()));

  // Strict-parser round trip is byte-exact, and the report gates cleanly
  // against itself.
  const std::string json = io::bench_to_json(report);
  EXPECT_EQ(io::bench_to_json(io::bench_from_json(json)), json);
  EXPECT_TRUE(io::compare_bench(report, report).empty());
}

TEST(Replay, TimingSeriesRideAlongWithoutDisturbingTheRest) {
  const std::vector<ReplayRequest> requests = checked_in_log();
  PlanService svc(testbed(), "g5k");
  ThreadPool pool(2);
  ReplayOptions opts;
  opts.timing = true;
  const io::BenchReport report = replay_requests(svc, requests, pool, opts);

  const auto* rps = report.find_series("requests_per_s");
  ASSERT_NE(rps, nullptr);
  ASSERT_EQ(rps->throughput.size(), 1u);
  EXPECT_GT(rps->throughput[0], 0.0);
  for (const char* name : {"latency_p50_s", "latency_p99_s"}) {
    const auto* s = report.find_series(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_GE(s->wall_time_s, 0.0);
    ASSERT_EQ(s->makespan_s.size(), 1u);
    EXPECT_TRUE(std::isnan(s->makespan_s[0]));  // wall cost, null value cell
  }
  // The timing report still round-trips the strict parser byte-exactly.
  const std::string json = io::bench_to_json(report);
  EXPECT_EQ(io::bench_to_json(io::bench_from_json(json)), json);
}

}  // namespace
}  // namespace gridcast::serve
