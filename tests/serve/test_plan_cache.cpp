#include "serve/plan_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace gridcast::serve {
namespace {

PlanSignature sig_of(std::uint32_t bucket, ClusterId root = 0) {
  return PlanSignature{1, collective::Verb::kBcast, root, bucket, 2};
}

/// A synthetic plan: no entry or transfers (the cache never looks inside),
/// constant-size so byte capacities convert to entry counts exactly.
PlanPtr fake_plan(const PlanSignature& sig) {
  return std::make_shared<const SchedulePlan>(SchedulePlan{
      sig, "fake", nullptr, sched::Schedule{},
      static_cast<Time>(sig.size_bucket), 64});
}

std::size_t one_plan() { return SchedulePlanCache::plan_bytes(*fake_plan(sig_of(0))); }

TEST(PlanCache, FindMissesThenHits) {
  SchedulePlanCache cache;
  EXPECT_EQ(cache.capacity(), SchedulePlanCache::kUnbounded);
  EXPECT_EQ(cache.find(sig_of(10)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  const PlanPtr resident = cache.insert(fake_plan(sig_of(10)));
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes_in_use(), one_plan());

  EXPECT_EQ(cache.find(sig_of(10)).get(), resident.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.find(sig_of(11)), nullptr);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.collisions(), 0u);
}

TEST(PlanCache, GetBuildsExactlyOncePerSignature) {
  SchedulePlanCache cache;
  int builds = 0;
  const auto build = [&](const PlanSignature& s) {
    ++builds;
    return fake_plan(s);
  };
  const PlanPtr a = cache.get(sig_of(20), build);
  const PlanPtr b = cache.get(sig_of(20), build);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(builds, 1);
  (void)cache.get(sig_of(21), build);
  EXPECT_EQ(builds, 2);
}

TEST(PlanCache, FirstInsertWinsOnEqualSignatures) {
  SchedulePlanCache cache;
  const PlanPtr first = cache.insert(fake_plan(sig_of(30)));
  const PlanPtr second = cache.insert(fake_plan(sig_of(30)));
  // The lost build race hands back the resident object, so every caller
  // shares one plan and the byte account never double-charges.
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes_in_use(), one_plan());
}

TEST(PlanCache, EvictsLeastRecentlyUsedFirst) {
  SchedulePlanCache cache(3 * one_plan());
  (void)cache.insert(fake_plan(sig_of(0)));
  (void)cache.insert(fake_plan(sig_of(1)));
  (void)cache.insert(fake_plan(sig_of(2)));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch bucket 0 so bucket 1 becomes the LRU victim.
  ASSERT_NE(cache.find(sig_of(0)), nullptr);
  (void)cache.insert(fake_plan(sig_of(8)));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.find(sig_of(0)), nullptr);
  EXPECT_NE(cache.find(sig_of(2)), nullptr);
  EXPECT_NE(cache.find(sig_of(8)), nullptr);
  EXPECT_EQ(cache.find(sig_of(1)), nullptr);  // evicted
}

TEST(PlanCache, HoldersSurviveEviction) {
  SchedulePlanCache cache(one_plan());
  const PlanPtr held = cache.insert(fake_plan(sig_of(40)));
  (void)cache.insert(fake_plan(sig_of(41)));  // evicts bucket 40
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(held->signature.size_bucket, 40u);
  EXPECT_DOUBLE_EQ(held->predicted_makespan, 40.0);
}

TEST(PlanCache, CapacityZeroIsPassThrough) {
  SchedulePlanCache cache(0);
  const PlanPtr mine = fake_plan(sig_of(50));
  // insert returns its argument: nothing is retained, nothing evicted.
  EXPECT_EQ(cache.insert(mine).get(), mine.get());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes_in_use(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.find(sig_of(50)), nullptr);

  int builds = 0;
  const auto build = [&](const PlanSignature& s) {
    ++builds;
    return fake_plan(s);
  };
  (void)cache.get(sig_of(50), build);
  (void)cache.get(sig_of(50), build);
  EXPECT_EQ(builds, 2);  // re-built every time, never cached
}

TEST(PlanCache, SetCapacityEvictsImmediately) {
  SchedulePlanCache cache;
  for (std::uint32_t b = 0; b < 4; ++b) (void)cache.insert(fake_plan(sig_of(b)));
  EXPECT_EQ(cache.entries(), 4u);
  cache.set_capacity(2 * one_plan());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  cache.set_capacity(SchedulePlanCache::kUnbounded);
  for (std::uint32_t b = 8; b < 12; ++b)
    (void)cache.insert(fake_plan(sig_of(b)));
  EXPECT_EQ(cache.evictions(), 2u);  // unbounded again: nothing further
}

TEST(PlanCache, TinyCapacityStillServes) {
  SchedulePlanCache cache(1);  // smaller than any plan
  const PlanPtr p = cache.insert(fake_plan(sig_of(60)));
  // The fresh entry is its own eviction victim; the caller still gets it.
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->signature.size_bucket, 60u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(PlanCache, ConcurrentGetsShareOneObjectPerSignature) {
  // The TSan-lane stress pin: N threads hammer get() over a handful of
  // signatures through a bound small enough to keep evictions racing,
  // while a monitor thread polls the relaxed counters.  Apart from being
  // race-free, the accounting must stay exact: every lookup lands in
  // hits or misses, and no collision can occur between real signatures.
  SchedulePlanCache cache(3 * one_plan());
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  constexpr std::uint32_t kSignatures = 6;

  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)cache.hits();
      (void)cache.misses();
      (void)cache.evictions();
      (void)cache.collisions();
    }
  });
  std::vector<PlanPtr> last(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&, t] {
        for (int r = 0; r < kRounds; ++r) {
          const auto sig = sig_of((r + t) % kSignatures);
          last[t] = cache.get(sig, [](const PlanSignature& s) {
            return fake_plan(s);
          });
        }
      });
    for (auto& w : workers) w.join();
  }
  stop.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_GE(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.collisions(), 0u);
  EXPECT_LE(cache.entries(), 3u);
  for (int t = 0; t < kThreads; ++t) ASSERT_NE(last[t], nullptr);
  // Whatever is resident now is the shared object for its signature.
  for (std::uint32_t b = 0; b < kSignatures; ++b) {
    if (const PlanPtr p = cache.find(sig_of(b))) {
      EXPECT_EQ(p->signature, sig_of(b));
    }
  }
}

TEST(PlanCache, PeekCountsHitsButNeverMisses) {
  SchedulePlanCache cache;
  // Absent: no counters move — the follow-up get() owns the miss.
  EXPECT_EQ(cache.peek(sig_of(70)), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);

  const PlanPtr resident = cache.insert(fake_plan(sig_of(70)));
  EXPECT_EQ(cache.peek(sig_of(70)).get(), resident.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);

  // peek promotes like find: under a 2-plan bound, peeking bucket 70
  // makes bucket 71 the LRU victim.
  SchedulePlanCache lru(2 * one_plan());
  (void)lru.insert(fake_plan(sig_of(70)));
  (void)lru.insert(fake_plan(sig_of(71)));
  ASSERT_NE(lru.peek(sig_of(70)), nullptr);
  (void)lru.insert(fake_plan(sig_of(72)));
  EXPECT_NE(lru.peek(sig_of(70)), nullptr);
  EXPECT_EQ(lru.peek(sig_of(71)), nullptr);  // evicted
}

TEST(PlanCache, LatchBuildsOnceAndWaitersShareTheResult) {
  // Two concurrent get()s for one missing signature: the first builds
  // (held on a gate until the second has provably latched), the second
  // waits and shares the object — one build, one wait counted.
  SchedulePlanCache cache;
  std::promise<void> entered;
  std::promise<void> release;
  std::atomic<int> builds{0};

  PlanPtr first;
  std::thread builder([&] {
    first = cache.get(sig_of(80), [&](const PlanSignature& s) {
      ++builds;
      entered.set_value();
      release.get_future().wait();
      return fake_plan(s);
    });
  });
  entered.get_future().wait();

  PlanPtr second;
  SchedulePlanCache::GetStats gs;
  std::thread waiter([&] {
    second = cache.get(
        sig_of(80),
        [&](const PlanSignature& s) {
          ++builds;
          return fake_plan(s);
        },
        &gs);
  });
  // The waiter must land on the latch before the build is released.
  while (cache.build_waits() == 0) std::this_thread::yield();
  release.set_value();
  builder.join();
  waiter.join();

  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_TRUE(gs.waited);
  EXPECT_FALSE(gs.hit);
  EXPECT_EQ(cache.build_waits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);  // both requests missed; one build
}

TEST(PlanCache, LatchedBuildFailurePropagatesAndClears) {
  SchedulePlanCache cache;
  const auto boom = [](const PlanSignature&) -> PlanPtr {
    throw InvalidInput("no plan for you");
  };
  EXPECT_THROW((void)cache.get(sig_of(81), boom), InvalidInput);
  // The latch is cleared: the next requester retries (and can succeed).
  const PlanPtr p =
      cache.get(sig_of(81), [](const PlanSignature& s) { return fake_plan(s); });
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->signature.size_bucket, 81u);
}

TEST(PlanCache, AdmissionProtectsResidentsUntilKSightings) {
  // k=2 under a one-plan bound: a single-sighting insert that would have
  // to evict is rejected (caller still gets the plan, uncached); after a
  // second recorded miss the same signature earns the slot.
  SchedulePlanCache cache(one_plan(), AdmissionPolicy{2, 8});
  EXPECT_EQ(cache.find(sig_of(90)), nullptr);  // sighting #1
  const PlanPtr resident = cache.insert(fake_plan(sig_of(90)));
  EXPECT_EQ(cache.entries(), 1u);  // fits without evicting: admitted

  EXPECT_EQ(cache.find(sig_of(91)), nullptr);  // sighting #1 for 91
  const PlanPtr mine = fake_plan(sig_of(91));
  EXPECT_EQ(cache.insert(mine).get(), mine.get());  // rejected, handed back
  EXPECT_EQ(cache.admission_rejects(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_NE(cache.find(sig_of(90)), nullptr);  // resident survived

  EXPECT_EQ(cache.find(sig_of(91)), nullptr);  // sighting #2 for 91
  EXPECT_NE(cache.insert(fake_plan(sig_of(91))), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);  // now it may evict bucket 90
  EXPECT_NE(cache.find(sig_of(91)), nullptr);
}

TEST(PlanCache, AdmissionOnlyGatesUnderBytePressure) {
  // Unbounded (or roomy) caches never consult the ring: k=5 with one
  // sighting still admits when no eviction is needed.
  SchedulePlanCache cache(SchedulePlanCache::kUnbounded, AdmissionPolicy{5, 8});
  (void)cache.find(sig_of(95));
  (void)cache.insert(fake_plan(sig_of(95)));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.admission_rejects(), 0u);
}

TEST(PlanCache, UnsatisfiableAdmissionIsRefused) {
  // A ring of 2 can never hold 3 sightings: nothing would ever be
  // admitted under pressure, so the configuration is an input error.
  EXPECT_THROW(SchedulePlanCache(one_plan(), AdmissionPolicy{3, 2}),
               InvalidInput);
  // k=1 admits everything; any ring (even 0) is fine.
  SchedulePlanCache ok(one_plan(), AdmissionPolicy{1, 0});
  EXPECT_EQ(ok.admission_rejects(), 0u);
}

}  // namespace
}  // namespace gridcast::serve
