#include "serve/plan_signature.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "exp/race_cli.hpp"
#include "sched/registry.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "topology/generator.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::serve {
namespace {

// ------------------------------------------------------ size bucketing

TEST(SizeBucket, SmallSizesAreWholeBuckets) {
  EXPECT_EQ(size_bucket_of(1), 0u);
  EXPECT_EQ(size_bucket_of(2), 1u);
  EXPECT_EQ(size_bucket_of(3), 2u);
  // From 4 bytes up each octave splits into four quarters: 4 -> 4*2+0.
  EXPECT_EQ(size_bucket_of(4), 8u);
  EXPECT_EQ(size_bucket_of(5), 9u);
  EXPECT_EQ(size_bucket_of(6), 10u);
  EXPECT_EQ(size_bucket_of(7), 11u);
  EXPECT_EQ(size_bucket_of(8), 12u);
}

TEST(SizeBucket, ZeroSizeThrows) {
  EXPECT_THROW((void)size_bucket_of(0), InvalidInput);
}

TEST(SizeBucket, MonotoneInSize) {
  std::uint32_t prev = 0;
  for (Bytes m = 1; m <= 4096; ++m) {
    const std::uint32_t b = size_bucket_of(m);
    EXPECT_GE(b, prev) << "bucket not monotone at m=" << m;
    prev = b;
  }
}

TEST(SizeBucket, QuarterOctaveWidth) {
  // All of [2^20, 2^20 + 2^18) is one bucket — sizes within a quarter
  // octave (~19% spread) share a plan; the next quarter starts a new one.
  const Bytes base = Bytes{1} << 20;
  const Bytes quarter = Bytes{1} << 18;
  const std::uint32_t b = size_bucket_of(base);
  EXPECT_EQ(b, 4u * 20u);
  EXPECT_EQ(size_bucket_of(base + quarter - 1), b);
  EXPECT_EQ(size_bucket_of(base + quarter), b + 1);
}

TEST(SizeBucket, FloorRoundTripsForEveryReachableBucket) {
  // bucket_floor is the inverse of size_bucket_of on floors, and the
  // floor never exceeds the sizes that map to its bucket.
  for (Bytes m : {Bytes{1}, Bytes{2}, Bytes{3}, Bytes{4}, Bytes{17},
                  Bytes{100}, Bytes{4096}, KiB(96), KiB(300), Bytes{333333},
                  MiB(1), MiB(1.5), MiB(8), Bytes{1} << 40,
                  ~Bytes{0}}) {
    const std::uint32_t b = size_bucket_of(m);
    EXPECT_EQ(size_bucket_of(bucket_floor(b)), b) << "m=" << m;
    EXPECT_LE(bucket_floor(b), m) << "m=" << m;
  }
}

TEST(SizeBucket, MaxSizeUsesLastBucket) {
  EXPECT_EQ(size_bucket_of(~Bytes{0}), 255u);
  EXPECT_EQ(bucket_floor(255),
            (Bytes{1} << 63) + Bytes{3} * (Bytes{1} << 61));
}

TEST(SizeBucket, UnreachableBucketsThrow) {
  // Octaves below 4 bytes have no quarters (buckets 3-7), and no 64-bit
  // size has an msb past 63 (buckets > 255).
  for (const std::uint32_t b : {3u, 4u, 5u, 6u, 7u, 256u, 1000u})
    EXPECT_THROW((void)bucket_floor(b), InvalidInput) << "bucket=" << b;
}

// ---------------------------------------------------------- encoding

TEST(PlanSignatureEncode, PinnedTextForm) {
  // The encoding is the collision check's ground truth; its exact shape
  // (fixed-width lowercase hex, field order, separators) is a contract.
  const PlanSignature sig{0xDEADBEEFULL, collective::Verb::kScatter, 3, 42,
                          0x1ULL};
  EXPECT_EQ(sig.encode(),
            "g=00000000deadbeef;v=scatter;r=3;b=42;s=0000000000000001");
}

TEST(PlanSignatureEncode, InjectiveAcrossEveryField) {
  const PlanSignature base{7, collective::Verb::kBcast, 1, 80, 11};
  std::vector<PlanSignature> sigs = {base, base, base, base, base, base};
  sigs[1].grid_hash = 8;
  sigs[2].verb = collective::Verb::kAlltoall;
  sigs[3].root = 2;
  sigs[4].size_bucket = 81;
  sigs[5].sched_rev = 12;
  std::set<std::string> encodings;
  std::set<std::uint64_t> hashes;
  for (const auto& s : sigs) {
    encodings.insert(s.encode());
    hashes.insert(s.hash());
  }
  EXPECT_EQ(encodings.size(), sigs.size());
  // Not guaranteed in theory (64-bit FNV), but a same-family collision
  // here would be a real bug in the fold, not bad luck.
  EXPECT_EQ(hashes.size(), sigs.size());
  // Equal signatures encode and hash identically.
  const PlanSignature copy = base;
  EXPECT_EQ(copy, base);
  EXPECT_EQ(copy.encode(), base.encode());
  EXPECT_EQ(copy.hash(), base.hash());
}

// ------------------------------------------------------- fingerprints

TEST(GridFingerprint, StableAndGridSensitive) {
  const auto g5k = topology::grid5000_testbed();
  EXPECT_EQ(grid_fingerprint(g5k), grid_fingerprint(g5k));

  Rng rng_a(1);
  Rng rng_b(2);
  const topology::GeneratorConfig cfg;
  const auto a = topology::random_grid(cfg, rng_a);
  const auto b = topology::random_grid(cfg, rng_b);
  EXPECT_NE(grid_fingerprint(a), grid_fingerprint(g5k));
  EXPECT_NE(grid_fingerprint(a), grid_fingerprint(b));
}

TEST(SchedulerSetRevision, StableAndSetSensitive) {
  const std::vector<std::string> names = sched::registry().names();
  ASSERT_GE(names.size(), 2u);
  const sched::HeuristicOptions opts;
  const auto all = exp::resolve_competitors(names, opts);
  EXPECT_EQ(scheduler_set_revision(all),
            scheduler_set_revision(exp::resolve_competitors(names, opts)));

  // Dropping a competitor changes the revision...
  const std::vector<std::string> subset(names.begin(), names.end() - 1);
  EXPECT_NE(scheduler_set_revision(exp::resolve_competitors(subset, opts)),
            scheduler_set_revision(all));
  // ...and so does reordering: selection ties break by position.
  std::vector<std::string> reversed(names.rbegin(), names.rend());
  EXPECT_NE(scheduler_set_revision(exp::resolve_competitors(reversed, opts)),
            scheduler_set_revision(all));
}

TEST(SchedulerSetRevision, RollsWhenAutoJoinsAndWhenItsKnobsChange) {
  // Registering "auto" must invalidate cached plans: an empty sched set
  // means "every registered scheduler", and the revision is what tells a
  // serving replay that the set grew.
  std::vector<std::string> names = sched::registry().names();
  ASSERT_EQ(names.back(), "auto");
  const sched::HeuristicOptions opts;
  const auto with_auto = exp::resolve_competitors(names, opts);
  names.pop_back();
  const auto without_auto = exp::resolve_competitors(names, opts);
  EXPECT_NE(scheduler_set_revision(with_auto),
            scheduler_set_revision(without_auto));

  // The revision folds describe_options(), and auto describes its prune
  // knob — so flipping --no-prune rolls the revision too, even though
  // selections are identical (the conservative direction for a cache).
  sched::HeuristicOptions no_prune = opts;
  no_prune.prune = false;
  EXPECT_NE(scheduler_set_revision(
                exp::resolve_competitors({"auto"}, no_prune)),
            scheduler_set_revision(exp::resolve_competitors({"auto"}, opts)));
}

}  // namespace
}  // namespace gridcast::serve
