// Pins the fast path's headline property: once the calendar has reached
// its high-water mark, the schedule -> pop -> invoke loop performs ZERO
// heap allocations per event.  Counts calls to the replaceable global
// operator new (which the arena, the SoA heap vectors, the tail lane and
// InlineCallback would all have to route through) across a steady-state
// batch that repeats a previously warmed workload.

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  ++g_allocations;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace gridcast::sim {
namespace {

// One batch: forward-monotone inserts (tail lane) interleaved with
// out-of-order inserts (heap lane), then a full drain.  Identical every
// round, so round two onward stays at round one's high-water mark.
void run_batch(Engine& e, std::size_t n) {
  const Time base = e.now();
  for (std::size_t i = 0; i < n; ++i) {
    const Time forward = base + static_cast<Time>(i + 1) * 1e-6;
    const Time scattered =
        base + static_cast<Time>((i * 37) % n + 1) * 1e-6;
    e.at(forward, [] {});
    e.at(scattered, [] {});
  }
  e.run();
}

TEST(EngineAlloc, SteadyStateEventLoopIsAllocationFree) {
  constexpr std::size_t kN = 4096;
  Engine e;
  run_batch(e, kN);  // warm-up: arena chunks, heap arrays, tail capacity

  const std::uint64_t before = g_allocations.load();
  run_batch(e, kN);
  const std::uint64_t during = g_allocations.load() - before;

  EXPECT_EQ(during, 0u) << "steady-state batch of " << 2 * kN
                        << " events performed " << during
                        << " heap allocations";
  EXPECT_EQ(e.processed(), 4 * kN);
}

TEST(EngineAlloc, GrowthBeyondHighWaterMarkStillAllocates) {
  // Sanity check on the counter itself: a bigger batch than the warmed
  // one must allocate (otherwise the zero above would prove nothing).
  Engine e;
  run_batch(e, 64);
  const std::uint64_t before = g_allocations.load();
  run_batch(e, 16384);
  EXPECT_GT(g_allocations.load() - before, 0u);
}

}  // namespace
}  // namespace gridcast::sim
