#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace gridcast::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.processed(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(2.0, [&] { order.push_back(2); });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsKeepInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NowAdvancesDuringRun) {
  Engine e;
  Time seen = -1.0;
  e.at(5.5, [&] { seen = e.now(); });
  const Time end = e.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(end, 5.5);
  EXPECT_DOUBLE_EQ(e.now(), 5.5);
}

TEST(Engine, NestedSchedulingWorks) {
  Engine e;
  std::vector<Time> times;
  e.at(1.0, [&] {
    times.push_back(e.now());
    e.at(2.0, [&] { times.push_back(e.now()); });
    e.after(0.5, [&] { times.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(times, (std::vector<Time>{1.0, 1.5, 2.0}));
}

TEST(Engine, PastSchedulingThrows) {
  Engine e;
  e.at(2.0, [&] { EXPECT_THROW(e.at(1.0, [] {}), LogicError); });
  e.run();
}

TEST(Engine, NegativeDelayThrows) {
  Engine e;
  EXPECT_THROW(e.after(-1.0, [] {}), LogicError);
}

TEST(Engine, NullCallbackThrows) {
  Engine e;
  EXPECT_THROW(e.at(1.0, Engine::Callback{}), LogicError);
}

TEST(Engine, CountsProcessedAndPending) {
  Engine e;
  e.at(1.0, [] {});
  e.at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.processed(), 2u);
}

TEST(Engine, RunOnEmptyCalendarIsNoop) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.run(), 0.0);
}

TEST(Engine, HandlesManyEvents) {
  Engine e;
  std::size_t count = 0;
  for (int i = 0; i < 100000; ++i)
    e.at(static_cast<Time>(i % 977) * 1e-6, [&count] { ++count; });
  e.run();
  EXPECT_EQ(count, 100000u);
}

// ---- Determinism wall: the calendar's (time, insertion-seq) total order
// must hold regardless of which internal lane (monotone tail vs heap) an
// insertion lands in.  These tests deliberately construct interleavings
// that split equal-time events across both lanes.

TEST(Engine, EqualTimesSplitAcrossLanesKeepInsertionOrder) {
  Engine e;
  std::vector<int> order;
  // 1, 3 extend the monotone tail; 2 falls behind the tail's back (heap);
  // the second 3 re-extends the tail.  Both 3s must fire in issue order.
  e.at(1.0, [&] { order.push_back(10); });
  e.at(3.0, [&] { order.push_back(30); });
  e.at(2.0, [&] { order.push_back(20); });
  e.at(3.0, [&] { order.push_back(31); });
  e.at(2.0, [&] { order.push_back(21); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 21, 30, 31}));
}

TEST(Engine, PopOrderMatchesStableSortReference) {
  // Seeded random times over a tiny value set (ties everywhere), popped
  // order must equal a stable sort by time — i.e. (time, seq) exactly.
  Rng rng = Rng::stream(7, 0);
  Engine e;
  std::vector<std::pair<Time, int>> expect;
  std::vector<int> got;
  for (int i = 0; i < 5000; ++i) {
    const Time t = static_cast<Time>(static_cast<int>(rng.uniform(0.0, 8.0))) * 0.25;
    expect.emplace_back(t, i);
    e.at(t, [&got, i] { got.push_back(i); });
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  e.run();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(got[i], expect[i].second) << "at pop " << i;
}

TEST(Engine, ReentrantSchedulingAtNowRunsAfterPendingTies) {
  Engine e;
  std::vector<int> order;
  e.at(1.0, [&] {
    order.push_back(0);
    // Scheduled *during* the tie group: later insertion seq, so it fires
    // after the events already queued at t = 1.0.
    e.at(1.0, [&] { order.push_back(3); });
  });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(1.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, ReentrantChainAtSameTimeIsFifo) {
  Engine e;
  std::vector<int> order;
  int depth = 0;
  std::function<void()> chain;  // test scaffolding; capture stays tiny
  chain = [&] {
    order.push_back(depth);
    if (++depth < 100) e.at(1.0, [&] { chain(); });
  };
  e.at(1.0, [&] { chain(); });
  e.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

TEST(Engine, AfterDuringRunInterleavesWithPreScheduled) {
  Engine e;
  std::vector<int> order;
  e.at(1.0, [&] {
    order.push_back(1);
    e.after(1.0, [&] { order.push_back(3); });  // t = 2.0, issued later
  });
  e.at(2.0, [&] { order.push_back(2); });  // same time, earlier seq
  e.at(3.0, [&] { order.push_back(4); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Engine, PendingCountsBothLanes) {
  Engine e;
  e.at(1.0, [] {});   // tail
  e.at(3.0, [] {});   // tail
  e.at(2.0, [] {});   // heap (behind the tail's back)
  e.at(3.0, [] {});   // tail again
  EXPECT_EQ(e.pending(), 4u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.processed(), 4u);
}

TEST(Engine, ReusableAfterDrainWithCorrectOrder) {
  // Slot recycling through the free list must not disturb ordering or the
  // processed() accumulator across run() generations.
  Engine e;
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i)
      e.at(e.now() + static_cast<Time>((i * 37) % 100) + 1.0,
           [&order, i] { order.push_back(i % 10); });
    e.run();
  }
  EXPECT_EQ(order.size(), 300u);
  EXPECT_EQ(e.processed(), 300u);
  EXPECT_EQ(e.pending(), 0u);
}

// ---- The past-clamp rule (kPastSlack): one rule, pinned here.

TEST(Engine, PastWithinSlackClampsToNow) {
  Engine e;
  std::vector<int> order;
  Time fired_at = -1.0;
  e.at(1e-3, [&] {
    order.push_back(0);
    // Float round-off territory: below now() but within kPastSlack.
    const Time t = 1e-3 - Engine::kPastSlack / 2;
    ASSERT_LT(t, e.now());
    e.at(t, [&] {
      order.push_back(2);
      fired_at = e.now();
    });
    e.at(1e-3, [&] { order.push_back(1); });
  });
  e.run();
  // The clamp never drags now() backwards, and the clamped event keeps
  // its insertion sequence: it was issued before the explicit 1e-3 event,
  // so it fires first among the two reentrant inserts.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
  EXPECT_DOUBLE_EQ(fired_at, 1e-3);
}

TEST(Engine, PastBeyondSlackThrows) {
  Engine e;
  e.at(1e-3, [&] {
    EXPECT_THROW(e.at(1e-3 - 10 * Engine::kPastSlack, [] {}), LogicError);
    EXPECT_THROW(e.after(-10 * Engine::kPastSlack, [] {}), LogicError);
  });
  e.run();
}

TEST(Engine, AfterWithTinyNegativeDelayWithinSlackClamps) {
  Engine e;
  Time fired_at = -1.0;
  e.at(2e-3, [&] {
    e.after(-Engine::kPastSlack / 2, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 2e-3);
}

}  // namespace
}  // namespace gridcast::sim
