#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace gridcast::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.processed(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(2.0, [&] { order.push_back(2); });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsKeepInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NowAdvancesDuringRun) {
  Engine e;
  Time seen = -1.0;
  e.at(5.5, [&] { seen = e.now(); });
  const Time end = e.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(end, 5.5);
  EXPECT_DOUBLE_EQ(e.now(), 5.5);
}

TEST(Engine, NestedSchedulingWorks) {
  Engine e;
  std::vector<Time> times;
  e.at(1.0, [&] {
    times.push_back(e.now());
    e.at(2.0, [&] { times.push_back(e.now()); });
    e.after(0.5, [&] { times.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(times, (std::vector<Time>{1.0, 1.5, 2.0}));
}

TEST(Engine, PastSchedulingThrows) {
  Engine e;
  e.at(2.0, [&] { EXPECT_THROW(e.at(1.0, [] {}), LogicError); });
  e.run();
}

TEST(Engine, NegativeDelayThrows) {
  Engine e;
  EXPECT_THROW(e.after(-1.0, [] {}), LogicError);
}

TEST(Engine, NullCallbackThrows) {
  Engine e;
  EXPECT_THROW(e.at(1.0, Engine::Callback{}), LogicError);
}

TEST(Engine, CountsProcessedAndPending) {
  Engine e;
  e.at(1.0, [] {});
  e.at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.processed(), 2u);
}

TEST(Engine, RunOnEmptyCalendarIsNoop) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.run(), 0.0);
}

TEST(Engine, HandlesManyEvents) {
  Engine e;
  std::size_t count = 0;
  for (int i = 0; i < 100000; ++i)
    e.at(static_cast<Time>(i % 977) * 1e-6, [&count] { ++count; });
  e.run();
  EXPECT_EQ(count, 100000u);
}

}  // namespace
}  // namespace gridcast::sim
