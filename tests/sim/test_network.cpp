#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace gridcast::sim {
namespace {

/// Two clusters of two nodes; zero-overhead parameters make every timing
/// a closed form: intra gap 0.01+m/1e8, inter gap 0.001+m/1e7.
topology::Grid test_grid() {
  plogp::Params intra;
  intra.L = 0.001;
  intra.g = plogp::GapFunction::affine(0.01, 1e8);
  intra.os = plogp::GapFunction::constant(0.0);
  intra.orecv = plogp::GapFunction::constant(0.0);

  plogp::Params inter;
  inter.L = 0.1;
  inter.g = plogp::GapFunction::affine(0.001, 1e7);
  inter.os = plogp::GapFunction::constant(0.0);
  inter.orecv = plogp::GapFunction::constant(0.0);

  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 2, intra);
  cs.emplace_back("b", 2, intra);
  topology::Grid g(std::move(cs));
  g.set_link_symmetric(0, 1, inter);
  return g;
}

TEST(Network, IntraClusterSendTiming) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  const Bytes m = 1000000;
  const SendTiming t = net.send(0, 1, m);
  EXPECT_DOUBLE_EQ(t.start, 0.0);
  EXPECT_DOUBLE_EQ(t.injected, 0.01 + 0.01);  // gap = 0.01 + m/1e8
  EXPECT_DOUBLE_EQ(t.delivered, t.injected + 0.001);
}

TEST(Network, InterClusterSendUsesLinkParams) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  const Bytes m = 1000000;
  const SendTiming t = net.send(0, 2, m);  // rank 2 = cluster b coordinator
  EXPECT_DOUBLE_EQ(t.injected, 0.001 + 0.1);  // gap = 0.001 + m/1e7
  EXPECT_DOUBLE_EQ(t.delivered, t.injected + 0.1);
}

TEST(Network, NicSerializesSendsFromOneRank) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  const SendTiming a = net.send(0, 1, 0);
  const SendTiming b = net.send(0, 2, 0);
  EXPECT_DOUBLE_EQ(b.start, a.injected);
  EXPECT_DOUBLE_EQ(net.nic_free(0), b.injected);
}

TEST(Network, DistinctSendersDoNotSerialize) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  const SendTiming a = net.send(0, 2, 0);
  const SendTiming b = net.send(1, 3, 0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(b.start, 0.0);
}

TEST(Network, DeliveryCallbackFiresAtDeliveredTime) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  Time fired = -1.0;
  const SendTiming t = net.send(0, 1, 500, [&](Time when) { fired = when; });
  net.engine().run();
  EXPECT_DOUBLE_EQ(fired, t.delivered);
}

TEST(Network, CountsMessagesAndBytes) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  (void)net.send(0, 1, 100);
  (void)net.send(0, 2, 200);
  EXPECT_EQ(net.messages(), 2u);
  EXPECT_EQ(net.bytes_sent(), 300u);
}

TEST(Network, SeparatesInterClusterTraffic) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  (void)net.send(0, 1, 100);  // intra (cluster a)
  (void)net.send(0, 2, 200);  // inter (a -> b)
  (void)net.send(2, 3, 400);  // intra (cluster b)
  (void)net.send(3, 1, 800);  // inter (b -> a)
  EXPECT_EQ(net.messages(), 4u);
  EXPECT_EQ(net.inter_cluster_messages(), 2u);
  EXPECT_EQ(net.bytes_sent(), 1500u);
  EXPECT_EQ(net.inter_cluster_bytes(), 1000u);
}

TEST(Network, SelfSendRejected) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  EXPECT_THROW((void)net.send(1, 1, 10), LogicError);
}

TEST(Network, RankOutOfRangeRejected) {
  const topology::Grid grid = test_grid();
  Network net(grid, {}, 1);
  EXPECT_THROW((void)net.send(0, 4, 10), LogicError);
  EXPECT_THROW((void)net.nic_free(4), LogicError);
}

TEST(Network, JitterPerturbsButStaysBounded) {
  const topology::Grid grid = test_grid();
  Network clean(grid, {}, 1);
  const Time base = clean.send(0, 2, 1000000).delivered;

  Network noisy(grid, {0.05}, 2);
  const Time jittered = noisy.send(0, 2, 1000000).delivered;
  EXPECT_NE(jittered, base);
  EXPECT_GT(jittered, base * 0.8);
  EXPECT_LT(jittered, base * 1.2);
}

TEST(Network, JitterDeterministicPerSeed) {
  const topology::Grid grid = test_grid();
  Network a(grid, {0.1}, 42), b(grid, {0.1}, 42);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(a.send(0, 2, 1000).delivered,
                     b.send(0, 2, 1000).delivered);
}

TEST(Network, ReceiveOverheadIncludedInDelivery) {
  plogp::Params p = plogp::Params::latency_bandwidth(ms(1), 1e7);
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 2, p);
  topology::Grid grid(std::move(cs));
  Network net(grid, {}, 1);
  const Bytes m = MiB(1);
  const SendTiming t = net.send(0, 1, m);
  EXPECT_DOUBLE_EQ(t.delivered, t.injected + p.L + p.orecv(m));
}

TEST(Network, ExcessiveJitterConfigThrows) {
  const topology::Grid grid = test_grid();
  EXPECT_THROW(Network(grid, {0.9}, 1), LogicError);
}

// ---- Send-memo equivalence: the direct-mapped (pair, size) cache must be
// invisible in the timings — every cached g(m)/orecv(m) is the exact
// double the gap functions produce, pinned here by running the same send
// sequence with the memo enabled and disabled and requiring bit equality.

TEST(Network, MemoMatchesUncachedTimingsBitForBit) {
  const topology::Grid grid = test_grid();
  Network cached(grid, {}, 1);
  Network direct(grid, {}, 1);
  direct.disable_send_memo_for_test();

  // Sizes chosen to hammer one memo slot per pair (repeats), to spread
  // across slots, and to include 0 and large values; pairs cover intra,
  // inter, and both directions.
  const Bytes sizes[] = {0, 1, 64, 1000, 1000, 4096, 1000000, 64, 0};
  const std::pair<NodeId, NodeId> pairs[] = {
      {0, 1}, {0, 2}, {2, 3}, {3, 1}, {1, 0}, {2, 0}};
  for (const Bytes m : sizes) {
    for (const auto& [from, to] : pairs) {
      const SendTiming a = cached.send(from, to, m);
      const SendTiming b = direct.send(from, to, m);
      EXPECT_EQ(a.start, b.start);
      EXPECT_EQ(a.injected, b.injected);
      EXPECT_EQ(a.delivered, b.delivered);
    }
  }
  EXPECT_DOUBLE_EQ(cached.engine().run(), direct.engine().run());
}

TEST(Network, MemoMatchesUncachedUnderJitter) {
  // Jitter draws two rng values per send (gap, then latency); the memo
  // must not change the draw order, or every later timing shifts.
  const topology::Grid grid = test_grid();
  Network cached(grid, {0.05}, 42);
  Network direct(grid, {0.05}, 42);
  direct.disable_send_memo_for_test();
  for (int i = 0; i < 64; ++i) {
    const Bytes m = static_cast<Bytes>((i % 5) * 1000);
    const auto from = static_cast<NodeId>(i % 4);
    const auto to = static_cast<NodeId>((i + 1) % 4);
    const SendTiming a = cached.send(from, to, m);
    const SendTiming b = direct.send(from, to, m);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.delivered, b.delivered);
  }
}

TEST(Network, MemoCollisionsOverwriteWithoutCorruption) {
  // Far more distinct (pair, size) keys than the 128 memo slots: every
  // slot collides repeatedly, and each probe must still produce the
  // uncached timing (collisions overwrite, never alias).
  const topology::Grid grid = test_grid();
  Network cached(grid, {}, 1);
  Network direct(grid, {}, 1);
  direct.disable_send_memo_for_test();
  for (int i = 0; i < 2000; ++i) {
    const Bytes m = static_cast<Bytes>(i) * 17 + 1;
    const auto from = static_cast<NodeId>(i % 4);
    const auto to = static_cast<NodeId>((i + 2) % 4);
    if (from == to) continue;
    const SendTiming a = cached.send(from, to, m);
    const SendTiming b = direct.send(from, to, m);
    ASSERT_EQ(a.delivered, b.delivered) << "send " << i << " size " << m;
  }
}

}  // namespace
}  // namespace gridcast::sim
