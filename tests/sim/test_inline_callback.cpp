#include "sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

namespace gridcast::sim {
namespace {

using Cb = InlineCallback<int(int), 64>;

TEST(InlineCallback, DefaultConstructedIsEmpty) {
  Cb cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, InvokesStoredCallable) {
  Cb cb = [](int x) { return x * 2; };
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_EQ(cb(21), 42);
}

TEST(InlineCallback, CapturesState) {
  int base = 100;
  Cb cb = [base](int x) { return base + x; };
  EXPECT_EQ(cb(1), 101);
}

TEST(InlineCallback, MoveTransfersOwnership) {
  Cb a = [](int x) { return x + 1; };
  Cb b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: post-move state is pinned
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b(1), 2);
}

TEST(InlineCallback, MoveAssignReplacesAndDestroysTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  InlineCallback<int(), 64> a = [token] { return *token; };
  token.reset();
  EXPECT_FALSE(watch.expired());  // alive inside a
  InlineCallback<int(), 64> b = [] { return 0; };
  b = std::move(a);
  EXPECT_EQ(b(), 7);
  b = [] { return 1; };           // overwrites: the capture must die
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(b(), 1);
}

TEST(InlineCallback, ResetDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineCallback<int(), 64> cb = [token] { return *token; };
  token.reset();
  EXPECT_FALSE(watch.expired());
  cb.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, DestructorDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineCallback<int(), 64> cb = [token] { return *token; };
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallback, SelfMoveAssignIsSafe) {
  Cb cb = [](int x) { return x + 5; };
  Cb& alias = cb;
  cb = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_EQ(cb(1), 6);
}

TEST(InlineCallback, MovedFromIsReusable) {
  Cb a = [](int x) { return x; };
  Cb b = std::move(a);
  a = [](int x) { return x * 3; };
  EXPECT_EQ(a(2), 6);
  EXPECT_EQ(b(2), 2);
}

TEST(InlineCallback, CapacityIsCompileTimeBudget) {
  // A capture exactly at capacity compiles; the static_assert in the
  // converting constructor keeps larger ones out at compile time.
  struct Fat {
    std::byte pad[64];
  };
  Fat f{};
  f.pad[0] = std::byte{42};
  InlineCallback<int(), 64> cb = [f] {
    return static_cast<int>(f.pad[0]);
  };
  EXPECT_EQ(cb(), 42);
  static_assert(InlineCallback<int(), 64>::capacity() == 64);
}

TEST(InlineCallback, ForwardsArgumentsAndReturn) {
  InlineCallback<std::size_t(std::unique_ptr<int>), 32> cb =
      [](std::unique_ptr<int> p) { return static_cast<std::size_t>(*p); };
  EXPECT_EQ(cb(std::make_unique<int>(9)), 9u);
}

}  // namespace
}  // namespace gridcast::sim
