// The full Section 7 pipeline, end to end: node latency matrix ->
// Lowekamp logical clusters -> grid -> pLogP instance -> heuristic
// schedules -> simulated execution.

#include <gtest/gtest.h>

#include <string_view>

#include "clustering/lowekamp.hpp"
#include "clustering/node_matrix.hpp"
#include "collective/bcast.hpp"
#include "exp/sweep.hpp"
#include "plogp/fit.hpp"
#include "sched/registry.hpp"
#include "support/rng.hpp"
#include "topology/grid5000.hpp"

namespace gridcast {
namespace {

TEST(EndToEnd, ClusterMapFeedsTheTestbed) {
  // Re-derive the Table 3 cluster map from noisy node measurements, then
  // confirm the preset testbed agrees with it.
  auto lat = topology::grid5000_latency_matrix();
  for (std::size_t c = 0; c < lat.size(); ++c)
    if (lat(c, c) == 0.0) lat(c, c) = us(50.0);
  Rng rng(7);
  const auto node_matrix = clustering::synthesize_node_matrix(
      topology::grid5000_sizes(), lat, 0.02, rng);
  const auto map = clustering::lowekamp_cluster(node_matrix, 0.30);

  const topology::Grid grid = topology::grid5000_testbed();
  ASSERT_EQ(map.group_count(), grid.cluster_count());
  for (std::size_t c = 0; c < map.group_count(); ++c)
    EXPECT_EQ(map.groups[c].size(), grid.cluster(static_cast<ClusterId>(c)).size());
}

TEST(EndToEnd, FourMegabyteBroadcastMagnitudes) {
  // The paper's Section 7 headline: ECEF-family < 3 s for 4 MB; FlatTree
  // several times worse; the grid-unaware binomial in between.
  const topology::Grid grid = topology::grid5000_testbed();
  const Bytes m = MiB(4);
  const auto inst = sched::Instance::from_grid(grid, 0, m);

  const auto run = [&](std::string_view name) {
    // Straight from the registry entry to a simulated execution.
    const auto entry = sched::registry().make(name);
    sim::Network net(grid, {}, 1);
    return collective::run_hierarchical_bcast(net, 0, *entry, m).completion;
  };
  const Time ecef_la = run("ECEF-LA");
  const Time flat = run("FlatTree");

  sim::Network lam_net(grid, {}, 1);
  const Time lam =
      collective::run_grid_unaware_binomial(lam_net, 0, m).completion;

  EXPECT_LT(ecef_la, 3.5);
  EXPECT_GT(flat / ecef_la, 2.0);  // "almost six times" on real hardware
  EXPECT_GT(flat, lam);            // flat even loses to grid-unaware LAM
  EXPECT_GT(lam, ecef_la);
}

TEST(EndToEnd, PredictionsTrackSimulatedExecution) {
  // Fig. 5 vs Fig. 6: "performance predictions fit with a good precision
  // the practical results".
  const topology::Grid grid = topology::grid5000_testbed();
  sched::HeuristicOptions opts;
  opts.completion = sched::CompletionModel::kAfterLastSend;
  const auto comps = sched::paper_heuristics(opts);
  const std::vector<Bytes> sizes{MiB(1), MiB(4)};

  const auto pred = exp::predicted_sweep(grid, 0, comps, sizes);
  const auto meas = exp::measured_sweep(grid, 0, comps, sizes, {}, 1);

  for (std::size_t s = 0; s < comps.size(); ++s) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const double p = pred.series[s].completion[i];
      const double m = meas.series[s + 1].completion[i];  // [0] is LAM
      EXPECT_NEAR(m, p, p * 0.25)
          << comps[s].name() << " at " << sizes[i] << " bytes";
    }
  }
}

TEST(EndToEnd, RootRotationKeepsHeuristicsFunctional) {
  // The paper notes FlatTree degrades when applications rotate the
  // broadcast root; the scheduled heuristics must stay valid and
  // reasonable from any root.
  const topology::Grid grid = topology::grid5000_testbed();
  const Bytes m = MiB(1);
  for (ClusterId root = 0; root < grid.cluster_count(); ++root) {
    const auto inst = sched::Instance::from_grid(grid, root, m);
    for (const auto& s : sched::ecef_family()) {
      const auto sched_run = s.run(inst);
      EXPECT_EQ(describe_invalid(sched_run, inst.clusters()), "")
          << s.name() << " root " << root;
      EXPECT_LT(sched_run.makespan, 5.0);
    }
  }
}

TEST(EndToEnd, MeasurementPipelineFeedsScheduling) {
  // pLogP acquisition -> link params -> instance -> schedule, using the
  // synthetic-link fitting path (the measurement substitution).
  plogp::SyntheticLink::Config wan;
  wan.latency = ms(10);
  wan.bandwidth_Bps = 2e6;
  wan.jitter_frac = 0.03;
  plogp::SyntheticLink::Config lan;
  lan.latency = us(60);
  lan.bandwidth_Bps = 1e8;
  lan.jitter_frac = 0.03;

  Rng rng(3);
  const plogp::Params wan_params =
      plogp::fit_link(plogp::SyntheticLink(wan), {}, rng);
  const plogp::Params lan_params =
      plogp::fit_link(plogp::SyntheticLink(lan), {}, rng);

  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 8, lan_params);
  cs.emplace_back("b", 8, lan_params);
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1, wan_params);
  grid.validate();

  const auto inst = sched::Instance::from_grid(grid, 0, MiB(1));
  const auto s = sched::Scheduler("ECEF-LA").run(inst);
  EXPECT_EQ(describe_invalid(s, 2), "");
  // Fitted WAN transfer must dominate the schedule (~0.5 s for 1 MiB at
  // 2 MB/s plus latency).
  EXPECT_NEAR(s.transfers[0].arrival, 0.5 + ms(10), 0.1);
}

}  // namespace
}  // namespace gridcast
