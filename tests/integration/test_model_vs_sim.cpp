// Model-vs-execution consistency: with zero-overhead pLogP parameters and
// no jitter, the analytic evaluator (after-last-send model) and the
// discrete-event executor must agree to floating-point precision, for any
// heuristic, topology and message size.  This is the invariant that makes
// Fig. 5 (predicted) meaningful as a forecast of Fig. 6 (measured).

#include <gtest/gtest.h>

#include "collective/bcast.hpp"
#include "sched/evaluate.hpp"
#include "sched/registry.hpp"
#include "support/rng.hpp"
#include "topology/grid.hpp"

namespace gridcast {
namespace {

plogp::Params bare(Time L, Time g0, double bw) {
  plogp::Params p;
  p.L = L;
  p.g = plogp::GapFunction::affine(g0, bw);
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(0.0);
  return p;
}

/// Random zero-overhead grid: cluster sizes 1-8, LAN intra, mixed links.
topology::Grid random_bare_grid(std::uint64_t seed, std::uint32_t clusters) {
  Rng rng = Rng::stream(seed, 0xBADE);
  std::vector<topology::Cluster> cs;
  for (std::uint32_t c = 0; c < clusters; ++c) {
    const auto size = static_cast<std::uint32_t>(rng.between(1, 8));
    cs.emplace_back("c" + std::to_string(c), size,
                    bare(rng.uniform(us(20), us(100)), us(10),
                         rng.uniform(5e7, 2e8)));
  }
  topology::Grid grid(std::move(cs));
  for (ClusterId i = 0; i < clusters; ++i)
    for (ClusterId j = static_cast<ClusterId>(i + 1); j < clusters; ++j)
      grid.set_link_symmetric(
          i, j,
          bare(rng.uniform(ms(1), ms(20)), us(100), rng.uniform(1e6, 1e7)));
  grid.validate();
  return grid;
}

struct SimCase {
  std::uint64_t seed;
  std::uint32_t clusters;
  Bytes message;
};

class ModelVsSim : public ::testing::TestWithParam<SimCase> {};

TEST_P(ModelVsSim, ExecutorEqualsEvaluatorExactly) {
  const auto [seed, clusters, message] = GetParam();
  const topology::Grid grid = random_bare_grid(seed, clusters);
  const auto inst = sched::Instance::from_grid(grid, 0, message);
  for (const auto& s : sched::paper_heuristics()) {
    const sched::SendOrder order = s.order(inst);
    const Time predicted =
        sched::evaluate_order(inst, order,
                              sched::CompletionModel::kAfterLastSend)
            .makespan;
    sim::Network net(grid, {}, seed);
    const Time measured =
        collective::run_hierarchical_bcast(net, 0, order, message)
            .completion;
    EXPECT_NEAR(measured, predicted, 1e-9)
        << s.name() << " diverged on seed " << seed;
  }
}

TEST_P(ModelVsSim, PerClusterFinishTimesAgree) {
  const auto [seed, clusters, message] = GetParam();
  const topology::Grid grid = random_bare_grid(seed, clusters);
  const auto inst = sched::Instance::from_grid(grid, 0, message);
  const auto order =
      sched::Scheduler("ECEF-LA").order(inst);
  const sched::Schedule pred = sched::evaluate_order(
      inst, order, sched::CompletionModel::kAfterLastSend);

  sim::Network net(grid, {}, seed);
  const auto run = collective::run_hierarchical_bcast(net, 0, order, message);
  // The evaluator's per-cluster finish is the last delivery within the
  // cluster (or the coordinator's last activity for senders).
  for (ClusterId c = 0; c < clusters; ++c) {
    Time last_delivery = 0.0;
    for (NodeId l = 0; l < grid.cluster(c).size(); ++l)
      last_delivery =
          std::max(last_delivery, run.delivered[grid.global_rank(c, l)]);
    EXPECT_LE(last_delivery, pred.cluster_finish[c] + 1e-9) << "cluster " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelVsSim,
    ::testing::Values(SimCase{1, 2, KiB(64)}, SimCase{2, 3, MiB(1)},
                      SimCase{3, 4, KiB(256)}, SimCase{4, 5, MiB(2)},
                      SimCase{5, 6, MiB(1)}, SimCase{6, 8, KiB(512)},
                      SimCase{7, 10, MiB(1)}, SimCase{8, 6, MiB(4)}),
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.clusters);
    });

}  // namespace
}  // namespace gridcast
