// Statistical reproduction of the paper's figure *shapes* at reduced
// iteration counts (the benches run the full-scale versions).  Each test
// pins one qualitative claim from the paper's evaluation.

#include <gtest/gtest.h>

#include "exp/montecarlo.hpp"

namespace gridcast {
namespace {

exp::RaceResult race(std::size_t clusters, std::uint64_t iters = 600) {
  exp::RaceConfig cfg;
  cfg.clusters = clusters;
  cfg.iterations = iters;
  cfg.seed = 42;
  ThreadPool pool(0);
  return exp::run_race(sched::paper_heuristics(), cfg, pool);
}

// Index map for paper_heuristics(): 0 Flat, 1 FEF, 2 ECEF, 3 ECEF-LA,
// 4 ECEF-LAt, 5 ECEF-LAT, 6 BottomUp.
constexpr std::size_t kFlat = 0, kFef = 1, kEcef = 2, kLa = 3, kLat = 4,
                      kLAT = 5, kBu = 6;

TEST(PaperShapes, Fig1FlatTreeIsWorstAndEcefFamilyBest) {
  const auto r = race(10);
  for (std::size_t s = 1; s < 7; ++s)
    EXPECT_GT(r.makespan[kFlat].mean(), r.makespan[s].mean());
  double family_best = 1e18;
  for (const std::size_t fam : {kEcef, kLa, kLat, kLAT}) {
    EXPECT_LT(r.makespan[fam].mean(), r.makespan[kFef].mean());
    family_best = std::min(family_best, r.makespan[fam].mean());
  }
  // The best ECEF variant leads the field; BottomUp lands between the
  // family band and FEF (paper Fig. 1 has it strictly above the family -
  // under the eager completion model it overlaps the band's top edge).
  EXPECT_LT(family_best, r.makespan[kBu].mean());
}

TEST(PaperShapes, Fig1BottomUpBeatsFef) {
  const auto r = race(10);
  EXPECT_LT(r.makespan[kBu].mean(), r.makespan[kFef].mean());
}

TEST(PaperShapes, Fig2FlatTreeGrowsLinearly) {
  const auto r10 = race(10);
  const auto r40 = race(40);
  const double growth =
      r40.makespan[kFlat].mean() / r10.makespan[kFlat].mean();
  // Roughly 4x the clusters -> roughly linear growth in root gaps.
  EXPECT_GT(growth, 2.5);
}

TEST(PaperShapes, Fig2EcefFamilyIsNearlyFlatInClusterCount) {
  const auto r10 = race(10);
  const auto r40 = race(40);
  for (const std::size_t fam : {kEcef, kLa, kLat, kLAT}) {
    const double growth =
        r40.makespan[fam].mean() / r10.makespan[fam].mean();
    EXPECT_LT(growth, 1.35) << "family index " << fam;
  }
}

TEST(PaperShapes, Fig3EcefFamilyStaysInNarrowBand) {
  const auto r = race(30);
  double lo = 1e9, hi = 0.0;
  for (const std::size_t fam : {kEcef, kLa, kLat, kLAT}) {
    lo = std::min(lo, r.makespan[fam].mean());
    hi = std::max(hi, r.makespan[fam].mean());
  }
  EXPECT_LT(hi / lo, 1.10);  // within ~10% of each other, as in Fig. 3
}

TEST(PaperShapes, Fig4TiesMakeHitsExceedIterations) {
  exp::RaceConfig cfg;
  cfg.clusters = 5;
  cfg.iterations = 400;
  cfg.seed = 42;
  ThreadPool pool(0);
  const auto r = exp::run_race(sched::ecef_family(), cfg, pool);
  std::uint64_t total = 0;
  for (const auto h : r.hits) total += h;
  EXPECT_GT(total, r.iterations);  // the paper's Fig. 4 sums above 10000
}

TEST(PaperShapes, Fig4TAwareLookaheadLeadsOnSmallGrids) {
  // At small-to-mid cluster counts the grid-aware ECEF-LAT achieves the
  // highest hit rate of the family (the regime the paper recommends the
  // mixed strategy around).
  exp::RaceConfig cfg;
  cfg.clusters = 8;
  cfg.iterations = 600;
  cfg.seed = 42;
  ThreadPool pool(0);
  const auto r = exp::run_race(sched::ecef_family(), cfg, pool);
  // ecef_family: 0 ECEF, 1 LA, 2 LAt, 3 LAT.
  EXPECT_GT(r.hits[3], r.hits[0]);
  EXPECT_GT(r.hits[3], r.hits[1]);
}

TEST(PaperShapes, Fig4SpeedOrientedHitRatesDecayWithScale) {
  ThreadPool pool(0);
  exp::RaceConfig small;
  small.clusters = 5;
  small.iterations = 500;
  small.seed = 42;
  exp::RaceConfig large = small;
  large.clusters = 40;
  const auto rs = exp::run_race(sched::ecef_family(), small, pool);
  const auto rl = exp::run_race(sched::ecef_family(), large, pool);
  // ECEF and ECEF-LA match the family minimum far less often at 40
  // clusters than at 5 (the paper's decaying curves).
  EXPECT_LT(rl.hit_rate(0), rs.hit_rate(0));
  EXPECT_LT(rl.hit_rate(1), rs.hit_rate(1));
}

TEST(PaperShapes, GlobalMinimumTightensAgainstBestHeuristic) {
  // Sanity on the hit-rate metric itself: the global minimum can never
  // exceed the best single strategy, and some strategy attains it.
  const auto r = race(15, 300);
  double best = 1e18;
  for (const auto& m : r.makespan) best = std::min(best, m.mean());
  EXPECT_LE(r.global_min.mean(), best);
}

}  // namespace
}  // namespace gridcast
