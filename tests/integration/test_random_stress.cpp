// Randomised stress / failure-surface tests: wide random sweeps over
// topologies, instances and message sizes, checking only the invariants
// that must hold for *every* input — conservation, causality, validity,
// and cross-component agreement.  Complements the targeted unit tests
// with breadth.

#include <gtest/gtest.h>

#include "collective/bcast.hpp"
#include "collective/scatter.hpp"
#include "exp/param_ranges.hpp"
#include "sched/optimal.hpp"
#include "sched/registry.hpp"
#include "support/rng.hpp"
#include "topology/generator.hpp"

namespace gridcast {
namespace {

class RandomStress : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] topology::Grid random_grid() const {
    Rng rng = Rng::stream(GetParam(), 0xF00D);
    topology::GeneratorConfig cfg;
    cfg.clusters = static_cast<std::uint32_t>(rng.between(2, 9));
    cfg.sites = static_cast<std::uint32_t>(rng.between(1, 4));
    cfg.min_cluster_size = 1;
    cfg.max_cluster_size = 12;
    return topology::random_grid(cfg, rng);
  }
};

TEST_P(RandomStress, EveryHeuristicValidOnRandomTopologies) {
  const topology::Grid grid = random_grid();
  Rng rng = Rng::stream(GetParam(), 0xCAFE);
  const Bytes m = static_cast<Bytes>(rng.between(1, 4 << 20));
  const auto root =
      static_cast<ClusterId>(rng.below(grid.cluster_count()));
  const auto inst = sched::Instance::from_grid(grid, root, m);
  for (const auto& s : sched::paper_heuristics()) {
    const sched::Schedule sc = s.run(inst);
    EXPECT_EQ(describe_invalid(sc, inst.clusters()), "") << s.name();
    EXPECT_GE(sc.makespan, inst.lower_bound() - 1e-9) << s.name();
  }
}

TEST_P(RandomStress, SimulatedBroadcastDeliversExactlyOnce) {
  const topology::Grid grid = random_grid();
  Rng rng = Rng::stream(GetParam(), 0xBEEF);
  const Bytes m = static_cast<Bytes>(rng.between(1, 2 << 20));
  const auto inst = sched::Instance::from_grid(grid, 0, m);
  const auto order =
      sched::Scheduler("ECEF-LA").order(inst);

  sim::Network net(grid, {0.05}, GetParam());
  const auto r = collective::run_hierarchical_bcast(net, 0, order, m);
  // Conservation: one message per non-root rank, no duplicates, no loss.
  EXPECT_EQ(r.messages, grid.total_nodes() - 1);
  for (NodeId rank = 1; rank < grid.total_nodes(); ++rank)
    EXPECT_GT(r.delivered[rank], 0.0);
  EXPECT_GT(r.completion, 0.0);
}

TEST_P(RandomStress, JitterNeverBreaksCausality) {
  const topology::Grid grid = random_grid();
  sim::Network net(grid, {0.15}, GetParam());
  // Per-send causality under heavy jitter: injection strictly follows the
  // start, delivery strictly follows injection, and one sender's repeated
  // sends serialize in issue order (NIC and latency are never negative).
  const NodeId sender = grid.global_rank(0, 0);
  Time prev_start = -1.0;
  for (ClusterId c = 1; c < grid.cluster_count(); ++c) {
    const auto t = net.send(sender, grid.global_rank(c, 0), KiB(64));
    EXPECT_GE(t.start, 0.0);
    EXPECT_GT(t.injected, t.start);
    EXPECT_GT(t.delivered, t.injected);
    EXPECT_GT(t.start, prev_start);  // NIC serialization in issue order
    EXPECT_DOUBLE_EQ(t.injected, net.nic_free(sender));
    prev_start = t.start;
  }
}

TEST_P(RandomStress, ScatterVariantsAgreeOnPayloadTotals) {
  const topology::Grid grid = random_grid();
  const Bytes block = KiB(32);
  sim::Network n1(grid, {}, GetParam());
  const auto naive = collective::run_naive_scatter(n1, 0, block);
  sim::Network n2(grid, {}, GetParam());
  const auto hier = collective::run_hierarchical_scatter(n2, 0, block);
  // WAN byte volume is invariant across the two algorithms.
  EXPECT_EQ(naive.wan_bytes, hier.wan_bytes);
  // And the grid-aware variant never sends more WAN messages.
  EXPECT_LE(hier.wan_messages, naive.wan_messages);
}

TEST_P(RandomStress, OptimalDominatesOnSampledInstances) {
  Rng rng = Rng::stream(GetParam(), 0xD00D);
  const std::size_t n = static_cast<std::size_t>(rng.between(2, 5));
  const auto inst = exp::sample_instance(exp::ParamRanges::paper(), n, rng);
  const Time opt = sched::optimal_makespan(inst);
  for (const auto& s : sched::paper_heuristics())
    EXPECT_GE(s.makespan(inst) + 1e-9, opt) << s.name();
}

TEST_P(RandomStress, EvaluatorIdempotentOnReplay) {
  Rng rng = Rng::stream(GetParam(), 0xFACE);
  const auto inst = exp::sample_instance(exp::ParamRanges::paper(), 12, rng);
  const auto order = sched::bottomup_order(inst);
  const auto a = sched::evaluate_order(inst, order);
  const auto b = sched::evaluate_order(inst, order);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStress,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace gridcast
