#include "collective/bcast.hpp"

#include <gtest/gtest.h>

#include "plogp/collective_predict.hpp"

namespace gridcast::collective {
namespace {

/// One homogeneous cluster with zero overheads: executor timings must
/// match the analytic predictors *exactly*.
plogp::Params bare_params(Time L, Time g0, double bw) {
  plogp::Params p;
  p.L = L;
  p.g = plogp::GapFunction::affine(g0, bw);
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(0.0);
  return p;
}

topology::Grid single_cluster(std::uint32_t nodes) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("c", nodes, bare_params(0.001, 0.01, 1e8));
  return topology::Grid(std::move(cs));
}

std::vector<NodeId> iota_ranks(std::uint32_t n) {
  std::vector<NodeId> r(n);
  for (std::uint32_t i = 0; i < n; ++i) r[i] = i;
  return r;
}

TEST(Bcast, SingleRankIsInstant) {
  const auto grid = single_cluster(1);
  sim::Network net(grid, {}, 1);
  const auto r = run_binomial_bcast(net, {0}, MiB(1));
  EXPECT_DOUBLE_EQ(r.completion, 0.0);
  EXPECT_EQ(r.messages, 0u);
}

class BcastMatchesPredictor
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Bytes>> {};

TEST_P(BcastMatchesPredictor, Binomial) {
  const auto [n, m] = GetParam();
  const auto grid = single_cluster(n);
  const auto p = grid.cluster(0).intra();
  sim::Network net(grid, {}, 1);
  const auto r = run_binomial_bcast(net, iota_ranks(n), m);
  EXPECT_NEAR(r.completion, plogp::predict_binomial_bcast(p, n, m), 1e-12);
  EXPECT_EQ(r.messages, n - 1);
}

TEST_P(BcastMatchesPredictor, Flat) {
  const auto [n, m] = GetParam();
  const auto grid = single_cluster(n);
  const auto p = grid.cluster(0).intra();
  sim::Network net(grid, {}, 1);
  const auto r = run_flat_bcast(net, iota_ranks(n), m);
  EXPECT_NEAR(r.completion, plogp::predict_flat_bcast(p, n, m), 1e-12);
}

TEST_P(BcastMatchesPredictor, Chain) {
  const auto [n, m] = GetParam();
  const auto grid = single_cluster(n);
  const auto p = grid.cluster(0).intra();
  sim::Network net(grid, {}, 1);
  const auto r = run_chain_bcast(net, iota_ranks(n), m);
  EXPECT_NEAR(r.completion, plogp::predict_chain_bcast(p, n, m), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BcastMatchesPredictor,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 8u, 13u, 16u, 31u),
                       ::testing::Values(Bytes{1000}, KiB(64), MiB(1))));

TEST(Bcast, SegmentedChainMatchesPredictor) {
  const std::uint32_t n = 8;
  const Bytes m = MiB(1);
  const Bytes seg = KiB(64);
  const auto grid = single_cluster(n);
  const auto p = grid.cluster(0).intra();
  sim::Network net(grid, {}, 1);
  const auto r = run_segmented_chain_bcast(net, iota_ranks(n), m, seg);
  EXPECT_NEAR(r.completion,
              plogp::predict_segmented_chain_bcast(p, n, m, seg), 1e-9);
}

TEST(Bcast, SegmentedChainBeatsChainOnLargeMessages) {
  // Pipelining wins when the per-message overhead is small relative to a
  // segment's wire time (the realistic regime: 10 us setup, 64 KiB
  // segments at ~0.6 ms each).
  const std::uint32_t n = 12;
  std::vector<topology::Cluster> cs;
  cs.emplace_back("c", n, bare_params(0.001, 0.00001, 1e8));
  const topology::Grid grid(std::move(cs));
  sim::Network a(grid, {}, 1), b(grid, {}, 1);
  const Time chain = run_chain_bcast(a, iota_ranks(n), MiB(4)).completion;
  const Time seg =
      run_segmented_chain_bcast(b, iota_ranks(n), MiB(4), KiB(64)).completion;
  EXPECT_LT(seg, chain);
}

TEST(Bcast, DeliveredTimesAreMonotoneAlongChain) {
  const std::uint32_t n = 6;
  const auto grid = single_cluster(n);
  sim::Network net(grid, {}, 1);
  const auto r = run_chain_bcast(net, iota_ranks(n), KiB(64));
  for (std::uint32_t i = 1; i < n; ++i)
    EXPECT_GT(r.delivered[i], r.delivered[i - 1]);
}

TEST(Bcast, BinomialDeliversEveryRankOnce) {
  const std::uint32_t n = 16;
  const auto grid = single_cluster(n);
  sim::Network net(grid, {}, 1);
  const auto r = run_binomial_bcast(net, iota_ranks(n), KiB(4));
  for (std::uint32_t i = 1; i < n; ++i) {
    EXPECT_GT(r.delivered[i], 0.0) << "rank " << i << " never delivered";
    EXPECT_LE(r.delivered[i], r.completion);
  }
}

TEST(Bcast, CompletionIsMaxDelivery) {
  const std::uint32_t n = 9;
  const auto grid = single_cluster(n);
  sim::Network net(grid, {}, 1);
  const auto r = run_flat_bcast(net, iota_ranks(n), KiB(16));
  Time max_d = 0.0;
  for (const Time d : r.delivered) max_d = std::max(max_d, d);
  EXPECT_DOUBLE_EQ(r.completion, max_d);
}

TEST(Bcast, EmptyRankSetRejected) {
  const auto grid = single_cluster(2);
  sim::Network net(grid, {}, 1);
  EXPECT_THROW((void)run_binomial_bcast(net, {}, 100), LogicError);
}

}  // namespace
}  // namespace gridcast::collective
