#include <gtest/gtest.h>

#include "collective/bcast.hpp"
#include "sched/evaluate.hpp"
#include "sched/instance.hpp"
#include "sched/registry.hpp"

namespace gridcast::collective {
namespace {

plogp::Params bare(Time L, Time g0, double bw) {
  plogp::Params p;
  p.L = L;
  p.g = plogp::GapFunction::affine(g0, bw);
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(0.0);
  return p;
}

/// Three clusters with zero-overhead parameters: the executor must equal
/// the analytic evaluator under the after-last-send completion model.
topology::Grid bare_grid() {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 4, bare(us(50), us(10), 1e8));
  cs.emplace_back("b", 3, bare(us(60), us(10), 1e8));
  cs.emplace_back("c", 5, bare(us(40), us(10), 1e8));
  topology::Grid g(std::move(cs));
  g.set_link_symmetric(0, 1, bare(ms(10), us(100), 2e6));
  g.set_link_symmetric(0, 2, bare(ms(6), us(100), 4e6));
  g.set_link_symmetric(1, 2, bare(ms(8), us(100), 3e6));
  return g;
}

TEST(Hierarchical, MatchesAnalyticEvaluatorExactly) {
  const topology::Grid grid = bare_grid();
  const Bytes m = MiB(1);
  const auto inst = sched::Instance::from_grid(grid, 0, m);
  for (const auto& s : sched::paper_heuristics()) {
    const sched::SendOrder order = s.order(inst);
    const Time predicted =
        evaluate_order(inst, order, sched::CompletionModel::kAfterLastSend)
            .makespan;
    sim::Network net(grid, {}, 1);
    const Time measured =
        run_hierarchical_bcast(net, 0, order, m).completion;
    EXPECT_NEAR(measured, predicted, 1e-9) << s.name();
  }
}

TEST(Hierarchical, DeliversEveryRank) {
  const topology::Grid grid = bare_grid();
  const Bytes m = KiB(256);
  const auto inst = sched::Instance::from_grid(grid, 0, m);
  const auto order = sched::Scheduler("ECEF-LA").order(inst);
  sim::Network net(grid, {}, 1);
  const auto r = run_hierarchical_bcast(net, 0, order, m);
  ASSERT_EQ(r.delivered.size(), grid.total_nodes());
  for (NodeId rank = 1; rank < grid.total_nodes(); ++rank)
    EXPECT_GT(r.delivered[rank], 0.0) << "rank " << rank;
}

TEST(Hierarchical, MessageCountIsRanksMinusOne) {
  // One payload per rank: clusters-1 inter messages + (size-1) intra per
  // cluster = total_nodes - 1.
  const topology::Grid grid = bare_grid();
  const Bytes m = KiB(64);
  const auto inst = sched::Instance::from_grid(grid, 0, m);
  const auto order = sched::Scheduler("ECEF").order(inst);
  sim::Network net(grid, {}, 1);
  const auto r = run_hierarchical_bcast(net, 0, order, m);
  EXPECT_EQ(r.messages, grid.total_nodes() - 1);
}

TEST(Hierarchical, NonZeroRootCluster) {
  const topology::Grid grid = bare_grid();
  const Bytes m = KiB(64);
  const auto inst = sched::Instance::from_grid(grid, 2, m);
  const auto order = sched::Scheduler("ECEF").order(inst);
  sim::Network net(grid, {}, 1);
  const auto r = run_hierarchical_bcast(net, 2, order, m);
  const NodeId root_rank = grid.global_rank(2, 0);
  EXPECT_DOUBLE_EQ(r.delivered[root_rank], 0.0);
  for (NodeId rank = 0; rank < grid.total_nodes(); ++rank)
    if (rank != root_rank) {
      EXPECT_GT(r.delivered[rank], 0.0);
    }
}

TEST(Hierarchical, LocalFirstDelaysDownstreamClusters) {
  const topology::Grid grid = bare_grid();
  const Bytes m = MiB(1);
  const auto inst = sched::Instance::from_grid(grid, 0, m);
  const auto order = sched::Scheduler("ECEF").order(inst);

  sim::Network relay_net(grid, {}, 1);
  const auto relay =
      run_hierarchical_bcast(relay_net, 0, order, m, IntraOrder::kRelayFirst);
  sim::Network local_net(grid, {}, 1);
  const auto local =
      run_hierarchical_bcast(local_net, 0, order, m, IntraOrder::kLocalFirst);

  // Remote coordinators receive later when the root plays local-first.
  const NodeId remote_coord = grid.global_rank(1, 0);
  EXPECT_GT(local.delivered[remote_coord], relay.delivered[remote_coord]);
  // And the root's own cluster members receive earlier.
  const NodeId local_member = grid.global_rank(0, 1);
  EXPECT_LT(local.delivered[local_member], relay.delivered[local_member]);
}

TEST(Hierarchical, JitterChangesButApproximatesCleanRun) {
  const topology::Grid grid = bare_grid();
  const Bytes m = MiB(1);
  const auto inst = sched::Instance::from_grid(grid, 0, m);
  const auto order = sched::Scheduler("ECEF").order(inst);

  sim::Network clean(grid, {}, 1);
  const Time base = run_hierarchical_bcast(clean, 0, order, m).completion;
  sim::Network noisy(grid, {0.05}, 7);
  const Time jittered = run_hierarchical_bcast(noisy, 0, order, m).completion;
  EXPECT_NE(jittered, base);
  EXPECT_NEAR(jittered, base, base * 0.3);
}

TEST(Hierarchical, WrongOrderSizeRejected) {
  const topology::Grid grid = bare_grid();
  sim::Network net(grid, {}, 1);
  EXPECT_THROW((void)run_hierarchical_bcast(net, 0, {{0, 1}}, KiB(1)),
               LogicError);
}

TEST(GridUnawareBinomial, CoversAllRanksAndLosesToGridAware) {
  const topology::Grid grid = bare_grid();
  const Bytes m = MiB(1);
  sim::Network lam_net(grid, {}, 1);
  const auto lam = run_grid_unaware_binomial(lam_net, 0, m);
  ASSERT_EQ(lam.delivered.size(), 12u);
  EXPECT_EQ(lam.messages, 11u);

  const auto inst = sched::Instance::from_grid(grid, 0, m);
  const auto order =
      sched::Scheduler("ECEF-LA").order(inst);
  sim::Network aware_net(grid, {}, 1);
  const auto aware = run_hierarchical_bcast(aware_net, 0, order, m);
  // The rank-ordered binomial crosses the WAN repeatedly; the scheduled
  // hierarchical broadcast crosses each WAN link once.
  EXPECT_GT(lam.completion, aware.completion);
}

}  // namespace
}  // namespace gridcast::collective
