#include "collective/scatter.hpp"

#include <gtest/gtest.h>

#include "topology/grid5000.hpp"

namespace gridcast::collective {
namespace {

plogp::Params bare(Time L, Time g0, double bw) {
  plogp::Params p;
  p.L = L;
  p.g = plogp::GapFunction::affine(g0, bw);
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(0.0);
  return p;
}

topology::Grid two_sites() {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("near", 4, bare(us(50), us(10), 1e8));
  cs.emplace_back("far", 6, bare(us(50), us(10), 1e8));
  topology::Grid g(std::move(cs));
  g.set_link_symmetric(0, 1, bare(ms(12), us(100), 2e6));
  return g;
}

TEST(Scatter, NaiveDeliversEveryRank) {
  const auto grid = two_sites();
  sim::Network net(grid, {}, 1);
  const auto r = run_naive_scatter(net, 0, KiB(64));
  ASSERT_EQ(r.delivered.size(), 10u);
  for (NodeId i = 1; i < 10; ++i) EXPECT_GT(r.delivered[i], 0.0);
  EXPECT_EQ(r.messages, 9u);
}

TEST(Scatter, HierarchicalDeliversEveryRank) {
  const auto grid = two_sites();
  sim::Network net(grid, {}, 1);
  const auto r = run_hierarchical_scatter(net, 0, KiB(64));
  for (NodeId i = 1; i < 10; ++i) EXPECT_GT(r.delivered[i], 0.0);
  // 1 aggregated WAN send + 5 remote-local + 3 root-local = 9.
  EXPECT_EQ(r.messages, 9u);
}

TEST(Scatter, WanMessageCollapse) {
  // The headline property of the grid-aware variant: WAN message count
  // drops from one-per-remote-rank to one-per-remote-cluster.
  const auto grid = two_sites();
  sim::Network n1(grid, {}, 1);
  const auto naive = run_naive_scatter(n1, 0, KiB(16));
  sim::Network n2(grid, {}, 1);
  const auto hier = run_hierarchical_scatter(n2, 0, KiB(16));
  EXPECT_EQ(naive.wan_messages, 6u);  // every "far" rank individually
  EXPECT_EQ(hier.wan_messages, 1u);   // one aggregate
  // WAN bytes are identical: aggregation does not inflate the payload.
  EXPECT_EQ(naive.wan_bytes, hier.wan_bytes);
}

TEST(Scatter, HierarchicalCrossesWanOnce) {
  // Byte accounting: naive moves block bytes per rank; hierarchical moves
  // the remote cluster's blocks twice (root->coord, coord->members) but
  // across the WAN only once.
  const auto grid = two_sites();
  const Bytes block = KiB(64);
  sim::Network n1(grid, {}, 1);
  const auto naive = run_naive_scatter(n1, 0, block);
  sim::Network n2(grid, {}, 1);
  const auto hier = run_hierarchical_scatter(n2, 0, block);
  EXPECT_EQ(naive.bytes, 9u * block);
  EXPECT_EQ(hier.bytes, (6u + 5u + 3u) * block);
}

TEST(Scatter, HierarchicalWinsWhenWanDominates) {
  // Six WAN messages (naive) vs one aggregated WAN message + LAN fanout.
  // With a slow WAN and per-message setup cost, aggregation wins.
  const auto grid = two_sites();
  const Bytes block = KiB(256);
  sim::Network n1(grid, {}, 1);
  const Time naive = run_naive_scatter(n1, 0, block).completion;
  sim::Network n2(grid, {}, 1);
  const Time hier = run_hierarchical_scatter(n2, 0, block).completion;
  // The WAN carries the same 6 blocks either way, but naive also pays the
  // root-side serialization of the 3 local sends after them; aggregation
  // overlaps the remote fanout with the root's local sends.
  EXPECT_LT(hier, naive * 1.05);
}

TEST(Scatter, SingleClusterVariantsCoincide) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("only", 5, bare(us(50), us(10), 1e8));
  const topology::Grid grid(std::move(cs));
  sim::Network n1(grid, {}, 1);
  const auto naive = run_naive_scatter(n1, 0, KiB(16));
  sim::Network n2(grid, {}, 1);
  const auto hier = run_hierarchical_scatter(n2, 0, KiB(16));
  EXPECT_DOUBLE_EQ(naive.completion, hier.completion);
  EXPECT_EQ(naive.messages, hier.messages);
}

TEST(Scatter, Grid5000SpeedupIsSubstantial) {
  const auto grid = topology::grid5000_testbed();
  const Bytes block = KiB(64);
  sim::Network n1(grid, {}, 1);
  const Time naive = run_naive_scatter(n1, 0, block).completion;
  sim::Network n2(grid, {}, 1);
  const Time hier = run_hierarchical_scatter(n2, 0, block).completion;
  // 57 WAN sends collapse to 5 aggregated ones.
  EXPECT_LT(hier, naive);
}

TEST(Scatter, RootClusterOutOfRangeRejected) {
  const auto grid = two_sites();
  sim::Network net(grid, {}, 1);
  EXPECT_THROW((void)run_naive_scatter(net, 7, KiB(1)), LogicError);
  EXPECT_THROW((void)run_hierarchical_scatter(net, 7, KiB(1)), LogicError);
}

}  // namespace
}  // namespace gridcast::collective
