#include "collective/alltoall.hpp"

#include <gtest/gtest.h>

namespace gridcast::collective {
namespace {

plogp::Params bare(Time L, Time g0, double bw) {
  plogp::Params p;
  p.L = L;
  p.g = plogp::GapFunction::affine(g0, bw);
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(0.0);
  return p;
}

topology::Grid two_sites(std::uint32_t a, std::uint32_t b) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", a, bare(us(50), us(10), 1e8));
  cs.emplace_back("b", b, bare(us(50), us(10), 1e8));
  topology::Grid g(std::move(cs));
  g.set_link_symmetric(0, 1, bare(ms(12), us(200), 2e6));
  return g;
}

TEST(Alltoall, NaiveMessageCount) {
  const auto grid = two_sites(3, 2);
  sim::Network net(grid, {}, 1);
  const auto r = run_naive_alltoall(net, KiB(4));
  EXPECT_EQ(r.messages, 5u * 4u);  // N(N-1)
  for (const Time t : r.completed) EXPECT_GT(t, 0.0);
}

TEST(Alltoall, NaiveBytesAccounting) {
  const auto grid = two_sites(3, 2);
  sim::Network net(grid, {}, 1);
  const Bytes block = KiB(4);
  const auto r = run_naive_alltoall(net, block);
  EXPECT_EQ(r.bytes, 20u * block);
}

TEST(Alltoall, HierarchicalCompletesEveryRank) {
  const auto grid = two_sites(4, 3);
  sim::Network net(grid, {}, 1);
  const auto r = run_hierarchical_alltoall(net, KiB(4));
  ASSERT_EQ(r.completed.size(), 7u);
  for (const Time t : r.completed) EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(
      r.completion,
      *std::max_element(r.completed.begin(), r.completed.end()));
}

TEST(Alltoall, HierarchicalMessageCount) {
  // Clusters (4, 3): intra 4*3 + 3*2 = 18; gathers (4-1)+(3-1) = 5;
  // coordinator aggregates 2; deliveries (4-1)+(3-1) = 5.  Total 30.
  const auto grid = two_sites(4, 3);
  sim::Network net(grid, {}, 1);
  const auto r = run_hierarchical_alltoall(net, KiB(4));
  EXPECT_EQ(r.messages, 30u);
}

TEST(Alltoall, HierarchicalSendsFewerWanMessagesThanNaive) {
  // Naive crosses the WAN size_a * size_b * 2 = 24 times; hierarchical
  // exactly twice (one aggregate each way).
  const auto grid = two_sites(4, 3);
  sim::Network n1(grid, {}, 1);
  const auto naive = run_naive_alltoall(n1, KiB(4));
  sim::Network n2(grid, {}, 1);
  const auto hier = run_hierarchical_alltoall(n2, KiB(4));
  EXPECT_EQ(naive.messages, 42u);
  EXPECT_EQ(naive.wan_messages, 24u);
  EXPECT_EQ(hier.wan_messages, 2u);
  // Aggregates carry exactly the cross-cluster blocks: no inflation.
  EXPECT_EQ(naive.wan_bytes, hier.wan_bytes);
  EXPECT_LT(hier.messages, naive.messages);
}

TEST(Alltoall, HierarchicalWinsWhenPerMessageWanCostDominates) {
  // Aggregation pays off when the per-message WAN cost dwarfs the bytes:
  // with 2 ms setup per WAN message and 64-byte blocks, each rank's six
  // serialized crossings (12 ms on its NIC) lose to one aggregate.
  std::vector<topology::Cluster> cs;
  cs.emplace_back("a", 6, bare(us(50), us(10), 1e8));
  cs.emplace_back("b", 6, bare(us(50), us(10), 1e8));
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1, bare(ms(12), ms(2), 1e7));

  const Bytes block = 64;
  sim::Network n1(grid, {}, 1);
  const Time naive = run_naive_alltoall(n1, block).completion;
  sim::Network n2(grid, {}, 1);
  const Time hier = run_hierarchical_alltoall(n2, block).completion;
  EXPECT_LT(hier, naive);
}

TEST(Alltoall, NaiveWinsWhenBandwidthDominates) {
  // The converse regime: large blocks on a bandwidth-limited WAN.  The
  // aggregate serializes all cross traffic through one coordinator NIC,
  // while naive spreads it over every rank's NIC.  Documents that the
  // grid-aware variant is a message-count optimisation, not a universal
  // win - matching the paper's framing of scatter/alltoall as future work.
  const auto grid = two_sites(6, 6);
  const Bytes block = KiB(64);
  sim::Network n1(grid, {}, 1);
  const Time naive = run_naive_alltoall(n1, block).completion;
  sim::Network n2(grid, {}, 1);
  const Time hier = run_hierarchical_alltoall(n2, block).completion;
  EXPECT_GT(hier, naive);
}

TEST(Alltoall, SingleClusterDegeneratesToDirectExchange) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("only", 4, bare(us(50), us(10), 1e8));
  const topology::Grid grid(std::move(cs));
  sim::Network n1(grid, {}, 1);
  const auto naive = run_naive_alltoall(n1, KiB(4));
  sim::Network n2(grid, {}, 1);
  const auto hier = run_hierarchical_alltoall(n2, KiB(4));
  EXPECT_EQ(naive.messages, hier.messages);
  EXPECT_DOUBLE_EQ(naive.completion, hier.completion);
}

TEST(Alltoall, SingletonClustersWork) {
  const auto grid = two_sites(1, 1);
  sim::Network net(grid, {}, 1);
  const auto r = run_hierarchical_alltoall(net, KiB(4));
  EXPECT_EQ(r.messages, 2u);  // one aggregate each way
  for (const Time t : r.completed) EXPECT_GT(t, 0.0);
}

TEST(Alltoall, SingleRankIsInstant) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("solo", 1, bare(us(50), us(10), 1e8));
  const topology::Grid grid(std::move(cs));
  sim::Network n1(grid, {}, 1);
  EXPECT_DOUBLE_EQ(run_naive_alltoall(n1, KiB(4)).completion, 0.0);
  sim::Network n2(grid, {}, 1);
  EXPECT_DOUBLE_EQ(run_hierarchical_alltoall(n2, KiB(4)).completion, 0.0);
}

}  // namespace
}  // namespace gridcast::collective
