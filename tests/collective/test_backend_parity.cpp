// Backend parity: the analytic "plogp" backend and the executing "sim"
// backend are two views of the same cost model, and the closed-form pLogP
// algorithm predictions agree with their executed counterparts.  This is
// the invariant that lets `--backend=plogp` forecast `--backend=sim`
// (Fig. 5 forecasting Fig. 6), and it is what makes the backend swap in
// the sweep harness a semantics-preserving refactor.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "collective/backends.hpp"
#include "collective/bcast.hpp"
#include "exp/race_cli.hpp"
#include "exp/realise.hpp"
#include "plogp/collective_predict.hpp"
#include "sched/registry.hpp"
#include "support/rng.hpp"
#include "topology/grid5000.hpp"

namespace gridcast {
namespace {

plogp::Params lan_params(Time L, double bw, Time overhead) {
  plogp::Params p;
  p.L = L;
  p.g = plogp::GapFunction::affine(us(10), bw);
  // os must stay under g(m) (pLogP invariant); it is charged by neither
  // side here, so zero keeps the parity algebra clean.
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(overhead);
  return p;
}

topology::Grid one_cluster_grid(std::uint32_t nodes, Time overhead) {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("c0", nodes, lan_params(us(50), 1e8, overhead));
  topology::Grid grid(std::move(cs));
  grid.validate();
  return grid;
}

std::vector<NodeId> all_ranks(std::uint32_t nodes) {
  std::vector<NodeId> ranks(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) ranks[i] = i;
  return ranks;
}

// ------------------------- closed-form algorithms vs executed algorithms

TEST(PrimitiveParity, FlatBcastMatchesClosedFormExactly) {
  // Flat tree: both sides charge (n-1)·g + L + or for the last rank, so
  // the executed run must hit the closed form to float precision — even
  // with non-zero overheads.
  for (const std::uint32_t nodes : {2u, 5u, 16u}) {
    const topology::Grid grid = one_cluster_grid(nodes, us(20));
    sim::Network net(grid, {}, 1);
    const Time run =
        collective::run_flat_bcast(net, all_ranks(nodes), MiB(1)).completion;
    const Time predicted =
        plogp::predict_flat_bcast(grid.cluster(0).intra(), nodes, MiB(1));
    EXPECT_NEAR(run, predicted, 1e-9) << nodes << " nodes";
  }
}

TEST(PrimitiveParity, ChainBcastMatchesClosedFormWithZeroOverheads) {
  // Chain: the closed form charges the receive overhead once at the end;
  // the executor pays it per store-and-forward hop.  With zero overheads
  // the two coincide exactly; with overheads they diverge by exactly
  // (n-2)·or — assert both so the residual stays understood.
  const Bytes m = KiB(512);
  for (const std::uint32_t nodes : {2u, 4u, 9u}) {
    const topology::Grid bare = one_cluster_grid(nodes, 0.0);
    sim::Network net(bare, {}, 1);
    const Time run =
        collective::run_chain_bcast(net, all_ranks(nodes), m).completion;
    const Time predicted =
        plogp::predict_chain_bcast(bare.cluster(0).intra(), nodes, m);
    EXPECT_NEAR(run, predicted, 1e-9) << nodes << " nodes";
  }
  const std::uint32_t nodes = 6;
  const Time overhead = us(40);
  const topology::Grid grid = one_cluster_grid(nodes, overhead);
  sim::Network net(grid, {}, 1);
  const Time run =
      collective::run_chain_bcast(net, all_ranks(nodes), m).completion;
  const Time predicted =
      plogp::predict_chain_bcast(grid.cluster(0).intra(), nodes, m);
  EXPECT_NEAR(run - predicted, (nodes - 2) * overhead, 1e-9);
}

TEST(PrimitiveParity, BinomialBcastMatchesClosedFormExactly) {
  // The executor's recursive split mirrors predict_binomial_bcast's; both
  // charge g + L + or per hop, so agreement is exact even with overheads.
  for (const std::uint32_t nodes : {2u, 7u, 32u}) {
    const topology::Grid grid = one_cluster_grid(nodes, us(20));
    sim::Network net(grid, {}, 1);
    const Time run =
        collective::run_binomial_bcast(net, all_ranks(nodes), MiB(2))
            .completion;
    const Time predicted =
        plogp::predict_binomial_bcast(grid.cluster(0).intra(), nodes, MiB(2));
    EXPECT_NEAR(run, predicted, 1e-9) << nodes << " nodes";
  }
}

// ----------------------------------- backend-level completions agreement

plogp::Params bare(Time L, Time g0, double bw) {
  plogp::Params p;
  p.L = L;
  p.g = plogp::GapFunction::affine(g0, bw);
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(0.0);
  return p;
}

topology::Grid random_bare_grid(std::uint64_t seed, std::uint32_t clusters) {
  Rng rng = Rng::stream(seed, 0xFACE);
  std::vector<topology::Cluster> cs;
  for (std::uint32_t c = 0; c < clusters; ++c) {
    const auto size = static_cast<std::uint32_t>(rng.between(1, 8));
    cs.emplace_back("c" + std::to_string(c), size,
                    bare(rng.uniform(us(20), us(100)), us(10),
                         rng.uniform(5e7, 2e8)));
  }
  topology::Grid grid(std::move(cs));
  for (ClusterId i = 0; i < clusters; ++i)
    for (ClusterId j = static_cast<ClusterId>(i + 1); j < clusters; ++j)
      grid.set_link_symmetric(
          i, j,
          bare(rng.uniform(ms(1), ms(20)), us(100), rng.uniform(1e6, 1e7)));
  grid.validate();
  return grid;
}

TEST(BackendParity, ZeroOverheadCompletionsAgreeExactly) {
  // With zero-overhead parameters, no jitter and the after-last-send
  // completion model (the executor's NIC semantics), predictor and
  // executor are the same number.
  sched::HeuristicOptions opts;
  opts.completion = sched::CompletionModel::kAfterLastSend;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const topology::Grid grid = random_bare_grid(seed, 5);
    const collective::SimBackend sim(grid);
    const collective::PlogpBackend plogp;
    const auto inst = sched::Instance::from_grid(grid, 0, MiB(1));
    for (const std::string_view name : {"FlatTree", "ECEF-LAT", "BottomUp"}) {
      const auto entry = sched::registry().make(name, opts);
      const sched::SchedulerRuntimeInfo info(inst, MiB(1), opts.completion);
      EXPECT_NEAR(sim.bcast(*entry, info, seed).completion,
                  plogp.bcast(*entry, info, seed).completion, 1e-9)
          << name << " on seed " << seed;
    }
  }
}

TEST(BackendParity, Grid5000CompletionsAgreeWithinOverheadResidual) {
  // On the real testbed parameters the executor additionally pays receive
  // overheads the scheduling model omits (by design — see sim/network.hpp),
  // so the backends agree within a small relative residual, not exactly.
  sched::HeuristicOptions opts;
  opts.completion = sched::CompletionModel::kAfterLastSend;
  const topology::Grid grid = topology::grid5000_testbed();
  const collective::SimBackend sim(grid);
  const collective::PlogpBackend plogp;
  for (const Bytes m : {KiB(256), MiB(1), MiB(4)}) {
    const auto inst = sched::Instance::from_grid(grid, 0, m);
    for (const std::string_view name : {"FlatTree", "ECEF-LAT"}) {
      const auto entry = sched::registry().make(name, opts);
      const sched::SchedulerRuntimeInfo info(inst, m, opts.completion);
      const Time measured = sim.bcast(*entry, info, 1).completion;
      const Time predicted = plogp.bcast(*entry, info, 1).completion;
      EXPECT_NEAR(measured, predicted, 0.05 * predicted)
          << name << " at " << m << " bytes";
    }
  }
}

// ------------------------- scatter / alltoall: the verb parity wall
//
// The closed-form pLogP scatter and alltoall predictions must match the
// executed algorithms exactly on zero-overhead grids (the analytic model
// omits only the receive overhead) and within the same ≤5% residual the
// broadcast parity enforces on the realistic testbed — across schedules
// and across the intra-cluster algorithm zoo (flat/chain/binomial, which
// change T_c and therefore the orders the schedulers pick).

/// Fold an executing backend's per-rank delivery vector to per-cluster
/// finish times, the granularity the analytic backend reports.
std::vector<Time> per_cluster(const topology::Grid& grid,
                              const collective::CollectiveResult& r) {
  std::vector<Time> finish(grid.cluster_count(), 0.0);
  for (NodeId rank = 0; rank < r.delivered.size(); ++rank)
    finish[grid.locate(rank).first] =
        std::max(finish[grid.locate(rank).first], r.delivered[rank]);
  return finish;
}

void expect_verb_parity(const topology::Grid& grid,
                        const sched::SchedulerEntry& entry, Bytes block,
                        const std::string& label) {
  const collective::SimBackend sim(grid);
  const collective::PlogpBackend plogp(&grid);
  for (const collective::Verb verb :
       {collective::Verb::kScatter, collective::Verb::kAlltoall}) {
    const collective::CollectiveResult run =
        verb == collective::Verb::kScatter ? sim.scatter(entry, 0, block, 1)
                                           : sim.alltoall(entry, block, 1);
    const collective::CollectiveResult predicted =
        verb == collective::Verb::kScatter
            ? plogp.scatter(entry, 0, block, 1)
            : plogp.alltoall(entry, block, 1);
    const std::string what =
        label + " " + std::string(collective::verb_name(verb));
    EXPECT_NEAR(run.completion, predicted.completion, 1e-9) << what;
    const std::vector<Time> executed = per_cluster(grid, run);
    ASSERT_EQ(predicted.delivered.size(), executed.size()) << what;
    for (ClusterId c = 0; c < executed.size(); ++c)
      EXPECT_NEAR(executed[c], predicted.delivered[c], 1e-9)
          << what << " cluster " << c;
    // The analytic counters mirror the executed accounting exactly.
    EXPECT_EQ(run.messages, predicted.messages) << what;
    EXPECT_EQ(run.wan_messages, predicted.wan_messages) << what;
    EXPECT_EQ(run.bytes, predicted.bytes) << what;
    EXPECT_EQ(run.wan_bytes, predicted.wan_bytes) << what;
  }
}

TEST(VerbParity, ZeroOverheadCompletionsAgreeExactly) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const topology::Grid grid = random_bare_grid(seed, 5);
    for (const std::string_view name : {"FlatTree", "ECEF-LAT", "BottomUp"}) {
      const auto entry = sched::registry().make(name);
      expect_verb_parity(grid, *entry, MiB(1),
                         "seed " + std::to_string(seed) + " " +
                             std::string(name));
    }
  }
}

TEST(VerbParity, IntraAlgorithmZooStaysExact) {
  // Flat/chain/binomial intra broadcasts give each cluster a different
  // T_c, which reshuffles the schedulers' injection orders — parity must
  // hold for every resulting schedule.
  for (const auto algo :
       {plogp::BcastAlgorithm::kFlat, plogp::BcastAlgorithm::kChain,
        plogp::BcastAlgorithm::kBinomial}) {
    topology::Grid grid = random_bare_grid(11, 6);
    for (ClusterId c = 0; c < grid.cluster_count(); ++c)
      grid.cluster(c).set_algorithm(algo);
    for (const std::string_view name : {"FlatTree", "ECEF-LAT"}) {
      const auto entry = sched::registry().make(name);
      expect_verb_parity(grid, *entry, KiB(512),
                         std::string(plogp::to_string(algo)) + " " +
                             std::string(name));
    }
  }
}

TEST(VerbParity, SymmetricRealisedGridResolvesTiesLikeTheExecutor) {
  // A fully symmetric grid (every draw identical, realise_instance's
  // two-rank shape) makes every gather, injection and arrival collide at
  // identical timestamps — the analytic resolution must break those ties
  // exactly as the simulator's (time, issue-sequence) calendar does.
  const std::size_t n = 4;
  const sched::Instance inst(0, SquareMatrix<Time>(n, 0.25),
                             SquareMatrix<Time>(n, 0.125),
                             std::vector<Time>(n, 0.5));
  const topology::Grid grid = exp::realise_instance(inst);
  for (const std::string_view name : {"FlatTree", "ECEF-LAT", "BottomUp"}) {
    const auto entry = sched::registry().make(name);
    expect_verb_parity(grid, *entry, MiB(2), "realised " + std::string(name));
  }
}

TEST(VerbParity, Grid5000CompletionsAgreeWithinOverheadResidual) {
  // Same contract as the broadcast residual test: the executor pays the
  // receive overheads the model omits, so realistic parameters agree to a
  // few percent, not exactly.
  const topology::Grid grid = topology::grid5000_testbed();
  const collective::SimBackend sim(grid);
  const collective::PlogpBackend plogp(&grid);
  for (const Bytes block : {KiB(64), KiB(256)}) {
    for (const std::string_view name : {"FlatTree", "ECEF-LAT"}) {
      const auto entry = sched::registry().make(name);
      const Time s_run = sim.scatter(*entry, 0, block, 1).completion;
      const Time s_pred = plogp.scatter(*entry, 0, block, 1).completion;
      EXPECT_NEAR(s_run, s_pred, 0.05 * s_pred)
          << name << " scatter at " << block;
      const Time a_run = sim.alltoall(*entry, block, 1).completion;
      const Time a_pred = plogp.alltoall(*entry, block, 1).completion;
      EXPECT_NEAR(a_run, a_pred, 0.05 * a_pred)
          << name << " alltoall at " << block;
    }
  }
}

// --------------------------------------- report-level byte compatibility

std::string run_cli_to_string(const std::vector<std::string>& args) {
  const exp::RaceCli cli = exp::parse_race_cli(args);
  std::ostringstream out, err;
  EXPECT_EQ(exp::run_race_cli(cli, out, err), 0);
  return out.str();
}

TEST(BackendParity, BackendFlagReportsAreByteIdenticalToModeFlagReports) {
  const std::vector<std::string> common = {
      "--sched=FlatTree,ECEF-LAT", "--sizes=256K,1M", "--seed=5",
      "--jitter=0.1", "--root=1"};
  auto with = [&](const std::string& flag) {
    std::vector<std::string> args = common;
    args.push_back(flag);
    return run_cli_to_string(args);
  };
  // The old mode spellings and the new backend names are one code path.
  EXPECT_EQ(with("--backend=sim"), with("--mode=measured"));
  EXPECT_EQ(with("--backend=plogp"), with("--mode=predicted"));
  // The report's mode field stays the legacy vocabulary.
  EXPECT_NE(with("--backend=sim").find("\"mode\": \"measured\""),
            std::string::npos);
  EXPECT_NE(with("--backend=plogp").find("\"mode\": \"predicted\""),
            std::string::npos);
}

}  // namespace
}  // namespace gridcast
