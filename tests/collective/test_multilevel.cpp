#include "collective/multilevel.hpp"

#include <gtest/gtest.h>

#include "sched/instance.hpp"
#include "sched/registry.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::collective {
namespace {

plogp::Params bare(Time L, Time g0, double bw) {
  plogp::Params p;
  p.L = L;
  p.g = plogp::GapFunction::affine(g0, bw);
  p.os = plogp::GapFunction::constant(0.0);
  p.orecv = plogp::GapFunction::constant(0.0);
  return p;
}

/// Two sites, two clusters each: LAN inside a site, WAN across.
topology::Grid two_site_grid() {
  std::vector<topology::Cluster> cs;
  cs.emplace_back("s0c0", 4, bare(us(50), us(10), 1e8));
  cs.emplace_back("s0c1", 3, bare(us(50), us(10), 1e8));
  cs.emplace_back("s1c0", 5, bare(us(50), us(10), 1e8));
  cs.emplace_back("s1c1", 2, bare(us(50), us(10), 1e8));
  topology::Grid g(std::move(cs));
  const auto lan = bare(us(300), us(50), 8e7);
  const auto wan = bare(ms(12), us(100), 2e6);
  g.set_link_symmetric(0, 1, lan);
  g.set_link_symmetric(2, 3, lan);
  for (ClusterId a : {0u, 1u})
    for (ClusterId b : {2u, 3u}) g.set_link_symmetric(a, b, wan);
  return g;
}

TEST(SiteMap, GroupsByLatencyThreshold) {
  const auto grid = two_site_grid();
  const SiteMap sites = sites_by_latency(grid);
  EXPECT_EQ(sites[0], sites[1]);
  EXPECT_EQ(sites[2], sites[3]);
  EXPECT_NE(sites[0], sites[2]);
}

TEST(SiteMap, ThresholdZeroMakesSingletonSites) {
  const auto grid = two_site_grid();
  const SiteMap sites = sites_by_latency(grid, 0.0);
  EXPECT_NE(sites[0], sites[1]);
  EXPECT_NE(sites[2], sites[3]);
}

TEST(Multilevel, DeliversEveryRankExactlyOnce) {
  const auto grid = two_site_grid();
  sim::Network net(grid, {}, 1);
  const auto r =
      run_multilevel_bcast(net, 0, sites_by_latency(grid), MiB(1));
  ASSERT_EQ(r.delivered.size(), grid.total_nodes());
  for (NodeId rank = 1; rank < grid.total_nodes(); ++rank)
    EXPECT_GT(r.delivered[rank], 0.0) << "rank " << rank;
  EXPECT_EQ(r.messages, grid.total_nodes() - 1);
}

TEST(Multilevel, CrossesWanOncePerRemoteSite) {
  // Level 0 sends exactly one WAN message to the remote site's gateway,
  // so only one transfer pays ~12 ms latency + WAN bandwidth.
  const auto grid = two_site_grid();
  sim::Network net(grid, {}, 1);
  const Bytes m = MiB(1);
  const auto r = run_multilevel_bcast(net, 0, sites_by_latency(grid), m);
  const double wan_time = static_cast<double>(m) / 2e6;
  // Completion is dominated by one WAN crossing plus LAN fanout - far less
  // than two serialized WAN crossings.
  EXPECT_LT(r.completion, 2.0 * wan_time);
  EXPECT_GT(r.completion, wan_time);
}

TEST(Multilevel, BeatsGridUnawareBinomialOnTheTestbed) {
  // On a toy two-site grid the rank-ordered binomial can luck into a
  // near-optimal WAN pattern; on the 88-machine Table 3 testbed its
  // repeated WAN crossings are decisive (the paper's Fig. 6 shows the
  // same for every topology-aware strategy vs "Default LAM").
  const auto grid = topology::grid5000_testbed();
  const Bytes m = MiB(1);
  sim::Network a(grid, {}, 1);
  const Time multi =
      run_multilevel_bcast(a, 0, sites_by_latency(grid), m).completion;
  sim::Network b(grid, {}, 1);
  const Time lam = run_grid_unaware_binomial(b, 0, m).completion;
  EXPECT_LT(multi, lam);
}

TEST(Multilevel, ScheduledHeuristicStillWins) {
  // The paper's point: multi-level flat trees beat naive approaches but
  // lose to scheduled inter-cluster communication on heterogeneous WANs.
  // Make the WAN links heterogeneous so scheduling has something to find.
  std::vector<topology::Cluster> cs;
  for (int i = 0; i < 4; ++i)
    cs.emplace_back("c" + std::to_string(i), 3, bare(us(50), us(10), 1e8));
  topology::Grid grid(std::move(cs));
  grid.set_link_symmetric(0, 1, bare(ms(5), us(100), 8e6));
  grid.set_link_symmetric(0, 2, bare(ms(20), us(100), 1e6));
  grid.set_link_symmetric(0, 3, bare(ms(10), us(100), 3e6));
  grid.set_link_symmetric(1, 2, bare(ms(8), us(100), 5e6));
  grid.set_link_symmetric(1, 3, bare(ms(15), us(100), 2e6));
  grid.set_link_symmetric(2, 3, bare(ms(6), us(100), 6e6));

  const Bytes m = MiB(1);
  // All clusters are their own site here (all links are WAN-class).
  sim::Network a(grid, {}, 1);
  const Time multi =
      run_multilevel_bcast(a, 0, sites_by_latency(grid), m).completion;

  const auto inst = sched::Instance::from_grid(grid, 0, m);
  const auto order =
      sched::Scheduler("ECEF-LA").order(inst);
  sim::Network b(grid, {}, 1);
  const Time scheduled =
      run_hierarchical_bcast(b, 0, order, m).completion;
  EXPECT_LT(scheduled, multi);
}

TEST(Multilevel, SiteMapSizeMismatchRejected) {
  const auto grid = two_site_grid();
  sim::Network net(grid, {}, 1);
  EXPECT_THROW((void)run_multilevel_bcast(net, 0, {0, 1}, MiB(1)),
               LogicError);
}

TEST(Multilevel, Grid5000SitesMatchGeography) {
  const auto grid = topology::grid5000_testbed();
  const SiteMap sites = sites_by_latency(grid);
  // Orsay-A/B one site; IDPOT-A/B/C one site; Toulouse alone.
  EXPECT_EQ(sites[0], sites[1]);
  EXPECT_EQ(sites[2], sites[3]);
  EXPECT_EQ(sites[2], sites[4]);
  EXPECT_NE(sites[0], sites[2]);
  EXPECT_NE(sites[0], sites[5]);
  EXPECT_NE(sites[2], sites[5]);
}

}  // namespace
}  // namespace gridcast::collective
