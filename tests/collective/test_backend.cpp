#include "collective/backend.hpp"

#include <gtest/gtest.h>

#include "collective/backends.hpp"
#include "sched/registry.hpp"
#include "support/error.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::collective {
namespace {

// ---------------------------------------------------------- registry

TEST(BackendRegistry, BuiltinsResolveByNameAndAlias) {
  auto& reg = backend_registry();
  ASSERT_TRUE(reg.contains("sim"));
  ASSERT_TRUE(reg.contains("plogp"));
  // The legacy mode spellings are aliases, resolved case-insensitively.
  EXPECT_TRUE(reg.contains("measured"));
  EXPECT_TRUE(reg.contains("predicted"));
  EXPECT_TRUE(reg.contains("MEASURED"));
  EXPECT_TRUE(reg.contains("Sim"));
  EXPECT_FALSE(reg.contains("mpi"));

  const auto grid = topology::grid5000_testbed();
  BackendOptions opts;
  opts.grid = &grid;
  EXPECT_EQ(reg.make("measured", opts)->name(), "sim");
  EXPECT_EQ(reg.make("predicted")->name(), "plogp");
  EXPECT_EQ(reg.make("Model")->name(), "plogp");

  // resolve() canonicalises without constructing, sharing make()'s
  // unknown-name error.
  EXPECT_EQ(reg.resolve("simulator"), "sim");
  EXPECT_EQ(reg.resolve("PLOGP"), "plogp");
  EXPECT_THROW((void)reg.resolve("mpi"), InvalidInput);
}

TEST(BackendRegistry, NamesPreserveRegistrationOrderAndListAliases) {
  auto& reg = backend_registry();
  const auto names = reg.names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "sim");
  EXPECT_EQ(names[1], "plogp");
  const auto aliases = reg.aliases_of("sim");
  ASSERT_EQ(aliases.size(), 2u);
  EXPECT_EQ(aliases[0], "measured");
  EXPECT_FALSE(reg.description_of("plogp").empty());
  EXPECT_TRUE(reg.aliases_of("nope").empty());
}

TEST(BackendRegistry, UnknownNameThrowsListingAvailable) {
  try {
    (void)backend_registry().make("mpi");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mpi"), std::string::npos);
    EXPECT_NE(what.find("sim"), std::string::npos);
    EXPECT_NE(what.find("plogp"), std::string::npos);
  }
}

TEST(BackendRegistry, DuplicateRegistrationRejected) {
  BackendRegistry reg;
  const auto factory = [](const BackendOptions&) -> BackendPtr {
    return std::make_shared<const PlogpBackend>();
  };
  reg.add("mine", "a test backend", factory, {"alias-a"});
  EXPECT_THROW(reg.add("mine", "again", factory), InvalidInput);
  EXPECT_THROW(reg.add("alias-a", "shadows an alias", factory), InvalidInput);
  EXPECT_THROW(reg.add("fresh", "dup alias", factory, {"alias-a"}),
               InvalidInput);
  EXPECT_THROW(reg.add("fresh", "alias hits name", factory, {"mine"}),
               InvalidInput);
  EXPECT_THROW(reg.add("fresh", "intra-call dup", factory, {"x", "X"}),
               InvalidInput);
  // Canonical names are lowercase by construction (lookups fold).
  EXPECT_THROW(reg.add("Upper", "case", factory), InvalidInput);
  // A failed registration leaves no partial state.
  EXPECT_FALSE(reg.contains("fresh"));
  reg.add("fresh", "ok now", factory, {"x"});
  EXPECT_EQ(reg.make("X")->name(), "plogp");
}

TEST(BackendRegistry, SimFactoryRequiresGrid) {
  EXPECT_THROW((void)backend_registry().make("sim"), InvalidInput);
  EXPECT_THROW((void)backend_registry().make("sim", BackendOptions{}),
               InvalidInput);
}

// ------------------------------------------------------- capabilities

TEST(BackendCapabilities, PlogpIsDeterministicAndSupportsAllVerbs) {
  const PlogpBackend plogp;
  EXPECT_EQ(plogp.mode_label(), "predicted");
  EXPECT_TRUE(plogp.supports(Verb::kBcast));
  EXPECT_TRUE(plogp.supports(Verb::kScatter));
  EXPECT_TRUE(plogp.supports(Verb::kAlltoall));
  EXPECT_TRUE(plogp.is_deterministic());
  EXPECT_TRUE(plogp.instance_only());
  EXPECT_TRUE(plogp.baseline_series().empty());

  // Scatter/alltoall predictions read the grid's gap functions; a
  // grid-less instance refuses them with a one-line pointer at the fix.
  const auto sched = sched::registry().make("FlatTree");
  try {
    (void)plogp.scatter(*sched, 0, KiB(64), 0);
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("BackendOptions::grid"),
              std::string::npos);
  }
  EXPECT_THROW((void)plogp.alltoall(*sched, KiB(64), 0), InvalidInput);
  EXPECT_THROW((void)plogp.baseline_bcast(0, KiB(64)), InvalidInput);

  // With a grid the predictions run — the registry passes it through.
  const auto grid = topology::grid5000_testbed();
  BackendOptions opts;
  opts.grid = &grid;
  const auto via_registry = backend_registry().make("plogp", opts);
  const CollectiveResult s = via_registry->scatter(*sched, 0, KiB(64), 0);
  EXPECT_FALSE(s.per_rank);
  EXPECT_EQ(s.delivered.size(), grid.cluster_count());
  EXPECT_GT(s.completion, 0.0);
  EXPECT_EQ(s.wan_messages, grid.cluster_count() - 1);
  const CollectiveResult a = via_registry->alltoall(*sched, KiB(16), 0);
  EXPECT_GT(a.completion, 0.0);
  EXPECT_EQ(a.wan_messages,
            grid.cluster_count() * (grid.cluster_count() - 1));
}

TEST(BackendCapabilities, SimSupportsAllVerbsAndTracksJitter) {
  const auto grid = topology::grid5000_testbed();
  const SimBackend quiet(grid);
  EXPECT_EQ(quiet.mode_label(), "measured");
  EXPECT_TRUE(quiet.supports(Verb::kBcast));
  EXPECT_TRUE(quiet.supports(Verb::kScatter));
  EXPECT_TRUE(quiet.supports(Verb::kAlltoall));
  EXPECT_TRUE(quiet.is_deterministic());  // jitter off: seed is inert
  EXPECT_FALSE(quiet.instance_only());
  EXPECT_EQ(quiet.baseline_series(), "DefaultLAM");

  const SimBackend noisy(grid, {0.05});
  EXPECT_FALSE(noisy.is_deterministic());
}

// ------------------------------------------------------------- verbs

TEST(BackendVerbs, SimExecutesAllCollectives) {
  const auto grid = topology::grid5000_testbed();
  const SimBackend sim(grid);
  const auto sched = sched::registry().make("ECEF-LAT");

  const auto inst = sched::Instance::from_grid(grid, 0, MiB(1));
  const sched::SchedulerRuntimeInfo info(inst, MiB(1));
  const CollectiveResult b = sim.bcast(*sched, info, 1);
  EXPECT_TRUE(b.per_rank);
  EXPECT_EQ(b.delivered.size(), grid.total_nodes());
  EXPECT_GT(b.completion, 0.0);
  EXPECT_GT(b.messages, 0u);
  EXPECT_GE(b.messages, b.wan_messages);
  EXPECT_EQ(b.wan_messages, grid.cluster_count() - 1);  // one relay each

  const CollectiveResult base = sim.baseline_bcast(0, MiB(1), 1);
  EXPECT_EQ(base.delivered.size(), grid.total_nodes());
  EXPECT_GT(base.completion, 0.0);

  const CollectiveResult s = sim.scatter(*sched, 0, KiB(64), 1);
  EXPECT_GT(s.completion, 0.0);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_GE(s.bytes, s.wan_bytes);

  const CollectiveResult a = sim.alltoall(*sched, KiB(16), 1);
  EXPECT_GT(a.completion, 0.0);
  EXPECT_GT(a.wan_messages, 0u);
}

TEST(BackendVerbs, PlogpBcastMatchesEvaluator) {
  const auto grid = topology::grid5000_testbed();
  const PlogpBackend plogp;
  const auto inst = sched::Instance::from_grid(grid, 0, MiB(2));
  for (const auto& s : sched::paper_heuristics()) {
    const sched::SchedulerRuntimeInfo info(inst, MiB(2),
                                           s.options().completion);
    const CollectiveResult r = plogp.bcast(s.entry(), info, 0);
    const sched::Schedule want =
        sched::evaluate_order(inst, s.order(info), info.completion());
    EXPECT_DOUBLE_EQ(r.completion, want.makespan) << s.name();
    EXPECT_FALSE(r.per_rank);
    ASSERT_EQ(r.delivered.size(), inst.clusters());
    for (ClusterId c = 0; c < inst.clusters(); ++c)
      EXPECT_DOUBLE_EQ(r.delivered[c], want.cluster_finish[c]);
    EXPECT_EQ(r.messages, inst.clusters() - 1);
  }
}

TEST(BackendVerbs, SeedControlsSimNoiseOnly) {
  const auto grid = topology::grid5000_testbed();
  const auto sched = sched::registry().make("ECEF-LAT");
  const auto inst = sched::Instance::from_grid(grid, 0, MiB(1));
  const sched::SchedulerRuntimeInfo info(inst, MiB(1));

  const SimBackend quiet(grid);
  EXPECT_DOUBLE_EQ(quiet.bcast(*sched, info, 1).completion,
                   quiet.bcast(*sched, info, 2).completion);

  const SimBackend noisy(grid, {0.05});
  EXPECT_DOUBLE_EQ(noisy.bcast(*sched, info, 7).completion,
                   noisy.bcast(*sched, info, 7).completion);
  EXPECT_NE(noisy.bcast(*sched, info, 7).completion,
            noisy.bcast(*sched, info, 8).completion);
}

}  // namespace
}  // namespace gridcast::collective
