// The --verb axis end to end: report grammar (the "verb" key, strict
// parsing, comparison and merge), per-verb deterministic sharding (byte-
// identical for shard counts 1/2/7 on both backends), default-verb byte
// compatibility with the pre-verb-axis grammar, golden-report fixtures,
// and the one-line negative-path diagnostics.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "collective/backend.hpp"
#include "exp/race_cli.hpp"
#include "io/bench_json.hpp"
#include "support/error.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::exp {
namespace {

int cli_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  try {
    return run_race_cli(parse_race_cli(args), out, err);
  } catch (const InvalidInput& e) {
    err << "gridcast_race: " << e.what() << "\n";
    return 2;
  }
}

std::string run_cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  EXPECT_EQ(cli_main(args, out, err), 0) << err.str();
  return out.str();
}

// ------------------------------------------------------------ verb parsing

TEST(VerbAxis, ToVerbRoundTripsAndPinsTheUnknownDiagnostic) {
  using collective::Verb;
  EXPECT_EQ(collective::to_verb("bcast"), Verb::kBcast);
  EXPECT_EQ(collective::to_verb("SCATTER"), Verb::kScatter);
  EXPECT_EQ(collective::to_verb("AllToAll"), Verb::kAlltoall);
  for (const Verb v : collective::kAllVerbs)
    EXPECT_EQ(collective::to_verb(collective::verb_name(v)), v);
  try {
    (void)collective::to_verb("gather");
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_STREQ(e.what(),
                 "unknown verb 'gather' (valid: bcast, scatter, alltoall)");
  }
}

TEST(VerbAxis, CliParsesVerbAndRefusesItInRaceMode) {
  EXPECT_EQ(parse_race_cli({"--verb=scatter"}).spec.verb,
            collective::Verb::kScatter);
  EXPECT_EQ(parse_race_cli({}).spec.verb, collective::Verb::kBcast);
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"--race", "--verb=scatter"}, out, err), 2);
  EXPECT_EQ(err.str(),
            "gridcast_race: --verb applies to sweep mode; the Monte-Carlo "
            "race broadcasts by definition\n");
}

TEST(VerbAxis, CompletionFlagIsRefusedForNonBcastVerbs) {
  // Scatter/alltoall schedules are derived and timed with the eager
  // model; silently accepting --completion would hand back byte-identical
  // output for a flag the user believes changed something.
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"--verb=alltoall", "--completion=after-last-send",
                      "--sched=FlatTree", "--sizes=256K"},
                     out, err),
            2);
  EXPECT_EQ(err.str(),
            "gridcast_race: --completion applies to broadcast sweeps; "
            "scatter/alltoall schedules are derived and timed with the "
            "eager model\n");
  // Broadcast sweeps keep the flag, whatever its value.
  EXPECT_EQ(parse_race_cli({"--completion=after-last-send"}).spec.completion,
            sched::CompletionModel::kAfterLastSend);
}

TEST(VerbAxis, UnsupportedVerbIsAOneLineDiagnostic) {
  // A backend that only broadcasts (the shape of a minimal MPI harness)
  // must fail a scatter sweep with the pinned one-liner, not a deep error.
  class BcastOnly final : public collective::Backend {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "bcastonly";
    }
    [[nodiscard]] std::string_view mode_label() const noexcept override {
      return "predicted";
    }
    [[nodiscard]] bool supports(collective::Verb v) const noexcept override {
      return v == collective::Verb::kBcast;
    }
    [[nodiscard]] bool is_deterministic() const noexcept override {
      return true;
    }
    [[nodiscard]] bool instance_only() const noexcept override {
      return true;
    }
    [[nodiscard]] collective::CollectiveResult bcast(
        const sched::SchedulerEntry&, const sched::SchedulerRuntimeInfo&,
        std::uint64_t) const override {
      return {};
    }
  };
  static const bool registered = [] {
    collective::backend_registry().add(
        "bcastonly", "test stub: broadcast-only backend",
        [](const collective::BackendOptions&) -> collective::BackendPtr {
          return std::make_shared<const BcastOnly>();
        });
    return true;
  }();
  ASSERT_TRUE(registered);

  std::ostringstream out, err;
  const int code = cli_main({"--backend=bcastonly", "--sched=FlatTree",
                             "--sizes=256K", "--verb=scatter"},
                            out, err);
  EXPECT_EQ(code, 2);
  EXPECT_EQ(err.str(),
            "gridcast_race: backend 'bcastonly' does not support verb "
            "'scatter'\n");
}

// -------------------------------------------------- report grammar + merge

TEST(VerbAxis, DefaultVerbReportsAreByteIdenticalToTheOldGrammar) {
  const std::vector<std::string> base = {"--sched=FlatTree,ECEF-LAT",
                                         "--sizes=256K,1M", "--seed=5"};
  auto with_verb = base;
  with_verb.push_back("--verb=bcast");
  const std::string plain = run_cli(base);
  const std::string explicit_bcast = run_cli(with_verb);
  // --verb=bcast is the default spelled out: same bytes, no "verb" key.
  EXPECT_EQ(plain, explicit_bcast);
  EXPECT_EQ(plain.find("\"verb\""), std::string::npos);
}

TEST(VerbAxis, VerbKeyRoundTripsThroughTheStrictParser) {
  const std::string text = run_cli({"--sched=FlatTree", "--sizes=256K",
                                    "--verb=alltoall", "--backend=plogp"});
  EXPECT_NE(text.find("\"verb\": \"alltoall\""), std::string::npos);
  const io::BenchReport r = io::bench_from_json(text);
  EXPECT_EQ(r.verb, "alltoall");
  EXPECT_EQ(io::bench_to_json(r), text);

  // Unknown verb values are format errors.
  std::string mangled = text;
  mangled.replace(mangled.find("alltoall"), 8, "gatherxx");
  EXPECT_THROW((void)io::bench_from_json(mangled), InvalidInput);
}

TEST(VerbAxis, MonteCarloReportsRefuseTheVerbKey) {
  const std::string race = run_cli({"--race", "--clusters=3",
                                    "--iters=2", "--sched=FlatTree"});
  std::string with_verb = race;
  const auto pos = with_verb.find("  \"mode\"");
  ASSERT_NE(pos, std::string::npos);
  with_verb.insert(pos, "  \"verb\": \"scatter\",\n");
  try {
    (void)io::bench_from_json(with_verb);
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("sweep-only"), std::string::npos);
  }
}

TEST(VerbAxis, CompareAndMergeRefuseMixedVerbs) {
  const auto report = [&](const char* verb) {
    return io::bench_from_json(run_cli(
        {"--sched=FlatTree", "--sizes=256K", std::string("--verb=") + verb}));
  };
  const io::BenchReport scatter = report("scatter");
  const io::BenchReport alltoall = report("alltoall");
  const auto problems = io::compare_bench(scatter, alltoall);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_EQ(problems[0], "verb mismatch: baseline 'scatter' vs current "
                         "'alltoall'");

  // Shards of different verbs must not merge.
  const auto shard = [&](const char* verb, int k) {
    return io::bench_from_json(run_cli({"--sched=FlatTree,ECEF-LAT",
                                        "--sizes=256K,1M",
                                        std::string("--verb=") + verb,
                                        "--shards=2",
                                        "--shard=" + std::to_string(k)}));
  };
  std::vector<io::BenchReport> mixed{shard("scatter", 0), shard("alltoall", 1)};
  EXPECT_THROW((void)merge_race_shards(mixed), InvalidInput);
}

// ------------------------------------------------- per-verb shard identity

TEST(VerbAxis, ShardMergeIsByteIdenticalPerVerbOnBothBackends) {
  // Shard counts 1, 2 and 7 of the (size × series) grid must recombine to
  // the exact bytes of the unsharded run — for each new verb, under the
  // analytic and the executing backend.
  for (const std::string backend : {"plogp", "sim"}) {
    for (const std::string verb : {"scatter", "alltoall"}) {
      const std::vector<std::string> common = {
          "--sched=FlatTree,ECEF-LAT,BottomUp", "--sizes=256K,1M,2M",
          "--backend=" + backend, "--verb=" + verb, "--seed=9"};
      const std::string full = run_cli(common);
      for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                       std::size_t{7}}) {
        std::vector<io::BenchReport> parts;
        for (std::size_t k = 0; k < shards; ++k) {
          auto args = common;
          args.push_back("--shards=" + std::to_string(shards));
          args.push_back("--shard=" + std::to_string(k));
          parts.push_back(io::bench_from_json(run_cli(args)));
        }
        const io::BenchReport merged = merge_race_shards(parts);
        EXPECT_EQ(io::bench_to_json(merged), full)
            << backend << " " << verb << " x" << shards;
      }
    }
  }
}

// ------------------------------------------------------- golden fixtures

void check_golden(const std::string& file,
                  const std::vector<std::string>& args) {
  std::ifstream in(std::string(GRIDCAST_TEST_DATA_DIR) + "/" + file);
  ASSERT_TRUE(in) << "missing tests/data/" << file;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden_text = buf.str();

  // Writer stability: the strict parse re-serialises to the file's bytes.
  const io::BenchReport golden = io::bench_from_json(golden_text);
  EXPECT_EQ(io::bench_to_json(golden), golden_text) << file;

  // The live run still reproduces the fixture (deterministic backends; the
  // executing backend is deterministic under the pinned seed/jitter).
  const io::BenchReport live = io::bench_from_json(run_cli(args));
  EXPECT_EQ(live.verb, golden.verb);
  EXPECT_EQ(live.mode, golden.mode);
  EXPECT_EQ(live.sizes, golden.sizes);
  ASSERT_EQ(live.series.size(), golden.series.size()) << file;
  for (std::size_t s = 0; s < live.series.size(); ++s) {
    EXPECT_EQ(live.series[s].name, golden.series[s].name);
    ASSERT_EQ(live.series[s].makespan_s.size(),
              golden.series[s].makespan_s.size());
    for (std::size_t i = 0; i < live.series[s].makespan_s.size(); ++i)
      EXPECT_NEAR(live.series[s].makespan_s[i],
                  golden.series[s].makespan_s[i],
                  1e-9 * golden.series[s].makespan_s[i])
          << file << " series " << live.series[s].name << " cell " << i;
  }
}

TEST(VerbAxis, ScatterGoldenReportIsStable) {
  check_golden("scatter_golden.json",
               {"--sched=FlatTree,ECEF-LAT", "--sizes=256K,1M",
                "--backend=sim", "--verb=scatter", "--seed=5",
                "--jitter=0.1", "--root=1"});
}

TEST(VerbAxis, AlltoallGoldenReportIsStable) {
  check_golden("alltoall_golden.json",
               {"--sched=FlatTree,ECEF-LAT", "--sizes=256K,1M",
                "--backend=plogp", "--verb=alltoall"});
}

}  // namespace
}  // namespace gridcast::exp
