#include "exp/realise.hpp"

#include <gtest/gtest.h>

#include "collective/backends.hpp"
#include "exp/param_ranges.hpp"
#include "sched/registry.hpp"
#include "support/rng.hpp"

namespace gridcast::exp {
namespace {

sched::Instance sampled(std::size_t clusters, std::uint64_t seed) {
  Rng rng(seed);
  return sample_instance(ParamRanges::paper(), clusters, rng, /*root=*/0);
}

TEST(Realise, DerivedInstanceReproducesTheDrawExactly) {
  // The whole point of the realisation: Instance::from_grid over the
  // synthetic grid gives back the sampled matrices bit for bit, for any
  // message size (the realised gap functions are constant).
  const sched::Instance inst = sampled(6, 99);
  const topology::Grid grid = realise_instance(inst);
  for (const Bytes m : {Bytes{1}, KiB(256), MiB(1), MiB(4)}) {
    const sched::Instance derived =
        sched::Instance::from_grid(grid, inst.root(), m);
    ASSERT_EQ(derived.clusters(), inst.clusters());
    for (ClusterId i = 0; i < inst.clusters(); ++i) {
      EXPECT_EQ(derived.T(i), inst.T(i));
      for (ClusterId j = 0; j < inst.clusters(); ++j) {
        if (i == j) continue;
        EXPECT_EQ(derived.g(i, j), inst.g(i, j));
        EXPECT_EQ(derived.L(i, j), inst.L(i, j));
      }
    }
  }
}

TEST(Realise, GridShapeIsTwoRanksPerClusterAndValid) {
  const sched::Instance inst = sampled(4, 5);
  const topology::Grid grid = realise_instance(inst);
  ASSERT_EQ(grid.cluster_count(), 4u);
  for (ClusterId c = 0; c < 4; ++c) EXPECT_EQ(grid.cluster(c).size(), 2u);
  EXPECT_EQ(grid.total_nodes(), 8u);
  EXPECT_NO_THROW(grid.validate());
}

TEST(Realise, SimulatorExecutesARealisedDraw) {
  // A grid-executing backend can now time what was only scoreable before.
  // With zero jitter and zero overheads the executed completion respects
  // the instance's analytic lower bound.
  const sched::Instance inst = sampled(5, 123);
  const topology::Grid grid = realise_instance(inst);
  const collective::SimBackend sim(grid);
  const sched::Scheduler comp("ECEF-LAT");
  const sched::Instance derived =
      sched::Instance::from_grid(grid, inst.root(), MiB(1));
  const sched::SchedulerRuntimeInfo info(derived, MiB(1));
  const auto result = sim.bcast(comp.entry(), info, /*seed=*/1);
  EXPECT_GE(result.completion, inst.lower_bound() - 1e-12);
  EXPECT_GT(result.messages, 0u);
}

TEST(Realise, AnalyticScoreIsRealisationInvariant) {
  // Scoring through "plogp" must not care whether the instance is the raw
  // draw or the one derived from its realisation — they are equal, so the
  // completions are equal to the last bit.
  const sched::Instance inst = sampled(7, 2024);
  const topology::Grid grid = realise_instance(inst);
  const sched::Instance derived =
      sched::Instance::from_grid(grid, inst.root(), MiB(1));
  const collective::PlogpBackend plogp;
  for (const char* name : {"FlatTree", "ECEF", "ECEF-LAT", "BottomUp"}) {
    const sched::Scheduler comp(name);
    const sched::SchedulerRuntimeInfo raw(inst, 0);
    const sched::SchedulerRuntimeInfo real(derived, MiB(1));
    EXPECT_EQ(plogp.bcast(comp.entry(), raw, 0).completion,
              plogp.bcast(comp.entry(), real, 0).completion)
        << name;
  }
}

TEST(Realise, RejectsNothingButValidatesInput) {
  // realise_instance revalidates; a malformed instance cannot reach the
  // Grid constructor half-built.  (Instance's own constructor also
  // validates, so this is belt and braces via the public API.)
  const sched::Instance inst = sampled(2, 1);
  EXPECT_NO_THROW((void)realise_instance(inst));
}

}  // namespace
}  // namespace gridcast::exp
