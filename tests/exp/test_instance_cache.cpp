#include "exp/instance_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "topology/grid5000.hpp"

namespace gridcast::exp {
namespace {

TEST(InstanceCache, DerivesOncePerKey) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  EXPECT_EQ(cache.entries(), 0u);

  const InstancePtr a = cache.get(0, MiB(1));
  const InstancePtr b = cache.get(0, MiB(1));
  EXPECT_EQ(a.get(), b.get());  // same object, not a re-derivation
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  (void)cache.get(0, MiB(2));   // new size
  (void)cache.get(1, MiB(1));   // new root
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(InstanceCache, MatchesDirectDerivation) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  const InstancePtr cached = cache.get(2, MiB(4));
  const sched::Instance direct = sched::Instance::from_grid(grid, 2, MiB(4));
  ASSERT_EQ(cached->clusters(), direct.clusters());
  EXPECT_EQ(cached->root(), direct.root());
  for (ClusterId i = 0; i < cached->clusters(); ++i) {
    EXPECT_DOUBLE_EQ(cached->T(i), direct.T(i));
    for (ClusterId j = 0; j < cached->clusters(); ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(cached->g(i, j), direct.g(i, j));
      EXPECT_DOUBLE_EQ(cached->L(i, j), direct.L(i, j));
    }
  }
}

TEST(InstanceCache, HandlesStayValidAcrossGrowth) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  const InstancePtr first = cache.get(0, KiB(256));
  const Time t0 = first->T(0);
  // Grow the cache well past any small-map reallocation threshold.
  for (Bytes m = KiB(512); m <= MiB(8); m += KiB(128)) (void)cache.get(0, m);
  EXPECT_DOUBLE_EQ(first->T(0), t0);
  EXPECT_EQ(cache.get(0, KiB(256)).get(), first.get());
}

TEST(InstanceCache, ConcurrentGetsAgree) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  constexpr int kThreads = 8;
  std::vector<InstancePtr> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back(
          [&, t] { got[t] = cache.get(0, MiB(1) + KiB(256) * (t % 4)); });
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(cache.entries(), 4u);
  // Threads that asked for the same key see the same object.
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(got[t].get(), got[t % 4].get());
}

TEST(InstanceCache, StatsReadableWhileCacheIsBusy) {
  // Regression pin for the stats data race: hits/misses/evictions are
  // relaxed atomics precisely so a monitoring thread can poll them while
  // worker threads mutate the cache.  The TSan lane fails this test if
  // the counters regress to plain fields; the count assertions below pin
  // that the atomics still tally exactly.
  const auto grid = topology::grid5000_testbed();
  const std::size_t one =
      InstanceCache::instance_bytes(sched::Instance::from_grid(grid, 0, MiB(1)));
  InstanceCache cache(grid, 2 * one);  // small bound: evictions also race

  std::atomic<bool> stop{false};
  std::uint64_t last_seen = 0;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t h = cache.hits();
      const std::uint64_t m = cache.misses();
      (void)cache.evictions();
      if (h + m > last_seen) last_seen = h + m;
    }
  });
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&, t] {
        for (int r = 0; r < kRounds; ++r)
          (void)cache.get(0, MiB(1) + KiB(64) * ((r + t) % 6));
      });
    for (auto& w : workers) w.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  // Every lookup is either a hit or a (derivation) miss; lost derivation
  // races only ever add misses, never drop lookups.
  EXPECT_GE(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(last_seen, cache.hits() + cache.misses());
}

// ------------------------------------------------------------ LRU bound

TEST(InstanceCacheLru, UnboundedByDefault) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  EXPECT_EQ(cache.capacity(), InstanceCache::kUnbounded);
  for (Bytes m = KiB(256); m <= MiB(8); m += KiB(128)) (void)cache.get(0, m);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_GT(cache.bytes_in_use(), 0u);
  EXPECT_EQ(cache.bytes_in_use(),
            cache.entries() *
                InstanceCache::instance_bytes(*cache.get(0, KiB(256))));
}

TEST(InstanceCacheLru, EvictsLeastRecentlyUsedFirst) {
  const auto grid = topology::grid5000_testbed();
  // All grid5000 instances are the same cluster count, hence equal-sized:
  // a capacity of three instances holds exactly three entries.
  const std::size_t one =
      InstanceCache::instance_bytes(sched::Instance::from_grid(grid, 0, MiB(1)));
  InstanceCache cache(grid, 3 * one);

  (void)cache.get(0, MiB(1));
  (void)cache.get(0, MiB(2));
  (void)cache.get(0, MiB(3));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch MiB(1) so MiB(2) becomes the LRU victim.
  (void)cache.get(0, MiB(1));
  (void)cache.get(0, MiB(4));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);

  const std::uint64_t misses = cache.misses();
  (void)cache.get(0, MiB(1));  // still cached
  (void)cache.get(0, MiB(3));  // still cached
  (void)cache.get(0, MiB(4));  // still cached
  EXPECT_EQ(cache.misses(), misses);
  (void)cache.get(0, MiB(2));  // evicted: re-derives
  EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(InstanceCacheLru, HandlesSurviveEviction) {
  const auto grid = topology::grid5000_testbed();
  const std::size_t one =
      InstanceCache::instance_bytes(sched::Instance::from_grid(grid, 0, MiB(1)));
  InstanceCache cache(grid, one);  // room for a single entry

  const InstancePtr held = cache.get(0, MiB(1));
  (void)cache.get(0, MiB(2));  // evicts MiB(1)
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  // The holder's instance is untouched by the eviction.
  EXPECT_EQ(held->root(), 0u);
  EXPECT_GT(held->T(0), 0.0);
}

TEST(InstanceCacheLru, SetCapacityEvictsImmediately) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  for (Bytes m = MiB(1); m <= MiB(4); m += MiB(1)) (void)cache.get(0, m);
  EXPECT_EQ(cache.entries(), 4u);

  const std::size_t one = cache.bytes_in_use() / 4;
  cache.set_capacity(2 * one);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_LE(cache.bytes_in_use(), 2 * one);
  // Back to unbounded: nothing further evicts.
  cache.set_capacity(InstanceCache::kUnbounded);
  for (Bytes m = MiB(5); m <= MiB(8); m += MiB(1)) (void)cache.get(0, m);
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(InstanceCacheLru, CapacityZeroIsPassThrough) {
  // capacity 0 means "never retain", not "unbounded": every get derives
  // and hands the caller the sole reference.  Nothing is pinned, so the
  // byte account and entry count stay zero and no eviction ever fires —
  // the stats pin below is the contract.
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid, 0);
  EXPECT_EQ(cache.capacity(), 0u);

  const InstancePtr a = cache.get(0, MiB(1));
  const InstancePtr b = cache.get(0, MiB(1));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());  // re-derived, never cached
  EXPECT_DOUBLE_EQ(a->T(0), b->T(0));

  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes_in_use(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Dropping to pass-through mid-life releases everything already held.
  cache.set_capacity(InstanceCache::kUnbounded);
  (void)cache.get(0, MiB(2));
  EXPECT_EQ(cache.entries(), 1u);
  cache.set_capacity(0);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes_in_use(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(InstanceCacheLru, TinyCapacityStillServes) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid, 1);  // smaller than any instance
  const InstancePtr a = cache.get(0, MiB(1));
  const InstancePtr b = cache.get(0, MiB(1));
  // Every get derives (nothing can be retained), but results stay valid.
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.entries(), 0u);
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->T(0), b->T(0));
}

}  // namespace
}  // namespace gridcast::exp
