#include "exp/instance_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "topology/grid5000.hpp"

namespace gridcast::exp {
namespace {

TEST(InstanceCache, DerivesOncePerKey) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  EXPECT_EQ(cache.entries(), 0u);

  const sched::Instance& a = cache.get(0, MiB(1));
  const sched::Instance& b = cache.get(0, MiB(1));
  EXPECT_EQ(&a, &b);  // same object, not a re-derivation
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  (void)cache.get(0, MiB(2));   // new size
  (void)cache.get(1, MiB(1));   // new root
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(InstanceCache, MatchesDirectDerivation) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  const sched::Instance& cached = cache.get(2, MiB(4));
  const sched::Instance direct = sched::Instance::from_grid(grid, 2, MiB(4));
  ASSERT_EQ(cached.clusters(), direct.clusters());
  EXPECT_EQ(cached.root(), direct.root());
  for (ClusterId i = 0; i < cached.clusters(); ++i) {
    EXPECT_DOUBLE_EQ(cached.T(i), direct.T(i));
    for (ClusterId j = 0; j < cached.clusters(); ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(cached.g(i, j), direct.g(i, j));
      EXPECT_DOUBLE_EQ(cached.L(i, j), direct.L(i, j));
    }
  }
}

TEST(InstanceCache, ReferencesStayValidAcrossGrowth) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  const sched::Instance& first = cache.get(0, KiB(256));
  const Time t0 = first.T(0);
  // Grow the cache well past any small-map reallocation threshold.
  for (Bytes m = KiB(512); m <= MiB(8); m += KiB(128)) (void)cache.get(0, m);
  EXPECT_DOUBLE_EQ(first.T(0), t0);
  EXPECT_EQ(&cache.get(0, KiB(256)), &first);
}

TEST(InstanceCache, ConcurrentGetsAgree) {
  const auto grid = topology::grid5000_testbed();
  InstanceCache cache(grid);
  constexpr int kThreads = 8;
  std::vector<const sched::Instance*> got(kThreads, nullptr);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back(
          [&, t] { got[t] = &cache.get(0, MiB(1) + KiB(256) * (t % 4)); });
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(cache.entries(), 4u);
  // Threads that asked for the same key see the same object.
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(got[t], got[t % 4]);
}

}  // namespace
}  // namespace gridcast::exp
