#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/grid5000.hpp"

namespace gridcast::exp {
namespace {

TEST(Sweep, DefaultLadderMatchesThePaperAxis) {
  // Fig. 5/6: 256 KiB steps from 256 KiB to 4 MiB — exactly 16 points.
  // (An off-by-one endpoint used to emit a 17th 4.25 MiB point.)
  const auto sizes = default_size_ladder();
  ASSERT_EQ(sizes.size(), 16u);
  EXPECT_EQ(sizes.front(), KiB(256));
  EXPECT_EQ(sizes.back(), MiB(4));
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_EQ(sizes[i] - sizes[i - 1], KiB(256));
}

TEST(Sweep, PredictedSeriesShapes) {
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::paper_heuristics();
  const std::vector<Bytes> sizes{KiB(512), MiB(1), MiB(2)};
  const SweepResult r = predicted_sweep(grid, 0, comps, sizes);
  ASSERT_EQ(r.series.size(), comps.size());
  ASSERT_EQ(r.sizes.size(), 3u);
  for (const auto& s : r.series) {
    ASSERT_EQ(s.completion.size(), 3u);
    // Completion grows with message size for every heuristic.
    EXPECT_LT(s.completion[0], s.completion[2]);
  }
}

TEST(Sweep, PredictedNamesMatchSchedulers) {
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::paper_heuristics();
  const std::vector<Bytes> sizes{MiB(1)};
  const SweepResult r = predicted_sweep(grid, 0, comps, sizes);
  EXPECT_EQ(r.series[0].name, "FlatTree");
  EXPECT_EQ(r.series[6].name, "BottomUp");
}

TEST(Sweep, MeasuredIncludesDefaultLam) {
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::ecef_family();
  const std::vector<Bytes> sizes{KiB(512), MiB(1)};
  const SweepResult r = measured_sweep(grid, 0, comps, sizes, {}, 1);
  ASSERT_EQ(r.series.size(), comps.size() + 1);
  EXPECT_EQ(r.series[0].name, "DefaultLAM");
  for (const auto& s : r.series) {
    ASSERT_EQ(s.completion.size(), 2u);
    EXPECT_GT(s.completion[0], 0.0);
  }
}

TEST(Sweep, MeasuredTracksPredictedWithoutJitter) {
  const auto grid = topology::grid5000_testbed();
  sched::HeuristicOptions opts;
  opts.completion = sched::CompletionModel::kAfterLastSend;
  const std::vector<sched::Scheduler> comps{
      sched::Scheduler("ECEF-LA", opts)};
  const std::vector<Bytes> sizes{MiB(1), MiB(4)};
  const SweepResult pred = predicted_sweep(grid, 0, comps, sizes);
  const SweepResult meas = measured_sweep(grid, 0, comps, sizes, {}, 1);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double p = pred.series[0].completion[i];
    const double m = meas.series[1].completion[i];  // [0] is DefaultLAM
    // The executor adds receive overheads the model omits; the paper's
    // own Fig. 5 vs 6 gap is of the same nature.
    EXPECT_NEAR(m, p, p * 0.25) << "size " << sizes[i];
    EXPECT_GE(m, p - 1e-9);  // overheads only ever slow execution down
  }
}

TEST(Sweep, ThreadedSweepMatchesInline) {
  // Sweeps dispatch across the pool; any worker count must produce
  // exactly the inline result.
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::ecef_family();
  const std::vector<Bytes> sizes{KiB(512), MiB(1), MiB(2)};
  ThreadPool pool(3);
  const SweepResult pi = predicted_sweep(grid, 0, comps, sizes);
  const SweepResult pt = predicted_sweep(grid, 0, comps, sizes, pool);
  const SweepResult mi = measured_sweep(grid, 0, comps, sizes, {0.05}, 9);
  const SweepResult mt = measured_sweep(grid, 0, comps, sizes, {0.05}, 9, pool);
  for (std::size_t s = 0; s < pi.series.size(); ++s)
    EXPECT_EQ(pi.series[s].completion, pt.series[s].completion);
  for (std::size_t s = 0; s < mi.series.size(); ++s)
    EXPECT_EQ(mi.series[s].completion, mt.series[s].completion);
}

TEST(Sweep, MeasuredSeriesInvariantUnderCompetitorSetGrowth) {
  // Regression: per-cell seeds used to be derived from the flat cell
  // index, which encodes the competitor count — adding one competitor
  // silently reseeded every existing series, DefaultLAM included.  Seeds
  // now come from (size index, series name), so a series' results cannot
  // depend on who else is racing.
  const auto grid = topology::grid5000_testbed();
  const std::vector<Bytes> sizes{KiB(512), MiB(1), MiB(2)};
  const sim::JitterConfig jitter{0.10};  // large enough to expose reseeding
  const std::vector<sched::Scheduler> small{sched::Scheduler("ECEF-LA")};
  const std::vector<sched::Scheduler> big{
      sched::Scheduler("ECEF-LA"), sched::Scheduler("FlatTree"),
      sched::Scheduler("BottomUp")};

  const SweepResult a = measured_sweep(grid, 0, small, sizes, jitter, 7);
  const SweepResult b = measured_sweep(grid, 0, big, sizes, jitter, 7);

  ASSERT_EQ(a.series[0].name, "DefaultLAM");
  ASSERT_EQ(b.series[0].name, "DefaultLAM");
  EXPECT_EQ(a.series[0].completion, b.series[0].completion);
  ASSERT_EQ(a.series[1].name, "ECEF-LA");
  ASSERT_EQ(b.series[1].name, "ECEF-LA");
  EXPECT_EQ(a.series[1].completion, b.series[1].completion);
  // Reordering competitors must not change anyone's numbers either.
  const std::vector<sched::Scheduler> reordered{
      sched::Scheduler("BottomUp"), sched::Scheduler("ECEF-LA"),
      sched::Scheduler("FlatTree")};
  const SweepResult c = measured_sweep(grid, 0, reordered, sizes, jitter, 7);
  EXPECT_EQ(c.series[2].completion, b.series[1].completion);  // ECEF-LA
  EXPECT_EQ(c.series[1].completion, b.series[3].completion);  // BottomUp
}

TEST(Sweep, MeasuredCellSeedsDisperse) {
  // Distinct (seed, size index, name) triples map to distinct streams.
  EXPECT_NE(measured_cell_seed(1, 0, "A"), measured_cell_seed(1, 0, "B"));
  EXPECT_NE(measured_cell_seed(1, 0, "A"), measured_cell_seed(1, 1, "A"));
  EXPECT_NE(measured_cell_seed(1, 0, "A"), measured_cell_seed(2, 0, "A"));
  // And are pure functions of their inputs.
  EXPECT_EQ(measured_cell_seed(1, 3, "ECEF-LAT"),
            measured_cell_seed(1, 3, "ECEF-LAT"));
}

TEST(Sweep, ShardedCellsUnionToTheUnshardedResult) {
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::ecef_family();
  const std::vector<Bytes> sizes{KiB(512), MiB(1)};
  ThreadPool pool(0);
  InstanceCache cache(grid);
  const SweepResult full =
      measured_sweep(cache, 0, comps, sizes, {0.05}, 3, pool);

  const std::size_t n_series = comps.size() + 1;
  std::vector<SweepResult> parts;
  for (std::size_t k = 0; k < 2; ++k)
    parts.push_back(
        measured_sweep(cache, 0, comps, sizes, {0.05}, 3, pool, {2, k}));

  for (std::size_t s = 0; s < n_series; ++s) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const std::size_t owner = (i * n_series + s) % 2;
      EXPECT_EQ(parts[owner].series[s].completion[i],
                full.series[s].completion[i]);
      EXPECT_TRUE(std::isnan(parts[1 - owner].series[s].completion[i]));
    }
  }
}

TEST(Sweep, EmptyInputsRejected) {
  const auto grid = topology::grid5000_testbed();
  const std::vector<Bytes> sizes{MiB(1)};
  EXPECT_THROW((void)predicted_sweep(grid, 0, {}, sizes), LogicError);
  EXPECT_THROW(
      (void)predicted_sweep(grid, 0, sched::paper_heuristics(), {}),
      LogicError);
}

}  // namespace
}  // namespace gridcast::exp
