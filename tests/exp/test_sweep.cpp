#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include "topology/grid5000.hpp"

namespace gridcast::exp {
namespace {

TEST(Sweep, DefaultLadderIsStrictlyIncreasing) {
  const auto sizes = default_size_ladder();
  ASSERT_GE(sizes.size(), 8u);
  EXPECT_EQ(sizes.front(), KiB(256));
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_GT(sizes[i], sizes[i - 1]);
  EXPECT_LE(sizes.back(), MiB(4.5));
}

TEST(Sweep, PredictedSeriesShapes) {
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::paper_heuristics();
  const std::vector<Bytes> sizes{KiB(512), MiB(1), MiB(2)};
  const SweepResult r = predicted_sweep(grid, 0, comps, sizes);
  ASSERT_EQ(r.series.size(), comps.size());
  ASSERT_EQ(r.sizes.size(), 3u);
  for (const auto& s : r.series) {
    ASSERT_EQ(s.completion.size(), 3u);
    // Completion grows with message size for every heuristic.
    EXPECT_LT(s.completion[0], s.completion[2]);
  }
}

TEST(Sweep, PredictedNamesMatchSchedulers) {
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::paper_heuristics();
  const std::vector<Bytes> sizes{MiB(1)};
  const SweepResult r = predicted_sweep(grid, 0, comps, sizes);
  EXPECT_EQ(r.series[0].name, "FlatTree");
  EXPECT_EQ(r.series[6].name, "BottomUp");
}

TEST(Sweep, MeasuredIncludesDefaultLam) {
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::ecef_family();
  const std::vector<Bytes> sizes{KiB(512), MiB(1)};
  const SweepResult r = measured_sweep(grid, 0, comps, sizes, {}, 1);
  ASSERT_EQ(r.series.size(), comps.size() + 1);
  EXPECT_EQ(r.series[0].name, "DefaultLAM");
  for (const auto& s : r.series) {
    ASSERT_EQ(s.completion.size(), 2u);
    EXPECT_GT(s.completion[0], 0.0);
  }
}

TEST(Sweep, MeasuredTracksPredictedWithoutJitter) {
  const auto grid = topology::grid5000_testbed();
  sched::HeuristicOptions opts;
  opts.completion = sched::CompletionModel::kAfterLastSend;
  const std::vector<sched::Scheduler> comps{
      sched::Scheduler("ECEF-LA", opts)};
  const std::vector<Bytes> sizes{MiB(1), MiB(4)};
  const SweepResult pred = predicted_sweep(grid, 0, comps, sizes);
  const SweepResult meas = measured_sweep(grid, 0, comps, sizes, {}, 1);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double p = pred.series[0].completion[i];
    const double m = meas.series[1].completion[i];  // [0] is DefaultLAM
    // The executor adds receive overheads the model omits; the paper's
    // own Fig. 5 vs 6 gap is of the same nature.
    EXPECT_NEAR(m, p, p * 0.25) << "size " << sizes[i];
    EXPECT_GE(m, p - 1e-9);  // overheads only ever slow execution down
  }
}

TEST(Sweep, ThreadedSweepMatchesInline) {
  // Sweeps dispatch across the pool; any worker count must produce
  // exactly the inline result.
  const auto grid = topology::grid5000_testbed();
  const auto comps = sched::ecef_family();
  const std::vector<Bytes> sizes{KiB(512), MiB(1), MiB(2)};
  ThreadPool pool(3);
  const SweepResult pi = predicted_sweep(grid, 0, comps, sizes);
  const SweepResult pt = predicted_sweep(grid, 0, comps, sizes, pool);
  const SweepResult mi = measured_sweep(grid, 0, comps, sizes, {0.05}, 9);
  const SweepResult mt = measured_sweep(grid, 0, comps, sizes, {0.05}, 9, pool);
  for (std::size_t s = 0; s < pi.series.size(); ++s)
    EXPECT_EQ(pi.series[s].completion, pt.series[s].completion);
  for (std::size_t s = 0; s < mi.series.size(); ++s)
    EXPECT_EQ(mi.series[s].completion, mt.series[s].completion);
}

TEST(Sweep, EmptyInputsRejected) {
  const auto grid = topology::grid5000_testbed();
  const std::vector<Bytes> sizes{MiB(1)};
  EXPECT_THROW((void)predicted_sweep(grid, 0, {}, sizes), LogicError);
  EXPECT_THROW(
      (void)predicted_sweep(grid, 0, sched::paper_heuristics(), {}),
      LogicError);
}

}  // namespace
}  // namespace gridcast::exp
