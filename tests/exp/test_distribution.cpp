#include "exp/distribution.hpp"

#include <gtest/gtest.h>

namespace gridcast::exp {
namespace {

DistributionConfig small_config() {
  DistributionConfig cfg;
  cfg.clusters = 6;
  cfg.iterations = 300;
  cfg.seed = 42;
  return cfg;
}

TEST(Distribution, SeriesPerCompetitor) {
  ThreadPool pool(0);
  const auto comps = sched::ecef_family();
  const auto r = run_distribution(comps, small_config(), pool);
  ASSERT_EQ(r.series.size(), 4u);
  EXPECT_EQ(r.series[0].name, "ECEF");
  for (const auto& s : r.series) {
    EXPECT_EQ(s.stats.count(), 300u);
    EXPECT_EQ(s.histogram.total(), 300u);
  }
}

TEST(Distribution, QuantilesAreOrdered) {
  ThreadPool pool(0);
  const auto r = run_distribution(sched::paper_heuristics(), small_config(),
                                  pool);
  for (const auto& s : r.series) {
    EXPECT_LE(s.quantile(0.10), s.quantile(0.50));
    EXPECT_LE(s.quantile(0.50), s.quantile(0.90));
    EXPECT_LE(s.quantile(0.90), s.quantile(0.99));
    // Histogram quantiles bracket the exact extremes up to bin width.
    EXPECT_GE(s.quantile(0.999) + 0.02, s.stats.max() - 0.02);
  }
}

TEST(Distribution, MedianNearMeanForTheseSkews) {
  ThreadPool pool(0);
  const auto r = run_distribution(sched::ecef_family(), small_config(), pool);
  for (const auto& s : r.series)
    EXPECT_NEAR(s.quantile(0.5), s.stats.mean(), s.stats.mean() * 0.25);
}

TEST(Distribution, DeterministicAcrossThreadCounts) {
  const auto comps = sched::ecef_family();
  ThreadPool a(0), b(3);
  const auto ra = run_distribution(comps, small_config(), a);
  const auto rb = run_distribution(comps, small_config(), b);
  for (std::size_t s = 0; s < comps.size(); ++s) {
    EXPECT_DOUBLE_EQ(ra.series[s].stats.mean(), rb.series[s].stats.mean());
    EXPECT_DOUBLE_EQ(ra.series[s].quantile(0.5), rb.series[s].quantile(0.5));
  }
}

TEST(Distribution, TailDominatedByInternalBroadcasts) {
  // Table 2's T spans 20-3000 ms: every strategy's P99 must exceed its
  // P50 by a wide margin (the slow-cluster tail is real).
  ThreadPool pool(0);
  auto cfg = small_config();
  cfg.iterations = 600;
  const auto r = run_distribution(sched::paper_heuristics(), cfg, pool);
  for (const auto& s : r.series)
    EXPECT_GT(s.quantile(0.99), s.quantile(0.50) * 1.05) << s.name;
}

TEST(Distribution, InvalidConfigRejected) {
  ThreadPool pool(0);
  DistributionConfig cfg;
  cfg.clusters = 1;
  EXPECT_THROW((void)run_distribution(sched::ecef_family(), cfg, pool),
               LogicError);
  EXPECT_THROW((void)run_distribution({}, small_config(), pool), LogicError);
}

}  // namespace
}  // namespace gridcast::exp
