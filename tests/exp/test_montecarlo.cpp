#include "exp/montecarlo.hpp"

#include <gtest/gtest.h>

#include "collective/backends.hpp"
#include "support/error.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::exp {
namespace {

RaceConfig small_config() {
  RaceConfig cfg;
  cfg.clusters = 5;
  cfg.iterations = 200;
  cfg.seed = 42;
  return cfg;
}

TEST(Race, CountsAndNames) {
  ThreadPool pool(0);
  const auto comps = sched::paper_heuristics();
  const RaceResult r = run_race(comps, small_config(), pool);
  ASSERT_EQ(r.names.size(), 7u);
  EXPECT_EQ(r.names.front(), "FlatTree");
  EXPECT_EQ(r.names.back(), "BottomUp");
  EXPECT_EQ(r.iterations, 200u);
  for (const auto& m : r.makespan) EXPECT_EQ(m.count(), 200u);
}

TEST(Race, GlobalMinDominatesEveryStrategy) {
  ThreadPool pool(0);
  const RaceResult r = run_race(sched::paper_heuristics(), small_config(),
                                pool);
  for (const auto& m : r.makespan) {
    EXPECT_LE(r.global_min.mean(), m.mean() + 1e-12);
    EXPECT_LE(r.global_min.min(), m.min() + 1e-12);
  }
}

TEST(Race, EveryIterationHasAtLeastOneHit) {
  ThreadPool pool(0);
  const RaceResult r = run_race(sched::paper_heuristics(), small_config(),
                                pool);
  std::uint64_t total = 0;
  for (const auto h : r.hits) total += h;
  EXPECT_GE(total, r.iterations);  // ties can push it above
}

TEST(Race, SingleCompetitorAlwaysHits) {
  ThreadPool pool(0);
  const std::vector<sched::Scheduler> solo{
      sched::Scheduler("ECEF")};
  const RaceResult r = run_race(solo, small_config(), pool);
  EXPECT_EQ(r.hits[0], r.iterations);
  EXPECT_DOUBLE_EQ(r.hit_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(r.global_min.mean(), r.makespan[0].mean());
}

TEST(Race, DeterministicAcrossThreadCounts) {
  const auto comps = sched::paper_heuristics();
  ThreadPool inline_pool(0);
  ThreadPool threaded_pool(3);
  const RaceResult a = run_race(comps, small_config(), inline_pool);
  const RaceResult b = run_race(comps, small_config(), threaded_pool);
  for (std::size_t s = 0; s < comps.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.makespan[s].mean(), b.makespan[s].mean());
    EXPECT_EQ(a.hits[s], b.hits[s]);
  }
  EXPECT_DOUBLE_EQ(a.global_min.mean(), b.global_min.mean());
}

TEST(Race, SeedChangesResults) {
  ThreadPool pool(0);
  auto cfg = small_config();
  const RaceResult a = run_race(sched::paper_heuristics(), cfg, pool);
  cfg.seed = 43;
  const RaceResult b = run_race(sched::paper_heuristics(), cfg, pool);
  EXPECT_NE(a.global_min.mean(), b.global_min.mean());
}

TEST(Race, PaperOrderingEmergesAtModerateScale) {
  // With a few hundred iterations the Fig. 1 ordering is already stable:
  // FlatTree worst, ECEF-family best, BottomUp between FEF and ECEF.
  ThreadPool pool(0);
  RaceConfig cfg;
  cfg.clusters = 10;
  cfg.iterations = 500;
  cfg.seed = 42;
  const auto comps = sched::paper_heuristics();  // Flat,FEF,ECEF,LA,LAt,LAT,BU
  const RaceResult r = run_race(comps, cfg, pool);
  const double flat = r.makespan[0].mean();
  const double fef = r.makespan[1].mean();
  const double ecef = r.makespan[2].mean();
  const double bottomup = r.makespan[6].mean();
  EXPECT_GT(flat, fef);
  EXPECT_GT(fef, bottomup);
  EXPECT_GT(bottomup, ecef);
}

TEST(Race, InvalidConfigRejected) {
  ThreadPool pool(0);
  RaceConfig cfg;
  cfg.clusters = 1;
  EXPECT_THROW((void)run_race(sched::paper_heuristics(), cfg, pool),
               LogicError);
  EXPECT_THROW((void)run_race({}, small_config(), pool), LogicError);
}

TEST(Race, HitRateBoundsChecked) {
  ThreadPool pool(0);
  const RaceResult r = run_race(sched::paper_heuristics(), small_config(),
                                pool);
  EXPECT_THROW((void)r.hit_rate(99), LogicError);
}

TEST(Race, GridExecutingBackendRejected) {
  // Sampled instances have no grid behind them, so an executing backend
  // (instance_only() == false) cannot time them.
  ThreadPool pool(0);
  const auto grid = topology::grid5000_testbed();
  const collective::SimBackend sim(grid);
  EXPECT_THROW(
      (void)run_race(sim, sched::paper_heuristics(), small_config(), pool),
      InvalidInput);
}

TEST(Race, TiesCreditEveryAchiever) {
  // The documented Fig. 4 semantics (montecarlo.hpp header): a "hit" goes
  // to *every* strategy whose completion matches the iteration's global
  // minimum, not only to one winner — which is why the paper's counts sum
  // to more than the iteration count.  Two copies of the same entry tie
  // exactly on every draw, so both must be credited every time.
  ThreadPool pool(0);
  const std::vector<sched::Scheduler> twins{sched::Scheduler("ECEF"),
                                            sched::Scheduler("ECEF")};
  const RaceResult r = run_race(twins, small_config(), pool);
  EXPECT_EQ(r.hits[0], r.iterations);
  EXPECT_EQ(r.hits[1], r.iterations);
  EXPECT_EQ(r.hits[0] + r.hits[1], 2 * r.iterations);  // > denominator
  EXPECT_DOUBLE_EQ(r.makespan[0].mean(), r.makespan[1].mean());
}

TEST(Race, HitEpsilonBoundsTheTieBand) {
  // hit_epsilon is *relative*: with an absurdly wide band every strategy
  // "ties" the minimum on every iteration; with a zero band only exact
  // achievers count (and at least one always does).
  ThreadPool pool(0);
  auto cfg = small_config();
  cfg.hit_epsilon = 1e6;
  const RaceResult wide = run_race(sched::paper_heuristics(), cfg, pool);
  for (const auto h : wide.hits) EXPECT_EQ(h, wide.iterations);

  cfg.hit_epsilon = 0.0;
  const RaceResult tight = run_race(sched::paper_heuristics(), cfg, pool);
  std::uint64_t total = 0;
  for (const auto h : tight.hits) total += h;
  EXPECT_GE(total, tight.iterations);
}

TEST(Race, AddingACompetitorDoesNotReseedExistingSeries) {
  // Seed-invariance regression (the PR 2 lesson at the race level): the
  // per-iteration instance stream depends on (seed, iteration) only, so a
  // grown competitor set sees the *same draws* and every pre-existing
  // series keeps its per-iteration samples — means, minima and maxima are
  // bit-identical, not just statistically close.
  ThreadPool pool(0);
  const std::vector<sched::Scheduler> small{sched::Scheduler("FlatTree"),
                                            sched::Scheduler("ECEF")};
  const std::vector<sched::Scheduler> grown{sched::Scheduler("FlatTree"),
                                            sched::Scheduler("ECEF"),
                                            sched::Scheduler("ECEF-LAT")};
  const RaceResult a = run_race(small, small_config(), pool);
  const RaceResult b = run_race(grown, small_config(), pool);
  for (std::size_t s = 0; s < small.size(); ++s) {
    EXPECT_EQ(a.makespan[s].mean(), b.makespan[s].mean());
    EXPECT_EQ(a.makespan[s].min(), b.makespan[s].min());
    EXPECT_EQ(a.makespan[s].max(), b.makespan[s].max());
  }
  // Hit counts of dominated strategies may drop when a newcomer lowers
  // the global minimum — but never rise.
  for (std::size_t s = 0; s < small.size(); ++s)
    EXPECT_LE(b.hits[s], a.hits[s]);
}

TEST(Race, ShapeGatedEntryFailsLoudly) {
  // The Monte-Carlo race cannot skip a can_schedule-refusing entry per
  // iteration without skewing the hit-rate denominator, so a refusal is
  // a designed InvalidInput naming the entry — not a deep assert.
  ThreadPool pool(0);
  std::vector<sched::Scheduler> comps = sched::paper_heuristics();
  comps.emplace_back("LAN-Flat");  // Table 2 draws are WAN-regime: refuses
  try {
    (void)run_race(comps, small_config(), pool);
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("LAN-Flat"), std::string::npos);
  }
}

}  // namespace
}  // namespace gridcast::exp
