#include "exp/race_cli.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "topology/grid5000.hpp"

namespace gridcast::exp {
namespace {

RaceSpec two_sched_spec() {
  RaceSpec spec;
  spec.sched_names = {"FlatTree", "ECEF-LAT"};
  spec.sizes = {KiB(512), MiB(1), MiB(2)};
  return spec;
}

// ---------------------------------------------------------------- parsing

TEST(RaceCliParse, DefaultsToFullRegistryRunOnGrid5000) {
  const RaceCli cli = parse_race_cli({});
  EXPECT_EQ(cli.action, RaceCli::Action::kRun);
  EXPECT_TRUE(cli.spec.sched_names.empty());  // empty = all registered
  EXPECT_TRUE(cli.spec.sizes.empty());        // empty = default ladder
  EXPECT_EQ(cli.grid_arg, "grid5000");
  EXPECT_EQ(cli.spec.shard.shards, 1u);
  EXPECT_FALSE(cli.spec.wall);
}

TEST(RaceCliParse, SchedListSizesAndMode) {
  const RaceCli cli = parse_race_cli(
      {"--sched=FlatTree,ecef-lat", "--sizes=256K,1M,4MiB",
       "--mode=measured", "--jitter=0.1", "--seed=9", "--root=2",
       "--out=x.json"});
  ASSERT_EQ(cli.spec.sched_names.size(), 2u);
  EXPECT_EQ(cli.spec.sched_names[1], "ecef-lat");
  ASSERT_EQ(cli.spec.sizes.size(), 3u);
  EXPECT_EQ(cli.spec.sizes[0], KiB(256));
  EXPECT_EQ(cli.spec.sizes[1], MiB(1));
  EXPECT_EQ(cli.spec.sizes[2], MiB(4));
  // "--mode=measured" survives as an alias of the "sim" backend and is
  // stored canonically.
  EXPECT_EQ(cli.spec.backend, "sim");
  EXPECT_DOUBLE_EQ(cli.spec.jitter, 0.1);
  EXPECT_EQ(cli.spec.seed, 9u);
  EXPECT_EQ(cli.spec.root, 2u);
  EXPECT_EQ(cli.out_path, "x.json");
}

TEST(RaceCliParse, BackendFlagAndAliases) {
  EXPECT_EQ(parse_race_cli({}).spec.backend, "plogp");
  EXPECT_EQ(parse_race_cli({"--backend=sim"}).spec.backend, "sim");
  EXPECT_EQ(parse_race_cli({"--backend=plogp"}).spec.backend, "plogp");
  // Legacy spellings and case-insensitive lookups resolve in the registry
  // and canonicalise.
  EXPECT_EQ(parse_race_cli({"--backend=predicted"}).spec.backend, "plogp");
  EXPECT_EQ(parse_race_cli({"--backend=MEASURED"}).spec.backend, "sim");
  EXPECT_EQ(parse_race_cli({"--mode=Sim"}).spec.backend, "sim");
  // Unknown backends fail at parse time, listing what is registered.
  try {
    (void)parse_race_cli({"--backend=mpi"});
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("plogp"), std::string::npos);
    EXPECT_NE(what.find("sim"), std::string::npos);
  }
}

TEST(RaceCliParse, ListBackends) {
  EXPECT_EQ(parse_race_cli({"--list-backends"}).action,
            RaceCli::Action::kListBackends);
  EXPECT_THROW((void)parse_race_cli({"--list-backends", "stray"}),
               InvalidInput);
}

TEST(RaceCliParse, ShardForms) {
  EXPECT_EQ(parse_race_cli({"--shards=4", "--shard=3"}).spec.shard.shard, 3u);
  const RaceCli pair = parse_race_cli({"--shard=1/3"});
  EXPECT_EQ(pair.spec.shard.shards, 3u);
  EXPECT_EQ(pair.spec.shard.shard, 1u);
  // Agreeing redundant forms are fine; disagreeing ones are not.
  EXPECT_NO_THROW((void)parse_race_cli({"--shards=3", "--shard=1/3"}));
  EXPECT_THROW((void)parse_race_cli({"--shards=2", "--shard=1/3"}),
               InvalidInput);
  // Shard index out of range.
  EXPECT_THROW((void)parse_race_cli({"--shards=2", "--shard=2"}),
               InvalidInput);
}

TEST(RaceCliParse, RejectsBadInput) {
  EXPECT_THROW((void)parse_race_cli({"--nonsense"}), InvalidInput);
  EXPECT_THROW((void)parse_race_cli({"stray.json"}), InvalidInput);
  EXPECT_THROW((void)parse_race_cli({"--mode=both"}), InvalidInput);
  EXPECT_THROW((void)parse_race_cli({"--sizes=12Q"}), InvalidInput);
  EXPECT_THROW((void)parse_race_cli({"--sizes=,1M"}), InvalidInput);
  EXPECT_THROW((void)parse_race_cli({"--seed=ten"}), InvalidInput);
  EXPECT_THROW((void)parse_race_cli({"--sched=a,,b"}), InvalidInput);
  // Wall time is machine-local; sharded outputs must stay byte-mergeable.
  EXPECT_THROW((void)parse_race_cli({"--wall", "--shards=2", "--shard=0"}),
               InvalidInput);
  // A keyed flag without '=' must not silently use itself as its value.
  EXPECT_THROW((void)parse_race_cli({"--out"}), InvalidInput);
  EXPECT_THROW((void)parse_race_cli({"--check"}), InvalidInput);
  // A zero shard count in the k/N form must not degrade to unsharded.
  EXPECT_THROW((void)parse_race_cli({"--shard=0/0"}), InvalidInput);
}

TEST(RaceCliParse, MergeTakesOutputThenInputs) {
  const RaceCli cli =
      parse_race_cli({"--merge", "out.json", "a.json", "b.json"});
  EXPECT_EQ(cli.action, RaceCli::Action::kMerge);
  EXPECT_EQ(cli.out_path, "out.json");
  ASSERT_EQ(cli.merge_inputs.size(), 2u);
  EXPECT_EQ(cli.merge_inputs[1], "b.json");
  EXPECT_THROW((void)parse_race_cli({"--merge", "out.json"}), InvalidInput);
}

TEST(RaceCliParse, CheckNeedsBaseline) {
  const RaceCli cli = parse_race_cli(
      {"--check=cur.json", "--baseline=base.json", "--rtol=1e-3",
       "--wall-tol=5"});
  EXPECT_EQ(cli.action, RaceCli::Action::kCheck);
  EXPECT_EQ(cli.check_path, "cur.json");
  EXPECT_EQ(cli.baseline_path, "base.json");
  EXPECT_DOUBLE_EQ(cli.tolerances.makespan_rtol, 1e-3);
  EXPECT_DOUBLE_EQ(cli.tolerances.wall_factor, 5.0);
  EXPECT_THROW((void)parse_race_cli({"--check=cur.json"}), InvalidInput);
}

TEST(RaceCliParse, SizeUnits) {
  EXPECT_EQ(parse_size("262144"), Bytes{262144});
  EXPECT_EQ(parse_size("256K"), KiB(256));
  EXPECT_EQ(parse_size("256kib"), KiB(256));
  EXPECT_EQ(parse_size("4M"), MiB(4));
  EXPECT_EQ(parse_size("0.5MiB"), KiB(512));
  EXPECT_THROW((void)parse_size("MiB"), InvalidInput);
  EXPECT_THROW((void)parse_size("0K"), InvalidInput);
  // Sub-byte sizes would truncate to 0; huge ones would overflow the cast.
  EXPECT_THROW((void)parse_size("0.5"), InvalidInput);
  EXPECT_THROW((void)parse_size("99999999999999999999999"), InvalidInput);
}

// ------------------------------------------------------------- resolution

TEST(RaceResolve, UnknownNameListsRegisteredSchedulers) {
  try {
    (void)resolve_competitors({"FlatTree", "NoSuchHeuristic"}, {});
    FAIL() << "expected InvalidInput";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NoSuchHeuristic"), std::string::npos);
    EXPECT_NE(what.find("ECEF-LAT"), std::string::npos);
    EXPECT_NE(what.find("BottomUp"), std::string::npos);
  }
}

TEST(RaceResolve, RejectsDuplicatesEvenViaAliases) {
  EXPECT_THROW((void)resolve_competitors({"ECEF-LAT", "ecef-lat"}, {}),
               InvalidInput);
}

// ------------------------------------------------------- shard round trip

TEST(RaceShard, MergedShardsAreByteIdenticalToUnsharded) {
  const auto grid = topology::grid5000_testbed();
  ThreadPool pool(2);
  RaceSpec spec = two_sched_spec();

  InstanceCache full_cache(grid);
  const io::BenchReport full =
      run_race_sweep(full_cache, "grid5000_testbed", spec, pool);

  std::vector<io::BenchReport> shards;
  for (std::size_t k = 0; k < 3; ++k) {
    spec.shard = {3, k};
    InstanceCache cache(grid);
    shards.push_back(run_race_sweep(cache, "grid5000_testbed", spec, pool));
  }
  const io::BenchReport merged = merge_race_shards(shards);
  EXPECT_EQ(io::bench_to_json(merged), io::bench_to_json(full));
}

TEST(RaceShard, MeasuredModeMergesByteIdenticallyToo) {
  const auto grid = topology::grid5000_testbed();
  ThreadPool pool(2);
  RaceSpec spec = two_sched_spec();
  spec.backend = "sim";
  spec.jitter = 0.05;
  spec.seed = 42;

  InstanceCache full_cache(grid);
  const io::BenchReport full =
      run_race_sweep(full_cache, "grid5000_testbed", spec, pool);
  ASSERT_EQ(full.series[0].name, "DefaultLAM");

  std::vector<io::BenchReport> shards;
  for (std::size_t k = 0; k < 2; ++k) {
    spec.shard = {2, k};
    InstanceCache cache(grid);
    shards.push_back(run_race_sweep(cache, "grid5000_testbed", spec, pool));
  }
  const io::BenchReport merged =
      merge_race_shards({shards[1], shards[0]});  // order must not matter
  EXPECT_EQ(io::bench_to_json(merged), io::bench_to_json(full));
}

TEST(RaceShard, MergeRejectsBadShardSets) {
  const auto grid = topology::grid5000_testbed();
  ThreadPool pool(0);
  RaceSpec spec = two_sched_spec();

  std::vector<io::BenchReport> shards;
  for (std::size_t k = 0; k < 2; ++k) {
    spec.shard = {2, k};
    InstanceCache cache(grid);
    shards.push_back(run_race_sweep(cache, "grid5000_testbed", spec, pool));
  }

  EXPECT_THROW((void)merge_race_shards({}), InvalidInput);
  EXPECT_THROW((void)merge_race_shards({shards[0]}), InvalidInput);
  EXPECT_THROW((void)merge_race_shards({shards[0], shards[0]}), InvalidInput);

  // A cell computed by a shard that does not own it is corruption.
  auto bad = shards;
  bad[1].series[0].makespan_s = bad[0].series[0].makespan_s;
  EXPECT_THROW((void)merge_race_shards(bad), InvalidInput);

  // Metadata must agree.
  bad = shards;
  bad[1].grid = "other_grid";
  EXPECT_THROW((void)merge_race_shards(bad), InvalidInput);
}

// -------------------------------------------------------- engine details

TEST(RaceSweep, WallTimesOnlyWhereRequestedAndMeaningful) {
  const auto grid = topology::grid5000_testbed();
  ThreadPool pool(0);
  RaceSpec spec = two_sched_spec();
  spec.wall = true;
  spec.backend = "sim";
  InstanceCache cache(grid);
  const io::BenchReport r =
      run_race_sweep(cache, "grid5000_testbed", spec, pool);
  ASSERT_EQ(r.series.size(), 3u);
  EXPECT_TRUE(std::isnan(r.series[0].wall_time_s));  // DefaultLAM
  EXPECT_GE(r.series[1].wall_time_s, 0.0);
  EXPECT_GE(r.series[2].wall_time_s, 0.0);

  spec.shard = {2, 0};
  InstanceCache cache2(grid);
  EXPECT_THROW((void)run_race_sweep(cache2, "grid5000_testbed", spec, pool),
               InvalidInput);
}

TEST(RaceSweep, GatedEntriesAreSkippedNotRaced) {
  // grid5000 is a genuine WAN: the LAN-only and star-shaped specialists
  // must refuse via can_schedule and be dropped from the report — with no
  // series and no NaN holes — rather than raced.
  const auto grid = topology::grid5000_testbed();
  ThreadPool pool(0);
  InstanceCache cache(grid);
  RaceSpec spec;
  spec.sched_names = {"FlatTree", "LAN-Flat", "Star-WAN", "ECEF-LAT"};
  spec.sizes = {MiB(1)};
  std::vector<std::string> skipped;
  const io::BenchReport r =
      run_race_sweep(cache, "grid5000_testbed", spec, pool, &skipped);
  ASSERT_EQ(r.series.size(), 2u);
  EXPECT_EQ(r.series[0].name, "FlatTree");
  EXPECT_EQ(r.series[1].name, "ECEF-LAT");
  EXPECT_FALSE(std::isnan(r.series[0].makespan_s[0]));
  ASSERT_EQ(skipped.size(), 2u);
  EXPECT_EQ(skipped[0], "LAN-Flat");
  EXPECT_EQ(skipped[1], "Star-WAN");

  // All competitors gated: the sweep refuses instead of emitting an
  // empty report.
  spec.sched_names = {"LAN-Flat"};
  InstanceCache cache2(grid);
  EXPECT_THROW(
      (void)run_race_sweep(cache2, "grid5000_testbed", spec, pool),
      InvalidInput);
}

TEST(RaceSweep, EmptySchedulerListRejected) {
  const auto grid = topology::grid5000_testbed();
  ThreadPool pool(0);
  InstanceCache cache(grid);
  RaceSpec spec;
  spec.sizes = {MiB(1)};
  EXPECT_THROW((void)run_race_sweep(cache, "g", spec, pool), InvalidInput);
}

// --------------------------------------------------------- CLI end to end

TEST(RaceCliDriver, CheckGatePassesAndFails) {
  const std::string dir = testing::TempDir();
  const std::string base_path = dir + "/race_base.json";
  const std::string cur_path = dir + "/race_cur.json";

  RaceCli run;
  run.spec = two_sched_spec();
  run.out_path = base_path;
  std::ostringstream out, err;
  ASSERT_EQ(run_race_cli(run, out, err), 0);

  RaceCli check;
  check.action = RaceCli::Action::kCheck;
  check.check_path = base_path;
  check.baseline_path = base_path;
  EXPECT_EQ(run_race_cli(check, out, err), 0);

  // Corrupt one makespan cell: the gate must fail.
  io::BenchReport tampered;
  {
    std::ifstream in(base_path);
    tampered = io::read_bench_json(in);
  }
  tampered.series[0].makespan_s[0] *= 1.5;
  {
    std::ofstream o(cur_path);
    io::write_bench_json(o, tampered);
  }
  check.check_path = cur_path;
  std::ostringstream err2;
  EXPECT_EQ(run_race_cli(check, out, err2), 1);
  EXPECT_NE(err2.str().find("makespan drift"), std::string::npos);
}

}  // namespace
}  // namespace gridcast::exp
